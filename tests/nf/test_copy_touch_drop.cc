/**
 * @file
 * Copy-mode TouchDrop tests (paper Sec. II-B recycling mode M1).
 */

#include <gtest/gtest.h>

#include "harness/system.hh"

namespace
{

harness::ExperimentConfig
copyConfig(idio::Policy policy)
{
    harness::ExperimentConfig cfg;
    cfg.numNfs = 1;
    cfg.nfKind = harness::NfKind::CopyTouchDrop;
    cfg.traffic = harness::TrafficKind::Steady;
    cfg.rateGbps = 4.0;
    cfg.nic.ringSize = 1024;
    cfg.applyPolicy(policy);
    return cfg;
}

TEST(CopyTouchDrop, ProcessesWithoutDrops)
{
    harness::TestSystem sys(copyConfig(idio::Policy::Ddio));
    sys.start();
    sys.runFor(5 * sim::oneMs);

    const auto t = sys.totals();
    EXPECT_GT(t.processedPackets, 1000u);
    EXPECT_EQ(t.rxDrops, 0u);
}

TEST(CopyTouchDrop, TriplesLineTraffic)
{
    harness::TestSystem copy(copyConfig(idio::Policy::Ddio));
    copy.start();
    copy.runFor(3 * sim::oneMs);

    auto rtcCfg = copyConfig(idio::Policy::Ddio);
    rtcCfg.nfKind = harness::NfKind::TouchDrop;
    harness::TestSystem rtc(rtcCfg);
    rtc.start();
    rtc.runFor(3 * sim::oneMs);

    const auto copyOps = copy.core(0).reads.get() +
                         copy.core(0).writes.get() -
                         copy.nf(0).emptyPolls.get();
    const auto rtcOps = rtc.core(0).reads.get() +
                        rtc.core(0).writes.get() -
                        rtc.nf(0).emptyPolls.get();
    // read DMA + write copy + read copy vs read DMA: ~3x.
    EXPECT_GT(copyOps, 2 * rtcOps);
}

TEST(CopyTouchDrop, InvalidatesAtFirstTouchUnderIdio)
{
    harness::TestSystem sys(copyConfig(idio::Policy::Idio));
    sys.start();
    sys.runFor(5 * sim::oneMs);

    // Every DMA line is invalidated exactly once (during the copy,
    // not again at completion).
    const auto pkts = sys.nf(0).packetsProcessed.get();
    const auto invals = sys.core(0).invalidations.get();
    EXPECT_GE(invals, pkts * 24);
    EXPECT_LE(invals, pkts * 24 + 64);
}

TEST(CopyTouchDrop, IdioStillRemovesDmaWritebacks)
{
    harness::TestSystem ddio(copyConfig(idio::Policy::Ddio));
    harness::TestSystem idioSys(copyConfig(idio::Policy::Idio));
    ddio.start();
    idioSys.start();
    ddio.runFor(8 * sim::oneMs);
    idioSys.runFor(8 * sim::oneMs);

    // The copy arena still churns the MLC under both policies, but
    // the DMA buffers' dead writebacks disappear under IDIO.
    EXPECT_LT(idioSys.totals().mlcWritebacks,
              ddio.totals().mlcWritebacks);
}

TEST(CopyTouchDrop, LatencyRecorded)
{
    harness::TestSystem sys(copyConfig(idio::Policy::Idio));
    sys.start();
    sys.runFor(3 * sim::oneMs);
    EXPECT_GT(sys.nf(0).latency.count(), 500u);
    EXPECT_GT(sys.nf(0).latency.p50(), 0u);
}

} // anonymous namespace
