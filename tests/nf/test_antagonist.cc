/**
 * @file
 * LLCAntagonist tests.
 */

#include <gtest/gtest.h>

#include "cpu/core.hh"
#include "nf/llc_antagonist.hh"
#include "sim/simulation.hh"

namespace
{

class AntagonistTest : public ::testing::Test
{
  protected:
    AntagonistTest()
    {
        cache::HierarchyConfig hcfg;
        hcfg.numCores = 1;
        hcfg.mlc.sizeBytes = 256 * 1024; // the paper's shrunken MLC
        hier = std::make_unique<cache::MemoryHierarchy>(s, "sys", hcfg);
        core = std::make_unique<cpu::Core>(s, "core0", 0, *hier);
    }

    sim::Simulation s;
    mem::PhysAllocator alloc;
    std::unique_ptr<cache::MemoryHierarchy> hier;
    std::unique_ptr<cpu::Core> core;
};

TEST_F(AntagonistTest, WarmUpTouchesWholeBuffer)
{
    nf::AntagonistConfig cfg;
    cfg.bufferBytes = 1 << 20;
    nf::LlcAntagonist antag(s, "antag", *core, alloc, cfg);
    antag.warmUp();
    EXPECT_EQ(core->reads.get(), (1u << 20) / 64);
}

TEST_F(AntagonistTest, RunsAndCountsAccesses)
{
    nf::AntagonistConfig cfg;
    cfg.bufferBytes = 4 << 20;
    nf::LlcAntagonist antag(s, "antag", *core, alloc, cfg);
    antag.warmUp();
    antag.launch();
    s.runFor(sim::oneMs);

    EXPECT_GT(antag.accesses.get(), 1000u);
    EXPECT_GT(antag.ticksPerAccess(), 0.0);
}

TEST_F(AntagonistTest, AccessesStayInBuffer)
{
    // A small working set fits the hierarchy: after warm-up, no
    // access should reach DRAM.
    nf::AntagonistConfig cfg;
    cfg.bufferBytes = 128 * 1024; // fits the 256 KB MLC
    nf::LlcAntagonist antag(s, "antag", *core, alloc, cfg);
    antag.warmUp();
    const auto dramBefore = hier->dram().readCount();
    antag.launch();
    s.runFor(sim::oneMs);
    EXPECT_EQ(hier->dram().readCount(), dramBefore);
}

TEST_F(AntagonistTest, LargeWorkingSetThrashesLlc)
{
    nf::AntagonistConfig cfg;
    cfg.bufferBytes = 8 << 20; // 8 MB >> 1.5 MB LLC
    nf::LlcAntagonist antag(s, "antag", *core, alloc, cfg);
    antag.warmUp();
    antag.launch();
    s.runFor(sim::oneMs);
    EXPECT_GT(hier->dram().readCount(), 1000u)
        << "an oversized working set must miss to DRAM";
}

TEST_F(AntagonistTest, CpiDegradesWithWorkingSetSize)
{
    nf::AntagonistConfig small;
    small.bufferBytes = 128 * 1024;
    nf::AntagonistConfig large;
    large.bufferBytes = 8 << 20;

    nf::LlcAntagonist a(s, "a", *core, alloc, small);
    a.warmUp();
    a.launch();
    s.runFor(sim::oneMs);
    const double cpiSmall = a.ticksPerAccess();
    core->halt();

    nf::LlcAntagonist b(s, "b", *core, alloc, large);
    b.warmUp();
    b.launch();
    s.runFor(sim::oneMs);
    const double cpiLarge = b.ticksPerAccess();

    EXPECT_GT(cpiLarge, cpiSmall * 2)
        << "DRAM-bound access must be much slower";
}

} // anonymous namespace
