/**
 * @file
 * Network function behaviour tests, run on full TestSystems.
 */

#include <gtest/gtest.h>

#include "harness/system.hh"

namespace
{

harness::ExperimentConfig
baseConfig(harness::NfKind kind, idio::Policy policy)
{
    harness::ExperimentConfig cfg;
    cfg.numNfs = 1;
    cfg.nfKind = kind;
    cfg.traffic = harness::TrafficKind::Steady;
    cfg.rateGbps = 5.0;
    cfg.nic.ringSize = 256;
    cfg.applyPolicy(policy);
    return cfg;
}

TEST(TouchDrop, ProcessesEveryPacketWithoutDrops)
{
    harness::TestSystem sys(
        baseConfig(harness::NfKind::TouchDrop, idio::Policy::Ddio));
    sys.start();
    sys.runFor(5 * sim::oneMs);

    const auto t = sys.totals();
    EXPECT_GT(t.rxPackets, 2000u);
    EXPECT_EQ(t.rxDrops, 0u);
    // All but the most recent in-flight packets are processed.
    EXPECT_GE(t.processedPackets, t.rxPackets - 64);
}

TEST(TouchDrop, TouchesEveryPayloadLine)
{
    harness::TestSystem sys(
        baseConfig(harness::NfKind::TouchDrop, idio::Policy::Ddio));
    sys.start();
    sys.runFor(2 * sim::oneMs);

    // 24 lines per 1514 B packet, plus descriptor/mbuf overhead.
    const auto pkts = sys.nf(0).packetsProcessed.get();
    EXPECT_GE(sys.core(0).reads.get(), pkts * 24);
}

TEST(TouchDrop, RecordsLatencySamples)
{
    harness::TestSystem sys(
        baseConfig(harness::NfKind::TouchDrop, idio::Policy::Ddio));
    sys.start();
    sys.runFor(2 * sim::oneMs);

    auto &lat = sys.nf(0).latency;
    EXPECT_EQ(lat.count(), sys.nf(0).packetsProcessed.get());
    EXPECT_GT(lat.p50(), 0u);
    EXPECT_GE(lat.p99(), lat.p50());
}

TEST(TouchDrop, SelfInvalidationSkipsWritebacks)
{
    // The phenomenon needs a ring whose buffers exceed the MLC
    // (paper Fig. 4: rings above ~692 MTU buffers overflow 1 MB).
    auto ddio = baseConfig(harness::NfKind::TouchDrop,
                           idio::Policy::Ddio);
    ddio.nic.ringSize = 1024;
    auto inval = baseConfig(harness::NfKind::TouchDrop,
                            idio::Policy::InvalidateOnly);
    inval.nic.ringSize = 1024;

    harness::TestSystem a(ddio), b(inval);
    a.start();
    b.start();
    a.runFor(5 * sim::oneMs);
    b.runFor(5 * sim::oneMs);

    EXPECT_GT(a.totals().mlcWritebacks, 1000u);
    EXPECT_LT(b.totals().mlcWritebacks,
              a.totals().mlcWritebacks / 10);
    EXPECT_GT(b.hierarchy().mlcOf(0).selfInvals.get(), 1000u);
}

TEST(TouchDrop, MempoolConservation)
{
    harness::TestSystem sys(
        baseConfig(harness::NfKind::TouchDrop, idio::Policy::Idio));
    sys.start();
    sys.runFor(5 * sim::oneMs);

    auto &pool = sys.mempool(0);
    // Every buffer is armed in the ring, pending in a batch, or free:
    // allocations and frees must balance to ring occupancy.
    EXPECT_EQ(pool.allocCount - pool.freeCount,
              pool.capacity() - pool.available());
    EXPECT_EQ(pool.allocFailures, 0u);
}

TEST(L2Fwd, ForwardsEveryPacket)
{
    harness::TestSystem sys(
        baseConfig(harness::NfKind::L2Fwd, idio::Policy::Ddio));
    sys.start();
    sys.runFor(5 * sim::oneMs);

    const auto &nicStats = sys.nicPort(0);
    EXPECT_GT(nicStats.txPackets.get(), 2000u);
    // Zero-copy: everything received is eventually transmitted.
    EXPECT_GE(nicStats.txPackets.get() + 64,
              sys.nf(0).packetsProcessed.get());
    EXPECT_EQ(nicStats.rxDrops.get(), 0u);
}

TEST(L2Fwd, TouchesOnlyHeaders)
{
    harness::TestSystem sys(
        baseConfig(harness::NfKind::L2Fwd, idio::Policy::Ddio));
    sys.start();
    sys.runFor(2 * sim::oneMs);

    // Header-only processing: aside from the idle-poll descriptor
    // checks, far fewer reads than TouchDrop's 24 payload lines per
    // packet (descriptors + header + free-list only).
    const auto pkts = sys.nf(0).packetsProcessed.get();
    const auto pollReads = sys.nf(0).emptyPolls.get();
    EXPECT_LT(sys.core(0).reads.get() - pollReads, pkts * 10);
}

TEST(L2Fwd, PcieReadsPullBuffersOut)
{
    harness::TestSystem sys(
        baseConfig(harness::NfKind::L2Fwd, idio::Policy::Ddio));
    sys.start();
    sys.runFor(2 * sim::oneMs);
    // TX of 1514 B frames reads 24 lines per packet.
    EXPECT_GE(sys.hierarchy().pcieReads.get(),
              sys.nicPort(0).txPackets.get() * 24);
}

TEST(L2FwdDropPayload, TransmitsHeaderOnly)
{
    harness::TestSystem sys(baseConfig(
        harness::NfKind::L2FwdDropPayload, idio::Policy::Ddio));
    sys.start();
    sys.runFor(2 * sim::oneMs);

    const auto tx = sys.nicPort(0).txPackets.get();
    EXPECT_GT(tx, 500u);
    // One PCIe read per forwarded header cacheline.
    EXPECT_LE(sys.hierarchy().pcieReads.get(), tx + 32);
}

TEST(L2FwdDropPayload, Class1PayloadGoesToDramUnderIdio)
{
    harness::TestSystem sys(baseConfig(
        harness::NfKind::L2FwdDropPayload, idio::Policy::Idio));
    sys.start();
    sys.runFor(2 * sim::oneMs);

    // The builder marks this workload's flows DSCP 40 (class 1); the
    // controller must steer payload lines straight to DRAM.
    EXPECT_GT(sys.hierarchy().directDramWrites.get(), 1000u);
    EXPECT_GT(sys.controller().directDramSteers.get(), 1000u);
}

TEST(NetworkFunction, BatchingRespectsConfiguredBurst)
{
    auto cfg = baseConfig(harness::NfKind::TouchDrop,
                          idio::Policy::Ddio);
    cfg.nf.batch = 8;
    cfg.rateGbps = 9.0;
    harness::TestSystem sys(cfg);
    sys.start();
    sys.runFor(3 * sim::oneMs);

    const auto batches = sys.nf(0).batches.get();
    const auto pkts = sys.nf(0).packetsProcessed.get();
    ASSERT_GT(batches, 0u);
    EXPECT_LE(pkts, batches * 8) << "no batch may exceed the limit";
}

} // anonymous namespace
