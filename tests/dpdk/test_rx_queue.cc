/**
 * @file
 * Polling-mode driver (RxQueue) tests against a real NIC model.
 */

#include <gtest/gtest.h>

#include "dpdk/rx_queue.hh"
#include "idio/controller.hh"
#include "sim/simulation.hh"

namespace
{

/** A full RX stack: hierarchy + DDIO controller + NIC + PMD. */
class RxQueueTest : public ::testing::Test
{
  protected:
    RxQueueTest()
    {
        cache::HierarchyConfig hcfg;
        hcfg.numCores = 2;
        hier = std::make_unique<cache::MemoryHierarchy>(s, "sys", hcfg);
        ctrl = std::make_unique<idio::IdioController>(
            s, "idio", *hier, idio::IdioConfig::preset(
                              idio::Policy::Ddio));
        nic::NicConfig ncfg;
        ncfg.ringSize = 64;
        port = std::make_unique<nic::Nic>(s, "nic", ncfg, *ctrl, alloc,
                                          2);
        core = std::make_unique<cpu::Core>(s, "core0", 0, *hier);
        pool = std::make_unique<dpdk::Mempool>(alloc, 128);
        rxq = std::make_unique<dpdk::RxQueue>(*core, *port, *pool);
        rxq->initialArm();
    }

    void
    deliver(int n)
    {
        for (int i = 0; i < n; ++i) {
            net::Packet p;
            p.flow.srcIp = 1;
            p.flow.dstIp = 2;
            p.flow.srcPort = 1;
            p.flow.dstPort = 5000;
            p.frameBytes = 1514;
            p.seq = seq++;
            port->deliver(p);
        }
        s.runFor(100 * sim::oneUs); // let DMA + descriptor WB finish
    }

    sim::Simulation s;
    mem::PhysAllocator alloc;
    std::unique_ptr<cache::MemoryHierarchy> hier;
    std::unique_ptr<idio::IdioController> ctrl;
    std::unique_ptr<nic::Nic> port;
    std::unique_ptr<cpu::Core> core;
    std::unique_ptr<dpdk::Mempool> pool;
    std::unique_ptr<dpdk::RxQueue> rxq;
    std::uint64_t seq = 0;
};

TEST_F(RxQueueTest, InitialArmUsesPoolBuffers)
{
    EXPECT_EQ(pool->available(), 128u - 64u);
    EXPECT_EQ(port->rxRing().armedCount(), 64u);
}

TEST_F(RxQueueTest, EmptyPollReturnsNothingButCostsTime)
{
    const auto res = rxq->pollBurst();
    EXPECT_TRUE(res.mbufs.empty());
    EXPECT_GT(res.latency, 0u) << "the DD check reads memory";
}

TEST_F(RxQueueTest, PollReturnsCompletedPackets)
{
    deliver(5);
    const auto res = rxq->pollBurst();
    EXPECT_EQ(res.mbufs.size(), 5u);
    EXPECT_GT(res.latency, 0u);
    // Mbufs carry the packet info from the descriptors.
    for (std::size_t i = 0; i < res.mbufs.size(); ++i) {
        EXPECT_EQ(pool->at(res.mbufs[i]).pkt.seq, i);
        EXPECT_EQ(pool->at(res.mbufs[i]).pktBytes, 1514u);
    }
}

TEST_F(RxQueueTest, PollRespectsBurstLimit)
{
    deliver(50);
    const auto res = rxq->pollBurst();
    EXPECT_EQ(res.mbufs.size(), 32u) << "DPDK default burst";
    const auto res2 = rxq->pollBurst();
    EXPECT_EQ(res2.mbufs.size(), 18u);
}

TEST_F(RxQueueTest, RefillRearmsConsumedDescriptors)
{
    deliver(10);
    auto res = rxq->pollBurst();
    EXPECT_EQ(rxq->pendingRefill(), 10u);

    // Free the consumed buffers, then refill.
    for (auto idx : res.mbufs)
        pool->free(idx);
    const auto lat = rxq->refill();
    EXPECT_GT(lat, 0u);
    EXPECT_EQ(rxq->pendingRefill(), 0u);
    EXPECT_EQ(port->rxRing().armedCount(), 64u);
}

TEST_F(RxQueueTest, RefillStopsWhenPoolEmpty)
{
    deliver(10);
    auto res = rxq->pollBurst();
    // Drain the pool completely (do not free the consumed mbufs).
    while (pool->alloc() != dpdk::invalidMbuf) {
    }
    rxq->refill();
    EXPECT_EQ(rxq->pendingRefill(), 10u)
        << "no buffers -> descriptors stay unarmed";
}

TEST_F(RxQueueTest, FullCycleKeepsRingUsable)
{
    // Three full ring generations.
    for (int round = 0; round < 3; ++round) {
        deliver(64);
        std::uint32_t got = 0;
        for (;;) {
            auto res = rxq->pollBurst();
            if (res.mbufs.empty())
                break;
            got += res.mbufs.size();
            for (auto idx : res.mbufs)
                pool->free(idx);
            rxq->refill();
        }
        EXPECT_EQ(got, 64u) << "round " << round;
    }
    EXPECT_EQ(port->rxDrops.get(), 0u);
}

TEST_F(RxQueueTest, DriverTrafficFlowsThroughCaches)
{
    deliver(4);
    rxq->pollBurst();
    // Descriptor reads + mbuf writes must have touched the hierarchy.
    EXPECT_GT(core->reads.get(), 0u);
    EXPECT_GT(core->writes.get(), 0u);
}

} // anonymous namespace
