/**
 * @file
 * Mbuf / Mempool tests.
 */

#include <gtest/gtest.h>

#include <set>

#include "dpdk/mbuf.hh"

namespace
{

TEST(Mempool, GeometryAndAddresses)
{
    mem::PhysAllocator alloc;
    dpdk::Mempool pool(alloc, 64);

    EXPECT_EQ(pool.capacity(), 64u);
    EXPECT_EQ(pool.available(), 64u);

    std::set<sim::Addr> metas, datas;
    for (std::uint32_t i = 0; i < 64; ++i) {
        const auto &m = pool.at(i);
        EXPECT_EQ(m.idx, i);
        EXPECT_EQ(m.bufBytes, dpdk::defaultBufBytes);
        metas.insert(m.metaAddr);
        datas.insert(m.dataAddr);
    }
    EXPECT_EQ(metas.size(), 64u) << "metadata addresses distinct";
    EXPECT_EQ(datas.size(), 64u) << "data addresses distinct";
}

TEST(Mempool, DataBuffersInvalidatableByDefault)
{
    mem::PhysAllocator alloc;
    dpdk::Mempool pool(alloc, 8);
    for (std::uint32_t i = 0; i < 8; ++i)
        EXPECT_TRUE(alloc.isInvalidatable(pool.at(i).dataAddr));
}

TEST(Mempool, NonInvalidatableOption)
{
    mem::PhysAllocator alloc;
    dpdk::Mempool pool(alloc, 8, 2048, /*invalidatable=*/false);
    for (std::uint32_t i = 0; i < 8; ++i)
        EXPECT_FALSE(alloc.isInvalidatable(pool.at(i).dataAddr));
}

TEST(Mempool, FifoRecyclingCyclesThroughEveryBuffer)
{
    // Default order (rte_ring semantics): a freed buffer goes to the
    // back of the queue, so allocation walks the whole pool — the
    // property behind the paper's ring-size-dependent working set.
    mem::PhysAllocator alloc;
    dpdk::Mempool pool(alloc, 4);

    std::vector<std::uint32_t> seen;
    for (int i = 0; i < 8; ++i) {
        const auto idx = pool.alloc();
        seen.push_back(idx);
        pool.free(idx);
    }
    EXPECT_EQ(seen, (std::vector<std::uint32_t>{0, 1, 2, 3, 0, 1, 2,
                                                3}));
}

TEST(Mempool, LifoRecycling)
{
    mem::PhysAllocator alloc;
    dpdk::Mempool pool(alloc, 4, dpdk::defaultBufBytes, true,
                       dpdk::RecycleOrder::Lifo);

    const auto a = pool.alloc();
    pool.free(a);
    EXPECT_EQ(pool.alloc(), a) << "most recently freed pops first";
}

TEST(Mempool, ExhaustionReturnsInvalid)
{
    mem::PhysAllocator alloc;
    dpdk::Mempool pool(alloc, 2);
    EXPECT_NE(pool.alloc(), dpdk::invalidMbuf);
    EXPECT_NE(pool.alloc(), dpdk::invalidMbuf);
    EXPECT_EQ(pool.alloc(), dpdk::invalidMbuf);
    EXPECT_EQ(pool.allocFailures, 1u);
}

TEST(Mempool, AvailableTracksAllocFree)
{
    mem::PhysAllocator alloc;
    dpdk::Mempool pool(alloc, 4);
    const auto a = pool.alloc();
    const auto b = pool.alloc();
    EXPECT_EQ(pool.available(), 2u);
    pool.free(a);
    pool.free(b);
    EXPECT_EQ(pool.available(), 4u);
    EXPECT_EQ(pool.allocCount, 2u);
    EXPECT_EQ(pool.freeCount, 2u);
}

TEST(Mempool, BuffersDoNotOverlap)
{
    mem::PhysAllocator alloc;
    dpdk::Mempool pool(alloc, 16, 2048);
    for (std::uint32_t i = 0; i + 1 < 16; ++i) {
        EXPECT_GE(pool.at(i + 1).dataAddr,
                  pool.at(i).dataAddr + 2048);
    }
}

TEST(MempoolDeath, DoubleFreePanics)
{
    mem::PhysAllocator alloc;
    dpdk::Mempool pool(alloc, 2);
    const auto a = pool.alloc();
    pool.free(a);
    EXPECT_DEATH(pool.free(a), "double free");
}

} // anonymous namespace
