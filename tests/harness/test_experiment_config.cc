/**
 * @file
 * ExperimentConfig / HierarchyConfig helper tests.
 */

#include <gtest/gtest.h>

#include "harness/experiment_config.hh"

namespace
{

TEST(ExperimentConfig, TableOneDefaults)
{
    const harness::ExperimentConfig cfg;
    EXPECT_EQ(cfg.hier.l1.sizeBytes, 64u * 1024);
    EXPECT_EQ(cfg.hier.l1.assoc, 2u);
    EXPECT_EQ(cfg.hier.mlc.sizeBytes, 1024u * 1024);
    EXPECT_EQ(cfg.hier.mlc.assoc, 8u);
    EXPECT_EQ(cfg.hier.llcPerCore.sizeBytes, 1536u * 1024);
    EXPECT_EQ(cfg.hier.llcPerCore.assoc, 12u);
    EXPECT_EQ(cfg.hier.ddioWays, 2u);
    EXPECT_DOUBLE_EQ(cfg.hier.cpuFreqGHz, 3.0);
    EXPECT_EQ(cfg.nic.ringSize, 1024u);
    EXPECT_EQ(cfg.frameBytes, 1514u);
    EXPECT_EQ(cfg.burstPeriod, 10 * sim::oneMs);
}

TEST(ExperimentConfig, EffectiveBurstPackets)
{
    harness::ExperimentConfig cfg;
    EXPECT_EQ(cfg.effectiveBurstPackets(), cfg.nic.ringSize)
        << "0 means 'ring size', the paper's burst-length rule";
    cfg.burstPackets = 77;
    EXPECT_EQ(cfg.effectiveBurstPackets(), 77u);
}

TEST(ExperimentConfig, NfKindNames)
{
    EXPECT_STREQ(harness::nfKindName(harness::NfKind::TouchDrop),
                 "TouchDrop");
    EXPECT_STREQ(harness::nfKindName(harness::NfKind::CopyTouchDrop),
                 "CopyTouchDrop");
    EXPECT_STREQ(harness::nfKindName(harness::NfKind::L2Fwd), "L2Fwd");
    EXPECT_STREQ(
        harness::nfKindName(harness::NfKind::L2FwdDropPayload),
        "L2FwdDropPayload");
}

TEST(ExperimentConfig, SummaryCoversTrafficKinds)
{
    harness::ExperimentConfig cfg;
    cfg.traffic = harness::TrafficKind::Steady;
    EXPECT_NE(cfg.summary().find("steady"), std::string::npos);
    cfg.traffic = harness::TrafficKind::Poisson;
    EXPECT_NE(cfg.summary().find("poisson"), std::string::npos);
    cfg.traffic = harness::TrafficKind::None;
    EXPECT_NE(cfg.summary().find("external"), std::string::npos);
}

TEST(HierarchyConfig, CycleConversions)
{
    cache::HierarchyConfig cfg;
    EXPECT_EQ(cfg.cyclePeriod(), 333u); // 3 GHz
    EXPECT_EQ(cfg.cyclesToTicks(12), 12u * 333);
}

TEST(HierarchyConfig, MlcSizeOverride)
{
    cache::HierarchyConfig cfg;
    cfg.numCores = 3;
    EXPECT_EQ(cfg.mlcSize(0), 1024u * 1024);
    cfg.mlcSizeOverride = {0, 0, 256 * 1024};
    EXPECT_EQ(cfg.mlcSize(0), 1024u * 1024) << "0 means no override";
    EXPECT_EQ(cfg.mlcSize(2), 256u * 1024);
}

TEST(HierarchyConfig, CoreLlcMaskDefaultsToAllWays)
{
    cache::HierarchyConfig cfg;
    EXPECT_EQ(cfg.coreLlcMask(0), ~cache::WayMask(0));
    cfg.llcAllocMask = {0b100};
    EXPECT_EQ(cfg.coreLlcMask(0), 0b100u);
    EXPECT_EQ(cfg.coreLlcMask(1), ~cache::WayMask(0))
        << "unlisted cores are unrestricted";
}

TEST(HierarchyConfig, TotalLlcScalesWithCores)
{
    cache::HierarchyConfig cfg;
    cfg.numCores = 4;
    EXPECT_EQ(cfg.llcSizeBytes(), 4u * 1536 * 1024);
}

} // anonymous namespace
