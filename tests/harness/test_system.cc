/**
 * @file
 * TestSystem builder tests.
 */

#include <gtest/gtest.h>

#include "harness/system.hh"

namespace
{

TEST(System, BuildsRequestedTopology)
{
    harness::ExperimentConfig cfg;
    cfg.numNfs = 3;
    cfg.withAntagonist = true;
    harness::TestSystem sys(cfg);

    EXPECT_EQ(sys.numNfs(), 3u);
    EXPECT_EQ(sys.hierarchy().numCores(), 4u);
    EXPECT_NE(sys.antagonist(), nullptr);
    // Total LLC scales with core count (per-core slices).
    EXPECT_EQ(sys.hierarchy().llc().tags().capacityBytes(),
              4ull * cfg.hier.llcPerCore.sizeBytes);
}

TEST(System, AntagonistMlcShrunk)
{
    harness::ExperimentConfig cfg;
    cfg.numNfs = 2;
    cfg.withAntagonist = true;
    harness::TestSystem sys(cfg);

    EXPECT_EQ(sys.hierarchy().mlcOf(2).tags().capacityBytes(),
              256u * 1024);
    EXPECT_EQ(sys.hierarchy().mlcOf(0).tags().capacityBytes(),
              1024u * 1024);
}

TEST(System, NoAntagonistByDefault)
{
    harness::ExperimentConfig cfg;
    harness::TestSystem sys(cfg);
    EXPECT_EQ(sys.antagonist(), nullptr);
    EXPECT_EQ(sys.hierarchy().numCores(), 2u);
}

TEST(System, FlowRulesSteerToOwnCore)
{
    harness::ExperimentConfig cfg;
    cfg.numNfs = 2;
    cfg.flowsPerNf = 4;
    harness::TestSystem sys(cfg);

    // Each NIC's flow director has EP rules pinning its NF's flows.
    EXPECT_EQ(sys.nicPort(0).flowDirector().ruleCount(), 4u);
    EXPECT_EQ(sys.nicPort(1).flowDirector().ruleCount(), 4u);
}

TEST(System, PolicyPresetSyncsNfConfig)
{
    harness::ExperimentConfig cfg;
    cfg.applyPolicy(idio::Policy::Idio);
    EXPECT_TRUE(cfg.nf.selfInvalidate);
    cfg.applyPolicy(idio::Policy::Ddio);
    EXPECT_FALSE(cfg.nf.selfInvalidate);
}

TEST(System, SummaryMentionsKeyParameters)
{
    harness::ExperimentConfig cfg;
    cfg.applyPolicy(idio::Policy::Idio);
    cfg.rateGbps = 25.0;
    const auto s = cfg.summary();
    EXPECT_NE(s.find("IDIO"), std::string::npos);
    EXPECT_NE(s.find("25"), std::string::npos);
    EXPECT_NE(s.find("TouchDrop"), std::string::npos);
}

TEST(System, RunAdvancesSimulatedTime)
{
    harness::ExperimentConfig cfg;
    harness::TestSystem sys(cfg);
    sys.start();
    sys.runFor(sim::oneMs);
    EXPECT_EQ(sys.simulation().now(), sim::oneMs);
}

TEST(System, TotalsSnapshotDelta)
{
    harness::ExperimentConfig cfg;
    cfg.traffic = harness::TrafficKind::Steady;
    cfg.rateGbps = 5.0;
    harness::TestSystem sys(cfg);
    sys.start();
    sys.runFor(sim::oneMs);
    const auto a = sys.totals();
    sys.runFor(sim::oneMs);
    const auto b = sys.totals();
    const auto d = b - a;
    EXPECT_GT(d.rxPackets, 0u);
    EXPECT_LE(d.rxPackets, b.rxPackets);
}

TEST(SystemDeath, DoubleStartPanics)
{
    harness::ExperimentConfig cfg;
    harness::TestSystem sys(cfg);
    sys.start();
    EXPECT_DEATH(sys.start(), "started twice");
}

} // anonymous namespace
