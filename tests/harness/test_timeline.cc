/**
 * @file
 * TimelineRecorder tests.
 */

#include <gtest/gtest.h>

#include "harness/timeline.hh"

namespace
{

TEST(Timeline, RateSeriesInMtps)
{
    sim::Simulation s;
    harness::TimelineRecorder rec(s, 10 * sim::oneUs);

    std::uint64_t counter = 0;
    rec.trackRate("events", [&] { return counter; });
    rec.start();

    // 100 events per 10 us interval = 10 MTPS.
    sim::PeriodicEvent pump(s.eventq(), sim::oneUs,
                            [&] { counter += 10; });
    pump.start();

    s.runFor(100 * sim::oneUs);
    const auto &series = rec.series("events");
    ASSERT_GE(series.size(), 9u);
    // Skip the first sample (partial interval alignment) and check
    // the steady-state rate.
    for (std::size_t i = 1; i < series.size(); ++i)
        EXPECT_NEAR(series.points()[i].value, 10.0, 0.01);
}

TEST(Timeline, ValueSeriesSampled)
{
    sim::Simulation s;
    harness::TimelineRecorder rec(s, sim::oneUs);
    double v = 1.0;
    rec.trackValue("gauge", [&] { return v; });
    rec.start();
    s.runFor(3 * sim::oneUs);
    v = 5.0;
    s.runFor(3 * sim::oneUs);

    const auto &series = rec.series("gauge");
    ASSERT_GE(series.size(), 5u);
    EXPECT_DOUBLE_EQ(series.points()[0].value, 1.0);
    EXPECT_DOUBLE_EQ(series.points().back().value, 5.0);
}

TEST(Timeline, StopFreezesSeries)
{
    sim::Simulation s;
    harness::TimelineRecorder rec(s, sim::oneUs);
    std::uint64_t c = 0;
    rec.trackRate("x", [&] { return c; });
    rec.start();
    s.runFor(5 * sim::oneUs);
    rec.stop();
    const auto n = rec.series("x").size();
    s.runFor(5 * sim::oneUs);
    EXPECT_EQ(rec.series("x").size(), n);
}

TEST(Timeline, AllReturnsRegistrationOrder)
{
    sim::Simulation s;
    harness::TimelineRecorder rec(s);
    rec.trackRate("a", [] { return 0ull; });
    rec.trackRate("b", [] { return 0ull; });
    const auto all = rec.all();
    ASSERT_EQ(all.size(), 2u);
    EXPECT_EQ(all[0]->name(), "a");
    EXPECT_EQ(all[1]->name(), "b");
}

TEST(TimelineDeath, UnknownSeriesIsFatal)
{
    sim::Simulation s;
    harness::TimelineRecorder rec(s);
    EXPECT_EXIT(rec.series("missing"), ::testing::ExitedWithCode(1),
                "unknown timeline");
}

} // anonymous namespace
