/**
 * @file
 * SweepRunner tests: ordered collection, parallel determinism, and
 * exception propagation.
 *
 * The determinism tests are the contract the figure benches' --jobs=N
 * flag rests on: a sweep run on 8 threads must produce the same
 * per-config Totals, bit for bit, as a serial run.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "harness/sweep.hh"
#include "harness/system.hh"

namespace
{

/** A small but non-trivial config: one burst through a short ring. */
harness::ExperimentConfig
tinyConfig(idio::Policy policy, double gbps)
{
    harness::ExperimentConfig cfg;
    cfg.numNfs = 2;
    cfg.nfKind = harness::NfKind::TouchDrop;
    cfg.nic.ringSize = 128;
    cfg.rateGbps = gbps;
    cfg.applyPolicy(policy);
    return cfg;
}

harness::Totals
runOne(const harness::ExperimentConfig &cfg)
{
    harness::TestSystem sys(cfg);
    sys.start();
    sys.runFor(2 * sim::oneMs);
    return sys.totals();
}

std::vector<harness::ExperimentConfig>
fig10StyleConfigs()
{
    std::vector<harness::ExperimentConfig> configs;
    for (double gbps : {100.0, 25.0}) {
        for (auto policy : {idio::Policy::Ddio, idio::Policy::Idio})
            configs.push_back(tinyConfig(policy, gbps));
    }
    return configs;
}

TEST(SweepRunner, MapPreservesOrder)
{
    harness::SweepRunner runner(4);
    std::vector<int> items(64);
    for (int i = 0; i < 64; ++i)
        items[i] = i;
    const auto out =
        runner.map(items, [](const int &v) { return v * v; });
    ASSERT_EQ(out.size(), 64u);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(SweepRunner, ParallelMatchesSerialBitIdentical)
{
    const auto configs = fig10StyleConfigs();

    harness::SweepRunner serial(1);
    harness::SweepRunner parallel(8);
    const auto a = serial.map(configs, runOne);
    const auto b = parallel.map(configs, runOne);

    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i], b[i])
            << "config " << i << " diverged under parallel execution";
    }
}

TEST(SweepRunner, SameSeedRunsAreIdentical)
{
    const auto cfg = tinyConfig(idio::Policy::Idio, 100.0);
    const auto first = runOne(cfg);
    const auto second = runOne(cfg);
    EXPECT_EQ(first, second) << "same-seed reruns must be identical";
}

TEST(SweepRunner, HardwareJobsIsPositive)
{
    EXPECT_GE(harness::SweepRunner::hardwareJobs(), 1u);
}

TEST(SweepRunner, EmptyInputYieldsEmptyOutput)
{
    harness::SweepRunner runner(8);
    const std::vector<int> none;
    EXPECT_TRUE(runner.map(none, [](const int &v) { return v; })
                    .empty());
}

TEST(SweepRunner, TaskExceptionPropagates)
{
    harness::SweepRunner runner(4);
    std::vector<int> items(16, 1);
    EXPECT_THROW(
        runner.map(items,
                   [](const int &v) -> int {
                       if (v)
                           throw std::runtime_error("boom");
                       return v;
                   }),
        std::runtime_error);
}

} // anonymous namespace
