/**
 * @file
 * SweepRunner tests: ordered collection, parallel determinism, and
 * exception propagation.
 *
 * The determinism tests are the contract the figure benches' --jobs=N
 * flag rests on: a sweep run on 8 threads must produce the same
 * per-config Totals, bit for bit, as a serial run.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>

#include "harness/sweep.hh"
#include "harness/system.hh"

namespace
{

/** A small but non-trivial config: one burst through a short ring. */
harness::ExperimentConfig
tinyConfig(idio::Policy policy, double gbps)
{
    harness::ExperimentConfig cfg;
    cfg.numNfs = 2;
    cfg.nfKind = harness::NfKind::TouchDrop;
    cfg.nic.ringSize = 128;
    cfg.rateGbps = gbps;
    cfg.applyPolicy(policy);
    return cfg;
}

harness::Totals
runOne(const harness::ExperimentConfig &cfg)
{
    harness::TestSystem sys(cfg);
    sys.start();
    sys.runFor(2 * sim::oneMs);
    return sys.totals();
}

std::vector<harness::ExperimentConfig>
fig10StyleConfigs()
{
    std::vector<harness::ExperimentConfig> configs;
    for (double gbps : {100.0, 25.0}) {
        for (auto policy : {idio::Policy::Ddio, idio::Policy::Idio})
            configs.push_back(tinyConfig(policy, gbps));
    }
    return configs;
}

TEST(SweepRunner, MapPreservesOrder)
{
    harness::SweepRunner runner(4);
    std::vector<int> items(64);
    for (int i = 0; i < 64; ++i)
        items[i] = i;
    const auto out =
        runner.map(items, [](const int &v) { return v * v; });
    ASSERT_EQ(out.size(), 64u);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(SweepRunner, ParallelMatchesSerialBitIdentical)
{
    const auto configs = fig10StyleConfigs();

    harness::SweepRunner serial(1);
    harness::SweepRunner parallel(8);
    const auto a = serial.map(configs, runOne);
    const auto b = parallel.map(configs, runOne);

    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i], b[i])
            << "config " << i << " diverged under parallel execution";
    }
}

TEST(SweepRunner, SameSeedRunsAreIdentical)
{
    const auto cfg = tinyConfig(idio::Policy::Idio, 100.0);
    const auto first = runOne(cfg);
    const auto second = runOne(cfg);
    EXPECT_EQ(first, second) << "same-seed reruns must be identical";
}

TEST(SweepRunner, HardwareJobsIsPositive)
{
    EXPECT_GE(harness::SweepRunner::hardwareJobs(), 1u);
}

TEST(SweepRunner, WorkersClampedToHardwareAndTasks)
{
    // The fix for the parallel-slower-than-serial pathology: a runner
    // asked for more jobs than the host has hardware threads (or than
    // there are tasks) must not oversubscribe.
    harness::SweepRunner runner(64);
    const unsigned hw = harness::SweepRunner::hardwareJobs();
    EXPECT_LE(runner.plannedWorkers(1000), hw);
    EXPECT_LE(runner.plannedWorkers(3), 3u);
    EXPECT_EQ(runner.plannedWorkers(0), 0u);

    // Without the clamp the old behavior (min(jobs, tasks)) returns.
    harness::SweepRunner unclamped(64);
    harness::SweepRunnerTestAccess::disableHardwareClamp(unclamped);
    EXPECT_EQ(unclamped.plannedWorkers(1000), 64u);
}

TEST(SweepRunner, EmptyInputYieldsEmptyOutput)
{
    harness::SweepRunner runner(8);
    const std::vector<int> none;
    EXPECT_TRUE(runner.map(none, [](const int &v) { return v; })
                    .empty());
}

TEST(SweepRunner, TaskExceptionPropagates)
{
    harness::SweepRunner runner(4);
    std::vector<int> items(16, 1);
    EXPECT_THROW(
        runner.map(items,
                   [](const int &v) -> int {
                       if (v)
                           throw std::runtime_error("boom");
                       return v;
                   }),
        std::runtime_error);
}

TEST(SweepRunner, SerialThrowStopsAtFirstFailingItem)
{
    // The serial path (jobs<=1) runs in-place with no capture layer:
    // the failing item's exception propagates immediately and no
    // later item runs.
    harness::SweepRunner runner(1);
    std::vector<int> items = {0, 1, 2, 3, 4, 5, 6, 7};
    std::vector<int> executed;
    try {
        runner.map(items, [&](const int &v) -> int {
            executed.push_back(v);
            if (v == 3)
                throw std::runtime_error("item 3 failed");
            return v;
        });
        FAIL() << "expected the task exception to propagate";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "item 3 failed");
    }
    EXPECT_EQ(executed, (std::vector<int>{0, 1, 2, 3}));
}

TEST(SweepRunner, ParallelRethrowsFirstErrorAfterAllJoin)
{
    // The parallel path captures the first exception (by completion
    // order) and rethrows it only after every worker joined — so all
    // remaining items still execute. The hardware clamp is disabled
    // so the pool is real even on a single-CPU host.
    harness::SweepRunner runner(4);
    harness::SweepRunnerTestAccess::disableHardwareClamp(runner);
    std::vector<int> items(32);
    for (int i = 0; i < 32; ++i)
        items[i] = i;

    std::atomic<int> executed{0};
    try {
        runner.map(items, [&](const int &v) -> int {
            executed.fetch_add(1);
            if (v == 5)
                throw std::runtime_error("item 5 failed");
            return v;
        });
        FAIL() << "expected the task exception to propagate";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "item 5 failed");
    }
    EXPECT_EQ(executed.load(), 32);
}

TEST(SweepRunner, ParallelAllThrowPropagatesExactlyOneOfThem)
{
    harness::SweepRunner runner(4);
    harness::SweepRunnerTestAccess::disableHardwareClamp(runner);
    std::vector<int> items = {10, 11, 12, 13, 14, 15};
    try {
        runner.map(items, [](const int &v) -> int {
            throw std::runtime_error("item " + std::to_string(v));
        });
        FAIL() << "expected a task exception to propagate";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        ASSERT_EQ(what.rfind("item 1", 0), 0u) << what;
        const int id = std::stoi(what.substr(5));
        EXPECT_GE(id, 10);
        EXPECT_LE(id, 15);
    }
}

TEST(SweepRunner, RunnerIsReusableAfterThrow)
{
    // A throw must not poison the runner: the next map() call fills
    // every result slot (results start default-constructed and each
    // successful task overwrites its own).
    harness::SweepRunner runner(4);
    std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};

    EXPECT_THROW(runner.map(items,
                            [](const int &) -> int {
                                throw std::runtime_error("boom");
                            }),
                 std::runtime_error);

    const auto out =
        runner.map(items, [](const int &v) { return v * 10; });
    ASSERT_EQ(out.size(), items.size());
    for (std::size_t i = 0; i < items.size(); ++i)
        EXPECT_EQ(out[i], items[i] * 10);
}

} // anonymous namespace
