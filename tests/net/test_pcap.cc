/**
 * @file
 * Pcap writer/reader round-trip tests.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "net/pcap.hh"

namespace
{

class PcapTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path = ::testing::TempDir() + "idio_pcap_test_" +
               std::to_string(::getpid()) + "_" +
               ::testing::UnitTest::GetInstance()
                   ->current_test_info()
                   ->name() +
               ".pcap";
    }

    void TearDown() override { std::remove(path.c_str()); }

    net::Packet
    packet(std::uint16_t srcPort, std::uint32_t bytes,
           std::uint8_t dscp = 0)
    {
        net::Packet p;
        p.flow.srcIp = 0x0a000001;
        p.flow.dstIp = 0x0a000002;
        p.flow.srcPort = srcPort;
        p.flow.dstPort = 5000;
        p.frameBytes = bytes;
        p.dscp = dscp;
        return p;
    }

    std::string path;
};

TEST_F(PcapTest, RoundTripPreservesIdentity)
{
    {
        net::PcapWriter w(path);
        w.record(10 * sim::oneUs, packet(1000, 1514, 0));
        w.record(25 * sim::oneUs, packet(1001, 1024, 40));
        w.record(3 * sim::oneMs, packet(1002, 64));
        EXPECT_EQ(w.count(), 3u);
    }

    const auto trace = net::PcapReader::readAll(path);
    ASSERT_EQ(trace.size(), 3u);

    EXPECT_EQ(trace[0].when, 10 * sim::oneUs);
    EXPECT_EQ(trace[0].pkt.flow.srcPort, 1000);
    EXPECT_EQ(trace[0].pkt.frameBytes, 1514u);
    EXPECT_EQ(trace[0].pkt.dscp, 0);

    EXPECT_EQ(trace[1].when, 25 * sim::oneUs);
    EXPECT_EQ(trace[1].pkt.dscp, 40);
    EXPECT_EQ(trace[1].pkt.frameBytes, 1024u);

    EXPECT_EQ(trace[2].when, 3 * sim::oneMs);
    EXPECT_EQ(trace[2].pkt.frameBytes, 64u);
}

TEST_F(PcapTest, TimestampPrecisionIsNanoseconds)
{
    {
        net::PcapWriter w(path);
        w.record(sim::oneSec + 123 * sim::oneNs, packet(1, 64));
    }
    const auto trace = net::PcapReader::readAll(path);
    ASSERT_EQ(trace.size(), 1u);
    EXPECT_EQ(trace[0].when, sim::oneSec + 123 * sim::oneNs);
}

TEST_F(PcapTest, SnapLenTruncatesButKeepsOrigLen)
{
    {
        net::PcapWriter w(path, /*snapLen=*/64);
        w.record(0, packet(7, 1514));
    }
    const auto trace = net::PcapReader::readAll(path);
    ASSERT_EQ(trace.size(), 1u);
    EXPECT_EQ(trace[0].pkt.frameBytes, 1514u) << "origLen preserved";
    EXPECT_EQ(trace[0].pkt.flow.srcPort, 7) << "headers still parsed";
}

TEST_F(PcapTest, EmptyCapture)
{
    { net::PcapWriter w(path); }
    EXPECT_TRUE(net::PcapReader::readAll(path).empty());
}

TEST_F(PcapTest, MagicNumberIsStandard)
{
    { net::PcapWriter w(path); }
    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::uint32_t magic = 0;
    ASSERT_EQ(std::fread(&magic, 4, 1, f), 1u);
    std::fclose(f);
    EXPECT_EQ(magic, 0xa1b23c4du) << "nanosecond pcap magic";
}

TEST_F(PcapTest, ManyRecords)
{
    {
        net::PcapWriter w(path);
        for (int i = 0; i < 1000; ++i) {
            w.record(sim::Tick(i) * sim::oneUs,
                     packet(std::uint16_t(i), 64 + (i % 1400)));
        }
    }
    const auto trace = net::PcapReader::readAll(path);
    ASSERT_EQ(trace.size(), 1000u);
    for (int i = 0; i < 1000; ++i) {
        ASSERT_EQ(trace[i].pkt.flow.srcPort, std::uint16_t(i));
        ASSERT_EQ(trace[i].when, sim::Tick(i) * sim::oneUs);
    }
}

TEST(PcapDeath, MissingFileIsFatal)
{
    EXPECT_EXIT(net::PcapReader::readAll("/nonexistent/x.pcap"),
                ::testing::ExitedWithCode(1), "cannot open");
}

} // anonymous namespace
