/**
 * @file
 * Wire-format header tests: round trips and checksum math.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "net/headers.hh"

namespace
{

TEST(Ethernet, RoundTrip)
{
    net::EthernetHeader h;
    h.dst = net::MacAddr{1, 2, 3, 4, 5, 6};
    h.src = net::MacAddr{7, 8, 9, 10, 11, 12};
    h.etherType = 0x0800;

    std::uint8_t buf[net::EthernetHeader::wireBytes];
    h.write(buf);
    EXPECT_EQ(net::EthernetHeader::read(buf), h);
}

TEST(Ethernet, WireLayout)
{
    net::EthernetHeader h;
    h.dst = net::MacAddr{0xAA, 0, 0, 0, 0, 0xBB};
    std::uint8_t buf[14] = {};
    h.write(buf);
    EXPECT_EQ(buf[0], 0xAA);
    EXPECT_EQ(buf[5], 0xBB);
    EXPECT_EQ(buf[12], 0x08); // ethertype big-endian
    EXPECT_EQ(buf[13], 0x00);
}

TEST(Ipv4, RoundTrip)
{
    net::Ipv4Header h;
    h.dscp = 40;
    h.ecn = 1;
    h.totalLength = 1500;
    h.identification = 0x1234;
    h.ttl = 17;
    h.protocol = net::IpProto::Udp;
    h.srcIp = 0x0a000001;
    h.dstIp = 0xc0a80102;

    std::uint8_t buf[net::Ipv4Header::wireBytes];
    h.write(buf);
    EXPECT_EQ(net::Ipv4Header::read(buf), h);
}

TEST(Ipv4, DscpOccupiesHighSixBits)
{
    net::Ipv4Header h;
    h.dscp = 0x3F;
    h.ecn = 0x3;
    std::uint8_t buf[20];
    h.write(buf);
    EXPECT_EQ(buf[1], 0xFF);

    h.dscp = 32; // class-1 marker bit only
    h.ecn = 0;
    h.write(buf);
    EXPECT_EQ(buf[1], 0x80);
}

TEST(Ipv4, ChecksumValidatesToZero)
{
    net::Ipv4Header h;
    h.srcIp = 0x01020304;
    h.dstIp = 0x05060708;
    h.totalLength = 100;
    std::uint8_t buf[20];
    h.write(buf);
    // Ones-complement sum over a header with a correct checksum is 0.
    EXPECT_EQ(net::Ipv4Header::checksum(buf, 20), 0);
}

TEST(Ipv4, KnownChecksumVector)
{
    // Classic example from RFC 1071 discussions.
    const std::uint8_t data[] = {0x45, 0x00, 0x00, 0x3c, 0x1c, 0x46,
                                 0x40, 0x00, 0x40, 0x06, 0x00, 0x00,
                                 0xac, 0x10, 0x0a, 0x63, 0xac, 0x10,
                                 0x0a, 0x0c};
    EXPECT_EQ(net::Ipv4Header::checksum(data, 20), 0xB1E6);
}

TEST(Udp, RoundTrip)
{
    net::UdpHeader h;
    h.srcPort = 40000;
    h.dstPort = 5001;
    h.length = 1472;

    std::uint8_t buf[net::UdpHeader::wireBytes];
    h.write(buf);
    EXPECT_EQ(net::UdpHeader::read(buf), h);
}

TEST(Constants, HeaderSizesMatchPaperAssumptions)
{
    // "Header size of packets in all well-known protocols is less
    // than 64 bytes": our combined header must fit one cacheline.
    EXPECT_EQ(net::headerBytes, 42u);
    EXPECT_LT(net::headerBytes, 64u);
    EXPECT_EQ(net::maxFrameBytes, 1514u);
}

TEST(IpToString, Formats)
{
    EXPECT_EQ(net::ipToString(0x0a000001), "10.0.0.1");
    EXPECT_EQ(net::ipToString(0xffffffff), "255.255.255.255");
}

} // anonymous namespace
