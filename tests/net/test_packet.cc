/**
 * @file
 * Packet model tests: sizes, line math, header render/parse.
 */

#include <gtest/gtest.h>

#include "net/packet.hh"

namespace
{

TEST(Packet, PayloadAndLines)
{
    net::Packet p;
    p.frameBytes = 1514;
    EXPECT_EQ(p.payloadBytes(), 1514u - 42u);
    EXPECT_EQ(p.lines(), 24u);

    p.frameBytes = 64;
    EXPECT_EQ(p.lines(), 1u);
    p.frameBytes = 65;
    EXPECT_EQ(p.lines(), 2u);
    p.frameBytes = 1024;
    EXPECT_EQ(p.lines(), 16u);
}

TEST(Packet, TinyFrameHasNoPayload)
{
    net::Packet p;
    p.frameBytes = 40;
    EXPECT_EQ(p.payloadBytes(), 0u);
}

TEST(Packet, HeaderRenderParseRoundTrip)
{
    net::Packet p;
    p.flow.srcIp = 0x0a010203;
    p.flow.dstIp = 0x0a040506;
    p.flow.srcPort = 40123;
    p.flow.dstPort = 5007;
    p.flow.proto = net::IpProto::Udp;
    p.dscp = 40;
    p.frameBytes = 1024;
    p.seq = 99;

    std::uint8_t buf[net::headerBytes];
    p.renderHeaders(buf);
    const net::Packet q = net::Packet::parseHeaders(buf);

    EXPECT_EQ(q.flow, p.flow);
    EXPECT_EQ(q.dscp, p.dscp);
    EXPECT_EQ(q.frameBytes, p.frameBytes);
}

TEST(Packet, RenderedIpv4ChecksumIsValid)
{
    net::Packet p;
    p.flow.srcIp = 1;
    p.flow.dstIp = 2;
    p.frameBytes = 256;
    std::uint8_t buf[net::headerBytes];
    p.renderHeaders(buf);
    EXPECT_EQ(net::Ipv4Header::checksum(
                  buf + net::EthernetHeader::wireBytes, 20),
              0);
}

} // anonymous namespace
