/**
 * @file
 * FiveTuple and Toeplitz hash tests.
 */

#include <gtest/gtest.h>

#include "net/flow.hh"

namespace
{

TEST(Toeplitz, KnownVectors)
{
    // Microsoft RSS verification suite vectors (IPv4 with ports,
    // default key): 66.9.149.187:2794 -> 161.142.100.80:1766.
    net::FiveTuple t;
    t.srcIp = (66u << 24) | (9u << 16) | (149u << 8) | 187u;
    t.dstIp = (161u << 24) | (142u << 16) | (100u << 8) | 80u;
    t.srcPort = 2794;
    t.dstPort = 1766;
    EXPECT_EQ(net::toeplitzHash(t), 0x51ccc178u);

    // 199.92.111.2:14230 -> 65.69.140.83:4739
    net::FiveTuple u;
    u.srcIp = (199u << 24) | (92u << 16) | (111u << 8) | 2u;
    u.dstIp = (65u << 24) | (69u << 16) | (140u << 8) | 83u;
    u.srcPort = 14230;
    u.dstPort = 4739;
    EXPECT_EQ(net::toeplitzHash(u), 0xc626b0eau);
}

TEST(Toeplitz, Deterministic)
{
    net::FiveTuple t;
    t.srcIp = 0x01020304;
    t.dstIp = 0x05060708;
    t.srcPort = 1;
    t.dstPort = 2;
    EXPECT_EQ(net::toeplitzHash(t), net::toeplitzHash(t));
}

TEST(Toeplitz, SensitiveToEveryField)
{
    net::FiveTuple base;
    base.srcIp = 0x0a000001;
    base.dstIp = 0x0a000002;
    base.srcPort = 1000;
    base.dstPort = 2000;
    const auto h = net::toeplitzHash(base);

    auto t = base;
    t.srcIp ^= 1;
    EXPECT_NE(net::toeplitzHash(t), h);
    t = base;
    t.dstIp ^= 1;
    EXPECT_NE(net::toeplitzHash(t), h);
    t = base;
    t.srcPort ^= 1;
    EXPECT_NE(net::toeplitzHash(t), h);
    t = base;
    t.dstPort ^= 1;
    EXPECT_NE(net::toeplitzHash(t), h);
}

TEST(FiveTuple, EqualityAndHash)
{
    net::FiveTuple a, b;
    a.srcIp = b.srcIp = 5;
    a.dstPort = b.dstPort = 7;
    EXPECT_EQ(a, b);
    EXPECT_EQ(net::FiveTupleHash{}(a), net::FiveTupleHash{}(b));
    b.srcPort = 9;
    EXPECT_NE(a, b);
}

} // anonymous namespace
