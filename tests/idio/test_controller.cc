/**
 * @file
 * IDIO controller tests: Algorithm 1 data plane and control plane.
 */

#include <gtest/gtest.h>

#include "idio/controller.hh"
#include "sim/simulation.hh"

namespace
{

class ControllerTest : public ::testing::Test
{
  protected:
    void
    build(idio::Policy policy,
          std::function<void(idio::IdioConfig &)> tweak = {})
    {
        cache::HierarchyConfig hcfg;
        hcfg.numCores = 2;
        hier = std::make_unique<cache::MemoryHierarchy>(s, "sys", hcfg);
        auto cfg = idio::IdioConfig::preset(policy);
        if (tweak)
            tweak(cfg);
        ctrl = std::make_unique<idio::IdioController>(s, "idio", *hier,
                                                      cfg);
        ctrl->start();
    }

    nic::TlpMeta
    meta(sim::CoreId core, bool header = false, bool burst = false,
         std::uint8_t appClass = 0)
    {
        nic::TlpMeta m;
        m.destCore = core;
        m.isHeader = header;
        m.isBurst = burst;
        m.appClass = appClass;
        return m;
    }

    sim::Simulation s;
    std::unique_ptr<cache::MemoryHierarchy> hier;
    std::unique_ptr<idio::IdioController> ctrl;
};

TEST_F(ControllerTest, DdioPolicyWritesToLlcOnly)
{
    build(idio::Policy::Ddio);
    ctrl->dmaWrite(0x1000, meta(0, true, true));
    s.runFor(sim::oneUs);

    EXPECT_TRUE(hier->llc().contains(0x1000));
    EXPECT_FALSE(hier->mlcOf(0).contains(0x1000));
    EXPECT_EQ(ctrl->headerHints.get(), 0u);
}

TEST_F(ControllerTest, HeadersAlwaysPrefetched)
{
    build(idio::Policy::Idio);
    // No burst: the FSM is in the LLC state, but headers are special.
    ctrl->dmaWrite(0x1000, meta(0, /*header=*/true));
    s.runFor(sim::oneUs);

    EXPECT_TRUE(hier->mlcOf(0).contains(0x1000));
    EXPECT_EQ(ctrl->headerHints.get(), 1u);
}

TEST_F(ControllerTest, HeaderOfClass1StillCached)
{
    build(idio::Policy::Idio);
    ctrl->dmaWrite(0x1000, meta(0, /*header=*/true, false, 1));
    s.runFor(sim::oneUs);
    // Alg. 1 checks isHeader before appClass: the header goes to the
    // cache hierarchy, not DRAM.
    EXPECT_TRUE(hier->mlcOf(0).contains(0x1000));
    EXPECT_EQ(hier->directDramWrites.get(), 0u);
}

TEST_F(ControllerTest, Class1PayloadBypassesToDram)
{
    build(idio::Policy::Idio);
    ctrl->dmaWrite(0x2000, meta(0, false, false, 1));
    s.runFor(sim::oneUs);

    EXPECT_FALSE(hier->llc().contains(0x2000));
    EXPECT_FALSE(hier->mlcOf(0).contains(0x2000));
    EXPECT_EQ(hier->dram().writeCount(), 1u);
    EXPECT_EQ(ctrl->directDramSteers.get(), 1u);
}

TEST_F(ControllerTest, PayloadPrefetchedOnlyInMlcState)
{
    build(idio::Policy::Idio);
    // Power-on state is LLC: payload stays put. (Stay inside the
    // first control interval: idle low-pressure intervals legally
    // walk the FSM back towards MLC.)
    ctrl->dmaWrite(0x3000, meta(0));
    s.runFor(sim::nsToTicks(100.0));
    EXPECT_TRUE(hier->llc().contains(0x3000));
    EXPECT_FALSE(hier->mlcOf(0).contains(0x3000));
    EXPECT_EQ(ctrl->status(0), idio::Steering::Llc);

    // A burst flips the FSM to MLC; subsequent payloads get hints.
    ctrl->dmaWrite(0x3040, meta(0, false, /*burst=*/true));
    s.runFor(sim::nsToTicks(100.0));
    EXPECT_EQ(ctrl->status(0), idio::Steering::Mlc);
    EXPECT_TRUE(hier->mlcOf(0).contains(0x3040));

    ctrl->dmaWrite(0x3080, meta(0));
    s.runFor(sim::nsToTicks(100.0));
    EXPECT_TRUE(hier->mlcOf(0).contains(0x3080));
    EXPECT_GE(ctrl->payloadHints.get(), 2u);
}

TEST_F(ControllerTest, StaticPolicyAlwaysMlc)
{
    build(idio::Policy::Static);
    EXPECT_EQ(ctrl->status(0), idio::Steering::Mlc);
    ctrl->dmaWrite(0x4000, meta(0));
    s.runFor(sim::oneUs);
    EXPECT_TRUE(hier->mlcOf(0).contains(0x4000));
}

TEST_F(ControllerTest, PerCoreStatusIndependent)
{
    build(idio::Policy::Idio);
    ctrl->dmaWrite(0x5000, meta(0, false, /*burst=*/true));
    EXPECT_EQ(ctrl->status(0), idio::Steering::Mlc);
    EXPECT_EQ(ctrl->status(1), idio::Steering::Llc);
}

TEST_F(ControllerTest, ControlPlaneDisablesUnderPressure)
{
    build(idio::Policy::Idio, [](idio::IdioConfig &c) {
        c.mlcThrMtps = 2.0; // 2 writebacks per us trips the FSM
    });

    ctrl->dmaWrite(0x6000, meta(0, false, /*burst=*/true));
    EXPECT_EQ(ctrl->status(0), idio::Steering::Mlc);

    // Generate heavy MLC writeback pressure on core 0 for several
    // control intervals: churn dirty lines through the MLC.
    sim::Addr a = 0x100000;
    for (int interval = 0; interval < 10; ++interval) {
        for (int i = 0; i < 8000; ++i) {
            hier->coreWrite(0, a);
            a += 64;
        }
        s.runFor(sim::oneUs);
    }
    EXPECT_EQ(ctrl->status(0), idio::Steering::Llc)
        << "sustained pressure must disable MLC prefetching";
    EXPECT_GT(ctrl->highPressureIntervals.get(), 2u);
}

TEST_F(ControllerTest, QuietPeriodReenables)
{
    build(idio::Policy::Idio, [](idio::IdioConfig &c) {
        c.mlcThrMtps = 2.0;
    });
    ctrl->dmaWrite(0x6000, meta(0, false, true));

    sim::Addr a = 0x100000;
    for (int interval = 0; interval < 10; ++interval) {
        for (int i = 0; i < 8000; ++i) {
            hier->coreWrite(0, a);
            a += 64;
        }
        s.runFor(sim::oneUs);
    }
    ASSERT_EQ(ctrl->status(0), idio::Steering::Llc);

    // Quiet interval: pressure low, the counter walks back.
    s.runFor(2 * sim::oneUs);
    EXPECT_EQ(ctrl->status(0), idio::Steering::Mlc);
}

TEST_F(ControllerTest, AverageTracksLongTermRate)
{
    build(idio::Policy::Idio, [](idio::IdioConfig &c) {
        c.avgWindow = 4; // tiny window for the test
    });

    // ~10 writebacks per interval for 8 intervals.
    for (int interval = 0; interval < 8; ++interval) {
        for (int i = 0; i < 10; ++i)
            hier->coreWrite(0, 0x200000 + (interval * 10 + i) * 64);
        // Push them out by churning (tiny MLC would be needed for
        // real evictions; emulate via pcieRead of dirty lines).
        for (int i = 0; i < 10; ++i)
            hier->pcieRead(0x200000 + (interval * 10 + i) * 64);
        s.runFor(sim::oneUs);
    }
    EXPECT_NEAR(static_cast<double>(ctrl->mlcWbAvg(0)), 10.0, 3.0);
}

TEST_F(ControllerTest, DmaReadDelegatesToHierarchy)
{
    build(idio::Policy::Ddio);
    ctrl->dmaWrite(0x7000, meta(0));
    const auto lat = ctrl->dmaRead(0x7000);
    EXPECT_GT(lat, 0u);
    EXPECT_EQ(hier->pcieReads.get(), 1u);
}

} // anonymous namespace
