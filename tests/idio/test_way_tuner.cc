/**
 * @file
 * IAT-style DDIO way tuner tests.
 */

#include <gtest/gtest.h>

#include "idio/way_tuner.hh"
#include "sim/simulation.hh"

namespace
{

class WayTunerTest : public ::testing::Test
{
  protected:
    WayTunerTest()
    {
        cache::HierarchyConfig hcfg;
        hcfg.numCores = 2;
        hcfg.llcPerCore = {8192, 8, 24}; // tiny: easy to pressure
        hcfg.ddioWays = 2;
        hier = std::make_unique<cache::MemoryHierarchy>(s, "sys", hcfg);

        idio::WayTunerConfig tcfg;
        tcfg.interval = 10 * sim::oneUs;
        tcfg.growLeakThreshold = 16;
        tcfg.shrinkLeakThreshold = 2;
        tcfg.missThreshold = 32;
        tuner = std::make_unique<idio::DdioWayTuner>(s, "tuner", *hier,
                                                     tcfg);
        tuner->start();
    }

    sim::Simulation s;
    std::unique_ptr<cache::MemoryHierarchy> hier;
    std::unique_ptr<idio::DdioWayTuner> tuner;
};

TEST_F(WayTunerTest, GrowsUnderDmaLeak)
{
    ASSERT_EQ(tuner->currentWays(), 2u);
    // Stream DMA far beyond the 2-way partition for a few intervals.
    sim::Addr a = 0;
    for (int interval = 0; interval < 5; ++interval) {
        for (int i = 0; i < 2000; ++i) {
            hier->pcieWrite(a);
            a += 64;
        }
        s.runFor(10 * sim::oneUs);
    }
    EXPECT_GT(tuner->currentWays(), 2u);
    EXPECT_GT(tuner->grows.get(), 0u);
}

TEST_F(WayTunerTest, ShrinksUnderCpuPressureWithoutLeak)
{
    // First grow the partition.
    sim::Addr a = 0;
    for (int interval = 0; interval < 5; ++interval) {
        for (int i = 0; i < 2000; ++i) {
            hier->pcieWrite(a);
            a += 64;
        }
        s.runFor(10 * sim::oneUs);
    }
    const auto grown = tuner->currentWays();
    ASSERT_GT(grown, 2u);

    // Now pure CPU misses, no DMA.
    sim::Addr c = 0x4000000;
    for (int interval = 0; interval < 5; ++interval) {
        for (int i = 0; i < 500; ++i) {
            hier->coreRead(0, c);
            c += 64;
        }
        s.runFor(10 * sim::oneUs);
    }
    EXPECT_LT(tuner->currentWays(), grown);
    EXPECT_GT(tuner->shrinks.get(), 0u);
}

TEST_F(WayTunerTest, RespectsBounds)
{
    // Heavy leak for many intervals must saturate at maxWays (8).
    sim::Addr a = 0;
    for (int interval = 0; interval < 30; ++interval) {
        for (int i = 0; i < 2000; ++i) {
            hier->pcieWrite(a);
            a += 64;
        }
        s.runFor(10 * sim::oneUs);
    }
    EXPECT_LE(tuner->currentWays(), 8u);
}

TEST_F(WayTunerTest, IdleDoesNothing)
{
    s.runFor(sim::oneMs);
    EXPECT_EQ(tuner->currentWays(), 2u);
    EXPECT_EQ(tuner->grows.get(), 0u);
    EXPECT_EQ(tuner->shrinks.get(), 0u);
    EXPECT_GT(tuner->evaluations.get(), 50u);
}

TEST_F(WayTunerTest, StopFreezesPartition)
{
    tuner->stop();
    sim::Addr a = 0;
    for (int i = 0; i < 5000; ++i) {
        hier->pcieWrite(a);
        a += 64;
    }
    s.runFor(sim::oneMs);
    EXPECT_EQ(tuner->currentWays(), 2u);
}

TEST(LlcRepartition, DynamicWaysAffectFutureAllocations)
{
    sim::Simulation s;
    cache::HierarchyConfig hcfg;
    hcfg.numCores = 1;
    cache::MemoryHierarchy hier(s, "sys", hcfg);

    hier.llc().setDdioWays(4);
    EXPECT_EQ(hier.llc().ddioWays(), 4u);
    hier.pcieWrite(0x1000);
    auto ref = hier.llc().probe(0x1000);
    ASSERT_TRUE(ref);
    EXPECT_LT(ref.way, 4u);
}

TEST(LlcRepartitionDeath, OutOfRangeIsFatal)
{
    sim::Simulation s;
    cache::HierarchyConfig hcfg;
    hcfg.numCores = 1;
    cache::MemoryHierarchy hier(s, "sys", hcfg);
    EXPECT_EXIT(hier.llc().setDdioWays(0),
                ::testing::ExitedWithCode(1), "out of range");
    EXPECT_EXIT(hier.llc().setDdioWays(13),
                ::testing::ExitedWithCode(1), "out of range");
}

} // anonymous namespace
