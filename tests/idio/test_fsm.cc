/**
 * @file
 * Steering FSM tests (paper Fig. 8).
 */

#include <gtest/gtest.h>

#include "idio/fsm.hh"

namespace
{

using idio::Steering;
using idio::SteeringFsm;

TEST(Fsm, PowerOnStateDisablesPrefetch)
{
    SteeringFsm fsm;
    EXPECT_EQ(fsm.state(), 3);
    EXPECT_EQ(fsm.status(), Steering::Llc);
}

TEST(Fsm, BurstJumpsToMlc)
{
    SteeringFsm fsm;
    fsm.onBurst();
    EXPECT_EQ(fsm.state(), 0);
    EXPECT_EQ(fsm.status(), Steering::Mlc);
}

TEST(Fsm, HighPressureWalksTowardLlc)
{
    SteeringFsm fsm;
    fsm.onBurst();
    fsm.step(true);
    EXPECT_EQ(fsm.state(), 1);
    EXPECT_EQ(fsm.status(), Steering::Mlc);
    fsm.step(true);
    EXPECT_EQ(fsm.state(), 2);
    EXPECT_EQ(fsm.status(), Steering::Mlc);
    fsm.step(true);
    EXPECT_EQ(fsm.state(), 3);
    EXPECT_EQ(fsm.status(), Steering::Llc)
        << "three consecutive high-pressure intervals disable MLC";
}

TEST(Fsm, SaturatesAtBothEnds)
{
    SteeringFsm fsm;
    for (int i = 0; i < 10; ++i)
        fsm.step(true);
    EXPECT_EQ(fsm.state(), 3);
    for (int i = 0; i < 10; ++i)
        fsm.step(false);
    EXPECT_EQ(fsm.state(), 0);
    fsm.step(false);
    EXPECT_EQ(fsm.state(), 0);
}

TEST(Fsm, LowPressureReenablesMlc)
{
    SteeringFsm fsm; // at 3 (LLC)
    fsm.step(false);
    EXPECT_EQ(fsm.state(), 2);
    EXPECT_EQ(fsm.status(), Steering::Mlc)
        << "any state below 0b11 reads MLC";
}

TEST(Fsm, PressureOscillationHysteresis)
{
    SteeringFsm fsm;
    fsm.onBurst();
    // Alternating pressure keeps the counter low: status stays MLC.
    for (int i = 0; i < 20; ++i)
        fsm.step(i % 2 == 0);
    EXPECT_EQ(fsm.status(), Steering::Mlc);
}

TEST(Fsm, ResetRestoresPowerOn)
{
    SteeringFsm fsm;
    fsm.onBurst();
    fsm.reset();
    EXPECT_EQ(fsm.state(), 3);
}

TEST(Fsm, BurstDuringRegulationRestartsMlc)
{
    SteeringFsm fsm;
    fsm.onBurst();
    fsm.step(true);
    fsm.step(true);
    fsm.step(true); // disabled
    EXPECT_EQ(fsm.status(), Steering::Llc);
    fsm.onBurst(); // a new burst re-enables immediately
    EXPECT_EQ(fsm.status(), Steering::Mlc);
}

} // anonymous namespace
