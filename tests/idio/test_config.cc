/**
 * @file
 * IDIO policy preset tests.
 */

#include <gtest/gtest.h>

#include "idio/config.hh"

namespace
{

using idio::IdioConfig;
using idio::Policy;

TEST(Presets, Ddio)
{
    const auto c = IdioConfig::preset(Policy::Ddio);
    EXPECT_FALSE(c.selfInvalidate);
    EXPECT_FALSE(c.mlcPrefetch);
    EXPECT_FALSE(c.directDram);
}

TEST(Presets, InvalidateOnly)
{
    const auto c = IdioConfig::preset(Policy::InvalidateOnly);
    EXPECT_TRUE(c.selfInvalidate);
    EXPECT_FALSE(c.mlcPrefetch);
}

TEST(Presets, PrefetchOnly)
{
    const auto c = IdioConfig::preset(Policy::PrefetchOnly);
    EXPECT_FALSE(c.selfInvalidate);
    EXPECT_TRUE(c.mlcPrefetch);
    EXPECT_TRUE(c.dynamicFsm);
}

TEST(Presets, StaticHardcodesMlc)
{
    const auto c = IdioConfig::preset(Policy::Static);
    EXPECT_TRUE(c.selfInvalidate);
    EXPECT_TRUE(c.mlcPrefetch);
    EXPECT_FALSE(c.dynamicFsm);
}

TEST(Presets, IdioEnablesEverything)
{
    const auto c = IdioConfig::preset(Policy::Idio);
    EXPECT_TRUE(c.selfInvalidate);
    EXPECT_TRUE(c.mlcPrefetch);
    EXPECT_TRUE(c.dynamicFsm);
    EXPECT_TRUE(c.directDram);
}

TEST(Presets, PaperDefaults)
{
    const IdioConfig c;
    EXPECT_DOUBLE_EQ(c.mlcThrMtps, 50.0);
    EXPECT_EQ(c.controlInterval, sim::oneUs);
    EXPECT_EQ(c.avgWindow, 8192u);
    EXPECT_EQ(c.prefetchQueueDepth, 32u);
}

TEST(Presets, ThresholdConversion)
{
    IdioConfig c;
    c.mlcThrMtps = 50.0;
    c.controlInterval = sim::oneUs;
    // 50 MTPS over 1 us = 50 transactions.
    EXPECT_EQ(c.thresholdPerInterval(), 50u);

    c.mlcThrMtps = 10.0;
    EXPECT_EQ(c.thresholdPerInterval(), 10u);
}

TEST(PolicyNames, RoundTrip)
{
    for (auto p : {Policy::Ddio, Policy::InvalidateOnly,
                   Policy::PrefetchOnly, Policy::Static, Policy::Idio})
        EXPECT_EQ(idio::parsePolicy(idio::policyName(p)), p);
    EXPECT_EQ(idio::parsePolicy("idio"), Policy::Idio);
    EXPECT_EQ(idio::parsePolicy("ddio"), Policy::Ddio);
}

TEST(PolicyNamesDeath, UnknownIsFatal)
{
    EXPECT_EXIT(idio::parsePolicy("bogus"),
                ::testing::ExitedWithCode(1), "unknown");
}

} // anonymous namespace
