/**
 * @file
 * CPU-paced prefetcher tests (the paper's suggested refinement).
 */

#include <gtest/gtest.h>

#include <functional>

#include "idio/controller.hh"
#include "idio/prefetcher.hh"
#include "sim/simulation.hh"

namespace
{

class CpuPacedTest : public ::testing::Test
{
  protected:
    CpuPacedTest()
    {
        cache::HierarchyConfig hcfg;
        hcfg.numCores = 1;
        hier = std::make_unique<cache::MemoryHierarchy>(s, "sys", hcfg);
        pf = std::make_unique<idio::MlcPrefetcher>(
            s, "pf", *hier, 0, /*depth=*/32,
            sim::nsToTicks(10.0), /*window=*/4);
        // The delegate is non-owning: bind a fixture-member callable
        // that lives as long as the hierarchy does.
        retireFn = [this](sim::CoreId) { pf->onRetire(); };
        hier->setPrefetchRetireObserver(
            cache::MemoryHierarchy::PrefetchRetireObserver::fromCallable(
                &retireFn));
    }

    void
    hintLines(int n, sim::Addr base = 0x10000)
    {
        for (int i = 0; i < n; ++i) {
            hier->pcieWrite(base + std::uint64_t(i) * 64);
            pf->hint(base + std::uint64_t(i) * 64);
        }
    }

    sim::Simulation s;
    std::unique_ptr<cache::MemoryHierarchy> hier;
    std::unique_ptr<idio::MlcPrefetcher> pf;
    std::function<void(sim::CoreId)> retireFn;
};

TEST_F(CpuPacedTest, StallsAtWindow)
{
    hintLines(10);
    s.runFor(sim::oneUs);

    // Only the 4-line window may be outstanding.
    EXPECT_EQ(pf->fills.get(), 4u);
    EXPECT_EQ(pf->outstandingLines(), 4u);
    EXPECT_GT(pf->stalls.get(), 0u);
    EXPECT_EQ(pf->queueDepth(), 6u);
}

TEST_F(CpuPacedTest, ConsumptionReleasesCredits)
{
    hintLines(10);
    s.runFor(sim::oneUs);
    ASSERT_EQ(pf->fills.get(), 4u);

    // The core consumes two prefetched lines; two more issue.
    hier->coreRead(0, 0x10000);
    hier->coreRead(0, 0x10040);
    s.runFor(sim::oneUs);

    EXPECT_EQ(pf->fills.get(), 6u);
    EXPECT_EQ(pf->outstandingLines(), 4u);
}

TEST_F(CpuPacedTest, SelfInvalidationReleasesCredits)
{
    hintLines(10);
    s.runFor(sim::oneUs);
    ASSERT_EQ(pf->outstandingLines(), 4u);

    // An unread prefetched buffer dropped by self-invalidation also
    // frees its credit (the line left the MLC).
    hier->coreInvalidate(0, 0x10000);
    s.runFor(sim::oneUs);
    EXPECT_EQ(pf->fills.get(), 5u);
}

TEST_F(CpuPacedTest, DemandHitRetiresOnlyOnce)
{
    hintLines(4);
    s.runFor(sim::oneUs);
    hier->coreRead(0, 0x10000);
    hier->coreRead(0, 0x10000); // second hit must not double-retire
    EXPECT_EQ(pf->outstandingLines(), 3u);
}

TEST_F(CpuPacedTest, FullPipelineDrains)
{
    hintLines(32);
    // Alternate consumption and time so the window keeps releasing.
    for (int i = 0; i < 32; ++i) {
        s.runFor(sim::oneUs);
        hier->coreRead(0, 0x10000 + std::uint64_t(i) * 64);
    }
    s.runFor(sim::oneUs);
    EXPECT_EQ(pf->fills.get(), 32u);
    EXPECT_EQ(pf->queueDepth(), 0u);
    EXPECT_EQ(pf->outstandingLines(), 0u);
}

TEST(CpuPacedController, EndToEndConfigWorks)
{
    sim::Simulation s;
    cache::HierarchyConfig hcfg;
    hcfg.numCores = 2;
    cache::MemoryHierarchy hier(s, "sys", hcfg);

    auto cfg = idio::IdioConfig::preset(idio::Policy::Idio);
    cfg.prefetcher = idio::PrefetcherKind::CpuPaced;
    cfg.prefetchWindowLines = 8;
    idio::IdioController ctrl(s, "idio", hier, cfg);
    ctrl.start();

    nic::TlpMeta m;
    m.destCore = 0;
    m.isHeader = true;
    for (int i = 0; i < 20; ++i)
        ctrl.dmaWrite(0x20000 + std::uint64_t(i) * 64, m);
    s.runFor(sim::oneUs);

    EXPECT_EQ(ctrl.prefetcher(0).outstandingLines(), 8u);
    EXPECT_LE(ctrl.prefetcher(0).fills.get(), 8u);
}

} // anonymous namespace
