/**
 * @file
 * Queued MLC prefetcher tests (paper Sec. V-C).
 */

#include <gtest/gtest.h>

#include "idio/prefetcher.hh"
#include "sim/simulation.hh"

namespace
{

class PrefetcherTest : public ::testing::Test
{
  protected:
    PrefetcherTest()
    {
        cache::HierarchyConfig hcfg;
        hcfg.numCores = 1;
        hier = std::make_unique<cache::MemoryHierarchy>(s, "sys", hcfg);
        pf = std::make_unique<idio::MlcPrefetcher>(
            s, "pf", *hier, 0, /*depth=*/32,
            /*issuePeriod=*/sim::nsToTicks(10.0));
    }

    sim::Simulation s;
    std::unique_ptr<cache::MemoryHierarchy> hier;
    std::unique_ptr<idio::MlcPrefetcher> pf;
};

TEST_F(PrefetcherTest, HintMovesLlcLineIntoMlc)
{
    hier->pcieWrite(0x1000);
    pf->hint(0x1000);
    s.runFor(sim::oneUs);

    EXPECT_TRUE(hier->mlcOf(0).contains(0x1000));
    EXPECT_EQ(pf->issued.get(), 1u);
    EXPECT_EQ(pf->fills.get(), 1u);
}

TEST_F(PrefetcherTest, QueueDropsWhenFull)
{
    for (int i = 0; i < 64; ++i)
        pf->hint(0x100000 + i * 64);
    EXPECT_EQ(pf->hintsReceived.get(), 64u);
    EXPECT_EQ(pf->hintsDropped.get(), 64u - 32u - 0u)
        << "only the 32-deep queue's worth may be accepted";
}

TEST_F(PrefetcherTest, IssuePacing)
{
    for (int i = 0; i < 10; ++i) {
        hier->pcieWrite(0x2000 + i * 64);
        pf->hint(0x2000 + i * 64);
    }
    // 10 ns per issue: after 55 ns, 5 issued.
    s.runFor(sim::nsToTicks(55.0));
    EXPECT_EQ(pf->issued.get(), 5u);
    s.runFor(sim::oneUs);
    EXPECT_EQ(pf->issued.get(), 10u);
    EXPECT_EQ(pf->queueDepth(), 0u);
}

TEST_F(PrefetcherTest, RedundantHintIssuesButDoesNotFill)
{
    hier->coreRead(0, 0x3000); // already in MLC
    pf->hint(0x3000);
    s.runFor(sim::oneUs);
    EXPECT_EQ(pf->issued.get(), 1u);
    EXPECT_EQ(pf->fills.get(), 0u);
}

TEST_F(PrefetcherTest, DrainsThenAcceptsMore)
{
    for (int i = 0; i < 32; ++i)
        pf->hint(0x4000 + i * 64);
    s.runFor(sim::oneUs);
    EXPECT_EQ(pf->queueDepth(), 0u);
    pf->hint(0x9000);
    EXPECT_EQ(pf->hintsDropped.get(), 0u);
    s.runFor(sim::oneUs);
    EXPECT_EQ(pf->issued.get(), 33u);
}

} // anonymous namespace
