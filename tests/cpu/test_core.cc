/**
 * @file
 * Core timing model tests.
 */

#include <gtest/gtest.h>

#include "cpu/core.hh"
#include "sim/simulation.hh"

namespace
{

cache::HierarchyConfig
smallConfig()
{
    cache::HierarchyConfig cfg;
    cfg.numCores = 2;
    cfg.l1 = {512, 2, 2};
    cfg.mlc = {2048, 4, 12};
    cfg.llcPerCore = {4096, 4, 24};
    return cfg;
}

class CoreTest : public ::testing::Test
{
  protected:
    CoreTest()
        : hier(s, "sys", smallConfig()), core0(s, "core0", 0, hier)
    {
    }

    sim::Simulation s;
    cache::MemoryHierarchy hier;
    cpu::Core core0;
};

TEST_F(CoreTest, ReadSpansLines)
{
    // 1514 bytes from an aligned base touch 24 lines.
    core0.read(0x10000, 1514);
    EXPECT_EQ(core0.reads.get(), 24u);
    // Unaligned 8-byte read crossing a boundary touches 2 lines.
    core0.read(0x2003C, 8);
    EXPECT_EQ(core0.reads.get(), 26u);
}

TEST_F(CoreTest, WriteSpansLines)
{
    core0.write(0x10000, 128);
    EXPECT_EQ(core0.writes.get(), 2u);
}

TEST_F(CoreTest, DefaultByteCountIsOneLine)
{
    core0.read(0x10000);
    EXPECT_EQ(core0.reads.get(), 1u);
}

TEST_F(CoreTest, LatencyAccumulatesOverLines)
{
    const auto one = core0.read(0x10000, 1);
    const auto many = core0.read(0x20000, 10 * 64);
    EXPECT_GT(many, one);
}

TEST_F(CoreTest, HitLevelCountersTrack)
{
    core0.read(0x10000, 1); // DRAM fill
    core0.read(0x10000, 1); // L1 hit
    EXPECT_EQ(core0.hitsDram.get(), 1u);
    EXPECT_EQ(core0.hitsL1.get(), 1u);
}

TEST_F(CoreTest, InvalidateChargesPerLine)
{
    core0.write(0x10000, 1514);
    const auto lat = core0.invalidate(0x10000, 1514);
    EXPECT_EQ(core0.invalidations.get(), 24u);
    EXPECT_EQ(lat, 24 * hier.config().cyclesToTicks(1));
    EXPECT_FALSE(hier.mlcOf(0).contains(0x10000));
}

TEST_F(CoreTest, WorkloadStepsAtReturnedDelays)
{
    class FixedDelay : public cpu::Workload
    {
      public:
        sim::Tick
        step(cpu::Core &) override
        {
            ++stepsRun;
            return 100;
        }
        std::string label() const override { return "fixed"; }
        int stepsRun = 0;
    };

    FixedDelay wl;
    core0.run(wl);
    s.runFor(1000);
    // Steps at t = 0, 100, ..., 1000 inclusive.
    EXPECT_EQ(wl.stepsRun, 11);
    EXPECT_EQ(core0.steps.get(), 11u);
}

TEST_F(CoreTest, HaltStopsStepping)
{
    class FixedDelay : public cpu::Workload
    {
      public:
        sim::Tick
        step(cpu::Core &) override
        {
            ++stepsRun;
            return 100;
        }
        std::string label() const override { return "fixed"; }
        int stepsRun = 0;
    };

    FixedDelay wl;
    core0.run(wl);
    s.runFor(550);
    core0.halt();
    s.runFor(1000);
    // Steps at t = 0, 100, ..., 500 before the halt.
    EXPECT_EQ(wl.stepsRun, 6);
}

TEST_F(CoreTest, VariableDelaysRespected)
{
    class Doubling : public cpu::Workload
    {
      public:
        sim::Tick
        step(cpu::Core &) override
        {
            when.push_back(now);
            delay *= 2;
            now += delay;
            return delay;
        }
        std::string label() const override { return "doubling"; }
        sim::Tick delay = 50;
        sim::Tick now = 0;
        std::vector<sim::Tick> when;
    };

    Doubling wl;
    core0.run(wl);
    s.runFor(10000);
    // Steps at 0, 100, 300, 700, 1500, 3100, 6300 -> 7 steps by 10 us.
    EXPECT_EQ(wl.when.size(), 7u);
}

TEST_F(CoreTest, TwoCoresShareHierarchy)
{
    cpu::Core core1(s, "core1", 1, hier);
    core0.read(0x30000, 1);
    core1.read(0x30000, 1);
    EXPECT_EQ(hier.coherenceMigrations.get(), 1u);
}

} // anonymous namespace
