/**
 * @file
 * Trace-replay generator tests.
 */

#include <gtest/gtest.h>

#include "gen/traffic.hh"
#include "mem/phys_alloc.hh"
#include "sim/simulation.hh"

namespace
{

class NullTarget : public nic::DmaTarget
{
  public:
    void dmaWrite(sim::Addr, const nic::TlpMeta &) override {}
    sim::Tick dmaRead(sim::Addr) override { return 1; }
};

class TraceGenTest : public ::testing::Test
{
  protected:
    TraceGenTest()
    {
        nic::NicConfig ncfg;
        ncfg.ringSize = 1024;
        port = std::make_unique<nic::Nic>(s, "nic", ncfg, target,
                                          alloc, 2);
        for (std::uint32_t i = 0; i < 1024; ++i)
            port->rxRing().swArm(i, alloc.allocate(2048, 64), i);
    }

    static net::TraceRecord
    rec(sim::Tick when, std::uint16_t srcPort,
        std::uint32_t bytes = 1514)
    {
        net::TraceRecord r;
        r.when = when;
        r.pkt.flow.srcIp = 1;
        r.pkt.flow.dstIp = 2;
        r.pkt.flow.srcPort = srcPort;
        r.pkt.flow.dstPort = 5000;
        r.pkt.frameBytes = bytes;
        return r;
    }

    sim::Simulation s;
    NullTarget target;
    mem::PhysAllocator alloc;
    std::unique_ptr<nic::Nic> port;
};

TEST_F(TraceGenTest, ReplaysAtRecordedOffsets)
{
    std::vector<net::TraceRecord> trace = {
        rec(100 * sim::oneUs, 1),
        rec(150 * sim::oneUs, 2),
        rec(400 * sim::oneUs, 3),
    };
    gen::TraceTrafficGen gen(s, "trace", *port, trace);
    gen.start();

    // Offsets normalise to 0, 50 us, 300 us.
    s.runFor(40 * sim::oneUs);
    EXPECT_EQ(gen.packetsSent.get(), 1u) << "offsets are normalised "
                                            "to the first record";
    s.runFor(20 * sim::oneUs);
    EXPECT_EQ(gen.packetsSent.get(), 2u);
    s.runFor(sim::oneMs);
    EXPECT_EQ(gen.packetsSent.get(), 3u);
}

TEST_F(TraceGenTest, PreservesFlowIdentityAndSize)
{
    std::vector<net::TraceRecord> trace = {rec(0, 77, 1024)};
    gen::TraceTrafficGen gen(s, "trace", *port, trace);
    gen.start();
    s.runFor(sim::oneMs);

    EXPECT_EQ(port->rxRing().slot(0).pkt.flow.srcPort, 77);
    EXPECT_EQ(port->rxRing().slot(0).pkt.frameBytes, 1024u);
}

TEST_F(TraceGenTest, LoopRepeatsTrace)
{
    std::vector<net::TraceRecord> trace = {
        rec(0, 1),
        rec(10 * sim::oneUs, 2),
    };
    gen::TraceTrafficGen gen(s, "trace", *port, trace, /*loop=*/true,
                             /*loopGap=*/100 * sim::oneUs);
    gen.start();
    s.runFor(sim::oneMs);
    EXPECT_GT(gen.packetsSent.get(), 10u);
}

TEST_F(TraceGenTest, NonLoopingStopsAtEnd)
{
    std::vector<net::TraceRecord> trace = {rec(0, 1), rec(10, 2)};
    gen::TraceTrafficGen gen(s, "trace", *port, trace);
    gen.start();
    s.runFor(10 * sim::oneMs);
    EXPECT_EQ(gen.packetsSent.get(), 2u);
    EXPECT_EQ(gen.traceLength(), 2u);
}

TEST_F(TraceGenTest, WorksWithPcapRoundTrip)
{
    // Write a capture, read it back, replay it.
    const std::string path = ::testing::TempDir() +
                             "idio_trace_gen_roundtrip.pcap";
    {
        net::PcapWriter w(path);
        for (int i = 0; i < 20; ++i) {
            auto r = rec(sim::Tick(i) * 50 * sim::oneUs,
                         std::uint16_t(100 + i));
            w.record(r.when, r.pkt);
        }
    }
    auto trace = net::PcapReader::readAll(path);
    std::remove(path.c_str());
    ASSERT_EQ(trace.size(), 20u);

    gen::TraceTrafficGen gen(s, "trace", *port, trace);
    gen.start();
    s.runFor(2 * sim::oneMs);
    EXPECT_EQ(gen.packetsSent.get(), 20u);
    EXPECT_EQ(port->rxPackets.get(), 20u);
}

TEST(TraceGenDeath, EmptyTraceIsFatal)
{
    sim::Simulation s;
    NullTarget target;
    mem::PhysAllocator alloc;
    nic::Nic port(s, "nic", {}, target, alloc, 2);
    EXPECT_EXIT(gen::TraceTrafficGen(s, "t", port, {}),
                ::testing::ExitedWithCode(1), "empty trace");
}

} // anonymous namespace
