/**
 * @file
 * Traffic generator tests: rates, burst parameterisation, flows.
 */

#include <gtest/gtest.h>

#include "gen/traffic.hh"
#include "mem/phys_alloc.hh"
#include "sim/simulation.hh"

namespace
{

class NullTarget : public nic::DmaTarget
{
  public:
    void dmaWrite(sim::Addr, const nic::TlpMeta &) override {}
    sim::Tick dmaRead(sim::Addr) override { return 1; }
};

class TrafficTest : public ::testing::Test
{
  protected:
    TrafficTest()
    {
        nic::NicConfig ncfg;
        ncfg.ringSize = 4096;
        port = std::make_unique<nic::Nic>(s, "nic", ncfg, target, alloc,
                                          2);
        // Arm generously so nothing drops.
        for (std::uint32_t i = 0; i < 4096; ++i)
            port->rxRing().swArm(i, alloc.allocate(2048, 64), i);
    }

    gen::TrafficConfig
    baseConfig()
    {
        gen::TrafficConfig tc;
        tc.frameBytes = 1514;
        tc.flows = gen::makeFlows(4);
        return tc;
    }

    sim::Simulation s;
    NullTarget target;
    mem::PhysAllocator alloc;
    std::unique_ptr<nic::Nic> port;
};

TEST_F(TrafficTest, SteadyRateAccuracy)
{
    gen::SteadyTrafficGen gen(s, "gen", *port, baseConfig(), 10.0);
    gen.start();
    s.runFor(10 * sim::oneMs);

    // 10 Gbps of 1514 B frames = 825.6 kpps -> 8256 packets in 10 ms.
    const auto sent = gen.packetsSent.get();
    EXPECT_NEAR(static_cast<double>(sent), 8256.0, 10.0);
    EXPECT_EQ(gen.bytesSent.get(), sent * 1514);
}

TEST_F(TrafficTest, SteadyGapMatchesRate)
{
    gen::SteadyTrafficGen gen(s, "gen", *port, baseConfig(), 100.0);
    // 1514 B at 100 Gbps = 121.12 ns.
    EXPECT_EQ(gen.gap(), sim::nsToTicks(1514 * 8 / 100.0));
}

TEST_F(TrafficTest, BurstyEmitsExactBurstSize)
{
    gen::BurstyTrafficGen::BurstParams bp;
    bp.burstPeriod = 10 * sim::oneMs;
    bp.burstPackets = 1024;
    bp.burstRateGbps = 100.0;
    gen::BurstyTrafficGen gen(s, "gen", *port, baseConfig(), bp);
    gen.start();

    // After the first burst length, exactly 1024 packets.
    s.runFor(2 * sim::oneMs);
    EXPECT_EQ(gen.packetsSent.get(), 1024u);

    // After one full period, the second burst adds another 1024.
    s.runFor(10 * sim::oneMs);
    EXPECT_EQ(gen.packetsSent.get(), 2048u);
}

TEST_F(TrafficTest, BurstLengthFormulaMatchesPaper)
{
    // Paper Sec. VI: 1024 packets of 1514 B at 100 Gbps -> 0.124 ms
    // (the paper rounds to 0.115-0.124 ms depending on framing).
    gen::BurstyTrafficGen::BurstParams bp;
    bp.burstPackets = 1024;
    bp.burstRateGbps = 100.0;
    gen::BurstyTrafficGen gen(s, "gen", *port, baseConfig(), bp);
    const double ms = sim::ticksToSeconds(gen.burstLength()) * 1e3;
    EXPECT_NEAR(ms, 0.124, 0.002);

    bp.burstRateGbps = 10.0;
    gen::BurstyTrafficGen gen10(s, "gen10", *port, baseConfig(), bp);
    EXPECT_NEAR(sim::ticksToSeconds(gen10.burstLength()) * 1e3, 1.24,
                0.02);
}

TEST_F(TrafficTest, PoissonMeanRate)
{
    gen::PoissonTrafficGen gen(s, "gen", *port, baseConfig(), 10.0);
    gen.start();
    s.runFor(20 * sim::oneMs);
    // Expect ~16512 packets; Poisson sd ~128, allow 5 sigma.
    EXPECT_NEAR(static_cast<double>(gen.packetsSent.get()), 16512.0,
                700.0);
}

TEST_F(TrafficTest, RoundRobinFlowSelection)
{
    auto tc = baseConfig();
    tc.flows = gen::makeFlows(3);
    gen::SteadyTrafficGen gen(s, "gen", *port, tc, 10.0);
    gen.start();
    s.runFor(sim::oneMs);
    // Packet count is a multiple-ish of 3; flows rotate evenly. We
    // verify via the NIC ring contents: consecutive slots carry
    // consecutive flow source ports.
    const auto &ring = port->rxRing();
    ASSERT_GT(port->rxPackets.get(), 6u);
    const auto p0 = ring.slot(0).pkt.flow.srcPort;
    const auto p1 = ring.slot(1).pkt.flow.srcPort;
    const auto p2 = ring.slot(2).pkt.flow.srcPort;
    const auto p3 = ring.slot(3).pkt.flow.srcPort;
    EXPECT_NE(p0, p1);
    EXPECT_NE(p1, p2);
    EXPECT_EQ(p0, p3); // wraps after 3 flows
}

TEST_F(TrafficTest, StopAtCeasesGeneration)
{
    auto tc = baseConfig();
    tc.stopAt = sim::oneMs;
    gen::SteadyTrafficGen gen(s, "gen", *port, tc, 10.0);
    gen.start();
    s.runFor(10 * sim::oneMs);
    // ~825 packets in the first ms, nothing afterwards.
    EXPECT_NEAR(static_cast<double>(gen.packetsSent.get()), 825.0,
                5.0);
}

TEST_F(TrafficTest, MakeFlowsDistinct)
{
    const auto flows = gen::makeFlows(8, 6000, 40);
    EXPECT_EQ(flows.size(), 8u);
    for (std::size_t i = 0; i < flows.size(); ++i) {
        EXPECT_EQ(flows[i].dscp, 40);
        for (std::size_t j = i + 1; j < flows.size(); ++j)
            EXPECT_FALSE(flows[i].tuple == flows[j].tuple);
    }
}

TEST(TrafficDeath, EmptyFlowListIsFatal)
{
    sim::Simulation s;
    NullTarget target;
    mem::PhysAllocator alloc;
    nic::Nic port(s, "nic", {}, target, alloc, 2);
    gen::TrafficConfig tc; // no flows
    EXPECT_EXIT(gen::SteadyTrafficGen(s, "gen", port, tc, 10.0),
                ::testing::ExitedWithCode(1), "no flows");
}

} // anonymous namespace
