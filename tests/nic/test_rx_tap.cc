/**
 * @file
 * NIC RX tap tests (the pcap-recording hook).
 */

#include <gtest/gtest.h>

#include "mem/phys_alloc.hh"
#include "nic/nic.hh"
#include "sim/simulation.hh"

namespace
{

class NullTarget : public nic::DmaTarget
{
  public:
    void dmaWrite(sim::Addr, const nic::TlpMeta &) override {}
    sim::Tick dmaRead(sim::Addr) override { return 1; }
};

TEST(RxTap, SeesEveryDeliveryIncludingDrops)
{
    sim::Simulation s;
    NullTarget target;
    mem::PhysAllocator alloc;
    nic::NicConfig cfg;
    cfg.ringSize = 8;
    nic::Nic port(s, "nic", cfg, target, alloc, 2);
    // Arm only 4 descriptors: deliveries 5.. will drop.
    for (std::uint32_t i = 0; i < 4; ++i)
        port.rxRing().swArm(i, alloc.allocate(2048, 64), i);

    std::vector<std::uint64_t> seen;
    port.setRxTap([&](sim::Tick, const net::Packet &p) {
        seen.push_back(p.seq);
    });

    for (int i = 0; i < 6; ++i) {
        net::Packet p;
        p.flow.srcPort = 1;
        p.frameBytes = 64;
        p.seq = i;
        port.deliver(p);
    }
    s.runFor(sim::oneMs);

    ASSERT_EQ(seen.size(), 6u) << "drops are observed too";
    EXPECT_EQ(port.rxDrops.get(), 2u);
    for (int i = 0; i < 6; ++i)
        EXPECT_EQ(seen[i], std::uint64_t(i));
}

TEST(RxTap, TimestampIsArrivalTime)
{
    sim::Simulation s;
    NullTarget target;
    mem::PhysAllocator alloc;
    nic::Nic port(s, "nic", {}, target, alloc, 2);
    port.rxRing().swArm(0, alloc.allocate(2048, 64), 0);

    sim::Tick tapped = 0;
    port.setRxTap(
        [&](sim::Tick when, const net::Packet &) { tapped = when; });

    s.eventq().schedule(5 * sim::oneUs, [&] {
        net::Packet p;
        p.frameBytes = 64;
        port.deliver(p);
    });
    s.runFor(sim::oneMs);
    EXPECT_EQ(tapped, 5 * sim::oneUs);
}

TEST(RxTap, NoTapNoCrash)
{
    sim::Simulation s;
    NullTarget target;
    mem::PhysAllocator alloc;
    nic::Nic port(s, "nic", {}, target, alloc, 2);
    port.rxRing().swArm(0, alloc.allocate(2048, 64), 0);
    net::Packet p;
    p.frameBytes = 64;
    port.deliver(p);
    s.runFor(sim::oneMs);
    SUCCEED();
}

} // anonymous namespace
