/**
 * @file
 * IDIO classifier tests: app class, destination core, edge-triggered
 * burst detection (paper Sec. V-A).
 */

#include <gtest/gtest.h>

#include "nic/classifier.hh"
#include "sim/simulation.hh"

namespace
{

class ClassifierTest : public ::testing::Test
{
  protected:
    ClassifierTest() : fdir(4), cls(s, "cls", fdir, cfgFor(), 4)
    {
        cls.start();
    }

    static nic::ClassifierConfig
    cfgFor()
    {
        nic::ClassifierConfig c;
        c.rxBurstThresholdGbps = 10.0; // 1250 B per 1 us interval
        return c;
    }

    net::Packet
    packet(std::uint16_t srcPort, std::uint8_t dscp = 0,
           std::uint32_t bytes = 1514)
    {
        net::Packet p;
        p.flow.srcIp = 0x0a000001;
        p.flow.dstIp = 0x0a000002;
        p.flow.srcPort = srcPort;
        p.flow.dstPort = 5000;
        p.dscp = dscp;
        p.frameBytes = bytes;
        return p;
    }

    sim::Simulation s;
    nic::FlowDirector fdir;
    nic::IdioClassifier cls;
};

TEST_F(ClassifierTest, AppClassFromDscp)
{
    EXPECT_EQ(cls.classify(packet(1, 0)).appClass, 0);
    EXPECT_EQ(cls.classify(packet(1, 31)).appClass, 0);
    EXPECT_EQ(cls.classify(packet(1, 32)).appClass, 1);
    EXPECT_EQ(cls.classify(packet(1, 63)).appClass, 1);
    EXPECT_EQ(cls.class1Packets.get(), 2u);
}

TEST_F(ClassifierTest, DestCoreFromFlowDirector)
{
    fdir.addRule(packet(77).flow, 2);
    EXPECT_EQ(cls.classify(packet(77)).destCore, 2u);
}

TEST_F(ClassifierTest, ThresholdBytesMatchTenGbps)
{
    // 10 Gbps over 1 us = 1250 bytes.
    EXPECT_EQ(cls.thresholdBytes(), 1250u);
}

TEST_F(ClassifierTest, BurstFlaggedOnCrossingAfterQuiet)
{
    fdir.addRule(packet(1).flow, 0);
    // First MTU packet crosses 1250 B immediately -> burst start.
    const auto c1 = cls.classify(packet(1));
    EXPECT_TRUE(c1.burstActive);
    EXPECT_EQ(cls.burstsDetected.get(), 1u);

    // Further packets in the same interval do not re-signal.
    EXPECT_FALSE(cls.classify(packet(1)).burstActive);
    EXPECT_FALSE(cls.classify(packet(1)).burstActive);
}

TEST_F(ClassifierTest, SustainedTrafficSignalsOnlyOnce)
{
    fdir.addRule(packet(1).flow, 0);
    cls.classify(packet(1)); // burst start
    // Cross the threshold in each of the next intervals too.
    for (int interval = 0; interval < 5; ++interval) {
        s.runFor(sim::oneUs);
        const auto c = cls.classify(packet(1));
        EXPECT_FALSE(c.burstActive)
            << "sustained reception must not re-signal";
        cls.classify(packet(1));
    }
    EXPECT_EQ(cls.burstsDetected.get(), 1u);
}

TEST_F(ClassifierTest, NewBurstAfterQuietPeriodSignalsAgain)
{
    fdir.addRule(packet(1).flow, 0);
    cls.classify(packet(1));
    EXPECT_EQ(cls.burstsDetected.get(), 1u);

    // Two full quiet intervals.
    s.runFor(3 * sim::oneUs);
    const auto c = cls.classify(packet(1));
    EXPECT_TRUE(c.burstActive);
    EXPECT_EQ(cls.burstsDetected.get(), 2u);
}

TEST_F(ClassifierTest, SmallPacketsAccumulateToThreshold)
{
    fdir.addRule(packet(1).flow, 0);
    // 64-byte packets: the 20th crosses 1250 bytes.
    for (int i = 0; i < 19; ++i)
        EXPECT_FALSE(cls.classify(packet(1, 0, 64)).burstActive);
    EXPECT_TRUE(cls.classify(packet(1, 0, 64)).burstActive);
}

TEST_F(ClassifierTest, PerCoreCountersIndependent)
{
    fdir.addRule(packet(1).flow, 0);
    fdir.addRule(packet(2).flow, 1);
    EXPECT_TRUE(cls.classify(packet(1)).burstActive);
    // Core 1's counter is untouched by core 0's traffic.
    EXPECT_EQ(cls.burstCounter(1), 0u);
    EXPECT_TRUE(cls.classify(packet(2)).burstActive);
    EXPECT_EQ(cls.burstsDetected.get(), 2u);
}

TEST_F(ClassifierTest, CountersResetEveryInterval)
{
    fdir.addRule(packet(1).flow, 0);
    cls.classify(packet(1));
    EXPECT_GT(cls.burstCounter(0), 0u);
    s.runFor(2 * sim::oneUs);
    EXPECT_EQ(cls.burstCounter(0), 0u);
}

TEST_F(ClassifierTest, TlpForBuildsMetadata)
{
    fdir.addRule(packet(9).flow, 3);
    const auto c = cls.classify(packet(9, 40));
    const auto header = cls.tlpFor(c, true);
    const auto payload = cls.tlpFor(c, false);
    EXPECT_TRUE(header.isHeader);
    EXPECT_FALSE(payload.isHeader);
    EXPECT_EQ(header.appClass, 1);
    EXPECT_EQ(header.destCore, 3u);
}

} // anonymous namespace
