/**
 * @file
 * Flow Director tests: EP rules, ATR learning, RSS fallback.
 */

#include <gtest/gtest.h>

#include "nic/flow_director.hh"

namespace
{

net::FiveTuple
flow(std::uint16_t srcPort, std::uint16_t dstPort = 5000)
{
    net::FiveTuple t;
    t.srcIp = 0x0a000001;
    t.dstIp = 0x0a000002;
    t.srcPort = srcPort;
    t.dstPort = dstPort;
    return t;
}

TEST(FlowDirector, EpRuleWins)
{
    nic::FlowDirector fd(8);
    fd.addRule(flow(1000), 5);
    EXPECT_EQ(fd.lookup(flow(1000)), 5u);
    EXPECT_EQ(fd.ruleCount(), 1u);
}

TEST(FlowDirector, RemoveRuleRestoresFallback)
{
    nic::FlowDirector fd(8);
    const auto fallback = fd.lookup(flow(1000));
    fd.addRule(flow(1000), 7);
    EXPECT_EQ(fd.lookup(flow(1000)), 7u);
    fd.removeRule(flow(1000));
    EXPECT_EQ(fd.lookup(flow(1000)), fallback);
}

TEST(FlowDirector, AtrLearning)
{
    nic::FlowDirector fd(8);
    fd.learn(flow(2000), 3);
    EXPECT_EQ(fd.lookup(flow(2000)), 3u);
    EXPECT_EQ(fd.learnedCount(), 1u);
}

TEST(FlowDirector, EpOverridesAtr)
{
    nic::FlowDirector fd(8);
    fd.learn(flow(2000), 3);
    fd.addRule(flow(2000), 6);
    EXPECT_EQ(fd.lookup(flow(2000)), 6u);
}

TEST(FlowDirector, RssFallbackInRange)
{
    nic::FlowDirector fd(4);
    for (std::uint16_t p = 1; p < 200; ++p)
        EXPECT_LT(fd.lookup(flow(p)), 4u);
}

TEST(FlowDirector, RssFallbackSpreadsFlows)
{
    nic::FlowDirector fd(4);
    std::vector<int> hits(4, 0);
    for (std::uint16_t p = 1; p <= 400; ++p)
        ++hits[fd.lookup(flow(p, 6000 + p))];
    for (int c = 0; c < 4; ++c)
        EXPECT_GT(hits[c], 40) << "core " << c;
}

TEST(FlowDirector, LearnIsIdempotentPerIndex)
{
    nic::FlowDirector fd(8);
    fd.learn(flow(2000), 3);
    fd.learn(flow(2000), 4); // re-learn updates
    EXPECT_EQ(fd.lookup(flow(2000)), 4u);
    EXPECT_EQ(fd.learnedCount(), 1u);
}

TEST(FlowDirectorRss, DefaultRetaIsRoundRobinFill)
{
    nic::FlowDirector fd(8, 8192, /*rssTableEntries=*/128,
                         /*rssQueues=*/4);
    const auto &reta = fd.indirection();
    ASSERT_EQ(reta.size(), 128u);
    for (std::size_t i = 0; i < reta.size(); ++i)
        EXPECT_EQ(reta[i], i % 4) << "entry " << i;
}

TEST(FlowDirectorRss, RetaQueueAlwaysInRange)
{
    nic::FlowDirector fd(8, 8192, 128, 4);
    for (std::uint16_t p = 1; p <= 1000; ++p)
        EXPECT_LT(fd.rssQueue(flow(p, 6000 + p)), 4u);
}

TEST(FlowDirectorRss, SetIndirectionOverridesSteering)
{
    nic::FlowDirector fd(8, 8192, 128, 4);
    // Steer every hash bucket to queue 2: all flows land there.
    fd.setIndirection(std::vector<std::uint32_t>(128, 2));
    for (std::uint16_t p = 1; p <= 200; ++p)
        EXPECT_EQ(fd.rssQueue(flow(p, 6000 + p)), 2u);
}

TEST(FlowDirectorRss, LegacyModeMatchesDirectModulus)
{
    // rssTableEntries == 0 keeps the historical hash % numCores path
    // byte-for-byte; single-queue configs depend on this.
    nic::FlowDirector legacy(4);
    for (std::uint16_t p = 1; p <= 200; ++p) {
        const auto f = flow(p, 6000 + p);
        EXPECT_EQ(legacy.rssQueue(f),
                  net::toeplitzHash(f) % 4u);
        EXPECT_TRUE(legacy.indirection().empty());
    }
}

TEST(FlowDirectorRss, LookupFallsBackToReta)
{
    // With no EP rule and no ATR entry, lookup() routes through the
    // RETA, so a forced single-queue table steers everything.
    nic::FlowDirector fd(8, 8192, 64, 4);
    fd.setIndirection(std::vector<std::uint32_t>(64, 3));
    EXPECT_EQ(fd.lookup(flow(4242)), 3u);
    fd.addRule(flow(4242), 1); // EP still wins over RSS
    EXPECT_EQ(fd.lookup(flow(4242)), 1u);
}

TEST(FlowDirectorRssDeath, BadRetaUseIsFatal)
{
    EXPECT_EXIT(nic::FlowDirector(4, 8192, /*rssTableEntries=*/100),
                ::testing::ExitedWithCode(1), "power of two");

    nic::FlowDirector legacy(4);
    EXPECT_EXIT(legacy.setIndirection({0, 1, 2, 3}),
                ::testing::ExitedWithCode(1), "");

    nic::FlowDirector reta(4, 8192, 64, 4);
    EXPECT_EXIT(reta.setIndirection({0, 1}),
                ::testing::ExitedWithCode(1), "");
}

TEST(FlowDirectorDeath, BadTableSizeIsFatal)
{
    EXPECT_EXIT(nic::FlowDirector(4, 1000),
                ::testing::ExitedWithCode(1), "power of two");
    EXPECT_EXIT(nic::FlowDirector(0), ::testing::ExitedWithCode(1),
                "at least one");
}

} // anonymous namespace
