/**
 * @file
 * RX descriptor ring tests: HW/SW handshake, wrap-around, capacity.
 */

#include <gtest/gtest.h>

#include "nic/rx_ring.hh"

namespace
{

net::Packet
pkt(std::uint64_t seq)
{
    net::Packet p;
    p.seq = seq;
    p.frameBytes = 1514;
    return p;
}

class RxRingTest : public ::testing::Test
{
  protected:
    RxRingTest() : ring(0x100000, 16)
    {
        for (std::uint32_t i = 0; i < 16; ++i)
            ring.swArm(i, 0x200000 + i * 2048, i);
    }

    nic::RxRing ring;
};

TEST_F(RxRingTest, DescriptorAddresses)
{
    EXPECT_EQ(ring.descAddr(0), 0x100000u);
    EXPECT_EQ(ring.descAddr(1), 0x100000u + nic::rxDescBytes);
    EXPECT_EQ(ring.descAddr(15), 0x100000u + 15 * nic::rxDescBytes);
}

TEST_F(RxRingTest, FullyArmedInitially)
{
    EXPECT_EQ(ring.armedCount(), 16u);
    EXPECT_EQ(ring.backlog(), 0u);
    EXPECT_TRUE(ring.hwCanFill());
    EXPECT_FALSE(ring.swReady());
}

TEST_F(RxRingTest, ClaimCompleteConsumeCycle)
{
    const auto idx = ring.hwClaim(pkt(1));
    EXPECT_EQ(idx, 0u);
    EXPECT_FALSE(ring.swReady()) << "DD not yet set";

    ring.hwComplete(idx);
    EXPECT_TRUE(ring.swReady());
    EXPECT_EQ(ring.backlog(), 1u);

    const auto consumed = ring.swConsume();
    EXPECT_EQ(consumed, 0u);
    EXPECT_EQ(ring.slot(consumed).pkt.seq, 1u);
    EXPECT_EQ(ring.backlog(), 0u);
    EXPECT_EQ(ring.armedCount(), 15u);
}

TEST_F(RxRingTest, InOrderConsumption)
{
    for (int i = 0; i < 5; ++i)
        ring.hwComplete(ring.hwClaim(pkt(i)));
    for (int i = 0; i < 5; ++i) {
        const auto idx = ring.swConsume();
        EXPECT_EQ(ring.slot(idx).pkt.seq, std::uint64_t(i));
    }
}

TEST_F(RxRingTest, RingFullWhenAllClaimed)
{
    for (int i = 0; i < 16; ++i)
        ring.hwClaim(pkt(i));
    EXPECT_FALSE(ring.hwCanFill());
    EXPECT_EQ(ring.armedCount(), 0u);
}

TEST_F(RxRingTest, ConsumedSlotNotFillableUntilRearmed)
{
    ring.hwComplete(ring.hwClaim(pkt(1)));
    ring.swConsume();
    // hwNext has advanced past slot 0; wrap around to reach it again.
    for (int i = 0; i < 15; ++i)
        ring.hwComplete(ring.hwClaim(pkt(2 + i)));
    EXPECT_FALSE(ring.hwCanFill()) << "slot 0 is not re-armed yet";

    ring.swArm(0, 0x300000, 42);
    EXPECT_TRUE(ring.hwCanFill());
}

TEST_F(RxRingTest, WrapAroundPreservesOrder)
{
    // Run three full ring cycles.
    std::uint64_t seq = 0;
    for (int cycle = 0; cycle < 3; ++cycle) {
        for (int i = 0; i < 16; ++i)
            ring.hwComplete(ring.hwClaim(pkt(seq++)));
        std::uint64_t expect = cycle * 16ull;
        for (int i = 0; i < 16; ++i) {
            const auto idx = ring.swConsume();
            EXPECT_EQ(ring.slot(idx).pkt.seq, expect++);
            ring.swArm(idx, 0x200000 + idx * 2048, idx);
        }
    }
}

TEST_F(RxRingTest, InFlightSlotNotReady)
{
    const auto idx = ring.hwClaim(pkt(1));
    EXPECT_FALSE(ring.swReady());
    EXPECT_EQ(ring.armedCount(), 15u) << "in-flight not counted free";
    ring.hwComplete(idx);
    EXPECT_TRUE(ring.swReady());
}

TEST(RxRingDeath, TooSmallRingPanics)
{
    EXPECT_DEATH(nic::RxRing(0x1000, 4), "too small");
}

TEST(RxRingDeath, BadHandshakesPanic)
{
    nic::RxRing ring(0x1000, 8);
    EXPECT_DEATH(ring.hwClaim(pkt(1)), "unavailable");
    ring.swArm(0, 0x2000, 0);
    const auto idx = ring.hwClaim(pkt(1));
    EXPECT_DEATH(ring.swConsume(), "incomplete");
    ring.hwComplete(idx);
    EXPECT_DEATH(ring.hwComplete(idx), "not in flight");
}

} // anonymous namespace
