/**
 * @file
 * NIC top-level tests: RX DMA streams, descriptor writeback, drops,
 * TX reads.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/phys_alloc.hh"
#include "nic/nic.hh"
#include "sim/simulation.hh"

namespace
{

class CountingTarget : public nic::DmaTarget
{
  public:
    void
    dmaWrite(sim::Addr addr, const nic::TlpMeta &meta) override
    {
        writes.push_back({addr, meta});
    }

    sim::Tick
    dmaRead(sim::Addr addr) override
    {
        reads.push_back(addr);
        return 10;
    }

    struct W
    {
        sim::Addr addr;
        nic::TlpMeta meta;
    };
    std::vector<W> writes;
    std::vector<sim::Addr> reads;
};

class NicTest : public ::testing::Test
{
  protected:
    NicTest()
    {
        nic::NicConfig cfg;
        cfg.ringSize = 32;
        cfg.descWbDelayNs = 100.0;
        port = std::make_unique<nic::Nic>(s, "nic", cfg, target, alloc,
                                          4);
        port->start();
        // Arm the ring like a driver would.
        for (std::uint32_t i = 0; i < 32; ++i) {
            bufs.push_back(alloc.allocate(2048, 64));
            port->rxRing().swArm(i, bufs.back(), i);
        }
    }

    net::Packet
    packet(std::uint32_t bytes = 1514, std::uint8_t dscp = 0)
    {
        net::Packet p;
        p.flow.srcIp = 0x0a000001;
        p.flow.dstIp = 0x0a000002;
        p.flow.srcPort = 1000;
        p.flow.dstPort = 5000;
        p.frameBytes = bytes;
        p.dscp = dscp;
        return p;
    }

    sim::Simulation s;
    CountingTarget target;
    mem::PhysAllocator alloc;
    std::unique_ptr<nic::Nic> port;
    std::vector<sim::Addr> bufs;
};

TEST_F(NicTest, DeliversPayloadLinesPlusDescriptor)
{
    port->deliver(packet(1514)); // 24 payload lines + 2 desc lines
    s.runFor(10 * sim::oneUs);

    ASSERT_EQ(target.writes.size(), 26u);
    // Payload lines target the armed buffer, in order.
    for (int i = 0; i < 24; ++i)
        EXPECT_EQ(target.writes[i].addr, bufs[0] + i * 64u);
    // Descriptor lines follow.
    EXPECT_EQ(target.writes[24].addr, port->rxRing().descAddr(0));
    EXPECT_EQ(target.writes[25].addr,
              port->rxRing().descAddr(0) + 64);
}

TEST_F(NicTest, FirstLineMarkedHeader)
{
    port->deliver(packet(1514));
    s.runFor(10 * sim::oneUs);
    EXPECT_TRUE(target.writes[0].meta.isHeader);
    for (std::size_t i = 1; i < 24; ++i)
        EXPECT_FALSE(target.writes[i].meta.isHeader);
}

TEST_F(NicTest, DescriptorWritesAreAlwaysClass0)
{
    port->deliver(packet(1514, /*dscp=*/40)); // class-1 packet
    s.runFor(10 * sim::oneUs);
    ASSERT_EQ(target.writes.size(), 26u);
    EXPECT_EQ(target.writes[1].meta.appClass, 1) << "payload class 1";
    EXPECT_EQ(target.writes[24].meta.appClass, 0)
        << "descriptors stay on the DDIO path";
    EXPECT_EQ(target.writes[25].meta.appClass, 0);
}

TEST_F(NicTest, DdBitSetAfterDescriptorWriteback)
{
    port->deliver(packet());
    EXPECT_FALSE(port->rxRing().swReady());
    s.runFor(10 * sim::oneUs);
    EXPECT_TRUE(port->rxRing().swReady());
}

TEST_F(NicTest, DescriptorWritebackDelayed)
{
    port->deliver(packet());
    // Payload lines finish within ~24 * 2 ns; the descriptor write
    // waits the configured 100 ns on top.
    s.runFor(sim::nsToTicks(80.0));
    EXPECT_EQ(target.writes.size(), 24u);
    EXPECT_FALSE(port->rxRing().swReady());
    s.runFor(10 * sim::oneUs);
    EXPECT_EQ(target.writes.size(), 26u);
}

TEST_F(NicTest, DropsWhenRingExhausted)
{
    for (int i = 0; i < 40; ++i)
        port->deliver(packet());
    s.runFor(100 * sim::oneUs);

    EXPECT_EQ(port->rxPackets.get(), 40u);
    EXPECT_EQ(port->rxDrops.get(), 8u);
    EXPECT_EQ(port->rxRing().backlog(), 32u);
}

TEST_F(NicTest, SmallPacketSingleLine)
{
    port->deliver(packet(64));
    s.runFor(10 * sim::oneUs);
    EXPECT_EQ(target.writes.size(), 3u); // 1 payload + 2 descriptor
}

TEST_F(NicTest, TransmitReadsEveryLine)
{
    bool done = false;
    port->transmit(bufs[5], 1514, [&] { done = true; });
    s.runFor(10 * sim::oneUs);

    EXPECT_EQ(target.reads.size(), 24u);
    EXPECT_TRUE(done);
    EXPECT_EQ(port->txPackets.get(), 1u);
    EXPECT_EQ(port->txBytes.get(), 1514u);
}

TEST_F(NicTest, RxCountersTrackBytes)
{
    port->deliver(packet(1024));
    port->deliver(packet(512));
    EXPECT_EQ(port->rxBytes.get(), 1536u);
    EXPECT_EQ(port->rxPackets.get(), 2u);
}

} // anonymous namespace
