/**
 * @file
 * DMA engine tests: pacing, ordering, callbacks.
 */

#include <gtest/gtest.h>

#include <vector>

#include "nic/dma.hh"
#include "sim/simulation.hh"

namespace
{

/** Records every transaction with its arrival tick. */
class RecordingTarget : public nic::DmaTarget
{
  public:
    struct Rec
    {
        char kind; // 'W' or 'R'
        sim::Addr addr;
        nic::TlpMeta meta;
        sim::Tick when;
    };

    explicit RecordingTarget(sim::Simulation &s) : s(s) {}

    void
    dmaWrite(sim::Addr addr, const nic::TlpMeta &meta) override
    {
        recs.push_back({'W', addr, meta, s.now()});
    }

    sim::Tick
    dmaRead(sim::Addr addr) override
    {
        recs.push_back({'R', addr, {}, s.now()});
        return 100;
    }

    sim::Simulation &s;
    std::vector<Rec> recs;
};

class DmaTest : public ::testing::Test
{
  protected:
    DmaTest() : target(s), dma(s, "dma", target, 32.0) {}

    sim::Simulation s;
    RecordingTarget target;
    nic::DmaEngine dma; // 32 GB/s -> 2 ns per line
};

TEST_F(DmaTest, WritesArriveInOrder)
{
    dma.enqueueWrite(0x100, {});
    dma.enqueueWrite(0x140, {});
    dma.enqueueWrite(0x180, {});
    s.runFor(sim::oneUs);

    ASSERT_EQ(target.recs.size(), 3u);
    EXPECT_EQ(target.recs[0].addr, 0x100u);
    EXPECT_EQ(target.recs[1].addr, 0x140u);
    EXPECT_EQ(target.recs[2].addr, 0x180u);
    EXPECT_EQ(dma.linesWritten.get(), 3u);
}

TEST_F(DmaTest, BandwidthPacing)
{
    for (int i = 0; i < 10; ++i)
        dma.enqueueWrite(0x1000 + i * 64, {});
    s.runFor(sim::oneUs);

    // 32 GB/s = 2 ns per 64 B line.
    const sim::Tick gap = sim::nsToTicks(2.0);
    for (std::size_t i = 1; i < target.recs.size(); ++i) {
        EXPECT_EQ(target.recs[i].when - target.recs[i - 1].when, gap);
    }
}

TEST_F(DmaTest, CallbackFiresAfterPrecedingTransfers)
{
    sim::Tick cbTime = 0;
    dma.enqueueWrite(0x100, {});
    dma.enqueueWrite(0x140, {});
    dma.enqueueCallback([&] { cbTime = s.now(); });
    s.runFor(sim::oneUs);

    ASSERT_EQ(target.recs.size(), 2u);
    EXPECT_GE(cbTime, target.recs[1].when);
    EXPECT_EQ(dma.callbacks.get(), 1u);
}

TEST_F(DmaTest, CallbackOrderingInterleaved)
{
    std::vector<int> order;
    dma.enqueueWrite(0x100, {});
    dma.enqueueCallback([&] { order.push_back(1); });
    dma.enqueueWrite(0x140, {});
    dma.enqueueCallback([&] { order.push_back(2); });
    s.runFor(sim::oneUs);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST_F(DmaTest, MetadataDeliveredIntact)
{
    nic::TlpMeta m;
    m.appClass = 1;
    m.isHeader = true;
    m.isBurst = true;
    dma.enqueueWrite(0x200, m);
    s.runFor(sim::oneUs);
    ASSERT_EQ(target.recs.size(), 1u);
    EXPECT_EQ(target.recs[0].meta, m);
}

TEST_F(DmaTest, ReadsAndWritesShareTheLink)
{
    dma.enqueueWrite(0x100, {});
    dma.enqueueRead(0x500);
    dma.enqueueWrite(0x140, {});
    s.runFor(sim::oneUs);

    ASSERT_EQ(target.recs.size(), 3u);
    EXPECT_EQ(target.recs[0].kind, 'W');
    EXPECT_EQ(target.recs[1].kind, 'R');
    EXPECT_EQ(target.recs[2].kind, 'W');
    EXPECT_EQ(dma.linesRead.get(), 1u);
}

TEST_F(DmaTest, AddressesLineAligned)
{
    dma.enqueueWrite(0x123, {});
    s.runFor(sim::oneUs);
    EXPECT_EQ(target.recs[0].addr, 0x100u);
}

TEST_F(DmaTest, LateEnqueueResumesPump)
{
    dma.enqueueWrite(0x100, {});
    s.runFor(sim::oneUs);
    EXPECT_EQ(target.recs.size(), 1u);

    dma.enqueueWrite(0x140, {});
    s.runFor(sim::oneUs);
    EXPECT_EQ(target.recs.size(), 2u);
}

} // anonymous namespace
