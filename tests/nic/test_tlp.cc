/**
 * @file
 * TLP reserved-bit encoding tests (paper Fig. 7).
 */

#include <gtest/gtest.h>

#include "nic/tlp.hh"

namespace
{

TEST(Tlp, RoundTripAllCores)
{
    for (sim::CoreId core = 0; core < 63; ++core) {
        nic::TlpMeta m;
        m.destCore = core;
        m.isHeader = (core % 2) == 0;
        m.isBurst = (core % 3) == 0;
        m.appClass = 0;
        EXPECT_EQ(nic::decodeTlp(nic::encodeTlp(m)), m)
            << "core " << core;
    }
}

TEST(Tlp, Class1EncodedAsAllOnes)
{
    nic::TlpMeta m;
    m.appClass = 1;
    m.destCore = 17; // ignored for class 1
    const auto dw0 = nic::encodeTlp(m);
    const auto d = nic::decodeTlp(dw0);
    EXPECT_EQ(d.appClass, 1);
    EXPECT_EQ(d.destCore, 0u);
}

TEST(Tlp, UsesOnlyReservedBits)
{
    // Bits 31, 23, 19:16, 11, 10 — nothing else may be set.
    const std::uint32_t allowed = (1u << 31) | (1u << 23) |
                                  (0xFu << 16) | (1u << 11) |
                                  (1u << 10);
    nic::TlpMeta m;
    m.appClass = 1;
    m.isHeader = true;
    m.isBurst = true;
    EXPECT_EQ(nic::encodeTlp(m) & ~allowed, 0u);
}

TEST(Tlp, HeaderAndBurstBitPositions)
{
    nic::TlpMeta m;
    m.isHeader = true;
    EXPECT_EQ(nic::encodeTlp(m) & (1u << 31), 1u << 31);
    m.isHeader = false;
    m.isBurst = true;
    EXPECT_EQ(nic::encodeTlp(m) & (1u << 10), 1u << 10);
}

TEST(Tlp, CoreFieldBitPositions)
{
    // Core 63 is reserved for class 1; core 0b100000 (32) sets only
    // the MSB of the field, which Fig. 7 places at bit 23.
    nic::TlpMeta m;
    m.destCore = 32;
    EXPECT_EQ(nic::encodeTlp(m), 1u << 23);
    m.destCore = 1; // LSB at bit 11
    EXPECT_EQ(nic::encodeTlp(m), 1u << 11);
    m.destCore = 2; // next bit at 16
    EXPECT_EQ(nic::encodeTlp(m), 1u << 16);
}

TEST(Tlp, ZeroMetaIsZeroWord)
{
    nic::TlpMeta m;
    EXPECT_EQ(nic::encodeTlp(m), 0u);
    EXPECT_EQ(nic::decodeTlp(0), m);
}

TEST(TlpDeath, TooManyCoresIsFatal)
{
    nic::TlpMeta m;
    m.destCore = 63;
    EXPECT_EXIT(nic::encodeTlp(m), ::testing::ExitedWithCode(1),
                "at most");
}

} // anonymous namespace
