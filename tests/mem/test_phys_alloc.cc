/**
 * @file
 * PhysAllocator tests: alignment, invalidatable pages.
 */

#include <gtest/gtest.h>

#include "mem/phys_alloc.hh"

namespace
{

TEST(PhysAlloc, DistinctNonOverlappingRegions)
{
    mem::PhysAllocator a;
    const sim::Addr x = a.allocate(4096);
    const sim::Addr y = a.allocate(4096);
    EXPECT_NE(x, y);
    EXPECT_GE(y, x + 4096);
}

TEST(PhysAlloc, RespectsAlignment)
{
    mem::PhysAllocator a;
    a.allocate(3); // misalign the bump pointer
    const sim::Addr x = a.allocate(100, 256);
    EXPECT_EQ(x % 256, 0u);
    const sim::Addr y = a.allocate(10, mem::pageSize);
    EXPECT_EQ(y % mem::pageSize, 0u);
}

TEST(PhysAlloc, NeverReturnsNull)
{
    mem::PhysAllocator a;
    EXPECT_NE(a.allocate(1), 0u);
}

TEST(PhysAlloc, InvalidatablePagesMarked)
{
    mem::PhysAllocator a;
    const sim::Addr inv = a.allocateInvalidatable(3 * mem::pageSize);
    const sim::Addr plain = a.allocate(mem::pageSize, mem::pageSize);

    EXPECT_TRUE(a.isInvalidatable(inv));
    EXPECT_TRUE(a.isInvalidatable(inv + mem::pageSize));
    EXPECT_TRUE(a.isInvalidatable(inv + 3 * mem::pageSize - 1));
    EXPECT_FALSE(a.isInvalidatable(plain));
}

TEST(PhysAlloc, InvalidatableCoversWholePagesOnly)
{
    mem::PhysAllocator a;
    // A sub-page request still protects the full page.
    const sim::Addr inv = a.allocateInvalidatable(100);
    EXPECT_TRUE(a.isInvalidatable(inv + 1000));
    EXPECT_EQ(inv % mem::pageSize, 0u);
}

TEST(PhysAlloc, TracksAllocatedBytes)
{
    mem::PhysAllocator a;
    const auto before = a.allocatedBytes();
    a.allocate(1000, 64);
    EXPECT_GE(a.allocatedBytes(), before + 1000);
}

TEST(PhysAllocDeath, ExhaustionIsFatal)
{
    mem::PhysAllocator tiny(1 << 20, 4096);
    EXPECT_EXIT(tiny.allocate(1 << 20), ::testing::ExitedWithCode(1),
                "exhausted");
}

} // anonymous namespace
