/**
 * @file
 * Cacheline address arithmetic tests.
 */

#include <gtest/gtest.h>

#include "mem/addr.hh"

namespace
{

TEST(Addr, LineAlign)
{
    EXPECT_EQ(mem::lineAlign(0), 0u);
    EXPECT_EQ(mem::lineAlign(63), 0u);
    EXPECT_EQ(mem::lineAlign(64), 64u);
    EXPECT_EQ(mem::lineAlign(100), 64u);
    EXPECT_EQ(mem::lineAlign(0x12345678), 0x12345640u);
}

TEST(Addr, LineNumberAndOffset)
{
    EXPECT_EQ(mem::lineNumber(0), 0u);
    EXPECT_EQ(mem::lineNumber(64), 1u);
    EXPECT_EQ(mem::lineNumber(130), 2u);
    EXPECT_EQ(mem::lineOffset(130), 2u);
    EXPECT_EQ(mem::lineOffset(64), 0u);
}

TEST(Addr, IsLineAligned)
{
    EXPECT_TRUE(mem::isLineAligned(0));
    EXPECT_TRUE(mem::isLineAligned(128));
    EXPECT_FALSE(mem::isLineAligned(1));
    EXPECT_FALSE(mem::isLineAligned(127));
}

TEST(Addr, LinesSpanned)
{
    EXPECT_EQ(mem::linesSpanned(0, 0), 0u);
    EXPECT_EQ(mem::linesSpanned(0, 1), 1u);
    EXPECT_EQ(mem::linesSpanned(0, 64), 1u);
    EXPECT_EQ(mem::linesSpanned(0, 65), 2u);
    // Unaligned start crossing a boundary.
    EXPECT_EQ(mem::linesSpanned(60, 8), 2u);
    // The paper's MTU frame: 1514 bytes = 24 lines.
    EXPECT_EQ(mem::linesSpanned(0, 1514), 24u);
    // A 2 KB DMA buffer = 32 lines.
    EXPECT_EQ(mem::linesSpanned(0, 2048), 32u);
    // A 128 B descriptor = 2 lines.
    EXPECT_EQ(mem::linesSpanned(0, 128), 2u);
}

} // anonymous namespace
