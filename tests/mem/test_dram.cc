/**
 * @file
 * DRAM model tests: latency, bandwidth queueing, accounting.
 */

#include <gtest/gtest.h>

#include "mem/dram.hh"
#include "sim/simulation.hh"

namespace
{

TEST(Dram, CountsReadsAndWrites)
{
    sim::Simulation s;
    mem::DramConfig cfg;
    mem::DramModel dram(s, "dram", cfg);

    dram.access(mem::AccessType::Read);
    dram.access(mem::AccessType::Read);
    dram.access(mem::AccessType::Write);

    EXPECT_EQ(dram.readCount(), 2u);
    EXPECT_EQ(dram.writeCount(), 1u);
    EXPECT_EQ(dram.readBytes(), 128u);
    EXPECT_EQ(dram.writeBytes(), 64u);
}

TEST(Dram, UncontendedLatencyIsDeviceLatency)
{
    sim::Simulation s;
    mem::DramConfig cfg;
    cfg.accessLatencyNs = 60.0;
    mem::DramModel dram(s, "dram", cfg);

    const sim::Tick lat = dram.access(mem::AccessType::Read);
    EXPECT_EQ(lat, sim::nsToTicks(60.0));
}

TEST(Dram, BackToBackAccessesQueue)
{
    sim::Simulation s;
    mem::DramConfig cfg;
    cfg.accessLatencyNs = 60.0;
    cfg.bandwidthGBps = 64.0; // 1 ns per 64 B line
    mem::DramModel dram(s, "dram", cfg);

    // All at tick 0: the n-th access waits n service slots.
    const sim::Tick l0 = dram.access(mem::AccessType::Read);
    const sim::Tick l1 = dram.access(mem::AccessType::Read);
    const sim::Tick l2 = dram.access(mem::AccessType::Read);

    EXPECT_EQ(l0, sim::nsToTicks(60.0));
    EXPECT_EQ(l1, sim::nsToTicks(61.0));
    EXPECT_EQ(l2, sim::nsToTicks(62.0));
}

TEST(Dram, QueueDrainsWithTime)
{
    sim::Simulation s;
    mem::DramConfig cfg;
    cfg.accessLatencyNs = 10.0;
    cfg.bandwidthGBps = 6.4; // 10 ns per line
    mem::DramModel dram(s, "dram", cfg);

    dram.access(mem::AccessType::Write);
    // Advance simulated time beyond the busy period.
    s.eventq().schedule(sim::nsToTicks(100.0), [] {});
    s.runUntil(sim::nsToTicks(100.0));

    const sim::Tick lat = dram.access(mem::AccessType::Write);
    EXPECT_EQ(lat, sim::nsToTicks(10.0));
}

TEST(Dram, SustainedRateMatchesBandwidth)
{
    sim::Simulation s;
    mem::DramConfig cfg;
    cfg.accessLatencyNs = 60.0;
    cfg.bandwidthGBps = 64.0; // 1 ns per line
    mem::DramModel dram(s, "dram", cfg);

    // Issue 1000 accesses at tick 0; the last should observe ~999 ns
    // of queueing.
    sim::Tick last = 0;
    for (int i = 0; i < 1000; ++i)
        last = dram.access(mem::AccessType::Read);
    EXPECT_EQ(last, sim::nsToTicks(60.0 + 999.0));
}

} // anonymous namespace
