/**
 * @file
 * System-level conservation and invariant checks after full runs.
 */

#include <gtest/gtest.h>

#include "harness/system.hh"

namespace
{

harness::ExperimentConfig
soupConfig(idio::Policy policy, harness::TrafficKind traffic,
           double gbps)
{
    harness::ExperimentConfig cfg;
    cfg.numNfs = 2;
    cfg.traffic = traffic;
    cfg.rateGbps = gbps;
    cfg.applyPolicy(policy);
    return cfg;
}

class InvariantTest
    : public ::testing::TestWithParam<
          std::tuple<idio::Policy, harness::TrafficKind, double>>
{
};

TEST_P(InvariantTest, ConservationLawsHold)
{
    const auto [policy, traffic, gbps] = GetParam();
    harness::TestSystem sys(soupConfig(policy, traffic, gbps));
    sys.start();
    sys.runFor(20 * sim::oneMs);

    const auto t = sys.totals();

    // Packet conservation: received = dropped + processed + in-flight.
    std::uint64_t inFlight = 0;
    for (std::uint32_t i = 0; i < sys.numNfs(); ++i)
        inFlight += sys.nicPort(i).rxRing().backlog();
    EXPECT_LE(t.processedPackets + t.rxDrops, t.rxPackets);
    EXPECT_GE(t.processedPackets + t.rxDrops + inFlight + 64,
              t.rxPackets);

    // Buffer conservation per pool.
    for (std::uint32_t i = 0; i < sys.numNfs(); ++i) {
        auto &pool = sys.mempool(i);
        EXPECT_EQ(pool.allocCount - pool.freeCount,
                  pool.capacity() - pool.available());
    }

    // Every LLC writeback is a DRAM write (dirty evictions are the
    // only DRAM-write source besides direct-DRAM steering).
    EXPECT_EQ(sys.hierarchy().llc().writebacks.get() +
                  sys.hierarchy().directDramWrites.get(),
              sys.hierarchy().dram().writeCount());

    // Structural capacity.
    auto &llcTags = sys.hierarchy().llc().tags();
    EXPECT_LE(sys.hierarchy().llc().occupancy(),
              llcTags.numSets() * llcTags.assoc());

    // Per-core structural checks.
    for (std::uint32_t c = 0; c < sys.hierarchy().numCores(); ++c) {
        const auto &mlc = sys.hierarchy().mlcOf(c).tags();
        for (std::uint32_t set = 0; set < mlc.numSets(); ++set) {
            for (std::uint32_t w = 0; w < mlc.assoc(); ++w) {
                const auto &line = mlc.lineAt(set, w);
                if (!line.valid)
                    continue;
                // Directory tracks every MLC line.
                ASSERT_TRUE(
                    sys.hierarchy().directory().sharersOf(line.addr) &
                    (1ull << c));
                // Mostly-exclusive LLC.
                ASSERT_FALSE(sys.hierarchy().llc().contains(line.addr));
            }
        }
    }
}

TEST_P(InvariantTest, StatsAreInternallyConsistent)
{
    const auto [policy, traffic, gbps] = GetParam();
    harness::TestSystem sys(soupConfig(policy, traffic, gbps));
    sys.start();
    sys.runFor(20 * sim::oneMs);

    for (std::uint32_t i = 0; i < sys.numNfs(); ++i) {
        auto &nf = sys.nf(i);
        // A latency sample exists for every completed packet.
        EXPECT_LE(nf.latency.count(), nf.packetsProcessed.get());
        // Hits + misses = accesses at every private cache.
        auto &l1 = sys.hierarchy().l1(i);
        EXPECT_EQ(l1.hits.get() + l1.misses.get(),
                  sys.core(i).reads.get() + sys.core(i).writes.get());
    }

    // DMA writes seen by the hierarchy match NIC-side line counts.
    std::uint64_t nicLines = 0;
    for (std::uint32_t i = 0; i < sys.numNfs(); ++i) {
        // Recover from the classifier: every received, non-dropped
        // packet produced lines(payload) + 2 descriptor lines.
        auto &port = sys.nicPort(i);
        const auto accepted =
            port.rxPackets.get() - port.rxDrops.get();
        nicLines += accepted * (24 + 2); // 1514 B frames
    }
    // In-flight DMA at cutoff makes the hierarchy count lag slightly.
    EXPECT_LE(sys.hierarchy().pcieWrites.get(), nicLines);
    EXPECT_GE(sys.hierarchy().pcieWrites.get() + 26 * 8, nicLines);
}

INSTANTIATE_TEST_SUITE_P(
    PolicyTrafficMatrix, InvariantTest,
    ::testing::Combine(
        ::testing::Values(idio::Policy::Ddio,
                          idio::Policy::InvalidateOnly,
                          idio::Policy::Static, idio::Policy::Idio),
        ::testing::Values(harness::TrafficKind::Bursty,
                          harness::TrafficKind::Steady),
        ::testing::Values(10.0, 25.0)),
    [](const auto &info) {
        std::string name = idio::policyName(std::get<0>(info.param));
        name += std::get<1>(info.param) ==
                        harness::TrafficKind::Bursty
                    ? "_bursty"
                    : "_steady";
        name += "_" +
                std::to_string(
                    static_cast<int>(std::get<2>(info.param))) +
                "G";
        return name;
    });

} // anonymous namespace
