/**
 * @file
 * Policy-comparison integration tests: the paper's directional claims
 * must hold on the simulator (exact magnitudes live in EXPERIMENTS.md;
 * these tests assert the *shape*).
 */

#include <gtest/gtest.h>

#include "harness/system.hh"

namespace
{

harness::Totals
runPolicy(idio::Policy policy, double gbps,
          harness::TrafficKind traffic = harness::TrafficKind::Bursty,
          bool antagonist = false)
{
    harness::ExperimentConfig cfg;
    cfg.numNfs = 2;
    cfg.traffic = traffic;
    cfg.rateGbps = gbps;
    cfg.withAntagonist = antagonist;
    cfg.applyPolicy(policy);

    harness::TestSystem sys(cfg);
    sys.start();
    sys.runFor(30 * sim::oneMs);
    return sys.totals();
}

TEST(Policies, InvalidationEliminatesMlcWritebacks)
{
    const auto ddio = runPolicy(idio::Policy::Ddio, 25.0);
    const auto inval = runPolicy(idio::Policy::InvalidateOnly, 25.0);
    EXPECT_LT(inval.mlcWritebacks, ddio.mlcWritebacks / 10)
        << "paper Sec. VII: self-invalidation removes most MLC WBs";
}

TEST(Policies, IdioReducesMlcWritebacksAtAllRates)
{
    for (double gbps : {100.0, 25.0, 10.0}) {
        const auto ddio = runPolicy(idio::Policy::Ddio, gbps);
        const auto idioT = runPolicy(idio::Policy::Idio, gbps);
        EXPECT_LT(idioT.mlcWritebacks, ddio.mlcWritebacks)
            << "at " << gbps << " Gbps";
        // Paper Fig. 10: at least ~60% reduction at every rate.
        EXPECT_LT(static_cast<double>(idioT.mlcWritebacks),
                  0.6 * static_cast<double>(ddio.mlcWritebacks))
            << "at " << gbps << " Gbps";
    }
}

TEST(Policies, IdioNearlyEliminatesDramWritesAtMediumRate)
{
    const auto ddio = runPolicy(idio::Policy::Ddio, 25.0);
    const auto idioT = runPolicy(idio::Policy::Idio, 25.0);
    EXPECT_GT(ddio.dramWrites, 10000u);
    EXPECT_LT(idioT.dramWrites, ddio.dramWrites / 20)
        << "paper: IDIO almost eliminates DRAM write bandwidth";
}

TEST(Policies, IdioMatchesStaticAtMediumRate)
{
    // Paper Sec. VII: "there is no difference between Static and
    // IDIO [at 25 Gbps]".
    const auto st = runPolicy(idio::Policy::Static, 25.0);
    const auto dy = runPolicy(idio::Policy::Idio, 25.0);
    EXPECT_EQ(st.mlcWritebacks, dy.mlcWritebacks);
    EXPECT_EQ(st.llcWritebacks, dy.llcWritebacks);
}

TEST(Policies, FsmRegulatesAtHighRate)
{
    // At 100 Gbps the Static policy overfills the MLC; dynamic IDIO
    // disables prefetching under pressure and produces fewer MLC WBs.
    const auto st = runPolicy(idio::Policy::Static, 100.0);
    const auto dy = runPolicy(idio::Policy::Idio, 100.0);
    EXPECT_LT(dy.mlcWritebacks, st.mlcWritebacks);
}

TEST(Policies, PrefetchAloneCutsLlcWritebacks)
{
    const auto ddio = runPolicy(idio::Policy::Ddio, 100.0);
    const auto pf = runPolicy(idio::Policy::PrefetchOnly, 100.0);
    EXPECT_LT(pf.llcWritebacks, ddio.llcWritebacks)
        << "prefetching drains the DDIO ways during the DMA phase";
}

TEST(Policies, AllPoliciesProcessEveryPacket)
{
    for (auto p : {idio::Policy::Ddio, idio::Policy::InvalidateOnly,
                   idio::Policy::PrefetchOnly, idio::Policy::Static,
                   idio::Policy::Idio}) {
        const auto t = runPolicy(p, 25.0);
        EXPECT_EQ(t.rxDrops, 0u) << idio::policyName(p);
        // The cutoff can land on a burst start; allow the handful of
        // packets still in flight at t=30 ms.
        EXPECT_GE(t.processedPackets + 64, t.rxPackets)
            << idio::policyName(p);
        EXPECT_GE(t.processedPackets, 3u * 2 * 1024)
            << idio::policyName(p);
    }
}

TEST(Policies, SteadyTrafficInvalidationStillHelps)
{
    // Paper Fig. 13: at steady 10 Gbps/core, DDIO shows the same MLC
    // WB rate as bursty traffic; IDIO removes most of it.
    const auto ddio = runPolicy(idio::Policy::Ddio, 10.0,
                                harness::TrafficKind::Steady);
    const auto idioT = runPolicy(idio::Policy::Idio, 10.0,
                                 harness::TrafficKind::Steady);
    EXPECT_GT(ddio.mlcWritebacks, 50000u);
    EXPECT_LT(idioT.mlcWritebacks, ddio.mlcWritebacks / 5);
}

TEST(Policies, IdioImprovesTailLatencyAtMediumRate)
{
    auto p99 = [](idio::Policy p) {
        harness::ExperimentConfig cfg;
        cfg.numNfs = 2;
        cfg.traffic = harness::TrafficKind::Bursty;
        cfg.rateGbps = 25.0;
        cfg.applyPolicy(p);
        harness::TestSystem sys(cfg);
        sys.start();
        sys.runFor(30 * sim::oneMs);
        return sys.nf(0).latency.p99();
    };

    EXPECT_LT(p99(idio::Policy::Idio), p99(idio::Policy::Ddio))
        << "paper Fig. 12: 30.5% p99 reduction at 25 Gbps";
}

TEST(Policies, CoRunIsolationImprovesAntagonist)
{
    // Paper Fig. 10 discussion: co-running with IDIO improves the
    // LLCAntagonist's CPI.
    auto antagCpi = [](idio::Policy p) {
        harness::ExperimentConfig cfg;
        cfg.numNfs = 2;
        cfg.traffic = harness::TrafficKind::Bursty;
        cfg.rateGbps = 25.0;
        cfg.withAntagonist = true;
        cfg.applyPolicy(p);
        harness::TestSystem sys(cfg);
        sys.start();
        sys.runFor(30 * sim::oneMs);
        return sys.antagonist()->ticksPerAccess();
    };

    EXPECT_LT(antagCpi(idio::Policy::Idio),
              antagCpi(idio::Policy::Ddio));
}

} // anonymous namespace
