/**
 * @file
 * End-to-end integration tests: full systems under realistic traffic,
 * checking packet accounting and steady-state behaviour.
 */

#include <gtest/gtest.h>

#include "harness/system.hh"

namespace
{

TEST(EndToEnd, BurstyTouchDropProcessesFullBursts)
{
    harness::ExperimentConfig cfg;
    cfg.numNfs = 2;
    cfg.traffic = harness::TrafficKind::Bursty;
    cfg.rateGbps = 25.0;
    cfg.applyPolicy(idio::Policy::Ddio);

    harness::TestSystem sys(cfg);
    sys.start();
    sys.runFor(25 * sim::oneMs); // bursts at ~0, 10 and 20 ms + drain

    const auto t = sys.totals();
    EXPECT_EQ(t.rxPackets, 3u * 2 * 1024) << "3 bursts x 2 NICs";
    EXPECT_EQ(t.rxDrops, 0u);
    EXPECT_EQ(t.processedPackets, t.rxPackets);
}

TEST(EndToEnd, InvariantCheckerSweepsTheWholeRun)
{
    // Acceptance gate for the correctness tooling: a full end-to-end
    // run must evaluate every registered invariant at least once, with
    // zero violations (a violation would have panicked the run).
    harness::ExperimentConfig cfg;
    cfg.numNfs = 2;
    cfg.traffic = harness::TrafficKind::Bursty;
    cfg.rateGbps = 25.0;
    cfg.applyPolicy(idio::Policy::Idio);

    harness::TestSystem sys(cfg);
    sys.start();
    sys.runFor(25 * sim::oneMs);

    auto &chk = sys.invariantChecker();
    EXPECT_GT(chk.numInvariants(), 0u);
    if (sim::InvariantChecker::compiledIn) {
        EXPECT_GE(chk.sweeps.get(), 1u)
            << "the periodic hook never fired";
        EXPECT_EQ(chk.evaluations.get(),
                  chk.sweeps.get() * chk.numInvariants())
            << "some registered invariant was skipped";
        EXPECT_EQ(chk.violations.get(), 0u);
    }
}

TEST(EndToEnd, SteadyOverloadDropsPackets)
{
    harness::ExperimentConfig cfg;
    cfg.numNfs = 1;
    cfg.traffic = harness::TrafficKind::Steady;
    cfg.rateGbps = 60.0; // far beyond one core's capacity
    cfg.applyPolicy(idio::Policy::Ddio);

    harness::TestSystem sys(cfg);
    sys.start();
    sys.runFor(10 * sim::oneMs);

    EXPECT_GT(sys.totals().rxDrops, 0u)
        << "the paper observes drops above per-core capacity";
}

TEST(EndToEnd, SteadyModerateLoadLossFree)
{
    harness::ExperimentConfig cfg;
    cfg.numNfs = 2;
    cfg.traffic = harness::TrafficKind::Steady;
    cfg.rateGbps = 10.0; // the paper's loss-free steady point
    cfg.applyPolicy(idio::Policy::Ddio);

    harness::TestSystem sys(cfg);
    sys.start();
    sys.runFor(10 * sim::oneMs);

    EXPECT_EQ(sys.totals().rxDrops, 0u);
    EXPECT_GT(sys.totals().processedPackets, 15000u);
}

TEST(EndToEnd, DmaTrafficReachesCachesNotDram)
{
    // The defining DDIO property: inbound line-rate traffic that is
    // consumed promptly produces no DRAM *read* traffic for payloads
    // and writes only on capacity evictions.
    harness::ExperimentConfig cfg;
    cfg.numNfs = 1;
    cfg.traffic = harness::TrafficKind::Steady;
    cfg.rateGbps = 5.0;
    cfg.nic.ringSize = 128; // small ring: fits on chip
    cfg.applyPolicy(idio::Policy::Ddio);

    harness::TestSystem sys(cfg);
    sys.start();
    sys.runFor(5 * sim::oneMs);

    const auto t = sys.totals();
    EXPECT_GT(t.rxPackets, 1000u);
    EXPECT_LT(t.dramReads, t.rxPackets)
        << "payloads are served on-chip";
}

TEST(EndToEnd, LatencyGrowsWithBurstRate)
{
    auto run = [](double gbps) {
        harness::ExperimentConfig cfg;
        cfg.numNfs = 1;
        cfg.traffic = harness::TrafficKind::Bursty;
        cfg.rateGbps = gbps;
        cfg.applyPolicy(idio::Policy::Ddio);
        harness::TestSystem sys(cfg);
        sys.start();
        sys.runFor(15 * sim::oneMs);
        return sys.nf(0).latency.p99();
    };

    const auto p99at10 = run(10.0);
    const auto p99at100 = run(100.0);
    EXPECT_GT(p99at100, p99at10)
        << "faster bursts queue more packets";
}

TEST(EndToEnd, DeterministicAcrossRuns)
{
    auto run = [] {
        harness::ExperimentConfig cfg;
        cfg.numNfs = 2;
        cfg.traffic = harness::TrafficKind::Bursty;
        cfg.rateGbps = 100.0;
        cfg.seed = 42;
        cfg.applyPolicy(idio::Policy::Idio);
        harness::TestSystem sys(cfg);
        sys.start();
        sys.runFor(12 * sim::oneMs);
        return sys.totals();
    };

    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a.mlcWritebacks, b.mlcWritebacks);
    EXPECT_EQ(a.llcWritebacks, b.llcWritebacks);
    EXPECT_EQ(a.dramReads, b.dramReads);
    EXPECT_EQ(a.dramWrites, b.dramWrites);
    EXPECT_EQ(a.processedPackets, b.processedPackets);
}

TEST(EndToEnd, TimelineCapturesBurstShape)
{
    harness::ExperimentConfig cfg;
    cfg.numNfs = 2;
    cfg.traffic = harness::TrafficKind::Bursty;
    cfg.rateGbps = 100.0;
    cfg.applyPolicy(idio::Policy::Ddio);

    harness::TestSystem sys(cfg);
    sys.trackDefaultSeries();
    sys.timeline().start();
    sys.start();
    sys.runFor(5 * sim::oneMs);

    const auto &dma = sys.timeline().series("dmaWrites");
    ASSERT_GT(dma.size(), 100u);
    // The burst appears as a high-rate spike followed by silence.
    EXPECT_GT(dma.peak(), 100.0) << "DMA rate in MTPS during burst";
    EXPECT_LT(dma.points().back().value, 1.0)
        << "silent after the burst drains";
}

} // anonymous namespace
