/**
 * @file
 * Trace/Totals cross-check: every count derived from the packet
 * lifecycle trace must exactly equal the simulator's own counters.
 * This is the in-process twin of the CI trace smoke
 * (tools/trace_summary.py --check-totals).
 */

#include <gtest/gtest.h>

#include "harness/system.hh"
#include "harness/trace_artifacts.hh"
#include "trace/events.hh"
#include "trace/tracer.hh"

namespace
{

using trace::EventKind;

harness::ExperimentConfig
smallConfig(harness::NfKind nf, idio::Policy policy)
{
    harness::ExperimentConfig cfg;
    cfg.numNfs = 2;
    cfg.nfKind = nf;
    cfg.traffic = harness::TrafficKind::Bursty;
    cfg.rateGbps = 25.0;
    cfg.burstPackets = 256; // one small burst: no ring wraparound
    cfg.applyPolicy(policy);
    return cfg;
}

void
checkTraceMatchesTotals(const harness::ExperimentConfig &cfg)
{
#if !IDIO_TRACE
    GTEST_SKIP() << "tracing compiled out (IDIO_TRACE=0)";
#else
    harness::TestSystem sys(cfg);
    harness::enableTracing(sys);
    sys.start();
    sys.runFor(10 * sim::oneMs); // one burst period

    const trace::Tracer &tracer = sys.simulation().tracer();
    ASSERT_EQ(tracer.totalDropped(), 0u)
        << "ring wraparound would invalidate the cross-check";

    const harness::Totals t = sys.totals();
    ASSERT_GT(t.rxPackets, 0u);
    ASSERT_GT(t.processedPackets, 0u);

    EXPECT_EQ(tracer.count(EventKind::NicRx), t.rxPackets);
    EXPECT_EQ(tracer.count(EventKind::NicDrop), t.rxDrops);
    EXPECT_EQ(tracer.count(EventKind::NfConsume),
              t.processedPackets);
    EXPECT_EQ(tracer.count(EventKind::CacheMlcEvict),
              t.mlcWritebacks);
    EXPECT_EQ(tracer.count(EventKind::CachePcieInval),
              t.mlcPcieInvals);
    EXPECT_EQ(tracer.count(EventKind::CacheLlcWb), t.llcWritebacks);

    cache::MemoryHierarchy &hier = sys.hierarchy();
    EXPECT_EQ(tracer.count(EventKind::CacheDdioUpdate),
              hier.llc().ddioUpdates.get());
    EXPECT_EQ(tracer.count(EventKind::CacheDdioAlloc),
              hier.llc().ddioAllocs.get());
    EXPECT_EQ(tracer.count(EventKind::CacheDramDirect),
              hier.directDramWrites.get());

    std::uint64_t prefetchFills = 0;
    std::uint64_t selfInvals = 0;
    for (std::uint32_t c = 0; c < hier.numCores(); ++c) {
        prefetchFills += hier.mlcOf(c).prefetchFills.get();
        selfInvals += hier.mlcOf(c).selfInvals.get();
    }
    EXPECT_EQ(tracer.count(EventKind::CacheMlcPrefetchFill),
              prefetchFills);
    EXPECT_EQ(tracer.count(EventKind::CacheSelfInval), selfInvals);

    // Every inbound DMA cacheline takes exactly one placement path.
    EXPECT_EQ(tracer.count(EventKind::CacheDdioUpdate) +
                  tracer.count(EventKind::CacheDdioAlloc) +
                  tracer.count(EventKind::CacheDramDirect),
              hier.pcieWrites.get());

    // Lifecycle consistency: an mbuf is freed at most once per
    // consumed packet (async-completion NFs may end the run with
    // frees still in flight), and the ring re-arms at most one mbuf
    // per consumed descriptor.
    EXPECT_GT(tracer.count(EventKind::DpdkFree), 0u);
    EXPECT_LE(tracer.count(EventKind::DpdkFree),
              t.processedPackets);
    EXPECT_LE(tracer.count(EventKind::DpdkAlloc),
              t.processedPackets);
#endif // IDIO_TRACE
}

TEST(TraceTotals, DdioTouchDrop)
{
    checkTraceMatchesTotals(
        smallConfig(harness::NfKind::TouchDrop, idio::Policy::Ddio));
}

TEST(TraceTotals, IdioTouchDrop)
{
    checkTraceMatchesTotals(
        smallConfig(harness::NfKind::TouchDrop, idio::Policy::Idio));
}

TEST(TraceTotals, IdioL2FwdDropPayloadExercisesDirectDram)
{
    const auto cfg = smallConfig(harness::NfKind::L2FwdDropPayload,
                                 idio::Policy::Idio);
    checkTraceMatchesTotals(cfg);
}

TEST(TraceTotals, TracingDoesNotPerturbTheRun)
{
#if !IDIO_TRACE
    GTEST_SKIP() << "tracing compiled out (IDIO_TRACE=0)";
#else
    // A traced run and an untraced run of the same config must
    // produce identical totals: observation must not change the
    // simulated behaviour.
    const auto cfg =
        smallConfig(harness::NfKind::TouchDrop, idio::Policy::Idio);

    harness::TestSystem plain(cfg);
    plain.start();
    plain.runFor(10 * sim::oneMs);

    harness::TestSystem traced(cfg);
    harness::enableTracing(traced);
    traced.start();
    traced.runFor(10 * sim::oneMs);

    EXPECT_EQ(plain.totals(), traced.totals());
#endif // IDIO_TRACE
}

} // anonymous namespace
