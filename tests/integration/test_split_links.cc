/**
 * @file
 * Split-link (modelled interconnect latency) integration gates.
 *
 * With LinkLatencyConfig set, the system decomposes into per-core,
 * NIC and uncore timing domains joined only by latency edges, and the
 * executor runs them under the conservative-window protocol. The
 * gates here are the ISSUE-level acceptance criteria: a split run
 * processes traffic end to end, is byte-identical — Totals,
 * stats-registry JSON and packet-lifecycle trace — across shard-job
 * counts (and to the one-worker non-sharded executor run), and
 * checkpoints mid-burst with messages in flight on the links.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/system.hh"
#include "harness/trace_artifacts.hh"
#include "stats/json.hh"
#include "trace/chrome_export.hh"

namespace
{

constexpr sim::Tick quantum = 10 * sim::oneUs;

/** An 8-core, 8-RX-queue port with modelled PCIe and mesh latencies. */
harness::ExperimentConfig
splitConfig(std::uint32_t cores = 8, std::uint64_t flows = 1024)
{
    harness::ExperimentConfig cfg;
    cfg.numNfs = cores;
    cfg.rxQueues = cores;
    cfg.totalFlows = flows;
    cfg.nfKind = harness::NfKind::TouchDrop;
    cfg.traffic = harness::TrafficKind::Bursty;
    cfg.rateGbps = 100.0;
    cfg.burstPeriod = 10 * sim::oneSec; // one burst
    cfg.nic.ringSize = 256;
    cfg.links.pcieNs = 500.0;
    cfg.links.meshNs = 250.0;
    cfg.applyPolicy(idio::Policy::Idio);
    return cfg;
}

std::string
statsJson(harness::TestSystem &sys)
{
    std::ostringstream os;
    stats::writeJson(os, sys.simulation().statsRegistry());
    return os.str();
}

struct RunArtifacts
{
    harness::Totals totals;
    std::string stats;
    std::string trace;
};

RunArtifacts
runTraced(const harness::ExperimentConfig &cfg, const std::string &tag)
{
    harness::TestSystem sys(cfg);
    harness::enableTracing(sys, 1u << 14);
    sys.start();
    sys.runFor(2 * sim::oneMs);

    const std::string path =
        ::testing::TempDir() + "/split_" + tag + "_trace.json";
    EXPECT_TRUE(trace::writeChromeTrace(path,
                                        sys.simulation().tracer()));
    std::ifstream in(path);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    EXPECT_FALSE(bytes.empty());
    return {sys.totals(), statsJson(sys), std::move(bytes)};
}

TEST(SplitLinks, BurstIsFullyProcessedAcrossDomains)
{
    const auto cfg = splitConfig();
    harness::TestSystem sys(cfg);
    ASSERT_NE(sys.splitFabric(), nullptr);
    ASSERT_NE(sys.shardExecutor(), nullptr);
    sys.start();
    sys.runFor(2 * sim::oneMs);

    const auto t = sys.totals();
    EXPECT_EQ(t.rxPackets, cfg.expectedBurstTotal());
    EXPECT_EQ(t.rxDrops, 0u);
    EXPECT_EQ(t.processedPackets, t.rxPackets);
    EXPECT_GT(sys.shardExecutor()->windowsRun(), 0u);
}

TEST(SplitLinks, RunIsByteIdenticalAcrossJobCounts)
{
    // The tentpole acceptance gate: the same split plan produces the
    // same stats JSON and trace bytes whether the executor runs its
    // conflict groups on 1 worker (non-sharded), 2 or 4.
    const auto base = splitConfig();

    const auto j0 = runTraced(base, "plain");

    auto sharded = base;
    sharded.sharded = true;
    sharded.shardJobs = 2;
    const auto j2 = runTraced(sharded, "j2");

    sharded.shardJobs = 4;
    const auto j4 = runTraced(sharded, "j4");

    EXPECT_EQ(j2.totals, j0.totals);
    EXPECT_EQ(j2.stats, j0.stats);
    EXPECT_EQ(j2.trace, j0.trace);
    EXPECT_EQ(j4.totals, j0.totals);
    EXPECT_EQ(j4.stats, j0.stats);
    EXPECT_EQ(j4.trace, j0.trace);
}

TEST(SplitLinks, LatencyChangesTimingButNotDelivery)
{
    // The links are real model latency, not bookkeeping: doubling
    // them must still deliver and process the whole burst, but the
    // run is not byte-identical to the faster fabric.
    const auto fast = splitConfig();
    auto slow = fast;
    slow.links.pcieNs = 2000.0;
    slow.links.meshNs = 1000.0;

    const auto a = runTraced(fast, "fast");
    const auto b = runTraced(slow, "slow");
    EXPECT_EQ(a.totals.rxPackets, b.totals.rxPackets);
    EXPECT_EQ(a.totals.processedPackets, b.totals.processedPackets);
    EXPECT_NE(a.trace, b.trace);
}

TEST(SplitLinks, CkptRoundTripMidBurstIsIdentical)
{
    // Checkpoint with DMA writes, fills and descriptor messages in
    // flight on the links; restore into a fresh build and run both
    // out.
    const auto cfg = splitConfig();
    constexpr sim::Tick ckptTick = 1 * quantum; // inside the burst
    constexpr sim::Tick endTick = 20 * quantum;

    harness::TestSystem cold(cfg);
    cold.start();
    cold.runFor(ckptTick);
    const auto blob = cold.checkpoint();
    ASSERT_FALSE(blob.empty());
    const harness::Totals atCkpt = cold.totals();
    EXPECT_LT(atCkpt.rxPackets, cfg.expectedBurstTotal())
        << "checkpoint was meant to land mid-burst";
    cold.runFor(endTick - ckptTick);

    harness::TestSystem warm(cfg);
    warm.start();
    warm.restore(blob);
    EXPECT_EQ(warm.simulation().now(), ckptTick);
    EXPECT_EQ(warm.totals(), atCkpt);
    warm.runFor(endTick - ckptTick);

    EXPECT_EQ(warm.totals(), cold.totals());
    EXPECT_EQ(statsJson(warm), statsJson(cold));
}

TEST(SplitLinksDeathTest, LegacyLayoutIsRejected)
{
    auto cfg = splitConfig();
    cfg.rxQueues = 0; // legacy per-NF-port shape
    EXPECT_EXIT(harness::TestSystem sys(cfg),
                ::testing::ExitedWithCode(1), "multi-queue");
}

TEST(SplitLinksDeathTest, HalfConfiguredLinksAreRejected)
{
    // split() triggers on either latency; validation demands both, so
    // no coupling is silently left synchronous.
    auto cfg = splitConfig();
    cfg.links.meshNs = 0.0;
    EXPECT_EXIT(harness::TestSystem sys(cfg),
                ::testing::ExitedWithCode(1), "link latencies");
}

TEST(SplitLinksDeathTest, TransmittingNfIsRejected)
{
    auto cfg = splitConfig();
    cfg.nfKind = harness::NfKind::L2Fwd;
    EXPECT_EXIT(harness::TestSystem sys(cfg),
                ::testing::ExitedWithCode(1), "outbound DMA");
}

} // anonymous namespace
