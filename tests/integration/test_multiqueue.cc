/**
 * @file
 * Multi-queue RX + sharded-execution integration gates.
 *
 * The ISSUE-level acceptance criteria live here: RSS steering is
 * deterministic (same flow population + seed → identical per-queue
 * packet assignment across runs and across sweep --jobs values), a
 * many-core sharded run is byte-identical — Totals, stats-registry
 * JSON and packet-lifecycle trace — to the unsharded single-queue-of-
 * execution build whatever the host thread count, and a multi-queue
 * config checkpoint/restores mid-burst.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/sweep.hh"
#include "harness/system.hh"
#include "harness/trace_artifacts.hh"
#include "stats/json.hh"
#include "trace/chrome_export.hh"

namespace
{

constexpr sim::Tick quantum = 10 * sim::oneUs;

/** An 8-core, 8-RX-queue port with a synthetic flow population. */
harness::ExperimentConfig
mqConfig(std::uint32_t cores = 8, std::uint64_t flows = 1024)
{
    harness::ExperimentConfig cfg;
    cfg.numNfs = cores;
    cfg.rxQueues = cores;
    cfg.totalFlows = flows;
    cfg.nfKind = harness::NfKind::TouchDrop;
    cfg.traffic = harness::TrafficKind::Bursty;
    cfg.rateGbps = 100.0;
    cfg.burstPeriod = 10 * sim::oneSec; // one burst
    cfg.nic.ringSize = 256;
    cfg.applyPolicy(idio::Policy::Idio);
    return cfg;
}

std::string
statsJson(harness::TestSystem &sys)
{
    std::ostringstream os;
    stats::writeJson(os, sys.simulation().statsRegistry());
    return os.str();
}

std::vector<std::uint64_t>
perQueueRx(harness::TestSystem &sys)
{
    auto &nic = sys.nicPort(0);
    std::vector<std::uint64_t> rx;
    for (std::uint32_t q = 0; q < nic.numQueues(); ++q)
        rx.push_back(nic.queueRxPackets(q));
    return rx;
}

TEST(MultiQueue, BurstIsFullyProcessedAcrossQueues)
{
    const auto cfg = mqConfig();
    harness::TestSystem sys(cfg);
    sys.start();
    sys.runFor(2 * sim::oneMs);

    const auto t = sys.totals();
    EXPECT_EQ(t.rxPackets, cfg.expectedBurstTotal());
    EXPECT_EQ(t.rxDrops, 0u);
    EXPECT_EQ(t.processedPackets, t.rxPackets);
}

TEST(MultiQueue, RssSpreadsFlowsAcrossEveryQueue)
{
    // 1024 synthetic flows over 8 queues: the splitmix-derived tuples
    // must land packets on every ring (an empty queue would mean the
    // RETA or the hash is degenerate).
    harness::TestSystem sys(mqConfig());
    sys.start();
    sys.runFor(2 * sim::oneMs);

    const auto rx = perQueueRx(sys);
    ASSERT_EQ(rx.size(), 8u);
    std::uint64_t total = 0;
    for (std::size_t q = 0; q < rx.size(); ++q) {
        EXPECT_GT(rx[q], 0u) << "queue " << q << " never saw a packet";
        total += rx[q];
    }
    EXPECT_EQ(total, sys.totals().rxPackets);
}

TEST(MultiQueue, SteeringIsIdenticalAcrossRuns)
{
    // Same flow set + seed → bit-identical per-queue assignment.
    auto run = [] {
        harness::TestSystem sys(mqConfig());
        sys.start();
        sys.runFor(2 * sim::oneMs);
        return std::make_pair(perQueueRx(sys), sys.totals());
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a.first, b.first);
    EXPECT_EQ(a.second, b.second);
}

TEST(MultiQueue, SweepIsIdenticalAcrossJobCounts)
{
    // The --jobs half of the steering-determinism gate: per-queue
    // counts from a parallel sweep match the serial sweep per config.
    // The hardware clamp is disabled so the pool is real even on a
    // single-CPU host.
    std::vector<harness::ExperimentConfig> configs;
    for (std::uint64_t flows : {64u, 1024u, 4096u})
        configs.push_back(mqConfig(8, flows));

    auto runOne = [](const harness::ExperimentConfig &cfg) {
        harness::TestSystem sys(cfg);
        sys.start();
        sys.runFor(2 * sim::oneMs);
        return perQueueRx(sys);
    };

    harness::SweepRunner serial(1);
    harness::SweepRunner parallel(4);
    harness::SweepRunnerTestAccess::disableHardwareClamp(parallel);
    const auto a = serial.map(configs, runOne);
    const auto b = parallel.map(configs, runOne);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]) << "config " << i << " diverged";
}

struct RunArtifacts
{
    harness::Totals totals;
    std::string stats;
    std::string trace;
};

RunArtifacts
runTraced(const harness::ExperimentConfig &cfg, const std::string &tag)
{
    harness::TestSystem sys(cfg);
    // Small per-source rings: 8 cores x default capacity would be
    // hundreds of MB; one 2048-packet burst fits easily in 2^14.
    harness::enableTracing(sys, 1u << 14);
    sys.start();
    sys.runFor(2 * sim::oneMs);

    const std::string path =
        ::testing::TempDir() + "/mq_" + tag + "_trace.json";
    EXPECT_TRUE(trace::writeChromeTrace(path,
                                        sys.simulation().tracer()));
    std::ifstream in(path);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    EXPECT_FALSE(bytes.empty());
    return {sys.totals(), statsJson(sys), std::move(bytes)};
}

TEST(MultiQueue, ShardedRunIsByteIdenticalToUnsharded)
{
    // The tentpole acceptance gate: the sharded build produces the
    // same stats JSON and the same trace bytes as the unsharded one,
    // for any shard-job count.
    const auto base = mqConfig();

    const auto plain = runTraced(base, "plain");

    auto sharded = base;
    sharded.sharded = true;
    sharded.shardJobs = 1;
    const auto j1 = runTraced(sharded, "j1");

    sharded.shardJobs = 2;
    const auto j2 = runTraced(sharded, "j2");

    EXPECT_EQ(j1.totals, plain.totals);
    EXPECT_EQ(j1.stats, plain.stats);
    EXPECT_EQ(j1.trace, plain.trace);
    EXPECT_EQ(j2.totals, plain.totals);
    EXPECT_EQ(j2.stats, plain.stats);
    EXPECT_EQ(j2.trace, plain.trace);
}

TEST(MultiQueue, ShardedExecutorIsActiveWhenConfigured)
{
    auto cfg = mqConfig(4);
    cfg.sharded = true;
    harness::TestSystem sys(cfg);
    ASSERT_NE(sys.shardExecutor(), nullptr);
    sys.start();
    sys.runFor(2 * sim::oneMs);
    EXPECT_GT(sys.shardExecutor()->windowsRun(), 0u);
    EXPECT_EQ(sys.totals().processedPackets, cfg.expectedBurstTotal());
}

TEST(MultiQueue, CkptRoundTripMidBurstIsIdentical)
{
    // Checkpoint a multi-queue system mid-burst, restore into a fresh
    // build, run both out: Totals, stats JSON and per-queue counters
    // must match the uninterrupted run.
    const auto cfg = mqConfig();
    constexpr sim::Tick ckptTick = 1 * quantum; // inside the burst
    constexpr sim::Tick endTick = 20 * quantum;

    harness::TestSystem cold(cfg);
    cold.start();
    cold.runFor(ckptTick);
    const auto blob = cold.checkpoint();
    ASSERT_FALSE(blob.empty());
    const harness::Totals atCkpt = cold.totals();
    EXPECT_LT(atCkpt.rxPackets, cfg.expectedBurstTotal())
        << "checkpoint was meant to land mid-burst";
    cold.runFor(endTick - ckptTick);

    harness::TestSystem warm(cfg);
    warm.start();
    warm.restore(blob);
    EXPECT_EQ(warm.simulation().now(), ckptTick);
    EXPECT_EQ(warm.totals(), atCkpt);
    warm.runFor(endTick - ckptTick);

    EXPECT_EQ(warm.totals(), cold.totals());
    EXPECT_EQ(statsJson(warm), statsJson(cold));
    EXPECT_EQ(perQueueRx(warm), perQueueRx(cold));
}

TEST(MultiQueue, QueueCountMismatchOnRestoreIsFatal)
{
    const auto cfg = mqConfig();
    harness::TestSystem sys(cfg);
    sys.start();
    sys.runFor(quantum);
    const auto blob = sys.checkpoint();

    auto other = mqConfig(4);
    other.seed = cfg.seed;
    harness::TestSystem victim(other);
    victim.start();
    EXPECT_EXIT(victim.restore(blob), ::testing::ExitedWithCode(1),
                "");
}

} // anonymous namespace
