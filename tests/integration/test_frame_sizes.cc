/**
 * @file
 * Parameterized frame-size sweep: the full pipeline must behave for
 * everything from minimum Ethernet frames to MTU, under both DDIO and
 * IDIO. Catches line-count math errors (header/payload splits,
 * partial last lines) that fixed-size tests would miss.
 */

#include <gtest/gtest.h>

#include "harness/system.hh"

namespace
{

class FrameSizeTest
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, bool>>
{
};

TEST_P(FrameSizeTest, PipelineProcessesCleanly)
{
    const auto [frameBytes, useIdio] = GetParam();

    harness::ExperimentConfig cfg;
    cfg.numNfs = 1;
    cfg.traffic = harness::TrafficKind::Steady;
    // Hold the packet *rate* constant (~400 kpps) across sizes.
    cfg.rateGbps = 400e3 * frameBytes * 8.0 / 1e9;
    cfg.frameBytes = frameBytes;
    cfg.applyPolicy(useIdio ? idio::Policy::Idio : idio::Policy::Ddio);

    harness::TestSystem sys(cfg);
    sys.start();
    sys.runFor(5 * sim::oneMs);

    const auto t = sys.totals();
    EXPECT_GT(t.rxPackets, 1500u);
    EXPECT_EQ(t.rxDrops, 0u);
    EXPECT_GE(t.processedPackets + 64, t.rxPackets);

    // DMA line accounting: lines(frame) + 2 descriptor lines per
    // accepted packet (modulo in-flight tails).
    const std::uint64_t expectedLines =
        t.rxPackets * ((frameBytes + 63) / 64 + 2);
    EXPECT_LE(sys.hierarchy().pcieWrites.get(), expectedLines);
    EXPECT_GE(sys.hierarchy().pcieWrites.get() + 40,
              expectedLines * 95 / 100);

    // Latency recorded for every processed packet.
    EXPECT_EQ(sys.nf(0).latency.count(), t.processedPackets);

    if (useIdio) {
        // Self-invalidation keeps dead buffers from reaching DRAM.
        EXPECT_EQ(t.dramWrites, 0u) << "no dirty dead lines may leak";
    }
}

TEST_P(FrameSizeTest, TouchReadsMatchFrameLines)
{
    const auto [frameBytes, useIdio] = GetParam();
    harness::ExperimentConfig cfg;
    cfg.numNfs = 1;
    cfg.traffic = harness::TrafficKind::Steady;
    cfg.rateGbps = 200e3 * frameBytes * 8.0 / 1e9;
    cfg.frameBytes = frameBytes;
    cfg.applyPolicy(useIdio ? idio::Policy::Idio : idio::Policy::Ddio);

    harness::TestSystem sys(cfg);
    sys.start();
    sys.runFor(5 * sim::oneMs);

    // TouchDrop reads every frame line; descriptor reads and the
    // free-list add a bounded per-packet overhead.
    const auto pkts = sys.nf(0).packetsProcessed.get();
    const auto lines = std::uint64_t((frameBytes + 63) / 64);
    const auto reads = sys.core(0).reads.get() -
                       sys.nf(0).emptyPolls.get();
    EXPECT_GE(reads, pkts * lines);
    EXPECT_LE(reads, pkts * (lines + 4) + 64);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, FrameSizeTest,
    ::testing::Combine(::testing::Values(64u, 128u, 256u, 512u, 1024u,
                                         1514u),
                       ::testing::Bool()),
    [](const auto &info) {
        return std::to_string(std::get<0>(info.param)) + "B_" +
               (std::get<1>(info.param) ? "idio" : "ddio");
    });

} // anonymous namespace
