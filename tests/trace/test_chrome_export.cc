/**
 * @file
 * Chrome trace-event exporter tests: the emitted text must be
 * well-formed JSON (checked with a small recursive-descent parser),
 * carry the expected phases, and preserve tick-accurate timestamps.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <sstream>
#include <string>

#include "trace/chrome_export.hh"
#include "trace/tracer.hh"

namespace
{

/**
 * Minimal JSON parser: accepts exactly the RFC 8259 grammar (no
 * extensions), returns false on any syntax error. Values are not
 * materialised — this is a validator, not a reader.
 */
class JsonValidator
{
  public:
    explicit JsonValidator(const std::string &text) : s(text) {}

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos == s.size();
    }

  private:
    bool
    value()
    {
        if (pos >= s.size())
            return false;
        switch (s[pos]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    bool
    object()
    {
        ++pos; // '{'
        skipWs();
        if (peek() == '}') { ++pos; return true; }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') { ++pos; continue; }
            if (peek() == '}') { ++pos; return true; }
            return false;
        }
    }

    bool
    array()
    {
        ++pos; // '['
        skipWs();
        if (peek() == ']') { ++pos; return true; }
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') { ++pos; continue; }
            if (peek() == ']') { ++pos; return true; }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos;
        while (pos < s.size() && s[pos] != '"') {
            if (s[pos] == '\\') {
                ++pos;
                if (pos >= s.size())
                    return false;
                const char c = s[pos];
                if (c == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos;
                        if (pos >= s.size() ||
                            !std::isxdigit(
                                static_cast<unsigned char>(s[pos])))
                            return false;
                    }
                } else if (!strchr("\"\\/bfnrt", c)) {
                    return false;
                }
            } else if (static_cast<unsigned char>(s[pos]) < 0x20) {
                return false;
            }
            ++pos;
        }
        if (pos >= s.size())
            return false;
        ++pos; // closing quote
        return true;
    }

    bool
    number()
    {
        const std::size_t start = pos;
        if (peek() == '-')
            ++pos;
        if (!digits())
            return false;
        if (peek() == '.') {
            ++pos;
            if (!digits())
                return false;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos;
            if (peek() == '+' || peek() == '-')
                ++pos;
            if (!digits())
                return false;
        }
        return pos > start;
    }

    bool
    digits()
    {
        const std::size_t start = pos;
        while (pos < s.size() &&
               std::isdigit(static_cast<unsigned char>(s[pos])))
            ++pos;
        return pos > start;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::strlen(word);
        if (s.compare(pos, n, word) != 0)
            return false;
        pos += n;
        return true;
    }

    void
    skipWs()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                s[pos] == '\r'))
            ++pos;
    }

    char peek() const { return pos < s.size() ? s[pos] : '\0'; }

    const std::string &s;
    std::size_t pos = 0;
};

std::string
exportTrace(const trace::Tracer &tracer)
{
    std::ostringstream os;
    trace::writeChromeTrace(os, tracer);
    return os.str();
}

TEST(ChromeExport, EmptyTraceIsValidJson)
{
    trace::Tracer tracer;
    const std::string out = exportTrace(tracer);
    EXPECT_TRUE(JsonValidator(out).valid()) << out;
    EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
}

TEST(ChromeExport, AllPhasesAreValidJson)
{
    trace::Tracer tracer;
    trace::Source nic = tracer.registerSource("system.nic");
    trace::Source nf = tracer.registerSource("system.nf0");
    tracer.setCapacity(16);
    tracer.enable();

    nic.instant(trace::EventKind::NicRx, 1000000, 1, 46, 1514);
    nic.complete(trace::EventKind::NicDmaPayload, 2000000, 48000, 1,
                 24, 0xdeadbf00);
    nf.complete(trace::EventKind::NfConsume, 3000000, 404000, 1, 0,
                1514);
    nf.counter(trace::EventKind::DpdkRingBacklog, 3500000, 7);

    const std::string out = exportTrace(tracer);
    EXPECT_TRUE(JsonValidator(out).valid()) << out;

    // One thread-name metadata record per source.
    EXPECT_NE(out.find("\"system.nic\""), std::string::npos);
    EXPECT_NE(out.find("\"system.nf0\""), std::string::npos);
    // Phases.
    EXPECT_NE(out.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(out.find("\"ph\":\"C\""), std::string::npos);
    // The counter value lands in args.value.
    EXPECT_NE(out.find("\"value\":7"), std::string::npos);
    // Correlation id is threaded through args.pkt.
    EXPECT_NE(out.find("\"pkt\":1"), std::string::npos);
    // Source metadata for truncation detection.
    EXPECT_NE(out.find("\"dropped\":0"), std::string::npos);
}

TEST(ChromeExport, TimestampsAreFixedPointMicroseconds)
{
    // 1 tick = 1 ps; 2.5 us = 2,500,000 ticks.
    EXPECT_EQ(trace::ticksToUsString(2500000), "2.500000");
    EXPECT_EQ(trace::ticksToUsString(0), "0.000000");
    EXPECT_EQ(trace::ticksToUsString(1), "0.000001");
    // Seconds-range timestamps keep full tick precision (beyond
    // double's 15.9 significant digits).
    EXPECT_EQ(trace::ticksToUsString(123456789012345678ull),
              "123456789012.345678");
}

TEST(ChromeExport, WriteToUnopenablePathFails)
{
    trace::Tracer tracer;
    EXPECT_FALSE(
        trace::writeChromeTrace("/nonexistent-dir/x.json", tracer));
}

} // anonymous namespace
