/**
 * @file
 * Tracer tests: the disabled path must cost nothing (no ring
 * allocation, no recorded events), the enabled path must record and
 * aggregate, and packet ids must be stable run properties.
 */

#include <gtest/gtest.h>

#include "trace/tracer.hh"

namespace
{

using trace::EventKind;

TEST(Tracer, DisabledModeRecordsNothingAndAllocatesNothing)
{
    trace::Tracer tracer;
    trace::Source src = tracer.registerSource("nic");

    EXPECT_FALSE(tracer.enabled());
    EXPECT_FALSE(src.enabled());

    // The instrumentation macros must be no-ops while disabled —
    // whether compiled out (IDIO_TRACE=0) or runtime-gated.
    IDIO_TRACE_INSTANT(src, EventKind::NicRx, 10, 1, 2, 3);
    IDIO_TRACE_COMPLETE(src, EventKind::NfConsume, 10, 5, 1, 0, 0);
    IDIO_TRACE_COUNTER(src, EventKind::DpdkRingBacklog, 10, 4, 0);

    EXPECT_EQ(tracer.allocatedBytes(), 0u);
    EXPECT_EQ(tracer.count(EventKind::NicRx), 0u);
    for (const auto &buf : tracer.sources()) {
        EXPECT_EQ(buf->recorded(), 0u);
        EXPECT_FALSE(buf->allocated());
    }
}

TEST(Tracer, DefaultConstructedSourceIsInert)
{
    trace::Source src;
    EXPECT_FALSE(src.enabled());
    // Must not crash (the macro guard short-circuits on enabled()).
    IDIO_TRACE_INSTANT(src, EventKind::NicRx, 1, 0, 0, 0);
}

TEST(Tracer, EnableAllocatesRegisteredSources)
{
    trace::Tracer tracer;
    trace::Source a = tracer.registerSource("a");
    tracer.setCapacity(100); // rounds up to 128
    tracer.enable();

    EXPECT_TRUE(tracer.enabled());
    EXPECT_TRUE(a.enabled());
    ASSERT_EQ(tracer.sources().size(), 1u);
    EXPECT_EQ(tracer.sources()[0]->capacityBytes(),
              128 * sizeof(trace::Event));
    EXPECT_EQ(tracer.allocatedBytes(),
              128 * sizeof(trace::Event));
}

TEST(Tracer, RegistrationAfterEnableAllocatesImmediately)
{
    trace::Tracer tracer;
    tracer.setCapacity(8);
    tracer.enable();
    trace::Source late = tracer.registerSource("late");

    late.instant(EventKind::NicRx, 5, 1, 0, 0);
    EXPECT_EQ(tracer.count(EventKind::NicRx), 1u);
}

TEST(Tracer, RecordAndCountAcrossSources)
{
    trace::Tracer tracer;
    trace::Source nic = tracer.registerSource("nic");
    trace::Source cache = tracer.registerSource("cache");
    tracer.setCapacity(16);
    tracer.enable();

    nic.instant(EventKind::NicRx, 1, 1, 0, 0);
    nic.instant(EventKind::NicRx, 2, 2, 0, 0);
    cache.instant(EventKind::CacheDdioAlloc, 3, 0, 0, 0x40);
    cache.counter(EventKind::DpdkRingBacklog, 4, 9);

    EXPECT_EQ(tracer.count(EventKind::NicRx), 2u);
    EXPECT_EQ(tracer.count(EventKind::CacheDdioAlloc), 1u);
    EXPECT_EQ(tracer.count(EventKind::DpdkRingBacklog), 1u);
    EXPECT_EQ(tracer.count(EventKind::NicDrop), 0u);
    EXPECT_EQ(tracer.totalDropped(), 0u);
}

TEST(Tracer, DisableStopsRecordingButKeepsEvents)
{
    trace::Tracer tracer;
    trace::Source src = tracer.registerSource("src");
    tracer.setCapacity(8);
    tracer.enable();

    src.instant(EventKind::NicRx, 1, 1, 0, 0);
    tracer.disable();
    EXPECT_FALSE(src.enabled());
    IDIO_TRACE_INSTANT(src, EventKind::NicRx, 2, 2, 0, 0);

    EXPECT_EQ(tracer.count(EventKind::NicRx), 1u);
}

TEST(Tracer, TotalDroppedAggregatesWraparound)
{
    trace::Tracer tracer;
    trace::Source src = tracer.registerSource("src");
    tracer.setCapacity(8);
    tracer.enable();

    for (sim::Tick t = 0; t < 20; ++t)
        src.instant(EventKind::NicRx, t, 0, 0, 0);
    EXPECT_EQ(tracer.totalDropped(), 12u);
    EXPECT_EQ(tracer.count(EventKind::NicRx), 8u);
}

TEST(Tracer, PacketIdsAreSequentialAndIndependentOfEnablement)
{
    trace::Tracer tracer;
    // Ids must be handed out while tracing is disabled too, so a
    // packet's id does not depend on whether anyone is watching.
    EXPECT_EQ(tracer.newPacketId(), 1u);
    EXPECT_EQ(tracer.newPacketId(), 2u);
    tracer.enable();
    EXPECT_EQ(tracer.newPacketId(), 3u);
}

#if IDIO_TRACE
TEST(Tracer, MacrosRecordWhenCompiledInAndEnabled)
{
    trace::Tracer tracer;
    trace::Source src = tracer.registerSource("src");
    tracer.setCapacity(8);
    tracer.enable();

    IDIO_TRACE_INSTANT(src, EventKind::NicRx, 7, 42, 1, 2);
    IDIO_TRACE_COMPLETE(src, EventKind::NfConsume, 7, 3, 42, 0, 64);
    IDIO_TRACE_COUNTER(src, EventKind::DpdkRingBacklog, 8, 5, 0);

    EXPECT_EQ(tracer.count(EventKind::NicRx), 1u);
    EXPECT_EQ(tracer.count(EventKind::NfConsume), 1u);
    EXPECT_EQ(tracer.count(EventKind::DpdkRingBacklog), 1u);

    bool sawRx = false;
    tracer.sources()[0]->forEach([&](const trace::Event &ev) {
        if (ev.kind != EventKind::NicRx)
            return;
        sawRx = true;
        EXPECT_EQ(ev.ts, 7u);
        EXPECT_EQ(ev.pktId, 42u);
        EXPECT_EQ(ev.argA, 1u);
        EXPECT_EQ(ev.argB, 2u);
    });
    EXPECT_TRUE(sawRx);
}
#endif // IDIO_TRACE

TEST(EventTaxonomy, TablesCoverEveryKind)
{
    const auto n = static_cast<unsigned>(trace::EventKind::NumKinds);
    for (unsigned i = 0; i < n; ++i) {
        const auto kind = static_cast<trace::EventKind>(i);
        EXPECT_NE(trace::eventName(kind), nullptr);
        EXPECT_NE(trace::eventCategory(kind), nullptr);
        // Phase must be one of the three Chrome phases.
        const trace::Phase ph = trace::eventPhase(kind);
        EXPECT_TRUE(ph == trace::Phase::Instant ||
                    ph == trace::Phase::Complete ||
                    ph == trace::Phase::Counter);
    }
}

} // anonymous namespace
