/**
 * @file
 * RingBuffer unit tests: wraparound, drop accounting, visit order.
 */

#include <gtest/gtest.h>

#include <vector>

#include "trace/tracer.hh"

namespace
{

trace::Event
eventAt(sim::Tick ts)
{
    trace::Event ev;
    ev.ts = ts;
    ev.kind = trace::EventKind::NicRx;
    return ev;
}

std::vector<sim::Tick>
timestamps(const trace::RingBuffer &ring)
{
    std::vector<sim::Tick> ts;
    ring.forEach([&](const trace::Event &ev) { ts.push_back(ev.ts); });
    return ts;
}

TEST(RingBuffer, RecordBelowCapacity)
{
    trace::RingBuffer ring(0, "src");
    ring.allocate(8);

    for (sim::Tick t = 0; t < 5; ++t)
        ring.record(eventAt(t));

    EXPECT_EQ(ring.recorded(), 5u);
    EXPECT_EQ(ring.dropped(), 0u);
    EXPECT_EQ(ring.retained(), 5u);
    EXPECT_EQ(timestamps(ring),
              (std::vector<sim::Tick>{0, 1, 2, 3, 4}));
}

TEST(RingBuffer, WraparoundOverwritesOldest)
{
    trace::RingBuffer ring(0, "src");
    ring.allocate(8);

    for (sim::Tick t = 0; t < 20; ++t)
        ring.record(eventAt(t));

    EXPECT_EQ(ring.recorded(), 20u);
    EXPECT_EQ(ring.dropped(), 12u);
    EXPECT_EQ(ring.retained(), 8u);
    // Oldest-first visit of the survivors: 12..19.
    EXPECT_EQ(timestamps(ring),
              (std::vector<sim::Tick>{12, 13, 14, 15, 16, 17, 18,
                                      19}));
}

TEST(RingBuffer, ExactCapacityBoundary)
{
    trace::RingBuffer ring(0, "src");
    ring.allocate(4);

    for (sim::Tick t = 0; t < 4; ++t)
        ring.record(eventAt(t));
    EXPECT_EQ(ring.dropped(), 0u);
    EXPECT_EQ(ring.retained(), 4u);

    ring.record(eventAt(4));
    EXPECT_EQ(ring.dropped(), 1u);
    EXPECT_EQ(ring.retained(), 4u);
    EXPECT_EQ(timestamps(ring), (std::vector<sim::Tick>{1, 2, 3, 4}));
}

TEST(RingBuffer, UnallocatedRecordIsDroppedSilently)
{
    trace::RingBuffer ring(0, "src");
    ring.record(eventAt(1));
    EXPECT_EQ(ring.recorded(), 0u);
    EXPECT_EQ(ring.retained(), 0u);
    EXPECT_FALSE(ring.allocated());
    EXPECT_EQ(ring.capacityBytes(), 0u);
}

TEST(RingBuffer, AllocateIsIdempotent)
{
    trace::RingBuffer ring(0, "src");
    ring.allocate(8);
    for (sim::Tick t = 0; t < 3; ++t)
        ring.record(eventAt(t));

    ring.allocate(64); // must not clear or resize an existing ring
    EXPECT_EQ(ring.capacityBytes(), 8 * sizeof(trace::Event));
    EXPECT_EQ(ring.retained(), 3u);
}

TEST(RingBuffer, IdentityAccessors)
{
    trace::RingBuffer ring(7, "system.nf0.nic");
    EXPECT_EQ(ring.tid(), 7u);
    EXPECT_EQ(ring.name(), "system.nf0.nic");
}

} // anonymous namespace
