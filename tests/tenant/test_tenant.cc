/**
 * @file
 * Multi-tenant subsystem gates (src/tenant + harness tenant mode).
 *
 * Covers the CAT partition contract end to end: mask layout math,
 * fill confinement (a tenant's victims can never land outside its
 * partition), deterministic mid-run reconfiguration, the IOCA-style
 * controller's pressure-driven reallocation, and bit-identical
 * checkpoint/restore of the TenantManager + IocaController state.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "../cache/hierarchy_fixture.hh"
#include "harness/system.hh"
#include "harness/trace_artifacts.hh"
#include "stats/json.hh"
#include "tenant/ioca.hh"
#include "tenant/manager.hh"
#include "trace/chrome_export.hh"

namespace
{

/** Two single-core tenants on the tiny 4-way (2 DDIO) hierarchy. */
std::vector<tenant::Tenant>
twoTenants()
{
    tenant::Tenant a;
    a.name = "a";
    a.slo = tenant::SloClass::LatencyCritical;
    a.cores = {0};
    tenant::Tenant b;
    b.name = "b";
    b.slo = tenant::SloClass::BestEffort;
    b.cores = {1};
    return {a, b};
}

TEST(TenantManager, EqualSplitAndContiguousMasks)
{
    sim::Simulation sim_;
    cache::MemoryHierarchy hier(sim_, "sys", testutil::tinyConfig());
    tenant::TenantManager mgr(sim_, "tenants", hier, twoTenants(),
                              /*partitioned=*/true);

    EXPECT_EQ(mgr.ioWays(), 2u);
    EXPECT_EQ(mgr.partitionWays(), 2u);
    EXPECT_EQ(mgr.tenant(0).ways, 1u);
    EXPECT_EQ(mgr.tenant(1).ways, 1u);
    EXPECT_EQ(mgr.tenant(0).mask, cache::WayMask(0b0100));
    EXPECT_EQ(mgr.tenant(1).mask, cache::WayMask(0b1000));
    EXPECT_EQ(hier.coreAllocMask(0), cache::WayMask(0b0100));
    EXPECT_EQ(hier.coreAllocMask(1), cache::WayMask(0b1000));
    EXPECT_EQ(mgr.tenantOfCore(0), 0u);
    EXPECT_EQ(mgr.tenantOfCore(1), 1u);
}

TEST(TenantManager, UnpartitionedKeepsFullMasks)
{
    sim::Simulation sim_;
    cache::MemoryHierarchy hier(sim_, "sys", testutil::tinyConfig());
    tenant::TenantManager mgr(sim_, "tenants", hier, twoTenants(),
                              /*partitioned=*/false);

    EXPECT_FALSE(mgr.partitioned());
    EXPECT_EQ(mgr.tenant(0).ways, 0u);
    EXPECT_EQ(hier.coreAllocMask(0), ~cache::WayMask(0));
    EXPECT_EQ(hier.coreAllocMask(1), ~cache::WayMask(0));
}

TEST(TenantManager, FillsNeverEvictOutsideMask)
{
    sim::Simulation sim_;
    cache::MemoryHierarchy hier(sim_, "sys", testutil::tinyConfig());
    tenant::TenantManager mgr(sim_, "tenants", hier, twoTenants(),
                              /*partitioned=*/true);

    // Dirty a line on tenant a's core and churn far more lines than
    // the MLC holds: every LLC victim insert must stay in way 2.
    hier.coreWrite(0, 0x1000);
    const auto lines = hier.config().mlcSize(0) / mem::lineSize;
    for (std::uint64_t i = 0; i < 2 * lines; ++i)
        hier.coreRead(0, 0x40000000 + i * mem::lineSize);

    const auto outside = hier.llc().tags().countValid(
        [](const cache::CacheLine &, std::uint32_t way) {
            return way != 2;
        });
    EXPECT_EQ(outside, 0u)
        << "tenant a's fills leaked outside its single-way partition";
    EXPECT_GT(hier.llc().tags().countValid(
                  [](const cache::CacheLine &, std::uint32_t way) {
                      return way == 2;
                  }),
              0u);
}

TEST(TenantManager, SetPartitionReprogramsMasksAndCounts)
{
    auto cfg = testutil::tinyConfig();
    cfg.llcPerCore = {8192 / 2, 8, 24}; // 8 ways: 2 I/O + 6 tenant
    sim::Simulation sim_;
    cache::MemoryHierarchy hier(sim_, "sys", cfg);
    tenant::TenantManager mgr(sim_, "tenants", hier, twoTenants(),
                              /*partitioned=*/true);

    EXPECT_EQ(mgr.tenant(0).ways, 3u);
    EXPECT_EQ(mgr.tenant(1).ways, 3u);
    EXPECT_EQ(mgr.maskReconfigs(0), 0u) << "initial layout is free";

    mgr.setPartition({4, 2});
    EXPECT_EQ(mgr.tenant(0).mask, cache::WayMask(0b00111100));
    EXPECT_EQ(mgr.tenant(1).mask, cache::WayMask(0b11000000));
    EXPECT_EQ(hier.coreAllocMask(0), mgr.tenant(0).mask);
    EXPECT_EQ(hier.coreAllocMask(1), mgr.tenant(1).mask);
    EXPECT_EQ(mgr.maskReconfigs(0), 1u);
    EXPECT_EQ(mgr.maskReconfigs(1), 1u);

    // A no-op repartition reprograms nothing.
    mgr.setPartition({4, 2});
    EXPECT_EQ(mgr.maskReconfigs(0), 1u);
    EXPECT_EQ(mgr.maskReconfigs(1), 1u);
}

TEST(TenantManagerDeath, InvalidPartitionsAreFatal)
{
    sim::Simulation sim_;
    cache::MemoryHierarchy hier(sim_, "sys", testutil::tinyConfig());
    tenant::TenantManager mgr(sim_, "tenants", hier, twoTenants(),
                              /*partitioned=*/true);

    EXPECT_EXIT(mgr.setPartition({0, 2}),
                ::testing::ExitedWithCode(1), "zero-way");
    EXPECT_EXIT(mgr.setPartition({2, 2}),
                ::testing::ExitedWithCode(1), "available");
    EXPECT_EXIT(mgr.setPartition({1}),
                ::testing::ExitedWithCode(1), "way counts");

    sim::Simulation sim2;
    cache::MemoryHierarchy hier2(sim2, "sys", testutil::tinyConfig());
    tenant::TenantManager shared(sim2, "tenants", hier2, twoTenants(),
                                 /*partitioned=*/false);
    EXPECT_EXIT(shared.setPartition({1, 1}),
                ::testing::ExitedWithCode(1), "unpartitioned");
}

// ---------------------------------------------------------------
// Harness tenant mode.
// ---------------------------------------------------------------

constexpr sim::Tick quantum = 10 * sim::oneUs;

/**
 * Three-tenant noisy-neighbor mini mix (a short tenant_mix): one
 * latency-critical steady NF, one bursty throughput NF that departs
 * at 150 us, one best-effort antagonist.
 */
harness::ExperimentConfig
mixConfig(harness::TenantPartition part,
          idio::Policy policy = idio::Policy::Ddio)
{
    harness::ExperimentConfig cfg;
    cfg.applyPolicy(policy);
    cfg.tenantPartition = part;
    cfg.nic.ringSize = 256;
    cfg.burstPeriod = 50 * sim::oneUs;
    cfg.rateGbps = 100.0;

    harness::TenantSpec rpc;
    rpc.name = "rpc";
    rpc.slo = tenant::SloClass::LatencyCritical;
    rpc.traffic = harness::TrafficKind::Steady;
    rpc.rateGbps = 10.0;

    harness::TenantSpec batch;
    batch.name = "batch";
    batch.slo = tenant::SloClass::Throughput;
    batch.traffic = harness::TrafficKind::Bursty;
    batch.stopAt = 150 * sim::oneUs;

    harness::TenantSpec antag;
    antag.name = "antag";
    antag.slo = tenant::SloClass::BestEffort;
    antag.antagonist = true;

    cfg.tenants = {rpc, batch, antag};
    return cfg;
}

std::string
statsJson(harness::TestSystem &sys)
{
    std::ostringstream os;
    stats::writeJson(os, sys.simulation().statsRegistry());
    return os.str();
}

TEST(TenantSystem, PerTenantTotalsPartitionTheRun)
{
    harness::TestSystem sys(mixConfig(harness::TenantPartition::None));
    sys.start();
    sys.runFor(20 * quantum);

    const auto tt = sys.tenantTotals();
    ASSERT_EQ(tt.size(), 3u);
    EXPECT_GT(tt[0].rxPackets, 0u);
    EXPECT_GT(tt[0].processedPackets, 0u);
    EXPECT_GT(tt[1].rxPackets, 0u);
    EXPECT_EQ(tt[2].rxPackets, 0u) << "antagonists carry no traffic";
    EXPECT_EQ(tt[2].processedPackets, 0u);
    EXPECT_GT(tt[2].mlcWritebacks, 0u) << "aggressor must thrash";

    // The per-tenant slices sum to the run totals exactly.
    const auto t = sys.totals();
    std::uint64_t rx = 0, drops = 0, processed = 0;
    for (const auto &x : tt) {
        rx += x.rxPackets;
        drops += x.rxDrops;
        processed += x.processedPackets;
    }
    EXPECT_EQ(rx, t.rxPackets);
    EXPECT_EQ(drops, t.rxDrops);
    EXPECT_EQ(processed, t.processedPackets);
}

TEST(TenantSystem, StaticPartitionConfinesTenantFills)
{
    harness::TestSystem sys(
        mixConfig(harness::TenantPartition::Static));
    sys.start();
    sys.runFor(10 * quantum);

    const tenant::TenantManager &mgr = *sys.tenantManager();
    cache::MemoryHierarchy &hier = sys.hierarchy();
    // Every valid LLC line outside the I/O partition must sit inside
    // some tenant's current mask (fills can never land between or
    // across partitions).
    cache::WayMask unionMask = cache::lowWays(mgr.ioWays());
    for (std::uint32_t id = 0; id < mgr.numTenants(); ++id)
        unionMask |= mgr.tenant(id).mask;
    const auto strays = hier.llc().tags().countValid(
        [&](const cache::CacheLine &, std::uint32_t way) {
            return (unionMask & (cache::WayMask(1) << way)) == 0;
        });
    EXPECT_EQ(strays, 0u);
}

TEST(TenantSystem, MidRunReconfigIsDeterministic)
{
    const auto cfg = mixConfig(harness::TenantPartition::Static);

    auto runWithReconfig = [&](harness::TestSystem &sys) {
        sys.start();
        sys.runFor(5 * quantum);
        // Deterministic tick: both runs reprogram at exactly 50 us.
        sys.tenantManager()->setPartition({6, 2, 2});
        sys.runFor(15 * quantum);
    };

    harness::TestSystem a(cfg);
    runWithReconfig(a);
    harness::TestSystem b(cfg);
    runWithReconfig(b);

    EXPECT_EQ(a.tenantManager()->maskReconfigs(0), 1u);
    EXPECT_EQ(a.totals(), b.totals());
    EXPECT_EQ(a.tenantTotals(), b.tenantTotals());
    EXPECT_EQ(statsJson(a), statsJson(b));
}

TEST(TenantSystem, IocaShiftsWaysTowardWeightedPressure)
{
    auto cfg = mixConfig(harness::TenantPartition::Ioca);
    harness::TestSystem sys(cfg);
    sys.start();
    sys.runFor(30 * quantum); // six 50 us controller intervals

    const tenant::TenantManager &mgr = *sys.tenantManager();
    ASSERT_NE(sys.iocaController(), nullptr);
    EXPECT_GT(sys.iocaController()->evaluations.get(), 0u);
    EXPECT_GT(sys.iocaController()->reallocations.get(), 0u);

    // Table I LLC: 12 ways, 2 I/O -> 10 tenant ways, initial 4/3/3.
    // The zero-weight antagonist must drain toward the 1-way floor
    // and the latency-critical tenant must grow past its seed share.
    EXPECT_GT(mgr.tenant(0).ways, 4u);
    EXPECT_LT(mgr.tenant(2).ways, 3u);

    std::uint32_t sum = 0;
    for (std::uint32_t id = 0; id < mgr.numTenants(); ++id) {
        EXPECT_GE(mgr.tenant(id).ways, 1u);
        sum += mgr.tenant(id).ways;
    }
    EXPECT_LE(sum, mgr.partitionWays());
}

TEST(TenantCkpt, MidBurstRoundTripIsBitIdentical)
{
    const auto cfg = mixConfig(harness::TenantPartition::Ioca);
    constexpr sim::Tick ckptTick = 8 * quantum; // past one realloc
    constexpr sim::Tick endTick = 20 * quantum;

    harness::TestSystem cold(cfg);
    cold.start();
    cold.runFor(ckptTick);
    const auto blob = cold.checkpoint();
    ASSERT_FALSE(blob.empty());
    cold.runFor(endTick - ckptTick);

    harness::TestSystem warm(cfg);
    warm.start();
    warm.restore(blob);
    EXPECT_EQ(warm.simulation().now(), ckptTick);
    warm.runFor(endTick - ckptTick);

    EXPECT_EQ(warm.totals(), cold.totals());
    EXPECT_EQ(warm.tenantTotals(), cold.tenantTotals());
    EXPECT_EQ(statsJson(warm), statsJson(cold));

    const tenant::TenantManager &cm = *cold.tenantManager();
    const tenant::TenantManager &wm = *warm.tenantManager();
    for (std::uint32_t id = 0; id < cm.numTenants(); ++id) {
        EXPECT_EQ(wm.tenant(id).ways, cm.tenant(id).ways);
        EXPECT_EQ(wm.tenant(id).mask, cm.tenant(id).mask);
        EXPECT_EQ(warm.hierarchy().coreAllocMask(
                      cm.tenant(id).cores.front()),
                  cm.tenant(id).mask);
    }
    EXPECT_EQ(warm.iocaController()->reallocations.get(),
              cold.iocaController()->reallocations.get());
}

TEST(TenantCkpt, TraceIsByteIdenticalAfterRestore)
{
    const auto cfg = mixConfig(harness::TenantPartition::Ioca);
    constexpr sim::Tick ckptTick = 8 * quantum;
    constexpr sim::Tick endTick = 16 * quantum;

    const std::string coldPath =
        ::testing::TempDir() + "/tenant_cold_trace.json";
    const std::string warmPath =
        ::testing::TempDir() + "/tenant_warm_trace.json";

    harness::TestSystem cold(cfg);
    harness::enableTracing(cold);
    cold.start();
    cold.runFor(ckptTick);
    const auto blob = cold.checkpoint();
    cold.runFor(endTick - ckptTick);
    ASSERT_TRUE(trace::writeChromeTrace(coldPath,
                                        cold.simulation().tracer()));

    harness::TestSystem warm(cfg);
    harness::enableTracing(warm);
    warm.start();
    warm.restore(blob);
    warm.runFor(endTick - ckptTick);
    ASSERT_TRUE(trace::writeChromeTrace(warmPath,
                                        warm.simulation().tracer()));

    std::ifstream a(coldPath), b(warmPath);
    const std::string coldTrace((std::istreambuf_iterator<char>(a)),
                                std::istreambuf_iterator<char>());
    const std::string warmTrace((std::istreambuf_iterator<char>(b)),
                                std::istreambuf_iterator<char>());
    ASSERT_FALSE(coldTrace.empty());
    EXPECT_EQ(coldTrace, warmTrace);
}

} // anonymous namespace
