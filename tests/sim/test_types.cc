/**
 * @file
 * Time-unit conversion tests.
 */

#include <gtest/gtest.h>

#include "sim/types.hh"

namespace
{

TEST(Types, UnitRelations)
{
    EXPECT_EQ(sim::oneNs, 1000u * sim::onePs);
    EXPECT_EQ(sim::oneUs, 1000u * sim::oneNs);
    EXPECT_EQ(sim::oneMs, 1000u * sim::oneUs);
    EXPECT_EQ(sim::oneSec, 1000u * sim::oneMs);
}

TEST(Types, TicksToSeconds)
{
    EXPECT_DOUBLE_EQ(sim::ticksToSeconds(sim::oneSec), 1.0);
    EXPECT_DOUBLE_EQ(sim::ticksToSeconds(sim::oneMs), 1e-3);
    EXPECT_DOUBLE_EQ(sim::ticksToUs(sim::oneUs), 1.0);
    EXPECT_DOUBLE_EQ(sim::ticksToUs(10 * sim::oneMs), 10000.0);
}

TEST(Types, NsToTicksRounds)
{
    EXPECT_EQ(sim::nsToTicks(1.0), sim::oneNs);
    EXPECT_EQ(sim::nsToTicks(0.5), 500u);
    EXPECT_EQ(sim::nsToTicks(0.0004), 0u);
    EXPECT_EQ(sim::nsToTicks(0.0006), 1u);
}

TEST(Types, CyclePeriodAt3GHz)
{
    // One cycle at 3 GHz is 333.33 ps; integer rounding gives 333.
    EXPECT_EQ(sim::cyclePeriod(3.0), 333u);
    EXPECT_EQ(sim::cyclePeriod(1.0), 1000u);
    EXPECT_EQ(sim::cyclePeriod(2.0), 500u);
}

TEST(Types, MaxTickIsLargest)
{
    EXPECT_GT(sim::maxTick, sim::oneSec * 1000000ull);
}

} // anonymous namespace
