/**
 * @file
 * EventQueue unit tests: ordering, determinism, scheduling semantics.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/event_queue.hh"

namespace
{

using sim::Event;
using sim::EventQueue;
using sim::Tick;

class RecordingEvent : public Event
{
  public:
    RecordingEvent(std::vector<int> &log, int id) : log(log), id(id) {}
    void process() override { log.push_back(id); }

  private:
    std::vector<int> &log;
    int id;
};

TEST(EventQueue, StartsAtTickZero)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ProcessesInTimeOrder)
{
    EventQueue q;
    std::vector<int> log;
    q.schedule(30, [&] { log.push_back(3); });
    q.schedule(10, [&] { log.push_back(1); });
    q.schedule(20, [&] { log.push_back(2); });
    q.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTickFiresInInsertionOrder)
{
    EventQueue q;
    std::vector<int> log;
    for (int i = 0; i < 16; ++i)
        q.schedule(5, [&log, i] { log.push_back(i); });
    q.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(log[i], i);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] { ++fired; });
    q.schedule(20, [&] { ++fired; });
    q.schedule(30, [&] { ++fired; });

    q.runUntil(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.now(), 20u);
    EXPECT_EQ(q.pending(), 1u);

    q.runUntil(100);
    EXPECT_EQ(fired, 3);
    // Time advances to the limit even when the queue drains earlier.
    EXPECT_EQ(q.now(), 100u);
}

TEST(EventQueue, EventsScheduledDuringProcessingRun)
{
    EventQueue q;
    std::vector<int> log;
    q.schedule(10, [&] {
        log.push_back(1);
        q.schedule(15, [&] { log.push_back(2); });
    });
    q.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
}

TEST(EventQueue, ZeroDelaySelfScheduleAdvancesDeterministically)
{
    EventQueue q;
    int count = 0;
    std::function<void()> again = [&] {
        if (++count < 5)
            q.scheduleIn(0, again);
    };
    q.scheduleIn(1, again);
    q.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(q.now(), 1u);
}

TEST(EventQueue, MemberEventScheduleAndFire)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent ev(log, 7);
    EXPECT_FALSE(ev.scheduled());

    q.schedule(&ev, 42);
    EXPECT_TRUE(ev.scheduled());
    EXPECT_EQ(ev.when(), 42u);

    q.run();
    EXPECT_FALSE(ev.scheduled());
    EXPECT_EQ(log, (std::vector<int>{7}));
}

TEST(EventQueue, DescheduledEventDoesNotFire)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent ev(log, 1);
    q.schedule(&ev, 10);
    q.deschedule(&ev);
    EXPECT_FALSE(ev.scheduled());
    q.run();
    EXPECT_TRUE(log.empty());
}

TEST(EventQueue, RescheduleAfterDeschedule)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent ev(log, 2);
    q.schedule(&ev, 10);
    q.deschedule(&ev);
    q.schedule(&ev, 20);
    q.run();
    // Fires exactly once, at the second scheduling.
    EXPECT_EQ(log, (std::vector<int>{2}));
    EXPECT_EQ(q.now(), 20u);
}

TEST(EventQueue, MemberEventCanRescheduleItself)
{
    EventQueue q;

    class Repeater : public Event
    {
      public:
        Repeater(EventQueue &q, int limit) : q(q), limit(limit) {}
        void
        process() override
        {
            if (++fires < limit)
                q.scheduleIn(this, 10);
        }
        int fires = 0;

      private:
        EventQueue &q;
        int limit;
    };

    Repeater r(q, 4);
    q.schedule(&r, 10);
    q.run();
    EXPECT_EQ(r.fires, 4);
    EXPECT_EQ(q.now(), 40u);
}

TEST(EventQueue, PendingCountTracksSquashedEntries)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(log, 1), b(log, 2);
    q.schedule(&a, 10);
    q.schedule(&b, 20);
    EXPECT_EQ(q.pending(), 2u);
    q.deschedule(&a);
    EXPECT_EQ(q.pending(), 1u);
    q.run();
    EXPECT_EQ(log, (std::vector<int>{2}));
}

TEST(EventQueue, ProcessedEventsCounter)
{
    EventQueue q;
    for (int i = 0; i < 10; ++i)
        q.schedule(i, [] {});
    q.run();
    EXPECT_EQ(q.processedEvents(), 10u);
}

TEST(EventQueue, CompactionPreservesPendingAndOrder)
{
    EventQueue q;
    std::vector<int> log;
    std::vector<RecordingEvent> evs;
    evs.reserve(32);
    for (int i = 0; i < 32; ++i)
        evs.emplace_back(log, i);
    for (int i = 0; i < 32; ++i)
        q.schedule(&evs[i], Tick(10 + i));

    // Deschedule more than half; the lazy-compaction threshold
    // (squashed > live) must kick in and shrink the raw heap.
    for (int i = 0; i < 32; i += 2)
        q.deschedule(&evs[i]);
    for (int i = 1; i < 32; i += 4)
        q.deschedule(&evs[i]);

    EXPECT_EQ(q.pending(), 8u);
    EXPECT_LT(sim::EventQueueTestAccess::heapSlots(q), 32u)
        << "heap should have compacted away squashed entries";

    q.run();
    EXPECT_EQ(log, (std::vector<int>{3, 7, 11, 15, 19, 23, 27, 31}));
}

TEST(EventQueue, OneShotPoolIsReusedAcrossCycles)
{
    EventQueue q;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
        q.schedule(q.now() + 5, [&fired] { ++fired; });
        q.runUntil(q.now() + 5);
    }
    EXPECT_EQ(fired, 1000);
    // One event in flight at a time => the pool never needs to grow
    // past a single node; per-schedule heap allocation would show up
    // here as an unbounded pool (or not be pooled at all).
    EXPECT_LE(sim::EventQueueTestAccess::oneShotPoolSize(q), 1u);
}

TEST(EventQueue, OneShotCallableIsDestroyedAfterFiring)
{
    EventQueue q;
    auto token = std::make_shared<int>(42);
    std::weak_ptr<int> watch = token;
    q.schedule(10, [token] { (void)*token; });
    token.reset();
    EXPECT_FALSE(watch.expired()) << "queue must keep the callable alive";
    q.run();
    EXPECT_TRUE(watch.expired())
        << "callable must be destroyed once the one-shot fires";
}

TEST(EventQueue, PeekNextTickMatchesNextEventTick)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(log, 1), b(log, 2);
    EXPECT_EQ(q.peekNextTick(), sim::maxTick);
    EXPECT_EQ(q.nextEventTick(), sim::maxTick);

    q.schedule(&a, 30);
    q.schedule(&b, 20);
    EXPECT_EQ(q.peekNextTick(), 20u);
    EXPECT_EQ(q.peekNextTick(), q.nextEventTick());
    q.run();
}

TEST(EventQueue, PeekNextTickSkipsSquashedTop)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(log, 1), b(log, 2);
    q.schedule(&a, 10);
    q.schedule(&b, 40);
    q.deschedule(&a);

    // The squashed entry at the top must be transparent: peek reports
    // the live minimum without changing pending().
    EXPECT_EQ(q.peekNextTick(), 40u);
    EXPECT_EQ(q.pending(), 1u);
    q.run();
    EXPECT_EQ(log, (std::vector<int>{2}));
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue q;
    q.schedule(100, [] {});
    q.run();
    EXPECT_DEATH(q.schedule(50, [] {}), "past");
}

TEST(EventQueueDeath, DoubleSchedulePanics)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent ev(log, 1);
    q.schedule(&ev, 10);
    EXPECT_DEATH(q.schedule(&ev, 20), "twice");
    q.deschedule(&ev);
}

} // anonymous namespace
