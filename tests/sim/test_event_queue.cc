/**
 * @file
 * EventQueue unit tests: ordering, determinism, scheduling semantics.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace
{

using sim::Event;
using sim::EventQueue;
using sim::Tick;

class RecordingEvent : public Event
{
  public:
    RecordingEvent(std::vector<int> &log, int id) : log(log), id(id) {}
    void process() override { log.push_back(id); }

  private:
    std::vector<int> &log;
    int id;
};

TEST(EventQueue, StartsAtTickZero)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ProcessesInTimeOrder)
{
    EventQueue q;
    std::vector<int> log;
    q.schedule(30, [&] { log.push_back(3); });
    q.schedule(10, [&] { log.push_back(1); });
    q.schedule(20, [&] { log.push_back(2); });
    q.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTickFiresInInsertionOrder)
{
    EventQueue q;
    std::vector<int> log;
    for (int i = 0; i < 16; ++i)
        q.schedule(5, [&log, i] { log.push_back(i); });
    q.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(log[i], i);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] { ++fired; });
    q.schedule(20, [&] { ++fired; });
    q.schedule(30, [&] { ++fired; });

    q.runUntil(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.now(), 20u);
    EXPECT_EQ(q.pending(), 1u);

    q.runUntil(100);
    EXPECT_EQ(fired, 3);
    // Time advances to the limit even when the queue drains earlier.
    EXPECT_EQ(q.now(), 100u);
}

TEST(EventQueue, EventsScheduledDuringProcessingRun)
{
    EventQueue q;
    std::vector<int> log;
    q.schedule(10, [&] {
        log.push_back(1);
        q.schedule(15, [&] { log.push_back(2); });
    });
    q.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
}

TEST(EventQueue, ZeroDelaySelfScheduleAdvancesDeterministically)
{
    EventQueue q;
    int count = 0;
    std::function<void()> again = [&] {
        if (++count < 5)
            q.scheduleIn(0, again);
    };
    q.scheduleIn(1, again);
    q.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(q.now(), 1u);
}

TEST(EventQueue, MemberEventScheduleAndFire)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent ev(log, 7);
    EXPECT_FALSE(ev.scheduled());

    q.schedule(&ev, 42);
    EXPECT_TRUE(ev.scheduled());
    EXPECT_EQ(ev.when(), 42u);

    q.run();
    EXPECT_FALSE(ev.scheduled());
    EXPECT_EQ(log, (std::vector<int>{7}));
}

TEST(EventQueue, DescheduledEventDoesNotFire)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent ev(log, 1);
    q.schedule(&ev, 10);
    q.deschedule(&ev);
    EXPECT_FALSE(ev.scheduled());
    q.run();
    EXPECT_TRUE(log.empty());
}

TEST(EventQueue, RescheduleAfterDeschedule)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent ev(log, 2);
    q.schedule(&ev, 10);
    q.deschedule(&ev);
    q.schedule(&ev, 20);
    q.run();
    // Fires exactly once, at the second scheduling.
    EXPECT_EQ(log, (std::vector<int>{2}));
    EXPECT_EQ(q.now(), 20u);
}

TEST(EventQueue, MemberEventCanRescheduleItself)
{
    EventQueue q;

    class Repeater : public Event
    {
      public:
        Repeater(EventQueue &q, int limit) : q(q), limit(limit) {}
        void
        process() override
        {
            if (++fires < limit)
                q.scheduleIn(this, 10);
        }
        int fires = 0;

      private:
        EventQueue &q;
        int limit;
    };

    Repeater r(q, 4);
    q.schedule(&r, 10);
    q.run();
    EXPECT_EQ(r.fires, 4);
    EXPECT_EQ(q.now(), 40u);
}

TEST(EventQueue, PendingCountTracksSquashedEntries)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(log, 1), b(log, 2);
    q.schedule(&a, 10);
    q.schedule(&b, 20);
    EXPECT_EQ(q.pending(), 2u);
    q.deschedule(&a);
    EXPECT_EQ(q.pending(), 1u);
    q.run();
    EXPECT_EQ(log, (std::vector<int>{2}));
}

TEST(EventQueue, ProcessedEventsCounter)
{
    EventQueue q;
    for (int i = 0; i < 10; ++i)
        q.schedule(i, [] {});
    q.run();
    EXPECT_EQ(q.processedEvents(), 10u);
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue q;
    q.schedule(100, [] {});
    q.run();
    EXPECT_DEATH(q.schedule(50, [] {}), "past");
}

TEST(EventQueueDeath, DoubleSchedulePanics)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent ev(log, 1);
    q.schedule(&ev, 10);
    EXPECT_DEATH(q.schedule(&ev, 20), "twice");
    q.deschedule(&ev);
}

} // anonymous namespace
