/**
 * @file
 * ShardPlan and ShardedExecutor tests.
 *
 * The executor's contract is bit-identical results for any host
 * thread count; these tests pin each piece of the determinism
 * argument: single-domain equivalence with a plain runUntil, the
 * (tick, domain-id) interleave inside a fused group, the
 * (tick, source, sequence) cross-post merge, the conservative-window
 * panic, and identical event logs across jobs=1/2/4.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/shard/executor.hh"
#include "sim/shard/plan.hh"

using sim::Tick;
using sim::shard::DomainId;
using sim::shard::ShardedExecutor;
using sim::shard::ShardPlan;

namespace
{

TEST(ShardPlan, UnconnectedDomainsGetOwnGroups)
{
    ShardPlan plan;
    plan.addDomain("a");
    plan.addDomain("b");
    plan.addDomain("c");
    const auto r = plan.resolve();
    EXPECT_EQ(r.groups, 3u);
    EXPECT_EQ(r.groupOf, (std::vector<std::uint32_t>{0, 1, 2}));
    EXPECT_EQ(r.window, sim::maxTick);
}

TEST(ShardPlan, SyncEdgesFuseTransitively)
{
    ShardPlan plan;
    const auto a = plan.addDomain("a");
    const auto b = plan.addDomain("b");
    const auto c = plan.addDomain("c");
    const auto d = plan.addDomain("d");
    plan.syncEdge(a, b);
    plan.syncEdge(b, c);
    const auto r = plan.resolve();
    EXPECT_EQ(r.groups, 2u);
    EXPECT_EQ(r.groupOf[a], r.groupOf[b]);
    EXPECT_EQ(r.groupOf[b], r.groupOf[c]);
    EXPECT_NE(r.groupOf[a], r.groupOf[d]);
}

TEST(ShardPlan, WindowIsMinCrossGroupAsyncLatency)
{
    ShardPlan plan;
    const auto a = plan.addDomain("a");
    const auto b = plan.addDomain("b");
    const auto c = plan.addDomain("c");
    plan.asyncEdge(a, b, 500);
    plan.asyncEdge(b, c, 300);
    const auto r = plan.resolve();
    EXPECT_EQ(r.groups, 3u);
    EXPECT_EQ(r.window, Tick(300));
}

TEST(ShardPlan, IntraGroupAsyncEdgeDoesNotConstrainWindow)
{
    // A latency edge between two already-fused domains is ordered by
    // the group lockstep; only cross-group edges bound the window.
    ShardPlan plan;
    const auto a = plan.addDomain("a");
    const auto b = plan.addDomain("b");
    plan.syncEdge(a, b);
    plan.asyncEdge(a, b, 5);
    const auto r = plan.resolve();
    EXPECT_EQ(r.groups, 1u);
    EXPECT_EQ(r.window, sim::maxTick);
}

TEST(ShardPlan, ZeroLatencyAsyncEdgeFuses)
{
    ShardPlan plan;
    const auto a = plan.addDomain("a");
    const auto b = plan.addDomain("b");
    plan.asyncEdge(a, b, 0);
    const auto r = plan.resolve();
    EXPECT_EQ(r.groups, 1u);
}

TEST(ShardPlan, SplitTopologyWindowIsMinLinkLatency)
{
    // The TestSystem split plan's exact shape: NIC and per-core
    // domains star-connected to the uncore with mixed PCIe/mesh
    // latencies. Everything stays in its own group and the window is
    // the minimum edge — the mesh hop.
    constexpr Tick pcie = 500;
    constexpr Tick mesh = 250;
    ShardPlan plan;
    const auto uncore = plan.addDomain("uncore");
    const auto nic = plan.addDomain("nic");
    plan.asyncEdge(nic, uncore, pcie);
    std::vector<DomainId> cores;
    for (int i = 0; i < 4; ++i) {
        const auto d = plan.addDomain("core" + std::to_string(i));
        plan.asyncEdge(d, uncore, mesh);
        plan.asyncEdge(d, nic, pcie);
        cores.push_back(d);
    }
    const auto r = plan.resolve();
    EXPECT_EQ(r.groups, 6u);
    EXPECT_EQ(r.window, mesh);
    for (const auto d : cores) {
        EXPECT_NE(r.groupOf[d], r.groupOf[uncore]);
        EXPECT_NE(r.groupOf[d], r.groupOf[nic]);
    }
}

TEST(ShardPlan, ZeroLatencyLinkCollapsesSplitTopology)
{
    // A zero-latency mesh degenerates the same topology back to one
    // fused group: the fallback legacy configs rely on (the PCIe
    // latency becomes intra-group and stops constraining the window).
    ShardPlan plan;
    const auto uncore = plan.addDomain("uncore");
    const auto nic = plan.addDomain("nic");
    plan.asyncEdge(nic, uncore, 500);
    for (int i = 0; i < 4; ++i) {
        const auto d = plan.addDomain("core" + std::to_string(i));
        plan.asyncEdge(d, uncore, 0);
        plan.asyncEdge(d, nic, 0);
    }
    const auto r = plan.resolve();
    EXPECT_EQ(r.groups, 1u);
    EXPECT_EQ(r.window, sim::maxTick);
}

TEST(ShardedExecutor, SingleDomainMatchesPlainRunUntil)
{
    // Reference: a plain queue.
    sim::EventQueue ref;
    std::vector<Tick> refLog;
    for (Tick t : {Tick(10), Tick(25), Tick(25), Tick(40), Tick(990)})
        ref.schedule(t, [&refLog, &ref] { refLog.push_back(ref.now()); });
    ref.runUntil(1000);

    // Same schedule through the executor, window much smaller than
    // the span so chunking is exercised.
    ShardedExecutor exec(1);
    const DomainId d = exec.addDomain("only");
    exec.setWindow(7);
    std::vector<Tick> log;
    sim::EventQueue &q = exec.queue(d);
    for (Tick t : {Tick(10), Tick(25), Tick(25), Tick(40), Tick(990)})
        q.schedule(t, [&log, &q] { log.push_back(q.now()); });
    const std::uint64_t n = exec.runUntil(1000);

    EXPECT_EQ(n, 5u);
    EXPECT_EQ(log, refLog);
    EXPECT_EQ(q.now(), ref.now());
    EXPECT_EQ(q.now(), Tick(1000));
    // Idle skipping: far fewer windows than span/window.
    EXPECT_LT(exec.windowsRun(), 20u);
}

TEST(ShardedExecutor, FusedDomainsInterleaveByTickThenDomainId)
{
    ShardedExecutor exec(1);
    const DomainId a = exec.addDomain("a", /*group=*/0);
    const DomainId b = exec.addDomain("b", /*group=*/0);
    exec.setWindow(100);

    // Same-tick events across fused domains fire lowest domain id
    // first; later-scheduled same-domain events keep insertion order.
    std::vector<int> log;
    exec.queue(b).schedule(50, [&log] { log.push_back(20); });
    exec.queue(a).schedule(50, [&log] { log.push_back(10); });
    exec.queue(a).schedule(50, [&log] { log.push_back(11); });
    exec.queue(b).schedule(20, [&log] { log.push_back(21); });
    exec.runUntil(1000);

    EXPECT_EQ(log, (std::vector<int>{21, 10, 11, 20}));
    EXPECT_EQ(exec.queue(a).now(), Tick(1000));
    EXPECT_EQ(exec.queue(b).now(), Tick(1000));
}

TEST(ShardedExecutor, CrossPostsMergeByTickSourceSequence)
{
    ShardedExecutor exec(1);
    const DomainId a = exec.addDomain("a", 0);
    const DomainId b = exec.addDomain("b", 1);
    const DomainId c = exec.addDomain("c", 2);
    exec.setWindow(10);

    // Posts staged outside any window, deliberately out of order:
    // delivery must sort to (tick, source domain, staging sequence).
    std::vector<int> log;
    exec.post(c, b, 100, [&log] { log.push_back(3); });
    exec.post(a, b, 100, [&log] { log.push_back(1); });
    exec.post(a, b, 100, [&log] { log.push_back(2); });
    exec.post(c, b, 50, [&log] { log.push_back(0); });
    exec.runUntil(200);

    EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(exec.crossPostsDelivered(), 4u);
}

/** Ping-pong across two groups; returns the merged event log. */
std::vector<std::pair<int, Tick>>
runPingPong(unsigned jobs)
{
    ShardedExecutor exec(jobs);
    const DomainId a = exec.addDomain("a", 0);
    const DomainId b = exec.addDomain("b", 1);
    const Tick latency = 100;
    exec.setWindow(latency);

    // Per-domain logs: each is only ever touched by the thread
    // running its group, and the window barrier publishes writes.
    std::vector<Tick> logA, logB;

    // fn(a@t): log, post to b at t+latency, which posts back, ...
    struct Bouncer
    {
        ShardedExecutor &exec;
        DomainId self, peer;
        std::vector<Tick> &log;
        Bouncer *back;
        Tick latency;
        int remaining;

        void
        fire()
        {
            log.push_back(exec.queue(self).now());
            if (remaining-- <= 0)
                return;
            const Tick when = exec.queue(self).now() + latency;
            Bouncer *other = back;
            exec.post(self, peer, when, [other] { other->fire(); });
        }
    };
    Bouncer ba{exec, a, b, logA, nullptr, latency, 8};
    Bouncer bb{exec, b, a, logB, &ba, latency, 8};
    ba.back = &bb;

    exec.queue(a).schedule(10, [&ba] { ba.fire(); });
    exec.runUntil(5000);

    std::vector<std::pair<int, Tick>> merged;
    for (Tick t : logA)
        merged.emplace_back(0, t);
    for (Tick t : logB)
        merged.emplace_back(1, t);
    return merged;
}

TEST(ShardedExecutor, PingPongIsIdenticalAcrossHostThreadCounts)
{
    const auto one = runPingPong(1);
    const auto two = runPingPong(2);
    const auto four = runPingPong(4);
    EXPECT_FALSE(one.empty());
    EXPECT_EQ(one, two);
    EXPECT_EQ(one, four);
}

TEST(ShardedExecutorDeathTest, PostInsideWindowPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            ShardedExecutor exec(1);
            const DomainId a = exec.addDomain("a", 0);
            const DomainId b = exec.addDomain("b", 1);
            exec.setWindow(100);
            // An event that posts a same-tick (intra-window) event to
            // the other group: a conservative-window violation.
            exec.queue(a).schedule(10, [&exec, a, b] {
                exec.post(a, b, exec.queue(a).now(), [] {});
            });
            exec.runUntil(1000);
        },
        "conservative window violated");
}

TEST(ShardedExecutor, RunUntilAdvancesIdleDomainsToLimit)
{
    ShardedExecutor exec(1);
    const DomainId a = exec.addDomain("a", 0);
    const DomainId b = exec.addDomain("b", 1);
    exec.setWindow(10);
    exec.queue(a).schedule(500, [] {});
    exec.runUntil(2000);
    // b never had an event; its time base still reaches the limit,
    // mirroring EventQueue::runUntil semantics.
    EXPECT_EQ(exec.queue(a).now(), Tick(2000));
    EXPECT_EQ(exec.queue(b).now(), Tick(2000));
}

} // anonymous namespace
