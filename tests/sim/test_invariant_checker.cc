/**
 * @file
 * InvariantChecker unit tests: registration/stat accounting, periodic
 * sweeps through the event-queue hook, runtime disable, and — the
 * point of the subsystem — panics on deliberately corrupted cache,
 * RX-ring and event-queue state.
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "cache/invariants.hh"
#include "nic/invariants.hh"
#include "nic/rx_ring.hh"
#include "sim/checker/invariant_checker.hh"
#include "sim/event_queue.hh"
#include "sim/simulation.hh"

#include "../cache/hierarchy_fixture.hh"

namespace
{

using sim::InvariantChecker;
using sim::InvariantReport;

TEST(InvariantChecker, SweepEvaluatesEveryRegisteredInvariant)
{
    sim::Simulation s;
    InvariantChecker chk(s, "chk", /*periodEvents=*/0);

    int aRuns = 0;
    int bRuns = 0;
    chk.registerInvariant("a", [&](InvariantReport &) { ++aRuns; });
    chk.registerInvariant("b", [&](InvariantReport &) { ++bRuns; });
    ASSERT_EQ(chk.numInvariants(), 2u);

    chk.check();
    chk.check();

    EXPECT_EQ(aRuns, 2);
    EXPECT_EQ(bRuns, 2);
    EXPECT_EQ(chk.sweeps.get(), 2u);
    EXPECT_EQ(chk.evaluations.get(), 4u);
    EXPECT_EQ(chk.violations.get(), 0u);
}

TEST(InvariantCheckerDeathTest, PanicsListingTheViolation)
{
    sim::Simulation s;
    InvariantChecker chk(s, "chk", 0);
    chk.registerInvariant("always-broken", [](InvariantReport &r) {
        r.fail("synthetic violation");
    });
    EXPECT_DEATH(chk.check(), "synthetic violation");
}

TEST(InvariantChecker, DisabledCheckerIsANoOp)
{
    sim::Simulation s;
    InvariantChecker chk(s, "chk", 0);
    int runs = 0;
    chk.registerInvariant("broken", [&](InvariantReport &r) {
        ++runs;
        r.fail("must never be evaluated while disabled");
    });

    chk.setEnabled(false);
    EXPECT_FALSE(chk.enabled());
    chk.check(); // must neither evaluate nor panic
    EXPECT_EQ(runs, 0);
    EXPECT_EQ(chk.sweeps.get(), 0u);
    EXPECT_EQ(chk.evaluations.get(), 0u);
}

TEST(InvariantChecker, PeriodicSweepsRideTheEventQueueHook)
{
    sim::Simulation s;
    InvariantChecker chk(s, "chk", /*periodEvents=*/4);
    int runs = 0;
    chk.registerInvariant("count", [&](InvariantReport &) { ++runs; });
    chk.attach();

    for (int i = 0; i < 10; ++i)
        s.eventq().schedule(sim::Tick(i) * sim::oneNs, [] {});
    s.runUntil(sim::maxTick);

    if (InvariantChecker::compiledIn) {
        EXPECT_EQ(runs, 2) << "10 events / period 4 = 2 sweeps";
        EXPECT_EQ(chk.sweeps.get(), 2u);
    } else {
        EXPECT_EQ(runs, 0);
    }
}

TEST(InvariantChecker, ZeroPeriodNeverSweepsPeriodically)
{
    sim::Simulation s;
    InvariantChecker chk(s, "chk", /*periodEvents=*/0);
    int runs = 0;
    chk.registerInvariant("count", [&](InvariantReport &) { ++runs; });
    chk.attach(); // no-op: nothing to hang off the queue

    for (int i = 0; i < 32; ++i)
        s.eventq().schedule(sim::Tick(i) * sim::oneNs, [] {});
    s.runUntil(sim::maxTick);
    EXPECT_EQ(runs, 0);
}

// ---------------------------------------------------------------------------
// Deliberate corruption: cache hierarchy.
// ---------------------------------------------------------------------------

class CacheCorruptionDeathTest : public testutil::HierarchyTest
{
  protected:
    CacheCorruptionDeathTest() : chk(sim_, "chk", 0)
    {
        cache::registerCacheInvariants(chk, hier);
    }

    InvariantChecker chk;
};

TEST_F(CacheCorruptionDeathTest, CleanHierarchyPasses)
{
    hier.coreRead(0, 0x1000);
    hier.pcieWrite(0x8000);
    chk.check();
    EXPECT_EQ(chk.violations.get(), 0u);
}

TEST_F(CacheCorruptionDeathTest, MlcLlcDoubleResidencyPanics)
{
    if (!InvariantChecker::compiledIn)
        GTEST_SKIP() << "checker compiled out";

    // Pull a line into core 0's caches, then force a second valid
    // copy of the same line into the LLC behind the hierarchy's back.
    hier.coreRead(0, 0x1000);
    auto &tags = hier.llc().tags();
    tags.fill(tags.findFillSlot(0x1000), 0x1000, false, false);

    EXPECT_DEATH(chk.check(), "exclusivity violated");
}

TEST_F(CacheCorruptionDeathTest, UntrackedMlcLinePanics)
{
    if (!InvariantChecker::compiledIn)
        GTEST_SKIP() << "checker compiled out";

    // Drop the directory entry while the MLC still holds the line.
    hier.coreRead(0, 0x1000);
    hier.directory().removeAll(0x1000);

    EXPECT_DEATH(chk.check(), "untracked by the directory");
}

TEST_F(CacheCorruptionDeathTest, StaleDirectorySharerPanics)
{
    if (!InvariantChecker::compiledIn)
        GTEST_SKIP() << "checker compiled out";

    // Directory claims core 1 holds a line its MLC never saw.
    hier.directory().add(1, 0x2000);

    EXPECT_DEATH(chk.check(), "its MLC lacks the line");
}

TEST_F(CacheCorruptionDeathTest, L1LineWithoutMlcBackingPanics)
{
    if (!InvariantChecker::compiledIn)
        GTEST_SKIP() << "checker compiled out";

    auto &tags = hier.l1(0).tags();
    tags.fill(tags.findFillSlot(0x3000), 0x3000, false, false);

    EXPECT_DEATH(chk.check(), "inclusion violated");
}

TEST_F(CacheCorruptionDeathTest, DdioLineOutsideThePartitionPanics)
{
    if (!InvariantChecker::compiledIn)
        GTEST_SKIP() << "checker compiled out";

    // Mark a line in the last (non-DDIO) way as DDIO-allocated.
    auto &tags = hier.llc().tags();
    const std::uint32_t set = tags.setIndex(0x4000);
    const std::uint32_t lastWay = tags.assoc() - 1;
    ASSERT_GE(lastWay, hier.llc().ddioWays());
    cache::CacheLine &l = tags.lineAt(set, lastWay);
    l.addr = 0x4000;
    l.valid = true;
    l.ddioAlloc = true;

    EXPECT_DEATH(chk.check(), "DDIO partition");
}

TEST_F(CacheCorruptionDeathTest, ShrinkingThePartitionGrandfathersLines)
{
    // A legal reconfiguration must NOT trip the confinement check:
    // allocate through the real DDIO path, shrink the partition, and
    // verify the stranded lines were grandfathered.
    for (sim::Addr a = 0x10000; a < 0x40000; a += mem::lineSize)
        hier.pcieWrite(a);
    hier.llc().setDdioWays(1);
    chk.check();
    EXPECT_EQ(chk.violations.get(), 0u);
}

// ---------------------------------------------------------------------------
// Deliberate corruption: RX descriptor ring.
// ---------------------------------------------------------------------------

class RxRingInvariantTest : public ::testing::Test
{
  protected:
    RxRingInvariantTest() : ring(0x100000, 8) {}

    /** Run checkRxRing and return the recorded failures. */
    std::vector<std::string>
    failures()
    {
        InvariantReport report;
        nic::checkRxRing(ring, "ring", report);
        return report.failures();
    }

    nic::RxRing ring;
};

TEST_F(RxRingInvariantTest, LegalLifecycleStaysClean)
{
    for (std::uint32_t i = 0; i < ring.size(); ++i)
        ring.swArm(i, 0x200000 + i * 2048, i);
    EXPECT_TRUE(failures().empty());

    net::Packet pkt;
    const std::uint32_t idx = ring.hwClaim(pkt); // in flight
    EXPECT_TRUE(failures().empty());

    ring.hwComplete(idx); // done
    EXPECT_TRUE(failures().empty());

    EXPECT_EQ(ring.swConsume(), idx); // idle again
    EXPECT_TRUE(failures().empty());
}

TEST_F(RxRingInvariantTest, InFlightAndDoneTogetherIsIllegal)
{
    ring.swArm(0, 0x200000, 0);
    net::Packet pkt;
    ring.hwClaim(pkt);
    ring.slot(0).dd = true; // corrupt: DMA still in flight

    const auto f = failures();
    ASSERT_FALSE(f.empty());
    EXPECT_NE(f.front().find("both in-flight and done"),
              std::string::npos);
}

TEST_F(RxRingInvariantTest, BusyWithoutArmedIsIllegal)
{
    ring.slot(3).dd = true; // never armed, never claimed

    const auto f = failures();
    ASSERT_FALSE(f.empty());
    EXPECT_NE(f.front().find("without being armed"), std::string::npos);
}

TEST_F(RxRingInvariantTest, DmaIntoUnpostedBufferIsIllegal)
{
    ring.swArm(0, 0x200000, 0);
    net::Packet pkt;
    ring.hwClaim(pkt);
    ring.slot(0).bufAddr = 0; // corrupt: buffer address vanished

    const auto f = failures();
    ASSERT_FALSE(f.empty());
    EXPECT_NE(f.front().find("unposted buffer"), std::string::npos);
}

TEST_F(RxRingInvariantTest, BusySlotOutsideTheWindowIsIllegal)
{
    for (std::uint32_t i = 0; i < ring.size(); ++i)
        ring.swArm(i, 0x200000 + i * 2048, i);
    net::Packet pkt;
    ring.hwClaim(pkt); // window is [0, 1)

    ring.slot(5).inFlight = true; // corrupt: claimed out of order

    const auto f = failures();
    ASSERT_FALSE(f.empty());
    EXPECT_NE(f.front().find("outside the hw/sw window"),
              std::string::npos);
}

TEST(RxRingCheckerDeathTest, RegisteredRingInvariantPanics)
{
    if (!InvariantChecker::compiledIn)
        GTEST_SKIP() << "checker compiled out";

    sim::Simulation s;
    InvariantChecker chk(s, "chk", 0);
    nic::RxRing ring(0x100000, 8);
    chk.registerInvariant("ring", [&ring](InvariantReport &r) {
        nic::checkRxRing(ring, "ring", r);
    });

    ring.slot(2).inFlight = true; // unarmed + out-of-window
    EXPECT_DEATH(chk.check(), "panic:.*invariant violation");
}

// ---------------------------------------------------------------------------
// Deliberate corruption: event queue time base.
// ---------------------------------------------------------------------------

TEST(EventQueueCheckerDeathTest, PendingEventInThePastPanics)
{
    if (!InvariantChecker::compiledIn)
        GTEST_SKIP() << "checker compiled out";

    sim::Simulation s;
    InvariantChecker chk(s, "chk", 0);
    sim::registerEventQueueInvariants(chk, s.eventq());

    s.eventq().schedule(10 * sim::oneNs, [] {});
    chk.check(); // legal so far

    // Corrupt the time base: jump past the pending event.
    sim::EventQueueTestAccess::setCurTick(s.eventq(), 20 * sim::oneNs);
    EXPECT_DEATH(chk.check(), "before current tick");
}

TEST(EventQueueCheckerDeathTest, TimeMovingBackwardsPanics)
{
    if (!InvariantChecker::compiledIn)
        GTEST_SKIP() << "checker compiled out";

    sim::Simulation s;
    InvariantChecker chk(s, "chk", 0);
    sim::registerEventQueueInvariants(chk, s.eventq());

    s.eventq().schedule(10 * sim::oneNs, [] {});
    s.runUntil(sim::maxTick);
    chk.check(); // observes tick 10ns

    sim::EventQueueTestAccess::setCurTick(s.eventq(), sim::oneNs);
    EXPECT_DEATH(chk.check(), "went backwards");
}

} // namespace
