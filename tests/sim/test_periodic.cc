/**
 * @file
 * PeriodicEvent tests.
 */

#include <gtest/gtest.h>

#include "sim/event_queue.hh"
#include "sim/periodic.hh"

namespace
{

TEST(PeriodicEvent, FiresEveryPeriod)
{
    sim::EventQueue q;
    int fires = 0;
    sim::PeriodicEvent ev(q, 100, [&] { ++fires; });
    ev.start();
    q.runUntil(1000);
    EXPECT_EQ(fires, 10);
}

TEST(PeriodicEvent, StartWithPhaseOffset)
{
    sim::EventQueue q;
    std::vector<sim::Tick> when;
    sim::PeriodicEvent ev(q, 100, [&] { when.push_back(q.now()); });
    ev.start(/*phase=*/37);
    q.runUntil(350);
    ASSERT_EQ(when.size(), 4u);
    EXPECT_EQ(when[0], 37u);
    EXPECT_EQ(when[1], 137u);
}

TEST(PeriodicEvent, StopHaltsFiring)
{
    sim::EventQueue q;
    int fires = 0;
    sim::PeriodicEvent ev(q, 10, [&] { ++fires; });
    ev.start();
    q.runUntil(55);
    EXPECT_EQ(fires, 5);
    ev.stop();
    q.runUntil(1000);
    EXPECT_EQ(fires, 5);
}

TEST(PeriodicEvent, RestartAfterStop)
{
    sim::EventQueue q;
    int fires = 0;
    sim::PeriodicEvent ev(q, 10, [&] { ++fires; });
    ev.start();
    q.runUntil(30);
    ev.stop();
    ev.start();
    q.runUntil(60);
    EXPECT_EQ(fires, 6);
}

TEST(PeriodicEvent, DestructionWhileScheduledIsSafe)
{
    sim::EventQueue q;
    {
        sim::PeriodicEvent ev(q, 10, [] {});
        ev.start();
        q.runUntil(25);
    } // must not panic
    q.runUntil(100);
    SUCCEED();
}

TEST(PeriodicEvent, CallbackSeesMonotonicTime)
{
    sim::EventQueue q;
    sim::Tick last = 0;
    bool monotonic = true;
    sim::PeriodicEvent ev(q, 7, [&] {
        if (q.now() <= last)
            monotonic = false;
        last = q.now();
    });
    ev.start();
    q.runUntil(700);
    EXPECT_TRUE(monotonic);
    EXPECT_EQ(last, 700u);
}

} // anonymous namespace
