/**
 * @file
 * Differential tests of the two scheduler backends.
 *
 * The timing wheel must fire events in exactly the (tick, seq) total
 * order the reference binary heap uses — the repo's whole determinism
 * contract (byte-equal stats, traces and checkpoints) rests on it.
 * These tests drive randomized schedule / deschedule / reschedule /
 * runUntil / runOne workloads through both backends and assert the
 * firing sequences are identical event by event, with tick deltas
 * drawn to span every wheel level (L0 same-tick slots, L1/L2 cascades)
 * and the overflow heap.
 *
 * The full-system mid-burst checkpoint gate under the wheel (stats +
 * trace byte-equality across save/restore) lives in
 * tests/ckpt/test_roundtrip.cc and tests/integration/, which run under
 * the wheel by default; here a queue-level rebuild test covers the
 * restore-specific wheel path (replay into a fresh wheel, then force
 * the time base and cascade forward).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <vector>

#include "sim/event_queue.hh"

namespace
{

using sim::Event;
using sim::EventQueue;
using sim::SchedulerBackend;
using sim::Tick;

struct Firing
{
    Tick when;
    int id;

    bool
    operator==(const Firing &o) const
    {
        return when == o.when && id == o.id;
    }
};

class ScriptedEvent : public Event
{
  public:
    ScriptedEvent(const EventQueue &q, std::vector<Firing> &log, int id)
        : q(q), log(log), id(id)
    {
    }

    void process() override { log.push_back({q.now(), id}); }

  private:
    const EventQueue &q;
    std::vector<Firing> &log;
    int id;
};

/**
 * Tick deltas spanning the whole wheel: level-0 slots (same tick and
 * near-future), level-1/2 cascade distances, and the overflow heap
 * horizon beyond 2^24 ticks.
 */
Tick
drawDelta(std::mt19937_64 &rng)
{
    switch (rng() % 4) {
    case 0:
        return rng() % 16; // L0 (incl. same-tick)
    case 1:
        return rng() % (Tick(1) << 12); // L1
    case 2:
        return rng() % (Tick(1) << 20); // L2
    default:
        return rng() % (Tick(1) << 28); // overflow heap
    }
}

/**
 * One randomized scenario against the given backend. The op stream is
 * a pure function of the seed and the queue's observable state, which
 * both backends must evolve identically — any divergence shows up as
 * differing firing logs.
 */
std::vector<Firing>
runScenario(SchedulerBackend backend, std::uint64_t seed)
{
    EventQueue q(backend);
    std::vector<Firing> log;

    constexpr int nMembers = 24;
    std::vector<std::unique_ptr<ScriptedEvent>> members;
    members.reserve(nMembers);
    for (int i = 0; i < nMembers; ++i) {
        members.push_back(
            std::make_unique<ScriptedEvent>(q, log, 1000 + i));
    }

    std::mt19937_64 rng(seed);
    int nextOneShot = 0;

    for (int op = 0; op < 4000; ++op) {
        switch (rng() % 8) {
        case 0:
        case 1: { // one-shot, sometimes chaining a second from inside
            const int id = ++nextOneShot;
            const Tick when = q.now() + drawDelta(rng);
            const bool chain = rng() % 4 == 0;
            const Tick chainDelta = drawDelta(rng);
            q.schedule(when, [&q, &log, id, chain, chainDelta] {
                log.push_back({q.now(), id});
                if (chain) {
                    q.schedule(q.now() + chainDelta, [&q, &log, id] {
                        log.push_back({q.now(), -id});
                    });
                }
            });
            break;
        }
        case 2: { // member schedule
            ScriptedEvent &ev = *members[rng() % nMembers];
            const Tick when = q.now() + drawDelta(rng);
            if (!ev.scheduled())
                q.schedule(&ev, when);
            break;
        }
        case 3: { // member deschedule
            ScriptedEvent &ev = *members[rng() % nMembers];
            if (ev.scheduled())
                q.deschedule(&ev);
            break;
        }
        case 4: { // member reschedule
            ScriptedEvent &ev = *members[rng() % nMembers];
            const Tick when = q.now() + drawDelta(rng);
            if (ev.scheduled())
                q.deschedule(&ev);
            q.schedule(&ev, when);
            break;
        }
        case 5:
        case 6:
            q.runUntil(q.now() + drawDelta(rng));
            break;
        default:
            q.runOne(q.now() + drawDelta(rng));
            break;
        }
        if (op % 512 == 0) {
            EXPECT_TRUE(q.selfCheckConsistent());
        }
    }

    // Drain everything, chains included (a chain adds at most 2^28).
    while (!q.empty())
        q.runUntil(q.now() + (Tick(1) << 29));
    EXPECT_TRUE(q.selfCheckConsistent());
    return log;
}

TEST(SchedulerDifferential, RandomizedWorkloadsFireIdentically)
{
    for (const std::uint64_t seed :
         {1ull, 2ull, 42ull, 0xD1FFull, 0xC0FFEEull}) {
        const auto wheel =
            runScenario(SchedulerBackend::TimingWheel, seed);
        const auto heap =
            runScenario(SchedulerBackend::BinaryHeap, seed);
        ASSERT_EQ(wheel.size(), heap.size()) << "seed " << seed;
        ASSERT_FALSE(wheel.empty()) << "seed " << seed;
        for (std::size_t i = 0; i < wheel.size(); ++i) {
            ASSERT_EQ(wheel[i].when, heap[i].when)
                << "seed " << seed << " firing " << i;
            ASSERT_EQ(wheel[i].id, heap[i].id)
                << "seed " << seed << " firing " << i;
        }
    }
}

/**
 * Lockstep variant: the same op stream drives one queue per backend,
 * and every observable (now, pending, peekNextTick, nextEventTick,
 * empty) must agree after every single op, not just at the end.
 */
TEST(SchedulerDifferential, StateObserversAgreeAfterEveryOp)
{
    EventQueue a(SchedulerBackend::TimingWheel);
    EventQueue b(SchedulerBackend::BinaryHeap);
    std::vector<Firing> logA, logB;

    constexpr int nMembers = 8;
    std::vector<std::unique_ptr<ScriptedEvent>> membersA, membersB;
    for (int i = 0; i < nMembers; ++i) {
        membersA.push_back(
            std::make_unique<ScriptedEvent>(a, logA, i));
        membersB.push_back(
            std::make_unique<ScriptedEvent>(b, logB, i));
    }

    std::mt19937_64 rng(7);
    int nextOneShot = 0;
    for (int op = 0; op < 2000; ++op) {
        switch (rng() % 6) {
        case 0: {
            const int id = ++nextOneShot;
            const Tick delta = drawDelta(rng);
            a.schedule(a.now() + delta, [&a, &logA, id] {
                logA.push_back({a.now(), id});
            });
            b.schedule(b.now() + delta, [&b, &logB, id] {
                logB.push_back({b.now(), id});
            });
            break;
        }
        case 1: {
            const std::size_t m = rng() % nMembers;
            const Tick delta = drawDelta(rng);
            if (!membersA[m]->scheduled()) {
                a.schedule(membersA[m].get(), a.now() + delta);
                b.schedule(membersB[m].get(), b.now() + delta);
            }
            break;
        }
        case 2: {
            const std::size_t m = rng() % nMembers;
            if (membersA[m]->scheduled()) {
                a.deschedule(membersA[m].get());
                b.deschedule(membersB[m].get());
            }
            break;
        }
        case 3:
        case 4: {
            const Tick delta = drawDelta(rng);
            a.runUntil(a.now() + delta);
            b.runUntil(b.now() + delta);
            break;
        }
        default: {
            const Tick delta = drawDelta(rng);
            a.runOne(a.now() + delta);
            b.runOne(b.now() + delta);
            break;
        }
        }
        ASSERT_EQ(a.now(), b.now()) << "op " << op;
        ASSERT_EQ(a.pending(), b.pending()) << "op " << op;
        ASSERT_EQ(a.empty(), b.empty()) << "op " << op;
        ASSERT_EQ(a.peekNextTick(), b.peekNextTick()) << "op " << op;
        ASSERT_EQ(a.nextEventTick(), b.nextEventTick()) << "op " << op;
        ASSERT_EQ(logA.size(), logB.size()) << "op " << op;
    }
    ASSERT_EQ(logA, logB);

    for (int i = 0; i < nMembers; ++i) {
        if (membersA[i]->scheduled())
            a.deschedule(membersA[i].get());
        if (membersB[i]->scheduled())
            b.deschedule(membersB[i].get());
    }
}

/**
 * Restore-style rebuild under the wheel: fire half a schedule, move
 * the survivors into a fresh queue in original sequence order (what
 * ckpt's deferred replay does), force the time base, and check the
 * continuation fires exactly like the uninterrupted run. Covers the
 * wheel-specific restore path: entries placed against wheelBase 0,
 * then the first advance cascading the base up to the restored tick.
 */
TEST(SchedulerDifferential, RebuiltWheelContinuesIdentically)
{
    struct Planned
    {
        Tick when;
        int id;
    };
    std::vector<Planned> plan;
    std::mt19937_64 rng(11);
    for (int i = 0; i < 200; ++i)
        plan.push_back({drawDelta(rng) + 1, i});

    const Tick cut = Tick(1) << 16;
    const Tick end = Tick(1) << 29;

    // Uninterrupted reference run.
    std::vector<Firing> ref;
    {
        EventQueue q;
        for (const Planned &p : plan) {
            q.schedule(p.when, [&q, &ref, id = p.id] {
                ref.push_back({q.now(), id});
            });
        }
        q.runUntil(end);
        ASSERT_TRUE(q.empty());
    }

    // Interrupted run: stop at `cut`, rebuild into a fresh queue.
    std::vector<Firing> firstHalf;
    {
        EventQueue q;
        for (const Planned &p : plan) {
            q.schedule(p.when, [&q, &firstHalf, id = p.id] {
                firstHalf.push_back({q.now(), id});
            });
        }
        q.runUntil(cut);
    }

    std::vector<Firing> secondHalf;
    {
        EventQueue q;
        // Replay survivors in original (ascending seq == plan) order,
        // then force the time base past them, as ckpt::restore does.
        for (const Planned &p : plan) {
            if (p.when <= cut)
                continue;
            q.schedule(p.when, [&q, &secondHalf, id = p.id] {
                secondHalf.push_back({q.now(), id});
            });
        }
        sim::EventQueueRestoreAccess::setCurTick(q, cut);
        EXPECT_TRUE(q.selfCheckConsistent());
        q.runUntil(end);
        ASSERT_TRUE(q.empty());
    }

    std::vector<Firing> combined = firstHalf;
    combined.insert(combined.end(), secondHalf.begin(),
                    secondHalf.end());
    ASSERT_EQ(combined, ref);
}

/**
 * With near events wheel-resident, lazy squash + compaction only runs
 * for far-future (overflow-heap) deschedules; pin that path directly.
 */
TEST(SchedulerDifferential, FarFutureCompactionPreservesOrder)
{
    class NopEvent : public Event
    {
      public:
        void process() override {}
    };

    EventQueue q;
    const Tick far = Tick(1) << 26; // beyond the 2^24 wheel horizon
    std::vector<NopEvent> evs(64);
    for (std::size_t i = 0; i < evs.size(); ++i)
        q.schedule(&evs[i], far + Tick(i));
    ASSERT_EQ(sim::EventQueueTestAccess::heapSlots(q), 64u);
    ASSERT_EQ(sim::EventQueueTestAccess::wheelEntries(q), 0u);

    // Squash most of the heap; compaction keeps slots < live*2.
    for (std::size_t i = 0; i < evs.size(); ++i) {
        if (i % 4 != 0)
            q.deschedule(&evs[i]);
    }
    EXPECT_EQ(q.pending(), 16u);
    EXPECT_LT(sim::EventQueueTestAccess::heapSlots(q), 32u);
    EXPECT_TRUE(q.selfCheckConsistent());

    // Survivors still fire in schedule order as they cascade into the
    // wheel and drain.
    std::vector<Tick> fired;
    q.setPostEventHook(1, [&q, &fired] { fired.push_back(q.now()); });
    q.runUntil(far + 64);
    ASSERT_EQ(fired.size(), 16u);
    for (std::size_t i = 0; i < fired.size(); ++i)
        EXPECT_EQ(fired[i], far + Tick(4 * i));
}

} // namespace
