/**
 * @file
 * Deterministic RNG tests.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.hh"

namespace
{

TEST(Rng, SameSeedSameSequence)
{
    sim::Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    sim::Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 5);
}

TEST(Rng, BelowStaysInRange)
{
    sim::Rng r(42);
    for (int i = 0; i < 10000; ++i) {
        const auto v = r.below(17);
        ASSERT_LT(v, 17u);
    }
}

TEST(Rng, BelowCoversAllValues)
{
    sim::Rng r(42);
    std::vector<int> seen(8, 0);
    for (int i = 0; i < 8000; ++i)
        ++seen[r.below(8)];
    for (int i = 0; i < 8; ++i) {
        // Each bucket expects 1000; allow generous slack.
        EXPECT_GT(seen[i], 700) << "bucket " << i;
        EXPECT_LT(seen[i], 1300) << "bucket " << i;
    }
}

TEST(Rng, UniformInUnitInterval)
{
    sim::Rng r(7);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean)
{
    sim::Rng r(99);
    const double mean = 250.0;
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double x = r.exponential(mean);
        ASSERT_GE(x, 0.0);
        sum += x;
    }
    EXPECT_NEAR(sum / n, mean, mean * 0.05);
}

TEST(Rng, ChanceProbability)
{
    sim::Rng r(5);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ReseedRestartsSequence)
{
    sim::Rng r(11);
    const auto first = r.next();
    r.next();
    r.reseed(11);
    EXPECT_EQ(r.next(), first);
}

} // anonymous namespace
