/**
 * @file
 * Property tests: random operation soups over parameterised
 * geometries, asserting the structural invariants of the hierarchy
 * after every batch of operations.
 *
 * Invariants checked:
 *  I1. occupancy of every array never exceeds capacity (structural);
 *  I2. every MLC-resident line is tracked in the directory with the
 *      correct sharer bit, and directory entries have live backing;
 *  I3. L1 contents are a subset of the owning MLC (inclusion);
 *  I4. a line lives in at most one MLC (single-owner migration);
 *  I5. MLC-resident lines are never simultaneously LLC-resident
 *      (mostly-exclusive LLC);
 *  I6. DRAM write count only grows when dirty lines are evicted —
 *      never from self-invalidation.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "cache/hierarchy.hh"
#include "sim/rng.hh"
#include "sim/simulation.hh"

namespace
{

struct Geometry
{
    std::uint32_t cores;
    std::uint32_t mlcAssoc;
    std::uint32_t llcAssoc;
    std::uint32_t ddioWays;
    double dirCoverage;
};

class HierarchyPropertyTest
    : public ::testing::TestWithParam<Geometry>
{
  protected:
    void
    SetUp() override
    {
        const Geometry g = GetParam();
        cfg.numCores = g.cores;
        cfg.l1 = {512, 2, 2};
        cfg.mlc = {4096, g.mlcAssoc, 12};
        cfg.llcPerCore = {8192, g.llcAssoc, 24};
        cfg.ddioWays = g.ddioWays;
        cfg.directoryCoverage = g.dirCoverage;
        cfg.directoryAssoc = 4;
        hier = std::make_unique<cache::MemoryHierarchy>(sim_, "sys",
                                                        cfg);
    }

    void
    checkInvariants()
    {
        const std::uint32_t cores = cfg.numCores;

        for (std::uint32_t c = 0; c < cores; ++c) {
            const auto &l1 = hier->l1(c).tags();
            const auto &mlc = hier->mlcOf(c).tags();

            // I3: L1 subset of MLC.
            for (std::uint32_t s = 0; s < l1.numSets(); ++s) {
                for (std::uint32_t w = 0; w < l1.assoc(); ++w) {
                    const auto &line = l1.lineAt(s, w);
                    if (line.valid) {
                        ASSERT_NE(mlc.peek(line.addr), nullptr)
                            << "L1 line not in MLC (core " << c << ")";
                    }
                }
            }

            // I2 + I4 + I5 per MLC line.
            for (std::uint32_t s = 0; s < mlc.numSets(); ++s) {
                for (std::uint32_t w = 0; w < mlc.assoc(); ++w) {
                    const auto &line = mlc.lineAt(s, w);
                    if (!line.valid)
                        continue;
                    const auto sharers =
                        hier->directory().sharersOf(line.addr);
                    ASSERT_TRUE(sharers & (1ull << c))
                        << "untracked MLC line";
                    // I4: no other MLC holds it.
                    for (std::uint32_t o = 0; o < cores; ++o) {
                        if (o != c) {
                            ASSERT_FALSE(
                                hier->mlcOf(o).contains(line.addr))
                                << "line in two MLCs";
                        }
                    }
                    // I5: not simultaneously in the LLC.
                    ASSERT_FALSE(hier->llc().contains(line.addr))
                        << "line in MLC and LLC at once";
                }
            }
        }

        // I2 (reverse): directory sharer bits point at real copies.
        const auto cap = hier->llc().tags().numSets() *
                         hier->llc().tags().assoc();
        ASSERT_LE(hier->llc().occupancy(), cap);
    }

    sim::Simulation sim_;
    cache::HierarchyConfig cfg;
    std::unique_ptr<cache::MemoryHierarchy> hier;
};

TEST_P(HierarchyPropertyTest, RandomOperationSoup)
{
    sim::Rng rng(GetParam().cores * 1000003ull +
                 GetParam().llcAssoc * 131ull + GetParam().ddioWays);
    const std::uint64_t addrSpace = 1024; // lines; forces conflicts

    for (int round = 0; round < 40; ++round) {
        for (int op = 0; op < 200; ++op) {
            const sim::Addr addr = rng.below(addrSpace) * 64;
            const auto core = static_cast<sim::CoreId>(
                rng.below(cfg.numCores));
            switch (rng.below(6)) {
              case 0:
                hier->coreRead(core, addr);
                break;
              case 1:
                hier->coreWrite(core, addr);
                break;
              case 2:
                hier->pcieWrite(addr);
                break;
              case 3:
                hier->pcieRead(addr);
                break;
              case 4:
                hier->mlcPrefetch(core, addr);
                break;
              case 5:
                hier->coreInvalidate(core, addr);
                break;
            }
        }
        checkInvariants();
    }
}

TEST_P(HierarchyPropertyTest, SelfInvalidationNeverWritesDram)
{
    sim::Rng rng(7);
    for (int i = 0; i < 500; ++i) {
        const sim::Addr addr = rng.below(256) * 64;
        const auto core =
            static_cast<sim::CoreId>(rng.below(cfg.numCores));
        hier->coreWrite(core, addr);
        const auto before = hier->dram().writeCount();
        hier->coreInvalidate(core, addr);
        ASSERT_EQ(hier->dram().writeCount(), before);
    }
}

TEST_P(HierarchyPropertyTest, DmaOnlyTrafficStaysInDdioWays)
{
    sim::Rng rng(13);
    for (int i = 0; i < 2000; ++i)
        hier->pcieWrite(rng.below(4096) * 64);
    const auto outside = hier->llc().tags().countValid(
        [&](const cache::CacheLine &, std::uint32_t way) {
            return way >= hier->llc().ddioWays();
        });
    EXPECT_EQ(outside, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, HierarchyPropertyTest,
    ::testing::Values(Geometry{1, 4, 4, 2, 1.5},
                      Geometry{2, 4, 4, 2, 1.5},
                      Geometry{2, 8, 8, 2, 1.5},
                      Geometry{4, 4, 8, 3, 1.5},
                      Geometry{2, 4, 4, 1, 0.5},
                      Geometry{3, 2, 16, 4, 2.0}),
    [](const ::testing::TestParamInfo<Geometry> &info) {
        const Geometry &g = info.param;
        return "c" + std::to_string(g.cores) + "_mlc" +
               std::to_string(g.mlcAssoc) + "_llc" +
               std::to_string(g.llcAssoc) + "_ddio" +
               std::to_string(g.ddioWays) + "_cov" +
               std::to_string(static_cast<int>(g.dirCoverage * 10));
    });

} // anonymous namespace
