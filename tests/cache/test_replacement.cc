/**
 * @file
 * Replacement policy tests, including masked victim selection.
 */

#include <gtest/gtest.h>

#include "cache/replacement.hh"

namespace
{

using cache::lowWays;
using cache::WayMask;

TEST(LowWays, MaskConstruction)
{
    EXPECT_EQ(lowWays(0), 0u);
    EXPECT_EQ(lowWays(1), 0b1u);
    EXPECT_EQ(lowWays(2), 0b11u);
    EXPECT_EQ(lowWays(11), 0x7FFu);
    EXPECT_EQ(lowWays(64), ~WayMask(0));
}

TEST(Lru, EvictsLeastRecentlyUsed)
{
    cache::LruPolicy lru;
    lru.init(1, 4);
    lru.touch(0, 0);
    lru.touch(0, 1);
    lru.touch(0, 2);
    lru.touch(0, 3);
    lru.touch(0, 0); // refresh way 0
    EXPECT_EQ(lru.victim(0, lowWays(4)), 1u);
}

TEST(Lru, MaskRestrictsVictim)
{
    cache::LruPolicy lru;
    lru.init(1, 4);
    lru.touch(0, 0); // oldest overall
    lru.touch(0, 1);
    lru.touch(0, 2);
    lru.touch(0, 3);
    // Only ways 2 and 3 are candidates: way 2 is the older of the two.
    EXPECT_EQ(lru.victim(0, 0b1100), 2u);
}

TEST(Lru, SetsAreIndependent)
{
    cache::LruPolicy lru;
    lru.init(2, 2);
    lru.touch(0, 0);
    lru.touch(0, 1);
    lru.touch(1, 1);
    lru.touch(1, 0);
    EXPECT_EQ(lru.victim(0, 0b11), 0u);
    EXPECT_EQ(lru.victim(1, 0b11), 1u);
}

TEST(Random, AlwaysReturnsCandidate)
{
    cache::RandomPolicy rnd(1);
    rnd.init(1, 8);
    for (int i = 0; i < 1000; ++i) {
        const auto v = rnd.victim(0, 0b10100100);
        EXPECT_TRUE(v == 2 || v == 5 || v == 7);
    }
}

TEST(Random, SingleCandidate)
{
    cache::RandomPolicy rnd(2);
    rnd.init(1, 8);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rnd.victim(0, 0b1000), 3u);
}

TEST(Srrip, VictimHasDistantRrpv)
{
    cache::SrripPolicy srrip;
    srrip.init(1, 4);
    // All start at max RRPV; way 0 is chosen first (lowest index).
    EXPECT_EQ(srrip.victim(0, lowWays(4)), 0u);
    srrip.fill(0, 0);
    // Now way 0 is "long" (max-1) and the others are still distant.
    EXPECT_EQ(srrip.victim(0, lowWays(4)), 1u);
}

TEST(Srrip, HitPromotionProtects)
{
    cache::SrripPolicy srrip;
    srrip.init(1, 2);
    srrip.fill(0, 0);
    srrip.fill(0, 1);
    srrip.touch(0, 0); // promote way 0 to RRPV 0
    // Aging should evict way 1 first.
    EXPECT_EQ(srrip.victim(0, 0b11), 1u);
}

TEST(Factory, KnownNames)
{
    EXPECT_EQ(cache::makeReplacementPolicy("lru")->name(), "lru");
    EXPECT_EQ(cache::makeReplacementPolicy("random")->name(), "random");
    EXPECT_EQ(cache::makeReplacementPolicy("srrip")->name(), "srrip");
}

TEST(FactoryDeath, UnknownNameIsFatal)
{
    EXPECT_EXIT(cache::makeReplacementPolicy("plru"),
                ::testing::ExitedWithCode(1), "unknown replacement");
}

} // anonymous namespace
