/**
 * @file
 * Device-side hierarchy flow tests: the exact P1..P5 ingress/egress
 * transitions of paper Fig. 1, DDIO-way overflow (DMA leak), and the
 * direct-DRAM path.
 */

#include "hierarchy_fixture.hh"

namespace
{

using testutil::HierarchyTest;

// ---------------------------------------------------------------- P5

TEST_F(HierarchyTest, P5UncachedWriteAllocatesInDdioWays)
{
    hier.pcieWrite(0x1000);

    auto ref = hier.llc().probe(0x1000);
    ASSERT_TRUE(ref);
    EXPECT_LT(ref.way, hier.llc().ddioWays());
    EXPECT_TRUE(ref.line->dirty);
    EXPECT_TRUE(ref.line->io);
    EXPECT_EQ(hier.llc().ddioAllocs.get(), 1u);
    EXPECT_EQ(hier.dram().writeCount(), 0u) << "DDIO bypasses DRAM";
}

// ---------------------------------------------------------------- P4

TEST_F(HierarchyTest, P4DdioWayHitUpdatesInPlace)
{
    hier.pcieWrite(0x1000);
    const int way = llcWayOf(0x1000);
    hier.pcieWrite(0x1000);

    EXPECT_EQ(llcWayOf(0x1000), way);
    EXPECT_EQ(hier.llc().ddioAllocs.get(), 1u);
    EXPECT_EQ(hier.llc().ddioUpdates.get(), 1u);
}

// ---------------------------------------------------------------- P3

TEST_F(HierarchyTest, P3NonDdioLlcLineUpdatedInPlace)
{
    // Build P3: CPU-owned line spilled into a non-DDIO LLC way.
    hier.coreWrite(0, 0x1000);
    churnMlc(0);
    auto before = hier.llc().probe(0x1000);
    ASSERT_TRUE(before);

    const int way = llcWayOf(0x1000);
    hier.pcieWrite(0x1000);

    auto after = hier.llc().probe(0x1000);
    ASSERT_TRUE(after);
    EXPECT_EQ(llcWayOf(0x1000), way) << "in-place update, same way";
    EXPECT_TRUE(after.line->dirty);
    EXPECT_TRUE(after.line->io) << "the line is I/O data now";
    EXPECT_GE(hier.llc().ddioUpdates.get(), 1u);
}

// ---------------------------------------------------------------- P1

TEST_F(HierarchyTest, P1MlcExclusiveLineInvalidatedAndReallocated)
{
    // Build P1: line exclusively in core 0's MLC.
    hier.coreRead(0, 0x2000);
    ASSERT_TRUE(hier.mlcOf(0).contains(0x2000));
    ASSERT_FALSE(hier.llc().contains(0x2000));

    hier.pcieWrite(0x2000);

    // Step P1-1: MLC copy invalidated without writeback.
    EXPECT_FALSE(hier.mlcOf(0).contains(0x2000));
    EXPECT_FALSE(hier.l1(0).contains(0x2000));
    EXPECT_EQ(hier.mlcOf(0).pcieInvals.get(), 1u);
    EXPECT_EQ(hier.mlcOf(0).writebacks.get(), 0u);

    // Step P1-2: write-allocated into the DDIO ways.
    auto ref = hier.llc().probe(0x2000);
    ASSERT_TRUE(ref);
    EXPECT_LT(ref.way, hier.llc().ddioWays());
    EXPECT_FALSE(hier.directory().isTracked(0x2000));
}

// ------------------------------------------------------- multi-sharer

TEST_F(HierarchyTest, PcieWriteInvalidatesEverySharer)
{
    hier.coreRead(0, 0x2000);
    hier.coreRead(1, 0x2000); // migrates to core 1
    hier.coreRead(0, 0x2000); // migrates back... single owner model
    // Whichever core holds it, the DMA write must reach it.
    hier.pcieWrite(0x2000);
    EXPECT_FALSE(hier.mlcOf(0).contains(0x2000));
    EXPECT_FALSE(hier.mlcOf(1).contains(0x2000));
}

// ------------------------------------------------------ DMA leak

TEST_F(HierarchyTest, DdioWayOverflowLeaksToDram)
{
    // LLC: 8 KB 4-way = 32 sets; DDIO capacity = 2 ways * 32 sets =
    // 64 lines. Stream 4x that without any CPU consumption.
    for (int i = 0; i < 256; ++i)
        hier.pcieWrite(0x100000 + std::uint64_t(i) * 64);

    EXPECT_GT(hier.llc().ddioWayEvictions.get(), 0u);
    EXPECT_GT(hier.dram().writeCount(), 0u) << "DMA leak is dirty";
    EXPECT_GT(hier.llc().writebacks.get(), 0u);
    // Non-DDIO ways stay untouched by pure DMA traffic.
    const auto outside = hier.llc().tags().countValid(
        [&](const cache::CacheLine &, std::uint32_t way) {
            return way >= hier.llc().ddioWays();
        });
    EXPECT_EQ(outside, 0u);
}

// ------------------------------------------------------ egress (TX)

TEST_F(HierarchyTest, PcieReadPullsDirtyMlcCopyIntoLlc)
{
    hier.coreWrite(0, 0x4000); // dirty private copy
    const std::uint64_t wbBefore = hier.mlcOf(0).writebacks.get();
    const auto dramReadsAfterFill = hier.dram().readCount();

    hier.pcieRead(0x4000);

    EXPECT_FALSE(hier.mlcOf(0).contains(0x4000))
        << "egress read invalidates the MLC copy (Fig. 3 right)";
    EXPECT_TRUE(hier.llc().contains(0x4000));
    EXPECT_EQ(hier.mlcOf(0).writebacks.get(), wbBefore + 1);
    EXPECT_EQ(hier.dram().readCount(), dramReadsAfterFill)
        << "the egress read is served on-chip";
}

TEST_F(HierarchyTest, PcieReadServedFromLlc)
{
    hier.pcieWrite(0x4000);
    const auto lat = hier.pcieRead(0x4000);
    EXPECT_TRUE(hier.llc().contains(0x4000)) << "LLC copy stays";
    EXPECT_EQ(hier.dram().readCount(), 0u);
    EXPECT_GT(lat, 0u);
}

TEST_F(HierarchyTest, PcieReadFallsBackToDram)
{
    const auto lat = hier.pcieRead(0x9000);
    EXPECT_EQ(hier.dram().readCount(), 1u);
    EXPECT_GE(lat, sim::nsToTicks(hier.config().dramLatencyNs));
}

TEST_F(HierarchyTest, PcieReadOfCleanMlcCopyServedFromMemorySide)
{
    hier.coreRead(0, 0x4000); // clean copy in MLC (DRAM-backed)
    hier.pcieRead(0x4000);
    // Clean copy invalidated, data served from DRAM (it is backed).
    EXPECT_FALSE(hier.mlcOf(0).contains(0x4000));
    EXPECT_EQ(hier.dram().readCount(), 2u); // fill + egress
}

// ------------------------------------------------- direct DRAM (M3)

TEST_F(HierarchyTest, DirectDramWriteBypassesCaches)
{
    hier.pcieWriteDirectDram(0x6000);
    EXPECT_FALSE(hier.llc().contains(0x6000));
    EXPECT_EQ(hier.dram().writeCount(), 1u);
    EXPECT_EQ(hier.directDramWrites.get(), 1u);
}

TEST_F(HierarchyTest, DirectDramWriteInvalidatesStaleCopies)
{
    hier.coreRead(0, 0x6000);                 // MLC copy
    hier.pcieWrite(0x6040);                   // unrelated
    hier.pcieWrite(0x6080);                   // LLC copy to drop later
    hier.pcieWriteDirectDram(0x6000);
    hier.pcieWriteDirectDram(0x6080);

    EXPECT_FALSE(hier.mlcOf(0).contains(0x6000));
    EXPECT_FALSE(hier.llc().contains(0x6080));
    // No writeback of the stale data (it was dead).
    EXPECT_EQ(hier.dram().writeCount(), 2u);
}

TEST_F(HierarchyTest, PcieWriteCountsTracked)
{
    hier.pcieWrite(0x100);
    hier.pcieWrite(0x140);
    hier.pcieWriteDirectDram(0x180);
    EXPECT_EQ(hier.pcieWrites.get(), 3u);
}

} // anonymous namespace
