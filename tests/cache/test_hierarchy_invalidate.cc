/**
 * @file
 * Self-invalidating I/O buffer tests (paper Secs. IV-A and V-D).
 */

#include "hierarchy_fixture.hh"

#include "mem/phys_alloc.hh"

namespace
{

using testutil::HierarchyTest;

TEST_F(HierarchyTest, InvalidateDropsWithoutWriteback)
{
    hier.coreWrite(0, 0x1000); // dirty line in L1+MLC
    const auto dramBefore = hier.dram().writeCount();
    const auto inserts = hier.llc().victimInserts.get();

    EXPECT_TRUE(hier.coreInvalidate(0, 0x1000));

    EXPECT_FALSE(hier.l1(0).contains(0x1000));
    EXPECT_FALSE(hier.mlcOf(0).contains(0x1000));
    EXPECT_FALSE(hier.directory().isTracked(0x1000));
    EXPECT_EQ(hier.dram().writeCount(), dramBefore);
    EXPECT_EQ(hier.llc().victimInserts.get(), inserts)
        << "no LLC allocation may result from a self-invalidate";
    EXPECT_EQ(hier.mlcOf(0).selfInvals.get(), 1u);
}

TEST_F(HierarchyTest, InvalidateReachesLlcByDefault)
{
    hier.pcieWrite(0x2000); // dirty I/O line in the LLC
    EXPECT_TRUE(hier.coreInvalidate(0, 0x2000));
    EXPECT_FALSE(hier.llc().contains(0x2000));
    EXPECT_EQ(hier.llc().selfInvals.get(), 1u);
    EXPECT_EQ(hier.dram().writeCount(), 0u);
}

TEST_F(HierarchyTest, InvalidateLlcReachDisabled)
{
    auto cfg = testutil::tinyConfig();
    cfg.invalidateReachesLlc = false;
    sim::Simulation s2;
    cache::MemoryHierarchy h2(s2, "sys2", cfg);

    h2.pcieWrite(0x2000);
    EXPECT_TRUE(h2.coreInvalidate(0, 0x2000));
    EXPECT_TRUE(h2.llc().contains(0x2000)) << "LLC copy must survive";
}

TEST_F(HierarchyTest, InvalidateUncachedLineIsHarmless)
{
    EXPECT_TRUE(hier.coreInvalidate(0, 0xABCD00));
    EXPECT_EQ(hier.mlcOf(0).selfInvals.get(), 0u);
}

TEST_F(HierarchyTest, InvalidateRangeCoversAllLines)
{
    // A 1514-byte frame spans 24 lines.
    const sim::Addr buf = 0x10000;
    for (int i = 0; i < 24; ++i)
        hier.coreRead(0, buf + std::uint64_t(i) * 64);

    const auto dropped = hier.invalidateRange(0, buf, 1514);
    EXPECT_EQ(dropped, 24u);
    for (int i = 0; i < 24; ++i)
        EXPECT_FALSE(hier.mlcOf(0).contains(buf + std::uint64_t(i) * 64));
}

TEST_F(HierarchyTest, InvalidateRangeCountsOnlyPresentLines)
{
    const sim::Addr buf = 0x20000;
    hier.coreRead(0, buf); // only the first line is cached
    const auto dropped = hier.invalidateRange(0, buf, 2048);
    EXPECT_EQ(dropped, 1u);
}

TEST(HierarchyInvalidatable, NonInvalidatablePageFaults)
{
    mem::PhysAllocator alloc;
    const sim::Addr plain = alloc.allocate(mem::pageSize, mem::pageSize);
    const sim::Addr inv = alloc.allocateInvalidatable(mem::pageSize);

    auto cfg = testutil::tinyConfig();
    cfg.pageAttributes = &alloc;
    sim::Simulation s;
    cache::MemoryHierarchy h(s, "sys", cfg);

    h.coreWrite(0, plain);
    h.coreWrite(0, inv);

    // Plain page: the drop is refused and the line survives.
    EXPECT_FALSE(h.coreInvalidate(0, plain));
    EXPECT_TRUE(h.mlcOf(0).contains(plain));
    EXPECT_EQ(h.selfInvalFaults.get(), 1u);

    // Invalidatable page: the drop goes through.
    EXPECT_TRUE(h.coreInvalidate(0, inv));
    EXPECT_FALSE(h.mlcOf(0).contains(inv));
}

TEST_F(HierarchyTest, InvalidatedDirtyDataNeverReachesDram)
{
    // The headline property of M1: a consumed (dirty) DMA buffer that
    // is self-invalidated must never generate DRAM write bandwidth.
    const sim::Addr buf = 0x30000;
    for (int i = 0; i < 24; ++i) {
        hier.pcieWrite(buf + std::uint64_t(i) * 64);
        hier.coreRead(0, buf + std::uint64_t(i) * 64);
    }
    hier.invalidateRange(0, buf, 1514);
    churnMlc(0);

    // Churn lines are clean; any DRAM write would have to come from
    // the invalidated buffer — there must be none.
    EXPECT_EQ(hier.dram().writeCount(), 0u);
}

TEST_F(HierarchyTest, ReloadAfterInvalidateComesFromDram)
{
    hier.coreWrite(0, 0x1000);
    hier.coreInvalidate(0, 0x1000);
    const auto r = hier.coreRead(0, 0x1000);
    // The dropped data is gone; the reload is a DRAM fill (the model
    // does not check data values — the instruction is only legal on
    // dead buffers).
    EXPECT_EQ(r.level, mem::HitLevel::DRAM);
}

} // anonymous namespace
