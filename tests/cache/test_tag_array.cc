/**
 * @file
 * TagArray tests: lookups, fills, masked fill slots, capacity.
 */

#include <gtest/gtest.h>

#include "cache/tag_array.hh"

namespace
{

using cache::TagArray;

TagArray
makeArray(std::uint64_t size, std::uint32_t assoc)
{
    return TagArray(size, assoc, cache::makeReplacementPolicy("lru"));
}

TEST(TagArray, GeometryFromSize)
{
    TagArray a = makeArray(64 * 1024, 2);
    EXPECT_EQ(a.assoc(), 2u);
    EXPECT_EQ(a.numSets(), 512u);
    EXPECT_EQ(a.capacityBytes(), 64u * 1024);
}

TEST(TagArray, WithSetsFactory)
{
    TagArray a = TagArray::withSets(128, 4,
                                    cache::makeReplacementPolicy("lru"));
    EXPECT_EQ(a.numSets(), 128u);
    EXPECT_EQ(a.capacityBytes(), 128u * 4 * 64);
}

TEST(TagArray, MissOnEmpty)
{
    TagArray a = makeArray(4096, 4);
    EXPECT_FALSE(a.lookup(0x1000));
    EXPECT_EQ(a.peek(0x1000), nullptr);
}

TEST(TagArray, FillThenHit)
{
    TagArray a = makeArray(4096, 4);
    auto slot = a.findFillSlot(0x1000);
    EXPECT_FALSE(slot.line->valid);
    a.fill(slot, 0x1000, true, false);

    auto ref = a.lookup(0x1000);
    ASSERT_TRUE(ref);
    EXPECT_TRUE(ref.line->dirty);
    EXPECT_FALSE(ref.line->io);
    EXPECT_EQ(ref.line->addr, 0x1000u);
}

TEST(TagArray, LookupAlignsAddresses)
{
    TagArray a = makeArray(4096, 4);
    a.fill(a.findFillSlot(0x1000), 0x1000, false, false);
    EXPECT_TRUE(a.lookup(0x1003));
    EXPECT_TRUE(a.lookup(0x103F));
    EXPECT_FALSE(a.lookup(0x1040));
}

TEST(TagArray, FillPrefersInvalidWay)
{
    TagArray a = makeArray(4 * 64, 4); // one set, 4 ways
    a.fill(a.findFillSlot(0x0), 0x0, false, false);
    auto slot = a.findFillSlot(0x1000);
    EXPECT_FALSE(slot.line->valid);
}

TEST(TagArray, EvictionWhenSetFull)
{
    TagArray a = makeArray(4 * 64, 4); // one set
    for (int i = 0; i < 4; ++i) {
        auto s = a.findFillSlot(i * 64);
        a.fill(s, i * 64, false, false);
    }
    auto victim = a.findFillSlot(0x5000);
    EXPECT_TRUE(victim.line->valid); // caller must evict
    // LRU: line 0 was filled first and never touched again.
    EXPECT_EQ(victim.line->addr, 0u);
}

TEST(TagArray, MaskedFillSlotStaysInMask)
{
    TagArray a = makeArray(8 * 64, 8); // one set, 8 ways
    for (int i = 0; i < 8; ++i)
        a.fill(a.findFillSlot(i * 64), i * 64, false, false);
    // DDIO-style: only ways 0-1 are candidates.
    for (int i = 0; i < 32; ++i) {
        auto slot = a.findFillSlot(0x9000 + i * 64, 0b11);
        EXPECT_LT(slot.way, 2u);
        a.invalidate(slot);
        a.fill(slot, 0x9000 + i * 64, false, true);
    }
    // Ways 2..7 still hold the original lines.
    for (int i = 2; i < 8; ++i)
        EXPECT_TRUE(a.lookup(i * 64));
}

TEST(TagArray, InvalidateClearsLine)
{
    TagArray a = makeArray(4096, 4);
    a.fill(a.findFillSlot(0x40), 0x40, true, true);
    auto ref = a.lookup(0x40);
    ASSERT_TRUE(ref);
    a.invalidate(ref);
    EXPECT_FALSE(a.lookup(0x40));
}

TEST(TagArray, CountValidWithPredicate)
{
    TagArray a = makeArray(4096, 4);
    a.fill(a.findFillSlot(0x00), 0x00, false, true);
    a.fill(a.findFillSlot(0x40), 0x40, false, false);
    a.fill(a.findFillSlot(0x80), 0x80, true, true);

    EXPECT_EQ(a.countValid(), 3u);
    EXPECT_EQ(a.countValid([](const cache::CacheLine &l, std::uint32_t) {
                  return l.io;
              }),
              2u);
    EXPECT_EQ(a.countValid([](const cache::CacheLine &l, std::uint32_t) {
                  return l.dirty;
              }),
              1u);
}

TEST(TagArray, ClearEmptiesEverything)
{
    TagArray a = makeArray(4096, 4);
    for (int i = 0; i < 16; ++i)
        a.fill(a.findFillSlot(i * 64), i * 64, false, false);
    a.clear();
    EXPECT_EQ(a.countValid(), 0u);
}

TEST(TagArray, TouchAffectsLruOrder)
{
    TagArray a = makeArray(2 * 64, 2); // one set, 2 ways
    a.fill(a.findFillSlot(0x00), 0x00, false, false);
    a.fill(a.findFillSlot(0x40), 0x40, false, false);
    auto ref = a.lookup(0x00);
    a.touch(ref); // way holding 0x00 is now MRU
    auto victim = a.findFillSlot(0x9000);
    EXPECT_EQ(victim.line->addr, 0x40u);
}

TEST(TagArrayDeath, BadGeometryIsFatal)
{
    EXPECT_EXIT(makeArray(100, 4), ::testing::ExitedWithCode(1),
                "cache size");
    EXPECT_EXIT(makeArray(4096, 0), ::testing::ExitedWithCode(1),
                "associativity");
}

} // anonymous namespace
