/**
 * @file
 * NonInclusiveLlc structural tests (flow behaviour is exercised via
 * MemoryHierarchy in the other cache test files).
 */

#include <gtest/gtest.h>

#include "cache/llc.hh"
#include "sim/simulation.hh"

namespace
{

class LlcTest : public ::testing::Test
{
  protected:
    sim::Simulation s;
    // 3 MB, 12-way, 2 DDIO ways: the paper's 2-core Fig. 5 setup.
    cache::NonInclusiveLlc llc{s, "llc", 3 * 1024 * 1024, 12, 2, "lru"};
};

TEST_F(LlcTest, DdioMask)
{
    EXPECT_EQ(llc.ddioWays(), 2u);
    EXPECT_EQ(llc.ddioMask(), 0b11u);
    EXPECT_TRUE(llc.isDdioWay(0));
    EXPECT_TRUE(llc.isDdioWay(1));
    EXPECT_FALSE(llc.isDdioWay(2));
    EXPECT_FALSE(llc.isDdioWay(11));
}

TEST_F(LlcTest, Geometry)
{
    EXPECT_EQ(llc.tags().assoc(), 12u);
    EXPECT_EQ(llc.tags().numSets(), 4096u);
}

TEST_F(LlcTest, OccupancyCounters)
{
    EXPECT_EQ(llc.occupancy(), 0u);

    // One I/O line in a DDIO way.
    auto s1 = llc.tags().findFillSlot(0x0, llc.ddioMask());
    llc.tags().fill(s1, 0x0, true, true);
    // One I/O line outside the DDIO ways (bloated).
    auto s2 = llc.tags().findFillSlot(0x40, ~cache::WayMask(0) << 2);
    llc.tags().fill(s2, 0x40, true, true);
    // One CPU line outside the DDIO ways.
    auto s3 = llc.tags().findFillSlot(0x80, ~cache::WayMask(0) << 2);
    llc.tags().fill(s3, 0x80, false, false);

    EXPECT_EQ(llc.occupancy(), 3u);
    EXPECT_EQ(llc.ddioOccupancy(), 1u);
    EXPECT_EQ(llc.bloatedIoOccupancy(), 1u);
}

TEST_F(LlcTest, ProbeAndContains)
{
    EXPECT_FALSE(llc.contains(0x1000));
    auto slot = llc.tags().findFillSlot(0x1000);
    llc.tags().fill(slot, 0x1000, false, false);
    EXPECT_TRUE(llc.contains(0x1000));
    EXPECT_TRUE(llc.probe(0x1000));
}

TEST(LlcDeath, TooManyDdioWaysIsFatal)
{
    sim::Simulation s;
    EXPECT_EXIT(cache::NonInclusiveLlc(s, "llc", 1024 * 1024, 4, 5,
                                       "lru"),
                ::testing::ExitedWithCode(1), "ddioWays");
}

} // anonymous namespace
