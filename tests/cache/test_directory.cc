/**
 * @file
 * Excl-MLC directory tests.
 */

#include <gtest/gtest.h>

#include "cache/directory.hh"
#include "sim/simulation.hh"

namespace
{

class DirectoryTest : public ::testing::Test
{
  protected:
    sim::Simulation s;
    cache::MlcDirectory dir{s, "dir", 64, 4, "lru"};
};

TEST_F(DirectoryTest, UntrackedInitially)
{
    EXPECT_FALSE(dir.isTracked(0x1000));
    EXPECT_EQ(dir.sharersOf(0x1000), 0u);
    EXPECT_EQ(dir.trackedLines(), 0u);
}

TEST_F(DirectoryTest, AddAndRemoveSharer)
{
    auto v = dir.add(2, 0x1000);
    EXPECT_FALSE(v.valid);
    EXPECT_TRUE(dir.isTracked(0x1000));
    EXPECT_EQ(dir.sharersOf(0x1000), 1ull << 2);

    dir.remove(2, 0x1000);
    EXPECT_FALSE(dir.isTracked(0x1000));
}

TEST_F(DirectoryTest, MultipleSharers)
{
    dir.add(0, 0x40);
    dir.add(3, 0x40);
    EXPECT_EQ(dir.sharersOf(0x40), 0b1001u);
    dir.remove(0, 0x40);
    EXPECT_EQ(dir.sharersOf(0x40), 0b1000u);
    dir.remove(3, 0x40);
    EXPECT_FALSE(dir.isTracked(0x40));
}

TEST_F(DirectoryTest, RemoveAllDropsEntry)
{
    dir.add(0, 0x80);
    dir.add(1, 0x80);
    dir.removeAll(0x80);
    EXPECT_FALSE(dir.isTracked(0x80));
}

TEST_F(DirectoryTest, RemoveUnknownIsNoop)
{
    dir.remove(0, 0xdead00);
    dir.removeAll(0xbeef00);
    SUCCEED();
}

TEST_F(DirectoryTest, RepeatedAddIsIdempotent)
{
    dir.add(1, 0x100);
    dir.add(1, 0x100);
    EXPECT_EQ(dir.sharersOf(0x100), 0b10u);
    EXPECT_EQ(dir.trackedLines(), 1u);
}

TEST_F(DirectoryTest, CapacityEvictionReturnsVictim)
{
    // 64 entries, 4-way: 16 sets. Fill one set (stride = 16 lines).
    const sim::Addr stride = 16 * 64;
    for (int i = 0; i < 4; ++i) {
        auto v = dir.add(0, i * stride);
        EXPECT_FALSE(v.valid);
    }
    auto v = dir.add(1, 4 * stride);
    ASSERT_TRUE(v.valid);
    EXPECT_EQ(v.addr, 0u); // LRU victim
    EXPECT_EQ(v.sharers, 0b1u);
    EXPECT_EQ(dir.capacityEvictions.get(), 1u);
    // Victim is no longer tracked; new entry is.
    EXPECT_FALSE(dir.isTracked(0));
    EXPECT_TRUE(dir.isTracked(4 * stride));
}

TEST_F(DirectoryTest, StatsCount)
{
    dir.add(0, 0x40);
    dir.add(0, 0x80);
    EXPECT_EQ(dir.insertions.get(), 2u);
    EXPECT_GE(dir.lookups.get(), 2u);
}

} // anonymous namespace
