/**
 * @file
 * MLC prefetch-fill tests (the hierarchy half of IDIO M2).
 */

#include "hierarchy_fixture.hh"

namespace
{

using testutil::HierarchyTest;

TEST_F(HierarchyTest, PrefetchMovesLineFromLlcToMlc)
{
    hier.pcieWrite(0x1000);
    EXPECT_TRUE(hier.mlcPrefetch(0, 0x1000));

    EXPECT_FALSE(hier.llc().contains(0x1000)) << "exclusive move";
    EXPECT_TRUE(hier.mlcOf(0).contains(0x1000));
    EXPECT_EQ(hier.mlcOf(0).prefetchFills.get(), 1u);
    EXPECT_EQ(hier.mlcOf(0).fills.get(), 0u)
        << "prefetches are not demand fills";
    EXPECT_TRUE(hier.directory().isTracked(0x1000));
}

TEST_F(HierarchyTest, PrefetchPreservesDirtyAndIo)
{
    hier.pcieWrite(0x1000);
    hier.mlcPrefetch(0, 0x1000);
    auto ref = hier.mlcOf(0).probe(0x1000);
    ASSERT_TRUE(ref);
    EXPECT_TRUE(ref.line->dirty);
    EXPECT_TRUE(ref.line->io);
}

TEST_F(HierarchyTest, PrefetchOfMlcResidentLineIsNoop)
{
    hier.coreRead(0, 0x2000);
    EXPECT_FALSE(hier.mlcPrefetch(0, 0x2000));
    EXPECT_EQ(hier.mlcOf(0).prefetchFills.get(), 0u);
}

TEST_F(HierarchyTest, PrefetchFromDramWhenAllowed)
{
    EXPECT_TRUE(hier.mlcPrefetch(0, 0x3000));
    EXPECT_TRUE(hier.mlcOf(0).contains(0x3000));
    EXPECT_EQ(hier.dram().readCount(), 1u);
    auto ref = hier.mlcOf(0).probe(0x3000);
    ASSERT_TRUE(ref);
    EXPECT_FALSE(ref.line->dirty) << "DRAM-backed fill is clean";
}

TEST_F(HierarchyTest, PrefetchFromDramDisabled)
{
    auto cfg = testutil::tinyConfig();
    cfg.prefetchFromDram = false;
    sim::Simulation s2;
    cache::MemoryHierarchy h2(s2, "sys2", cfg);

    EXPECT_FALSE(h2.mlcPrefetch(0, 0x3000));
    EXPECT_FALSE(h2.mlcOf(0).contains(0x3000));
    EXPECT_EQ(h2.dram().readCount(), 0u);
}

TEST_F(HierarchyTest, PrefetchThenDemandReadHitsMlc)
{
    hier.pcieWrite(0x1000);
    hier.mlcPrefetch(0, 0x1000);
    const auto r = hier.coreRead(0, 0x1000);
    EXPECT_EQ(r.level, mem::HitLevel::MLC);
}

TEST_F(HierarchyTest, PrefetchIntoFullMlcEvicts)
{
    // Fill the MLC, then prefetch: the victim must take the normal
    // eviction path (this is exactly the overflow the IDIO FSM
    // regulates at high burst rates).
    const auto lines = hier.config().mlc.sizeBytes / mem::lineSize;
    for (std::uint64_t i = 0; i < lines; ++i)
        hier.coreWrite(0, 0x100000 + i * mem::lineSize);

    int observed = 0;
    auto countWb = [&](sim::CoreId) { ++observed; };
    hier.setMlcWbObserver(
        cache::MemoryHierarchy::MlcWbObserver::fromCallable(&countWb));

    hier.pcieWrite(0x1000);
    hier.mlcPrefetch(0, 0x1000);

    EXPECT_TRUE(hier.mlcOf(0).contains(0x1000));
    EXPECT_GE(hier.mlcOf(0).writebacks.get(), 1u);
    EXPECT_EQ(observed, 1) << "telemetry hook must see the writeback";
}

TEST_F(HierarchyTest, PrefetchToDifferentCoresIsIndependent)
{
    hier.pcieWrite(0x1000);
    hier.pcieWrite(0x2000);
    hier.mlcPrefetch(0, 0x1000);
    hier.mlcPrefetch(1, 0x2000);
    EXPECT_TRUE(hier.mlcOf(0).contains(0x1000));
    EXPECT_FALSE(hier.mlcOf(0).contains(0x2000));
    EXPECT_TRUE(hier.mlcOf(1).contains(0x2000));
}

} // anonymous namespace
