/**
 * @file
 * CPU-side hierarchy flow tests (paper Fig. 2).
 */

#include "hierarchy_fixture.hh"

namespace
{

using mem::HitLevel;
using testutil::HierarchyTest;

TEST_F(HierarchyTest, ColdReadMissesToDram)
{
    const auto r = hier.coreRead(0, 0x1000);
    EXPECT_EQ(r.level, HitLevel::DRAM);
    EXPECT_EQ(hier.dram().readCount(), 1u);

    // The fill lands in L1 + MLC and is tracked by the directory; the
    // LLC is NOT touched (non-inclusive: fills bypass it).
    EXPECT_TRUE(hier.l1(0).contains(0x1000));
    EXPECT_TRUE(hier.mlcOf(0).contains(0x1000));
    EXPECT_FALSE(hier.llc().contains(0x1000));
    EXPECT_TRUE(hier.directory().isTracked(0x1000));
}

TEST_F(HierarchyTest, SecondReadHitsL1)
{
    hier.coreRead(0, 0x1000);
    const auto r = hier.coreRead(0, 0x1000);
    EXPECT_EQ(r.level, HitLevel::L1);
    EXPECT_EQ(hier.l1(0).hits.get(), 1u);
}

TEST_F(HierarchyTest, L1HitIsFastest)
{
    hier.coreRead(0, 0x1000);
    const auto l1 = hier.coreRead(0, 0x1000);
    const auto dram = hier.coreRead(0, 0x2000);
    EXPECT_LT(l1.latency, dram.latency);
    EXPECT_EQ(l1.latency, hier.config().cyclesToTicks(
                              hier.config().l1.latencyCycles));
}

TEST_F(HierarchyTest, L1EvictionLeavesMlcCopy)
{
    // L1 is 512 B / 2-way = 4 sets; two same-set lines + a third
    // evict the first from L1 but not from the MLC.
    const sim::Addr strideL1 = 4 * 64;
    hier.coreRead(0, 0x0);
    hier.coreRead(0, strideL1);
    hier.coreRead(0, 2 * strideL1);
    EXPECT_FALSE(hier.l1(0).contains(0x0));
    EXPECT_TRUE(hier.mlcOf(0).contains(0x0));

    const auto r = hier.coreRead(0, 0x0);
    EXPECT_EQ(r.level, HitLevel::MLC);
}

TEST_F(HierarchyTest, LlcHitMovesDataToMlcExclusively)
{
    // Put a line into the LLC via DMA, then demand-read it.
    hier.pcieWrite(0x3000);
    ASSERT_TRUE(hier.llc().contains(0x3000));

    const auto r = hier.coreRead(0, 0x3000);
    EXPECT_EQ(r.level, HitLevel::LLC);
    EXPECT_FALSE(hier.llc().contains(0x3000)) << "data must move out";
    EXPECT_TRUE(hier.mlcOf(0).contains(0x3000));
    EXPECT_EQ(hier.llc().demandMoves.get(), 1u);

    // DMA data is not DRAM-backed: the MLC copy must be dirty and
    // carry I/O provenance.
    auto ref = hier.mlcOf(0).probe(0x3000);
    ASSERT_TRUE(ref);
    EXPECT_TRUE(ref.line->dirty);
    EXPECT_TRUE(ref.line->io);
}

TEST_F(HierarchyTest, MlcEvictionAllocatesInLlc)
{
    hier.coreWrite(0, 0x1000); // dirty line
    churnMlc(0);
    EXPECT_FALSE(hier.mlcOf(0).contains(0x1000));
    EXPECT_TRUE(hier.llc().contains(0x1000));
    EXPECT_GE(hier.mlcOf(0).writebacks.get(), 1u);
    EXPECT_GE(hier.llc().victimInserts.get(), 1u);
    EXPECT_FALSE(hier.directory().isTracked(0x1000));
}

TEST_F(HierarchyTest, CleanVictimsInsertedWhenConfigured)
{
    hier.coreRead(0, 0x1000); // clean line
    churnMlc(0);
    EXPECT_TRUE(hier.llc().contains(0x1000));
    EXPECT_GE(hier.mlcOf(0).cleanEvictions.get(), 1u);
}

TEST_F(HierarchyTest, CleanVictimsDroppedWhenDisabled)
{
    auto cfg = testutil::tinyConfig();
    cfg.insertCleanVictims = false;
    sim::Simulation s2;
    cache::MemoryHierarchy h2(s2, "sys2", cfg);

    h2.coreRead(0, 0x1000);
    const auto lines = cfg.mlc.sizeBytes / mem::lineSize;
    for (std::uint64_t i = 0; i < 2 * lines; ++i)
        h2.coreRead(0, 0x40000000 + i * mem::lineSize);
    EXPECT_FALSE(h2.mlcOf(0).contains(0x1000));
    EXPECT_FALSE(h2.llc().contains(0x1000));
}

TEST_F(HierarchyTest, DirtyChainReachesDram)
{
    hier.coreWrite(0, 0x1000);
    EXPECT_EQ(hier.dram().writeCount(), 0u);

    // Dirty and churn far more lines than the whole chip holds:
    // 0x1000 eventually leaves the LLC too, producing a DRAM write.
    for (int i = 0; i < 1024; ++i)
        hier.coreWrite(0, 0x40000000 + std::uint64_t(i) * 64);

    EXPECT_GT(hier.dram().writeCount(), 0u);
    EXPECT_GT(hier.llc().writebacks.get(), 0u);
}

TEST_F(HierarchyTest, WriteAllocatesAndMarksDirty)
{
    const auto r = hier.coreWrite(0, 0x5000);
    EXPECT_EQ(r.level, HitLevel::DRAM);
    auto ref = hier.l1(0).probe(0x5000);
    ASSERT_TRUE(ref);
    EXPECT_TRUE(ref.line->dirty);
}

TEST_F(HierarchyTest, L1DirtyVictimMergesIntoMlc)
{
    const sim::Addr strideL1 = 4 * 64;
    hier.coreWrite(0, 0x0); // dirty in L1
    hier.coreRead(0, strideL1);
    hier.coreRead(0, 2 * strideL1); // evicts 0x0 from L1

    auto ref = hier.mlcOf(0).probe(0x0);
    ASSERT_TRUE(ref);
    EXPECT_TRUE(ref.line->dirty) << "L1 dirtiness must merge into MLC";
}

TEST_F(HierarchyTest, DmaBloatingOccupiesNonDdioWays)
{
    // DMA a line in, consume it, then force it out of the MLC: the
    // writeback may allocate in ANY LLC way (paper Obs. 3).
    hier.pcieWrite(0x3000);
    hier.coreRead(0, 0x3000);
    churnMlc(0);

    // The line (or churn traffic) must not be limited to DDIO ways;
    // with LRU and a full churn the bloated-I/O counter sees 0x3000
    // outside ways 0-1 unless it was evicted to DRAM already.
    const auto ref = hier.llc().probe(0x3000);
    if (ref) {
        EXPECT_TRUE(ref.line->io);
    } else {
        // Evicted to DRAM: the dirty writeback happened.
        EXPECT_GT(hier.dram().writeCount(), 0u);
    }
}

TEST_F(HierarchyTest, WayPartitionRestrictsCpuAllocations)
{
    auto cfg = testutil::tinyConfig();
    cfg.llcAllocMask.assign(2, 0);
    cfg.llcAllocMask[0] = 0b0100; // core 0 may only allocate way 2
    sim::Simulation s2;
    cache::MemoryHierarchy h2(s2, "sys2", cfg);

    // Dirty a handful of same-set lines and churn them out of the MLC.
    h2.coreWrite(0, 0x1000);
    const auto lines = cfg.mlc.sizeBytes / mem::lineSize;
    for (std::uint64_t i = 0; i < 2 * lines; ++i)
        h2.coreRead(0, 0x40000000 + i * mem::lineSize);

    auto ref = h2.llc().probe(0x1000);
    if (ref) {
        EXPECT_EQ(ref.way, 2u);
    }
    // Every valid non-DDIO line inserted by core 0 sits in way 2;
    // count occupancy of other non-DDIO ways.
    const auto offMask = h2.llc().tags().countValid(
        [](const cache::CacheLine &, std::uint32_t way) {
            return way == 3;
        });
    EXPECT_EQ(offMask, 0u);
}

TEST_F(HierarchyTest, MigratoryCoherenceMovesDirtyLineBetweenCores)
{
    hier.coreWrite(0, 0x7000);
    const auto dramReadsAfterFill = hier.dram().readCount();
    const auto r = hier.coreRead(1, 0x7000);
    EXPECT_EQ(r.level, HitLevel::LLC); // served on-chip, not DRAM
    EXPECT_FALSE(hier.mlcOf(0).contains(0x7000));
    EXPECT_TRUE(hier.mlcOf(1).contains(0x7000));
    EXPECT_EQ(hier.coherenceMigrations.get(), 1u);

    auto ref = hier.mlcOf(1).probe(0x7000);
    ASSERT_TRUE(ref);
    EXPECT_TRUE(ref.line->dirty) << "dirtiness must migrate";
    EXPECT_EQ(hier.dram().readCount(), dramReadsAfterFill)
        << "the migration itself must not touch DRAM";
}

TEST_F(HierarchyTest, DirectoryCapacityBackInvalidatesMlc)
{
    auto cfg = testutil::tinyConfig();
    cfg.directoryCoverage = 0.25; // directory much smaller than MLCs
    sim::Simulation s2;
    cache::MemoryHierarchy h2(s2, "sys2", cfg);

    const auto lines = cfg.mlc.sizeBytes / mem::lineSize;
    for (std::uint64_t i = 0; i < lines; ++i)
        h2.coreRead(0, 0x1000000 + i * mem::lineSize);
    EXPECT_GT(h2.mlcOf(0).backInvals.get(), 0u);

    // Invariant: every MLC-resident line is still directory-tracked.
    const auto &tags = h2.mlcOf(0).tags();
    for (std::uint32_t s = 0; s < tags.numSets(); ++s) {
        for (std::uint32_t w = 0; w < tags.assoc(); ++w) {
            const auto &l = tags.lineAt(s, w);
            if (l.valid) {
                EXPECT_TRUE(h2.directory().isTracked(l.addr));
            }
        }
    }
}

} // anonymous namespace
