/**
 * @file
 * Shared fixture for MemoryHierarchy tests: a deliberately tiny
 * two-core hierarchy so capacity effects are easy to trigger, plus
 * helpers for constructing the paper's P1..P5 line placements.
 */

#ifndef IDIO_TESTS_CACHE_HIERARCHY_FIXTURE_HH
#define IDIO_TESTS_CACHE_HIERARCHY_FIXTURE_HH

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "sim/simulation.hh"

namespace testutil
{

/** Tiny geometry: L1 512 B/2w, MLC 2 KB/4w, LLC 8 KB/4w (2 DDIO). */
inline cache::HierarchyConfig
tinyConfig(std::uint32_t cores = 2)
{
    cache::HierarchyConfig cfg;
    cfg.numCores = cores;
    cfg.l1 = {512, 2, 2};
    cfg.mlc = {2048, 4, 12};
    cfg.llcPerCore = {8192 / cores, 4, 24};
    cfg.ddioWays = 2;
    cfg.directoryCoverage = 2.0;
    cfg.directoryAssoc = 4;
    return cfg;
}

class HierarchyTest : public ::testing::Test
{
  protected:
    HierarchyTest() : hier(sim_, "sys", testutil::tinyConfig()) {}

    explicit HierarchyTest(const cache::HierarchyConfig &cfg)
        : hier(sim_, "sys", cfg)
    {
    }

    /** Way index of @p addr in the LLC, or -1 when absent. */
    int
    llcWayOf(sim::Addr addr)
    {
        auto ref = hier.llc().probe(addr);
        return ref ? static_cast<int>(ref.way) : -1;
    }

    /** Fill core @p c 's MLC with fresh lines so @p addr is evicted. */
    void
    churnMlc(sim::CoreId c, sim::Addr base = 0x40000000)
    {
        const auto lines =
            hier.config().mlcSize(c) / mem::lineSize;
        for (std::uint64_t i = 0; i < 2 * lines; ++i)
            hier.coreRead(c, base + i * mem::lineSize);
    }

    sim::Simulation sim_;
    cache::MemoryHierarchy hier;
};

} // namespace testutil

#endif // IDIO_TESTS_CACHE_HIERARCHY_FIXTURE_HH
