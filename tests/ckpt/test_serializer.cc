/**
 * @file
 * Serializer/Deserializer format tests: typed-field round-trips,
 * header metadata, and the loud-failure paths (truncation, checksum
 * corruption, magic/version drift, missing sections, partial
 * consumption, trailing bytes).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "ckpt/serializer.hh"
#include "sim/event_queue.hh"

namespace
{

std::vector<std::uint8_t>
sampleBlob(std::uint64_t seed = 7, sim::Tick tick = 1234)
{
    ckpt::Serializer s;
    s.beginSection("alpha", 3);
    s.writeU8(0x12);
    s.writeU16(0x3456);
    s.writeU32(0x789abcde);
    s.writeU64(0x0123456789abcdefull);
    s.writeBool(true);
    s.writeTick(42);
    s.writeDouble(3.25);
    s.writeString("hello ckpt");
    s.endSection();

    s.beginSection("beta");
    s.writePodVec(std::vector<std::uint32_t>{1, 2, 3, 5, 8});
    s.writeBoolVec({true, false, true});
    s.endSection();

    return s.finish(seed, tick);
}

TEST(CkptSerializer, TypedFieldsRoundTrip)
{
    const auto blob = sampleBlob();
    ckpt::Deserializer d(blob);

    EXPECT_EQ(d.seed(), 7u);
    EXPECT_EQ(d.tick(), 1234u);
    EXPECT_TRUE(d.hasSection("alpha"));
    EXPECT_TRUE(d.hasSection("beta"));
    EXPECT_FALSE(d.hasSection("gamma"));

    EXPECT_EQ(d.beginSection("alpha"), 3u);
    EXPECT_EQ(d.readU8(), 0x12);
    EXPECT_EQ(d.readU16(), 0x3456);
    EXPECT_EQ(d.readU32(), 0x789abcdeu);
    EXPECT_EQ(d.readU64(), 0x0123456789abcdefull);
    EXPECT_TRUE(d.readBool());
    EXPECT_EQ(d.readTick(), 42u);
    EXPECT_DOUBLE_EQ(d.readDouble(), 3.25);
    EXPECT_EQ(d.readString(), "hello ckpt");
    d.endSection();

    EXPECT_EQ(d.beginSection("beta"), 1u);
    const auto vec = d.readPodVec<std::uint32_t>();
    EXPECT_EQ(vec, (std::vector<std::uint32_t>{1, 2, 3, 5, 8}));
    const auto bits = d.readBoolVec();
    EXPECT_EQ(bits, (std::vector<bool>{true, false, true}));
    d.endSection();
}

TEST(CkptSerializer, SectionsReadableInAnyOrder)
{
    const auto blob = sampleBlob();
    ckpt::Deserializer d(blob);
    EXPECT_EQ(d.beginSection("beta"), 1u);
    (void)d.readPodVec<std::uint32_t>();
    (void)d.readBoolVec();
    d.endSection();
    EXPECT_EQ(d.beginSection("alpha"), 3u);
}

TEST(CkptSerializer, TruncationIsFatal)
{
    auto blob = sampleBlob();
    blob.resize(blob.size() - 1);
    EXPECT_EXIT(ckpt::Deserializer d(blob),
                ::testing::ExitedWithCode(1), "");
}

TEST(CkptSerializer, ChecksumCorruptionIsFatal)
{
    auto blob = sampleBlob();
    blob.back() ^= 0xff; // last payload byte of the last section
    EXPECT_EXIT(ckpt::Deserializer d(blob),
                ::testing::ExitedWithCode(1), "checksum");
}

TEST(CkptSerializer, BadMagicIsFatal)
{
    auto blob = sampleBlob();
    blob[0] = 'X';
    EXPECT_EXIT(ckpt::Deserializer d(blob),
                ::testing::ExitedWithCode(1), "magic");
}

TEST(CkptSerializer, FormatVersionDriftIsFatal)
{
    auto blob = sampleBlob();
    const std::uint32_t bogus = ckpt::formatVersion + 1;
    std::memcpy(blob.data() + 8, &bogus, sizeof(bogus));
    EXPECT_EXIT(ckpt::Deserializer d(blob),
                ::testing::ExitedWithCode(1), "version");
}

TEST(CkptSerializer, TrailingBytesAreFatal)
{
    auto blob = sampleBlob();
    blob.push_back(0);
    EXPECT_EXIT(ckpt::Deserializer d(blob),
                ::testing::ExitedWithCode(1), "");
}

TEST(CkptSerializer, MissingSectionIsFatal)
{
    const auto blob = sampleBlob();
    ckpt::Deserializer d(blob);
    EXPECT_EXIT(d.beginSection("gamma"),
                ::testing::ExitedWithCode(1), "");
}

TEST(CkptSerializer, PartialConsumptionIsFatal)
{
    const auto blob = sampleBlob();
    ckpt::Deserializer d(blob);
    d.beginSection("alpha");
    (void)d.readU8(); // leave the rest unread
    EXPECT_EXIT(d.endSection(), ::testing::ExitedWithCode(1), "");
}

TEST(CkptSerializer, OverreadIsFatal)
{
    ckpt::Serializer s;
    s.beginSection("tiny");
    s.writeU8(1);
    s.endSection();
    const auto blob = s.finish(0, 0);

    ckpt::Deserializer d(blob);
    d.beginSection("tiny");
    (void)d.readU8();
    EXPECT_EXIT((void)d.readU32(), ::testing::ExitedWithCode(1), "");
}

TEST(CkptSerializer, FnvMatchesKnownVector)
{
    // FNV-1a 64 reference value for the empty string.
    EXPECT_EQ(ckpt::fnv1a("", 0), 0xcbf29ce484222325ull);
}

TEST(CkptSerializer, DeferredReplayFollowsOriginalSequence)
{
    // Two same-tick one-shots registered in reverse sequence order
    // must still fire in original-sequence order after replay.
    const auto blob = sampleBlob();
    ckpt::Deserializer d(blob);

    std::vector<int> fired;
    d.deferOneShot(9, 100, [&] { fired.push_back(9); });
    d.deferOneShot(2, 100, [&] { fired.push_back(2); });

    sim::EventQueue eq;
    d.applyDeferred(eq);
    eq.runUntil(200);

    ASSERT_EQ(fired.size(), 2u);
    EXPECT_EQ(fired[0], 2);
    EXPECT_EQ(fired[1], 9);
}

} // anonymous namespace
