/**
 * @file
 * Whole-system checkpoint round-trip gates.
 *
 * The contract under test: checkpoint a running system at tick T,
 * restore the blob into a freshly built system of the same config,
 * run both to T2 — and the Totals, the full stats-registry JSON and
 * the packet-lifecycle trace are bit-identical to the uninterrupted
 * run. Covered for the DDIO baseline, the full IDIO policy and the
 * L2Fwd (TX-completion) workload at a mid-burst T, plus the
 * warm-start fork mode the fig14 threshold sweep uses.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hh"
#include "harness/system.hh"
#include "harness/trace_artifacts.hh"
#include "stats/json.hh"
#include "trace/chrome_export.hh"

namespace
{

constexpr sim::Tick quantum = 10 * sim::oneUs;
constexpr sim::Tick ckptTick = 2 * quantum;  // mid-burst
constexpr sim::Tick endTick = 20 * quantum;

harness::ExperimentConfig
burstConfig(idio::Policy policy, harness::NfKind kind)
{
    harness::ExperimentConfig cfg;
    cfg.numNfs = 2;
    cfg.nfKind = kind;
    cfg.traffic = harness::TrafficKind::Bursty;
    cfg.rateGbps = 100.0;
    cfg.burstPeriod = 10 * sim::oneSec; // one burst
    cfg.nic.ringSize = 256;
    cfg.applyPolicy(policy);
    return cfg;
}

std::string
statsJson(harness::TestSystem &sys)
{
    std::ostringstream os;
    stats::writeJson(os, sys.simulation().statsRegistry());
    return os.str();
}

/** Run cold to T2, checkpointing at T on the way through. */
void
expectRoundTripIdentical(const harness::ExperimentConfig &cfg)
{
    harness::TestSystem cold(cfg);
    cold.start();
    cold.runFor(ckptTick);
    const auto blob = cold.checkpoint();
    ASSERT_FALSE(blob.empty());
    const harness::Totals atCkpt = cold.totals();
    cold.runFor(endTick - ckptTick);
    const harness::Totals want = cold.totals();
    const std::string wantJson = statsJson(cold);

    harness::TestSystem warm(cfg);
    warm.start();
    warm.restore(blob);
    EXPECT_EQ(warm.simulation().now(), ckptTick);
    EXPECT_EQ(warm.totals(), atCkpt);
    warm.runFor(endTick - ckptTick);

    EXPECT_EQ(warm.totals(), want);
    EXPECT_EQ(statsJson(warm), wantJson);
}

TEST(CkptRoundTrip, DdioTouchDropMidBurst)
{
    expectRoundTripIdentical(
        burstConfig(idio::Policy::Ddio, harness::NfKind::TouchDrop));
}

TEST(CkptRoundTrip, IdioTouchDropMidBurst)
{
    expectRoundTripIdentical(
        burstConfig(idio::Policy::Idio, harness::NfKind::TouchDrop));
}

TEST(CkptRoundTrip, IdioL2FwdMidBurst)
{
    expectRoundTripIdentical(
        burstConfig(idio::Policy::Idio, harness::NfKind::L2Fwd));
}

TEST(CkptRoundTrip, IdioCopyTouchDropMidBurst)
{
    expectRoundTripIdentical(burstConfig(
        idio::Policy::Idio, harness::NfKind::CopyTouchDrop));
}

TEST(CkptRoundTrip, SaveIsObservationallyPure)
{
    // Saving must only read state: a run that checkpoints mid-burst
    // matches one that never does.
    const auto cfg =
        burstConfig(idio::Policy::Idio, harness::NfKind::TouchDrop);

    harness::TestSystem plain(cfg);
    plain.start();
    plain.runFor(endTick);

    harness::TestSystem saver(cfg);
    saver.start();
    saver.runFor(ckptTick);
    (void)saver.checkpoint();
    saver.runFor(endTick - ckptTick);

    EXPECT_EQ(saver.totals(), plain.totals());
    EXPECT_EQ(statsJson(saver), statsJson(plain));
}

TEST(CkptRoundTrip, TraceIsIdenticalAfterRestore)
{
    const auto cfg =
        burstConfig(idio::Policy::Idio, harness::NfKind::TouchDrop);

    const std::string coldPath =
        ::testing::TempDir() + "/ckpt_cold_trace.json";
    const std::string warmPath =
        ::testing::TempDir() + "/ckpt_warm_trace.json";

    harness::TestSystem cold(cfg);
    harness::enableTracing(cold);
    cold.start();
    cold.runFor(ckptTick);
    const auto blob = cold.checkpoint();
    cold.runFor(endTick - ckptTick);
    ASSERT_TRUE(trace::writeChromeTrace(coldPath,
                                        cold.simulation().tracer()));

    harness::TestSystem warm(cfg);
    harness::enableTracing(warm);
    warm.start();
    warm.restore(blob);
    warm.runFor(endTick - ckptTick);
    ASSERT_TRUE(trace::writeChromeTrace(warmPath,
                                        warm.simulation().tracer()));

    // The tracer section replays the pre-T retained events and the
    // post-T suffix is re-generated live, so the whole file matches.
    std::ifstream a(coldPath), b(warmPath);
    const std::string coldTrace(
        (std::istreambuf_iterator<char>(a)),
        std::istreambuf_iterator<char>());
    const std::string warmTrace(
        (std::istreambuf_iterator<char>(b)),
        std::istreambuf_iterator<char>());
    ASSERT_FALSE(coldTrace.empty());
    EXPECT_EQ(coldTrace, warmTrace);
}

TEST(CkptRoundTrip, FileRoundTripMatchesInMemory)
{
    const auto cfg =
        burstConfig(idio::Policy::Idio, harness::NfKind::TouchDrop);
    const std::string path = ::testing::TempDir() + "/roundtrip.ckpt";

    harness::TestSystem cold(cfg);
    cold.start();
    cold.runFor(ckptTick);
    ckpt::saveToFile(path, cold.simulation());
    cold.runFor(endTick - ckptTick);

    harness::TestSystem warm(cfg);
    warm.start();
    ckpt::restoreFromFile(path, warm.simulation());
    warm.runFor(endTick - ckptTick);

    EXPECT_EQ(warm.totals(), cold.totals());
    EXPECT_EQ(statsJson(warm), statsJson(cold));
}

TEST(CkptRoundTrip, SeedMismatchIsFatal)
{
    auto cfg =
        burstConfig(idio::Policy::Ddio, harness::NfKind::TouchDrop);
    harness::TestSystem sys(cfg);
    sys.start();
    sys.runFor(ckptTick);
    const auto blob = sys.checkpoint();

    cfg.seed = 99;
    harness::TestSystem other(cfg);
    other.start();
    EXPECT_EXIT(other.restore(blob), ::testing::ExitedWithCode(1),
                "seed");
}

/**
 * Warm-start fork gate (the fig14 --warm-start mode): one warm-up
 * under the first threshold's config, then each threshold forks from
 * the restored state — and matches its own cold run bit for bit,
 * because during the warm window the measured writeback rate is
 * either zero or far above every swept threshold, so the controller
 * makes identical decisions whatever the threshold.
 */
TEST(CkptWarmFork, ThresholdFamilyMatchesColdRuns)
{
    auto thrConfig = [](double thr) {
        auto cfg = burstConfig(idio::Policy::Idio,
                               harness::NfKind::TouchDrop);
        cfg.idio.mlcThrMtps = thr;
        return cfg;
    };

    // Shared warm-up under the first threshold.
    harness::TestSystem warmup(thrConfig(10.0));
    warmup.start();
    warmup.runFor(ckptTick);
    const auto blob = warmup.checkpoint();

    for (double thr : {10.0, 50.0, 100.0}) {
        const auto cfg = thrConfig(thr);

        harness::TestSystem cold(cfg);
        cold.start();
        cold.runFor(endTick);

        harness::TestSystem fork(cfg);
        fork.start();
        fork.restore(blob);
        fork.runFor(endTick - ckptTick);

        EXPECT_EQ(fork.totals(), cold.totals())
            << "thr=" << thr << " diverged from its cold run";
        EXPECT_EQ(statsJson(fork), statsJson(cold)) << "thr=" << thr;
    }
}

} // anonymous namespace
