/**
 * @file
 * Histogram tests.
 */

#include <gtest/gtest.h>

#include "stats/histogram.hh"
#include "stats/registry.hh"

namespace
{

class HistogramTest : public ::testing::Test
{
  protected:
    stats::Registry reg;
    stats::StatGroup group{reg, "g"};
};

TEST_F(HistogramTest, EmptyHistogram)
{
    stats::Histogram h(group, "h", "", 0.0, 100.0, 10);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST_F(HistogramTest, MeanMinMax)
{
    stats::Histogram h(group, "h", "", 0.0, 100.0, 10);
    h.sample(10.0);
    h.sample(20.0);
    h.sample(60.0);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.mean(), 30.0);
    EXPECT_DOUBLE_EQ(h.minSample(), 10.0);
    EXPECT_DOUBLE_EQ(h.maxSample(), 60.0);
}

TEST_F(HistogramTest, UnderflowAndOverflowBuckets)
{
    stats::Histogram h(group, "h", "", 10.0, 20.0, 5);
    h.sample(5.0);   // underflow
    h.sample(25.0);  // overflow
    h.sample(15.0);  // middle
    const auto &b = h.buckets();
    EXPECT_EQ(b.front(), 1u);
    EXPECT_EQ(b.back(), 1u);
    std::uint64_t middle = 0;
    for (std::size_t i = 1; i + 1 < b.size(); ++i)
        middle += b[i];
    EXPECT_EQ(middle, 1u);
}

TEST_F(HistogramTest, QuantileOfUniformSamples)
{
    stats::Histogram h(group, "h", "", 0.0, 1000.0, 100);
    for (int i = 0; i < 1000; ++i)
        h.sample(static_cast<double>(i));
    EXPECT_NEAR(h.quantile(0.5), 500.0, 15.0);
    EXPECT_NEAR(h.quantile(0.99), 990.0, 15.0);
    EXPECT_NEAR(h.quantile(0.01), 10.0, 15.0);
}

TEST_F(HistogramTest, ResetClears)
{
    stats::Histogram h(group, "h", "", 0.0, 10.0, 5);
    h.sample(4.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST_F(HistogramTest, ValueReportsMean)
{
    stats::Histogram h(group, "h", "", 0.0, 10.0, 5);
    h.sample(2.0);
    h.sample(4.0);
    EXPECT_DOUBLE_EQ(h.value(), 3.0);
}

TEST_F(HistogramTest, BoundaryValuesLandInside)
{
    stats::Histogram h(group, "h", "", 0.0, 10.0, 10);
    h.sample(0.0); // inclusive lower bound
    h.sample(9.999999);
    const auto &b = h.buckets();
    EXPECT_EQ(b.front(), 0u); // no underflow
    EXPECT_EQ(b.back(), 0u);  // no overflow
}

} // anonymous namespace
