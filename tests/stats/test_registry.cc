/**
 * @file
 * Stats registry / group / counter tests.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/registry.hh"

namespace
{

TEST(Registry, GroupRegistersAndUnregisters)
{
    stats::Registry reg;
    {
        stats::StatGroup g(reg, "system.foo");
        EXPECT_EQ(reg.groups().size(), 1u);
        EXPECT_EQ(reg.findGroup("system.foo"), &g);
    }
    EXPECT_TRUE(reg.groups().empty());
    EXPECT_EQ(reg.findGroup("system.foo"), nullptr);
}

TEST(Registry, CounterBasics)
{
    stats::Registry reg;
    stats::StatGroup g(reg, "g");
    stats::Counter c(g, "events", "test counter");

    EXPECT_EQ(c.get(), 0u);
    ++c;
    c += 41;
    EXPECT_EQ(c.get(), 42u);
    EXPECT_DOUBLE_EQ(c.value(), 42.0);
    c.reset();
    EXPECT_EQ(c.get(), 0u);
}

TEST(Registry, GaugeBasics)
{
    stats::Registry reg;
    stats::StatGroup g(reg, "g");
    stats::Gauge gv(g, "value", "test gauge");
    gv.set(3.25);
    EXPECT_DOUBLE_EQ(gv.value(), 3.25);
    gv.reset();
    EXPECT_DOUBLE_EQ(gv.value(), 0.0);
}

TEST(Registry, FindStatByDottedPath)
{
    stats::Registry reg;
    stats::StatGroup g(reg, "system.core0.mlc");
    stats::Counter c(g, "hits", "hits");
    ++c;

    stats::Stat *found = reg.findStat("system.core0.mlc.hits");
    ASSERT_NE(found, nullptr);
    EXPECT_DOUBLE_EQ(found->value(), 1.0);

    EXPECT_EQ(reg.findStat("system.core0.mlc.nope"), nullptr);
    EXPECT_EQ(reg.findStat("missing.hits"), nullptr);
    EXPECT_EQ(reg.findStat("nodots"), nullptr);
}

TEST(Registry, ResetAllClearsEverything)
{
    stats::Registry reg;
    stats::StatGroup a(reg, "a"), b(reg, "b");
    stats::Counter ca(a, "x", ""), cb(b, "y", "");
    ca += 5;
    cb += 7;
    reg.resetAll();
    EXPECT_EQ(ca.get(), 0u);
    EXPECT_EQ(cb.get(), 0u);
}

TEST(Registry, StatsListedInDeclarationOrder)
{
    stats::Registry reg;
    stats::StatGroup g(reg, "g");
    stats::Counter c1(g, "first", ""), c2(g, "second", "");
    ASSERT_EQ(g.statList().size(), 2u);
    EXPECT_EQ(g.statList()[0]->name(), "first");
    EXPECT_EQ(g.statList()[1]->name(), "second");
}

TEST(Registry, DumpContainsAllStats)
{
    stats::Registry reg;
    stats::StatGroup g(reg, "sys.llc");
    stats::Counter c(g, "writebacks", "LLC writebacks");
    c += 9;

    std::ostringstream os;
    reg.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("sys.llc.writebacks"), std::string::npos);
    EXPECT_NE(out.find("LLC writebacks"), std::string::npos);
    EXPECT_NE(out.find("9"), std::string::npos);
}

TEST(Registry, ForEachVisitsAllPairs)
{
    stats::Registry reg;
    stats::StatGroup a(reg, "a"), b(reg, "b");
    stats::Counter c1(a, "x", ""), c2(a, "y", ""), c3(b, "z", "");
    int visited = 0;
    reg.forEach([&](const stats::StatGroup &, const stats::Stat &) {
        ++visited;
    });
    EXPECT_EQ(visited, 3);
}

} // anonymous namespace
