/**
 * @file
 * JSON export tests.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/json.hh"

namespace
{

TEST(JsonEscape, PassthroughAndSpecials)
{
    EXPECT_EQ(stats::jsonEscape("plain"), "plain");
    EXPECT_EQ(stats::jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(stats::jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(stats::jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(stats::jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonRegistry, EmitsAllGroupsAndStats)
{
    stats::Registry reg;
    stats::StatGroup g1(reg, "sys.llc"), g2(reg, "sys.dram");
    stats::Counter c1(g1, "writebacks", "");
    stats::Counter c2(g2, "reads", "");
    c1 += 42;
    c2 += 7;

    std::ostringstream os;
    stats::writeJson(os, reg);
    const std::string out = os.str();

    EXPECT_NE(out.find("\"sys.llc\":{\"writebacks\":42}"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("\"sys.dram\":{\"reads\":7}"),
              std::string::npos);
    EXPECT_EQ(out.front(), '{');
    EXPECT_EQ(out.back(), '}');
}

TEST(JsonRegistry, EmptyRegistry)
{
    stats::Registry reg;
    std::ostringstream os;
    stats::writeJson(os, reg);
    EXPECT_EQ(os.str(), "{\"groups\":{}}");
}

TEST(JsonRegistry, NonIntegerValues)
{
    stats::Registry reg;
    stats::StatGroup g(reg, "g");
    stats::Gauge gv(g, "ratio", "");
    gv.set(0.125);

    std::ostringstream os;
    stats::writeJson(os, reg);
    EXPECT_NE(os.str().find("\"ratio\":0.125"), std::string::npos);
}

TEST(JsonSeries, PointsAsPairs)
{
    stats::Series a("mlcWB");
    a.append(10 * sim::oneUs, 1.5);
    a.append(20 * sim::oneUs, 3.0);

    std::ostringstream os;
    stats::writeJson(os, {&a});
    const std::string out = os.str();
    EXPECT_NE(out.find("\"mlcWB\":[[10,1.5],[20,3]]"),
              std::string::npos)
        << out;
}

TEST(JsonSeries, EmptySeriesList)
{
    std::ostringstream os;
    stats::writeJson(os, std::vector<const stats::Series *>{});
    EXPECT_EQ(os.str(), "{\"series\":{}}");
}

TEST(JsonRegistry, BalancedBracesWholeSystem)
{
    // A crude structural check over a big registry: every brace and
    // bracket closes.
    stats::Registry reg;
    std::vector<std::unique_ptr<stats::StatGroup>> groups;
    std::vector<std::unique_ptr<stats::Counter>> counters;
    for (int i = 0; i < 20; ++i) {
        groups.push_back(std::make_unique<stats::StatGroup>(
            reg, "group" + std::to_string(i)));
        for (int j = 0; j < 5; ++j) {
            counters.push_back(std::make_unique<stats::Counter>(
                *groups.back(), "stat" + std::to_string(j), ""));
        }
    }

    std::ostringstream os;
    stats::writeJson(os, reg);
    const std::string out = os.str();
    int depth = 0;
    for (char c : out) {
        if (c == '{' || c == '[')
            ++depth;
        if (c == '}' || c == ']')
            --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

} // anonymous namespace
