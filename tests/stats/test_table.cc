/**
 * @file
 * TablePrinter tests.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/table.hh"

namespace
{

TEST(Table, AlignedOutput)
{
    stats::TablePrinter t({"name", "value"});
    t.addRow({"short", "1"});
    t.addRow({"a-much-longer-name", "2"});

    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();

    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("a-much-longer-name"), std::string::npos);
    // Separator line present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, ShortRowsPadded)
{
    stats::TablePrinter t({"a", "b", "c"});
    t.addRow({"only-one"});
    std::ostringstream os;
    t.print(os);
    SUCCEED(); // must not crash on missing cells
}

TEST(Table, NumFormatting)
{
    EXPECT_EQ(stats::TablePrinter::num(3.14159, 2), "3.14");
    EXPECT_EQ(stats::TablePrinter::num(10.0, 0), "10");
    EXPECT_EQ(stats::TablePrinter::num(-1.5, 1), "-1.5");
}

TEST(Table, PctFormatting)
{
    EXPECT_EQ(stats::TablePrinter::pct(0.123, 1), "12.3%");
    EXPECT_EQ(stats::TablePrinter::pct(1.0, 0), "100%");
}

} // anonymous namespace
