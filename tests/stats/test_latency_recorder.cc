/**
 * @file
 * LatencyRecorder exact-percentile tests.
 */

#include <gtest/gtest.h>

#include "stats/latency_recorder.hh"
#include "stats/registry.hh"

namespace
{

class LatencyTest : public ::testing::Test
{
  protected:
    stats::Registry reg;
    stats::StatGroup group{reg, "g"};
    stats::LatencyRecorder rec{group, "lat", ""};
};

TEST_F(LatencyTest, EmptyReturnsZero)
{
    EXPECT_EQ(rec.percentile(50), 0u);
    EXPECT_EQ(rec.p99(), 0u);
    EXPECT_DOUBLE_EQ(rec.mean(), 0.0);
    EXPECT_EQ(rec.maxSample(), 0u);
}

TEST_F(LatencyTest, SingleSample)
{
    rec.sample(123);
    EXPECT_EQ(rec.p50(), 123u);
    EXPECT_EQ(rec.p99(), 123u);
    EXPECT_EQ(rec.maxSample(), 123u);
    EXPECT_DOUBLE_EQ(rec.mean(), 123.0);
}

TEST_F(LatencyTest, ExactPercentilesOf100Values)
{
    // Values 1..100: nearest-rank p50 = 50, p99 = 99, p100 = 100.
    for (std::uint64_t v = 1; v <= 100; ++v)
        rec.sample(v);
    EXPECT_EQ(rec.percentile(50), 50u);
    EXPECT_EQ(rec.percentile(99), 99u);
    EXPECT_EQ(rec.percentile(100), 100u);
    EXPECT_EQ(rec.percentile(1), 1u);
}

TEST_F(LatencyTest, OrderIndependent)
{
    rec.sample(30);
    rec.sample(10);
    rec.sample(20);
    EXPECT_EQ(rec.p50(), 20u);
}

TEST_F(LatencyTest, SamplingAfterQueryStillWorks)
{
    rec.sample(10);
    EXPECT_EQ(rec.p50(), 10u);
    rec.sample(5);
    rec.sample(1);
    EXPECT_EQ(rec.p50(), 5u);
}

TEST_F(LatencyTest, TailDominatedDistribution)
{
    // 99 fast samples and one slow one: p99 must not be the outlier,
    // p99.9 must be.
    for (int i = 0; i < 999; ++i)
        rec.sample(100);
    rec.sample(100000);
    EXPECT_EQ(rec.p99(), 100u);
    EXPECT_EQ(rec.p999(), 100000u);
}

TEST_F(LatencyTest, CountAndReset)
{
    rec.sample(1);
    rec.sample(2);
    EXPECT_EQ(rec.count(), 2u);
    rec.reset();
    EXPECT_EQ(rec.count(), 0u);
    EXPECT_EQ(rec.p50(), 0u);
}

TEST_F(LatencyTest, PercentileClamped)
{
    rec.sample(7);
    EXPECT_EQ(rec.percentile(-5.0), 7u);
    EXPECT_EQ(rec.percentile(250.0), 7u);
}

} // anonymous namespace
