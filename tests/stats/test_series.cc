/**
 * @file
 * Series / CSV tests.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/series.hh"

namespace
{

TEST(Series, AppendAndAccess)
{
    stats::Series s("mlcWB");
    EXPECT_TRUE(s.empty());
    s.append(10 * sim::oneUs, 1.5);
    s.append(20 * sim::oneUs, 2.5);
    ASSERT_EQ(s.size(), 2u);
    EXPECT_EQ(s.points()[0].when, 10 * sim::oneUs);
    EXPECT_DOUBLE_EQ(s.points()[1].value, 2.5);
}

TEST(Series, PeakMeanSum)
{
    stats::Series s("x");
    s.append(1, 1.0);
    s.append(2, 5.0);
    s.append(3, 3.0);
    EXPECT_DOUBLE_EQ(s.peak(), 5.0);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
    EXPECT_DOUBLE_EQ(s.sum(), 9.0);
}

TEST(Series, EmptyAggregates)
{
    stats::Series s("x");
    EXPECT_DOUBLE_EQ(s.peak(), 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(Series, ClearEmpties)
{
    stats::Series s("x");
    s.append(1, 1.0);
    s.clear();
    EXPECT_TRUE(s.empty());
}

TEST(SeriesCsv, HeaderAndRows)
{
    stats::Series a("alpha"), b("beta");
    a.append(10 * sim::oneUs, 1.0);
    a.append(20 * sim::oneUs, 2.0);
    b.append(10 * sim::oneUs, 3.0);

    std::ostringstream os;
    stats::writeCsv(os, {&a, &b});
    const std::string out = os.str();

    EXPECT_NE(out.find("time_us,alpha,beta"), std::string::npos);
    EXPECT_NE(out.find("10,1,3"), std::string::npos);
    // beta has no point at t=20; cell is blank.
    EXPECT_NE(out.find("20,2,"), std::string::npos);
}

TEST(SeriesCsv, MergesUnalignedTimeAxes)
{
    stats::Series a("a"), b("b");
    a.append(1 * sim::oneUs, 1.0);
    b.append(2 * sim::oneUs, 2.0);

    std::ostringstream os;
    stats::writeCsv(os, {&a, &b});
    const std::string out = os.str();

    // Two data rows plus the header.
    int lines = 0;
    for (char c : out)
        lines += (c == '\n');
    EXPECT_EQ(lines, 3);
}

} // anonymous namespace
