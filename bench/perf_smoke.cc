/**
 * @file
 * Simulator-performance smoke benchmark.
 *
 * Measures host-side performance of the simulation substrate (not any
 * simulated metric) and writes a machine-readable trajectory point:
 *
 *  - event-queue one-shot schedule/fire throughput,
 *  - deschedule/compaction churn throughput,
 *  - cache-hierarchy streaming-miss and PCIe-write throughput,
 *  - the headline simulated-packets-per-wall-second rate of a default
 *    single-burst run,
 *  - a 32-core / 32-RX-queue scaled run, unsharded vs sharded, with a
 *    byte-identical determinism check (stats JSON + event trace) of
 *    the sharded executor across worker counts,
 *  - the same scaled machine on the SPLIT shard plan (modelled PCIe
 *    and mesh link latencies, so per-core + NIC + uncore run in
 *    separate conflict groups), timed with --sharded-jobs workers and
 *    byte-checked across worker counts,
 *  - a fig10-style config sweep run serially and on a thread pool,
 *    with a bit-identical-results determinism check.
 *
 * --scaled-only restricts the run to the split-plan scaled
 * measurement (the CI scaling job invokes it three times with
 * --sharded-jobs=1/2/4 and byte-compares the --artifacts dumps).
 *
 * The JSON output (default BENCH_perf.json) is committed periodically
 * as the repo's performance trajectory and is compared by
 * tools/bench_compare.py in CI. Wall-clock numbers are only comparable
 * across runs on similar hosts; `hw_threads` records how parallel the
 * sweep could actually go (the speedup criterion needs a multi-core
 * host — on a single-thread host the speedup fields are omitted from
 * the JSON and a notice is printed instead).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>

#include "common.hh"
#include "sim/event_queue.hh"
#include "tenant_scenario.hh"
#include "trace/chrome_export.hh"

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** One micro measurement: fixed op count, wall-clocked. */
struct MicroResult
{
    const char *name;
    std::uint64_t ops;
    double wallSec;

    double nsPerOp() const { return wallSec / double(ops) * 1e9; }
    double opsPerSec() const { return double(ops) / wallSec; }
};

/**
 * Min-of-N micro timing: one discarded warm-up pass (page faults,
 * branch predictors, allocator pools), then @p reps measured passes,
 * keeping the fastest. The minimum is the right statistic for a
 * fixed-work micro — every slower pass is the same work plus host
 * interference.
 */
template <typename Fn>
MicroResult
minOfN(Fn fn, unsigned reps)
{
    fn(); // warm-up, discarded
    MicroResult best = fn();
    for (unsigned r = 1; r < reps; ++r) {
        const MicroResult m = fn();
        if (m.wallSec < best.wallSec)
            best = m;
    }
    return best;
}

MicroResult
microEventQueueOneShot(std::uint64_t ops)
{
    sim::EventQueue q;
    std::uint64_t sink = 0;
    const auto start = Clock::now();
    for (std::uint64_t i = 0; i < ops; ++i) {
        q.schedule(q.now() + 10, [&sink] { ++sink; });
        q.runUntil(q.now() + 10);
    }
    MicroResult r{"eventQueueOneShot", ops, secondsSince(start)};
    if (sink != ops)
        sim::fatal("one-shot micro fired %llu of %llu events",
                   (unsigned long long)sink, (unsigned long long)ops);
    return r;
}

MicroResult
microEventQueueSquashCompact(std::uint64_t ops)
{
    class NopEvent : public sim::Event
    {
      public:
        void process() override {}
    };

    constexpr std::uint64_t batch = 64;
    std::vector<NopEvent> evs(batch);
    sim::EventQueue q;
    const std::uint64_t rounds = ops / batch;
    const auto start = Clock::now();
    for (std::uint64_t n = 0; n < rounds; ++n) {
        for (std::uint64_t i = 0; i < batch; ++i)
            q.schedule(&evs[i], q.now() + 10 + sim::Tick(i));
        for (std::uint64_t i = 0; i < batch; ++i)
            q.deschedule(&evs[i]);
    }
    MicroResult r{"eventQueueSquashCompact", rounds * batch,
                  secondsSince(start)};
    if (q.pending() != 0)
        sim::fatal("squash micro left %zu events pending", q.pending());
    return r;
}

MicroResult
microCacheStreamingMiss(std::uint64_t ops)
{
    sim::Simulation s;
    cache::HierarchyConfig cfg;
    cfg.numCores = 2;
    cache::MemoryHierarchy hier(s, "sys", cfg);
    sim::Addr a = 0;
    std::uint64_t sink = 0;
    const auto start = Clock::now();
    for (std::uint64_t i = 0; i < ops; ++i) {
        sink += hier.coreRead(0, a).latency;
        a += 64;
    }
    MicroResult r{"cacheStreamingMiss", ops, secondsSince(start)};
    if (sink == 0)
        sim::fatal("streaming micro accumulated zero latency");
    return r;
}

MicroResult
microCachePcieWrite(std::uint64_t ops)
{
    sim::Simulation s;
    cache::HierarchyConfig cfg;
    cfg.numCores = 2;
    cache::MemoryHierarchy hier(s, "sys", cfg);
    sim::Addr a = 0;
    const auto start = Clock::now();
    for (std::uint64_t i = 0; i < ops; ++i) {
        hier.pcieWrite(a);
        a = (a + 64) & 0xFFFFF;
    }
    return MicroResult{"cachePcieWrite", ops, secondsSince(start)};
}

/** One timed full-system burst: packets drained per wall second. */
struct PacketRate
{
    std::uint64_t packets = 0;
    double wallSec = 0;

    /**
     * Total events processed across every queue of the run — a
     * host-independent work counter (identical no matter the
     * scheduler backend, worker count or host), unlike the wall-clock
     * rate. CI gates on events_per_packet where wall time is noise.
     */
    std::uint64_t events = 0;

    double
    perSec() const
    {
        return wallSec > 0 ? double(packets) / wallSec : 0;
    }

    double
    eventsPerPacket() const
    {
        return packets > 0 ? double(events) / double(packets) : 0;
    }
};

/**
 * Run one single-burst experiment wall-clocked; optionally capture
 * the run's stats JSON and event trace for byte-compare (capture
 * uses small per-source trace rings so a 32-core system stays cheap,
 * and is kept out of the timed runs).
 */
PacketRate
timedBurst(const harness::ExperimentConfig &config,
           std::string *statsOut = nullptr,
           std::string *traceOut = nullptr)
{
    harness::ExperimentConfig cfg = config;
    cfg.traffic = harness::TrafficKind::Bursty;
    cfg.burstPeriod = 10 * sim::oneSec; // one burst

    harness::TestSystem sys(cfg);
    if (traceOut != nullptr)
        harness::enableTracing(sys, 1u << 14);
    sys.start();

    const std::uint64_t expected = cfg.expectedBurstTotal();
    const auto start = Clock::now();
    while (sys.simulation().now() < 50 * sim::oneMs) {
        sys.runFor(bench::burstQuantum);
        const auto t = sys.totals();
        if (t.processedPackets + t.rxDrops >= expected &&
            t.rxPackets >= expected) {
            break;
        }
    }
    PacketRate r{sys.totals().processedPackets, secondsSince(start),
                 sys.simulation().totalProcessedEvents()};

    if (statsOut != nullptr) {
        std::ostringstream os;
        stats::writeJson(os, sys.simulation().statsRegistry());
        *statsOut = os.str();
    }
    if (traceOut != nullptr) {
        std::ostringstream os;
        trace::writeChromeTrace(os, sys.simulation().tracer());
        *traceOut = os.str();
    }
    return r;
}

/** The paper-shape scaled machine: 32 cores, 32 RX queues, 1M flows. */
harness::ExperimentConfig
scaledConfig()
{
    harness::ExperimentConfig cfg;
    cfg.numNfs = 32;
    cfg.rxQueues = 32;
    cfg.totalFlows = 1u << 20;
    cfg.burstPackets = 8192; // cap the burst so the smoke stays fast
    cfg.nfKind = harness::NfKind::TouchDrop;
    cfg.rateGbps = 100.0;
    cfg.nic.ringSize = 256;
    cfg.applyPolicy(idio::Policy::Idio);
    return cfg;
}

/**
 * The scaled machine on the split shard plan: modelled PCIe and mesh
 * link latencies break the fused conflict group into per-core + NIC +
 * uncore groups, so --sharded-jobs workers can genuinely overlap.
 */
harness::ExperimentConfig
splitScaledConfig(const bench::BenchOptions &opts)
{
    auto cfg = scaledConfig();
    cfg.links.pcieNs = opts.linkPcieNs > 0.0 ? opts.linkPcieNs : 500.0;
    cfg.links.meshNs = opts.linkMeshNs > 0.0 ? opts.linkMeshNs : 250.0;
    if (opts.seed)
        cfg.seed = *opts.seed;
    return cfg;
}

/** Everything measured from the split-plan scaled runs. */
struct SplitScaled
{
    PacketRate rate;
    unsigned jobs = 1;
    double pcieNs = 0.0;
    double meshNs = 0.0;
    bool deterministic = false;
    std::string stats;
    std::string trace;
};

/**
 * Time the split-plan scaled run at @p jobs workers, then re-run it
 * untimed at @p jobs and at a different worker count and byte-compare
 * stats JSON + event trace. The captured artifacts are written via
 * --artifacts for cross-process comparison (they must be identical no
 * matter which --sharded-jobs produced them).
 */
SplitScaled
measureSplitScaled(const bench::BenchOptions &opts, unsigned jobs)
{
    SplitScaled r;
    auto cfg = splitScaledConfig(opts);
    r.jobs = jobs;
    r.pcieNs = cfg.links.pcieNs;
    r.meshNs = cfg.links.meshNs;

    cfg.sharded = true;
    cfg.shardJobs = jobs;
    r.rate = timedBurst(cfg);

    timedBurst(cfg, &r.stats, &r.trace);
    auto other = cfg;
    other.shardJobs = jobs == 1 ? 2 : 1;
    std::string statsOther, traceOther;
    timedBurst(other, &statsOther, &traceOther);
    r.deterministic = !r.stats.empty() && r.stats == statsOther &&
                      r.trace == traceOther;
    return r;
}

void
writeArtifact(const std::string &path, const std::string &content)
{
    std::ofstream ofs(path, std::ios::binary);
    if (!ofs)
        sim::fatal("cannot open artifact file '%s'", path.c_str());
    ofs << content;
}

/**
 * Per-tenant headline numbers of the canonical tenant mix (see
 * bench/tenant_scenario.hh), shortened for the smoke. These are
 * SIMULATED metrics — deterministic and host-independent — so
 * bench_compare.py hard-gates them (unlike the wall-clock rates).
 */
struct TenantHeadline
{
    double rpcP99Us = 0;
    double rpcP999Us = 0;
    double batchP99Us = 0;
    std::uint64_t reallocations = 0;
};

TenantHeadline
measureTenantScheme(const bench::TenantScheme &scheme,
                    const bench::BenchOptions &opts)
{
    auto cfg = bench::tenantMixConfig(scheme);
    cfg.nic.ringSize = 256; // lighter than the full bench, same shape
    if (opts.seed)
        cfg.seed = *opts.seed;

    harness::TestSystem sys(cfg);
    sys.start();
    constexpr sim::Tick horizon = 300 * sim::oneUs;
    while (sys.simulation().now() < horizon)
        sys.runFor(bench::burstQuantum);

    const auto tt = sys.tenantTotals();
    TenantHeadline h;
    h.rpcP99Us = sim::ticksToUs(tt[0].p99);
    h.rpcP999Us = sim::ticksToUs(tt[0].p999);
    h.batchP99Us = sim::ticksToUs(tt[1].p99);
    if (sys.iocaController() != nullptr)
        h.reallocations = sys.iocaController()->reallocations.get();
    return h;
}

/** The fig10-style sweep the parallel runner is judged on. */
std::vector<bench::SweepCase>
sweepCases()
{
    std::vector<bench::SweepCase> cases;
    for (double gbps : {100.0, 25.0, 10.0}) {
        for (auto policy : {idio::Policy::Ddio, idio::Policy::Static,
                            idio::Policy::Idio}) {
            harness::ExperimentConfig cfg;
            cfg.numNfs = 2;
            cfg.nfKind = harness::NfKind::TouchDrop;
            cfg.rateGbps = gbps;
            cfg.applyPolicy(policy);
            cases.push_back({std::string(idio::policyName(policy)) +
                                 " " + stats::TablePrinter::num(gbps, 0)
                                 + "G",
                             cfg});
        }
    }
    return cases;
}

bool
sameResults(const std::vector<bench::RunMetrics> &a,
            const std::vector<bench::RunMetrics> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (!(a[i].totals == b[i].totals) || a[i].p50 != b[i].p50 ||
            a[i].p99 != b[i].p99 ||
            a[i].firstArrival != b[i].firstArrival ||
            a[i].drainedAt != b[i].drainedAt) {
            return false;
        }
    }
    return true;
}

std::uint64_t
sweepPackets(const std::vector<bench::RunMetrics> &rows)
{
    std::uint64_t sum = 0;
    for (const auto &m : rows)
        sum += m.totals.processedPackets;
    return sum;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    auto opts = bench::parseBenchOptions(argc, argv);
    if (opts.jsonPath.empty())
        opts.jsonPath = "BENCH_perf.json";
    const unsigned hwThreads = harness::SweepRunner::hardwareJobs();
    // The smoke always contrasts a serial sweep with a parallel one.
    // More workers than hardware threads would only measure context
    // switching (SweepRunner clamps anyway), so cap the request.
    const unsigned sweepJobs =
        std::max(1u, std::min(opts.jobs > 1 ? opts.jobs : 8u,
                              hwThreads));

    const bool full = !opts.scaledOnly;

    std::printf("=== perf_smoke: simulator host-side performance ===\n");
    std::printf("host threads: %u, sweep jobs: %u%s\n\n", hwThreads,
                sweepJobs, full ? "" : " (--scaled-only)");

    const unsigned microReps = std::max(1u, opts.microReps);
    std::vector<MicroResult> micros;
    if (full) {
        micros = {
            minOfN([] { return microEventQueueOneShot(2'000'000); },
                   microReps),
            minOfN([] {
                return microEventQueueSquashCompact(2'000'000);
            }, microReps),
            minOfN([] { return microCacheStreamingMiss(2'000'000); },
                   microReps),
            minOfN([] { return microCachePcieWrite(2'000'000); },
                   microReps),
        };
        std::printf("micros: scheduler backend %s, min of %u reps "
                    "(one warm-up pass)\n",
                    sim::EventQueue::backendName(
                        sim::EventQueue::defaultBackend()),
                    microReps);
        for (const auto &m : micros) {
            std::printf("%-26s %8.1f ns/op  %12.0f ops/s\n", m.name,
                        m.nsPerOp(), m.opsPerSec());
        }
    }

    // Headline metric: simulated packets retired per wall second on
    // the default 2-core single-burst config.
    PacketRate single;
    if (full) {
        harness::ExperimentConfig defaultCfg;
        defaultCfg.numNfs = 2;
        defaultCfg.nfKind = harness::NfKind::TouchDrop;
        defaultCfg.rateGbps = 100.0;
        defaultCfg.applyPolicy(idio::Policy::Idio);
        if (opts.seed)
            defaultCfg.seed = *opts.seed;
        single = timedBurst(defaultCfg);
        std::printf("\nsingle run: %llu packets in %.3f s  "
                    "(%.0f packets/wall-sec, %.1f events/packet)\n",
                    (unsigned long long)single.packets, single.wallSec,
                    single.perSec(), single.eventsPerPacket());
    }

    // Scaled machine: the paper's 32-core shape. Timed unsharded and
    // sharded (fused plan), plus a byte-identity check of the sharded
    // executor across worker counts (stats JSON + full event trace).
    PacketRate scaledPlain, scaledShardedRate;
    bool shardedDeterministic = true;
    if (full) {
        auto scaled = scaledConfig();
        if (opts.seed)
            scaled.seed = *opts.seed;
        scaledPlain = timedBurst(scaled);

        auto scaledSharded = scaled;
        scaledSharded.sharded = true;
        scaledSharded.shardJobs = std::max(2u, std::min(hwThreads, 4u));
        scaledShardedRate = timedBurst(scaledSharded);

        std::string statsJ1, statsJ2, traceJ1, traceJ2;
        scaledSharded.shardJobs = 1;
        timedBurst(scaledSharded, &statsJ1, &traceJ1);
        scaledSharded.shardJobs = 2;
        timedBurst(scaledSharded, &statsJ2, &traceJ2);
        shardedDeterministic = !statsJ1.empty() &&
                               statsJ1 == statsJ2 && traceJ1 == traceJ2;

        std::printf("scaled 32-core: unsharded %.0f packets/wall-sec, "
                    "sharded %.0f packets/wall-sec\n",
                    scaledPlain.perSec(), scaledShardedRate.perSec());
        std::printf("sharded deterministic: %s\n",
                    shardedDeterministic
                        ? "yes (stats+trace byte-identical across jobs)"
                        : "NO");
    }

    // Tenant-mix headline: simulated per-tenant tail latency of the
    // canonical noisy-neighbor scenario under plain DDIO sharing vs
    // the IOCA-style CAT controller, plus the controller's
    // reallocation count. Deterministic simulated numbers: any move
    // is a behaviour change, and bench_compare gates them hard.
    TenantHeadline tenantDdio, tenantIoca;
    if (full) {
        tenantDdio = measureTenantScheme(bench::tenantSchemes[0],
                                         opts);
        tenantIoca = measureTenantScheme(bench::tenantSchemes[2],
                                         opts);
        std::printf("tenant mix: rpc p99 %.2f us (ddio) vs %.2f us "
                    "(ioca, %llu way reallocations)\n",
                    tenantDdio.rpcP99Us, tenantIoca.rpcP99Us,
                    (unsigned long long)tenantIoca.reallocations);
    }

    // The same machine on the split shard plan: modelled link
    // latencies give every core, the NIC, and the uncore their own
    // conflict group, so --sharded-jobs is a real parallelism knob.
    const unsigned splitJobs =
        opts.shardedJobs ? opts.shardedJobs
                         : std::max(2u, std::min(hwThreads, 4u));
    const SplitScaled split = measureSplitScaled(opts, splitJobs);
    std::printf("scaled split plan (pcie %.0f ns, mesh %.0f ns, "
                "jobs=%u): %.0f packets/wall-sec, "
                "%.1f events/packet\n",
                split.pcieNs, split.meshNs, split.jobs,
                split.rate.perSec(), split.rate.eventsPerPacket());
    std::printf("split deterministic: %s\n",
                split.deterministic
                    ? "yes (stats+trace byte-identical across jobs)"
                    : "NO");
    if (!opts.artifactsPrefix.empty()) {
        writeArtifact(opts.artifactsPrefix + ".stats.json",
                      split.stats);
        writeArtifact(opts.artifactsPrefix + ".trace.json",
                      split.trace);
        std::printf("artifacts: %s.{stats,trace}.json\n",
                    opts.artifactsPrefix.c_str());
    }

    // Fig10-style sweep, serial vs thread pool.
    std::vector<bench::SweepCase> cases;
    bool deterministic = true;
    double serialSec = 0, parallelSec = 0, speedup = 0;
    std::uint64_t packets = 0;
    if (full) {
        cases = sweepCases();
        bench::applySeed(cases, opts);
        std::printf("\nsweep: %zu fig10-style configs\n", cases.size());

        const auto serialStart = Clock::now();
        const auto serial = bench::runSweepSingleBurst(cases, 1);
        serialSec = secondsSince(serialStart);

        const auto parallelStart = Clock::now();
        const auto parallel =
            bench::runSweepSingleBurst(cases, sweepJobs);
        parallelSec = secondsSince(parallelStart);

        deterministic = sameResults(serial, parallel);
        speedup = parallelSec > 0 ? serialSec / parallelSec : 0;
        packets = sweepPackets(serial);

        std::printf("jobs=1:  %.3f s\njobs=%u: %.3f s  "
                    "(speedup %.2fx)\n",
                    serialSec, sweepJobs, parallelSec, speedup);
        std::printf("deterministic: %s\n",
                    deterministic ? "yes (bit-identical totals)"
                                  : "NO");
        if (hwThreads == 1) {
            std::printf("NOTICE: single hardware thread — parallel "
                        "speedup is unmeasurable on this host "
                        "(speedup fields omitted from the JSON)\n");
        }
    }

    {
        std::ofstream ofs(opts.jsonPath);
        if (!ofs)
            sim::fatal("cannot open '%s'", opts.jsonPath.c_str());
        stats::JsonWriter w(ofs);
        w.beginObject();
        w.field("bench", "perf_smoke");
        w.field("hw_threads", hwThreads);
        w.field("scheduler_backend",
                sim::EventQueue::backendName(
                    sim::EventQueue::defaultBackend()));
        if (full) {
            w.field("micro_reps", std::uint64_t(microReps));
            w.beginObject("micros");
            for (const auto &m : micros) {
                w.beginObject(m.name);
                w.field("ops", m.ops);
                w.field("wallSec", m.wallSec);
                w.field("nsPerOp", m.nsPerOp());
                w.field("opsPerSec", m.opsPerSec());
                w.end();
            }
            w.end();
            w.beginObject("single_run");
            w.field("packets", single.packets);
            w.field("wallSec", single.wallSec);
            w.field("packets_per_wall_sec", single.perSec());
            w.field("events", single.events);
            w.field("events_per_packet", single.eventsPerPacket());
            w.end();
        }
        w.beginObject("scaled");
        w.field("cores", std::uint64_t(32));
        w.field("rx_queues", std::uint64_t(32));
        w.field("flows", std::uint64_t(1u << 20));
        // The headline rate follows the requested mode: the split
        // plan under an explicit --sharded-jobs (what the CI scaling
        // job sweeps), the legacy fused unsharded run otherwise (the
        // committed-trajectory baseline).
        const bool headlineSplit = opts.shardedJobs || !full;
        const PacketRate &headline =
            headlineSplit ? split.rate : scaledPlain;
        w.field("packets", headline.packets);
        w.field("packets_per_wall_sec", headline.perSec());
        w.field("events", headline.events);
        w.field("events_per_packet", headline.eventsPerPacket());
        if (full) {
            w.field("sharded_packets_per_wall_sec",
                    scaledShardedRate.perSec());
            w.field("sharded_deterministic", shardedDeterministic);
        }
        w.beginObject("split");
        w.field("link_pcie_ns", split.pcieNs);
        w.field("link_mesh_ns", split.meshNs);
        w.field("jobs", split.jobs);
        w.field("packets", split.rate.packets);
        w.field("packets_per_wall_sec", split.rate.perSec());
        w.field("events", split.rate.events);
        w.field("events_per_packet", split.rate.eventsPerPacket());
        w.field("deterministic", split.deterministic);
        w.end();
        w.end();
        if (full) {
            w.beginObject("tenant");
            w.beginObject("ddio");
            w.field("rpc_p99_us", tenantDdio.rpcP99Us);
            w.field("rpc_p999_us", tenantDdio.rpcP999Us);
            w.field("batch_p99_us", tenantDdio.batchP99Us);
            w.end();
            w.beginObject("ioca");
            w.field("rpc_p99_us", tenantIoca.rpcP99Us);
            w.field("rpc_p999_us", tenantIoca.rpcP999Us);
            w.field("batch_p99_us", tenantIoca.batchP99Us);
            w.field("reallocations", tenantIoca.reallocations);
            w.end();
            w.end();
        }
        if (full) {
            w.beginObject("sweep");
            w.field("configs", std::uint64_t(cases.size()));
            w.field("jobs", sweepJobs);
            w.field("packets", packets);
            w.field("serialWallSec", serialSec);
            w.field("packets_per_wall_sec_serial",
                    serialSec > 0 ? double(packets) / serialSec : 0);
            // On a single-thread host the parallel leg only measures
            // oversubscription; publishing a "speedup" there would
            // poison the committed trajectory, so the fields are
            // omitted (the determinism check above still ran).
            if (hwThreads > 1) {
                w.field("parallelWallSec", parallelSec);
                w.field("packets_per_wall_sec_parallel",
                        parallelSec > 0 ? double(packets) / parallelSec
                                        : 0);
                w.field("speedup", speedup);
            } else {
                w.field("speedup_skipped_single_thread", true);
            }
            w.field("deterministic", deterministic);
            w.end();
        }
        w.end();
        ofs << "\n";
    }
    std::printf("\nwrote %s\n", opts.jsonPath.c_str());

    // Determinism (sweep, fused sharded, and split plan) is a hard
    // failure; the parallel speedup is judged only where the host can
    // actually run threads in parallel.
    return (deterministic && shardedDeterministic &&
            split.deterministic)
               ? 0
               : 1;
}
