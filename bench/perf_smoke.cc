/**
 * @file
 * Simulator-performance smoke benchmark.
 *
 * Measures host-side performance of the simulation substrate (not any
 * simulated metric) and writes a machine-readable trajectory point:
 *
 *  - event-queue one-shot schedule/fire throughput,
 *  - deschedule/compaction churn throughput,
 *  - cache-hierarchy streaming-miss and PCIe-write throughput,
 *  - a fig10-style config sweep run serially and on a thread pool,
 *    with a bit-identical-results determinism check.
 *
 * The JSON output (default BENCH_perf.json) is committed periodically
 * as the repo's performance trajectory and is compared by
 * tools/bench_compare.py in CI. Wall-clock numbers are only comparable
 * across runs on similar hosts; `hw_threads` records how parallel the
 * sweep could actually go (the speedup criterion needs a multi-core
 * host).
 */

#include <chrono>
#include <cstdio>

#include "common.hh"
#include "sim/event_queue.hh"

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** One micro measurement: fixed op count, wall-clocked. */
struct MicroResult
{
    const char *name;
    std::uint64_t ops;
    double wallSec;

    double nsPerOp() const { return wallSec / double(ops) * 1e9; }
    double opsPerSec() const { return double(ops) / wallSec; }
};

MicroResult
microEventQueueOneShot(std::uint64_t ops)
{
    sim::EventQueue q;
    std::uint64_t sink = 0;
    const auto start = Clock::now();
    for (std::uint64_t i = 0; i < ops; ++i) {
        q.schedule(q.now() + 10, [&sink] { ++sink; });
        q.runUntil(q.now() + 10);
    }
    MicroResult r{"eventQueueOneShot", ops, secondsSince(start)};
    if (sink != ops)
        sim::fatal("one-shot micro fired %llu of %llu events",
                   (unsigned long long)sink, (unsigned long long)ops);
    return r;
}

MicroResult
microEventQueueSquashCompact(std::uint64_t ops)
{
    class NopEvent : public sim::Event
    {
      public:
        void process() override {}
    };

    constexpr std::uint64_t batch = 64;
    std::vector<NopEvent> evs(batch);
    sim::EventQueue q;
    const std::uint64_t rounds = ops / batch;
    const auto start = Clock::now();
    for (std::uint64_t n = 0; n < rounds; ++n) {
        for (std::uint64_t i = 0; i < batch; ++i)
            q.schedule(&evs[i], q.now() + 10 + sim::Tick(i));
        for (std::uint64_t i = 0; i < batch; ++i)
            q.deschedule(&evs[i]);
    }
    MicroResult r{"eventQueueSquashCompact", rounds * batch,
                  secondsSince(start)};
    if (q.pending() != 0)
        sim::fatal("squash micro left %zu events pending", q.pending());
    return r;
}

MicroResult
microCacheStreamingMiss(std::uint64_t ops)
{
    sim::Simulation s;
    cache::HierarchyConfig cfg;
    cfg.numCores = 2;
    cache::MemoryHierarchy hier(s, "sys", cfg);
    sim::Addr a = 0;
    std::uint64_t sink = 0;
    const auto start = Clock::now();
    for (std::uint64_t i = 0; i < ops; ++i) {
        sink += hier.coreRead(0, a).latency;
        a += 64;
    }
    MicroResult r{"cacheStreamingMiss", ops, secondsSince(start)};
    if (sink == 0)
        sim::fatal("streaming micro accumulated zero latency");
    return r;
}

MicroResult
microCachePcieWrite(std::uint64_t ops)
{
    sim::Simulation s;
    cache::HierarchyConfig cfg;
    cfg.numCores = 2;
    cache::MemoryHierarchy hier(s, "sys", cfg);
    sim::Addr a = 0;
    const auto start = Clock::now();
    for (std::uint64_t i = 0; i < ops; ++i) {
        hier.pcieWrite(a);
        a = (a + 64) & 0xFFFFF;
    }
    return MicroResult{"cachePcieWrite", ops, secondsSince(start)};
}

/** The fig10-style sweep the parallel runner is judged on. */
std::vector<bench::SweepCase>
sweepCases()
{
    std::vector<bench::SweepCase> cases;
    for (double gbps : {100.0, 25.0, 10.0}) {
        for (auto policy : {idio::Policy::Ddio, idio::Policy::Static,
                            idio::Policy::Idio}) {
            harness::ExperimentConfig cfg;
            cfg.numNfs = 2;
            cfg.nfKind = harness::NfKind::TouchDrop;
            cfg.rateGbps = gbps;
            cfg.applyPolicy(policy);
            cases.push_back({std::string(idio::policyName(policy)) +
                                 " " + stats::TablePrinter::num(gbps, 0)
                                 + "G",
                             cfg});
        }
    }
    return cases;
}

bool
sameResults(const std::vector<bench::RunMetrics> &a,
            const std::vector<bench::RunMetrics> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (!(a[i].totals == b[i].totals) || a[i].p50 != b[i].p50 ||
            a[i].p99 != b[i].p99 ||
            a[i].firstArrival != b[i].firstArrival ||
            a[i].drainedAt != b[i].drainedAt) {
            return false;
        }
    }
    return true;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    auto opts = bench::parseBenchOptions(argc, argv);
    if (opts.jsonPath.empty())
        opts.jsonPath = "BENCH_perf.json";
    // The smoke always contrasts a serial sweep with a parallel one;
    // default to the 8 jobs the acceptance bar uses.
    const unsigned sweepJobs = opts.jobs > 1 ? opts.jobs : 8;
    const unsigned hwThreads = harness::SweepRunner::hardwareJobs();

    std::printf("=== perf_smoke: simulator host-side performance ===\n");
    std::printf("host threads: %u, sweep jobs: %u\n\n", hwThreads,
                sweepJobs);

    const MicroResult micros[] = {
        microEventQueueOneShot(2'000'000),
        microEventQueueSquashCompact(2'000'000),
        microCacheStreamingMiss(2'000'000),
        microCachePcieWrite(2'000'000),
    };
    for (const auto &m : micros) {
        std::printf("%-26s %8.1f ns/op  %12.0f ops/s\n", m.name,
                    m.nsPerOp(), m.opsPerSec());
    }

    auto cases = sweepCases();
    bench::applySeed(cases, opts);
    std::printf("\nsweep: %zu fig10-style configs\n", cases.size());

    const auto serialStart = Clock::now();
    const auto serial = bench::runSweepSingleBurst(cases, 1);
    const double serialSec = secondsSince(serialStart);

    const auto parallelStart = Clock::now();
    const auto parallel = bench::runSweepSingleBurst(cases, sweepJobs);
    const double parallelSec = secondsSince(parallelStart);

    const bool deterministic = sameResults(serial, parallel);
    const double speedup = parallelSec > 0 ? serialSec / parallelSec : 0;

    std::printf("jobs=1:  %.3f s\njobs=%u: %.3f s  (speedup %.2fx)\n",
                serialSec, sweepJobs, parallelSec, speedup);
    std::printf("deterministic: %s\n",
                deterministic ? "yes (bit-identical totals)" : "NO");

    {
        std::ofstream ofs(opts.jsonPath);
        if (!ofs)
            sim::fatal("cannot open '%s'", opts.jsonPath.c_str());
        stats::JsonWriter w(ofs);
        w.beginObject();
        w.field("bench", "perf_smoke");
        w.field("hw_threads", hwThreads);
        w.beginObject("micros");
        for (const auto &m : micros) {
            w.beginObject(m.name);
            w.field("ops", m.ops);
            w.field("wallSec", m.wallSec);
            w.field("nsPerOp", m.nsPerOp());
            w.field("opsPerSec", m.opsPerSec());
            w.end();
        }
        w.end();
        w.beginObject("sweep");
        w.field("configs", std::uint64_t(cases.size()));
        w.field("jobs", sweepJobs);
        w.field("serialWallSec", serialSec);
        w.field("parallelWallSec", parallelSec);
        w.field("speedup", speedup);
        w.field("deterministic", deterministic);
        w.end();
        w.end();
        ofs << "\n";
    }
    std::printf("\nwrote %s\n", opts.jsonPath.c_str());

    // Determinism is a hard failure; the parallel speedup is judged
    // only where the host can actually run threads in parallel.
    return deterministic ? 0 : 1;
}
