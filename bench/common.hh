/**
 * @file
 * Shared machinery for the figure-reproduction benches.
 *
 * Every bench binary prints the series/rows of one paper table or
 * figure. The helpers here run a single-burst experiment and extract
 * the metrics the paper reports: transaction totals, burst processing
 * time (first DMA until the NFs drain), percentile latencies, and
 * 10 us rate timelines.
 */

#ifndef IDIO_BENCH_COMMON_HH
#define IDIO_BENCH_COMMON_HH

#include <cstdio>
#include <optional>
#include <string>

#include "harness/system.hh"
#include "stats/table.hh"

namespace bench
{

/** Everything measured from one run. */
struct RunMetrics
{
    harness::Totals totals;

    /** First packet arrival (ticks). */
    sim::Tick firstArrival = 0;

    /** Tick at which the NFs finished the last burst packet. */
    sim::Tick drainedAt = 0;

    /** Burst processing time: firstArrival .. drainedAt. */
    sim::Tick
    execTime() const
    {
        return drainedAt > firstArrival ? drainedAt - firstArrival : 0;
    }

    std::uint64_t p50 = 0;
    std::uint64_t p99 = 0;

    /** Antagonist CPI proxy (0 when not co-running). */
    double antagonistTpa = 0.0;
};

/**
 * Run one burst per NIC and measure burst processing time: the system
 * runs in small quanta until every delivered packet is processed (or
 * @p limit passes).
 */
inline RunMetrics
runSingleBurst(const harness::ExperimentConfig &config,
               sim::Tick limit = 50 * sim::oneMs)
{
    harness::ExperimentConfig cfg = config;
    cfg.traffic = harness::TrafficKind::Bursty;
    cfg.burstPeriod = 10 * sim::oneSec; // effectively one burst

    harness::TestSystem sys(cfg);
    sys.start();

    const std::uint64_t expected =
        std::uint64_t(cfg.effectiveBurstPackets()) * cfg.numNfs;

    RunMetrics m;
    const sim::Tick quantum = 10 * sim::oneUs;
    bool sawFirst = false;
    while (sys.simulation().now() < limit) {
        sys.runFor(quantum);
        const auto t = sys.totals();
        if (!sawFirst && t.rxPackets > 0) {
            sawFirst = true;
            m.firstArrival = sys.simulation().now() - quantum;
        }
        if (t.processedPackets + t.rxDrops >= expected &&
            t.rxPackets >= expected) {
            m.drainedAt = sys.simulation().now();
            break;
        }
    }
    if (m.drainedAt == 0)
        m.drainedAt = sys.simulation().now();

    // Let in-flight TX completions settle for latency accounting.
    sys.runFor(100 * sim::oneUs);

    m.totals = sys.totals();
    m.p50 = sys.nf(0).latency.p50();
    m.p99 = sys.nf(0).latency.p99();
    if (sys.antagonist())
        m.antagonistTpa = sys.antagonist()->ticksPerAccess();
    return m;
}

/** Run a fixed duration (steady experiments). */
inline RunMetrics
runFor(const harness::ExperimentConfig &cfg, sim::Tick duration)
{
    harness::TestSystem sys(cfg);
    sys.start();
    sys.runFor(duration);

    RunMetrics m;
    m.totals = sys.totals();
    m.drainedAt = duration;
    m.p50 = sys.nf(0).latency.p50();
    m.p99 = sys.nf(0).latency.p99();
    if (sys.antagonist())
        m.antagonistTpa = sys.antagonist()->ticksPerAccess();
    return m;
}

/** "x.xx" ratio of two counters, "-" when the base is zero. */
inline std::string
ratio(std::uint64_t ours, std::uint64_t base, int precision = 2)
{
    if (base == 0)
        return ours == 0 ? "0.00" : "inf";
    return stats::TablePrinter::num(
        static_cast<double>(ours) / static_cast<double>(base),
        precision);
}

/** Print the Table I configuration echo every bench starts with. */
inline void
printConfigEcho(const harness::ExperimentConfig &cfg)
{
    std::printf("# Table I config: %u-core aarch64-class @ %.1f GHz, "
                "L1D %lluKB/%u, MLC %lluKB/%u, LLC %lluKB/%u "
                "(%u DDIO ways), DDR4 %.0fGB/s\n",
                cfg.hier.numCores, cfg.hier.cpuFreqGHz,
                (unsigned long long)cfg.hier.l1.sizeBytes / 1024,
                cfg.hier.l1.assoc,
                (unsigned long long)cfg.hier.mlc.sizeBytes / 1024,
                cfg.hier.mlc.assoc,
                (unsigned long long)cfg.hier.llcSizeBytes() / 1024,
                cfg.hier.llcPerCore.assoc, cfg.hier.ddioWays,
                cfg.hier.dramBandwidthGBps);
    std::printf("# workload: %s\n\n", cfg.summary().c_str());
}

} // namespace bench

#endif // IDIO_BENCH_COMMON_HH
