/**
 * @file
 * Shared machinery for the figure-reproduction benches.
 *
 * Every bench binary prints the series/rows of one paper table or
 * figure. The helpers here run a single-burst experiment and extract
 * the metrics the paper reports: transaction totals, burst processing
 * time (first DMA until the NFs drain), percentile latencies, and
 * 10 us rate timelines.
 */

#ifndef IDIO_BENCH_COMMON_HH
#define IDIO_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <string>

#include "harness/sweep.hh"
#include "harness/system.hh"
#include "harness/trace_artifacts.hh"
#include "stats/json.hh"
#include "stats/table.hh"

namespace bench
{

/**
 * Command-line options shared by every figure bench.
 *
 *   --jobs=N    run the config sweep on N threads (0 = all host
 *               hardware threads). Results are collected in config
 *               order and are bit-identical to a serial run.
 *   --json=FILE additionally write every measured row to FILE as JSON
 *               for plotting scripts and CI trend tracking.
 *   --trace=FILE record a packet-lifecycle event trace of the FIRST
 *               sweep case (re-run serially after the sweep) as
 *               Chrome trace-event JSON for Perfetto, plus a
 *               FILE.totals.json sidecar with the run's
 *               harness::Totals for tools/trace_summary.py
 *               cross-checking.
 */
struct BenchOptions
{
    unsigned jobs = 1;
    std::string jsonPath;
    std::string tracePath;
};

inline BenchOptions
parseBenchOptions(int argc, char **argv)
{
    BenchOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--jobs=", 0) == 0) {
            const unsigned n = static_cast<unsigned>(
                std::strtoul(arg.c_str() + 7, nullptr, 10));
            opts.jobs = n ? n : harness::SweepRunner::hardwareJobs();
        } else if (arg.rfind("--json=", 0) == 0) {
            opts.jsonPath = arg.substr(7);
        } else if (arg.rfind("--trace=", 0) == 0) {
            opts.tracePath = arg.substr(8);
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: %s [--jobs=N] [--json=FILE] [--trace=FILE]\n"
                "  --jobs=N    parallel sweep threads "
                "(0 = all %u host threads; results identical)\n"
                "  --json=FILE write measured rows as JSON\n"
                "  --trace=FILE write a Perfetto-compatible event "
                "trace of the first case\n",
                argv[0], harness::SweepRunner::hardwareJobs());
            std::exit(0);
        } else {
            std::fprintf(stderr, "%s: unknown option '%s' "
                         "(try --help)\n", argv[0], arg.c_str());
            std::exit(2);
        }
    }
    return opts;
}

/** Everything measured from one run. */
struct RunMetrics
{
    harness::Totals totals;

    /** First packet arrival (ticks). */
    sim::Tick firstArrival = 0;

    /** Tick at which the NFs finished the last burst packet. */
    sim::Tick drainedAt = 0;

    /** Burst processing time: firstArrival .. drainedAt. */
    sim::Tick
    execTime() const
    {
        return drainedAt > firstArrival ? drainedAt - firstArrival : 0;
    }

    std::uint64_t p50 = 0;
    std::uint64_t p99 = 0;

    /** Antagonist CPI proxy (0 when not co-running). */
    double antagonistTpa = 0.0;
};

/**
 * Run one burst per NIC and measure burst processing time: the system
 * runs in small quanta until every delivered packet is processed (or
 * @p limit passes).
 *
 * With a non-empty @p tracePath the run records a packet-lifecycle
 * event trace and writes it (plus the totals sidecar) on completion.
 */
inline RunMetrics
runSingleBurst(const harness::ExperimentConfig &config,
               sim::Tick limit = 50 * sim::oneMs,
               const std::string &tracePath = {})
{
    harness::ExperimentConfig cfg = config;
    cfg.traffic = harness::TrafficKind::Bursty;
    cfg.burstPeriod = 10 * sim::oneSec; // effectively one burst

    harness::TestSystem sys(cfg);
    if (!tracePath.empty())
        harness::enableTracing(sys);
    sys.start();

    const std::uint64_t expected =
        std::uint64_t(cfg.effectiveBurstPackets()) * cfg.numNfs;

    RunMetrics m;
    const sim::Tick quantum = 10 * sim::oneUs;
    bool sawFirst = false;
    while (sys.simulation().now() < limit) {
        sys.runFor(quantum);
        const auto t = sys.totals();
        if (!sawFirst && t.rxPackets > 0) {
            sawFirst = true;
            m.firstArrival = sys.simulation().now() - quantum;
        }
        if (t.processedPackets + t.rxDrops >= expected &&
            t.rxPackets >= expected) {
            m.drainedAt = sys.simulation().now();
            break;
        }
    }
    if (m.drainedAt == 0)
        m.drainedAt = sys.simulation().now();

    // Let in-flight TX completions settle for latency accounting.
    sys.runFor(100 * sim::oneUs);

    m.totals = sys.totals();
    m.p50 = sys.nf(0).latency.p50();
    m.p99 = sys.nf(0).latency.p99();
    if (sys.antagonist())
        m.antagonistTpa = sys.antagonist()->ticksPerAccess();
    if (!tracePath.empty())
        harness::writeTraceArtifacts(tracePath, sys);
    return m;
}

/**
 * Honour --trace=FILE: re-run @p cfg serially with event tracing on
 * and write the trace + totals sidecar. Kept separate from the sweep
 * so the measured (and possibly parallel) runs stay untraced.
 */
inline void
maybeTraceRun(const BenchOptions &opts,
              const harness::ExperimentConfig &cfg,
              sim::Tick limit = 50 * sim::oneMs)
{
    if (opts.tracePath.empty())
        return;
    runSingleBurst(cfg, limit, opts.tracePath);
    std::printf("# trace written to %s (+ .totals.json sidecar)\n",
                opts.tracePath.c_str());
}

/** Run a fixed duration (steady experiments). */
inline RunMetrics
runFor(const harness::ExperimentConfig &cfg, sim::Tick duration)
{
    harness::TestSystem sys(cfg);
    sys.start();
    sys.runFor(duration);

    RunMetrics m;
    m.totals = sys.totals();
    m.drainedAt = duration;
    m.p50 = sys.nf(0).latency.p50();
    m.p99 = sys.nf(0).latency.p99();
    if (sys.antagonist())
        m.antagonistTpa = sys.antagonist()->ticksPerAccess();
    return m;
}

/**
 * One labelled experiment of a sweep: the config plus the caller's
 * row identity, carried through SweepRunner so printing can happen
 * after the parallel phase without re-deriving loop state.
 */
struct SweepCase
{
    std::string label;
    harness::ExperimentConfig cfg;
};

/**
 * Run every case through @p fn on @p jobs threads (SweepRunner) and
 * return metrics in case order.
 */
template <typename Fn>
inline std::vector<RunMetrics>
runSweep(const std::vector<SweepCase> &cases, unsigned jobs, Fn &&fn)
{
    harness::SweepRunner runner(jobs);
    return runner.map(cases, [&](const SweepCase &c) {
        return fn(c.cfg);
    });
}

/** runSweep with the default single-burst measurement. */
inline std::vector<RunMetrics>
runSweepSingleBurst(const std::vector<SweepCase> &cases, unsigned jobs)
{
    return runSweep(cases, jobs, [](const harness::ExperimentConfig &c) {
        return runSingleBurst(c);
    });
}

/**
 * Optional JSON sidecar for a bench run: one object with the bench
 * name, the job count, and an array of per-case metric rows. Inactive
 * (all no-ops) when the path is empty.
 */
class JsonReport
{
  public:
    JsonReport(const std::string &path, const std::string &benchName,
               unsigned jobs)
    {
        if (path.empty())
            return;
        ofs.open(path);
        if (!ofs)
            sim::fatal("cannot open JSON output file '%s'",
                       path.c_str());
        writer = std::make_unique<stats::JsonWriter>(ofs);
        writer->beginObject();
        writer->field("bench", benchName);
        writer->field("jobs", jobs);
        writer->beginArray("rows");
    }

    ~JsonReport()
    {
        if (!writer)
            return;
        writer->end(); // rows
        writer->end(); // top-level object
        ofs << "\n";
    }

    /** Append one measured row. */
    void
    row(const SweepCase &c, const RunMetrics &m)
    {
        if (!writer)
            return;
        stats::JsonWriter &w = *writer;
        w.beginObject();
        w.field("label", c.label);
        w.field("rateGbps", c.cfg.rateGbps);
        w.field("seed", c.cfg.seed);
        w.field("mlcWB", m.totals.mlcWritebacks);
        w.field("nfMlcWB", m.totals.nfMlcWritebacks);
        w.field("mlcPcieInvals", m.totals.mlcPcieInvals);
        w.field("llcWB", m.totals.llcWritebacks);
        w.field("dramRd", m.totals.dramReads);
        w.field("dramWr", m.totals.dramWrites);
        w.field("rxPackets", m.totals.rxPackets);
        w.field("rxDrops", m.totals.rxDrops);
        w.field("processedPackets", m.totals.processedPackets);
        w.field("execTimeUs", sim::ticksToUs(m.execTime()));
        w.field("p50Us", sim::ticksToUs(m.p50));
        w.field("p99Us", sim::ticksToUs(m.p99));
        w.field("antagonistTpa", m.antagonistTpa);
        w.end();
    }

    explicit operator bool() const { return writer != nullptr; }

  private:
    std::ofstream ofs;
    std::unique_ptr<stats::JsonWriter> writer;
};

/** "x.xx" ratio of two counters, "-" when the base is zero. */
inline std::string
ratio(std::uint64_t ours, std::uint64_t base, int precision = 2)
{
    if (base == 0)
        return ours == 0 ? "0.00" : "inf";
    return stats::TablePrinter::num(
        static_cast<double>(ours) / static_cast<double>(base),
        precision);
}

/** Print the Table I configuration echo every bench starts with. */
inline void
printConfigEcho(const harness::ExperimentConfig &cfg)
{
    std::printf("# Table I config: %u-core aarch64-class @ %.1f GHz, "
                "L1D %lluKB/%u, MLC %lluKB/%u, LLC %lluKB/%u "
                "(%u DDIO ways), DDR4 %.0fGB/s\n",
                cfg.hier.numCores, cfg.hier.cpuFreqGHz,
                (unsigned long long)cfg.hier.l1.sizeBytes / 1024,
                cfg.hier.l1.assoc,
                (unsigned long long)cfg.hier.mlc.sizeBytes / 1024,
                cfg.hier.mlc.assoc,
                (unsigned long long)cfg.hier.llcSizeBytes() / 1024,
                cfg.hier.llcPerCore.assoc, cfg.hier.ddioWays,
                cfg.hier.dramBandwidthGBps);
    std::printf("# workload: %s\n\n", cfg.summary().c_str());
}

} // namespace bench

#endif // IDIO_BENCH_COMMON_HH
