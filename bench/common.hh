/**
 * @file
 * Shared machinery for the figure-reproduction benches.
 *
 * Every bench binary prints the series/rows of one paper table or
 * figure. The helpers here run a single-burst experiment and extract
 * the metrics the paper reports: transaction totals, burst processing
 * time (first DMA until the NFs drain), percentile latencies, and
 * 10 us rate timelines.
 */

#ifndef IDIO_BENCH_COMMON_HH
#define IDIO_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <memory>
#include <optional>
#include <string>

#include "ckpt/checkpoint.hh"
#include "harness/sweep.hh"
#include "harness/system.hh"
#include "harness/trace_artifacts.hh"
#include "stats/json.hh"
#include "stats/table.hh"

namespace bench
{

/**
 * Command-line options shared by every figure bench.
 *
 *   --jobs=N    run the config sweep on N threads (0 = all host
 *               hardware threads). Results are collected in config
 *               order and are bit-identical to a serial run.
 *   --json=FILE additionally write every measured row to FILE as JSON
 *               for plotting scripts and CI trend tracking.
 *   --trace=FILE record a packet-lifecycle event trace of the FIRST
 *               sweep case (re-run serially after the sweep) as
 *               Chrome trace-event JSON for Perfetto, plus a
 *               FILE.totals.json sidecar with the run's
 *               harness::Totals for tools/trace_summary.py
 *               cross-checking.
 *   --seed=N    override ExperimentConfig::seed for every sweep case.
 *               The seed is recorded in checkpoint headers; restoring
 *               under a different seed is fatal.
 *   --checkpoint=FILE during the FIRST sweep case, save a checkpoint
 *               at the 20 us mark (plus a FILE.meta sidecar with the
 *               measurement-loop state). The measured results are
 *               unchanged — saving only reads simulator state.
 *   --restore=FILE start the FIRST sweep case from FILE instead of
 *               cold; the rest of the run is bit-identical to the
 *               uninterrupted one.
 *   --warm-start (benches that support it) run the shared warm-up
 *               once, checkpoint in memory and fork each sweep case
 *               from the restored state.
 *   --cores=N   scale every case to an N-core socket (N NF cores and,
 *               unless --rx-queues says otherwise, N RX queues with
 *               RSS/RETA steering over a synthetic flow population).
 *   --rx-queues=N use N RX rings on the shared port (0 keeps the
 *               legacy one-port-per-NF layout).
 *   --sharded-jobs=N drive each system through the sharded
 *               conservative-window executor with N worker threads
 *               (results stay bit-identical to the unsharded build).
 *   --link-pcie-ns=X / --link-mesh-ns=X model the NIC→LLC (PCIe) and
 *               core/MLC→LLC (mesh) couplings as latency links of X ns
 *               (both must be set together; see LinkLatencyConfig).
 *               The ShardPlan then splits into per-core + NIC + uncore
 *               groups instead of one fused group.
 *   --scaled-only (perf_smoke) run only the scaled split-plan
 *               measurement; used by the CI scaling job.
 *   --micro-reps=N (perf_smoke) repeat each micro N times after one
 *               discarded warm-up pass and report the minimum
 *               (default 3) — min-of-N filters host scheduling noise
 *               out of the committed trajectory.
 *   --artifacts=PREFIX (perf_smoke) write the scaled split run's
 *               stats JSON and event trace to PREFIX.stats.json /
 *               PREFIX.trace.json for cross-process byte-comparison.
 */
struct BenchOptions
{
    unsigned jobs = 1;
    std::string jsonPath;
    std::string tracePath;
    std::optional<std::uint64_t> seed;
    std::string checkpointPath;
    std::string restorePath;
    bool warmStart = false;
    std::uint32_t cores = 0;
    std::uint32_t rxQueues = 0;
    unsigned shardedJobs = 0;
    double linkPcieNs = 0.0;
    double linkMeshNs = 0.0;
    bool scaledOnly = false;
    std::string artifactsPrefix;
    unsigned microReps = 3;
};

/**
 * Apply the --cores / --rx-queues / --sharded-jobs topology options
 * to one config. --cores implies a multi-queue port (rxQueues =
 * cores) unless --rx-queues overrides it.
 */
inline void
applyTopology(harness::ExperimentConfig &cfg, const BenchOptions &opts)
{
    if (opts.cores) {
        cfg.numNfs = opts.cores;
        cfg.rxQueues = opts.rxQueues ? opts.rxQueues : opts.cores;
    } else if (opts.rxQueues) {
        cfg.rxQueues = opts.rxQueues;
    }
    if (cfg.rxQueues && cfg.totalFlows == 0)
        cfg.totalFlows = 1u << 16;
    if (opts.shardedJobs) {
        cfg.sharded = true;
        cfg.shardJobs = opts.shardedJobs;
    }
    if (opts.linkPcieNs > 0.0)
        cfg.links.pcieNs = opts.linkPcieNs;
    if (opts.linkMeshNs > 0.0)
        cfg.links.meshNs = opts.linkMeshNs;
}

inline BenchOptions
parseBenchOptions(int argc, char **argv)
{
    BenchOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--jobs=", 0) == 0) {
            const unsigned n = static_cast<unsigned>(
                std::strtoul(arg.c_str() + 7, nullptr, 10));
            opts.jobs = n ? n : harness::SweepRunner::hardwareJobs();
        } else if (arg.rfind("--json=", 0) == 0) {
            opts.jsonPath = arg.substr(7);
        } else if (arg.rfind("--trace=", 0) == 0) {
            opts.tracePath = arg.substr(8);
        } else if (arg.rfind("--seed=", 0) == 0) {
            opts.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
        } else if (arg.rfind("--checkpoint=", 0) == 0) {
            opts.checkpointPath = arg.substr(13);
        } else if (arg.rfind("--restore=", 0) == 0) {
            opts.restorePath = arg.substr(10);
        } else if (arg == "--warm-start") {
            opts.warmStart = true;
        } else if (arg.rfind("--cores=", 0) == 0) {
            opts.cores = static_cast<std::uint32_t>(
                std::strtoul(arg.c_str() + 8, nullptr, 10));
        } else if (arg.rfind("--rx-queues=", 0) == 0) {
            opts.rxQueues = static_cast<std::uint32_t>(
                std::strtoul(arg.c_str() + 12, nullptr, 10));
        } else if (arg.rfind("--sharded-jobs=", 0) == 0) {
            opts.shardedJobs = static_cast<unsigned>(
                std::strtoul(arg.c_str() + 15, nullptr, 10));
        } else if (arg.rfind("--link-pcie-ns=", 0) == 0) {
            opts.linkPcieNs = std::strtod(arg.c_str() + 15, nullptr);
        } else if (arg.rfind("--link-mesh-ns=", 0) == 0) {
            opts.linkMeshNs = std::strtod(arg.c_str() + 15, nullptr);
        } else if (arg == "--scaled-only") {
            opts.scaledOnly = true;
        } else if (arg.rfind("--artifacts=", 0) == 0) {
            opts.artifactsPrefix = arg.substr(12);
        } else if (arg.rfind("--micro-reps=", 0) == 0) {
            const unsigned n = static_cast<unsigned>(
                std::strtoul(arg.c_str() + 13, nullptr, 10));
            opts.microReps = n ? n : 1;
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: %s [--jobs=N] [--json=FILE] [--trace=FILE]\n"
                "          [--seed=N] [--checkpoint=FILE] "
                "[--restore=FILE] [--warm-start]\n"
                "  --jobs=N    parallel sweep threads "
                "(0 = all %u host threads; results identical)\n"
                "  --json=FILE write measured rows as JSON\n"
                "  --trace=FILE write a Perfetto-compatible event "
                "trace of the first case\n"
                "  --seed=N    override the RNG seed of every case\n"
                "  --checkpoint=FILE save the first case's state at "
                "the 20 us mark\n"
                "  --restore=FILE start the first case from FILE "
                "(bit-identical resume)\n"
                "  --warm-start fork sweep cases from one shared "
                "warm-up (where supported)\n"
                "  --cores=N   scale cases to an N-core socket "
                "(implies --rx-queues=N)\n"
                "  --rx-queues=N multi-queue RX rings with RSS "
                "steering (0 = legacy layout)\n"
                "  --sharded-jobs=N run each system on the sharded "
                "executor with N threads\n"
                "  --link-pcie-ns=X model the NIC-to-LLC coupling as "
                "an X ns latency link\n"
                "  --link-mesh-ns=X model the core-to-LLC coupling as "
                "an X ns latency link\n"
                "  --scaled-only (perf_smoke) run only the scaled "
                "split-plan measurement\n"
                "  --artifacts=PREFIX (perf_smoke) dump the scaled "
                "run's stats+trace for byte-compare\n"
                "  --micro-reps=N (perf_smoke) min-of-N micro timing "
                "with a warm-up pass (default 3)\n",
                argv[0], harness::SweepRunner::hardwareJobs());
            std::exit(0);
        } else {
            std::fprintf(stderr, "%s: unknown option '%s' "
                         "(try --help)\n", argv[0], arg.c_str());
            std::exit(2);
        }
    }
    return opts;
}

/** Everything measured from one run. */
struct RunMetrics
{
    harness::Totals totals;

    /** First packet arrival (ticks). */
    sim::Tick firstArrival = 0;

    /** Tick at which the NFs finished the last burst packet. */
    sim::Tick drainedAt = 0;

    /** Burst processing time: firstArrival .. drainedAt. */
    sim::Tick
    execTime() const
    {
        return drainedAt > firstArrival ? drainedAt - firstArrival : 0;
    }

    std::uint64_t p50 = 0;
    std::uint64_t p99 = 0;

    /** Antagonist CPI proxy (0 when not co-running). */
    double antagonistTpa = 0.0;
};

/** Measurement-loop quantum shared by every single-burst run. */
constexpr sim::Tick burstQuantum = 10 * sim::oneUs;

/** Default checkpoint/warm-up tick: two quanta into the burst. */
constexpr sim::Tick warmStartTick = 20 * sim::oneUs;

/**
 * A checkpoint plus the measurement-loop state that accompanies it,
 * so a run resumed from it reports the same firstArrival (and hence
 * execTime) as the uninterrupted run.
 */
struct WarmState
{
    std::vector<std::uint8_t> blob;
    sim::Tick tick = 0;
    sim::Tick firstArrival = 0;
    bool sawFirst = false;
};

/** Write @p w to @p path plus a @p path.meta loop-state sidecar. */
inline void
saveWarmState(const std::string &path, const WarmState &w)
{
    std::ofstream ofs(path, std::ios::binary);
    if (!ofs)
        sim::fatal("cannot write checkpoint '%s'", path.c_str());
    ofs.write(reinterpret_cast<const char *>(w.blob.data()),
              static_cast<std::streamsize>(w.blob.size()));
    if (!ofs)
        sim::fatal("short write to checkpoint '%s'", path.c_str());

    std::ofstream meta(path + ".meta");
    if (!meta)
        sim::fatal("cannot write checkpoint meta '%s.meta'",
                   path.c_str());
    meta << "firstArrival=" << w.firstArrival << "\n"
         << "sawFirst=" << (w.sawFirst ? 1 : 0) << "\n";
}

/**
 * Read a checkpoint (and its .meta sidecar when present) back. A
 * missing sidecar leaves the loop state at defaults: the run still
 * resumes correctly but re-measures firstArrival from resume time.
 */
inline WarmState
loadWarmState(const std::string &path)
{
    WarmState w;
    std::ifstream ifs(path, std::ios::binary);
    if (!ifs)
        sim::fatal("cannot read checkpoint '%s'", path.c_str());
    w.blob.assign(std::istreambuf_iterator<char>(ifs),
                  std::istreambuf_iterator<char>());

    std::ifstream meta(path + ".meta");
    std::string line;
    while (meta && std::getline(meta, line)) {
        if (line.rfind("firstArrival=", 0) == 0)
            w.firstArrival =
                std::strtoull(line.c_str() + 13, nullptr, 10);
        else if (line.rfind("sawFirst=", 0) == 0)
            w.sawFirst = line.size() > 9 && line[9] == '1';
    }
    return w;
}

/** Optional checkpoint/restore hooks for a single-burst run. */
struct BurstRunOptions
{
    sim::Tick limit = 50 * sim::oneMs;
    std::string tracePath;

    /** Fork from this in-memory warm state instead of running cold. */
    const WarmState *warm = nullptr;

    /** Or restore from this checkpoint file (with .meta sidecar). */
    std::string restorePath;

    /** Save a checkpoint file once @p checkpointTick is reached. */
    std::string checkpointPath;
    sim::Tick checkpointTick = warmStartTick;
};

/**
 * Run one burst per NIC and measure burst processing time: the system
 * runs in small quanta until every delivered packet is processed (or
 * the limit passes).
 *
 * With a non-empty tracePath the run records a packet-lifecycle
 * event trace and writes it (plus the totals sidecar) on completion.
 *
 * A run forked from a warm state (or restored from a file) continues
 * the measurement loop from the checkpoint tick; because saving only
 * reads simulator state and the checkpoint tick is a quantum
 * multiple, the result is bit-identical to the uninterrupted run.
 */
inline RunMetrics
runSingleBurst(const harness::ExperimentConfig &config,
               const BurstRunOptions &opts)
{
    harness::ExperimentConfig cfg = config;
    cfg.traffic = harness::TrafficKind::Bursty;
    cfg.burstPeriod = 10 * sim::oneSec; // effectively one burst

    harness::TestSystem sys(cfg);
    if (!opts.tracePath.empty())
        harness::enableTracing(sys);
    sys.start();

    RunMetrics m;
    bool sawFirst = false;

    WarmState fileState;
    const WarmState *warm = opts.warm;
    if (warm == nullptr && !opts.restorePath.empty()) {
        fileState = loadWarmState(opts.restorePath);
        warm = &fileState;
    }
    if (warm != nullptr) {
        sys.restore(warm->blob);
        sawFirst = warm->sawFirst;
        m.firstArrival = warm->firstArrival;
    }

    const std::uint64_t expected = cfg.expectedBurstTotal();

    bool saved = opts.checkpointPath.empty();
    while (sys.simulation().now() < opts.limit) {
        sys.runFor(burstQuantum);
        const auto t = sys.totals();
        if (!sawFirst && t.rxPackets > 0) {
            sawFirst = true;
            m.firstArrival = sys.simulation().now() - burstQuantum;
        }
        if (!saved &&
            sys.simulation().now() >= opts.checkpointTick) {
            saved = true;
            WarmState w;
            w.tick = sys.simulation().now();
            w.firstArrival = m.firstArrival;
            w.sawFirst = sawFirst;
            w.blob = sys.checkpoint();
            saveWarmState(opts.checkpointPath, w);
        }
        if (t.processedPackets + t.rxDrops >= expected &&
            t.rxPackets >= expected) {
            m.drainedAt = sys.simulation().now();
            break;
        }
    }
    if (m.drainedAt == 0)
        m.drainedAt = sys.simulation().now();

    // Let in-flight TX completions settle for latency accounting.
    sys.runFor(100 * sim::oneUs);

    m.totals = sys.totals();
    m.p50 = sys.nf(0).latency.p50();
    m.p99 = sys.nf(0).latency.p99();
    if (sys.antagonist())
        m.antagonistTpa = sys.antagonist()->ticksPerAccess();
    if (!opts.tracePath.empty())
        harness::writeTraceArtifacts(opts.tracePath, sys);
    return m;
}

/** Cold single-burst run (the common case). */
inline RunMetrics
runSingleBurst(const harness::ExperimentConfig &config,
               sim::Tick limit = 50 * sim::oneMs,
               const std::string &tracePath = {})
{
    BurstRunOptions opts;
    opts.limit = limit;
    opts.tracePath = tracePath;
    return runSingleBurst(config, opts);
}

/**
 * Run the shared warm-up of a single-burst experiment under
 * @p config and checkpoint in memory at @p warmTick (a quantum
 * multiple strictly before the drain point). The returned state can
 * fork any config that behaves identically to @p config up to
 * @p warmTick — for a threshold sweep, any sibling whose decisions
 * only diverge once the measured rates cross between thresholds.
 */
inline WarmState
captureWarmState(const harness::ExperimentConfig &config,
                 sim::Tick warmTick = warmStartTick)
{
    SIM_ASSERT(warmTick % burstQuantum == 0,
               "warmTick must be a multiple of the burst quantum");

    harness::ExperimentConfig cfg = config;
    cfg.traffic = harness::TrafficKind::Bursty;
    cfg.burstPeriod = 10 * sim::oneSec;

    harness::TestSystem sys(cfg);
    sys.start();

    WarmState w;
    while (sys.simulation().now() < warmTick) {
        sys.runFor(burstQuantum);
        const auto t = sys.totals();
        if (!w.sawFirst && t.rxPackets > 0) {
            w.sawFirst = true;
            w.firstArrival = sys.simulation().now() - burstQuantum;
        }
    }
    w.tick = sys.simulation().now();
    w.blob = sys.checkpoint();
    return w;
}

/**
 * Honour --trace=FILE: re-run @p cfg serially with event tracing on
 * and write the trace + totals sidecar. Kept separate from the sweep
 * so the measured (and possibly parallel) runs stay untraced.
 */
inline void
maybeTraceRun(const BenchOptions &opts,
              const harness::ExperimentConfig &cfg,
              sim::Tick limit = 50 * sim::oneMs)
{
    if (opts.tracePath.empty())
        return;
    runSingleBurst(cfg, limit, opts.tracePath);
    std::printf("# trace written to %s (+ .totals.json sidecar)\n",
                opts.tracePath.c_str());
}

/** Run a fixed duration (steady experiments). */
inline RunMetrics
runFor(const harness::ExperimentConfig &cfg, sim::Tick duration)
{
    harness::TestSystem sys(cfg);
    sys.start();
    sys.runFor(duration);

    RunMetrics m;
    m.totals = sys.totals();
    m.drainedAt = duration;
    m.p50 = sys.nf(0).latency.p50();
    m.p99 = sys.nf(0).latency.p99();
    if (sys.antagonist())
        m.antagonistTpa = sys.antagonist()->ticksPerAccess();
    return m;
}

/**
 * One labelled experiment of a sweep: the config plus the caller's
 * row identity, carried through SweepRunner so printing can happen
 * after the parallel phase without re-deriving loop state.
 */
struct SweepCase
{
    std::string label;
    harness::ExperimentConfig cfg;
};

/** Honour --seed=N: override the seed of every sweep case. */
inline void
applySeed(std::vector<SweepCase> &cases, const BenchOptions &opts)
{
    if (!opts.seed)
        return;
    for (auto &c : cases)
        c.cfg.seed = *opts.seed;
}

/**
 * Apply every per-case option override (--seed and the
 * --cores/--rx-queues/--sharded-jobs topology) to a sweep's cases.
 */
inline void
applyCaseOptions(std::vector<SweepCase> &cases,
                 const BenchOptions &opts)
{
    applySeed(cases, opts);
    for (auto &c : cases)
        applyTopology(c.cfg, opts);
}

/**
 * Run every case through @p fn on @p jobs threads (SweepRunner) and
 * return metrics in case order.
 */
template <typename Fn>
inline std::vector<RunMetrics>
runSweep(const std::vector<SweepCase> &cases, unsigned jobs, Fn &&fn)
{
    harness::SweepRunner runner(jobs);
    return runner.map(cases, [&](const SweepCase &c) {
        return fn(c.cfg);
    });
}

/** runSweep with the default single-burst measurement. */
inline std::vector<RunMetrics>
runSweepSingleBurst(const std::vector<SweepCase> &cases, unsigned jobs)
{
    return runSweep(cases, jobs, [](const harness::ExperimentConfig &c) {
        return runSingleBurst(c);
    });
}

/**
 * Single-burst sweep honouring the checkpoint/restore/seed options:
 * --seed applies to every case (mutating them, so the caller's JSON
 * rows echo the applied seed); --checkpoint / --restore act on the
 * FIRST case (saving is observationally pure, so measured results
 * are unchanged).
 */
inline std::vector<RunMetrics>
runSweepSingleBurst(std::vector<SweepCase> &cases,
                    const BenchOptions &opts)
{
    applyCaseOptions(cases, opts);
    harness::SweepRunner runner(opts.jobs);
    const SweepCase *first = cases.data();
    return runner.map(cases, [&](const SweepCase &c) {
        BurstRunOptions ro;
        if (&c == first) {
            ro.checkpointPath = opts.checkpointPath;
            ro.restorePath = opts.restorePath;
        }
        return runSingleBurst(c.cfg, ro);
    });
}

/**
 * Warm-start fork sweep: every case resumes from @p warm (captured
 * once with captureWarmState) and runs to completion, in parallel.
 * For configs whose behaviour matches the warm-up config up to the
 * warm tick, each result is bit-identical to a cold run of that case.
 */
inline std::vector<RunMetrics>
runSweepWarmFork(const std::vector<SweepCase> &cases,
                 const BenchOptions &opts, const WarmState &warm,
                 sim::Tick limit = 50 * sim::oneMs)
{
    harness::SweepRunner runner(opts.jobs);
    return runner.map(cases, [&](const SweepCase &c) {
        BurstRunOptions ro;
        ro.limit = limit;
        ro.warm = &warm;
        return runSingleBurst(c.cfg, ro);
    });
}

/**
 * Optional JSON sidecar for a bench run: one object with the bench
 * name, the job count, and an array of per-case metric rows. Inactive
 * (all no-ops) when the path is empty.
 */
class JsonReport
{
  public:
    JsonReport(const std::string &path, const std::string &benchName,
               unsigned jobs)
    {
        if (path.empty())
            return;
        ofs.open(path);
        if (!ofs)
            sim::fatal("cannot open JSON output file '%s'",
                       path.c_str());
        writer = std::make_unique<stats::JsonWriter>(ofs);
        writer->beginObject();
        writer->field("bench", benchName);
        writer->field("jobs", jobs);
        writer->beginArray("rows");
    }

    ~JsonReport()
    {
        if (!writer)
            return;
        writer->end(); // rows
        writer->end(); // top-level object
        ofs << "\n";
    }

    /** Append one measured row. */
    void
    row(const SweepCase &c, const RunMetrics &m)
    {
        if (!writer)
            return;
        stats::JsonWriter &w = *writer;
        w.beginObject();
        w.field("label", c.label);
        w.field("rateGbps", c.cfg.rateGbps);
        w.field("seed", c.cfg.seed);
        w.field("mlcWB", m.totals.mlcWritebacks);
        w.field("nfMlcWB", m.totals.nfMlcWritebacks);
        w.field("mlcPcieInvals", m.totals.mlcPcieInvals);
        w.field("llcWB", m.totals.llcWritebacks);
        w.field("dramRd", m.totals.dramReads);
        w.field("dramWr", m.totals.dramWrites);
        w.field("rxPackets", m.totals.rxPackets);
        w.field("rxDrops", m.totals.rxDrops);
        w.field("processedPackets", m.totals.processedPackets);
        w.field("execTimeUs", sim::ticksToUs(m.execTime()));
        w.field("p50Us", sim::ticksToUs(m.p50));
        w.field("p99Us", sim::ticksToUs(m.p99));
        w.field("antagonistTpa", m.antagonistTpa);
        w.end();
    }

    explicit operator bool() const { return writer != nullptr; }

  private:
    std::ofstream ofs;
    std::unique_ptr<stats::JsonWriter> writer;
};

/** "x.xx" ratio of two counters, "-" when the base is zero. */
inline std::string
ratio(std::uint64_t ours, std::uint64_t base, int precision = 2)
{
    if (base == 0)
        return ours == 0 ? "0.00" : "inf";
    return stats::TablePrinter::num(
        static_cast<double>(ours) / static_cast<double>(base),
        precision);
}

/** Print the Table I configuration echo every bench starts with. */
inline void
printConfigEcho(const harness::ExperimentConfig &cfg)
{
    std::printf("# Table I config: %u-core aarch64-class @ %.1f GHz, "
                "L1D %lluKB/%u, MLC %lluKB/%u, LLC %lluKB/%u "
                "(%u DDIO ways), DDR4 %.0fGB/s\n",
                cfg.hier.numCores, cfg.hier.cpuFreqGHz,
                (unsigned long long)cfg.hier.l1.sizeBytes / 1024,
                cfg.hier.l1.assoc,
                (unsigned long long)cfg.hier.mlc.sizeBytes / 1024,
                cfg.hier.mlc.assoc,
                (unsigned long long)cfg.hier.llcSizeBytes() / 1024,
                cfg.hier.llcPerCore.assoc, cfg.hier.ddioWays,
                cfg.hier.dramBandwidthGBps);
    std::printf("# workload: %s\n\n", cfg.summary().c_str());
}

} // namespace bench

#endif // IDIO_BENCH_COMMON_HH
