/**
 * @file
 * Ablation: number of DDIO ways.
 *
 * The paper's premise (Sec. I) is that the DDIO way partition (2 of
 * 11 ways on Skylake) is precious shared space: giving DMA more ways
 * absorbs bursts but steals LLC from applications. This sweep
 * quantifies that trade-off on our model: DMA leak (LLC writebacks
 * during the burst) vs. the co-running antagonist's memory
 * performance, for the DDIO baseline and for IDIO (which should make
 * the system largely insensitive to the partition size).
 */

#include <iostream>

#include "common.hh"

namespace
{

harness::ExperimentConfig
config(idio::Policy policy, std::uint32_t ddioWays)
{
    harness::ExperimentConfig cfg;
    cfg.numNfs = 2;
    cfg.nfKind = harness::NfKind::TouchDrop;
    cfg.rateGbps = 100.0;
    cfg.withAntagonist = true;
    cfg.hier.ddioWays = ddioWays;
    cfg.applyPolicy(policy);
    return cfg;
}

} // anonymous namespace

int
main()
{
    std::printf("=== Ablation: DDIO way count (100 Gbps bursts, "
                "co-running LLCAntagonist) ===\n");
    bench::printConfigEcho(config(idio::Policy::Ddio, 2));

    stats::TablePrinter table({"ddioWays", "config", "llcWB",
                               "dramWr", "exec ms", "antag ns/access"});
    for (std::uint32_t ways : {1u, 2u, 4u, 6u, 8u}) {
        for (auto policy : {idio::Policy::Ddio, idio::Policy::Idio}) {
            const auto m = bench::runSingleBurst(config(policy, ways));
            table.addRow(
                {std::to_string(ways), idio::policyName(policy),
                 std::to_string(m.totals.llcWritebacks),
                 std::to_string(m.totals.dramWrites),
                 stats::TablePrinter::num(
                     sim::ticksToSeconds(m.execTime()) * 1e3, 3),
                 stats::TablePrinter::num(
                     m.antagonistTpa / double(sim::oneNs), 2)});
        }
    }
    table.print(std::cout);

    std::printf("\nShape check: DDIO's DMA leak shrinks with more "
                "ways while the antagonist suffers more LLC loss; "
                "IDIO's numbers stay roughly flat across the sweep "
                "(the MLC absorbs inbound data instead).\n");
    return 0;
}
