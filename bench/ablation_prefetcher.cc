/**
 * @file
 * Ablation: the paper's simple queued MLC prefetcher vs. the
 * CPU-paced prefetcher the paper proposes as future work ("a more
 * sophisticated prefetcher that follows the CPU pointer in the ring
 * buffer to regulate the MLC prefetching rate will likely provide
 * more benefit", Sec. VII).
 *
 * The CPU-paced variant stalls issuing while more than a window of
 * prefetched lines sit unconsumed in the MLC, so at high burst rates
 * it cannot thrash its own fills. Expected: at 100 Gbps it cuts MLC
 * writebacks below both Static and dynamic IDIO with the simple
 * prefetcher, without hurting burst processing time; at 25 Gbps all
 * variants are equivalent (consumption keeps up anyway).
 */

#include <iostream>

#include "common.hh"

namespace
{

harness::ExperimentConfig
config(double gbps, idio::PrefetcherKind kind, std::uint32_t window,
       bool dynamicFsm)
{
    harness::ExperimentConfig cfg;
    cfg.numNfs = 2;
    cfg.nfKind = harness::NfKind::TouchDrop;
    cfg.rateGbps = gbps;
    cfg.applyPolicy(dynamicFsm ? idio::Policy::Idio
                               : idio::Policy::Static);
    cfg.idio.prefetcher = kind;
    cfg.idio.prefetchWindowLines = window;
    return cfg;
}

} // anonymous namespace

int
main()
{
    std::printf("=== Ablation: simple queued vs CPU-paced MLC "
                "prefetcher ===\n");
    bench::printConfigEcho(
        config(100.0, idio::PrefetcherKind::SimpleQueue, 0, true));

    for (double gbps : {100.0, 25.0}) {
        std::printf("--- burst rate %.0f Gbps ---\n", gbps);
        const auto base = bench::runSingleBurst(
            config(gbps, idio::PrefetcherKind::SimpleQueue, 0, true));

        stats::TablePrinter table({"prefetcher", "fsm", "mlcWB",
                                   "llcWB", "dramWr", "exec ms",
                                   "p99 us"});
        auto row = [&](const char *name, const bench::RunMetrics &m,
                       const char *fsm) {
            table.addRow(
                {name, fsm, std::to_string(m.totals.mlcWritebacks),
                 std::to_string(m.totals.llcWritebacks),
                 std::to_string(m.totals.dramWrites),
                 stats::TablePrinter::num(
                     sim::ticksToSeconds(m.execTime()) * 1e3, 3),
                 stats::TablePrinter::num(sim::ticksToUs(m.p99), 1)});
        };

        row("simple(32q)", base, "dynamic");
        row("simple(32q)",
            bench::runSingleBurst(config(
                gbps, idio::PrefetcherKind::SimpleQueue, 0, false)),
            "static");
        for (std::uint32_t window : {2048u, 4096u, 8192u}) {
            const auto m = bench::runSingleBurst(config(
                gbps, idio::PrefetcherKind::CpuPaced, window, true));
            row(("cpu-paced(w=" + std::to_string(window) + ")")
                    .c_str(),
                m, "dynamic");
        }
        table.print(std::cout);
        std::printf("\n");
    }

    std::printf(
        "Reading: pacing eliminates prefetch-induced MLC writebacks "
        "entirely (the thrash the FSM only dampens), but at 100 Gbps "
        "the withheld lines leak from the DDIO ways instead — the "
        "window choice trades MLC churn against DMA leak. A window "
        "of half the MLC recovers the simple prefetcher's burst time "
        "at medium rates with zero MLC writebacks.\n");
    return 0;
}
