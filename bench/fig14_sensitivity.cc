/**
 * @file
 * Reproduces paper Figure 14: sensitivity of IDIO to the mlcTHR
 * threshold, sweeping 10..100 MTPS at the 100 Gbps burst rate (the
 * rate where sensitivity is largest).
 *
 * Expected shape: IDIO's improvements over DDIO hold across the whole
 * sweep — the mechanism is not brittle in its only tunable.
 */

#include <iostream>

#include "common.hh"

namespace
{

harness::ExperimentConfig
fig14Config(idio::Policy policy, double mlcThr)
{
    harness::ExperimentConfig cfg;
    cfg.numNfs = 2;
    cfg.nfKind = harness::NfKind::TouchDrop;
    cfg.rateGbps = 100.0;
    cfg.applyPolicy(policy);
    cfg.idio.mlcThrMtps = mlcThr;
    return cfg;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::parseBenchOptions(argc, argv);

    std::printf("=== Figure 14: IDIO sensitivity to mlcTHR "
                "(100 Gbps bursts) ===\n");
    bench::printConfigEcho(fig14Config(idio::Policy::Idio, 50.0));

    // Case 0 is the DDIO baseline; the rest sweep the threshold.
    std::vector<bench::SweepCase> cases;
    cases.push_back({"ddio", fig14Config(idio::Policy::Ddio, 50.0)});
    const auto thresholds = {10.0, 25.0, 50.0, 75.0, 100.0};
    for (double thr : thresholds) {
        cases.push_back({"idio thr=" + stats::TablePrinter::num(thr, 0),
                         fig14Config(idio::Policy::Idio, thr)});
    }

    std::vector<bench::RunMetrics> results;
    if (opts.warmStart) {
        // The thr family shares one warm-up: the threshold only
        // matters once the measured writeback rate falls between two
        // swept values, which happens well after the burst head — so
        // every fork is bit-identical to its cold run. The DDIO
        // baseline is a different policy and runs cold.
        bench::applyCaseOptions(cases, opts);
        std::printf("# warm-start: thr family forked from one "
                    "%llu us warm-up\n\n",
                    (unsigned long long)sim::ticksToUs(
                        bench::warmStartTick));
        results.push_back(bench::runSingleBurst(cases[0].cfg));
        const auto warm = bench::captureWarmState(cases[1].cfg);
        const std::vector<bench::SweepCase> thrCases(
            cases.begin() + 1, cases.end());
        const auto forked =
            bench::runSweepWarmFork(thrCases, opts, warm);
        results.insert(results.end(), forked.begin(), forked.end());
    } else {
        results = bench::runSweepSingleBurst(cases, opts);
    }
    bench::JsonReport report(opts.jsonPath, "fig14", opts.jobs);
    for (std::size_t i = 0; i < cases.size(); ++i)
        report.row(cases[i], results[i]);

    const auto &base = results[0];

    stats::TablePrinter table({"mlcTHR (MTPS)", "mlcWB", "llcWB",
                               "dramRd", "dramWr", "exeTime"});
    std::size_t i = 1;
    for (double thr : thresholds) {
        const auto &m = results[i++];
        table.addRow({stats::TablePrinter::num(thr, 0),
                      bench::ratio(m.totals.mlcWritebacks,
                                   base.totals.mlcWritebacks),
                      bench::ratio(m.totals.llcWritebacks,
                                   base.totals.llcWritebacks),
                      bench::ratio(m.totals.dramReads,
                                   base.totals.dramReads),
                      bench::ratio(m.totals.dramWrites,
                                   base.totals.dramWrites),
                      bench::ratio(m.execTime(), base.execTime())});
    }
    table.print(std::cout);

    std::printf("\nAll values normalised to DDIO at the same rate. "
                "Shape check vs. paper: every column stays below 1.0 "
                "and varies only mildly across the sweep.\n");
    bench::maybeTraceRun(opts, cases.front().cfg);

    return 0;
}
