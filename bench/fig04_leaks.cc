/**
 * @file
 * Reproduces paper Figure 4: MLC and DRAM leaks at various load
 * levels and DMA ring buffer sizes.
 *
 * 10 TouchDrop instances receive steady traffic at low (8 Mbps),
 * medium (1 Gbps), and high (20 Gbps) per-NF rates with ring sizes 64,
 * 1024, and 2048. Reported, as in the paper:
 *   - MLC writeback rate normalised to RX network bandwidth,
 *   - MLC invalidation (by PCIe writes) rate normalised to RX BW,
 *   - DRAM read/write bandwidth (GB/s),
 * plus the `*_1way` configurations (all NF cores restricted to a
 * single LLC way via CAT-style masks) that expose DMA bloating.
 *
 * Expected shape (paper Sec. III):
 *   - ring 64: low normalised MLC WB, high MLC invalidation rate;
 *   - ring 1024/2048: MLC WB rate >~ 1x RX BW at every load level;
 *   - negligible LLC writebacks in unrestricted runs (DMA bloating
 *     absorbs the buffers in the large aggregate cache space);
 *   - `*_1way` at high load: much larger DRAM write bandwidth.
 */

#include <iostream>

#include "common.hh"

namespace
{

struct Load
{
    const char *name;
    double gbps; // per NF
    sim::Tick duration;
    double idlePollGapNs;
};

harness::ExperimentConfig
fig4Config(std::uint32_t ring, const Load &load, bool oneWay)
{
    harness::ExperimentConfig cfg;
    cfg.numNfs = 10;
    cfg.nfKind = harness::NfKind::TouchDrop;
    cfg.traffic = harness::TrafficKind::Steady;
    cfg.rateGbps = load.gbps;
    cfg.nic.ringSize = ring;
    cfg.applyPolicy(idio::Policy::Ddio);

    // Fig. 4 reproduces the paper's *physical* Xeon Gold measurements
    // (Sec. III), not the gem5 setup: real cores sustain 20 Gbps of
    // MTU TouchDrop easily and the chip has a ~22 MB LLC. Calibrate
    // the core model up and size the LLC accordingly (2.25 MB/core
    // x 10 cores = 22.5 MB).
    cfg.nf.perLineCostNs = 2.0;
    cfg.nf.perPacketCostNs = 50.0;
    cfg.nf.idlePollGapNs = load.idlePollGapNs;
    cfg.hier.llcPerCore.sizeBytes = 2359296; // 2.25 MB

    if (oneWay) {
        // Pin every NF core's CPU-side LLC allocations to one way.
        cfg.hier.llcAllocMask.assign(cfg.numNfs, 0b100);
    }
    return cfg;
}

} // anonymous namespace

int
main()
{
    std::printf("=== Figure 4: MLC and DRAM leaks vs. load and ring "
                "size (10x TouchDrop, DDIO baseline) ===\n");
    bench::printConfigEcho(
        fig4Config(1024, {"high", 20.0, 0, 100.0}, false));

    // The paper's low level is 8 Mbps; a full FIFO cycle of the
    // 1024-buffer pool at 8 Mbps needs seconds of simulated time, so
    // we use 100 Mbps — equally "low" (<1% utilisation) with the same
    // steady-state recycling behaviour.
    const Load loads[] = {
        {"low(100Mbps)", 0.1, 500 * sim::oneMs, 1000.0},
        {"med(1Gbps)", 1.0, 60 * sim::oneMs, 1000.0},
        {"high(20Gbps)", 20.0, 8 * sim::oneMs, 100.0},
    };
    const std::uint32_t rings[] = {64, 1024, 2048};

    stats::TablePrinter table({"config", "load", "mlcWB/rxBW",
                               "mlcInval/rxBW", "dramRd GB/s",
                               "dramWr GB/s", "llcWB/rxBW"});

    auto addRow = [&](const std::string &name, const Load &load,
                      std::uint32_t ring, bool oneWay) {
        const auto cfg = fig4Config(ring, load, oneWay);
        const auto m = bench::runFor(cfg, load.duration);

        const double rxBytes =
            std::max(1.0, static_cast<double>(m.totals.rxPackets -
                                              m.totals.rxDrops) *
                              1514.0);
        const double secs = sim::ticksToSeconds(load.duration);
        auto norm = [&](std::uint64_t transactions) {
            return stats::TablePrinter::num(
                static_cast<double>(transactions) * 64.0 / rxBytes, 2);
        };

        table.addRow(
            {name, load.name, norm(m.totals.mlcWritebacks),
             norm(m.totals.mlcPcieInvals),
             stats::TablePrinter::num(
                 double(m.totals.dramReads) * 64.0 / secs / 1e9, 2),
             stats::TablePrinter::num(
                 double(m.totals.dramWrites) * 64.0 / secs / 1e9, 2),
             norm(m.totals.llcWritebacks)});
    };

    for (auto ring : rings) {
        const std::string name = "ring" + std::to_string(ring);
        for (const auto &load : loads)
            addRow(name, load, ring, false);
    }
    // DMA-bloating exposure: 1-way CAT masks at high load.
    for (auto ring : {1024u, 2048u}) {
        addRow("ring" + std::to_string(ring) + "_1way", loads[2], ring,
               true);
    }

    table.print(std::cout);
    std::printf("\nShape check vs. paper: ring64 rows should show low "
                "mlcWB and high mlcInval; ring1024/2048 rows mlcWB "
                ">~1x at every load; *_1way rows much higher DRAM "
                "write bandwidth.\n");
    return 0;
}
