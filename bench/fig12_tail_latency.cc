/**
 * @file
 * Reproduces paper Figure 12: 50th and 99th percentile per-packet
 * latency of TouchDrop (1514 B, ring 1024) under DDIO and IDIO,
 * running solo and co-running with LLCAntagonist, at 100/25/10 Gbps
 * burst rates. All values normalised to the DDIO solo run at the
 * same rate.
 *
 * Paper reference points: IDIO reduces p99 by 7.9%/30.5%/10.9%
 * (solo) and 6.1%/32.0%/8.2% (co-run) at 100/25/10 Gbps.
 */

#include <iostream>

#include "common.hh"

namespace
{

harness::ExperimentConfig
fig12Config(idio::Policy policy, double gbps, bool antagonist)
{
    harness::ExperimentConfig cfg;
    cfg.numNfs = 2;
    cfg.nfKind = harness::NfKind::TouchDrop;
    cfg.traffic = harness::TrafficKind::Bursty;
    cfg.rateGbps = gbps;
    cfg.withAntagonist = antagonist;
    cfg.applyPolicy(policy);
    return cfg;
}

/** Four burst periods; NF 0's distribution represents both NFs. */
bench::RunMetrics
measure(const harness::ExperimentConfig &cfg)
{
    return bench::runFor(cfg, 40 * sim::oneMs);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::parseBenchOptions(argc, argv);

    std::printf("=== Figure 12: p50/p99 latency, normalised to DDIO "
                "solo ===\n");
    bench::printConfigEcho(fig12Config(idio::Policy::Ddio, 25.0,
                                       false));

    const auto rates = {100.0, 25.0, 10.0};

    std::vector<bench::SweepCase> cases;
    for (double gbps : rates) {
        for (bool antagonist : {false, true}) {
            for (auto policy :
                 {idio::Policy::Ddio, idio::Policy::Idio}) {
                cases.push_back(
                    {stats::TablePrinter::num(gbps, 0) + "G " +
                         (antagonist ? "co-run " : "solo ") +
                         idio::policyName(policy),
                     fig12Config(policy, gbps, antagonist)});
            }
        }
    }

    bench::applyCaseOptions(cases, opts);
    const auto results = bench::runSweep(cases, opts.jobs, measure);
    bench::JsonReport report(opts.jsonPath, "fig12", opts.jobs);
    for (std::size_t i = 0; i < cases.size(); ++i)
        report.row(cases[i], results[i]);

    stats::TablePrinter table({"rate", "scenario", "config",
                               "p50 (norm)", "p99 (norm)", "p50 us",
                               "p99 us"});

    std::size_t i = 0;
    for (double gbps : rates) {
        const auto &base = results[i]; // DDIO solo of this rate
        for (bool antagonist : {false, true}) {
            for (auto policy :
                 {idio::Policy::Ddio, idio::Policy::Idio}) {
                const auto &m = results[i++];
                if (policy == idio::Policy::Ddio && !antagonist) {
                    table.addRow(
                        {stats::TablePrinter::num(gbps, 0) + "G",
                         "solo", "DDIO", "1.00", "1.00",
                         stats::TablePrinter::num(
                             sim::ticksToUs(base.p50), 1),
                         stats::TablePrinter::num(
                             sim::ticksToUs(base.p99), 1)});
                    continue;
                }
                table.addRow(
                    {stats::TablePrinter::num(gbps, 0) + "G",
                     antagonist ? "co-run" : "solo",
                     idio::policyName(policy),
                     bench::ratio(m.p50, base.p50),
                     bench::ratio(m.p99, base.p99),
                     stats::TablePrinter::num(sim::ticksToUs(m.p50),
                                              1),
                     stats::TablePrinter::num(sim::ticksToUs(m.p99),
                                              1)});
            }
        }
    }

    table.print(std::cout);
    std::printf("\nShape check vs. paper: IDIO p99 < DDIO p99 in "
                "every scenario, with the largest reduction at "
                "25 Gbps; co-running inflates DDIO's tail more than "
                "IDIO's.\n");
    bench::maybeTraceRun(opts, cases.front().cfg);

    return 0;
}
