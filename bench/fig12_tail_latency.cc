/**
 * @file
 * Reproduces paper Figure 12: 50th and 99th percentile per-packet
 * latency of TouchDrop (1514 B, ring 1024) under DDIO and IDIO,
 * running solo and co-running with LLCAntagonist, at 100/25/10 Gbps
 * burst rates. All values normalised to the DDIO solo run at the
 * same rate.
 *
 * Paper reference points: IDIO reduces p99 by 7.9%/30.5%/10.9%
 * (solo) and 6.1%/32.0%/8.2% (co-run) at 100/25/10 Gbps.
 */

#include <iostream>

#include "common.hh"

namespace
{

harness::ExperimentConfig
fig12Config(idio::Policy policy, double gbps, bool antagonist)
{
    harness::ExperimentConfig cfg;
    cfg.numNfs = 2;
    cfg.nfKind = harness::NfKind::TouchDrop;
    cfg.traffic = harness::TrafficKind::Bursty;
    cfg.rateGbps = gbps;
    cfg.withAntagonist = antagonist;
    cfg.applyPolicy(policy);
    return cfg;
}

struct LatencyPair
{
    std::uint64_t p50;
    std::uint64_t p99;
};

LatencyPair
measure(idio::Policy policy, double gbps, bool antagonist)
{
    harness::TestSystem sys(fig12Config(policy, gbps, antagonist));
    sys.start();
    sys.runFor(40 * sim::oneMs); // four burst periods

    // The two NFs are symmetric and the run is deterministic; NF 0's
    // distribution represents both.
    return {sys.nf(0).latency.p50(), sys.nf(0).latency.p99()};
}

} // anonymous namespace

int
main()
{
    std::printf("=== Figure 12: p50/p99 latency, normalised to DDIO "
                "solo ===\n");
    bench::printConfigEcho(fig12Config(idio::Policy::Ddio, 25.0,
                                       false));

    stats::TablePrinter table({"rate", "scenario", "config",
                               "p50 (norm)", "p99 (norm)", "p50 us",
                               "p99 us"});

    for (double gbps : {100.0, 25.0, 10.0}) {
        const auto base = measure(idio::Policy::Ddio, gbps, false);
        for (bool antagonist : {false, true}) {
            for (auto policy :
                 {idio::Policy::Ddio, idio::Policy::Idio}) {
                if (policy == idio::Policy::Ddio && !antagonist) {
                    table.addRow(
                        {stats::TablePrinter::num(gbps, 0) + "G",
                         "solo", "DDIO", "1.00", "1.00",
                         stats::TablePrinter::num(
                             sim::ticksToUs(base.p50), 1),
                         stats::TablePrinter::num(
                             sim::ticksToUs(base.p99), 1)});
                    continue;
                }
                const auto m = measure(policy, gbps, antagonist);
                table.addRow(
                    {stats::TablePrinter::num(gbps, 0) + "G",
                     antagonist ? "co-run" : "solo",
                     idio::policyName(policy),
                     bench::ratio(m.p50, base.p50),
                     bench::ratio(m.p99, base.p99),
                     stats::TablePrinter::num(sim::ticksToUs(m.p50),
                                              1),
                     stats::TablePrinter::num(sim::ticksToUs(m.p99),
                                              1)});
            }
        }
    }

    table.print(std::cout);
    std::printf("\nShape check vs. paper: IDIO p99 < DDIO p99 in "
                "every scenario, with the largest reduction at "
                "25 Gbps; co-running inflates DDIO's tail more than "
                "IDIO's.\n");
    return 0;
}
