/**
 * @file
 * Ablation: cache replacement policy.
 *
 * The paper's mechanisms are replacement-agnostic; this ablation
 * verifies that on our model: the DDIO dead-buffer problem and IDIO's
 * fix persist under LRU, SRRIP and random replacement in every level.
 */

#include <iostream>

#include "common.hh"

namespace
{

harness::ExperimentConfig
config(idio::Policy policy, const std::string &replacement)
{
    harness::ExperimentConfig cfg;
    cfg.numNfs = 2;
    cfg.nfKind = harness::NfKind::TouchDrop;
    cfg.rateGbps = 25.0;
    cfg.hier.replacement = replacement;
    cfg.applyPolicy(policy);
    return cfg;
}

} // anonymous namespace

int
main()
{
    std::printf("=== Ablation: replacement policy (25 Gbps bursts) "
                "===\n");
    bench::printConfigEcho(config(idio::Policy::Ddio, "lru"));

    stats::TablePrinter table({"replacement", "config", "mlcWB",
                               "llcWB", "dramWr", "exec ms"});
    for (const char *repl : {"lru", "srrip", "random"}) {
        for (auto policy : {idio::Policy::Ddio, idio::Policy::Idio}) {
            const auto m =
                bench::runSingleBurst(config(policy, repl));
            table.addRow(
                {repl, idio::policyName(policy),
                 std::to_string(m.totals.mlcWritebacks),
                 std::to_string(m.totals.llcWritebacks),
                 std::to_string(m.totals.dramWrites),
                 stats::TablePrinter::num(
                     sim::ticksToSeconds(m.execTime()) * 1e3, 3)});
        }
    }
    table.print(std::cout);

    std::printf("\nShape check: under every replacement policy, DDIO "
                "shows heavy writebacks and IDIO removes them — the "
                "paper's mechanisms do not depend on the replacement "
                "heuristic.\n");
    return 0;
}
