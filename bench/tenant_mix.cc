/**
 * @file
 * Noisy-neighbor tenant mix: per-tenant throughput and tail latency
 * under LLC-sharing pressure, for three LLC management schemes on
 * the identical scenario and seed:
 *
 *   ddio  — plain DDIO, all tenants share the non-I/O ways.
 *   idio  — IDIO's adaptive I/O policy, still no tenant isolation.
 *   ioca  — DDIO plus CAT way partitioning driven by the IOCA-style
 *           adaptive controller (tenant::IocaController).
 *
 * The scenario is a three-tenant mix exercising every SLO class:
 *
 *   rpc   — latency-critical, 1 core, steady 10 Gbps TouchDrop (an
 *           RPC-like NF whose p99/p99.9 is the headline metric).
 *   batch — throughput class, 2 cores, bursty 100 Gbps TouchDrop;
 *           departs at 300 us (tenant churn — the controller must
 *           re-converge after its load disappears).
 *   antag — best-effort antagonist tenant: one aggressor core running
 *           an LLC-thrashing scan (nf::LlcAntagonist) and no NF.
 *
 * The run is a fixed 600 us horizon stepped in 10 us quanta, so every
 * scheme sees the identical packet arrivals and the output JSON is
 *bit-identical across repeated runs, --sharded-jobs worker counts and
 * a mid-burst checkpoint/restore (the CI tenant job relies on this —
 * keep host-dependent fields out of the JSON).
 */

#include <iostream>

#include "common.hh"
#include "tenant_scenario.hh"

namespace
{

constexpr sim::Tick horizon = bench::tenantHorizon;

using bench::tenantSchemes;

/** Everything one scheme run reports. */
struct MixRun
{
    std::vector<harness::TenantTotals> tenants;
    std::uint64_t reallocations = 0;
    std::uint64_t evaluations = 0;
};

/**
 * Fixed-horizon run. The FIRST scheme honours --trace, --checkpoint
 * and --restore; saving reads state only and the checkpoint tick is a
 * quantum multiple, so the reported numbers are unchanged.
 */
MixRun
runMix(const harness::ExperimentConfig &cfg,
       const bench::BenchOptions &opts, bool first)
{
    harness::TestSystem sys(cfg);
    const bool tracing = first && !opts.tracePath.empty();
    if (tracing) {
        // The antagonist's LLC thrashing makes the shared cache
        // source far hotter than a plain burst run; size the ring so
        // trace_summary.py's exact cross-check sees zero truncation.
        harness::enableTracing(sys, 1u << 20);
    }
    sys.start();

    if (first && !opts.restorePath.empty()) {
        const bench::WarmState w =
            bench::loadWarmState(opts.restorePath);
        sys.restore(w.blob);
    }

    bool saved = !(first && !opts.checkpointPath.empty());
    while (sys.simulation().now() < horizon) {
        sys.runFor(bench::burstQuantum);
        if (!saved && sys.simulation().now() >= bench::warmStartTick) {
            saved = true;
            bench::WarmState w;
            w.tick = sys.simulation().now();
            w.blob = sys.checkpoint();
            bench::saveWarmState(opts.checkpointPath, w);
        }
    }

    MixRun r;
    r.tenants = sys.tenantTotals();
    if (sys.iocaController()) {
        r.reallocations = sys.iocaController()->reallocations.get();
        r.evaluations = sys.iocaController()->evaluations.get();
    }
    if (tracing)
        harness::writeTraceArtifacts(opts.tracePath, sys);
    return r;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::parseBenchOptions(argc, argv);
    if (opts.cores || opts.rxQueues || opts.linkPcieNs > 0.0 ||
        opts.linkMeshNs > 0.0) {
        std::fprintf(stderr,
                     "tenant_mix: --cores/--rx-queues/--link-*-ns are "
                     "incompatible with the tenant layout\n");
        return 2;
    }

    std::printf("=== Tenant mix: noisy-neighbor isolation, "
                "%zu schemes on one scenario ===\n",
                std::size(tenantSchemes));
    bench::printConfigEcho(bench::tenantMixConfig(tenantSchemes[0]));

    std::vector<harness::ExperimentConfig> cfgs;
    for (const bench::TenantScheme &s : tenantSchemes) {
        cfgs.push_back(bench::tenantMixConfig(s));
        if (opts.seed)
            cfgs.back().seed = *opts.seed;
        if (opts.shardedJobs) {
            cfgs.back().sharded = true;
            cfgs.back().shardJobs = opts.shardedJobs;
        }
    }

    std::vector<MixRun> runs;
    for (std::size_t i = 0; i < cfgs.size(); ++i)
        runs.push_back(runMix(cfgs[i], opts, i == 0));

    stats::TablePrinter table({"config", "tenant", "slo", "ways", "rx",
                               "drops", "processed", "p99 us",
                               "p99.9 us"});
    for (std::size_t i = 0; i < runs.size(); ++i) {
        for (std::size_t t = 0; t < runs[i].tenants.size(); ++t) {
            const harness::TenantTotals &tt = runs[i].tenants[t];
            const harness::TenantSpec &spec = cfgs[i].tenants[t];
            table.addRow(
                {tenantSchemes[i].label, tt.name,
                 tenant::sloClassName(spec.slo),
                 std::to_string(tt.ways),
                 std::to_string(tt.rxPackets),
                 std::to_string(tt.rxDrops),
                 std::to_string(tt.processedPackets),
                 stats::TablePrinter::num(sim::ticksToUs(tt.p99), 2),
                 stats::TablePrinter::num(sim::ticksToUs(tt.p999),
                                          2)});
        }
    }
    table.print(std::cout);

    for (std::size_t i = 0; i < runs.size(); ++i) {
        if (tenantSchemes[i].partition != harness::TenantPartition::Ioca)
            continue;
        std::printf("\n%s controller: %llu evaluations, %llu way "
                    "reallocations\n",
                    tenantSchemes[i].label,
                    (unsigned long long)runs[i].evaluations,
                    (unsigned long long)runs[i].reallocations);
    }

    // Machine-readable rows. Deliberately free of host-dependent
    // fields (job counts, timings): the CI tenant job byte-compares
    // this file across runs and --sharded-jobs worker counts.
    if (!opts.jsonPath.empty()) {
        std::ofstream ofs(opts.jsonPath);
        if (!ofs)
            sim::fatal("cannot open JSON output file '%s'",
                       opts.jsonPath.c_str());
        stats::JsonWriter w(ofs);
        w.beginObject();
        w.field("bench", "tenant_mix");
        w.field("horizonUs", sim::ticksToUs(horizon));
        w.field("seed", cfgs[0].seed);
        w.beginArray("configs");
        for (std::size_t i = 0; i < runs.size(); ++i) {
            w.beginObject();
            w.field("config", tenantSchemes[i].label);
            w.field("policy", idio::policyName(tenantSchemes[i].policy));
            w.field("partition",
                    harness::tenantPartitionName(
                        tenantSchemes[i].partition));
            w.field("evaluations", runs[i].evaluations);
            w.field("reallocations", runs[i].reallocations);
            w.beginArray("tenants");
            for (std::size_t t = 0; t < runs[i].tenants.size(); ++t) {
                const harness::TenantTotals &tt = runs[i].tenants[t];
                const harness::TenantSpec &spec = cfgs[i].tenants[t];
                w.beginObject();
                w.field("tenant", tt.name);
                w.field("slo", tenant::sloClassName(spec.slo));
                w.field("ways", tt.ways);
                w.field("rxPackets", tt.rxPackets);
                w.field("rxDrops", tt.rxDrops);
                w.field("processedPackets", tt.processedPackets);
                w.field("mlcWritebacks", tt.mlcWritebacks);
                w.field("p50Us", sim::ticksToUs(tt.p50));
                w.field("p99Us", sim::ticksToUs(tt.p99));
                w.field("p999Us", sim::ticksToUs(tt.p999));
                w.end();
            }
            w.end(); // tenants
            w.end(); // config object
        }
        w.end(); // configs
        w.end(); // top-level
        ofs << "\n";
        std::printf("\n# JSON rows written to %s\n",
                    opts.jsonPath.c_str());
    }

    return 0;
}
