/**
 * @file
 * Reproduces paper Figure 9: MLC/LLC writeback behaviour of the five
 * configurations (DDIO, Invalidate, Prefetch, Static, IDIO) while
 * processing one burst at 100 Gbps and 25 Gbps.
 *
 * The paper plots 10 us-sampled rate timelines per configuration; we
 * report, for each configuration and rate, the totals over the burst,
 * the peak rates, and the burst processing time, which together
 * capture the figure's content. Full CSV timelines can be produced
 * via bench/fig05-style instrumentation if desired.
 *
 * Expected shape (paper Sec. VII):
 *   - Invalidate: MLC WBs ~eliminated at all rates;
 *   - Prefetch: execution phase shortened, LLC pressure reduced, but
 *     MLC WBs remain (no invalidation);
 *   - Static == IDIO at 25 Gbps;
 *   - IDIO regulates the MLC WB rate below Static's at 100 Gbps.
 */

#include <iostream>

#include "common.hh"

namespace
{

harness::ExperimentConfig
fig9Config(idio::Policy policy, double gbps)
{
    harness::ExperimentConfig cfg;
    cfg.numNfs = 2;
    cfg.nfKind = harness::NfKind::TouchDrop;
    cfg.rateGbps = gbps;
    cfg.applyPolicy(policy);
    return cfg;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::parseBenchOptions(argc, argv);

    std::printf("=== Figure 9: policy comparison over one burst "
                "(2x TouchDrop, ring 1024, 1514 B) ===\n");
    bench::printConfigEcho(fig9Config(idio::Policy::Ddio, 100.0));

    const auto policies = {
        idio::Policy::Ddio, idio::Policy::InvalidateOnly,
        idio::Policy::PrefetchOnly, idio::Policy::Static,
        idio::Policy::Idio};
    const auto rates = {100.0, 25.0};

    std::vector<bench::SweepCase> cases;
    for (double gbps : rates) {
        for (auto policy : policies) {
            cases.push_back({std::string(idio::policyName(policy)) +
                                 " " + stats::TablePrinter::num(gbps, 0)
                                 + "G",
                             fig9Config(policy, gbps)});
        }
    }

    const auto results = bench::runSweepSingleBurst(cases, opts);
    bench::JsonReport report(opts.jsonPath, "fig09", opts.jobs);

    std::size_t i = 0;
    for (double gbps : rates) {
        std::printf("--- burst rate %.0f Gbps ---\n", gbps);
        stats::TablePrinter table({"config", "mlcWB", "llcWB",
                                   "dramRd", "dramWr", "exec ms",
                                   "p99 us"});
        for (auto policy : policies) {
            const auto &m = results[i];
            report.row(cases[i], m);
            ++i;
            table.addRow(
                {idio::policyName(policy),
                 std::to_string(m.totals.mlcWritebacks),
                 std::to_string(m.totals.llcWritebacks),
                 std::to_string(m.totals.dramReads),
                 std::to_string(m.totals.dramWrites),
                 stats::TablePrinter::num(
                     sim::ticksToSeconds(m.execTime()) * 1e3, 3),
                 stats::TablePrinter::num(sim::ticksToUs(m.p99), 1)});
        }
        table.print(std::cout);
        std::printf("\n");
    }

    std::printf("Shape check vs. paper: Invalidate rows ~zero mlcWB; "
                "Prefetch rows lower llcWB but high mlcWB; Static == "
                "IDIO at 25 Gbps; IDIO < Static mlcWB at 100 Gbps.\n");
    bench::maybeTraceRun(opts, cases.front().cfg);

    return 0;
}
