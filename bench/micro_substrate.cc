/**
 * @file
 * google-benchmark microbenchmarks of the simulation substrate: raw
 * hierarchy operation throughput, event-queue scheduling, Toeplitz
 * hashing, TLP encoding, and classifier throughput. These quantify
 * simulator performance (host-side), not simulated metrics.
 */

#include <benchmark/benchmark.h>

#include <functional>
#include <vector>

#include "cache/hierarchy.hh"
#include "cache/replacement.hh"
#include "cache/tag_array.hh"
#include "net/flow.hh"
#include "nic/classifier.hh"
#include "nic/tlp.hh"
#include "sim/delegate.hh"
#include "sim/event_queue.hh"
#include "sim/simulation.hh"

namespace
{

void
BM_EventQueueScheduleFire(benchmark::State &state)
{
    sim::EventQueue q;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        q.schedule(q.now() + 10, [&sink] { ++sink; });
        q.runUntil(q.now() + 10);
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventQueueScheduleFire);

void
BM_EventQueueSquashCompact(benchmark::State &state)
{
    // Deschedule churn: every scheduled event is squashed again,
    // exercising the lazy heap compaction path end to end.
    class NopEvent : public sim::Event
    {
      public:
        void process() override {}
    };

    constexpr int batch = 64;
    std::vector<NopEvent> evs(batch);
    sim::EventQueue q;
    for (auto _ : state) {
        for (int i = 0; i < batch; ++i)
            q.schedule(&evs[i], q.now() + 10 + i);
        for (int i = 0; i < batch; ++i)
            q.deschedule(&evs[i]);
    }
    benchmark::DoNotOptimize(q.pending());
    state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueSquashCompact);

void
BM_EventQueueSameTickFanout(benchmark::State &state)
{
    // Fused same-tick dispatch: N one-shots land on one tick and the
    // level-0 slot drains in a single batched pass.
    constexpr int fanout = 32;
    sim::EventQueue q;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        const sim::Tick at = q.now() + 8;
        for (int i = 0; i < fanout; ++i)
            q.schedule(at, [&sink] { ++sink; });
        q.runUntil(at);
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * fanout);
}
BENCHMARK(BM_EventQueueSameTickFanout);

void
BM_EventQueueCascadeCrossing(benchmark::State &state)
{
    // Level-1/2 traffic: deltas past the 256-tick level-0 span force
    // slot placement in the upper levels and a cascade back down on
    // every advance. Measures the placement + cascade round trip that
    // long-period timers (retransmit, sweep barriers) pay.
    constexpr sim::Tick delta = 1 << 12; // level-1 span
    sim::EventQueue q;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        q.schedule(q.now() + delta, [&sink] { ++sink; });
        q.runUntil(q.now() + delta);
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventQueueCascadeCrossing);

void
BM_EventQueueOverflowSpill(benchmark::State &state)
{
    // Beyond-horizon traffic: deltas past the 2^24-tick wheel span
    // spill to the overflow heap and are refilled into the wheel when
    // the base crosses into their block. Worst case for the wheel —
    // every event pays heap push + refill placement + cascade.
    constexpr sim::Tick delta = sim::Tick(1) << 26;
    sim::EventQueue q;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        q.schedule(q.now() + delta, [&sink] { ++sink; });
        q.runUntil(q.now() + delta);
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventQueueOverflowSpill);

void
BM_TagSetIndexPow2(benchmark::State &state)
{
    // 1024 sets: the bitmask fast path (every Table I geometry).
    auto arr = cache::TagArray::withSets(
        1024, 8, cache::makeReplacementPolicy("lru"));
    sim::Addr a = 0;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        sink += arr.setIndex(a);
        a += 64;
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_TagSetIndexPow2);

void
BM_TagSetIndexGeneric(benchmark::State &state)
{
    // 1000 sets: the generic modulo path (coverage-scaled directory).
    auto arr = cache::TagArray::withSets(
        1000, 8, cache::makeReplacementPolicy("lru"));
    sim::Addr a = 0;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        sink += arr.setIndex(a);
        a += 64;
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_TagSetIndexGeneric);

void
BM_ObserverDelegate(benchmark::State &state)
{
    std::uint64_t count = 0;
    auto fn = [&count](sim::CoreId) { ++count; };
    auto obs = sim::Delegate<void(sim::CoreId)>::fromCallable(&fn);
    for (auto _ : state)
        obs(0);
    benchmark::DoNotOptimize(count);
}
BENCHMARK(BM_ObserverDelegate);

void
BM_ObserverStdFunction(benchmark::State &state)
{
    std::uint64_t count = 0;
    std::function<void(sim::CoreId)> obs =
        [&count](sim::CoreId) { ++count; };
    for (auto _ : state)
        obs(0);
    benchmark::DoNotOptimize(count);
}
BENCHMARK(BM_ObserverStdFunction);

void
BM_HierarchyCoreReadHit(benchmark::State &state)
{
    sim::Simulation s;
    cache::HierarchyConfig cfg;
    cfg.numCores = 2;
    cache::MemoryHierarchy hier(s, "sys", cfg);
    hier.coreRead(0, 0x1000);
    for (auto _ : state)
        benchmark::DoNotOptimize(hier.coreRead(0, 0x1000));
}
BENCHMARK(BM_HierarchyCoreReadHit);

void
BM_HierarchyStreamingMiss(benchmark::State &state)
{
    sim::Simulation s;
    cache::HierarchyConfig cfg;
    cfg.numCores = 2;
    cache::MemoryHierarchy hier(s, "sys", cfg);
    sim::Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(hier.coreRead(0, a));
        a += 64;
    }
}
BENCHMARK(BM_HierarchyStreamingMiss);

void
BM_HierarchyPcieWrite(benchmark::State &state)
{
    sim::Simulation s;
    cache::HierarchyConfig cfg;
    cfg.numCores = 2;
    cache::MemoryHierarchy hier(s, "sys", cfg);
    sim::Addr a = 0;
    for (auto _ : state) {
        hier.pcieWrite(a);
        a = (a + 64) & 0xFFFFF;
    }
}
BENCHMARK(BM_HierarchyPcieWrite);

void
BM_ToeplitzHash(benchmark::State &state)
{
    net::FiveTuple t;
    t.srcIp = 0x0a000001;
    t.dstIp = 0x0a000002;
    t.srcPort = 40000;
    t.dstPort = 5000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(net::toeplitzHash(t));
        ++t.srcPort;
    }
}
BENCHMARK(BM_ToeplitzHash);

void
BM_TlpEncodeDecode(benchmark::State &state)
{
    nic::TlpMeta m;
    m.destCore = 17;
    m.isHeader = true;
    for (auto _ : state) {
        const auto dw0 = nic::encodeTlp(m);
        benchmark::DoNotOptimize(nic::decodeTlp(dw0));
    }
}
BENCHMARK(BM_TlpEncodeDecode);

void
BM_ClassifierPacket(benchmark::State &state)
{
    sim::Simulation s;
    nic::FlowDirector fdir(8);
    nic::IdioClassifier cls(s, "cls", fdir, {}, 8);
    net::Packet p;
    p.flow.srcIp = 1;
    p.flow.dstIp = 2;
    p.flow.srcPort = 3;
    p.flow.dstPort = 4;
    p.frameBytes = 1514;
    for (auto _ : state)
        benchmark::DoNotOptimize(cls.classify(p));
}
BENCHMARK(BM_ClassifierPacket);

} // anonymous namespace

BENCHMARK_MAIN();
