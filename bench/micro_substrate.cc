/**
 * @file
 * google-benchmark microbenchmarks of the simulation substrate: raw
 * hierarchy operation throughput, event-queue scheduling, Toeplitz
 * hashing, TLP encoding, and classifier throughput. These quantify
 * simulator performance (host-side), not simulated metrics.
 */

#include <benchmark/benchmark.h>

#include "cache/hierarchy.hh"
#include "net/flow.hh"
#include "nic/classifier.hh"
#include "nic/tlp.hh"
#include "sim/event_queue.hh"
#include "sim/simulation.hh"

namespace
{

void
BM_EventQueueScheduleFire(benchmark::State &state)
{
    sim::EventQueue q;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        q.schedule(q.now() + 10, [&sink] { ++sink; });
        q.runUntil(q.now() + 10);
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventQueueScheduleFire);

void
BM_HierarchyCoreReadHit(benchmark::State &state)
{
    sim::Simulation s;
    cache::HierarchyConfig cfg;
    cfg.numCores = 2;
    cache::MemoryHierarchy hier(s, "sys", cfg);
    hier.coreRead(0, 0x1000);
    for (auto _ : state)
        benchmark::DoNotOptimize(hier.coreRead(0, 0x1000));
}
BENCHMARK(BM_HierarchyCoreReadHit);

void
BM_HierarchyStreamingMiss(benchmark::State &state)
{
    sim::Simulation s;
    cache::HierarchyConfig cfg;
    cfg.numCores = 2;
    cache::MemoryHierarchy hier(s, "sys", cfg);
    sim::Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(hier.coreRead(0, a));
        a += 64;
    }
}
BENCHMARK(BM_HierarchyStreamingMiss);

void
BM_HierarchyPcieWrite(benchmark::State &state)
{
    sim::Simulation s;
    cache::HierarchyConfig cfg;
    cfg.numCores = 2;
    cache::MemoryHierarchy hier(s, "sys", cfg);
    sim::Addr a = 0;
    for (auto _ : state) {
        hier.pcieWrite(a);
        a = (a + 64) & 0xFFFFF;
    }
}
BENCHMARK(BM_HierarchyPcieWrite);

void
BM_ToeplitzHash(benchmark::State &state)
{
    net::FiveTuple t;
    t.srcIp = 0x0a000001;
    t.dstIp = 0x0a000002;
    t.srcPort = 40000;
    t.dstPort = 5000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(net::toeplitzHash(t));
        ++t.srcPort;
    }
}
BENCHMARK(BM_ToeplitzHash);

void
BM_TlpEncodeDecode(benchmark::State &state)
{
    nic::TlpMeta m;
    m.destCore = 17;
    m.isHeader = true;
    for (auto _ : state) {
        const auto dw0 = nic::encodeTlp(m);
        benchmark::DoNotOptimize(nic::decodeTlp(dw0));
    }
}
BENCHMARK(BM_TlpEncodeDecode);

void
BM_ClassifierPacket(benchmark::State &state)
{
    sim::Simulation s;
    nic::FlowDirector fdir(8);
    nic::IdioClassifier cls(s, "cls", fdir, {}, 8);
    net::Packet p;
    p.flow.srcIp = 1;
    p.flow.dstIp = 2;
    p.flow.srcPort = 3;
    p.flow.dstPort = 4;
    p.frameBytes = 1514;
    for (auto _ : state)
        benchmark::DoNotOptimize(cls.classify(p));
}
BENCHMARK(BM_ClassifierPacket);

} // anonymous namespace

BENCHMARK_MAIN();
