/**
 * @file
 * Ablation: mbuf recycling order (FIFO rte_ring pool vs. LIFO
 * per-lcore cache).
 *
 * One might expect a LIFO per-lcore cache to collapse the I/O
 * working set to the in-flight window and thereby dissolve the
 * paper's dead-buffer writeback problem in software. The measurement
 * shows otherwise: every armed RX descriptor parks a distinct buffer
 * until the NIC's fill pointer comes around again, so the working
 * set equals the ring size regardless of the pool's recycling order
 * — the paper's ring-size dependence (Fig. 4) is robust, and a
 * hardware mechanism like IDIO's self-invalidation really is needed.
 */

#include <iostream>

#include "common.hh"

namespace
{

harness::ExperimentConfig
config(idio::Policy policy, dpdk::RecycleOrder order)
{
    harness::ExperimentConfig cfg;
    cfg.numNfs = 2;
    cfg.nfKind = harness::NfKind::TouchDrop;
    cfg.traffic = harness::TrafficKind::Steady;
    cfg.rateGbps = 10.0;
    cfg.recycleOrder = order;
    cfg.applyPolicy(policy);
    return cfg;
}

} // anonymous namespace

int
main()
{
    std::printf("=== Ablation: FIFO vs LIFO buffer recycling "
                "(steady 2x10 Gbps TouchDrop) ===\n");
    bench::printConfigEcho(
        config(idio::Policy::Ddio, dpdk::RecycleOrder::Fifo));

    const sim::Tick duration = 30 * sim::oneMs;

    stats::TablePrinter table({"recycling", "config", "mlcWB",
                               "mlcInval", "llcWB", "dramWr",
                               "p99 us"});
    for (auto order :
         {dpdk::RecycleOrder::Fifo, dpdk::RecycleOrder::Lifo}) {
        for (auto policy : {idio::Policy::Ddio, idio::Policy::Idio}) {
            harness::TestSystem sys(config(policy, order));
            sys.start();
            sys.runFor(duration);
            const auto t = sys.totals();
            table.addRow(
                {order == dpdk::RecycleOrder::Fifo ? "FIFO" : "LIFO",
                 idio::policyName(policy),
                 std::to_string(t.mlcWritebacks),
                 std::to_string(t.mlcPcieInvals),
                 std::to_string(t.llcWritebacks),
                 std::to_string(t.dramWrites),
                 stats::TablePrinter::num(
                     sim::ticksToUs(sys.nf(0).latency.p99()), 1)});
        }
    }
    table.print(std::cout);

    std::printf("\nReading: the rows barely differ — the armed ring "
                "parks ring-size buffers under either order, so "
                "recycling order cannot fix the dead-buffer problem; "
                "IDIO removes it entirely in both cases.\n");
    return 0;
}
