/**
 * @file
 * The canonical multi-tenant noisy-neighbor scenario, shared by
 * bench/tenant_mix.cc (the full per-tenant report) and perf_smoke
 * (the committed-trajectory tenant headline numbers).
 *
 * Three tenants covering every SLO class on one socket:
 *
 *   rpc   — latency-critical, 1 core, steady 10 Gbps TouchDrop.
 *   batch — throughput class, 2 cores, bursty 100 Gbps TouchDrop,
 *           departing at tenantBatchStop (tenant churn).
 *   antag — best-effort antagonist: one LLC-thrashing aggressor core.
 *
 * Three LLC-management schemes run the identical scenario and seed:
 * plain DDIO sharing, IDIO's adaptive policy, and DDIO plus CAT way
 * partitioning under the IOCA-style controller.
 */

#ifndef IDIO_BENCH_TENANT_SCENARIO_HH
#define IDIO_BENCH_TENANT_SCENARIO_HH

#include "harness/experiment_config.hh"

namespace bench
{

/** Fixed measurement horizon (a burstQuantum multiple). */
constexpr sim::Tick tenantHorizon = 600 * sim::oneUs;

/** The batch tenant departs here (tenant churn). */
constexpr sim::Tick tenantBatchStop = 300 * sim::oneUs;

/** One LLC-management scheme measured on the shared scenario. */
struct TenantScheme
{
    const char *label;
    idio::Policy policy;
    harness::TenantPartition partition;
};

constexpr TenantScheme tenantSchemes[] = {
    {"ddio", idio::Policy::Ddio, harness::TenantPartition::None},
    {"idio", idio::Policy::Idio, harness::TenantPartition::None},
    {"ioca", idio::Policy::Ddio, harness::TenantPartition::Ioca},
};

inline harness::ExperimentConfig
tenantMixConfig(const TenantScheme &scheme)
{
    harness::ExperimentConfig cfg;
    cfg.applyPolicy(scheme.policy);
    cfg.tenantPartition = scheme.partition;
    cfg.burstPeriod = 100 * sim::oneUs; // batch bursts every 100 us
    cfg.rateGbps = 100.0;

    harness::TenantSpec rpc;
    rpc.name = "rpc";
    rpc.slo = tenant::SloClass::LatencyCritical;
    rpc.cores = 1;
    rpc.traffic = harness::TrafficKind::Steady;
    rpc.rateGbps = 10.0;

    harness::TenantSpec batch;
    batch.name = "batch";
    batch.slo = tenant::SloClass::Throughput;
    batch.cores = 2;
    batch.traffic = harness::TrafficKind::Bursty;
    batch.stopAt = tenantBatchStop;

    harness::TenantSpec antag;
    antag.name = "antag";
    antag.slo = tenant::SloClass::BestEffort;
    antag.cores = 1;
    antag.antagonist = true;

    cfg.tenants = {rpc, batch, antag};
    return cfg;
}

} // namespace bench

#endif // IDIO_BENCH_TENANT_SCENARIO_HH
