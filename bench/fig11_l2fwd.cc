/**
 * @file
 * Reproduces paper Figure 11 and the direct-DRAM discussion: shallow
 * zero-copy NFs under DDIO vs. IDIO.
 *
 * Part 1 (Fig. 11): two L2Fwd processes, 1024 B packets, 1024-entry
 * rings. Under DDIO almost no MLC activity occurs (only headers are
 * touched) while LLC writebacks climb as buffers leak; IDIO admits
 * data into the idle MLC and invalidates consumed buffers, cutting
 * LLC writebacks.
 *
 * Part 2 (Sec. VII text): the L2FwdDropPayload variant (application
 * class 1). With IDIO's selective direct DRAM access the payload
 * bypasses the caches entirely: DRAM write bandwidth equals the RX
 * payload bandwidth and the LLC stays clean.
 */

#include <iostream>

#include "common.hh"

namespace
{

harness::ExperimentConfig
l2fwdConfig(harness::NfKind kind, idio::Policy policy)
{
    harness::ExperimentConfig cfg;
    cfg.numNfs = 2;
    cfg.nfKind = kind;
    cfg.frameBytes = 1024;
    cfg.traffic = harness::TrafficKind::Steady;
    cfg.rateGbps = 8.0;
    cfg.applyPolicy(policy);
    return cfg;
}

} // anonymous namespace

int
main()
{
    std::printf("=== Figure 11: L2Fwd (zero-copy shallow NF), 1024 B "
                "packets ===\n");
    bench::printConfigEcho(
        l2fwdConfig(harness::NfKind::L2Fwd, idio::Policy::Ddio));

    const sim::Tick duration = 20 * sim::oneMs;

    stats::TablePrinter table({"workload", "config", "mlcWB", "llcWB",
                               "dramWr", "dramWr/rxBW", "mlc activity",
                               "tx pkts"});

    auto addRow = [&](harness::NfKind kind, idio::Policy policy) {
        harness::TestSystem sys(l2fwdConfig(kind, policy));
        sys.start();
        sys.runFor(duration);

        const auto t = sys.totals();
        const double rxBytes = std::max(
            1.0, double(t.rxPackets - t.rxDrops) * 1024.0);
        std::uint64_t mlcActivity = 0;
        std::uint64_t tx = 0;
        for (std::uint32_t c = 0; c < sys.numNfs(); ++c) {
            mlcActivity += sys.hierarchy().mlcOf(c).fills.get() +
                           sys.hierarchy().mlcOf(c).prefetchFills.get();
            tx += sys.nicPort(c).txPackets.get();
        }

        table.addRow({harness::nfKindName(kind),
                      idio::policyName(policy),
                      std::to_string(t.mlcWritebacks),
                      std::to_string(t.llcWritebacks),
                      std::to_string(t.dramWrites),
                      stats::TablePrinter::num(
                          double(t.dramWrites) * 64.0 / rxBytes, 2),
                      std::to_string(mlcActivity),
                      std::to_string(tx)});
    };

    addRow(harness::NfKind::L2Fwd, idio::Policy::Ddio);
    addRow(harness::NfKind::L2Fwd, idio::Policy::Idio);
    addRow(harness::NfKind::L2FwdDropPayload, idio::Policy::Ddio);
    addRow(harness::NfKind::L2FwdDropPayload, idio::Policy::Idio);

    table.print(std::cout);

    std::printf(
        "\nShape check vs. paper: L2Fwd/DDIO shows almost no MLC "
        "activity but growing LLC WBs; L2Fwd/IDIO uses the MLC and "
        "cuts LLC WBs; L2FwdDropPayload/IDIO steers payloads straight "
        "to DRAM (dramWr/rxBW near the payload fraction) with a clean "
        "LLC.\n");
    return 0;
}
