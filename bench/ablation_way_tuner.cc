/**
 * @file
 * Comparator: IAT-style dynamic DDIO way allocation vs. IDIO.
 *
 * The paper's related-work section argues that dynamic-DDIO policies
 * (IAT, reference [41]) help with LLC contention but "still suffer
 * from the penalty of a high MLC writeback rate" because they cannot
 * steer data into the MLC or drop dead buffers. This bench runs the
 * DDIO baseline, DDIO + the IAT-style way tuner, and IDIO under
 * bursty traffic with a co-running LLCAntagonist.
 *
 * Expected shape: the tuner reduces DDIO's DMA leak (LLC WBs) by
 * growing the partition during bursts, but the MLC writebacks are
 * untouched; IDIO beats it on both axes.
 */

#include <iostream>

#include "common.hh"
#include "idio/way_tuner.hh"

namespace
{

harness::ExperimentConfig
config(idio::Policy policy)
{
    harness::ExperimentConfig cfg;
    cfg.numNfs = 2;
    cfg.nfKind = harness::NfKind::TouchDrop;
    cfg.traffic = harness::TrafficKind::Bursty;
    cfg.rateGbps = 100.0;
    cfg.withAntagonist = true;
    cfg.applyPolicy(policy);
    return cfg;
}

struct Row
{
    harness::Totals totals;
    double antagTpa;
    std::uint32_t finalWays;
};

Row
run(idio::Policy policy, bool withTuner)
{
    harness::TestSystem sys(config(policy));
    std::unique_ptr<idio::DdioWayTuner> tuner;
    if (withTuner) {
        // Fast re-evaluation so the tuner can react within the
        // ~124 us burst.
        idio::WayTunerConfig tcfg;
        tcfg.interval = 10 * sim::oneUs;
        tuner = std::make_unique<idio::DdioWayTuner>(
            sys.simulation(), "system.wayTuner", sys.hierarchy(),
            tcfg);
        tuner->start();
    }
    sys.start();
    sys.runFor(30 * sim::oneMs);

    Row r;
    r.totals = sys.totals();
    r.antagTpa = sys.antagonist()->ticksPerAccess();
    r.finalWays = sys.hierarchy().llc().ddioWays();
    return r;
}

} // anonymous namespace

int
main()
{
    std::printf("=== Comparator: IAT-style dynamic DDIO ways vs IDIO "
                "(100 Gbps bursts + LLCAntagonist) ===\n");
    bench::printConfigEcho(config(idio::Policy::Ddio));

    stats::TablePrinter table({"config", "nfMlcWB", "llcWB", "dramWr",
                               "antag ns/access", "final ddioWays"});
    auto add = [&](const char *name, const Row &r) {
        table.addRow({name, std::to_string(r.totals.nfMlcWritebacks),
                      std::to_string(r.totals.llcWritebacks),
                      std::to_string(r.totals.dramWrites),
                      stats::TablePrinter::num(
                          r.antagTpa / double(sim::oneNs), 2),
                      std::to_string(r.finalWays)});
    };

    add("DDIO", run(idio::Policy::Ddio, false));
    add("DDIO+IAT", run(idio::Policy::Ddio, true));
    add("IDIO", run(idio::Policy::Idio, false));

    table.print(std::cout);
    std::printf("\nShape check (paper Sec. VIII): the way tuner cuts "
                "DDIO's DMA leak but leaves the MLC writeback rate "
                "untouched; IDIO reduces both and keeps the "
                "antagonist faster.\n");
    return 0;
}
