/**
 * @file
 * Reproduces paper Figure 10: MLC writebacks, LLC writebacks, DRAM
 * reads, DRAM writes, and burst processing time (Exe Time) of Static
 * and dynamic IDIO, normalised to the DDIO baseline, at 100/25/10
 * Gbps burst rates — plus the co-running scenario with LLCAntagonist.
 *
 * Paper reference points: MLC WB reductions of 73.9% (100G), 83.7%
 * (25G), 63.8% (10G); DRAM write bandwidth almost eliminated; Exe
 * Time improvements of 18.5% (100G) and 22.0% (25G); co-run burst
 * processing improvements of 10.9%/20.8% and antagonist CPI
 * improvements of ~16-22%.
 */

#include <iostream>

#include "common.hh"

namespace
{

harness::ExperimentConfig
fig10Config(idio::Policy policy, double gbps, bool antagonist)
{
    harness::ExperimentConfig cfg;
    cfg.numNfs = 2;
    cfg.nfKind = harness::NfKind::TouchDrop;
    cfg.rateGbps = gbps;
    cfg.withAntagonist = antagonist;
    cfg.applyPolicy(policy);
    return cfg;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::parseBenchOptions(argc, argv);

    std::printf("=== Figure 10: Static and IDIO normalised to DDIO "
                "===\n");
    bench::printConfigEcho(fig10Config(idio::Policy::Ddio, 100.0,
                                       false));

    // One scenario = a DDIO baseline plus the two IDIO variants; all
    // 18 runs are independent and sweep in parallel.
    struct Scenario
    {
        const char *name;
        bool antagonist;
        double gbps;
    };
    const std::vector<Scenario> scenarios = {
        {"solo", false, 100.0},   {"solo", false, 25.0},
        {"solo", false, 10.0},    {"co-run", true, 100.0},
        {"co-run", true, 25.0},   {"co-run", true, 10.0}};
    const auto policies = {idio::Policy::Ddio, idio::Policy::Static,
                           idio::Policy::Idio};

    std::vector<bench::SweepCase> cases;
    for (const auto &sc : scenarios) {
        for (auto policy : policies) {
            cases.push_back(
                {std::string(sc.name) + " " +
                     stats::TablePrinter::num(sc.gbps, 0) + "G " +
                     idio::policyName(policy),
                 fig10Config(policy, sc.gbps, sc.antagonist)});
        }
    }

    const auto results = bench::runSweepSingleBurst(cases, opts);
    bench::JsonReport report(opts.jsonPath, "fig10", opts.jobs);
    for (std::size_t i = 0; i < cases.size(); ++i)
        report.row(cases[i], results[i]);

    stats::TablePrinter table({"scenario", "config", "nfMlcWB", "llcWB",
                               "dramRd", "dramWr", "exeTime",
                               "antagCPI"});

    std::size_t i = 0;
    for (const auto &sc : scenarios) {
        const auto &base = results[i++]; // DDIO row of this scenario
        for (auto policy : {idio::Policy::Static, idio::Policy::Idio}) {
            const auto &m = results[i++];
            table.addRow(
                {std::string(sc.name) + " " +
                     stats::TablePrinter::num(sc.gbps, 0) + "G",
                 idio::policyName(policy),
                 bench::ratio(m.totals.nfMlcWritebacks,
                              base.totals.nfMlcWritebacks),
                 bench::ratio(m.totals.llcWritebacks,
                              base.totals.llcWritebacks),
                 bench::ratio(m.totals.dramReads,
                              base.totals.dramReads),
                 bench::ratio(m.totals.dramWrites,
                              base.totals.dramWrites),
                 bench::ratio(m.execTime(), base.execTime()),
                 sc.antagonist
                     ? stats::TablePrinter::num(
                           m.antagonistTpa / base.antagonistTpa, 2)
                     : "-"});
        }
    }

    table.print(std::cout);

    std::printf(
        "\nAll values are ratios vs. the DDIO baseline of the same "
        "scenario (lower is better; paper Fig. 10).\n"
        "Shape check: mlcWB <=0.4 at 100/25G; dramWr ~0 at 25G; "
        "exeTime <1 at 100/25G; antagCPI <1 in co-run rows.\n");
    bench::maybeTraceRun(opts, cases.front().cfg);

    return 0;
}
