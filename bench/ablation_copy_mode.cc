/**
 * @file
 * Ablation: buffer consumption mode (paper Sec. II-B).
 *
 * Run-to-completion TouchDrop processes packets in place; copy-mode
 * TouchDrop copies them into an application arena first (the Linux
 * software-stack pattern). Copy-mode shortens each DMA buffer's use
 * distance to the copy loop — the earliest self-invalidation point —
 * at the cost of roughly 3x the CPU-side line traffic. This ablation
 * shows how the consumption mode changes the DDIO problem and how
 * IDIO behaves under both.
 */

#include <iostream>

#include "common.hh"

namespace
{

harness::ExperimentConfig
config(harness::NfKind kind, idio::Policy policy)
{
    harness::ExperimentConfig cfg;
    cfg.numNfs = 2;
    cfg.nfKind = kind;
    cfg.traffic = harness::TrafficKind::Steady;
    cfg.rateGbps = 4.0; // below copy-mode capacity: drop-free comparison
    cfg.applyPolicy(policy);
    return cfg;
}

} // anonymous namespace

int
main()
{
    std::printf("=== Ablation: run-to-completion vs copy-mode "
                "consumption (steady 2x4 Gbps) ===\n");
    bench::printConfigEcho(
        config(harness::NfKind::TouchDrop, idio::Policy::Ddio));

    const sim::Tick duration = 25 * sim::oneMs;

    stats::TablePrinter table({"mode", "config", "mlcWB", "llcWB",
                               "dramWr", "cpu reads", "p99 us",
                               "drops"});
    for (auto kind : {harness::NfKind::TouchDrop,
                      harness::NfKind::CopyTouchDrop}) {
        for (auto policy : {idio::Policy::Ddio, idio::Policy::Idio}) {
            harness::TestSystem sys(config(kind, policy));
            sys.start();
            sys.runFor(duration);
            const auto t = sys.totals();
            table.addRow(
                {harness::nfKindName(kind), idio::policyName(policy),
                 std::to_string(t.mlcWritebacks),
                 std::to_string(t.llcWritebacks),
                 std::to_string(t.dramWrites),
                 std::to_string(sys.core(0).reads.get()),
                 stats::TablePrinter::num(
                     sim::ticksToUs(sys.nf(0).latency.p99()), 1),
                 std::to_string(t.rxDrops)});
        }
    }
    table.print(std::cout);

    std::printf("\nReading: copy-mode roughly triples the CPU line "
                "traffic and adds the copy arena to the MLC working "
                "set; self-invalidating right after the copy still "
                "removes the DMA buffers' writebacks under IDIO.\n");
    return 0;
}
