/**
 * @file
 * Reproduces paper Figure 5: MLC and LLC writeback timeline while
 * processing bursty traffic with the DDIO baseline.
 *
 * Two TouchDrop processes, 3 MB LLC (2 cores x 1.5 MB), 1024-entry
 * rings, 1514 B packets, bursts every 10 ms. The top of the paper's
 * figure shows 30 ms; the bottom zooms into the second burst. We
 * print the 10 us-sampled MTPS series for the zoom window and summary
 * statistics for all three bursts, and emit the full CSV when a path
 * is given as argv[1].
 *
 * Expected shape: writebacks concentrate in two phases per burst —
 * LLC writebacks during the DMA phase (DMA leak) and MLC writebacks
 * during the execution phase (dead-buffer evictions) — with LLC
 * writebacks tapering off late in the burst (DMA bloating).
 */

#include <fstream>
#include <iostream>

#include "common.hh"

int
main(int argc, char **argv)
{
    harness::ExperimentConfig cfg;
    cfg.numNfs = 2;
    cfg.nfKind = harness::NfKind::TouchDrop;
    cfg.traffic = harness::TrafficKind::Bursty;
    cfg.rateGbps = 100.0;
    cfg.applyPolicy(idio::Policy::Ddio);

    std::printf("=== Figure 5: MLC/LLC writebacks under bursty "
                "traffic (DDIO) ===\n");
    bench::printConfigEcho(cfg);

    harness::TestSystem sys(cfg);
    sys.trackDefaultSeries();
    sys.timeline().start();
    sys.start();
    sys.runFor(30 * sim::oneMs);

    const auto &mlc = sys.timeline().series("mlcWB");
    const auto &llc = sys.timeline().series("llcWB");
    const auto &dma = sys.timeline().series("dmaWrites");

    // Per-burst summaries (bursts start near 0, 10 ms, 20 ms).
    stats::TablePrinter bursts({"burst", "window", "peak mlcWB MTPS",
                                "peak llcWB MTPS", "mlcWB txns",
                                "llcWB txns"});
    for (int b = 0; b < 3; ++b) {
        const sim::Tick lo = sim::Tick(b) * 10 * sim::oneMs;
        const sim::Tick hi = lo + 10 * sim::oneMs;
        double peakMlc = 0, peakLlc = 0, sumMlc = 0, sumLlc = 0;
        for (const auto &p : mlc.points()) {
            if (p.when > lo && p.when <= hi) {
                peakMlc = std::max(peakMlc, p.value);
                sumMlc += p.value;
            }
        }
        for (const auto &p : llc.points()) {
            if (p.when > lo && p.when <= hi) {
                peakLlc = std::max(peakLlc, p.value);
                sumLlc += p.value;
            }
        }
        const double toTxns = sim::ticksToSeconds(10 * sim::oneUs) *
                              1e6; // MTPS -> txns per sample
        bursts.addRow({"#" + std::to_string(b + 1),
                       std::to_string(10 * b) + "-" +
                           std::to_string(10 * (b + 1)) + "ms",
                       stats::TablePrinter::num(peakMlc, 1),
                       stats::TablePrinter::num(peakLlc, 1),
                       stats::TablePrinter::num(sumMlc * toTxns, 0),
                       stats::TablePrinter::num(sumLlc * toTxns, 0)});
    }
    bursts.print(std::cout);

    // Zoom into the second burst (paper bottom panel): 10.0-11.5 ms.
    std::printf("\nSecond-burst zoom (10 us samples, MTPS):\n");
    stats::TablePrinter zoom(
        {"t (ms)", "dmaWrites", "mlcWB", "llcWB"});
    for (std::size_t i = 0; i < mlc.size(); ++i) {
        const sim::Tick when = mlc.points()[i].when;
        if (when < 10 * sim::oneMs || when > 115 * sim::oneMs / 10)
            continue;
        if ((i % 5) != 0)
            continue; // print every 50 us to keep the table readable
        zoom.addRow({stats::TablePrinter::num(
                         sim::ticksToSeconds(when) * 1e3, 2),
                     stats::TablePrinter::num(dma.points()[i].value, 1),
                     stats::TablePrinter::num(mlc.points()[i].value, 1),
                     stats::TablePrinter::num(llc.points()[i].value,
                                              1)});
    }
    zoom.print(std::cout);

    if (argc > 1) {
        std::ofstream csv(argv[1]);
        stats::writeCsv(csv, sys.timeline().all());
        std::printf("\nfull timeline CSV written to %s\n", argv[1]);
    }

    std::printf("\nShape check vs. paper: per burst, an LLC-WB spike "
                "in the DMA phase, MLC WBs through the execution "
                "phase, LLC WBs tapering off towards the end.\n");
    return 0;
}
