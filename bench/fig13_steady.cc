/**
 * @file
 * Reproduces paper Figure 13: steady (non-bursty) traffic at
 * 10 Gbps per TouchDrop instance (20 Gbps total), DDIO vs. IDIO.
 *
 * Expected shape: under DDIO the MLC writeback rate at steady load is
 * essentially the same as under bursty traffic (consumed-buffer
 * writebacks depend on the processing rate, not burstiness), with a
 * lower but persistent LLC writeback rate; IDIO's self-invalidation
 * removes almost all of it.
 */

#include <iostream>

#include "common.hh"

namespace
{

harness::ExperimentConfig
fig13Config(idio::Policy policy, harness::TrafficKind traffic)
{
    harness::ExperimentConfig cfg;
    cfg.numNfs = 2;
    cfg.nfKind = harness::NfKind::TouchDrop;
    cfg.traffic = traffic;
    cfg.rateGbps = 10.0;
    cfg.applyPolicy(policy);
    return cfg;
}

} // anonymous namespace

int
main()
{
    std::printf("=== Figure 13: steady 2x10 Gbps TouchDrop, DDIO vs "
                "IDIO ===\n");
    bench::printConfigEcho(
        fig13Config(idio::Policy::Ddio, harness::TrafficKind::Steady));

    const sim::Tick duration = 30 * sim::oneMs;

    stats::TablePrinter table({"config", "mean mlcWB MTPS",
                               "mean llcWB MTPS", "mlcWB txns",
                               "llcWB txns", "dramWr", "drops"});

    double ddioSteadyMlcRate = 0.0;
    for (auto policy : {idio::Policy::Ddio, idio::Policy::Idio}) {
        harness::TestSystem sys(
            fig13Config(policy, harness::TrafficKind::Steady));
        sys.trackDefaultSeries();
        sys.timeline().start();
        sys.start();
        sys.runFor(duration);

        const auto t = sys.totals();
        const auto &mlcSeries = sys.timeline().series("mlcWB");
        const auto &llcSeries = sys.timeline().series("llcWB");
        if (policy == idio::Policy::Ddio)
            ddioSteadyMlcRate = mlcSeries.mean();

        table.addRow({idio::policyName(policy),
                      stats::TablePrinter::num(mlcSeries.mean(), 2),
                      stats::TablePrinter::num(llcSeries.mean(), 2),
                      std::to_string(t.mlcWritebacks),
                      std::to_string(t.llcWritebacks),
                      std::to_string(t.dramWrites),
                      std::to_string(t.rxDrops)});
    }
    table.print(std::cout);

    // Paper cross-check: the DDIO steady MLC WB *rate during
    // processing* matches the bursty one at the same consumption rate.
    harness::TestSystem bursty(
        fig13Config(idio::Policy::Ddio, harness::TrafficKind::Bursty));
    bursty.trackDefaultSeries();
    bursty.timeline().start();
    bursty.start();
    bursty.runFor(duration);
    std::printf("\nDDIO steady mean mlcWB rate: %.2f MTPS; bursty "
                "peak: %.2f MTPS (paper: steady rate equals the "
                "processing-phase bursty rate)\n",
                ddioSteadyMlcRate,
                bursty.timeline().series("mlcWB").peak());
    return 0;
}
