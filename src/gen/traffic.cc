/**
 * @file
 * Traffic generator implementations.
 */

#include "traffic.hh"

#include <algorithm>

#include "ckpt/serializer.hh"
#include "sim/simulation.hh"

namespace gen
{

namespace
{

sim::Tick
interPacketGap(std::uint32_t frameBytes, double rateGbps)
{
    // Time to serialise one frame at the given line rate.
    const double ns =
        static_cast<double>(frameBytes) * 8.0 / rateGbps;
    return std::max<sim::Tick>(1, sim::nsToTicks(ns));
}

} // anonymous namespace

TrafficSource::TrafficSource(sim::Simulation &simulation,
                             const std::string &name, nic::Nic &nicPort,
                             const TrafficConfig &config,
                             bool needsFlows)
    : sim::SimObject(simulation, name),
      statGroup(simulation.statsRegistry(), name),
      packetsSent(statGroup, "packetsSent", "packets generated"),
      bytesSent(statGroup, "bytesSent", "bytes generated"),
      port(nicPort), cfg(config)
{
    if (needsFlows && cfg.flows.empty() && cfg.synthFlows == 0)
        sim::fatal("traffic source '%s' has no flows", name.c_str());
    if (!cfg.flows.empty() && cfg.synthFlows != 0)
        sim::fatal("traffic source '%s' mixes explicit and synthetic "
                   "flows",
                   name.c_str());
}

TrafficSource::~TrafficSource() = default;

void
TrafficSource::scheduleFireAt(sim::Tick when)
{
    pendingTick.active = true;
    pendingTick.when = when;
    pendingTick.seq = eventq().schedule(when, [this] {
        pendingTick.active = false;
        fire();
    });
}

void
TrafficSource::serialize(ckpt::Serializer &s) const
{
    s.writeU64(nextFlow);
    s.writeU64(seq);
    s.writeBool(pendingTick.active);
    if (pendingTick.active) {
        s.writeTick(pendingTick.when);
        s.writeU64(pendingTick.seq);
    }
}

void
TrafficSource::unserialize(ckpt::Deserializer &d)
{
    nextFlow = static_cast<std::size_t>(d.readU64());
    seq = d.readU64();
    pendingTick.active = d.readBool();
    if (pendingTick.active) {
        pendingTick.when = d.readTick();
        pendingTick.seq = d.readU64();
        d.deferOneShot(
            pendingTick.seq, pendingTick.when,
            [this] {
                pendingTick.active = false;
                fire();
            },
            &eventq());
    }
}

void
TrafficSource::emitPacket()
{
    net::Packet pkt;
    if (cfg.synthFlows != 0) {
        pkt.flow = synthFlowTuple(nextFlow, cfg.synthBasePort);
        pkt.dscp = cfg.synthDscp;
        nextFlow = (nextFlow + 1) % cfg.synthFlows;
    } else {
        const FlowSpec &spec = cfg.flows[nextFlow];
        nextFlow = (nextFlow + 1) % cfg.flows.size();
        pkt.flow = spec.tuple;
        pkt.dscp = spec.dscp;
    }
    pkt.frameBytes = cfg.frameBytes;
    pkt.seq = seq++;
    pkt.genTime = now();
    ++packetsSent;
    bytesSent += pkt.frameBytes;
    port.deliver(pkt);
}

SteadyTrafficGen::SteadyTrafficGen(sim::Simulation &simulation,
                                   const std::string &name,
                                   nic::Nic &nicPort,
                                   const TrafficConfig &config,
                                   double rateGbps)
    : TrafficSource(simulation, name, nicPort, config),
      interPacket(interPacketGap(config.frameBytes, rateGbps))
{
}

void
SteadyTrafficGen::start()
{
    scheduleFireIn(interPacket);
}

void
SteadyTrafficGen::tick()
{
    if (stopped())
        return;
    emitPacket();
    scheduleFireIn(interPacket);
}

BurstyTrafficGen::BurstyTrafficGen(sim::Simulation &simulation,
                                   const std::string &name,
                                   nic::Nic &nicPort,
                                   const TrafficConfig &config,
                                   const BurstParams &params)
    : TrafficSource(simulation, name, nicPort, config), burst(params),
      interPacket(
          interPacketGap(config.frameBytes, params.burstRateGbps))
{
}

sim::Tick
BurstyTrafficGen::burstLength() const
{
    return interPacket * burst.burstPackets;
}

void
BurstyTrafficGen::start()
{
    inBurstRemaining = burst.burstPackets;
    nextBurstStart = now() + burst.burstPeriod;
    scheduleFireIn(interPacket);
}

void
BurstyTrafficGen::tick()
{
    if (stopped())
        return;

    emitPacket();
    if (--inBurstRemaining > 0) {
        scheduleFireIn(interPacket);
        return;
    }

    // Burst over: sleep until the next period.
    inBurstRemaining = burst.burstPackets;
    const sim::Tick startAt = std::max(nextBurstStart, now());
    nextBurstStart = startAt + burst.burstPeriod;
    scheduleFireAt(startAt);
}

void
BurstyTrafficGen::serialize(ckpt::Serializer &s) const
{
    TrafficSource::serialize(s);
    s.writeU32(inBurstRemaining);
    s.writeTick(nextBurstStart);
}

void
BurstyTrafficGen::unserialize(ckpt::Deserializer &d)
{
    TrafficSource::unserialize(d);
    inBurstRemaining = d.readU32();
    nextBurstStart = d.readTick();
}

PoissonTrafficGen::PoissonTrafficGen(sim::Simulation &simulation,
                                     const std::string &name,
                                     nic::Nic &nicPort,
                                     const TrafficConfig &config,
                                     double rateGbps)
    : TrafficSource(simulation, name, nicPort, config),
      meanGapTicks(static_cast<double>(
          interPacketGap(config.frameBytes, rateGbps))),
      rng(simulation.deriveRng(name).next())
{
}

void
PoissonTrafficGen::start()
{
    scheduleFireIn(std::max<sim::Tick>(
        1, static_cast<sim::Tick>(rng.exponential(meanGapTicks))));
}

void
PoissonTrafficGen::tick()
{
    if (stopped())
        return;
    emitPacket();
    start();
}

void
PoissonTrafficGen::serialize(ckpt::Serializer &s) const
{
    TrafficSource::serialize(s);
    for (const std::uint64_t w : rng.state())
        s.writeU64(w);
}

void
PoissonTrafficGen::unserialize(ckpt::Deserializer &d)
{
    TrafficSource::unserialize(d);
    std::array<std::uint64_t, 4> st;
    for (std::uint64_t &w : st)
        w = d.readU64();
    rng.setState(st);
}

TraceTrafficGen::TraceTrafficGen(sim::Simulation &simulation,
                                 const std::string &name,
                                 nic::Nic &nicPort,
                                 std::vector<net::TraceRecord> traceIn,
                                 bool loop, sim::Tick loopGap)
    : TrafficSource(simulation, name, nicPort, TrafficConfig{},
                    /*needsFlows=*/false),
      trace(std::move(traceIn)), loop(loop), loopGap(loopGap)
{
    if (trace.empty())
        sim::fatal("trace source '%s' has an empty trace",
                   name.c_str());
    // Normalise to offsets from the first record.
    const sim::Tick t0 = trace.front().when;
    for (auto &r : trace)
        r.when -= t0;
}

void
TraceTrafficGen::start()
{
    epoch = now();
    next = 0;
    scheduleFireAt(epoch + trace.front().when);
}

void
TraceTrafficGen::deliverNext()
{
    if (stopped())
        return;

    net::Packet pkt = trace[next].pkt;
    pkt.genTime = now();
    ++packetsSent;
    bytesSent += pkt.frameBytes;
    port.deliver(pkt);

    if (++next >= trace.size()) {
        if (!loop)
            return;
        next = 0;
        epoch = now() + loopGap;
    }
    scheduleFireAt(epoch + trace[next].when);
}

void
TraceTrafficGen::serialize(ckpt::Serializer &s) const
{
    TrafficSource::serialize(s);
    s.writeU64(next);
    s.writeTick(epoch);
}

void
TraceTrafficGen::unserialize(ckpt::Deserializer &d)
{
    TrafficSource::unserialize(d);
    next = static_cast<std::size_t>(d.readU64());
    epoch = d.readTick();
}

net::FiveTuple
synthFlowTuple(std::uint64_t idx, std::uint16_t basePort)
{
    // splitmix64 finaliser: a cheap, well-distributed pure function of
    // the flow index.
    std::uint64_t z = idx + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;

    net::FiveTuple t;
    t.srcIp = 0x0a000000u |
              static_cast<std::uint32_t>(z & 0xffffffu); // 10.x.x.x
    t.dstIp = 0xc0a80000u |
              static_cast<std::uint32_t>((z >> 24) & 0xffffu); // 192.168
    t.srcPort =
        static_cast<std::uint16_t>(1024 + ((z >> 40) & 0x7fff));
    t.dstPort = basePort;
    t.proto = net::IpProto::Udp;
    return t;
}

std::vector<FlowSpec>
makeFlows(std::uint32_t n, std::uint32_t baseDstPort, std::uint8_t dscp)
{
    std::vector<FlowSpec> flows;
    flows.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        FlowSpec f;
        f.tuple.srcIp = 0x0a000001;        // 10.0.0.1
        f.tuple.dstIp = 0x0a000002;        // 10.0.0.2
        f.tuple.srcPort =
            static_cast<std::uint16_t>(40000 + i);
        f.tuple.dstPort =
            static_cast<std::uint16_t>(baseDstPort + i);
        f.tuple.proto = net::IpProto::Udp;
        f.dscp = dscp;
        flows.push_back(f);
    }
    return flows;
}

} // namespace gen
