/**
 * @file
 * Network load generators (paper Sec. VI).
 *
 * The paper drives its simulated server with a hardware load-generator
 * model producing either steady traffic at a fixed rate or parameterised
 * bursts (burst period / burst length / burst rate, with the burst
 * length chosen so each burst carries exactly ring-size packets). These
 * classes reproduce that methodology; a Poisson generator is included
 * for property tests and examples.
 */

#ifndef IDIO_GEN_TRAFFIC_HH
#define IDIO_GEN_TRAFFIC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "net/packet.hh"
#include "net/pcap.hh"
#include "nic/nic.hh"
#include "sim/rng.hh"
#include "sim/sim_object.hh"
#include "stats/registry.hh"

namespace gen
{

/** One flow emitted by a generator. */
struct FlowSpec
{
    net::FiveTuple tuple;
    std::uint8_t dscp = 0;
};

/** Settings shared by all generators. */
struct TrafficConfig
{
    /** Ethernet frame size (paper default: MTU frames, 1514 B). */
    std::uint32_t frameBytes = net::maxFrameBytes;

    /** Flows cycled round-robin; must not be empty. */
    std::vector<FlowSpec> flows;

    /**
     * Synthetic flow population: when non-zero, the generator cycles
     * @c synthFlows procedurally generated flows (see synthFlowTuple)
     * instead of the explicit @c flows list. This is how million-flow
     * RSS experiments stay affordable — no per-flow FlowSpec storage.
     */
    std::uint64_t synthFlows = 0;

    /** Destination port of every synthetic flow. */
    std::uint16_t synthBasePort = 5000;

    /** DSCP marking of every synthetic flow. */
    std::uint8_t synthDscp = 0;

    /** Stop generating at this tick (maxTick = never). */
    sim::Tick stopAt = sim::maxTick;
};

/**
 * The i-th synthetic flow: a UDP 5-tuple whose addresses and source
 * port are a splitmix64 mix of @p idx, so consecutive indices spread
 * uniformly over the Toeplitz hash space (as a real many-client load
 * does) while remaining a pure deterministic function of the index.
 */
net::FiveTuple synthFlowTuple(std::uint64_t idx,
                              std::uint16_t basePort = 5000);

/**
 * Base class: owns the target NIC, flow rotation, and counters.
 */
class TrafficSource : public sim::SimObject
{
    stats::StatGroup statGroup;

  public:
    /**
     * @param needsFlows Subclasses that carry their own per-packet
     *        flow identity (e.g.\ trace replay) pass false.
     */
    TrafficSource(sim::Simulation &simulation, const std::string &name,
                  nic::Nic &nicPort, const TrafficConfig &config,
                  bool needsFlows = true);

    ~TrafficSource() override;

    /** Begin generating at the current tick. */
    virtual void start() = 0;

    /** @{ Counters. */
    stats::Counter packetsSent;
    stats::Counter bytesSent;
    /** @} */

    void serialize(ckpt::Serializer &s) const override;
    void unserialize(ckpt::Deserializer &d) override;

  protected:
    /** Emit the next packet (round-robin flow selection). */
    void emitPacket();

    /** True when generation should cease. */
    bool stopped() const { return now() >= cfg.stopAt; }

    /**
     * @{ Tracked one-shot scheduling. All generator pacing goes
     * through these so a checkpoint knows the pending callback's
     * {when, seq} and restore can re-register it; fire() dispatches to
     * the subclass's emission routine.
     */
    void scheduleFireAt(sim::Tick when);
    void scheduleFireIn(sim::Tick delay) { scheduleFireAt(now() + delay); }
    virtual void fire() = 0;
    /** @} */

    nic::Nic &port;
    TrafficConfig cfg;

  private:
    struct PendingTick
    {
        bool active = false;
        sim::Tick when = 0;
        std::uint64_t seq = 0;
    };

    std::size_t nextFlow = 0;
    std::uint64_t seq = 0;
    PendingTick pendingTick;
};

/**
 * Constant-rate generator: one packet every frameBits/rate seconds.
 */
class SteadyTrafficGen : public TrafficSource
{
  public:
    SteadyTrafficGen(sim::Simulation &simulation, const std::string &name,
                     nic::Nic &nicPort, const TrafficConfig &config,
                     double rateGbps);

    void start() override;

    /** Inter-packet gap in ticks. */
    sim::Tick gap() const { return interPacket; }

  private:
    void tick();
    void fire() override { tick(); }

    sim::Tick interPacket;
};

/**
 * Bursty generator: every burstPeriod, emit burstPackets packets at
 * burstRate line rate, then stay silent until the next period. With
 * burstPackets equal to the RX ring size, this reproduces the paper's
 * burst-length rule exactly.
 */
class BurstyTrafficGen : public TrafficSource
{
  public:
    struct BurstParams
    {
        sim::Tick burstPeriod = 10 * sim::oneMs;
        std::uint32_t burstPackets = 1024;
        double burstRateGbps = 100.0;
    };

    BurstyTrafficGen(sim::Simulation &simulation, const std::string &name,
                     nic::Nic &nicPort, const TrafficConfig &config,
                     const BurstParams &params);

    void start() override;

    /** Duration of one burst (the paper's "burst length"). */
    sim::Tick burstLength() const;

    const BurstParams &params() const { return burst; }

    void serialize(ckpt::Serializer &s) const override;
    void unserialize(ckpt::Deserializer &d) override;

  private:
    void tick();
    void fire() override { tick(); }

    BurstParams burst;
    sim::Tick interPacket;
    std::uint32_t inBurstRemaining = 0;
    sim::Tick nextBurstStart = 0;
};

/**
 * Poisson-arrival generator at a mean rate.
 */
class PoissonTrafficGen : public TrafficSource
{
  public:
    PoissonTrafficGen(sim::Simulation &simulation,
                      const std::string &name, nic::Nic &nicPort,
                      const TrafficConfig &config, double rateGbps);

    void start() override;

    void serialize(ckpt::Serializer &s) const override;
    void unserialize(ckpt::Deserializer &d) override;

  private:
    void tick();
    void fire() override { tick(); }

    double meanGapTicks;
    sim::Rng rng;
};

/**
 * Replays a recorded trace (e.g.\ loaded with net::PcapReader):
 * every record is delivered at its recorded offset from start(),
 * with its recorded flow identity, DSCP and frame size. Optionally
 * loops the trace with a fixed gap between iterations.
 */
class TraceTrafficGen : public TrafficSource
{
  public:
    TraceTrafficGen(sim::Simulation &simulation,
                    const std::string &name, nic::Nic &nicPort,
                    std::vector<net::TraceRecord> trace,
                    bool loop = false,
                    sim::Tick loopGap = sim::oneMs);

    void start() override;

    std::size_t traceLength() const { return trace.size(); }

    void serialize(ckpt::Serializer &s) const override;
    void unserialize(ckpt::Deserializer &d) override;

  private:
    void deliverNext();
    void fire() override { deliverNext(); }

    std::vector<net::TraceRecord> trace;
    bool loop;
    sim::Tick loopGap;
    std::size_t next = 0;
    sim::Tick epoch = 0; ///< simulated time of trace position 0
};

/** Convenience: build @p n UDP flows targeting distinct ports. */
std::vector<FlowSpec> makeFlows(std::uint32_t n,
                                std::uint32_t baseDstPort = 5000,
                                std::uint8_t dscp = 0);

} // namespace gen

#endif // IDIO_GEN_TRAFFIC_HH
