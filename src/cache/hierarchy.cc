/**
 * @file
 * MemoryHierarchy implementation.
 */

#include "hierarchy.hh"

#include "ckpt/serializer.hh"
#include "mem/phys_alloc.hh"
#include "sim/simulation.hh"

namespace cache
{

MemoryHierarchy::MemoryHierarchy(sim::Simulation &simulation,
                                 const std::string &name,
                                 const HierarchyConfig &config)
    : sim::SimObject(simulation, name),
      statGroup(simulation.statsRegistry(), name),
      directDramWrites(statGroup, "directDramWrites",
                       "inbound DMA writes steered straight to DRAM"),
      selfInvalFaults(statGroup, "selfInvalFaults",
                      "self-invalidates refused on non-Invalidatable "
                      "pages"),
      pcieReads(statGroup, "pcieReads", "outbound DMA cacheline reads"),
      pcieWrites(statGroup, "pcieWrites",
                 "inbound DMA cacheline writes"),
      coherenceMigrations(statGroup, "coherenceMigrations",
                          "lines migrated between private caches"),
      cfg(config), trc(simulation.tracer().registerSource(name))
{
    if (cfg.numCores == 0 || cfg.numCores > 63)
        sim::fatal("numCores %u out of range [1, 63]", cfg.numCores);

    allocMasks.reserve(cfg.numCores);
    for (std::uint32_t c = 0; c < cfg.numCores; ++c)
        allocMasks.push_back(cfg.coreLlcMask(c));

    l1Lat = cfg.cyclesToTicks(cfg.l1.latencyCycles);
    mlcLat = cfg.cyclesToTicks(cfg.mlc.latencyCycles);
    llcLat = cfg.cyclesToTicks(cfg.llcPerCore.latencyCycles);

    std::uint64_t totalMlcLines = 0;
    for (std::uint32_t c = 0; c < cfg.numCores; ++c) {
        const std::string coreName =
            name + ".core" + std::to_string(c);
        l1s.push_back(std::make_unique<PrivateCache>(
            simulation, coreName + ".l1d", cfg.l1.sizeBytes,
            cfg.l1.assoc, cfg.replacement));
        mlcs.push_back(std::make_unique<PrivateCache>(
            simulation, coreName + ".mlc", cfg.mlcSize(c),
            cfg.mlc.assoc, cfg.replacement));
        totalMlcLines += cfg.mlcSize(c) / mem::lineSize;
    }

    sharedLlc = std::make_unique<NonInclusiveLlc>(
        simulation, name + ".llc", cfg.llcSizeBytes(),
        cfg.llcPerCore.assoc, cfg.ddioWays, cfg.replacement);

    const auto dirEntries = static_cast<std::uint64_t>(
        static_cast<double>(totalMlcLines) * cfg.directoryCoverage);
    dir = std::make_unique<MlcDirectory>(simulation, name + ".dir",
                                         dirEntries, cfg.directoryAssoc,
                                         cfg.replacement);

    mem::DramConfig dramCfg;
    dramCfg.accessLatencyNs = cfg.dramLatencyNs;
    dramCfg.bandwidthGBps = cfg.dramBandwidthGBps;
    dramModel = std::make_unique<mem::DramModel>(
        simulation, name + ".dram", dramCfg);
}

mem::AccessResult
MemoryHierarchy::coreRead(sim::CoreId core, sim::Addr addr)
{
    return coreAccess(core, addr, mem::AccessType::Read);
}

mem::AccessResult
MemoryHierarchy::coreWrite(sim::CoreId core, sim::Addr addr)
{
    return coreAccess(core, addr, mem::AccessType::Write);
}

mem::AccessResult
MemoryHierarchy::coreAccess(sim::CoreId core, sim::Addr addr,
                            mem::AccessType type)
{
    if (splitOn)
        return splitCoreAccess(core, addr, type);

    addr = mem::lineAlign(addr);
    PrivateCache &l1c = *l1s[core];
    PrivateCache &mlcc = *mlcs[core];
    const bool isWrite = (type == mem::AccessType::Write);

    sim::Tick lat = l1Lat;

    // L1 hit.
    if (LineRef ref = l1c.probe(addr)) {
        ++l1c.hits;
        l1c.tags().touch(ref);
        if (isWrite)
            ref.line->dirty = true;
        return {lat, mem::HitLevel::L1};
    }
    ++l1c.misses;

    lat += mlcLat;

    // MLC hit: fill L1 and serve. The first demand hit retires a
    // prefetched line (the prefetch was useful).
    if (LineRef ref = mlcc.probe(addr)) {
        ++mlcc.hits;
        mlcc.tags().touch(ref);
        if (ref.line->prefetched) {
            ref.line->prefetched = false;
            if (prefetchRetireObserver)
                prefetchRetireObserver(core);
        }
        l1Fill(core, addr, isWrite);
        return {lat, mem::HitLevel::MLC};
    }
    ++mlcc.misses;

    lat += llcLat;

    // Migratory coherence: another core's private caches may hold the
    // (possibly dirty) line; pull it over before consulting LLC/DRAM.
    {
        bool dirty = false;
        bool io = false;
        if (migrateFromPeers(core, addr, &dirty, &io)) {
            installMlc(core, addr, dirty, io, false);
            l1Fill(core, addr, isWrite);
            return {lat, mem::HitLevel::LLC};
        }
    }

    // LLC lookup: a hit moves the data out of the LLC into the MLC
    // (the tag conceptually moves to the Excl-MLC directory, Fig. 2
    // steps A-2.1 / B-2.1).
    bool dirty = false;
    bool io = false;
    mem::HitLevel level;
    if (LineRef ref = sharedLlc->probe(addr)) {
        ++sharedLlc->hits;
        ++sharedLlc->demandMoves;
        dirty = ref.line->dirty;
        io = ref.line->io;
        sharedLlc->tags().invalidate(ref);
        level = mem::HitLevel::LLC;
    } else {
        ++sharedLlc->misses;
        lat += dramModel->access(mem::AccessType::Read);
        level = mem::HitLevel::DRAM;
    }

    installMlc(core, addr, dirty, io, false);
    l1Fill(core, addr, isWrite);
    return {lat, level};
}

void
MemoryHierarchy::installMlc(sim::CoreId core, sim::Addr addr, bool dirty,
                            bool io, bool isPrefetch)
{
    PrivateCache &mlcc = *mlcs[core];
    LineRef slot = mlcc.tags().findFillSlot(addr);
    if (slot.line->valid)
        evictMlcVictim(core, *slot.line);
    CacheLine &line = mlcc.tags().fill(slot, addr, dirty, io);
    line.prefetched = isPrefetch;
    if (isPrefetch) {
        ++mlcc.prefetchFills;
        IDIO_TRACE_INSTANT(trc, trace::EventKind::CacheMlcPrefetchFill,
                           now(), 0, core, addr);
    } else {
        ++mlcc.fills;
        IDIO_TRACE_INSTANT(trc, trace::EventKind::CacheMlcFill, now(),
                           0, core, addr);
    }

    DirectoryVictim dv = dir->add(core, addr);
    if (dv.valid)
        handleDirectoryVictim(dv);
}

void
MemoryHierarchy::evictMlcVictim(sim::CoreId core, CacheLine victim)
{
    notePrefetchGone(core, victim);

    // Merge a dirtier L1 copy into the outgoing victim and drop it
    // (the L1-subset-of-MLC invariant).
    bool l1Dirty = false;
    dropFromL1(core, victim.addr, &l1Dirty);
    victim.dirty = victim.dirty || l1Dirty;

    dir->remove(core, victim.addr);

    PrivateCache &mlcc = *mlcs[core];
    if (victim.dirty)
        ++mlcc.writebacks;
    else
        ++mlcc.cleanEvictions;
    IDIO_TRACE_INSTANT(trc, trace::EventKind::CacheMlcEvict, now(), 0,
                       victim.dirty ? 1 : 0, victim.addr);

    if (victim.dirty || cfg.insertCleanVictims) {
        llcInsertVictim(victim.addr, victim.dirty, victim.io,
                        allocMasks[core]);
        if (mlcWbObserver)
            mlcWbObserver(core);
    }
}

void
MemoryHierarchy::llcInsertVictim(sim::Addr addr, bool dirty, bool io,
                                 WayMask allocMask)
{
    ++sharedLlc->victimInserts;
    if (LineRef ref = sharedLlc->probe(addr)) {
        // Rare non-exclusive leftover: update in place.
        ref.line->dirty = ref.line->dirty || dirty;
        ref.line->io = ref.line->io || io;
        sharedLlc->tags().touch(ref);
        return;
    }
    LineRef slot = sharedLlc->tags().findFillSlot(addr, allocMask);
    if (slot.line->valid)
        evictLlcLine(*slot.line);
    sharedLlc->tags().fill(slot, addr, dirty, io);
}

void
MemoryHierarchy::evictLlcLine(const CacheLine &line)
{
    if (line.dirty) {
        dramModel->access(mem::AccessType::Write);
        ++sharedLlc->writebacks;
        IDIO_TRACE_INSTANT(trc, trace::EventKind::CacheLlcWb, now(),
                           0, 0, line.addr);
    } else {
        ++sharedLlc->cleanDrops;
    }
}

void
MemoryHierarchy::l1Fill(sim::CoreId core, sim::Addr addr, bool makeDirty)
{
    PrivateCache &l1c = *l1s[core];
    if (LineRef ref = l1c.probe(addr)) {
        l1c.tags().touch(ref);
        if (makeDirty)
            ref.line->dirty = true;
        return;
    }
    LineRef slot = l1c.tags().findFillSlot(addr);
    if (slot.line->valid) {
        // Write a dirty L1 victim through to its MLC line.
        if (slot.line->dirty) {
            LineRef mlcRef = mlcs[core]->probe(slot.line->addr);
            SIM_ASSERT(mlcRef,
                       "L1 victim not present in MLC (inclusion "
                       "violated)");
            mlcRef.line->dirty = true;
        }
        l1c.tags().invalidate(slot);
    }
    l1c.tags().fill(slot, addr, makeDirty, false);
    ++l1c.fills;
}

void
MemoryHierarchy::dropFromL1(sim::CoreId core, sim::Addr addr,
                            bool *dirtyOut)
{
    PrivateCache &l1c = *l1s[core];
    if (LineRef ref = l1c.probe(addr)) {
        if (dirtyOut)
            *dirtyOut = ref.line->dirty;
        l1c.tags().invalidate(ref);
    } else if (dirtyOut) {
        *dirtyOut = false;
    }
}

void
MemoryHierarchy::invalidateMlcCopies(sim::Addr addr)
{
    const std::uint64_t sharers = dir->sharersOf(addr);
    if (!sharers)
        return;
    if (splitOn) {
        // The sharers' MLCs live in other timing domains: send
        // fire-and-forget invalidation messages (the whole line is
        // being overwritten, so no data needs to come back) and drop
        // the directory entries eagerly. The trace records the inval
        // at send time, per the directory's view.
        for (std::uint32_t c = 0; c < cfg.numCores; ++c) {
            if (!(sharers & (std::uint64_t(1) << c)))
                continue;
            IDIO_TRACE_INSTANT(trc, trace::EventKind::CachePcieInval,
                               now(), 0, c, addr);
            if (splitHooks.mlcInval)
                splitHooks.mlcInval(c, addr);
        }
        dir->removeAll(addr);
        return;
    }
    for (std::uint32_t c = 0; c < cfg.numCores; ++c) {
        if (!(sharers & (std::uint64_t(1) << c)))
            continue;
        dropFromL1(c, addr);
        if (LineRef ref = mlcs[c]->probe(addr)) {
            notePrefetchGone(c, *ref.line);
            mlcs[c]->tags().invalidate(ref);
            ++mlcs[c]->pcieInvals;
            IDIO_TRACE_INSTANT(trc, trace::EventKind::CachePcieInval,
                               now(), 0, c, addr);
        }
    }
    dir->removeAll(addr);
}

bool
MemoryHierarchy::migrateFromPeers(sim::CoreId requester, sim::Addr addr,
                                  bool *dirtyOut, bool *ioOut)
{
    const std::uint64_t sharers =
        dir->sharersOf(addr) & ~(std::uint64_t(1) << requester);
    if (!sharers)
        return false;

    bool found = false;
    for (std::uint32_t c = 0; c < cfg.numCores; ++c) {
        if (!(sharers & (std::uint64_t(1) << c)))
            continue;
        bool l1Dirty = false;
        dropFromL1(c, addr, &l1Dirty);
        if (LineRef ref = mlcs[c]->probe(addr)) {
            *dirtyOut = *dirtyOut || ref.line->dirty || l1Dirty;
            *ioOut = *ioOut || ref.line->io;
            notePrefetchGone(c, *ref.line);
            mlcs[c]->tags().invalidate(ref);
            dir->remove(c, addr);
            found = true;
        } else {
            dir->remove(c, addr);
        }
    }
    if (found)
        ++coherenceMigrations;
    return found;
}

void
MemoryHierarchy::handleDirectoryVictim(const DirectoryVictim &victim)
{
    // The directory lost track of this line; every MLC copy must go.
    // Dirty copies are written back into the LLC like normal victims.
    for (std::uint32_t c = 0; c < cfg.numCores; ++c) {
        if (!(victim.sharers & (std::uint64_t(1) << c)))
            continue;
        bool l1Dirty = false;
        dropFromL1(c, victim.addr, &l1Dirty);
        if (LineRef ref = mlcs[c]->probe(victim.addr)) {
            const bool dirty = ref.line->dirty || l1Dirty;
            const bool io = ref.line->io;
            notePrefetchGone(c, *ref.line);
            mlcs[c]->tags().invalidate(ref);
            ++mlcs[c]->backInvals;
            if (dirty)
                ++mlcs[c]->writebacks;
            else
                ++mlcs[c]->cleanEvictions;
            IDIO_TRACE_INSTANT(trc, trace::EventKind::CacheMlcEvict,
                               now(), 0, dirty ? 1 : 0, victim.addr);
            if (dirty || cfg.insertCleanVictims) {
                llcInsertVictim(victim.addr, dirty, io,
                                allocMasks[c]);
                if (mlcWbObserver)
                    mlcWbObserver(c);
            }
        }
    }
}

bool
MemoryHierarchy::coreInvalidate(sim::CoreId core, sim::Addr addr)
{
    addr = mem::lineAlign(addr);
    if (cfg.pageAttributes && !cfg.pageAttributes->isInvalidatable(addr)) {
        if (splitOn) {
            // The fault counter is uncore state; a faulting
            // self-invalidate from a core domain has no owner to
            // charge it to. Split-mode workloads only invalidate
            // their own DMA buffers, so treat it as a model bug.
            sim::fatal("self-invalidate fault on non-Invalidatable "
                       "page %#llx in split-link mode",
                       (unsigned long long)addr);
        }
        ++selfInvalFaults;
        return false;
    }

    if (splitOn) {
        dropFromL1(core, addr);
        if (LineRef ref = mlcs[core]->probe(addr)) {
            splitNotePrefetchGone(core, *ref.line);
            mlcs[core]->tags().invalidate(ref);
            ++mlcs[core]->selfInvals;
        }
        // Directory (and optional LLC) upkeep happens uncore-side;
        // send unconditionally, mirroring the legacy dir->remove.
        if (splitHooks.coreInval)
            splitHooks.coreInval(core, addr);
        return true;
    }

    dropFromL1(core, addr);
    if (LineRef ref = mlcs[core]->probe(addr)) {
        notePrefetchGone(core, *ref.line);
        mlcs[core]->tags().invalidate(ref);
        ++mlcs[core]->selfInvals;
        IDIO_TRACE_INSTANT(trc, trace::EventKind::CacheSelfInval,
                           now(), 0, core, addr);
    }
    dir->remove(core, addr);

    if (cfg.invalidateReachesLlc) {
        if (LineRef ref = sharedLlc->probe(addr)) {
            sharedLlc->tags().invalidate(ref);
            ++sharedLlc->selfInvals;
        }
    }
    return true;
}

std::uint64_t
MemoryHierarchy::invalidateRange(sim::CoreId core, sim::Addr addr,
                                 std::uint64_t bytes)
{
    std::uint64_t dropped = 0;
    const sim::Addr first = mem::lineAlign(addr);
    const sim::Addr last = mem::lineAlign(addr + bytes - 1);
    for (sim::Addr a = first; a <= last; a += mem::lineSize) {
        const bool hadLine = mlcs[core]->contains(a);
        if (coreInvalidate(core, a) && hadLine)
            ++dropped;
    }
    return dropped;
}

void
MemoryHierarchy::pcieWrite(sim::Addr addr)
{
    addr = mem::lineAlign(addr);
    ++pcieWrites;

    // P1/P2: drop MLC copies (the whole line is being overwritten).
    invalidateMlcCopies(addr);

    // P2/P3/P4: in-place update wherever the line already lives.
    if (LineRef ref = sharedLlc->probe(addr)) {
        ref.line->dirty = true;
        ref.line->io = true;
        sharedLlc->tags().touch(ref);
        ++sharedLlc->ddioUpdates;
        IDIO_TRACE_INSTANT(trc, trace::EventKind::CacheDdioUpdate,
                           now(), 0, 0, addr);
        return;
    }

    // P1/P5: write-allocate into the DDIO ways.
    LineRef slot =
        sharedLlc->tags().findFillSlot(addr, sharedLlc->ddioMask());
    const bool displaced = slot.line->valid;
    if (displaced) {
        evictLlcLine(*slot.line);
        ++sharedLlc->ddioWayEvictions;
    }
    sharedLlc->tags().fill(slot, addr, true, true).ddioAlloc = true;
    ++sharedLlc->ddioAllocs;
    IDIO_TRACE_INSTANT(trc, trace::EventKind::CacheDdioAlloc, now(),
                       0, displaced ? 1 : 0, addr);
}

void
MemoryHierarchy::pcieWriteDirectDram(sim::Addr addr)
{
    addr = mem::lineAlign(addr);
    ++pcieWrites;
    ++directDramWrites;
    IDIO_TRACE_INSTANT(trc, trace::EventKind::CacheDramDirect, now(),
                       0, 0, addr);

    invalidateMlcCopies(addr);
    if (LineRef ref = sharedLlc->probe(addr)) {
        // Cached copy is stale after the overwrite; drop silently.
        sharedLlc->tags().invalidate(ref);
    }
    dramModel->access(mem::AccessType::Write);
}

sim::Tick
MemoryHierarchy::pcieRead(sim::Addr addr)
{
    if (splitOn) {
        // Egress would need synchronous dirty-copy pullback from
        // core-owned MLCs; no split workload reads device-bound data
        // yet, so refuse instead of racing.
        sim::fatal("outbound DMA reads are not supported in "
                   "split-link mode");
    }

    addr = mem::lineAlign(addr);
    ++pcieReads;

    // Pull dirty MLC copies back into the LLC and invalidate them
    // (paper Fig. 3 right: egress reads invalidate MLC copies).
    std::uint64_t sharers = dir->sharersOf(addr);
    if (sharers) {
        for (std::uint32_t c = 0; c < cfg.numCores; ++c) {
            if (!(sharers & (std::uint64_t(1) << c)))
                continue;
            bool l1Dirty = false;
            dropFromL1(c, addr, &l1Dirty);
            if (LineRef ref = mlcs[c]->probe(addr)) {
                const bool dirty = ref.line->dirty || l1Dirty;
                const bool io = ref.line->io;
                notePrefetchGone(c, *ref.line);
                mlcs[c]->tags().invalidate(ref);
                ++mlcs[c]->pcieInvals;
                IDIO_TRACE_INSTANT(
                    trc, trace::EventKind::CachePcieInval, now(), 0,
                    c, addr);
                if (dirty) {
                    ++mlcs[c]->writebacks;
                    IDIO_TRACE_INSTANT(
                        trc, trace::EventKind::CacheMlcEvict, now(),
                        0, 1, addr);
                    llcInsertVictim(addr, true, io, ~WayMask(0));
                    if (mlcWbObserver)
                        mlcWbObserver(c);
                }
            }
        }
        dir->removeAll(addr);
    }

    if (LineRef ref = sharedLlc->probe(addr)) {
        sharedLlc->tags().touch(ref);
        return llcLat;
    }
    return dramModel->access(mem::AccessType::Read);
}

bool
MemoryHierarchy::mlcPrefetch(sim::CoreId core, sim::Addr addr)
{
    addr = mem::lineAlign(addr);

    if (splitOn) {
        // The core-owned MLC cannot be probed from the uncore; the
        // directory (which tracks MLC residency eagerly) stands in
        // for both the contains() check and the other-owner guard. A
        // hint that still races with a demand fill retires itself on
        // the core side.
        if (dir->sharersOf(addr))
            return false;
        bool dirty = false;
        bool io = false;
        if (LineRef ref = sharedLlc->probe(addr)) {
            dirty = ref.line->dirty;
            io = ref.line->io;
            ++sharedLlc->demandMoves;
            sharedLlc->tags().invalidate(ref);
        } else if (cfg.prefetchFromDram) {
            dramModel->access(mem::AccessType::Read);
        } else {
            return false;
        }
        DirectoryVictim dv = dir->add(core, addr);
        if (dv.valid)
            splitDirectoryVictim(dv);
        IDIO_TRACE_INSTANT(trc, trace::EventKind::CacheMlcPrefetchFill,
                           now(), 0, core, addr);
        if (splitHooks.prefetchInstall)
            splitHooks.prefetchInstall(core, addr, dirty, io);
        return true;
    }

    if (mlcs[core]->contains(addr))
        return false;

    // A prefetch probe that finds the line owned by another core's
    // private caches drops the hint: the data there may be dirty, and
    // stealing it on a speculative hint would thrash. (DMA hints never
    // hit this case — the inbound write already invalidated all MLC
    // copies — but the guard keeps the single-owner invariant under
    // arbitrary usage.)
    if (dir->sharersOf(addr) & ~(std::uint64_t(1) << core))
        return false;

    bool dirty = false;
    bool io = false;
    if (LineRef ref = sharedLlc->probe(addr)) {
        dirty = ref.line->dirty;
        io = ref.line->io;
        ++sharedLlc->demandMoves;
        sharedLlc->tags().invalidate(ref);
    } else if (cfg.prefetchFromDram) {
        dramModel->access(mem::AccessType::Read);
    } else {
        return false;
    }

    installMlc(core, addr, dirty, io, true);
    return true;
}

void
MemoryHierarchy::enableSplitMode(SplitHooks hooks)
{
    splitOn = true;
    splitHooks = std::move(hooks);
    splitPending.assign(cfg.numCores, {});
}

std::vector<MemoryHierarchy::SplitPendingFill>
MemoryHierarchy::takePendingFills(sim::CoreId core)
{
    std::vector<SplitPendingFill> out;
    out.swap(splitPending[core]);
    return out;
}

mem::AccessResult
MemoryHierarchy::splitCoreAccess(sim::CoreId core, sim::Addr addr,
                                 mem::AccessType type)
{
    addr = mem::lineAlign(addr);
    PrivateCache &l1c = *l1s[core];
    PrivateCache &mlcc = *mlcs[core];
    const bool isWrite = (type == mem::AccessType::Write);

    sim::Tick lat = l1Lat;

    if (LineRef ref = l1c.probe(addr)) {
        ++l1c.hits;
        l1c.tags().touch(ref);
        if (isWrite)
            ref.line->dirty = true;
        return {lat, mem::HitLevel::L1, false};
    }
    ++l1c.misses;

    lat += mlcLat;

    if (LineRef ref = mlcc.probe(addr)) {
        ++mlcc.hits;
        mlcc.tags().touch(ref);
        if (ref.line->prefetched) {
            ref.line->prefetched = false;
            if (splitHooks.prefetchRetire)
                splitHooks.prefetchRetire(core);
        }
        l1Fill(core, addr, isWrite);
        return {lat, mem::HitLevel::MLC, false};
    }
    ++mlcc.misses;

    // Private-cache miss: pend a fill request for the mesh link. The
    // returned latency covers only the local probes; the reply adds
    // the LLC/DRAM share. A second access to the same line within one
    // step rides the first request (write intent merges), so the core
    // never has two fills outstanding for one address.
    for (SplitPendingFill &p : splitPending[core]) {
        if (p.addr == addr) {
            p.write = p.write || isWrite;
            return {lat, mem::HitLevel::LLC, true};
        }
    }
    splitPending[core].push_back(SplitPendingFill{addr, isWrite});
    return {lat, mem::HitLevel::LLC, true};
}

void
MemoryHierarchy::splitEvictMlcVictim(sim::CoreId core, CacheLine victim)
{
    splitNotePrefetchGone(core, victim);

    bool l1Dirty = false;
    dropFromL1(core, victim.addr, &l1Dirty);
    victim.dirty = victim.dirty || l1Dirty;

    PrivateCache &mlcc = *mlcs[core];
    if (victim.dirty)
        ++mlcc.writebacks;
    else
        ++mlcc.cleanEvictions;

    // Every victim leaves over the link, clean ones included: the
    // uncore owns the directory and must drop this core's sharer bit.
    if (splitHooks.victimWb)
        splitHooks.victimWb(core, victim.addr, victim.dirty, victim.io);
}

void
MemoryHierarchy::splitInstallFill(sim::CoreId core, sim::Addr addr,
                                  bool dirty, bool io, bool write)
{
    PrivateCache &mlcc = *mlcs[core];
    if (LineRef ref = mlcc.probe(addr)) {
        // A prefetch install raced ahead of this demand fill: merge
        // into the existing line and retire the prefetch credit.
        mlcc.tags().touch(ref);
        ref.line->dirty = ref.line->dirty || dirty;
        ref.line->io = ref.line->io || io;
        if (ref.line->prefetched) {
            ref.line->prefetched = false;
            if (splitHooks.prefetchRetire)
                splitHooks.prefetchRetire(core);
        }
        l1Fill(core, addr, write);
        return;
    }
    LineRef slot = mlcc.tags().findFillSlot(addr);
    if (slot.line->valid)
        splitEvictMlcVictim(core, *slot.line);
    mlcc.tags().fill(slot, addr, dirty, io);
    ++mlcc.fills;
    l1Fill(core, addr, write);
}

void
MemoryHierarchy::splitInstallPrefetch(sim::CoreId core, sim::Addr addr,
                                      bool dirty, bool io)
{
    PrivateCache &mlcc = *mlcs[core];
    if (mlcc.contains(addr)) {
        // The hint raced with a demand fill; retire it immediately so
        // the prefetcher's outstanding-credit window stays balanced.
        if (splitHooks.prefetchRetire)
            splitHooks.prefetchRetire(core);
        return;
    }
    LineRef slot = mlcc.tags().findFillSlot(addr);
    if (slot.line->valid)
        splitEvictMlcVictim(core, *slot.line);
    CacheLine &line = mlcc.tags().fill(slot, addr, dirty, io);
    line.prefetched = true;
    ++mlcc.prefetchFills;
}

void
MemoryHierarchy::splitHandleMlcInval(sim::CoreId core, sim::Addr addr)
{
    // Overwrite semantics: the DMA write replaced the line, so even a
    // dirty copy drops without a writeback (as in the legacy path).
    dropFromL1(core, addr);
    if (LineRef ref = mlcs[core]->probe(addr)) {
        splitNotePrefetchGone(core, *ref.line);
        mlcs[core]->tags().invalidate(ref);
        ++mlcs[core]->pcieInvals;
    }
}

void
MemoryHierarchy::splitHandleBackInval(sim::CoreId core, sim::Addr addr)
{
    bool l1Dirty = false;
    dropFromL1(core, addr, &l1Dirty);
    if (LineRef ref = mlcs[core]->probe(addr)) {
        const bool dirty = ref.line->dirty || l1Dirty;
        const bool io = ref.line->io;
        splitNotePrefetchGone(core, *ref.line);
        mlcs[core]->tags().invalidate(ref);
        ++mlcs[core]->backInvals;
        if (dirty)
            ++mlcs[core]->writebacks;
        else
            ++mlcs[core]->cleanEvictions;
        if ((dirty || cfg.insertCleanVictims) && splitHooks.victimWb)
            splitHooks.victimWb(core, addr, dirty, io);
    }
}

MemoryHierarchy::SplitFillReply
MemoryHierarchy::splitHandleFillReq(sim::CoreId core, sim::Addr addr)
{
    // The uncore share of a demand miss. No migratory coherence in
    // split mode (a documented relaxation: split workloads keep
    // per-core disjoint working sets), so a private-cache miss goes
    // straight to the LLC, then DRAM.
    SplitFillReply reply;
    reply.extraLat = llcLat;
    if (LineRef ref = sharedLlc->probe(addr)) {
        ++sharedLlc->hits;
        ++sharedLlc->demandMoves;
        reply.dirty = ref.line->dirty;
        reply.io = ref.line->io;
        sharedLlc->tags().invalidate(ref);
        reply.level = mem::HitLevel::LLC;
    } else {
        ++sharedLlc->misses;
        reply.extraLat += dramModel->access(mem::AccessType::Read);
        reply.level = mem::HitLevel::DRAM;
    }
    DirectoryVictim dv = dir->add(core, addr);
    if (dv.valid)
        splitDirectoryVictim(dv);
    return reply;
}

void
MemoryHierarchy::splitHandleVictimWb(sim::CoreId core, sim::Addr addr,
                                     bool dirty, bool io)
{
    // remove() is a no-op when a back-invalidation already dropped the
    // entry, so one handler covers both normal and forced evictions.
    dir->remove(core, addr);
    IDIO_TRACE_INSTANT(trc, trace::EventKind::CacheMlcEvict, now(), 0,
                       dirty ? 1 : 0, addr);
    if (dirty || cfg.insertCleanVictims) {
        llcInsertVictim(addr, dirty, io, allocMasks[core]);
        if (mlcWbObserver)
            mlcWbObserver(core);
    }
}

void
MemoryHierarchy::splitHandleCoreInval(sim::CoreId core, sim::Addr addr)
{
    dir->remove(core, addr);
    IDIO_TRACE_INSTANT(trc, trace::EventKind::CacheSelfInval, now(), 0,
                       core, addr);
    if (cfg.invalidateReachesLlc) {
        if (LineRef ref = sharedLlc->probe(addr)) {
            sharedLlc->tags().invalidate(ref);
            ++sharedLlc->selfInvals;
        }
    }
}

void
MemoryHierarchy::splitDirectoryVictim(const DirectoryVictim &victim)
{
    // Fire-and-forget: the directory entry is gone already; dirty data
    // comes back later through the sharers' victim-writeback messages.
    for (std::uint32_t c = 0; c < cfg.numCores; ++c) {
        if (!(victim.sharers & (std::uint64_t(1) << c)))
            continue;
        if (splitHooks.backInval)
            splitHooks.backInval(c, victim.addr);
    }
}

std::uint64_t
MemoryHierarchy::totalMlcWritebacks() const
{
    std::uint64_t n = 0;
    for (const auto &m : mlcs)
        n += m->writebacks.get() + m->cleanEvictions.get();
    return n;
}

std::uint64_t
MemoryHierarchy::totalMlcPcieInvals() const
{
    std::uint64_t n = 0;
    for (const auto &m : mlcs)
        n += m->pcieInvals.get();
    return n;
}

void
MemoryHierarchy::setCoreAllocMask(sim::CoreId core, WayMask mask)
{
    if ((mask & lowWays(sharedLlc->tags().assoc())) == 0)
        sim::fatal("core %u alloc mask %#llx selects no LLC way",
                   core, static_cast<unsigned long long>(mask));
    allocMasks[core] = mask;
}

void
MemoryHierarchy::serialize(ckpt::Serializer &s) const
{
    // Only the runtime-mutable CAT masks: cache contents live in the
    // child objects and everything else is rebuilt by construction.
    for (const WayMask m : allocMasks)
        s.writeU64(m);
}

void
MemoryHierarchy::unserialize(ckpt::Deserializer &d)
{
    for (auto &m : allocMasks)
        m = d.readU64();
}

} // namespace cache
