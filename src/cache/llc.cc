/**
 * @file
 * NonInclusiveLlc implementation.
 */

#include "llc.hh"

#include "ckpt/serializer.hh"
#include "sim/simulation.hh"

namespace cache
{

NonInclusiveLlc::NonInclusiveLlc(sim::Simulation &simulation,
                                 const std::string &name,
                                 std::uint64_t sizeBytes,
                                 std::uint32_t assoc,
                                 std::uint32_t ddioWays,
                                 const std::string &replacement)
    : sim::SimObject(simulation, name),
      statGroup(simulation.statsRegistry(), name),
      hits(statGroup, "hits", "demand hits"),
      misses(statGroup, "misses", "demand misses"),
      ddioAllocs(statGroup, "ddioAllocs",
                 "PCIe write-allocations into DDIO ways"),
      ddioUpdates(statGroup, "ddioUpdates", "PCIe in-place updates"),
      ddioWayEvictions(statGroup, "ddioWayEvictions",
                       "victims displaced by DDIO write-allocations"),
      victimInserts(statGroup, "victimInserts",
                    "allocations caused by MLC evictions"),
      writebacks(statGroup, "writebacks",
                 "dirty evictions written to DRAM (LLC WB)"),
      cleanDrops(statGroup, "cleanDrops",
                 "clean evictions dropped without a DRAM write"),
      demandMoves(statGroup, "demandMoves",
                  "lines moved out to an MLC on demand/prefetch fill"),
      selfInvals(statGroup, "selfInvals",
                 "lines dropped by the self-invalidate instruction"),
      nDdioWays(ddioWays),
      array(sizeBytes, assoc, makeReplacementPolicy(replacement))
{
    if (ddioWays > assoc)
        sim::fatal("ddioWays %u exceeds LLC associativity %u", ddioWays,
                   assoc);
}

void
NonInclusiveLlc::setDdioWays(std::uint32_t ways)
{
    if (ways == 0 || ways > array.assoc())
        sim::fatal("setDdioWays(%u) out of range [1, %u]", ways,
                   array.assoc());

    // Grandfather lines that a shrink strands outside the partition:
    // they were legally allocated under the old mask, so drop their
    // ddioAlloc mark instead of tripping the confinement invariant.
    if (ways < nDdioWays) {
        for (std::uint32_t s = 0; s < array.numSets(); ++s) {
            for (std::uint32_t w = ways; w < nDdioWays; ++w)
                array.lineAt(s, w).ddioAlloc = false;
        }
    }
    nDdioWays = ways;
}

std::uint64_t
NonInclusiveLlc::ddioOccupancy() const
{
    return array.countValid(
        [this](const CacheLine &, std::uint32_t way) {
            return way < nDdioWays;
        });
}

std::uint64_t
NonInclusiveLlc::bloatedIoOccupancy() const
{
    return array.countValid(
        [this](const CacheLine &l, std::uint32_t way) {
            return l.io && way >= nDdioWays;
        });
}

void
NonInclusiveLlc::serialize(ckpt::Serializer &s) const
{
    // The partition width is runtime-tunable (DdioWayTuner), so it is
    // dynamic state even though it starts from the config.
    s.writeU32(nDdioWays);
    array.serialize(s);
}

void
NonInclusiveLlc::unserialize(ckpt::Deserializer &d)
{
    nDdioWays = d.readU32();
    array.unserialize(d);
}

} // namespace cache
