/**
 * @file
 * Generic set-associative tag array.
 *
 * TagArray is the storage substrate shared by the private caches, the
 * non-inclusive LLC, and the Excl-MLC directory. It stores one
 * CacheLine per (set, way), performs lookups by cacheline address, and
 * delegates victim choice to a ReplacementPolicy with masked candidate
 * sets.
 */

#ifndef IDIO_CACHE_TAG_ARRAY_HH
#define IDIO_CACHE_TAG_ARRAY_HH

#include <bit>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cache/replacement.hh"
#include "mem/addr.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace cache
{

/**
 * State of one cacheline slot.
 *
 * `io` is a sticky provenance bit: set when the line was produced by a
 * DMA write and carried along as the line migrates between levels. It
 * feeds the DMA-bloating occupancy statistics (paper Sec. III, Obs. 3).
 */
struct CacheLine
{
    sim::Addr addr = 0; ///< cacheline-aligned address
    bool valid = false;
    bool dirty = false;
    bool io = false;

    /**
     * Set on MLC lines installed by an IDIO prefetch and cleared on
     * the first demand hit; feeds the CPU-paced prefetcher's
     * outstanding-line accounting.
     */
    bool prefetched = false;

    /**
     * Set on LLC lines placed by a DDIO write-allocation and cleared
     * when the line leaves or the partition shrinks past it. The
     * invariant checker uses it to prove write-allocations stay
     * confined to the configured DDIO ways.
     */
    bool ddioAlloc = false;

    /** Presence bit-vector; used only by the MLC directory. */
    std::uint64_t sharers = 0;
};

/** Location of a line inside a TagArray. */
struct LineRef
{
    std::uint32_t set = 0;
    std::uint32_t way = 0;
    CacheLine *line = nullptr;

    explicit operator bool() const { return line != nullptr; }
};

/**
 * Set-associative array of CacheLines.
 */
class TagArray
{
  public:
    /**
     * @param sizeBytes Total capacity (must be numSets*assoc*64).
     * @param assoc Ways per set.
     * @param policy Replacement policy (owned).
     */
    TagArray(std::uint64_t sizeBytes, std::uint32_t assoc,
             std::unique_ptr<ReplacementPolicy> policy);

    /** Construct with an explicit set count instead of a byte size. */
    static TagArray withSets(std::uint32_t numSets, std::uint32_t assoc,
                             std::unique_ptr<ReplacementPolicy> policy);

    std::uint32_t numSets() const { return nSets; }
    std::uint32_t assoc() const { return nWays; }
    std::uint64_t capacityBytes() const
    {
        return std::uint64_t(nSets) * nWays * mem::lineSize;
    }

    /**
     * Set index for an address. Power-of-two set counts (every Table I
     * geometry) take a bitmask fast path; the generic modulo is kept
     * for odd geometries such as coverage-scaled directories.
     */
    std::uint32_t
    setIndex(sim::Addr addr) const
    {
        const std::uint64_t line = mem::lineNumber(addr);
        if (setsPow2)
            return static_cast<std::uint32_t>(line & setMask);
        return static_cast<std::uint32_t>(line % nSets);
    }

    /**
     * Find a valid line matching @p addr; LineRef is null on miss.
     *
     * Scans the dense tag side-array rather than the CacheLine structs:
     * one set's tags span two cachelines instead of six, and invalid
     * slots hold a misaligned sentinel that can never compare equal to
     * a line-aligned probe, so the loop is a single branchless compare
     * per way.
     */
    LineRef
    lookup(sim::Addr addr)
    {
        addr = mem::lineAlign(addr);
        const std::uint32_t set = setIndex(addr);
        const std::uint64_t *t = &tags[std::size_t(set) * nWays];
        for (std::uint32_t w = 0; w < nWays; ++w) {
            if (t[w] == addr)
                return LineRef{set, w, &lineAt(set, w)};
        }
        return LineRef{set, 0, nullptr};
    }

    /** const lookup. */
    const CacheLine *
    peek(sim::Addr addr) const
    {
        addr = mem::lineAlign(addr);
        const std::uint32_t set = setIndex(addr);
        const std::uint64_t *t = &tags[std::size_t(set) * nWays];
        for (std::uint32_t w = 0; w < nWays; ++w) {
            if (t[w] == addr)
                return &lineAt(set, w);
        }
        return nullptr;
    }

    /** Record a use of an existing line. */
    void
    touch(const LineRef &ref)
    {
        if (lruFast)
            lruFast->touchFast(ref.set, ref.way);
        else
            policy->touch(ref.set, ref.way);
    }

    /**
     * Choose a slot for a new fill of @p addr among @p candidates:
     * the lowest-index invalid candidate way if one exists (an O(1)
     * pick from the per-set free-way bitmask), else the policy victim.
     * The returned slot may hold a valid line the caller must evict.
     */
    LineRef
    findFillSlot(sim::Addr addr, WayMask candidates = ~WayMask(0))
    {
        addr = mem::lineAlign(addr);
        const std::uint32_t set = setIndex(addr);
        candidates &= lowWays(nWays);
        SIM_ASSERT(candidates != 0, "no candidate ways for fill");

        const WayMask free = candidates & freeWays[set];
        if (free != 0) {
            const auto w =
                static_cast<std::uint32_t>(std::countr_zero(free));
            return LineRef{set, w, &lineAt(set, w)};
        }
        const std::uint32_t victim =
            lruFast ? lruFast->victimFast(set, candidates)
                    : policy->victim(set, candidates);
        return LineRef{set, victim, &lineAt(set, victim)};
    }

    /**
     * Install @p addr into @p slot (which the caller already emptied or
     * chose to overwrite) and inform the policy.
     */
    CacheLine &fill(const LineRef &slot, sim::Addr addr, bool dirty,
                    bool io);

    /** Invalidate the line in @p slot. */
    void invalidate(const LineRef &slot);

    /** Direct slot access. */
    CacheLine &
    lineAt(std::uint32_t set, std::uint32_t way)
    {
        return lines[std::size_t(set) * nWays + way];
    }

    const CacheLine &
    lineAt(std::uint32_t set, std::uint32_t way) const
    {
        return lines[std::size_t(set) * nWays + way];
    }

    /** Count valid lines satisfying @p pred (pred may be null = all). */
    std::uint64_t
    countValid(const std::function<bool(const CacheLine &,
                                        std::uint32_t way)> &pred = {})
        const;

    /** Invalidate every line. */
    void clear();

    /** The replacement policy (for tests). */
    ReplacementPolicy &replacementPolicy() { return *policy; }

    /**
     * @{ Checkpoint the array contents plus the policy state. The
     * geometry is structural (rebuilt from config); unserialize
     * validates it and recomputes the derived tag/free-way arrays.
     */
    void serialize(ckpt::Serializer &s) const;
    void unserialize(ckpt::Deserializer &d);
    /** @} */

  private:
    TagArray(std::uint32_t numSets, std::uint32_t assoc,
             std::unique_ptr<ReplacementPolicy> policy, int);

    std::uint32_t nSets;
    std::uint32_t nWays;
    bool setsPow2;          ///< nSets is a power of two
    std::uint32_t setMask;  ///< nSets - 1, valid when setsPow2
    std::unique_ptr<ReplacementPolicy> policy;

    /**
     * Non-null when the policy is the default LRU: touch/victim/fill
     * on the lookup hot path then go through LruPolicy's non-virtual
     * fast entry points instead of an indirect call per access.
     */
    LruPolicy *lruFast = nullptr;

    std::vector<CacheLine> lines;

    /**
     * Tag of slot i is invalidTag when invalid, else lines[i].addr: a
     * sentinel in the always-zero low line-offset bits keeps lookup a
     * pure compare. fill/invalidate/clear maintain the invariant.
     */
    static constexpr std::uint64_t invalidTag = 1;
    std::vector<std::uint64_t> tags;     ///< numSets * assoc
    std::vector<WayMask> freeWays;       ///< per set: bit w = way invalid
};

} // namespace cache

#endif // IDIO_CACHE_TAG_ARRAY_HH
