/**
 * @file
 * PrivateCache implementation.
 */

#include "private_cache.hh"

#include "sim/simulation.hh"

namespace cache
{

PrivateCache::PrivateCache(sim::Simulation &simulation,
                           const std::string &name,
                           std::uint64_t sizeBytes, std::uint32_t assoc,
                           const std::string &replacement)
    : sim::SimObject(simulation, name),
      statGroup(simulation.statsRegistry(), name),
      hits(statGroup, "hits", "demand hits"),
      misses(statGroup, "misses", "demand misses"),
      fills(statGroup, "fills", "lines installed"),
      prefetchFills(statGroup, "prefetchFills",
                    "lines installed by IDIO prefetch hints"),
      writebacks(statGroup, "writebacks",
                 "dirty evictions sent to the next level"),
      cleanEvictions(statGroup, "cleanEvictions",
                     "clean victims inserted into the next level"),
      pcieInvals(statGroup, "pcieInvals",
                 "invalidations caused by inbound PCIe writes"),
      selfInvals(statGroup, "selfInvals",
                 "lines dropped by the self-invalidate instruction"),
      backInvals(statGroup, "backInvals",
                 "invalidations from directory capacity evictions"),
      array(sizeBytes, assoc, makeReplacementPolicy(replacement))
{
}

void
PrivateCache::serialize(ckpt::Serializer &s) const
{
    array.serialize(s);
}

void
PrivateCache::unserialize(ckpt::Deserializer &d)
{
    array.unserialize(d);
}

} // namespace cache
