/**
 * @file
 * Excl-MLC directory (snoop filter).
 *
 * The non-inclusive Skylake LLC keeps a directory of tags for every
 * line that is valid in some MLC ("Excl MLC" in paper Fig. 1). The
 * directory lets inbound PCIe writes find and invalidate MLC copies
 * without broadcasting. Capacity is finite: inserting into a full set
 * evicts an entry, whose MLC copies must be back-invalidated by the
 * hierarchy.
 */

#ifndef IDIO_CACHE_DIRECTORY_HH
#define IDIO_CACHE_DIRECTORY_HH

#include <cstdint>
#include <string>

#include "cache/tag_array.hh"
#include "sim/sim_object.hh"
#include "stats/registry.hh"

namespace cache
{

/** An entry displaced by directory capacity pressure. */
struct DirectoryVictim
{
    bool valid = false;
    sim::Addr addr = 0;
    std::uint64_t sharers = 0;
};

/**
 * Set-associative snoop-filter directory over MLC-resident lines.
 */
class MlcDirectory : public sim::SimObject
{
    stats::StatGroup statGroup;

  public:
    /**
     * @param numEntries Total tracked-line capacity.
     * @param assoc Directory associativity.
     */
    MlcDirectory(sim::Simulation &simulation, const std::string &name,
                 std::uint64_t numEntries, std::uint32_t assoc,
                 const std::string &replacement);

    /** Sharer bit-vector for @p addr (0 when untracked). */
    std::uint64_t sharersOf(sim::Addr addr) const;

    /** True when any MLC holds @p addr. */
    bool
    isTracked(sim::Addr addr) const
    {
        return sharersOf(addr) != 0;
    }

    /**
     * Record that @p core 's MLC now holds @p addr.
     *
     * @return a victim entry (valid=true) when an unrelated line had to
     *         be displaced to make room; the caller must back-
     *         invalidate the victim's sharers.
     */
    DirectoryVictim add(sim::CoreId core, sim::Addr addr);

    /** Record that @p core 's MLC dropped @p addr. */
    void remove(sim::CoreId core, sim::Addr addr);

    /** Drop the whole entry for @p addr (all sharers). */
    void removeAll(sim::Addr addr);

    /** Number of tracked lines. */
    std::uint64_t trackedLines() const { return array.countValid(); }

    /** Read-only tag-array access (invariant checker, tests). */
    const TagArray &tags() const { return array; }

    void serialize(ckpt::Serializer &s) const override;
    void unserialize(ckpt::Deserializer &d) override;

    /** @{ Counters. */
    stats::Counter lookups;
    stats::Counter insertions;
    stats::Counter capacityEvictions;
    /** @} */

  private:
    TagArray array;
};

} // namespace cache

#endif // IDIO_CACHE_DIRECTORY_HH
