/**
 * @file
 * TagArray implementation.
 */

#include "tag_array.hh"

namespace cache
{

namespace
{

std::uint32_t
setsFromSize(std::uint64_t sizeBytes, std::uint32_t assoc)
{
    if (assoc == 0 || assoc > 64)
        sim::fatal("cache associativity %u out of range [1, 64]", assoc);
    const std::uint64_t lines = sizeBytes / mem::lineSize;
    if (lines == 0 || lines % assoc != 0) {
        sim::fatal("cache size %llu not divisible into %u ways of "
                   "64B lines",
                   (unsigned long long)sizeBytes, assoc);
    }
    return static_cast<std::uint32_t>(lines / assoc);
}

} // anonymous namespace

TagArray::TagArray(std::uint64_t sizeBytes, std::uint32_t assoc,
                   std::unique_ptr<ReplacementPolicy> policy)
    : TagArray(setsFromSize(sizeBytes, assoc), assoc, std::move(policy),
               0)
{
}

TagArray::TagArray(std::uint32_t numSets, std::uint32_t assoc,
                   std::unique_ptr<ReplacementPolicy> pol, int)
    : nSets(numSets), nWays(assoc), policy(std::move(pol)),
      lines(std::size_t(numSets) * assoc)
{
    policy->init(nSets, nWays);
}

TagArray
TagArray::withSets(std::uint32_t numSets, std::uint32_t assoc,
                   std::unique_ptr<ReplacementPolicy> policy)
{
    return TagArray(numSets, assoc, std::move(policy), 0);
}

LineRef
TagArray::lookup(sim::Addr addr)
{
    addr = mem::lineAlign(addr);
    const std::uint32_t set = setIndex(addr);
    for (std::uint32_t w = 0; w < nWays; ++w) {
        CacheLine &l = lineAt(set, w);
        if (l.valid && l.addr == addr)
            return LineRef{set, w, &l};
    }
    return LineRef{set, 0, nullptr};
}

const CacheLine *
TagArray::peek(sim::Addr addr) const
{
    addr = mem::lineAlign(addr);
    const std::uint32_t set = setIndex(addr);
    for (std::uint32_t w = 0; w < nWays; ++w) {
        const CacheLine &l = lineAt(set, w);
        if (l.valid && l.addr == addr)
            return &l;
    }
    return nullptr;
}

LineRef
TagArray::findFillSlot(sim::Addr addr, WayMask candidates)
{
    addr = mem::lineAlign(addr);
    const std::uint32_t set = setIndex(addr);
    candidates &= lowWays(nWays);
    SIM_ASSERT(candidates != 0, "no candidate ways for fill");

    for (std::uint32_t w = 0; w < nWays; ++w) {
        if (!(candidates & (WayMask(1) << w)))
            continue;
        CacheLine &l = lineAt(set, w);
        if (!l.valid)
            return LineRef{set, w, &l};
    }
    const std::uint32_t victim = policy->victim(set, candidates);
    return LineRef{set, victim, &lineAt(set, victim)};
}

CacheLine &
TagArray::fill(const LineRef &slot, sim::Addr addr, bool dirty, bool io)
{
    CacheLine &l = *slot.line;
    l.addr = mem::lineAlign(addr);
    l.valid = true;
    l.dirty = dirty;
    l.io = io;
    l.prefetched = false;
    l.ddioAlloc = false;
    l.sharers = 0;
    policy->fill(slot.set, slot.way);
    return l;
}

void
TagArray::invalidate(const LineRef &slot)
{
    CacheLine &l = *slot.line;
    l.valid = false;
    l.dirty = false;
    l.io = false;
    l.prefetched = false;
    l.ddioAlloc = false;
    l.sharers = 0;
}

std::uint64_t
TagArray::countValid(
    const std::function<bool(const CacheLine &, std::uint32_t)> &pred)
    const
{
    std::uint64_t n = 0;
    for (std::uint32_t s = 0; s < nSets; ++s) {
        for (std::uint32_t w = 0; w < nWays; ++w) {
            const CacheLine &l = lineAt(s, w);
            if (l.valid && (!pred || pred(l, w)))
                ++n;
        }
    }
    return n;
}

void
TagArray::clear()
{
    for (auto &l : lines)
        l = CacheLine{};
}

} // namespace cache
