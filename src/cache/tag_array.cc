/**
 * @file
 * TagArray implementation.
 */

#include "tag_array.hh"

#include <algorithm>

#include "ckpt/serializer.hh"

namespace cache
{

namespace
{

std::uint32_t
setsFromSize(std::uint64_t sizeBytes, std::uint32_t assoc)
{
    if (assoc == 0 || assoc > 64)
        sim::fatal("cache associativity %u out of range [1, 64]", assoc);
    const std::uint64_t lines = sizeBytes / mem::lineSize;
    if (lines == 0 || lines % assoc != 0) {
        sim::fatal("cache size %llu not divisible into %u ways of "
                   "64B lines",
                   (unsigned long long)sizeBytes, assoc);
    }
    return static_cast<std::uint32_t>(lines / assoc);
}

} // anonymous namespace

TagArray::TagArray(std::uint64_t sizeBytes, std::uint32_t assoc,
                   std::unique_ptr<ReplacementPolicy> policy)
    : TagArray(setsFromSize(sizeBytes, assoc), assoc, std::move(policy),
               0)
{
}

TagArray::TagArray(std::uint32_t numSets, std::uint32_t assoc,
                   std::unique_ptr<ReplacementPolicy> pol, int)
    : nSets(numSets), nWays(assoc),
      setsPow2(numSets != 0 && (numSets & (numSets - 1)) == 0),
      setMask(numSets - 1), policy(std::move(pol)),
      lines(std::size_t(numSets) * assoc),
      tags(std::size_t(numSets) * assoc, invalidTag),
      freeWays(numSets, lowWays(assoc))
{
    policy->init(nSets, nWays);
    if (policy->kind() == ReplKind::Lru)
        lruFast = static_cast<LruPolicy *>(policy.get());
}

TagArray
TagArray::withSets(std::uint32_t numSets, std::uint32_t assoc,
                   std::unique_ptr<ReplacementPolicy> policy)
{
    return TagArray(numSets, assoc, std::move(policy), 0);
}

CacheLine &
TagArray::fill(const LineRef &slot, sim::Addr addr, bool dirty, bool io)
{
    CacheLine &l = *slot.line;
    l.addr = mem::lineAlign(addr);
    l.valid = true;
    l.dirty = dirty;
    l.io = io;
    l.prefetched = false;
    l.ddioAlloc = false;
    l.sharers = 0;
    tags[std::size_t(slot.set) * nWays + slot.way] = l.addr;
    freeWays[slot.set] &= ~(WayMask(1) << slot.way);
    // LruPolicy::fill == touch; skip the two virtual hops.
    if (lruFast)
        lruFast->touchFast(slot.set, slot.way);
    else
        policy->fill(slot.set, slot.way);
    return l;
}

void
TagArray::invalidate(const LineRef &slot)
{
    CacheLine &l = *slot.line;
    l.valid = false;
    l.dirty = false;
    l.io = false;
    l.prefetched = false;
    l.ddioAlloc = false;
    l.sharers = 0;
    tags[std::size_t(slot.set) * nWays + slot.way] = invalidTag;
    freeWays[slot.set] |= WayMask(1) << slot.way;
}

std::uint64_t
TagArray::countValid(
    const std::function<bool(const CacheLine &, std::uint32_t)> &pred)
    const
{
    std::uint64_t n = 0;
    for (std::uint32_t s = 0; s < nSets; ++s) {
        for (std::uint32_t w = 0; w < nWays; ++w) {
            const CacheLine &l = lineAt(s, w);
            if (l.valid && (!pred || pred(l, w)))
                ++n;
        }
    }
    return n;
}

void
TagArray::clear()
{
    for (auto &l : lines)
        l = CacheLine{};
    std::fill(tags.begin(), tags.end(), invalidTag);
    std::fill(freeWays.begin(), freeWays.end(), lowWays(nWays));
}

void
TagArray::serialize(ckpt::Serializer &s) const
{
    // Field by field: CacheLine has padding between the flag bytes and
    // the sharers word, and padding must never reach a checkpoint.
    s.writeU32(nSets);
    s.writeU32(nWays);
    for (const CacheLine &l : lines) {
        s.writeU64(l.addr);
        s.writeBool(l.valid);
        s.writeBool(l.dirty);
        s.writeBool(l.io);
        s.writeBool(l.prefetched);
        s.writeBool(l.ddioAlloc);
        s.writeU64(l.sharers);
    }
    policy->serialize(s);
}

void
TagArray::unserialize(ckpt::Deserializer &d)
{
    const std::uint32_t sets = d.readU32();
    const std::uint32_t ways = d.readU32();
    if (sets != nSets || ways != nWays) {
        sim::fatal("ckpt: tag-array geometry mismatch (checkpoint "
                   "%ux%u, config %ux%u)",
                   sets, ways, nSets, nWays);
    }
    for (CacheLine &l : lines) {
        l.addr = d.readU64();
        l.valid = d.readBool();
        l.dirty = d.readBool();
        l.io = d.readBool();
        l.prefetched = d.readBool();
        l.ddioAlloc = d.readBool();
        l.sharers = d.readU64();
    }
    // Rebuild the derived lookup structures.
    for (std::uint32_t set = 0; set < nSets; ++set) {
        WayMask free = 0;
        for (std::uint32_t w = 0; w < nWays; ++w) {
            const CacheLine &l = lineAt(set, w);
            tags[std::size_t(set) * nWays + w] =
                l.valid ? l.addr : invalidTag;
            if (!l.valid)
                free |= WayMask(1) << w;
        }
        freeWays[set] = free;
    }
    policy->unserialize(d);
}

} // namespace cache
