/**
 * @file
 * Shared non-inclusive LLC with DDIO way partition.
 *
 * The LLC behaves as a victim cache for the private MLCs: demand fills
 * move data out of the LLC into the requesting MLC ("tag moves to the
 * directory", paper Fig. 2), and MLC evictions allocate back into *any*
 * way — the mechanism behind DMA bloating. Inbound PCIe writes
 * write-allocate only into the first `ddioWays` ways of each set but
 * update lines in place wherever they are found (paper Fig. 1).
 */

#ifndef IDIO_CACHE_LLC_HH
#define IDIO_CACHE_LLC_HH

#include <string>

#include "cache/tag_array.hh"
#include "sim/sim_object.hh"
#include "stats/registry.hh"

namespace cache
{

/**
 * The shared last-level cache.
 */
class NonInclusiveLlc : public sim::SimObject
{
    stats::StatGroup statGroup;

  public:
    NonInclusiveLlc(sim::Simulation &simulation, const std::string &name,
                    std::uint64_t sizeBytes, std::uint32_t assoc,
                    std::uint32_t ddioWays,
                    const std::string &replacement);

    TagArray &tags() { return array; }
    const TagArray &tags() const { return array; }

    /** Way mask covering the DDIO ways. */
    WayMask ddioMask() const { return lowWays(nDdioWays); }

    std::uint32_t ddioWays() const { return nDdioWays; }

    /**
     * Re-partition at runtime (IAT-style dynamic DDIO allocation).
     * Lines already resident outside the new partition are untouched;
     * only future write-allocations are affected, as on real CAT
     * reconfiguration. (Their ddioAlloc marks are dropped so the
     * way-confinement invariant keeps holding against the new mask.)
     */
    void setDdioWays(std::uint32_t ways);

    /** True when @p way is one of the DDIO ways. */
    bool isDdioWay(std::uint32_t way) const { return way < nDdioWays; }

    LineRef probe(sim::Addr addr) { return array.lookup(addr); }

    bool contains(sim::Addr addr) const
    {
        return array.peek(addr) != nullptr;
    }

    /** Valid lines currently in DDIO ways. */
    std::uint64_t ddioOccupancy() const;

    /**
     * Valid I/O-provenance lines sitting *outside* the DDIO ways —
     * the paper's DMA-bloating footprint.
     */
    std::uint64_t bloatedIoOccupancy() const;

    /** Total valid lines. */
    std::uint64_t occupancy() const { return array.countValid(); }

    void serialize(ckpt::Serializer &s) const override;
    void unserialize(ckpt::Deserializer &d) override;

    /** @{ Counters. */
    stats::Counter hits;
    stats::Counter misses;
    stats::Counter ddioAllocs;      ///< PCIe write-allocations
    stats::Counter ddioUpdates;     ///< PCIe in-place updates
    stats::Counter ddioWayEvictions;///< victims displaced by DDIO allocs
    stats::Counter victimInserts;   ///< allocations from MLC evictions
    stats::Counter writebacks;      ///< dirty evictions to DRAM (LLC WB)
    stats::Counter cleanDrops;      ///< clean evictions (no DRAM write)
    stats::Counter demandMoves;     ///< data moved out to an MLC
    stats::Counter selfInvals;      ///< self-invalidate drops
    /** @} */

  private:
    std::uint32_t nDdioWays;
    TagArray array;
};

} // namespace cache

#endif // IDIO_CACHE_LLC_HH
