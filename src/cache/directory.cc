/**
 * @file
 * MlcDirectory implementation.
 */

#include "directory.hh"

#include "sim/simulation.hh"

namespace cache
{

namespace
{

std::uint32_t
directorySets(std::uint64_t numEntries, std::uint32_t assoc)
{
    std::uint64_t sets = numEntries / assoc;
    if (sets == 0)
        sets = 1;
    return static_cast<std::uint32_t>(sets);
}

} // anonymous namespace

MlcDirectory::MlcDirectory(sim::Simulation &simulation,
                           const std::string &name,
                           std::uint64_t numEntries, std::uint32_t assoc,
                           const std::string &replacement)
    : sim::SimObject(simulation, name),
      statGroup(simulation.statsRegistry(), name),
      lookups(statGroup, "lookups", "directory lookups"),
      insertions(statGroup, "insertions", "directory insertions"),
      capacityEvictions(statGroup, "capacityEvictions",
                        "entries displaced by capacity pressure"),
      array(TagArray::withSets(directorySets(numEntries, assoc), assoc,
                               makeReplacementPolicy(replacement)))
{
}

std::uint64_t
MlcDirectory::sharersOf(sim::Addr addr) const
{
    const CacheLine *l = array.peek(addr);
    return l ? l->sharers : 0;
}

DirectoryVictim
MlcDirectory::add(sim::CoreId core, sim::Addr addr)
{
    ++lookups;
    LineRef ref = array.lookup(addr);
    if (ref) {
        ref.line->sharers |= std::uint64_t(1) << core;
        array.touch(ref);
        return {};
    }

    DirectoryVictim victim;
    LineRef slot = array.findFillSlot(addr);
    if (slot.line->valid) {
        victim.valid = true;
        victim.addr = slot.line->addr;
        victim.sharers = slot.line->sharers;
        ++capacityEvictions;
    }
    CacheLine &l = array.fill(slot, addr, false, false);
    l.sharers = std::uint64_t(1) << core;
    ++insertions;
    return victim;
}

void
MlcDirectory::remove(sim::CoreId core, sim::Addr addr)
{
    LineRef ref = array.lookup(addr);
    if (!ref)
        return;
    ref.line->sharers &= ~(std::uint64_t(1) << core);
    if (ref.line->sharers == 0)
        array.invalidate(ref);
}

void
MlcDirectory::removeAll(sim::Addr addr)
{
    LineRef ref = array.lookup(addr);
    if (ref)
        array.invalidate(ref);
}

void
MlcDirectory::serialize(ckpt::Serializer &s) const
{
    array.serialize(s);
}

void
MlcDirectory::unserialize(ckpt::Deserializer &d)
{
    array.unserialize(d);
}

} // namespace cache
