/**
 * @file
 * Replacement policy implementations.
 */

#include "replacement.hh"

#include "ckpt/serializer.hh"
#include "sim/logging.hh"

namespace cache
{

void
LruPolicy::init(std::uint32_t numSets, std::uint32_t a)
{
    assoc = a;
    stamps.assign(std::size_t(numSets) * assoc, 0);
}

void
RandomPolicy::init(std::uint32_t, std::uint32_t a)
{
    assoc = a;
}

std::uint32_t
RandomPolicy::victim(std::uint32_t, WayMask candidates)
{
    SIM_ASSERT(candidates != 0, "empty candidate mask");
    const int n = __builtin_popcountll(candidates);
    std::uint64_t pick = rng.below(static_cast<std::uint64_t>(n));
    for (std::uint32_t w = 0; w < assoc; ++w) {
        if (candidates & (WayMask(1) << w)) {
            if (pick == 0)
                return w;
            --pick;
        }
    }
    sim::panic("random victim selection fell through");
}

void
SrripPolicy::init(std::uint32_t numSets, std::uint32_t a)
{
    assoc = a;
    rrpv.assign(std::size_t(numSets) * assoc,
                static_cast<std::uint8_t>(maxRrpv));
}

void
SrripPolicy::touch(std::uint32_t set, std::uint32_t way)
{
    rrpv[std::size_t(set) * assoc + way] = 0; // hit promotion
}

void
SrripPolicy::fill(std::uint32_t set, std::uint32_t way)
{
    // SRRIP-HP inserts with "long" re-reference prediction.
    rrpv[std::size_t(set) * assoc + way] =
        static_cast<std::uint8_t>(maxRrpv - 1);
}

std::uint32_t
SrripPolicy::victim(std::uint32_t set, WayMask candidates)
{
    SIM_ASSERT(candidates != 0, "empty candidate mask");
    for (;;) {
        for (std::uint32_t w = 0; w < assoc; ++w) {
            if (!(candidates & (WayMask(1) << w)))
                continue;
            if (rrpv[std::size_t(set) * assoc + w] >= maxRrpv)
                return w;
        }
        // Age every candidate and retry.
        for (std::uint32_t w = 0; w < assoc; ++w) {
            if (candidates & (WayMask(1) << w))
                ++rrpv[std::size_t(set) * assoc + w];
        }
    }
}

void
LruPolicy::serialize(ckpt::Serializer &s) const
{
    s.writeU64(clock);
    s.writePodVec(stamps);
}

void
LruPolicy::unserialize(ckpt::Deserializer &d)
{
    clock = d.readU64();
    const auto restored = d.readPodVec<std::uint64_t>();
    if (restored.size() != stamps.size())
        sim::fatal("ckpt: LRU stamp count mismatch (checkpoint %zu, "
                   "array %zu)",
                   restored.size(), stamps.size());
    stamps = restored;
}

void
RandomPolicy::serialize(ckpt::Serializer &s) const
{
    for (const std::uint64_t w : rng.state())
        s.writeU64(w);
}

void
RandomPolicy::unserialize(ckpt::Deserializer &d)
{
    std::array<std::uint64_t, 4> st;
    for (std::uint64_t &w : st)
        w = d.readU64();
    rng.setState(st);
}

void
SrripPolicy::serialize(ckpt::Serializer &s) const
{
    s.writePodVec(rrpv);
}

void
SrripPolicy::unserialize(ckpt::Deserializer &d)
{
    const auto restored = d.readPodVec<std::uint8_t>();
    if (restored.size() != rrpv.size())
        sim::fatal("ckpt: SRRIP rrpv count mismatch (checkpoint %zu, "
                   "array %zu)",
                   restored.size(), rrpv.size());
    rrpv = restored;
}

std::unique_ptr<ReplacementPolicy>
makeReplacementPolicy(const std::string &name, std::uint64_t seed)
{
    if (name == "lru")
        return std::make_unique<LruPolicy>();
    if (name == "random")
        return std::make_unique<RandomPolicy>(seed);
    if (name == "srrip")
        return std::make_unique<SrripPolicy>();
    sim::fatal("unknown replacement policy '%s'", name.c_str());
}

} // namespace cache
