/**
 * @file
 * Cache-hierarchy invariant implementations.
 */

#include "invariants.hh"

#include <cstdio>
#include <string>
#include <unordered_map>

#include "cache/hierarchy.hh"

namespace cache
{

namespace
{

std::string
hexAddr(sim::Addr addr)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  (unsigned long long)addr);
    return buf;
}

/** Visit every valid line of @p array. */
template <typename Fn>
void
forEachValid(const TagArray &array, Fn &&fn)
{
    for (std::uint32_t s = 0; s < array.numSets(); ++s) {
        for (std::uint32_t w = 0; w < array.assoc(); ++w) {
            const CacheLine &l = array.lineAt(s, w);
            if (l.valid)
                fn(l, s, w);
        }
    }
}

void
checkL1Inclusion(MemoryHierarchy &hier, sim::InvariantReport &report)
{
    for (sim::CoreId c = 0; c < hier.numCores(); ++c) {
        forEachValid(hier.l1(c).tags(), [&](const CacheLine &l,
                                            std::uint32_t,
                                            std::uint32_t) {
            if (!hier.mlcOf(c).contains(l.addr)) {
                report.fail("L1 line " + hexAddr(l.addr) + " of core " +
                            std::to_string(c) +
                            " has no MLC backing (inclusion violated)");
            }
        });
    }
}

void
checkOwnershipAndExclusivity(MemoryHierarchy &hier,
                             sim::InvariantReport &report)
{
    // addr -> first core seen holding it in its MLC.
    std::unordered_map<sim::Addr, sim::CoreId> owners;
    for (sim::CoreId c = 0; c < hier.numCores(); ++c) {
        forEachValid(hier.mlcOf(c).tags(), [&](const CacheLine &l,
                                               std::uint32_t,
                                               std::uint32_t) {
            const auto [it, inserted] = owners.emplace(l.addr, c);
            if (!inserted) {
                report.fail("line " + hexAddr(l.addr) +
                            " valid in MLCs of cores " +
                            std::to_string(it->second) + " and " +
                            std::to_string(c) +
                            " (single-owner violated)");
            }
            if (hier.llc().contains(l.addr)) {
                report.fail("line " + hexAddr(l.addr) +
                            " valid in both MLC of core " +
                            std::to_string(c) +
                            " and the LLC (exclusivity violated)");
            }
        });
    }
}

void
checkDirectoryConsistency(MemoryHierarchy &hier,
                          sim::InvariantReport &report)
{
    const MlcDirectory &dir = hier.directory();

    // Forward: every valid MLC line carries its sharer bit.
    for (sim::CoreId c = 0; c < hier.numCores(); ++c) {
        forEachValid(hier.mlcOf(c).tags(), [&](const CacheLine &l,
                                               std::uint32_t,
                                               std::uint32_t) {
            if (!(dir.sharersOf(l.addr) & (std::uint64_t(1) << c))) {
                report.fail("MLC line " + hexAddr(l.addr) + " of core " +
                            std::to_string(c) +
                            " is untracked by the directory");
            }
        });
    }

    // Backward: every directory sharer bit points at a real MLC copy.
    forEachValid(dir.tags(), [&](const CacheLine &entry, std::uint32_t,
                                 std::uint32_t) {
        for (sim::CoreId c = 0; c < 64; ++c) {
            if (!(entry.sharers & (std::uint64_t(1) << c)))
                continue;
            if (c >= hier.numCores()) {
                report.fail("directory entry " + hexAddr(entry.addr) +
                            " names nonexistent core " +
                            std::to_string(c));
            } else if (!hier.mlcOf(c).contains(entry.addr)) {
                report.fail("directory entry " + hexAddr(entry.addr) +
                            " claims core " + std::to_string(c) +
                            " as sharer but its MLC lacks the line");
            }
        }
    });
}

void
checkDdioWayConfinement(MemoryHierarchy &hier,
                        sim::InvariantReport &report)
{
    const NonInclusiveLlc &llc = hier.llc();
    forEachValid(llc.tags(), [&](const CacheLine &l, std::uint32_t set,
                                 std::uint32_t way) {
        if (l.ddioAlloc && way >= llc.ddioWays()) {
            report.fail("DDIO-allocated line " + hexAddr(l.addr) +
                        " sits in way " + std::to_string(way) +
                        " of set " + std::to_string(set) +
                        " outside the " +
                        std::to_string(llc.ddioWays()) +
                        "-way DDIO partition");
        }
    });
}

} // namespace

void
registerCacheInvariants(sim::InvariantChecker &checker,
                        MemoryHierarchy &hier)
{
    checker.registerInvariant(
        "cache.l1-subset-of-mlc", [&hier](sim::InvariantReport &r) {
            checkL1Inclusion(hier, r);
        });
    checker.registerInvariant(
        "cache.mlc-single-owner-exclusive",
        [&hier](sim::InvariantReport &r) {
            checkOwnershipAndExclusivity(hier, r);
        });
    checker.registerInvariant(
        "cache.directory-consistent",
        [&hier](sim::InvariantReport &r) {
            checkDirectoryConsistency(hier, r);
        });
    checker.registerInvariant(
        "cache.ddio-way-confinement",
        [&hier](sim::InvariantReport &r) {
            checkDdioWayConfinement(hier, r);
        });
}

} // namespace cache
