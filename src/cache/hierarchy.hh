/**
 * @file
 * The memory hierarchy facade.
 *
 * MemoryHierarchy wires per-core L1D+MLC private caches, the shared
 * non-inclusive LLC with DDIO ways, the Excl-MLC directory, and the
 * DRAM model, and implements the exact data-movement flows of paper
 * Figs. 1 and 2:
 *
 *  - CPU demand fills move data *out* of the LLC into the MLC (tag to
 *    directory), making the LLC a victim cache.
 *  - MLC evictions allocate into any LLC way (DMA bloating).
 *  - Inbound PCIe writes invalidate MLC copies, update LLC lines in
 *    place, or write-allocate into the DDIO ways (cases P1..P5).
 *  - Outbound PCIe reads pull dirty MLC copies back into the LLC.
 *
 * plus the IDIO extensions: MLC prefetch fills, direct-DRAM DMA writes,
 * and the self-invalidate (drop-without-writeback) instruction.
 *
 * The model is state-accurate and latency-annotated: every operation
 * updates cache state immediately and returns the latency the requester
 * should charge. Event-driven components (cores, NIC, prefetcher) pace
 * themselves with those latencies.
 */

#ifndef IDIO_CACHE_HIERARCHY_HH
#define IDIO_CACHE_HIERARCHY_HH

#include <functional>
#include <memory>
#include <vector>

#include "cache/config.hh"
#include "cache/directory.hh"
#include "cache/llc.hh"
#include "cache/private_cache.hh"
#include "mem/access.hh"
#include "mem/dram.hh"
#include "sim/delegate.hh"
#include "sim/sim_object.hh"
#include "trace/tracer.hh"

namespace cache
{

/**
 * Facade over the full cache/memory hierarchy of one simulated server.
 */
class MemoryHierarchy : public sim::SimObject
{
    stats::StatGroup statGroup;

  public:
    /**
     * Invoked whenever an MLC eviction allocates into the LLC. A
     * sim::Delegate, not a std::function: the hook fires once per
     * writeback on the access hot path, so dispatch must stay a plain
     * indirect call with no ownership machinery.
     */
    using MlcWbObserver = sim::Delegate<void(sim::CoreId)>;

    /**
     * Invoked whenever a prefetched MLC line retires: its first
     * demand hit, or its departure from the MLC (eviction,
     * invalidation, migration). Lets a CPU-paced prefetcher track
     * outstanding prefetched lines. Delegate for the same reason as
     * MlcWbObserver; the bound object must outlive the hierarchy's
     * use of the hook.
     */
    using PrefetchRetireObserver = sim::Delegate<void(sim::CoreId)>;

    MemoryHierarchy(sim::Simulation &simulation, const std::string &name,
                    const HierarchyConfig &config);

    /** @{ CPU-side operations (one cacheline each). */
    mem::AccessResult coreRead(sim::CoreId core, sim::Addr addr);
    mem::AccessResult coreWrite(sim::CoreId core, sim::Addr addr);

    /**
     * Self-invalidate instruction (paper Sec. IV-A / V-D): drop the
     * line from the core's private caches (and, per configuration, the
     * LLC) without any writeback.
     *
     * @return false when the page is not marked Invalidatable (the
     *         modelled privacy fault; the drop is suppressed).
     */
    bool coreInvalidate(sim::CoreId core, sim::Addr addr);

    /**
     * Invalidate every cacheline of [addr, addr+bytes); the multi-line
     * maintenance operation IDIO adds for DMA buffers.
     *
     * @return number of lines actually dropped from the MLC.
     */
    std::uint64_t invalidateRange(sim::CoreId core, sim::Addr addr,
                                  std::uint64_t bytes);
    /** @} */

    /** @{ Device-side operations (one cacheline each). */

    /**
     * Full-cacheline inbound DMA write on the DDIO path (Fig. 1
     * ingress, cases P1..P5).
     */
    void pcieWrite(sim::Addr addr);

    /**
     * Inbound DMA write with DCA disabled (IDIO M3): stale cached
     * copies are dropped and the data goes straight to DRAM.
     */
    void pcieWriteDirectDram(sim::Addr addr);

    /** Outbound DMA read (Fig. 1 egress). @return service latency. */
    sim::Tick pcieRead(sim::Addr addr);
    /** @} */

    /**
     * IDIO prefetch hint: move the line into @p core 's MLC (from LLC,
     * or DRAM when permitted).
     *
     * @return true when a fill actually happened.
     */
    bool mlcPrefetch(sim::CoreId core, sim::Addr addr);

    /** Register the IDIO controller's MLC-writeback telemetry hook. */
    void setMlcWbObserver(MlcWbObserver obs) { mlcWbObserver = obs; }

    /** Register the prefetch-retire hook (CPU-paced prefetcher). */
    void
    setPrefetchRetireObserver(PrefetchRetireObserver obs)
    {
        prefetchRetireObserver = obs;
    }

    /**
     * @{ Split-link (message-passing) mode.
     *
     * With modelled interconnect latencies (LinkLatencyConfig), the
     * hierarchy splits into per-core halves (L1 + MLC, owned by the
     * core's timing domain) and an uncore half (LLC + directory +
     * DRAM, owned by the main queue). Cross-half interactions no
     * longer happen as same-tick calls: the core-side paths record
     * pending misses / fire the outbound hooks below, the harness
     * carries them over LinkChannels, and the splitHandle* entry
     * points apply them on the receiving side. Strict state ownership
     * holds throughout — core-side code touches only l1s[c]/mlcs[c]
     * (and per-cache counters), uncore-side code only LLC, directory,
     * DRAM and hierarchy-level counters — so conflict groups can run
     * on separate host threads.
     *
     * Relaxations versus the synchronous model (all deterministic):
     * no migratory coherence between private caches, back-
     * invalidations are fire-and-forget (the directory is updated
     * eagerly; dirty data still returns via victim-writeback
     * messages), and the hierarchy's own trace source stays silent on
     * core-side paths (one ring cannot take concurrent writers).
     */

    /** Outbound notifications; the harness binds these to channels. */
    struct SplitHooks
    {
        /** Core-side MLC victim leaving (always: directory upkeep). */
        std::function<void(sim::CoreId, sim::Addr, bool dirty, bool io)>
            victimWb;

        /** Core-side retirement of a prefetched MLC line. */
        std::function<void(sim::CoreId)> prefetchRetire;

        /** Core-side self-invalidate (directory/LLC upkeep). */
        std::function<void(sim::CoreId, sim::Addr)> coreInval;

        /** Uncore-side DMA-write invalidation of a sharer's copy. */
        std::function<void(sim::CoreId, sim::Addr)> mlcInval;

        /** Uncore-side directory-victim back-invalidation. */
        std::function<void(sim::CoreId, sim::Addr)> backInval;

        /** Uncore-side prefetch fill headed for a core's MLC. */
        std::function<void(sim::CoreId, sim::Addr, bool dirty,
                           bool io)>
            prefetchInstall;
    };

    /** One demand miss awaiting a cross-link fill. */
    struct SplitPendingFill
    {
        sim::Addr addr = 0;
        bool write = false;
    };

    /** Uncore's answer to a fill request. */
    struct SplitFillReply
    {
        sim::Tick extraLat = 0; ///< latency beyond the L1+MLC probes
        bool dirty = false;
        bool io = false;
        mem::HitLevel level = mem::HitLevel::LLC;
    };

    /** Switch the hierarchy into split-link mode (build time). */
    void enableSplitMode(SplitHooks hooks);
    bool splitMode() const { return splitOn; }

    /** @{ Core-side entry points (run in the core's domain). */

    /** Misses recorded by this core's accesses since the last take. */
    bool hasPendingFills(sim::CoreId core) const
    {
        return !splitPending[core].empty();
    }
    std::vector<SplitPendingFill> takePendingFills(sim::CoreId core);

    /** Install a demand fill delivered by a FillRsp message. */
    void splitInstallFill(sim::CoreId core, sim::Addr addr, bool dirty,
                          bool io, bool write);

    /** Install a prefetch fill delivered by the uncore. */
    void splitInstallPrefetch(sim::CoreId core, sim::Addr addr,
                              bool dirty, bool io);

    /** Drop a copy overwritten by inbound DMA (fire-and-forget). */
    void splitHandleMlcInval(sim::CoreId core, sim::Addr addr);

    /** Drop a copy back-invalidated by a directory victim. */
    void splitHandleBackInval(sim::CoreId core, sim::Addr addr);
    /** @} */

    /** @{ Uncore-side entry points (run on the main queue). */

    /** Serve a core's fill request from LLC/DRAM; updates directory. */
    SplitFillReply splitHandleFillReq(sim::CoreId core, sim::Addr addr);

    /** Apply a core's MLC victim writeback (directory + LLC). */
    void splitHandleVictimWb(sim::CoreId core, sim::Addr addr,
                             bool dirty, bool io);

    /** Apply a core's self-invalidate (directory + optional LLC). */
    void splitHandleCoreInval(sim::CoreId core, sim::Addr addr);

    /** Deliver a relayed prefetch-retire to the registered observer. */
    void
    firePrefetchRetire(sim::CoreId core)
    {
        if (prefetchRetireObserver)
            prefetchRetireObserver(core);
    }
    /** @} */
    /** @} */

    /**
     * @{ Runtime CAT-style per-core LLC allocation masks.
     *
     * Initialised from HierarchyConfig::llcAllocMask and consulted on
     * every MLC-victim insertion (the CAT enforcement point: the fill
     * slot is chosen among `mask & lowWays(assoc)` ways only, so a
     * core's evictions can never displace lines outside its mask).
     * The tenant::TenantManager re-programs these at run time; the
     * masks are checkpointed so a restored run keeps the partition.
     */
    WayMask coreAllocMask(sim::CoreId core) const
    {
        return allocMasks[core];
    }
    void setCoreAllocMask(sim::CoreId core, WayMask mask);
    /** @} */

    void serialize(ckpt::Serializer &s) const override;
    void unserialize(ckpt::Deserializer &d) override;

    /** @{ Component access. */
    PrivateCache &l1(sim::CoreId core) { return *l1s[core]; }
    PrivateCache &mlcOf(sim::CoreId core) { return *mlcs[core]; }
    NonInclusiveLlc &llc() { return *sharedLlc; }
    MlcDirectory &directory() { return *dir; }
    mem::DramModel &dram() { return *dramModel; }
    const HierarchyConfig &config() const { return cfg; }
    std::uint32_t numCores() const { return cfg.numCores; }
    /** @} */

    /** @{ Aggregates used by the figure samplers. */

    /** MLC->LLC eviction transactions (dirty + clean), all cores. */
    std::uint64_t totalMlcWritebacks() const;

    /** MLC invalidations caused by inbound PCIe writes, all cores. */
    std::uint64_t totalMlcPcieInvals() const;

    /** LLC->DRAM dirty evictions. */
    std::uint64_t llcWritebacks() const
    {
        return sharedLlc->writebacks.get();
    }
    /** @} */

    /** @{ Hierarchy-level counters. */
    stats::Counter directDramWrites;
    stats::Counter selfInvalFaults;
    stats::Counter pcieReads;
    stats::Counter pcieWrites;
    stats::Counter coherenceMigrations;
    /** @} */

  private:
    /** Install a line into a core's MLC, handling victim + directory. */
    void installMlc(sim::CoreId core, sim::Addr addr, bool dirty,
                    bool io, bool isPrefetch);

    /** Handle an MLC victim: merge L1, count, insert into LLC. */
    void evictMlcVictim(sim::CoreId core, CacheLine victim);

    /** Insert an MLC victim (or PCIe-read writeback) into the LLC. */
    void llcInsertVictim(sim::Addr addr, bool dirty, bool io,
                         WayMask allocMask);

    /** Evict a valid LLC line (DRAM write when dirty). */
    void evictLlcLine(const CacheLine &line);

    /** Fill @p core 's L1 with @p addr (must already be in MLC). */
    void l1Fill(sim::CoreId core, sim::Addr addr, bool makeDirty);

    /** Drop @p addr from @p core 's L1, merging dirtiness into MLC. */
    void dropFromL1(sim::CoreId core, sim::Addr addr,
                    bool *dirtyOut = nullptr);

    /** Invalidate all MLC/L1 copies (inbound DMA overwrite). */
    void invalidateMlcCopies(sim::Addr addr);

    /**
     * Migratory coherence: pull the line out of any *other* core's
     * private caches (merging dirtiness) so a single owner remains.
     *
     * @return true when a copy was migrated; outputs its state.
     */
    bool migrateFromPeers(sim::CoreId requester, sim::Addr addr,
                          bool *dirtyOut, bool *ioOut);

    /** Back-invalidate sharers of a directory capacity victim. */
    void handleDirectoryVictim(const DirectoryVictim &victim);

    mem::AccessResult coreAccess(sim::CoreId core, sim::Addr addr,
                                 mem::AccessType type);

    /** @{ Split-mode internals. */

    /** Core-side access: local probes only; misses pend a FillReq. */
    mem::AccessResult splitCoreAccess(sim::CoreId core, sim::Addr addr,
                                      mem::AccessType type);

    /** Core-side MLC victim: merge L1, count, send a VictimWb. */
    void splitEvictMlcVictim(sim::CoreId core, CacheLine victim);

    /** Uncore-side directory victim: send BackInvals to sharers. */
    void splitDirectoryVictim(const DirectoryVictim &victim);
    /** @} */

    /** Fire the retire hook when a departing line was prefetched. */
    void
    notePrefetchGone(sim::CoreId core, const CacheLine &line)
    {
        if (line.prefetched && prefetchRetireObserver)
            prefetchRetireObserver(core);
    }

    /**
     * Split counterpart: the prefetcher lives in the uncore domain, so
     * a core-side departure sends a retire message instead of invoking
     * the observer directly.
     */
    void
    splitNotePrefetchGone(sim::CoreId core, const CacheLine &line)
    {
        if (line.prefetched && splitHooks.prefetchRetire)
            splitHooks.prefetchRetire(core);
    }

    HierarchyConfig cfg;

    /** Runtime per-core LLC allocation masks (see coreAllocMask). */
    std::vector<WayMask> allocMasks;

    trace::Source trc;
    sim::Tick l1Lat;
    sim::Tick mlcLat;
    sim::Tick llcLat;

    std::vector<std::unique_ptr<PrivateCache>> l1s;
    std::vector<std::unique_ptr<PrivateCache>> mlcs;
    std::unique_ptr<NonInclusiveLlc> sharedLlc;
    std::unique_ptr<MlcDirectory> dir;
    std::unique_ptr<mem::DramModel> dramModel;

    MlcWbObserver mlcWbObserver;
    PrefetchRetireObserver prefetchRetireObserver;

    /** @{ Split-link mode state. */
    bool splitOn = false;
    SplitHooks splitHooks;

    /** Per-core fills pended by splitCoreAccess (always drained and
     * dispatched within the same core event, so never checkpointed). */
    std::vector<std::vector<SplitPendingFill>> splitPending;
    /** @} */
};

} // namespace cache

#endif // IDIO_CACHE_HIERARCHY_HH
