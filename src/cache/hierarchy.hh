/**
 * @file
 * The memory hierarchy facade.
 *
 * MemoryHierarchy wires per-core L1D+MLC private caches, the shared
 * non-inclusive LLC with DDIO ways, the Excl-MLC directory, and the
 * DRAM model, and implements the exact data-movement flows of paper
 * Figs. 1 and 2:
 *
 *  - CPU demand fills move data *out* of the LLC into the MLC (tag to
 *    directory), making the LLC a victim cache.
 *  - MLC evictions allocate into any LLC way (DMA bloating).
 *  - Inbound PCIe writes invalidate MLC copies, update LLC lines in
 *    place, or write-allocate into the DDIO ways (cases P1..P5).
 *  - Outbound PCIe reads pull dirty MLC copies back into the LLC.
 *
 * plus the IDIO extensions: MLC prefetch fills, direct-DRAM DMA writes,
 * and the self-invalidate (drop-without-writeback) instruction.
 *
 * The model is state-accurate and latency-annotated: every operation
 * updates cache state immediately and returns the latency the requester
 * should charge. Event-driven components (cores, NIC, prefetcher) pace
 * themselves with those latencies.
 */

#ifndef IDIO_CACHE_HIERARCHY_HH
#define IDIO_CACHE_HIERARCHY_HH

#include <memory>
#include <vector>

#include "cache/config.hh"
#include "cache/directory.hh"
#include "cache/llc.hh"
#include "cache/private_cache.hh"
#include "mem/access.hh"
#include "mem/dram.hh"
#include "sim/delegate.hh"
#include "sim/sim_object.hh"
#include "trace/tracer.hh"

namespace cache
{

/**
 * Facade over the full cache/memory hierarchy of one simulated server.
 */
class MemoryHierarchy : public sim::SimObject
{
    stats::StatGroup statGroup;

  public:
    /**
     * Invoked whenever an MLC eviction allocates into the LLC. A
     * sim::Delegate, not a std::function: the hook fires once per
     * writeback on the access hot path, so dispatch must stay a plain
     * indirect call with no ownership machinery.
     */
    using MlcWbObserver = sim::Delegate<void(sim::CoreId)>;

    /**
     * Invoked whenever a prefetched MLC line retires: its first
     * demand hit, or its departure from the MLC (eviction,
     * invalidation, migration). Lets a CPU-paced prefetcher track
     * outstanding prefetched lines. Delegate for the same reason as
     * MlcWbObserver; the bound object must outlive the hierarchy's
     * use of the hook.
     */
    using PrefetchRetireObserver = sim::Delegate<void(sim::CoreId)>;

    MemoryHierarchy(sim::Simulation &simulation, const std::string &name,
                    const HierarchyConfig &config);

    /** @{ CPU-side operations (one cacheline each). */
    mem::AccessResult coreRead(sim::CoreId core, sim::Addr addr);
    mem::AccessResult coreWrite(sim::CoreId core, sim::Addr addr);

    /**
     * Self-invalidate instruction (paper Sec. IV-A / V-D): drop the
     * line from the core's private caches (and, per configuration, the
     * LLC) without any writeback.
     *
     * @return false when the page is not marked Invalidatable (the
     *         modelled privacy fault; the drop is suppressed).
     */
    bool coreInvalidate(sim::CoreId core, sim::Addr addr);

    /**
     * Invalidate every cacheline of [addr, addr+bytes); the multi-line
     * maintenance operation IDIO adds for DMA buffers.
     *
     * @return number of lines actually dropped from the MLC.
     */
    std::uint64_t invalidateRange(sim::CoreId core, sim::Addr addr,
                                  std::uint64_t bytes);
    /** @} */

    /** @{ Device-side operations (one cacheline each). */

    /**
     * Full-cacheline inbound DMA write on the DDIO path (Fig. 1
     * ingress, cases P1..P5).
     */
    void pcieWrite(sim::Addr addr);

    /**
     * Inbound DMA write with DCA disabled (IDIO M3): stale cached
     * copies are dropped and the data goes straight to DRAM.
     */
    void pcieWriteDirectDram(sim::Addr addr);

    /** Outbound DMA read (Fig. 1 egress). @return service latency. */
    sim::Tick pcieRead(sim::Addr addr);
    /** @} */

    /**
     * IDIO prefetch hint: move the line into @p core 's MLC (from LLC,
     * or DRAM when permitted).
     *
     * @return true when a fill actually happened.
     */
    bool mlcPrefetch(sim::CoreId core, sim::Addr addr);

    /** Register the IDIO controller's MLC-writeback telemetry hook. */
    void setMlcWbObserver(MlcWbObserver obs) { mlcWbObserver = obs; }

    /** Register the prefetch-retire hook (CPU-paced prefetcher). */
    void
    setPrefetchRetireObserver(PrefetchRetireObserver obs)
    {
        prefetchRetireObserver = obs;
    }

    /** @{ Component access. */
    PrivateCache &l1(sim::CoreId core) { return *l1s[core]; }
    PrivateCache &mlcOf(sim::CoreId core) { return *mlcs[core]; }
    NonInclusiveLlc &llc() { return *sharedLlc; }
    MlcDirectory &directory() { return *dir; }
    mem::DramModel &dram() { return *dramModel; }
    const HierarchyConfig &config() const { return cfg; }
    std::uint32_t numCores() const { return cfg.numCores; }
    /** @} */

    /** @{ Aggregates used by the figure samplers. */

    /** MLC->LLC eviction transactions (dirty + clean), all cores. */
    std::uint64_t totalMlcWritebacks() const;

    /** MLC invalidations caused by inbound PCIe writes, all cores. */
    std::uint64_t totalMlcPcieInvals() const;

    /** LLC->DRAM dirty evictions. */
    std::uint64_t llcWritebacks() const
    {
        return sharedLlc->writebacks.get();
    }
    /** @} */

    /** @{ Hierarchy-level counters. */
    stats::Counter directDramWrites;
    stats::Counter selfInvalFaults;
    stats::Counter pcieReads;
    stats::Counter pcieWrites;
    stats::Counter coherenceMigrations;
    /** @} */

  private:
    /** Install a line into a core's MLC, handling victim + directory. */
    void installMlc(sim::CoreId core, sim::Addr addr, bool dirty,
                    bool io, bool isPrefetch);

    /** Handle an MLC victim: merge L1, count, insert into LLC. */
    void evictMlcVictim(sim::CoreId core, CacheLine victim);

    /** Insert an MLC victim (or PCIe-read writeback) into the LLC. */
    void llcInsertVictim(sim::Addr addr, bool dirty, bool io,
                         WayMask allocMask);

    /** Evict a valid LLC line (DRAM write when dirty). */
    void evictLlcLine(const CacheLine &line);

    /** Fill @p core 's L1 with @p addr (must already be in MLC). */
    void l1Fill(sim::CoreId core, sim::Addr addr, bool makeDirty);

    /** Drop @p addr from @p core 's L1, merging dirtiness into MLC. */
    void dropFromL1(sim::CoreId core, sim::Addr addr,
                    bool *dirtyOut = nullptr);

    /** Invalidate all MLC/L1 copies (inbound DMA overwrite). */
    void invalidateMlcCopies(sim::Addr addr);

    /**
     * Migratory coherence: pull the line out of any *other* core's
     * private caches (merging dirtiness) so a single owner remains.
     *
     * @return true when a copy was migrated; outputs its state.
     */
    bool migrateFromPeers(sim::CoreId requester, sim::Addr addr,
                          bool *dirtyOut, bool *ioOut);

    /** Back-invalidate sharers of a directory capacity victim. */
    void handleDirectoryVictim(const DirectoryVictim &victim);

    mem::AccessResult coreAccess(sim::CoreId core, sim::Addr addr,
                                 mem::AccessType type);

    /** Fire the retire hook when a departing line was prefetched. */
    void
    notePrefetchGone(sim::CoreId core, const CacheLine &line)
    {
        if (line.prefetched && prefetchRetireObserver)
            prefetchRetireObserver(core);
    }

    HierarchyConfig cfg;
    trace::Source trc;
    sim::Tick l1Lat;
    sim::Tick mlcLat;
    sim::Tick llcLat;

    std::vector<std::unique_ptr<PrivateCache>> l1s;
    std::vector<std::unique_ptr<PrivateCache>> mlcs;
    std::unique_ptr<NonInclusiveLlc> sharedLlc;
    std::unique_ptr<MlcDirectory> dir;
    std::unique_ptr<mem::DramModel> dramModel;

    MlcWbObserver mlcWbObserver;
    PrefetchRetireObserver prefetchRetireObserver;
};

} // namespace cache

#endif // IDIO_CACHE_HIERARCHY_HH
