/**
 * @file
 * Cache replacement policies.
 *
 * Policies operate per set and support *masked* victim selection: the
 * LLC restricts DDIO write-allocations to the DDIO ways and (for the
 * Fig. 4 `*_1way` experiments) CPU allocations to a way-partition mask,
 * so a victim must be selected among an arbitrary subset of ways.
 */

#ifndef IDIO_CACHE_REPLACEMENT_HH
#define IDIO_CACHE_REPLACEMENT_HH

#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace ckpt
{
class Serializer;
class Deserializer;
}

namespace cache
{

/** Bitmask over the ways of one set (bit i = way i eligible). */
using WayMask = std::uint64_t;

/** Mask with the low @p n bits set. */
constexpr WayMask
lowWays(std::uint32_t n)
{
    return n >= 64 ? ~WayMask(0) : ((WayMask(1) << n) - 1);
}

/**
 * Concrete policy identity, so hot paths can devirtualize dispatch to
 * the common policy (see TagArray): callers compare kind() once at
 * construction and cache a concrete pointer instead of paying an
 * indirect call per touch/victim.
 */
enum class ReplKind
{
    Lru,
    Random,
    Srrip,
    Other,
};

/**
 * Abstract replacement policy.
 */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** Concrete kind, for devirtualized hot-path dispatch. */
    virtual ReplKind kind() const { return ReplKind::Other; }

    /**
     * Size the internal state.
     * @param numSets Sets in the array.
     * @param assoc Ways per set.
     */
    virtual void init(std::uint32_t numSets, std::uint32_t assoc) = 0;

    /** Record a use (hit or fill) of (set, way). */
    virtual void touch(std::uint32_t set, std::uint32_t way) = 0;

    /** Record a brand-new fill of (set, way). */
    virtual void
    fill(std::uint32_t set, std::uint32_t way)
    {
        touch(set, way);
    }

    /**
     * Choose a victim among the ways selected by @p candidates.
     * @p candidates is never 0.
     */
    virtual std::uint32_t victim(std::uint32_t set,
                                 WayMask candidates) = 0;

    /** Policy name for configuration echo. */
    virtual std::string name() const = 0;

    /** @{ Checkpoint the policy's dynamic state (default: none). */
    virtual void serialize(ckpt::Serializer &) const {}
    virtual void unserialize(ckpt::Deserializer &) {}
    /** @} */
};

/**
 * Least-recently-used via per-way 64-bit use stamps.
 */
class LruPolicy : public ReplacementPolicy
{
  public:
    ReplKind kind() const override { return ReplKind::Lru; }
    void init(std::uint32_t numSets, std::uint32_t assoc) override;
    void touch(std::uint32_t set, std::uint32_t way) override
    {
        touchFast(set, way);
    }
    std::uint32_t victim(std::uint32_t set, WayMask candidates) override
    {
        return victimFast(set, candidates);
    }
    std::string name() const override { return "lru"; }

    /** @{ Non-virtual fast paths used by TagArray's devirtualized
     * dispatch (semantics identical to the virtual entry points). */
    void
    touchFast(std::uint32_t set, std::uint32_t way)
    {
        stamps[std::size_t(set) * assoc + way] = ++clock;
    }

    std::uint32_t
    victimFast(std::uint32_t set, WayMask candidates) const
    {
        SIM_ASSERT(candidates != 0, "empty candidate mask");
        const std::uint64_t *s = &stamps[std::size_t(set) * assoc];
        // Iterate candidate bits only; strict < keeps the lowest
        // eligible way among equal stamps (any deterministic rule
        // works, but this matches the historical scan order).
        std::uint32_t best =
            static_cast<std::uint32_t>(std::countr_zero(candidates));
        std::uint64_t bestStamp = ~std::uint64_t(0);
        for (WayMask m = candidates; m != 0; m &= m - 1) {
            const auto w =
                static_cast<std::uint32_t>(std::countr_zero(m));
            if (s[w] < bestStamp) {
                bestStamp = s[w];
                best = w;
            }
        }
        return best;
    }
    /** @} */

    void serialize(ckpt::Serializer &s) const override;
    void unserialize(ckpt::Deserializer &d) override;

  private:
    std::uint32_t assoc = 0;
    std::uint64_t clock = 0;
    std::vector<std::uint64_t> stamps; // numSets * assoc
};

/**
 * Uniform random victim among candidates (deterministic seeded RNG).
 */
class RandomPolicy : public ReplacementPolicy
{
  public:
    explicit RandomPolicy(std::uint64_t seed = 7) : rng(seed) {}

    ReplKind kind() const override { return ReplKind::Random; }
    void init(std::uint32_t numSets, std::uint32_t assoc) override;
    void touch(std::uint32_t, std::uint32_t) override {}
    std::uint32_t victim(std::uint32_t set, WayMask candidates) override;
    std::string name() const override { return "random"; }

    void serialize(ckpt::Serializer &s) const override;
    void unserialize(ckpt::Deserializer &d) override;

  private:
    sim::Rng rng;
    std::uint32_t assoc = 0;
};

/**
 * Static re-reference interval prediction (SRRIP-HP, 2-bit RRPV).
 * Useful as an ablation against LRU in the LLC; DMA-bloating behaviour
 * is replacement-policy independent and the benches default to LRU.
 */
class SrripPolicy : public ReplacementPolicy
{
  public:
    explicit SrripPolicy(std::uint8_t bits = 2) : maxRrpv((1u << bits) - 1)
    {
    }

    ReplKind kind() const override { return ReplKind::Srrip; }
    void init(std::uint32_t numSets, std::uint32_t assoc) override;
    void touch(std::uint32_t set, std::uint32_t way) override;
    void fill(std::uint32_t set, std::uint32_t way) override;
    std::uint32_t victim(std::uint32_t set, WayMask candidates) override;
    std::string name() const override { return "srrip"; }

    void serialize(ckpt::Serializer &s) const override;
    void unserialize(ckpt::Deserializer &d) override;

  private:
    std::uint32_t maxRrpv;
    std::uint32_t assoc = 0;
    std::vector<std::uint8_t> rrpv; // numSets * assoc
};

/** Factory from a policy name ("lru", "random", "srrip"). */
std::unique_ptr<ReplacementPolicy>
makeReplacementPolicy(const std::string &name, std::uint64_t seed = 7);

} // namespace cache

#endif // IDIO_CACHE_REPLACEMENT_HH
