/**
 * @file
 * Machine-checked structural invariants of the cache hierarchy.
 *
 * These encode the paper's non-inclusive model as executable rules the
 * runtime InvariantChecker sweeps between events:
 *
 *  - L1 inclusion: every valid L1 line is backed by its core's MLC.
 *  - Single owner: a line is valid in at most one core's MLC
 *    (migratory coherence, paper Sec. V).
 *  - MLC/LLC exclusivity: a line valid in some MLC is not also valid
 *    in the LLC ("tag moves to the directory", Fig. 2).
 *  - Directory consistency, both directions: every valid MLC line is
 *    tracked with the right sharer bit, and every directory sharer bit
 *    corresponds to a real MLC copy.
 *  - DDIO way confinement: every line placed by a DDIO
 *    write-allocation still sits inside the configured DDIO ways.
 */

#ifndef IDIO_CACHE_INVARIANTS_HH
#define IDIO_CACHE_INVARIANTS_HH

#include "sim/checker/invariant_checker.hh"

namespace cache
{

class MemoryHierarchy;

/**
 * Register all cache-hierarchy invariants over @p hier on @p checker.
 * @p hier must outlive the checker's last sweep.
 */
void registerCacheInvariants(sim::InvariantChecker &checker,
                             MemoryHierarchy &hier);

} // namespace cache

#endif // IDIO_CACHE_INVARIANTS_HH
