/**
 * @file
 * Cache hierarchy configuration (paper Table I defaults).
 */

#ifndef IDIO_CACHE_CONFIG_HH
#define IDIO_CACHE_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/replacement.hh"
#include "sim/types.hh"

namespace mem
{
class PhysAllocator;
}

namespace cache
{

/** Geometry and latency of one cache level. */
struct LevelConfig
{
    std::uint64_t sizeBytes = 0;
    std::uint32_t assoc = 1;
    std::uint32_t latencyCycles = 1;
};

/**
 * Full hierarchy configuration. Defaults reproduce paper Table I:
 * aarch64-style cores at 3 GHz, 64 KB 2-way L1D (2 CC), 1 MB 8-way MLC
 * (12 CC), 1.5 MB/core 12-way non-inclusive LLC (24 CC), DDR4-3200.
 */
struct HierarchyConfig
{
    std::uint32_t numCores = 2;
    double cpuFreqGHz = 3.0;

    LevelConfig l1{64 * 1024, 2, 2};
    LevelConfig mlc{1024 * 1024, 8, 12};

    /** LLC size is per core; total = llcPerCore.sizeBytes * numCores. */
    LevelConfig llcPerCore{1536 * 1024, 12, 24};

    /** Number of LLC ways DDIO write-allocates into (Intel default 2). */
    std::uint32_t ddioWays = 2;

    /**
     * Per-core MLC size overrides (e.g.\ the paper shrinks the
     * LLCAntagonist core's MLC to 256 KB). Empty = no override.
     */
    std::vector<std::uint64_t> mlcSizeOverride;

    /**
     * Per-core LLC allocation way masks for MLC-writeback insertions
     * (Intel CAT style; used by the Fig. 4 `*_1way` runs). Empty =
     * every core may allocate into all ways.
     */
    std::vector<WayMask> llcAllocMask;

    /** Replacement policy name for all levels. */
    std::string replacement = "lru";

    /**
     * Excl-MLC directory capacity as a multiple of total MLC lines
     * (snoop-filter coverage factor).
     */
    double directoryCoverage = 1.5;

    std::uint32_t directoryAssoc = 16;

    /** Insert clean MLC victims into the LLC (victim-cache behaviour). */
    bool insertCleanVictims = true;

    /**
     * Self-invalidate also drops an LLC-resident copy (needed for the
     * zero-copy NF flow, Sec. VII "Experimenting with shallow NFs").
     */
    bool invalidateReachesLlc = true;

    /** Allow MLC prefetch hints to fetch lines that left the LLC. */
    bool prefetchFromDram = true;

    /** DRAM device latency, ns. */
    double dramLatencyNs = 60.0;

    /** DRAM peak bandwidth, GB/s. */
    double dramBandwidthGBps = 60.0;

    /**
     * Page-attribute oracle for the self-invalidate instruction; when
     * null every address is treated as invalidatable (tests override).
     */
    const mem::PhysAllocator *pageAttributes = nullptr;

    /** Ticks per CPU cycle. */
    sim::Tick
    cyclePeriod() const
    {
        return sim::cyclePeriod(cpuFreqGHz);
    }

    /** Convert a latency in cycles to ticks. */
    sim::Tick
    cyclesToTicks(std::uint32_t cycles) const
    {
        return cycles * cyclePeriod();
    }

    /** Total LLC capacity in bytes. */
    std::uint64_t
    llcSizeBytes() const
    {
        return llcPerCore.sizeBytes * numCores;
    }

    /** Effective MLC size for @p core. */
    std::uint64_t
    mlcSize(std::uint32_t core) const
    {
        if (core < mlcSizeOverride.size() && mlcSizeOverride[core])
            return mlcSizeOverride[core];
        return mlc.sizeBytes;
    }

    /** Effective LLC allocation mask for @p core. */
    WayMask
    coreLlcMask(std::uint32_t core) const
    {
        if (core < llcAllocMask.size() && llcAllocMask[core])
            return llcAllocMask[core];
        return ~WayMask(0);
    }
};

} // namespace cache

#endif // IDIO_CACHE_CONFIG_HH
