/**
 * @file
 * Private per-core cache level (used for both L1D and MLC).
 *
 * PrivateCache is a thin wrapper of TagArray plus the statistics the
 * paper's figures need; the inter-level transition logic lives in
 * MemoryHierarchy so each flow (Figs. 1 and 2) reads as one function.
 */

#ifndef IDIO_CACHE_PRIVATE_CACHE_HH
#define IDIO_CACHE_PRIVATE_CACHE_HH

#include <memory>
#include <string>

#include "cache/tag_array.hh"
#include "sim/sim_object.hh"
#include "stats/registry.hh"

namespace cache
{

/**
 * A private, write-back, write-allocate cache level.
 */
class PrivateCache : public sim::SimObject
{
    // Declared first: members initialise in declaration order and the
    // counters below reference the group.
    stats::StatGroup statGroup;

  public:
    PrivateCache(sim::Simulation &simulation, const std::string &name,
                 std::uint64_t sizeBytes, std::uint32_t assoc,
                 const std::string &replacement);

    /** Underlying tag array. */
    TagArray &tags() { return array; }
    const TagArray &tags() const { return array; }

    /** Lookup without stat side effects. */
    LineRef probe(sim::Addr addr) { return array.lookup(addr); }

    /** True when the (aligned) address is cached. */
    bool contains(sim::Addr addr) const
    {
        return array.peek(addr) != nullptr;
    }

    void serialize(ckpt::Serializer &s) const override;
    void unserialize(ckpt::Deserializer &d) override;

    /** @{ Event counters used by the figure harnesses. */
    stats::Counter hits;
    stats::Counter misses;
    stats::Counter fills;
    stats::Counter prefetchFills;
    stats::Counter writebacks;      ///< dirty evictions sent downstream
    stats::Counter cleanEvictions;  ///< clean victim-cache insertions
    stats::Counter pcieInvals;      ///< invalidations by inbound DMA
    stats::Counter selfInvals;      ///< self-invalidate instruction
    stats::Counter backInvals;      ///< directory capacity back-invals
    /** @} */

  private:
    TagArray array;
};

} // namespace cache

#endif // IDIO_CACHE_PRIVATE_CACHE_HH
