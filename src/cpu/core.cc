/**
 * @file
 * Core implementation.
 */

#include "core.hh"

#include "ckpt/serializer.hh"
#include "sim/simulation.hh"

namespace cpu
{

Core::Core(sim::Simulation &simulation, const std::string &name,
           sim::CoreId id, cache::MemoryHierarchy &hierarchy)
    : sim::SimObject(simulation, name),
      statGroup(simulation.statsRegistry(), name),
      reads(statGroup, "reads", "cacheline reads issued"),
      writes(statGroup, "writes", "cacheline writes issued"),
      invalidations(statGroup, "invalidations",
                    "self-invalidate lines issued"),
      hitsL1(statGroup, "hitsL1", "accesses served by L1"),
      hitsMlc(statGroup, "hitsMlc", "accesses served by MLC"),
      hitsLlc(statGroup, "hitsLlc", "accesses served by LLC"),
      hitsDram(statGroup, "hitsDram", "accesses served by DRAM"),
      steps(statGroup, "steps", "workload steps executed"),
      busyTicks(statGroup, "busyTicks",
                "ticks spent inside workload steps"),
      coreId(id), hier(hierarchy), stepEvent(*this),
      invalLineCost(hierarchy.config().cyclesToTicks(1))
{
}

Core::~Core()
{
    halt();
}

sim::Tick
Core::read(sim::Addr addr, std::uint64_t bytes)
{
    sim::Tick lat = 0;
    const sim::Addr first = mem::lineAlign(addr);
    const sim::Addr last = mem::lineAlign(addr + bytes - 1);
    for (sim::Addr a = first; a <= last; a += mem::lineSize) {
        const mem::AccessResult r = hier.coreRead(coreId, a);
        lat += r.latency;
        ++reads;
        countLevel(r.level);
    }
    return lat;
}

sim::Tick
Core::write(sim::Addr addr, std::uint64_t bytes)
{
    sim::Tick lat = 0;
    const sim::Addr first = mem::lineAlign(addr);
    const sim::Addr last = mem::lineAlign(addr + bytes - 1);
    for (sim::Addr a = first; a <= last; a += mem::lineSize) {
        const mem::AccessResult r = hier.coreWrite(coreId, a);
        lat += r.latency;
        ++writes;
        countLevel(r.level);
    }
    return lat;
}

sim::Tick
Core::invalidate(sim::Addr addr, std::uint64_t bytes)
{
    const std::uint64_t lines = mem::linesSpanned(addr, bytes);
    hier.invalidateRange(coreId, addr, bytes);
    invalidations += lines;
    return lines * invalLineCost;
}

void
Core::run(Workload &wl, sim::Tick firstDelay)
{
    workload = &wl;
    if (!stepEvent.scheduled())
        eventq().scheduleIn(&stepEvent, firstDelay);
}

void
Core::halt()
{
    workload = nullptr;
    if (stepEvent.scheduled())
        eventq().deschedule(&stepEvent);
}

void
Core::doStep()
{
    if (!workload)
        return;
    const sim::Tick delay = workload->step(*this);
    SIM_ASSERT(delay > 0, "workload step returned zero delay");
    ++steps;
    busyTicks += delay;
    eventq().scheduleIn(&stepEvent, delay);
}

void
Core::serialize(ckpt::Serializer &s) const
{
    // The workload binding itself is re-created by the harness before
    // restore; only the step schedule is dynamic.
    ckpt::serializeEvent(s, stepEvent);
}

void
Core::unserialize(ckpt::Deserializer &d)
{
    ckpt::unserializeEvent(d, &stepEvent);
}

void
Core::countLevel(mem::HitLevel level)
{
    switch (level) {
      case mem::HitLevel::L1:
        ++hitsL1;
        break;
      case mem::HitLevel::MLC:
        ++hitsMlc;
        break;
      case mem::HitLevel::LLC:
        ++hitsLlc;
        break;
      case mem::HitLevel::DRAM:
        ++hitsDram;
        break;
    }
}

} // namespace cpu
