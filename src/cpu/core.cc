/**
 * @file
 * Core implementation.
 */

#include "core.hh"

#include <algorithm>

#include "ckpt/serializer.hh"
#include "sim/simulation.hh"

namespace cpu
{

Core::Core(sim::Simulation &simulation, const std::string &name,
           sim::CoreId id, cache::MemoryHierarchy &hierarchy)
    : sim::SimObject(simulation, name),
      statGroup(simulation.statsRegistry(), name),
      reads(statGroup, "reads", "cacheline reads issued"),
      writes(statGroup, "writes", "cacheline writes issued"),
      invalidations(statGroup, "invalidations",
                    "self-invalidate lines issued"),
      hitsL1(statGroup, "hitsL1", "accesses served by L1"),
      hitsMlc(statGroup, "hitsMlc", "accesses served by MLC"),
      hitsLlc(statGroup, "hitsLlc", "accesses served by LLC"),
      hitsDram(statGroup, "hitsDram", "accesses served by DRAM"),
      steps(statGroup, "steps", "workload steps executed"),
      busyTicks(statGroup, "busyTicks",
                "ticks spent inside workload steps"),
      coreId(id), hier(hierarchy), stepEvent(*this),
      invalLineCost(hierarchy.config().cyclesToTicks(1))
{
}

Core::~Core()
{
    halt();
}

sim::Tick
Core::read(sim::Addr addr, std::uint64_t bytes)
{
    sim::Tick lat = 0;
    const sim::Addr first = mem::lineAlign(addr);
    const sim::Addr last = mem::lineAlign(addr + bytes - 1);
    for (sim::Addr a = first; a <= last; a += mem::lineSize) {
        const mem::AccessResult r = hier.coreRead(coreId, a);
        lat += r.latency;
        ++reads;
        // Pending accesses count their level when the fill reply
        // arrives (fillArrived), not at probe time.
        if (!r.pending)
            countLevel(r.level);
    }
    return lat;
}

sim::Tick
Core::write(sim::Addr addr, std::uint64_t bytes)
{
    sim::Tick lat = 0;
    const sim::Addr first = mem::lineAlign(addr);
    const sim::Addr last = mem::lineAlign(addr + bytes - 1);
    for (sim::Addr a = first; a <= last; a += mem::lineSize) {
        const mem::AccessResult r = hier.coreWrite(coreId, a);
        lat += r.latency;
        ++writes;
        if (!r.pending)
            countLevel(r.level);
    }
    return lat;
}

sim::Tick
Core::invalidate(sim::Addr addr, std::uint64_t bytes)
{
    const std::uint64_t lines = mem::linesSpanned(addr, bytes);
    hier.invalidateRange(coreId, addr, bytes);
    invalidations += lines;
    return lines * invalLineCost;
}

void
Core::run(Workload &wl, sim::Tick firstDelay)
{
    workload = &wl;
    if (!stepEvent.scheduled())
        eventq().scheduleIn(&stepEvent, firstDelay);
}

void
Core::halt()
{
    workload = nullptr;
    fillsOutstanding = 0;
    fillLatAccum = 0;
    if (stepEvent.scheduled())
        eventq().deschedule(&stepEvent);
}

void
Core::doStep()
{
    if (!workload)
        return;
    const sim::Tick delay = workload->step(*this);
    SIM_ASSERT(delay > 0, "workload step returned zero delay");
    ++steps;
    busyTicks += delay;
    // Split mode: when the step left fill requests pending, the
    // dispatch hook sends them over the link and the schedule stalls
    // until fillArrived() drains the replies.
    if (splitDispatch && splitDispatch(now() + delay))
        return;
    eventq().scheduleIn(&stepEvent, delay);
}

void
Core::beginFillWait(std::uint32_t count, sim::Tick resumeBase)
{
    SIM_ASSERT(count > 0, "fill wait needs at least one fill");
    SIM_ASSERT(fillsOutstanding == 0,
               "fill wait started with fills already outstanding");
    fillsOutstanding = count;
    fillLatAccum = 0;
    stepResumeBase = resumeBase;
}

void
Core::fillArrived(sim::Tick extraLat, mem::HitLevel level)
{
    SIM_ASSERT(fillsOutstanding > 0,
               "fill reply arrived with no wait in progress");
    countLevel(level);
    fillLatAccum += extraLat;
    if (--fillsOutstanding)
        return;
    if (!workload)
        return;
    // The uncore share of the stalled step's latency lands here; the
    // round-trip link time may already exceed it, in which case the
    // step resumes as soon as the last reply lands.
    busyTicks += fillLatAccum;
    const sim::Tick at =
        std::max(stepResumeBase + fillLatAccum, now());
    if (!stepEvent.scheduled())
        eventq().schedule(&stepEvent, at);
}

void
Core::serialize(ckpt::Serializer &s) const
{
    // The workload binding itself is re-created by the harness before
    // restore; only the step schedule is dynamic. The split fill-wait
    // fields only exist (and only serialize) when the dispatch hook is
    // bound, keeping legacy checkpoint bytes unchanged.
    ckpt::serializeEvent(s, stepEvent);
    if (splitDispatch) {
        s.writeU32(fillsOutstanding);
        s.writeTick(fillLatAccum);
        s.writeTick(stepResumeBase);
    }
}

void
Core::unserialize(ckpt::Deserializer &d)
{
    ckpt::unserializeEvent(d, &stepEvent, &eventq());
    if (splitDispatch) {
        fillsOutstanding = d.readU32();
        fillLatAccum = d.readTick();
        stepResumeBase = d.readTick();
    }
}

void
Core::countLevel(mem::HitLevel level)
{
    switch (level) {
      case mem::HitLevel::L1:
        ++hitsL1;
        break;
      case mem::HitLevel::MLC:
        ++hitsMlc;
        break;
      case mem::HitLevel::LLC:
        ++hitsLlc;
        break;
      case mem::HitLevel::DRAM:
        ++hitsDram;
        break;
    }
}

} // namespace cpu
