/**
 * @file
 * Calibrated per-core timing model.
 *
 * The paper's results depend on *where cachelines live*, not on
 * pipeline microarchitecture; the out-of-order core model in gem5 only
 * sets the constant packet-consumption rate. Core therefore models a
 * processor as a sequence of atomic workload steps: each step performs
 * cacheline-granular memory operations against the hierarchy (paying
 * the level-accurate latency of each access) plus explicit compute
 * cost, and the event loop resumes the workload after the step's total
 * latency. Calibration (see DESIGN.md) makes one core sustain ~1 Mpps
 * of MTU-sized TouchDrop traffic, matching the paper's observed
 * ~12 Gbps per-core capacity.
 */

#ifndef IDIO_CPU_CORE_HH
#define IDIO_CPU_CORE_HH

#include <functional>
#include <string>

#include "cache/hierarchy.hh"
#include "sim/event_queue.hh"
#include "sim/sim_object.hh"
#include "stats/registry.hh"

namespace cpu
{

class Core;

/**
 * A software entity scheduled on one core.
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    /**
     * Perform one atomic unit of work (a poll, one packet, one batch
     * of antagonist accesses...) using @p core 's memory interface.
     *
     * @return delay in ticks until the next step (>= the latency the
     *         step incurred; must be > 0).
     */
    virtual sim::Tick step(Core &core) = 0;

    /** Human-readable workload name. */
    virtual std::string label() const = 0;
};

/**
 * One physical core.
 */
class Core : public sim::SimObject
{
    stats::StatGroup statGroup;

  public:
    Core(sim::Simulation &simulation, const std::string &name,
         sim::CoreId id, cache::MemoryHierarchy &hierarchy);

    ~Core() override;

    sim::CoreId id() const { return coreId; }

    /** The hierarchy this core is attached to. */
    cache::MemoryHierarchy &hierarchy() { return hier; }

    /** @{ Memory interface: byte ranges expand to cacheline ops. */

    /** Read @p bytes starting at @p addr; @return total latency. */
    sim::Tick read(sim::Addr addr, std::uint64_t bytes = 1);

    /** Write @p bytes starting at @p addr; @return total latency. */
    sim::Tick write(sim::Addr addr, std::uint64_t bytes = 1);

    /**
     * Self-invalidate the lines of [addr, addr+bytes) — the IDIO
     * multi-cacheline invalidate instruction. @return latency.
     */
    sim::Tick invalidate(sim::Addr addr, std::uint64_t bytes);
    /** @} */

    /**
     * @{ Split-link mode. With modelled mesh latencies, a
     * private-cache miss returns a *pending* AccessResult: the step
     * completes charging only the local probe latencies, and the
     * dispatch hook below sends fill requests over the link. The step
     * schedule then stalls until every fill reply arrives through
     * fillArrived(); the uncore share of the latency is paid at resume
     * time, so a step's total cost matches the sum of its parts.
     */

    /**
     * Harness hook invoked after each step. @p resumeAt is the tick
     * the step schedule would resume at; the hook returns true when it
     * dispatched pending fills (the core then waits for fillArrived()
     * instead of self-scheduling).
     */
    void
    setSplitFillDispatch(std::function<bool(sim::Tick resumeAt)> f)
    {
        splitDispatch = std::move(f);
    }

    /** Stall the step schedule until @p count fill replies arrive. */
    void beginFillWait(std::uint32_t count, sim::Tick resumeBase);

    /** One fill reply: uncore latency share + the level that served. */
    void fillArrived(sim::Tick extraLat, mem::HitLevel level);
    /** @} */

    /** Attach a workload and begin stepping it at now() + delay. */
    void run(Workload &workload, sim::Tick firstDelay = 0);

    /** Stop stepping the current workload. */
    void halt();

    /** @{ Counters. */
    stats::Counter reads;
    stats::Counter writes;
    stats::Counter invalidations;
    stats::Counter hitsL1;
    stats::Counter hitsMlc;
    stats::Counter hitsLlc;
    stats::Counter hitsDram;
    stats::Counter steps;
    stats::Counter busyTicks;
    /** @} */

    void serialize(ckpt::Serializer &s) const override;
    void unserialize(ckpt::Deserializer &d) override;

  private:
    class StepEvent : public sim::Event
    {
      public:
        explicit StepEvent(Core &owner) : owner(owner) {}
        void process() override { owner.doStep(); }
        std::string name() const override
        {
            return owner.name() + ".step";
        }

      private:
        Core &owner;
    };

    void doStep();
    void countLevel(mem::HitLevel level);

    sim::CoreId coreId;
    cache::MemoryHierarchy &hier;
    Workload *workload = nullptr;
    StepEvent stepEvent;
    sim::Tick invalLineCost;

    /** @{ Split-link fill-wait state (serialized in split mode). */
    std::function<bool(sim::Tick)> splitDispatch;
    std::uint32_t fillsOutstanding = 0;
    sim::Tick fillLatAccum = 0;
    sim::Tick stepResumeBase = 0;
    /** @} */
};

} // namespace cpu

#endif // IDIO_CPU_CORE_HH
