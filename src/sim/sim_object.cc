/**
 * @file
 * SimObject implementation.
 */

#include "sim_object.hh"

#include "simulation.hh"

namespace sim
{

SimObject::SimObject(Simulation &simulation, std::string name)
    : sim(simulation), eq(&simulation.constructionQueue()),
      _name(std::move(name))
{
    sim.registerObject(this);
}

SimObject::~SimObject()
{
    sim.unregisterObject(this);
}

void
SimObject::serialize(ckpt::Serializer &) const
{
}

void
SimObject::unserialize(ckpt::Deserializer &)
{
}

trace::Tracer &
SimObject::tracer() const
{
    return sim.tracer();
}

Tick
SimObject::now() const
{
    return eq->now();
}

} // namespace sim
