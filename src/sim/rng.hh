/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic model behaviour (Poisson arrivals, random replacement,
 * antagonist access patterns) draws from explicitly seeded Rng instances
 * so that simulations are bit-reproducible across runs and platforms.
 * The generator is xoshiro256** (public domain, Blackman/Vigna).
 */

#ifndef IDIO_SIM_RNG_HH
#define IDIO_SIM_RNG_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace sim
{

/**
 * Small, fast, seedable random number generator.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed via splitmix64 expansion. */
    explicit Rng(std::uint64_t seed = 0x1d10c0ffeeULL) { reseed(seed); }

    /** Re-initialise the state from a seed. */
    void
    reseed(std::uint64_t seed)
    {
        std::uint64_t x = seed;
        for (auto &w : s)
            w = splitmix64(x);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
        const std::uint64_t t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free approximation is fine
        // for simulation purposes (bias < 2^-64 * bound).
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Exponentially distributed double with the given mean. */
    double exponential(double mean);

    /** Bernoulli trial with probability @p p of returning true. */
    bool chance(double p) { return uniform() < p; }

    /** @{ Raw generator state (checkpoint save/restore). */
    std::array<std::uint64_t, 4>
    state() const
    {
        return {s[0], s[1], s[2], s[3]};
    }

    void
    setState(const std::array<std::uint64_t, 4> &st)
    {
        for (int i = 0; i < 4; ++i)
            s[i] = st[static_cast<std::size_t>(i)];
    }
    /** @} */

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static std::uint64_t
    splitmix64(std::uint64_t &x)
    {
        std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    std::uint64_t s[4];
};

} // namespace sim

#endif // IDIO_SIM_RNG_HH
