/**
 * @file
 * Lightweight non-owning callback delegate.
 *
 * sim::Delegate is the hot-path alternative to std::function for the
 * simulator's per-transaction observer hooks: two raw pointers (bound
 * object + trampoline), no heap allocation, no virtual dispatch, and a
 * call that the compiler can often inline through. The delegate does
 * NOT own or copy the bound object — the binder guarantees the object
 * outlives every invocation, which holds for all simulator uses (the
 * observers are SimObjects living as long as the Simulation).
 */

#ifndef IDIO_SIM_DELEGATE_HH
#define IDIO_SIM_DELEGATE_HH

#include <utility>

namespace sim
{

template <typename Signature>
class Delegate;

/**
 * Delegate specialisation for a function signature R(Args...).
 *
 * Bind a member function:
 *   auto d = Delegate<void(int)>::fromMember<&Widget::poke>(&widget);
 * or any long-lived callable (e.g.\ a named lambda in a test):
 *   auto fn = [&](int v) { sum += v; };
 *   auto d = Delegate<void(int)>::fromCallable(&fn);
 *
 * A default-constructed delegate is empty; test with operator bool
 * before invoking.
 */
template <typename R, typename... Args>
class Delegate<R(Args...)>
{
  public:
    Delegate() = default;

    /** Bind @p obj->*Method (Method is a member-pointer constant). */
    template <auto Method, typename T>
    static Delegate
    fromMember(T *obj)
    {
        Delegate d;
        d.obj = obj;
        d.fn = [](void *o, Args... args) -> R {
            return (static_cast<T *>(o)->*Method)(
                std::forward<Args>(args)...);
        };
        return d;
    }

    /** Bind a callable object the caller keeps alive. */
    template <typename T>
    static Delegate
    fromCallable(T *callable)
    {
        Delegate d;
        d.obj = callable;
        d.fn = [](void *o, Args... args) -> R {
            return (*static_cast<T *>(o))(
                std::forward<Args>(args)...);
        };
        return d;
    }

    /** True when a target is bound. */
    explicit operator bool() const { return fn != nullptr; }

    /** Invoke the bound target (undefined when empty). */
    R
    operator()(Args... args) const
    {
        return fn(obj, std::forward<Args>(args)...);
    }

    /** Unbind. */
    void
    reset()
    {
        obj = nullptr;
        fn = nullptr;
    }

  private:
    void *obj = nullptr;
    R (*fn)(void *, Args...) = nullptr;
};

} // namespace sim

#endif // IDIO_SIM_DELEGATE_HH
