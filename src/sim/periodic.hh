/**
 * @file
 * Periodic callback event.
 *
 * Used for fixed-cadence activities: the IDIO control plane (1 us), the
 * classifier burst-counter reset (1 us), timeline samplers (10 us).
 *
 * These short fixed periods are the timing wheel's ideal case: each
 * reschedule lands within the wheel horizon (usually level 0 or 1), so
 * the per-firing scheduler cost is O(1) slot placement rather than a
 * heap reheapify (see event_queue.hh).
 */

#ifndef IDIO_SIM_PERIODIC_HH
#define IDIO_SIM_PERIODIC_HH

#include <functional>
#include <string>
#include <utility>

#include "event_queue.hh"
#include "types.hh"

namespace sim
{

/**
 * Fires a callback every @p period ticks until stopped.
 */
class PeriodicEvent : public Event
{
  public:
    /**
     * @param queue Event queue to run on.
     * @param period Interval between firings.
     * @param fn Callback invoked each period.
     * @param label Name for tracing.
     */
    PeriodicEvent(EventQueue &queue, Tick period,
                  std::function<void()> fn,
                  std::string label = "periodic")
        : queue(queue), period(period), fn(std::move(fn)),
          label(std::move(label))
    {
    }

    ~PeriodicEvent() override { stop(); }

    /** Start firing; first callback at now() + period (or @p phase). */
    void
    start(Tick phase = 0)
    {
        if (!scheduled())
            queue.scheduleIn(this, phase ? phase : period);
    }

    /** Stop firing. */
    void
    stop()
    {
        if (scheduled())
            queue.deschedule(this);
    }

    void
    process() override
    {
        fn();
        queue.scheduleIn(this, period);
    }

    std::string name() const override { return label; }

  private:
    EventQueue &queue;
    Tick period;
    std::function<void()> fn;
    std::string label;
};

} // namespace sim

#endif // IDIO_SIM_PERIODIC_HH
