/**
 * @file
 * Fundamental simulation types and time-unit constants.
 *
 * The simulator follows the gem5 convention of an integer global time
 * base measured in Ticks, where one Tick equals one picosecond. All
 * latency and bandwidth parameters are converted into Ticks at
 * configuration time so the hot simulation paths only perform integer
 * arithmetic.
 */

#ifndef IDIO_SIM_TYPES_HH
#define IDIO_SIM_TYPES_HH

#include <cstdint>

namespace sim
{

/** Simulated time. One Tick is one picosecond. */
using Tick = std::uint64_t;

/** Signed tick difference, for interval arithmetic. */
using TickDelta = std::int64_t;

/** A tick value that compares greater than any schedulable time. */
constexpr Tick maxTick = ~Tick(0);

/** @{ Time-unit conversion constants (all expressed in Ticks). */
constexpr Tick onePs = 1;
constexpr Tick oneNs = 1000 * onePs;
constexpr Tick oneUs = 1000 * oneNs;
constexpr Tick oneMs = 1000 * oneUs;
constexpr Tick oneSec = 1000 * oneMs;
/** @} */

/** Convert a tick count to (double) seconds. */
constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(oneSec);
}

/** Convert a tick count to (double) microseconds. */
constexpr double
ticksToUs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(oneUs);
}

/** Convert (double) nanoseconds to Ticks, rounding to nearest. */
constexpr Tick
nsToTicks(double ns)
{
    return static_cast<Tick>(ns * static_cast<double>(oneNs) + 0.5);
}

/**
 * Number of ticks per cycle for a clock of the given frequency.
 *
 * @param ghz Clock frequency in GHz.
 */
constexpr Tick
cyclePeriod(double ghz)
{
    return static_cast<Tick>(1000.0 / ghz + 0.5);
}

/** Physical (simulated) memory address. */
using Addr = std::uint64_t;

/** Identifier of a physical core. */
using CoreId = std::uint32_t;

/** Sentinel meaning "no core" / broadcast. */
constexpr CoreId invalidCore = ~CoreId(0);

} // namespace sim

#endif // IDIO_SIM_TYPES_HH
