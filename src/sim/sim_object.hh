/**
 * @file
 * Named simulation components.
 *
 * Every model in the system (caches, NIC, cores, IDIO controller...)
 * derives from SimObject. The object records a dotted hierarchical name
 * ("system.llc", "system.core0.mlc") used for stat registration and
 * tracing, and keeps a reference to the Simulation it belongs to.
 */

#ifndef IDIO_SIM_SIM_OBJECT_HH
#define IDIO_SIM_SIM_OBJECT_HH

#include <string>
#include <utility>

#include "types.hh"

namespace trace
{
class Tracer;
}

namespace ckpt
{
class Serializer;
class Deserializer;
}

namespace sim
{

class Simulation;
class EventQueue;

/**
 * Base class for all named simulation components.
 */
class SimObject
{
  public:
    /**
     * @param simulation Owning simulation context.
     * @param name Dotted hierarchical instance name.
     */
    SimObject(Simulation &simulation, std::string name);
    virtual ~SimObject();

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    /** Instance name, e.g.\ "system.core0.mlc". */
    const std::string &name() const { return _name; }

    /** Owning simulation. */
    Simulation &simulation() const { return sim; }

    /**
     * Event queue shorthand: the timing-domain queue this object was
     * constructed under (the simulation's main queue unless the
     * harness bound an auxiliary domain queue around construction).
     */
    EventQueue &eventq() const { return *eq; }

    /** Event tracer shorthand. */
    trace::Tracer &tracer() const;

    /** Current simulated time shorthand (this object's domain queue). */
    Tick now() const;

    /**
     * @{ Checkpoint hooks. serialize() writes the object's *dynamic*
     * state (queues, FSM registers, pending-event records...) into the
     * already-open checkpoint section named after this object;
     * unserialize() reads it back in the same order. Structural state
     * rebuilt by construction (sizes, addresses, latencies) and stat
     * values (captured wholesale by the registry pseudo-section) must
     * not be written here. The default is stateless.
     */
    virtual void serialize(ckpt::Serializer &serializer) const;
    virtual void unserialize(ckpt::Deserializer &deserializer);
    /** @} */

  protected:
    Simulation &sim;

  private:
    EventQueue *eq;
    std::string _name;
};

} // namespace sim

#endif // IDIO_SIM_SIM_OBJECT_HH
