/**
 * @file
 * Named simulation components.
 *
 * Every model in the system (caches, NIC, cores, IDIO controller...)
 * derives from SimObject. The object records a dotted hierarchical name
 * ("system.llc", "system.core0.mlc") used for stat registration and
 * tracing, and keeps a reference to the Simulation it belongs to.
 */

#ifndef IDIO_SIM_SIM_OBJECT_HH
#define IDIO_SIM_SIM_OBJECT_HH

#include <string>
#include <utility>

#include "types.hh"

namespace trace
{
class Tracer;
}

namespace sim
{

class Simulation;
class EventQueue;

/**
 * Base class for all named simulation components.
 */
class SimObject
{
  public:
    /**
     * @param simulation Owning simulation context.
     * @param name Dotted hierarchical instance name.
     */
    SimObject(Simulation &simulation, std::string name);
    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    /** Instance name, e.g.\ "system.core0.mlc". */
    const std::string &name() const { return _name; }

    /** Owning simulation. */
    Simulation &simulation() const { return sim; }

    /** Event queue shorthand. */
    EventQueue &eventq() const;

    /** Event tracer shorthand. */
    trace::Tracer &tracer() const;

    /** Current simulated time shorthand. */
    Tick now() const;

  protected:
    Simulation &sim;

  private:
    std::string _name;
};

} // namespace sim

#endif // IDIO_SIM_SIM_OBJECT_HH
