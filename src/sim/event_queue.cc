/**
 * @file
 * EventQueue implementation.
 */

#include "event_queue.hh"

namespace sim
{

Event::~Event()
{
    // An Event must be descheduled before destruction; the queue holds
    // only a raw pointer. Destruction while scheduled is a programming
    // error in release builds too, but we cannot safely touch the queue
    // here, so we just flag it.
    if (_scheduled)
        panic("event destroyed while scheduled");
}

EventQueue::~EventQueue()
{
    // Drop remaining entries, freeing owned lambda events.
    while (!heap.empty()) {
        Entry e = heap.top();
        heap.pop();
        if (e.owned) {
            e.ev->_scheduled = false;
            delete e.ev;
        } else if (e.ev->_scheduled && e.ev->_seq == e.seq) {
            e.ev->_scheduled = false;
        }
    }
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    if (ev->_scheduled)
        panic("event '%s' scheduled twice", ev->name().c_str());
    if (when < curTick)
        panic("event '%s' scheduled in the past (%llu < %llu)",
              ev->name().c_str(), (unsigned long long)when,
              (unsigned long long)curTick);

    ev->_scheduled = true;
    ev->_when = when;
    ev->_seq = nextSeq;
    heap.push(Entry{when, nextSeq++, ev, false});
}

void
EventQueue::deschedule(Event *ev)
{
    if (!ev->_scheduled)
        panic("descheduling unscheduled event '%s'", ev->name().c_str());
    ev->_scheduled = false;
    ++squashedCount;
}

void
EventQueue::schedule(Tick when, std::function<void()> fn)
{
    if (when < curTick)
        panic("lambda event scheduled in the past (%llu < %llu)",
              (unsigned long long)when, (unsigned long long)curTick);
    auto *ev = new LambdaEvent(std::move(fn));
    ev->_scheduled = true;
    ev->_when = when;
    ev->_seq = nextSeq;
    heap.push(Entry{when, nextSeq++, ev, true});
}

std::uint64_t
EventQueue::runUntil(Tick limit)
{
    std::uint64_t processed = 0;
    while (!heap.empty()) {
        const Entry &top = heap.top();

        // Skip squashed (descheduled or rescheduled) entries.
        if (!top.owned &&
            (!top.ev->_scheduled || top.ev->_seq != top.seq)) {
            heap.pop();
            --squashedCount;
            continue;
        }

        if (top.when > limit)
            break;

        Entry e = top;
        heap.pop();
        curTick = e.when;
        e.ev->_scheduled = false;
        e.ev->process();
        if (e.owned)
            delete e.ev;
        ++processed;
        ++nProcessed;
    }
    if (curTick < limit && limit != maxTick)
        curTick = limit;
    return processed;
}

} // namespace sim
