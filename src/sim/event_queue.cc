/**
 * @file
 * EventQueue implementation: the hierarchical-timing-wheel scheduler,
 * its binary-heap reference backend, and the shared dispatch machinery
 * (fused same-tick drain, overflow compaction, one-shot pooling).
 */

#include "event_queue.hh"

#include <cstdlib>
#include <cstring>
#include <unordered_map>

namespace sim
{

namespace
{

constexpr std::size_t bitmapNpos = ~std::size_t(0);

/** Index of the lowest set bit across a level's occupancy words. */
std::size_t
lowestSetIndex(const std::array<std::uint64_t, 4> &words)
{
    for (std::size_t w = 0; w < words.size(); ++w) {
        if (words[w])
            return w * 64 +
                   static_cast<std::size_t>(__builtin_ctzll(words[w]));
    }
    return bitmapNpos;
}

} // namespace

Event::~Event()
{
    // An Event must be descheduled before destruction; the queue holds
    // only a raw pointer. Destruction while scheduled is a programming
    // error in release builds too, but we cannot safely touch the queue
    // here, so we just flag it.
    if (_scheduled)
        panic("event destroyed while scheduled");
}

SchedulerBackend
EventQueue::defaultBackend()
{
    static const SchedulerBackend cached = [] {
        const char *env = std::getenv("IDIO_EVENTQ");
        if (!env || !*env || !std::strcmp(env, "wheel"))
            return SchedulerBackend::TimingWheel;
        if (!std::strcmp(env, "heap"))
            return SchedulerBackend::BinaryHeap;
        panic("unknown IDIO_EVENTQ value '%s' "
              "(expected 'wheel' or 'heap')",
              env);
    }();
    return cached;
}

const char *
EventQueue::backendName(SchedulerBackend b)
{
    return b == SchedulerBackend::BinaryHeap ? "heap" : "wheel";
}

EventQueue::EventQueue(SchedulerBackend b)
    : useHeap(b == SchedulerBackend::BinaryHeap)
{
}

EventQueue::~EventQueue()
{
    // Unmark remaining live entries so their owners can destroy them
    // afterwards. Pooled one-shot nodes are owned by oneShotPool and
    // destroyed with it (their destructor disarms any stored
    // callable); squashed/tombstoned entries are null already.
    auto unmark = [](std::vector<Entry> &v) {
        for (Entry &e : v)
            if (e.evTag && !e.owned())
                e.ev()->_scheduled = false;
    };
    for (auto &level : slots)
        for (auto &slot : level)
            unmark(slot);
    unmark(drainBatch);
    unmark(heap);
}

void
EventQueue::push(const Entry &e)
{
    heap.push_back(e);
    std::push_heap(heap.begin(), heap.end(), EntryAfter{});
}

EventQueue::Entry
EventQueue::popTop()
{
    std::pop_heap(heap.begin(), heap.end(), EntryAfter{});
    Entry e = heap.back();
    heap.pop_back();
    return e;
}

OneShotEvent *
EventQueue::acquireOneShot()
{
    if (freeOneShots) {
        OneShotEvent *ev = freeOneShots;
        freeOneShots = ev->nextFree;
        ev->nextFree = nullptr;
        return ev;
    }
    oneShotPool.push_back(std::make_unique<OneShotEvent>());
    return oneShotPool.back().get();
}

void
EventQueue::releaseOneShot(OneShotEvent *ev)
{
    ev->disarm();
    ev->nextFree = freeOneShots;
    freeOneShots = ev;
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    if (ev->_scheduled)
        panic("event '%s' scheduled twice", ev->name().c_str());
    if (when < curTick)
        panic("event '%s' scheduled in the past (%llu < %llu)",
              ev->name().c_str(), (unsigned long long)when,
              (unsigned long long)curTick);

    ev->_scheduled = true;
    ev->_when = when;
    ev->_seq = nextSeq;
    insert(Entry{when, nextSeq++, Entry::tag(ev, false)});
}

void
EventQueue::deschedule(Event *ev)
{
    if (!ev->_scheduled)
        panic("descheduling unscheduled event '%s'", ev->name().c_str());

    const Tick when = ev->_when;
    const std::uint64_t seq = ev->_seq;
    ev->_scheduled = false;
    --livePending;

    if (minValid && when == cachedMin)
        minValid = false;

    const unsigned l = useHeap ? numLevels : levelFor(when);
    if (l < numLevels) {
        // Wheel-resident: erase the entry exactly. No tombstones in
        // slots — deschedule churn cannot bloat the wheel.
        const std::size_t idx = slotIndex(l, when);
        auto &slot = slots[l][idx];
        for (auto it = slot.begin(); it != slot.end(); ++it) {
            if (it->seq == seq) {
                slot.erase(it);
                if (slot.empty())
                    clearSlotMark(l, idx);
                return;
            }
        }
        // Not in its slot: the event's tick is being drained right now
        // and the entry sits in the swapped-out batch. Tombstone it
        // there so the dispatch loop skips it.
        if (draining) {
            for (std::size_t i = drainPos + 1; i < drainBatch.size();
                 ++i) {
                if (drainBatch[i].evTag && drainBatch[i].seq == seq) {
                    drainBatch[i].evTag = 0;
                    return;
                }
            }
        }
        SIM_ASSERT(false, "scheduled event missing from its wheel slot");
        return;
    }

    // Overflow heap (or BinaryHeap backend): null the entry in place.
    // Once descheduled, the owner may destroy the Event immediately, so
    // the queue must not keep the pointer. Nulling does not disturb the
    // heap order (ordering keys are when/seq only).
    for (Entry &e : heap) {
        if (e.ev() == ev && e.seq == seq) {
            e.evTag = 0;
            ++squashedCount;
            // Lazy compaction: once squashed entries outnumber live
            // ones the heap is mostly dead weight — rebuild it from
            // the survivors so heap.size() stays within 2x of its
            // live population no matter how much a workload
            // deschedules.
            if (squashedCount * 2 > heap.size())
                compact();
            return;
        }
    }
    SIM_ASSERT(false, "scheduled event missing from the overflow heap");
}

void
EventQueue::compact()
{
    const std::size_t liveHeap = heap.size() - squashedCount;
    heap.erase(std::remove_if(
                   heap.begin(), heap.end(),
                   [](const Entry &e) { return squashed(e); }),
               heap.end());
    std::make_heap(heap.begin(), heap.end(), EntryAfter{});
    squashedCount = 0;
    SIM_ASSERT(heap.size() == liveHeap,
               "squashed-entry compaction changed pending()");
}

void
EventQueue::advanceSlow(Tick t)
{
    const Tick x = wheelBase ^ t;
    // Set the base first: the cascade/refill placement below is
    // relative to the NEW base, so moved entries land in lower levels
    // (or the overflow pulls into exact slots) and are never
    // re-visited by this advance.
    wheelBase = t;
    if (!useHeap && (x >> spanBits)) {
        // Crossed into a new 2^24-tick block: pull the now-in-horizon
        // overflow events back into the wheel.
        refillFromOverflow(t);
    }
    if (x >> (2 * slotBits))
        cascade(2, slotIndex(2, t));
    cascade(1, slotIndex(1, t));
}

void
EventQueue::cascade(unsigned level, std::size_t idx)
{
    auto &slot = slots[level][idx];
    if (slot.empty())
        return;
    // Swap out before re-placing: every entry here shares tick bits
    // with the new base down through this level, so placeWheel targets
    // strictly lower levels and never appends back into `slot`.
    cascadeScratch.clear();
    cascadeScratch.swap(slot);
    clearSlotMark(level, idx);
    for (const Entry &e : cascadeScratch)
        placeWheel(e);
    cascadeScratch.clear();
}

void
EventQueue::refillFromOverflow(Tick t)
{
    const Tick blockEnd = t | ((Tick(1) << spanBits) - 1);
    for (;;) {
        dropSquashedTop();
        if (heap.empty() || heap.front().when > blockEnd)
            break;
        const Entry e = popTop();
        placeWheel(e);
    }
}

Tick
EventQueue::computeMin()
{
    // Mid-drain remnants of the active tick still count as pending.
    if (draining) {
        for (std::size_t i = drainPos; i < drainBatch.size(); ++i)
            if (drainBatch[i].evTag)
                return curTick;
    }
    // Level hierarchy: every live level-0 tick precedes every level-1
    // tick, which precedes every level-2 tick, which precedes every
    // overflow tick — so the first occupied level decides the min.
    if (!levelEmpty(0)) {
        const std::size_t idx = lowestSetIndex(occupied[0]);
        return (wheelBase & ~Tick(slotMask)) | Tick(idx);
    }
    for (unsigned l = 1; l < numLevels; ++l) {
        if (levelEmpty(l))
            continue;
        const std::size_t idx = lowestSetIndex(occupied[l]);
        Tick best = maxTick;
        for (const Entry &e : slots[l][idx])
            best = std::min(best, e.when);
        return best;
    }
    dropSquashedTop();
    return heap.empty() ? maxTick : heap.front().when;
}

Tick
EventQueue::nextEventTick() const
{
    Tick earliest = maxTick;
    for (const auto &level : slots)
        for (const auto &slot : level)
            for (const Entry &e : slot)
                if (e.when < earliest)
                    earliest = e.when;
    for (std::size_t i = drainPos; i < drainBatch.size(); ++i)
        if (drainBatch[i].evTag && drainBatch[i].when < earliest)
            earliest = drainBatch[i].when;
    for (const Entry &e : heap)
        if (!squashed(e) && e.when < earliest)
            earliest = e.when;
    return earliest;
}

std::uint64_t
EventQueue::fireTickSlow()
{
    std::uint64_t fired = 0;
    if (!useHeap) {
        // Every curTick entry lives in the level-0 slot (the overflow
        // refill runs before the base reaches a block). Swap the slot
        // out and fire it in one pass; events scheduled into the same
        // tick mid-drain land in the (now empty) slot and are picked
        // up by the outer loop — still in seq order, since new seqs
        // exceed every batched one.
        const std::size_t idx = slotIndex(0, curTick);
        auto &slot = slots[0][idx];
        draining = true;
        const auto bySeq = [](const Entry &a, const Entry &b) {
            return a.seq < b.seq;
        };
        while (!slot.empty()) {
            drainBatch.swap(slot);
            clearSlotMark(0, idx);
            // A level-0 slot covers a single tick, and same-tick
            // entries are seq-sorted by construction: direct appends
            // use fresh ascending seqs, and cascades/refills preserve
            // the relative order of same-tick entries. (Whole
            // level-1/2 slots are NOT seq-sorted — the overflow
            // refill interleaves ticks in (when, seq) order — but
            // that never reaches this drain unsorted.) Keep a
            // defensive re-sort behind the cheap check.
            if (!std::is_sorted(drainBatch.begin(), drainBatch.end(),
                                bySeq))
                std::sort(drainBatch.begin(), drainBatch.end(), bySeq);
            for (drainPos = 0; drainPos < drainBatch.size();
                 ++drainPos) {
                const Entry e = drainBatch[drainPos];
                if (!e.evTag)
                    continue; // descheduled mid-drain
                fireEntry(e);
                ++fired;
            }
            drainBatch.clear();
            drainPos = 0;
        }
    }
    // BinaryHeap backend — and, defensively, any overflow entry at
    // exactly curTick (the wheel backend never leaves one there).
    for (;;) {
        dropSquashedTop();
        if (heap.empty() || heap.front().when != curTick)
            break;
        fireEntry(popTop());
        ++fired;
    }
    draining = false;
    // The cached min was consumed. An empty queue re-validates at
    // maxTick immediately, so the dominant schedule-one/run-one cycle
    // updates the min on schedule and skips the recompute entirely.
    cachedMin = maxTick;
    minValid = empty();
    return fired;
}

void
EventQueue::fireOneOverflow()
{
    dropSquashedTop();
    SIM_ASSERT(!heap.empty() && heap.front().when == curTick,
               "fireOne() with no event at the current tick");
    fireEntry(popTop());
    if (livePending == 0)
        minValid = true;
}

bool
EventQueue::selfCheckConsistent() const
{
    std::size_t liveInWheel = 0;
    std::size_t squashedInHeap = 0;
    std::unordered_map<Tick, std::uint64_t> seqByTick;

    for (unsigned l = 0; l < numLevels; ++l) {
        for (std::size_t idx = 0; idx < slotCount; ++idx) {
            const auto &slot = slots[l][idx];
            const bool marked =
                ((occupied[l][idx >> 6] >> (idx & 63)) & 1) != 0;
            if (marked != !slot.empty())
                return false;
            // Entries sharing a tick must appear in ascending seq
            // order — that is the order the level-0 drain fires them
            // in, and cascades preserve relative order on the way
            // down. Whole level-1/2 slots need NOT be seq-sorted: the
            // overflow refill emits entries in (when, seq) order, so
            // a multi-tick slot can interleave ticks out of seq
            // order. A level-0 slot covers a single tick, so there
            // the same-tick rule makes the whole slot seq-sorted.
            seqByTick.clear();
            for (const Entry &e : slot) {
                if (!e.evTag)
                    return false; // tombstone outside the drain batch
                if (levelFor(e.when) != l ||
                    slotIndex(l, e.when) != idx)
                    return false;
                if (e.when < wheelBase)
                    return false; // live event in the past
                const auto [it, fresh] =
                    seqByTick.emplace(e.when, e.seq);
                if (!fresh) {
                    if (e.seq <= it->second)
                        return false; // same-tick entries out of order
                    it->second = e.seq;
                }
                ++liveInWheel;
            }
        }
    }
    // When called from the post-event hook mid-drain, drainPos still
    // points at the entry being fired (its livePending share is
    // already gone); only entries after it are still live.
    const std::size_t firstLive = drainPos + (draining ? 1 : 0);
    for (std::size_t i = firstLive; i < drainBatch.size(); ++i)
        if (drainBatch[i].evTag)
            ++liveInWheel;

    for (const Entry &e : heap) {
        if (squashed(e)) {
            ++squashedInHeap;
            continue;
        }
        if (!useHeap && !draining &&
            !((e.when ^ wheelBase) >> spanBits))
            return false; // in-horizon event stuck in the overflow
    }
    if (squashedInHeap != squashedCount)
        return false;
    if (livePending != liveInWheel + heap.size() - squashedInHeap)
        return false;

    return wheelBase <= curTick;
}

void
EventQueueRestoreAccess::clearPending(EventQueue &eq)
{
    SIM_ASSERT(!eq.draining,
               "checkpoint restore from inside event dispatch");
    auto drop = [&eq](std::vector<EventQueue::Entry> &v) {
        for (EventQueue::Entry &e : v) {
            if (!e.evTag)
                continue;
            if (e.owned()) {
                eq.releaseOneShot(static_cast<OneShotEvent *>(e.ev()));
            } else {
                e.ev()->_scheduled = false;
            }
        }
        v.clear();
    };
    for (auto &level : eq.slots)
        for (auto &slot : level)
            drop(slot);
    for (auto &words : eq.occupied)
        words.fill(0);
    drop(eq.drainBatch);
    eq.drainPos = 0;
    drop(eq.heap);
    eq.livePending = 0;
    eq.squashedCount = 0;
    eq.nextSeq = 0;
    eq.cachedMin = maxTick;
    eq.minValid = true;
}

} // namespace sim
