/**
 * @file
 * EventQueue implementation.
 */

#include "event_queue.hh"

namespace sim
{

Event::~Event()
{
    // An Event must be descheduled before destruction; the queue holds
    // only a raw pointer. Destruction while scheduled is a programming
    // error in release builds too, but we cannot safely touch the queue
    // here, so we just flag it.
    if (_scheduled)
        panic("event destroyed while scheduled");
}

EventQueue::~EventQueue()
{
    // Unmark remaining live entries so their owners can destroy them
    // afterwards. Pooled one-shot nodes are owned by oneShotPool and
    // destroyed with it (their destructor disarms any stored callable);
    // squashed entries are null already.
    for (Entry &e : heap) {
        if (e.ev)
            e.ev->_scheduled = false;
    }
    heap.clear();
}

void
EventQueue::push(Entry e)
{
    heap.push_back(e);
    std::push_heap(heap.begin(), heap.end(), EntryAfter{});
}

EventQueue::Entry
EventQueue::popTop()
{
    std::pop_heap(heap.begin(), heap.end(), EntryAfter{});
    Entry e = heap.back();
    heap.pop_back();
    return e;
}

OneShotEvent *
EventQueue::acquireOneShot()
{
    if (freeOneShots) {
        OneShotEvent *ev = freeOneShots;
        freeOneShots = ev->nextFree;
        ev->nextFree = nullptr;
        return ev;
    }
    oneShotPool.push_back(std::make_unique<OneShotEvent>());
    return oneShotPool.back().get();
}

void
EventQueue::releaseOneShot(OneShotEvent *ev)
{
    ev->disarm();
    ev->nextFree = freeOneShots;
    freeOneShots = ev;
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    if (ev->_scheduled)
        panic("event '%s' scheduled twice", ev->name().c_str());
    if (when < curTick)
        panic("event '%s' scheduled in the past (%llu < %llu)",
              ev->name().c_str(), (unsigned long long)when,
              (unsigned long long)curTick);

    ev->_scheduled = true;
    ev->_when = when;
    ev->_seq = nextSeq;
    push(Entry{when, nextSeq++, ev, false});
}

void
EventQueue::deschedule(Event *ev)
{
    if (!ev->_scheduled)
        panic("descheduling unscheduled event '%s'", ev->name().c_str());
    // Null the heap entry in place: once descheduled, the owner may
    // destroy the Event immediately, so the queue must not keep the
    // pointer. O(pending), but descheduling only happens at stop/idle
    // transitions. Nulling does not disturb the heap order (ordering
    // keys are when/seq only).
    for (Entry &e : heap) {
        if (e.ev == ev && e.seq == ev->_seq) {
            e.ev = nullptr;
            break;
        }
    }
    ev->_scheduled = false;
    ++squashedCount;

    // Lazy compaction: once squashed entries outnumber live ones the
    // heap is mostly dead weight — rebuild it from the survivors so
    // heap.size() stays within 2x of pending() no matter how much a
    // workload deschedules.
    if (squashedCount * 2 > heap.size())
        compact();
}

void
EventQueue::compact()
{
    const std::size_t livePending = heap.size() - squashedCount;
    heap.erase(std::remove_if(
                   heap.begin(), heap.end(),
                   [](const Entry &e) { return squashed(e); }),
               heap.end());
    std::make_heap(heap.begin(), heap.end(), EntryAfter{});
    squashedCount = 0;
    SIM_ASSERT(pending() == livePending,
               "squashed-entry compaction changed pending()");
}

Tick
EventQueue::nextEventTick() const
{
    Tick earliest = maxTick;
    for (const Entry &e : heap) {
        if (!squashed(e) && e.when < earliest)
            earliest = e.when;
    }
    return earliest;
}

std::uint64_t
EventQueue::runUntil(Tick limit)
{
    std::uint64_t processed = 0;
    while (true) {
        // peekNextTick() prunes squashed tops, so afterwards the heap
        // front (if any) is the next live event.
        const Tick next = peekNextTick();
        if (heap.empty() || next > limit)
            break;

        Entry e = popTop();
        curTick = e.when;
        e.ev->_scheduled = false;
        e.ev->process();
        if (e.owned)
            releaseOneShot(static_cast<OneShotEvent *>(e.ev));
        ++processed;
        ++nProcessed;

        if (hookEvery && ++sinceHook >= hookEvery) {
            sinceHook = 0;
            postEventHook();
        }
    }
    if (curTick < limit && limit != maxTick)
        curTick = limit;
    return processed;
}

bool
EventQueue::runOne(Tick limit)
{
    // Mirrors one iteration of runUntil(), including the final
    // advance-to-limit when nothing (more) is eligible, so that a
    // sequence of runOne(limit) calls is indistinguishable from one
    // runUntil(limit).
    const Tick next = peekNextTick();
    if (heap.empty() || next > limit) {
        if (curTick < limit && limit != maxTick)
            curTick = limit;
        return false;
    }

    Entry e = popTop();
    curTick = e.when;
    e.ev->_scheduled = false;
    e.ev->process();
    if (e.owned)
        releaseOneShot(static_cast<OneShotEvent *>(e.ev));
    ++nProcessed;

    if (hookEvery && ++sinceHook >= hookEvery) {
        sinceHook = 0;
        postEventHook();
    }
    return true;
}

} // namespace sim
