/**
 * @file
 * EventQueue implementation.
 */

#include "event_queue.hh"

#include <memory>

namespace sim
{

Event::~Event()
{
    // An Event must be descheduled before destruction; the queue holds
    // only a raw pointer. Destruction while scheduled is a programming
    // error in release builds too, but we cannot safely touch the queue
    // here, so we just flag it.
    if (_scheduled)
        panic("event destroyed while scheduled");
}

EventQueue::~EventQueue()
{
    // Drop remaining entries, freeing owned lambda events. Squashed
    // entries are null (deschedule() wipes them so a destroyed Event
    // never leaves a dangling pointer here); live non-owned entries
    // must be unmarked so their owners can destroy them afterwards.
    for (Entry &e : heap) {
        if (!e.ev)
            continue;
        e.ev->_scheduled = false;
        if (e.owned)
            delete e.ev;
    }
    heap.clear();
}

void
EventQueue::push(Entry e)
{
    heap.push_back(e);
    std::push_heap(heap.begin(), heap.end(), EntryAfter{});
}

EventQueue::Entry
EventQueue::popTop()
{
    std::pop_heap(heap.begin(), heap.end(), EntryAfter{});
    Entry e = heap.back();
    heap.pop_back();
    return e;
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    if (ev->_scheduled)
        panic("event '%s' scheduled twice", ev->name().c_str());
    if (when < curTick)
        panic("event '%s' scheduled in the past (%llu < %llu)",
              ev->name().c_str(), (unsigned long long)when,
              (unsigned long long)curTick);

    ev->_scheduled = true;
    ev->_when = when;
    ev->_seq = nextSeq;
    push(Entry{when, nextSeq++, ev, false});
}

void
EventQueue::deschedule(Event *ev)
{
    if (!ev->_scheduled)
        panic("descheduling unscheduled event '%s'", ev->name().c_str());
    // Null the heap entry in place: once descheduled, the owner may
    // destroy the Event immediately, so the queue must not keep the
    // pointer. O(pending), but descheduling only happens at stop/idle
    // transitions. Nulling does not disturb the heap order (ordering
    // keys are when/seq only).
    for (Entry &e : heap) {
        if (e.ev == ev && e.seq == ev->_seq) {
            e.ev = nullptr;
            break;
        }
    }
    ev->_scheduled = false;
    ++squashedCount;
}

void
EventQueue::schedule(Tick when, std::function<void()> fn)
{
    if (when < curTick)
        panic("lambda event scheduled in the past (%llu < %llu)",
              (unsigned long long)when, (unsigned long long)curTick);
    auto ev = std::make_unique<LambdaEvent>(std::move(fn));
    ev->_scheduled = true;
    ev->_when = when;
    ev->_seq = nextSeq;
    push(Entry{when, nextSeq++, ev.release(), true});
}

Tick
EventQueue::nextEventTick() const
{
    Tick earliest = maxTick;
    for (const Entry &e : heap) {
        if (!squashed(e) && e.when < earliest)
            earliest = e.when;
    }
    return earliest;
}

std::uint64_t
EventQueue::runUntil(Tick limit)
{
    std::uint64_t processed = 0;
    while (!heap.empty()) {
        const Entry &top = heap.front();

        // Skip squashed (descheduled or rescheduled) entries.
        if (squashed(top)) {
            popTop();
            --squashedCount;
            continue;
        }

        if (top.when > limit)
            break;

        Entry e = popTop();
        curTick = e.when;
        e.ev->_scheduled = false;
        e.ev->process();
        if (e.owned)
            delete e.ev;
        ++processed;
        ++nProcessed;

        if (hookEvery && ++sinceHook >= hookEvery) {
            sinceHook = 0;
            postEventHook();
        }
    }
    if (curTick < limit && limit != maxTick)
        curTick = limit;
    return processed;
}

} // namespace sim
