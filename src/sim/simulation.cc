/**
 * @file
 * Simulation context implementation.
 */

#include "simulation.hh"

#include <functional>

#include "stats/registry.hh"
#include "trace/tracer.hh"

namespace sim
{

Simulation::Simulation(std::uint64_t seed)
    : rootRng(seed), seed(seed),
      statsReg(std::make_unique<stats::Registry>()),
      tracerPtr(std::make_unique<trace::Tracer>())
{
}

Simulation::~Simulation() = default;

Rng
Simulation::deriveRng(const std::string &component) const
{
    const std::uint64_t h = std::hash<std::string>{}(component);
    return Rng(seed * 0x9e3779b97f4a7c15ULL ^ h);
}

} // namespace sim
