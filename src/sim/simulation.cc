/**
 * @file
 * Simulation context implementation.
 */

#include "simulation.hh"

#include <functional>

#include "stats/registry.hh"
#include "trace/tracer.hh"

namespace sim
{

Simulation::Simulation(std::uint64_t seed)
    : rootRng(seed), seedVal(seed),
      statsReg(std::make_unique<stats::Registry>()),
      tracerPtr(std::make_unique<trace::Tracer>())
{
}

Simulation::~Simulation() = default;

Rng
Simulation::deriveRng(const std::string &component) const
{
    const std::uint64_t h = std::hash<std::string>{}(component);
    return Rng(seedVal * 0x9e3779b97f4a7c15ULL ^ h);
}

void
Simulation::registerObject(SimObject *obj)
{
    objs.push_back(obj);
}

EventQueue &
Simulation::addDomainQueue(std::string name)
{
    auxQueues.push_back(std::make_unique<EventQueue>());
    auxNames.push_back(std::move(name));
    return *auxQueues.back();
}

void
Simulation::unregisterObject(SimObject *obj)
{
    for (auto it = objs.begin(); it != objs.end(); ++it) {
        if (*it == obj) {
            objs.erase(it);
            return;
        }
    }
}

} // namespace sim
