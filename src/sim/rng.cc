/**
 * @file
 * Out-of-line Rng members.
 */

#include "rng.hh"

#include <cmath>

namespace sim
{

double
Rng::exponential(double mean)
{
    // Avoid log(0); uniform() is in [0, 1).
    double u = 1.0 - uniform();
    return -mean * std::log(u);
}

} // namespace sim
