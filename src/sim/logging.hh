/**
 * @file
 * Status and error reporting in the style of gem5's base/logging.hh.
 *
 * fatal() terminates the simulation for user errors (bad configuration),
 * panic() aborts for internal invariant violations, warn()/inform() print
 * status without stopping. All helpers accept printf-style formatting.
 */

#ifndef IDIO_SIM_LOGGING_HH
#define IDIO_SIM_LOGGING_HH

#include <cstdarg>
#include <string>

namespace sim
{

/** Verbosity levels for runtime log filtering. */
enum class LogLevel
{
    Panic = 0,
    Fatal,
    Warn,
    Inform,
    Debug,
};

/** Set the maximum level that is printed (default: Inform). */
void setLogLevel(LogLevel level);

/** Current maximum printed level. */
LogLevel logLevel();

/**
 * Print an informational message to stdout. Safe to call from anywhere;
 * never terminates the program.
 */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr; the simulation continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a debug message (suppressed unless LogLevel::Debug). */
void debug(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable *user* error (bad configuration or arguments)
 * and exit with status 1.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an internal simulator bug (a condition that must never happen
 * regardless of user input) and abort().
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** panic() unless the condition holds; msg is a plain string literal. */
#define SIM_ASSERT(cond, msg)                                            \
    do {                                                                 \
        if (!(cond)) {                                                   \
            ::sim::panic("assertion '%s' failed at %s:%d: %s",           \
                         #cond, __FILE__, __LINE__, msg);                 \
        }                                                                 \
    } while (0)

} // namespace sim

#endif // IDIO_SIM_LOGGING_HH
