/**
 * @file
 * Conservative-window sharded event-queue executor.
 *
 * The ShardedExecutor advances a set of timing domains — each one an
 * EventQueue — in lockstep windows. Within one window, every conflict
 * group (see ShardPlan) runs independently: groups never share model
 * state inside a window, so they may execute on separate host threads.
 * Cross-domain interactions go through post(), which stages the
 * callback in the *source* domain's outbox; at the window barrier the
 * staged posts are merged into their target queues in a deterministic
 * (tick, source-domain-id, per-source-sequence) order, on one thread.
 *
 * Determinism argument, in three pieces:
 *
 *  1. Within a group, domains are interleaved by firing the globally
 *     earliest event, ties broken by domain id — a pure function of
 *     queue contents, independent of host threads.
 *  2. Across groups, no shared state is touched inside a window (posts
 *     only append to the source's own outbox), so group execution
 *     order is immaterial; the conservative window guarantees a post
 *     can only target ticks after the barrier, which post() enforces
 *     with a hard panic.
 *  3. The barrier merge sorts staged posts by a key that is itself
 *     deterministic, and assigns target-queue sequence numbers in that
 *     sorted order on a single thread.
 *
 * Hence the result is bit-identical for any worker count, including
 * the degenerate one-group case where the executor is just a chunked
 * runUntil over the single queue — byte-for-byte today's behavior.
 */

#ifndef IDIO_SIM_SHARD_EXECUTOR_HH
#define IDIO_SIM_SHARD_EXECUTOR_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/shard/plan.hh"
#include "sim/types.hh"

namespace sim
{
namespace shard
{

class LinkChannelBase;

/**
 * Runs per-domain EventQueues under a conservative-window
 * synchronizer; see the file comment.
 */
class ShardedExecutor
{
  public:
    /**
     * @param jobs Host threads available for group execution. Groups
     *             beyond the first only run concurrently when both
     *             jobs > 1 and more than one conflict group exists.
     */
    explicit ShardedExecutor(unsigned jobs = 1);
    ShardedExecutor(const ShardedExecutor &) = delete;
    ShardedExecutor &operator=(const ShardedExecutor &) = delete;
    ~ShardedExecutor();

    /** Add a domain backed by a queue the executor owns. */
    DomainId addDomain(const std::string &name,
                       std::uint32_t group = 0);

    /**
     * Add a domain backed by an externally owned queue (e.g.\ the
     * Simulation's queue, so existing SimObjects keep their time
     * base). The queue must outlive the executor.
     */
    DomainId addExternalDomain(const std::string &name,
                               EventQueue &queue,
                               std::uint32_t group = 0);

    /** Reassign a domain's conflict group (before running). */
    void setGroup(DomainId d, std::uint32_t group);

    /** Set the conservative window width in ticks (>= 1). */
    void setWindow(Tick w);
    Tick window() const { return windowTicks; }

    unsigned jobs() const { return nJobs; }
    std::size_t domains() const { return doms.size(); }
    EventQueue &queue(DomainId d) { return *doms.at(d).queue; }
    const std::string &domainName(DomainId d) const
    {
        return doms.at(d).name;
    }

    /**
     * Stage a cross-domain event: @p fn runs in @p dst's queue at
     * @p when. Must not target a tick inside the current window — the
     * conservative contract — and panics if it does. Legal both from
     * inside a window (the usual case: an event in src posts to dst)
     * and outside (setup code priming domains before the first run).
     */
    template <typename F>
    void
    post(DomainId src, DomainId dst, Tick when, F &&fn)
    {
        if (src >= doms.size() || dst >= doms.size())
            fatal("shard post with unknown domain (src %u, dst %u)",
                  src, dst);
        if (inWindow && when <= curWindowEnd)
            panic("conservative window violated: domain '%s' posted "
                  "to '%s' at tick %llu inside window ending %llu",
                  doms[src].name.c_str(), doms[dst].name.c_str(),
                  (unsigned long long)when,
                  (unsigned long long)curWindowEnd);
        DomainRec &s = doms[src];
        s.outbox.push_back(StagedPost{when, s.postSeq++, dst,
                                      std::function<void()>(
                                          std::forward<F>(fn))});
    }

    /**
     * Register a link channel to be flushed at every window barrier
     * (and before the first window of each run). Registration order is
     * part of the deterministic barrier order; register channels in
     * model-construction order. The channel must outlive the executor.
     */
    void registerChannel(LinkChannelBase *ch);

    /**
     * Advance all domains to @p limit (inclusive, mirroring
     * EventQueue::runUntil). Every member queue's now() equals
     * @p limit on return unless limit == maxTick.
     *
     * @return total events processed across all domains.
     */
    std::uint64_t runUntil(Tick limit);

    /** @{ Execution statistics. */
    std::uint64_t windowsRun() const { return nWindows; }
    std::uint64_t crossPostsDelivered() const { return nCrossPosts; }
    /** @} */

  private:
    struct StagedPost
    {
        Tick when;
        std::uint64_t seq; // per-source staging order
        DomainId dst;
        std::function<void()> fn;
    };

    struct DomainRec
    {
        std::string name;
        std::uint32_t group = 0;
        EventQueue *queue = nullptr; // owned.get() or external
        std::unique_ptr<EventQueue> owned;
        std::vector<StagedPost> outbox;
        std::uint64_t postSeq = 0;
    };

    DomainId addRecord(const std::string &name, std::uint32_t group,
                       std::unique_ptr<EventQueue> ownedQueue,
                       EventQueue *external);

    /** Group membership table, ordered by group id then domain id. */
    std::vector<std::vector<DomainId>> groupTable() const;

    /** Run one group's members up to @p windowEnd; returns events. */
    std::uint64_t runGroup(const std::vector<DomainId> &members,
                           Tick windowEnd);

    /** Barrier step: deliver staged posts in deterministic order. */
    void mergeStagedPosts();

    /** Barrier step: flush registered channels in registration order. */
    void flushChannels();

    /**
     * @{ Persistent worker pool. Workers park on a generation counter
     * (spin briefly, then yield) between windows; per-window thread
     * spawn would dominate at sub-microsecond windows. The main thread
     * participates as one worker, so the pool holds nJobs - 1 threads,
     * started lazily at the first multi-group parallel window.
     */
    void startWorkers(unsigned count);
    void stopWorkers();
    void workerLoop();
    void claimGroups();

    std::vector<std::thread> workers;
    std::atomic<std::uint64_t> poolGen{0};
    std::atomic<bool> poolStop{false};
    const std::vector<std::vector<DomainId>> *poolGroups = nullptr;
    Tick poolWindowEnd = 0;
    std::atomic<std::size_t> poolNext{0};
    std::atomic<std::size_t> poolDone{0};
    std::vector<std::uint64_t> poolCounts;
    /** @} */

    unsigned nJobs;
    Tick windowTicks = oneUs;
    bool inWindow = false;
    Tick curWindowEnd = 0;
    std::vector<DomainRec> doms;
    std::vector<LinkChannelBase *> channels;
    std::uint64_t nWindows = 0;
    std::uint64_t nCrossPosts = 0;
};

} // namespace shard
} // namespace sim

#endif // IDIO_SIM_SHARD_EXECUTOR_HH
