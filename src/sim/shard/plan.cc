/**
 * @file
 * ShardPlan implementation: union-find fusion + window derivation.
 */

#include "plan.hh"

#include <algorithm>
#include <numeric>

#include "sim/logging.hh"

namespace sim
{
namespace shard
{

DomainId
ShardPlan::addDomain(std::string name)
{
    names.push_back(std::move(name));
    return static_cast<DomainId>(names.size() - 1);
}

void
ShardPlan::checkId(DomainId d, const char *what) const
{
    if (d >= names.size())
        fatal("ShardPlan: %s references unknown domain %u (have %zu)",
              what, d, names.size());
}

void
ShardPlan::syncEdge(DomainId a, DomainId b)
{
    checkId(a, "syncEdge");
    checkId(b, "syncEdge");
    syncs.push_back(Edge{a, b, 0});
}

void
ShardPlan::asyncEdge(DomainId a, DomainId b, Tick latency)
{
    checkId(a, "asyncEdge");
    checkId(b, "asyncEdge");
    if (latency == 0) {
        // A zero-latency "async" link is a direct coupling in disguise.
        syncs.push_back(Edge{a, b, 0});
        return;
    }
    asyncs.push_back(Edge{a, b, latency});
}

ShardPlan::Resolution
ShardPlan::resolve() const
{
    const std::size_t n = names.size();

    // Union-find over sync edges (path-halving find).
    std::vector<DomainId> parent(n);
    std::iota(parent.begin(), parent.end(), DomainId(0));
    auto find = [&parent](DomainId x) {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    };
    for (const Edge &e : syncs) {
        const DomainId ra = find(e.a);
        const DomainId rb = find(e.b);
        if (ra != rb)
            parent[std::max(ra, rb)] = std::min(ra, rb);
    }

    Resolution r;
    r.groupOf.assign(n, 0);

    // Dense group ids in order of each group's lowest-numbered member,
    // so the numbering is independent of edge declaration order.
    std::vector<std::uint32_t> groupOfRoot(n, ~std::uint32_t(0));
    for (DomainId d = 0; d < n; ++d) {
        const DomainId root = find(d);
        if (groupOfRoot[root] == ~std::uint32_t(0))
            groupOfRoot[root] = r.groups++;
        r.groupOf[d] = groupOfRoot[root];
    }

    // The conservative window is the tightest latency on any link that
    // actually crosses a group boundary; intra-group async edges don't
    // constrain the window (the group lockstep already orders them).
    for (const Edge &e : asyncs) {
        if (r.groupOf[e.a] != r.groupOf[e.b])
            r.window = std::min(r.window, e.latency);
    }
    return r;
}

} // namespace shard
} // namespace sim
