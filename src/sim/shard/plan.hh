/**
 * @file
 * Shard topology planning.
 *
 * A ShardPlan declares the simulated machine's timing domains (one per
 * core+MLC pair, NIC port, LLC, DRAM, ...) and the couplings between
 * them:
 *
 *  - a *sync* edge marks two domains that interact through direct
 *    function calls with no modelled latency (e.g.\ a core reading the
 *    shared LLC, the PMD polling NIC ring state). Such domains cannot
 *    run ahead of each other and must execute in one conflict group.
 *  - an *async* edge marks a link whose interactions always carry a
 *    modelled latency (e.g.\ a message-passing PCIe port). Domains
 *    connected only by async edges may run ahead of each other up to
 *    the minimum link latency — the conservative window.
 *
 * resolve() fuses sync-connected domains into conflict groups
 * (union-find) and derives the conservative window as the minimum
 * latency over async edges that cross group boundaries. The
 * ShardedExecutor then runs one worker per group; today's IDIO model
 * is fully sync-coupled through the shared MemoryHierarchy and so
 * resolves to a single group, but the plan is what lets future async
 * memory ports unlock real multi-group parallelism with no executor
 * changes.
 */

#ifndef IDIO_SIM_SHARD_PLAN_HH
#define IDIO_SIM_SHARD_PLAN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace sim
{
namespace shard
{

/** Identifier of one timing domain. */
using DomainId = std::uint32_t;

/** Sentinel meaning "no domain". */
constexpr DomainId invalidDomain = ~DomainId(0);

/**
 * Declarative domain topology; see the file comment.
 */
class ShardPlan
{
  public:
    /** Declare a domain; ids are dense and assigned in call order. */
    DomainId addDomain(std::string name);

    /** Zero-latency (direct-call) coupling: fuses a and b. */
    void syncEdge(DomainId a, DomainId b);

    /**
     * Latency-carrying link: a and b may run ahead of each other by
     * up to @p latency ticks. A zero latency degenerates to a sync
     * edge (the domains fuse).
     */
    void asyncEdge(DomainId a, DomainId b, Tick latency);

    /** Outcome of fusing the declared topology. */
    struct Resolution
    {
        /** Dense conflict-group id per domain (by first member). */
        std::vector<std::uint32_t> groupOf;

        /** Number of distinct conflict groups. */
        std::uint32_t groups = 0;

        /**
         * Conservative window: minimum latency over async edges that
         * cross group boundaries; maxTick when no such edge constrains
         * the window (callers then pick a barrier stride themselves).
         */
        Tick window = maxTick;
    };

    /** Fuse sync-connected domains and derive the window. */
    Resolution resolve() const;

    std::size_t domains() const { return names.size(); }
    const std::string &name(DomainId d) const { return names[d]; }

  private:
    struct Edge
    {
        DomainId a;
        DomainId b;
        Tick latency;
    };

    void checkId(DomainId d, const char *what) const;

    std::vector<std::string> names;
    std::vector<Edge> syncs;
    std::vector<Edge> asyncs;
};

} // namespace shard
} // namespace sim

#endif // IDIO_SIM_SHARD_PLAN_HH
