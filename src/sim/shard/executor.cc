/**
 * @file
 * ShardedExecutor implementation.
 */

#include "executor.hh"

#include <algorithm>

#include "sim/shard/link.hh"

namespace sim
{
namespace shard
{

ShardedExecutor::ShardedExecutor(unsigned jobs)
    : nJobs(jobs == 0 ? 1 : jobs)
{
}

ShardedExecutor::~ShardedExecutor()
{
    stopWorkers();
}

DomainId
ShardedExecutor::addRecord(const std::string &name,
                           std::uint32_t group,
                           std::unique_ptr<EventQueue> ownedQueue,
                           EventQueue *external)
{
    DomainRec rec;
    rec.name = name;
    rec.group = group;
    rec.owned = std::move(ownedQueue);
    rec.queue = rec.owned ? rec.owned.get() : external;
    doms.push_back(std::move(rec));
    return static_cast<DomainId>(doms.size() - 1);
}

DomainId
ShardedExecutor::addDomain(const std::string &name, std::uint32_t group)
{
    return addRecord(name, group, std::make_unique<EventQueue>(),
                     nullptr);
}

DomainId
ShardedExecutor::addExternalDomain(const std::string &name,
                                   EventQueue &queue,
                                   std::uint32_t group)
{
    return addRecord(name, group, nullptr, &queue);
}

void
ShardedExecutor::setGroup(DomainId d, std::uint32_t group)
{
    if (d >= doms.size())
        fatal("setGroup on unknown shard domain %u", d);
    doms[d].group = group;
}

void
ShardedExecutor::setWindow(Tick w)
{
    if (w == 0)
        fatal("shard window must be at least one tick");
    windowTicks = w;
}

std::vector<std::vector<DomainId>>
ShardedExecutor::groupTable() const
{
    std::uint32_t maxGroup = 0;
    for (const DomainRec &d : doms)
        maxGroup = std::max(maxGroup, d.group);
    std::vector<std::vector<DomainId>> table(maxGroup + 1);
    for (DomainId d = 0; d < doms.size(); ++d)
        table[doms[d].group].push_back(d);
    table.erase(std::remove_if(table.begin(), table.end(),
                               [](const std::vector<DomainId> &g) {
                                   return g.empty();
                               }),
                table.end());
    return table;
}

std::uint64_t
ShardedExecutor::runGroup(const std::vector<DomainId> &members,
                          Tick windowEnd)
{
    if (members.size() == 1)
        return doms[members.front()].queue->runUntil(windowEnd);

    // Fused domains interleave by always firing the globally earliest
    // event, ties broken by domain id — deterministic regardless of
    // which host thread runs the group. The winning domain drains its
    // whole tick in one fused pass (runSameTick) instead of paying a
    // scheduler round-trip per event: equivalent to the event-by-event
    // interleave because events fired mid-drain can only schedule into
    // their OWN queue (cross-domain traffic goes through post(), which
    // cannot target the current window), so no same-tick work can
    // appear in a lower-indexed member while the winner drains.
    std::uint64_t processed = 0;
    for (;;) {
        Tick best = maxTick;
        DomainId bestDom = invalidDomain;
        for (DomainId d : members) {
            const Tick t = doms[d].queue->peekNextTick();
            if (t < best) {
                best = t;
                bestDom = d;
            }
        }
        if (bestDom == invalidDomain || best > windowEnd)
            break;
        processed += doms[bestDom].queue->runSameTick(windowEnd);
    }
    // The drain loop only advances queues to their fired ticks; bring
    // every member's time base to the window end (no-op runOne).
    for (DomainId d : members)
        doms[d].queue->runOne(windowEnd);
    return processed;
}

void
ShardedExecutor::registerChannel(LinkChannelBase *ch)
{
    channels.push_back(ch);
}

void
ShardedExecutor::flushChannels()
{
    for (LinkChannelBase *ch : channels)
        ch->flush();
}

void
ShardedExecutor::startWorkers(unsigned count)
{
    workers.reserve(count);
    for (unsigned w = 0; w < count; ++w)
        workers.emplace_back([this] { workerLoop(); });
}

void
ShardedExecutor::stopWorkers()
{
    if (workers.empty())
        return;
    poolStop.store(true, std::memory_order_release);
    for (std::thread &t : workers)
        t.join();
    workers.clear();
}

void
ShardedExecutor::claimGroups()
{
    for (;;) {
        const std::size_t g =
            poolNext.fetch_add(1, std::memory_order_relaxed);
        if (g >= poolGroups->size())
            return;
        poolCounts[g] = runGroup((*poolGroups)[g], poolWindowEnd);
    }
}

void
ShardedExecutor::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        unsigned spins = 0;
        while (poolGen.load(std::memory_order_acquire) == seen) {
            if (poolStop.load(std::memory_order_acquire))
                return;
            if (++spins > 256) {
                std::this_thread::yield();
                spins = 0;
            }
        }
        seen = poolGen.load(std::memory_order_acquire);
        claimGroups();
        poolDone.fetch_add(1, std::memory_order_release);
    }
}

void
ShardedExecutor::mergeStagedPosts()
{
    struct Item
    {
        Tick when;
        DomainId src;
        std::uint64_t seq;
        StagedPost *post;
    };
    std::vector<Item> items;
    for (DomainId d = 0; d < doms.size(); ++d) {
        for (StagedPost &p : doms[d].outbox)
            items.push_back(Item{p.when, d, p.seq, &p});
    }
    if (items.empty())
        return;

    // (tick, source domain, per-source staging order): a total order
    // that does not depend on which thread ran which group.
    std::sort(items.begin(), items.end(),
              [](const Item &a, const Item &b) {
                  if (a.when != b.when)
                      return a.when < b.when;
                  if (a.src != b.src)
                      return a.src < b.src;
                  return a.seq < b.seq;
              });
    // Whole-window batching: a run of consecutive posts with the same
    // (tick, destination) becomes ONE scheduled event that replays the
    // callbacks in order, so a burst of cross-domain deliveries pays a
    // single scheduler insertion. Relative delivery order on the
    // destination queue is unchanged — the batch occupies the position
    // the first post of the run would have had, and the run was
    // already consecutive in the merged order.
    std::size_t i = 0;
    while (i < items.size()) {
        const Tick when = items[i].when;
        const DomainId dst = items[i].post->dst;
        std::size_t j = i + 1;
        while (j < items.size() && items[j].when == when &&
               items[j].post->dst == dst)
            ++j;
        if (j - i == 1) {
            doms[dst].queue->schedule(when, std::move(items[i].post->fn));
        } else {
            std::vector<std::function<void()>> batch;
            batch.reserve(j - i);
            for (std::size_t k = i; k < j; ++k)
                batch.push_back(std::move(items[k].post->fn));
            doms[dst].queue->schedule(
                when, [batch = std::move(batch)] {
                    for (const std::function<void()> &fn : batch)
                        fn();
                });
        }
        nCrossPosts += j - i;
        i = j;
    }
    for (DomainRec &d : doms)
        d.outbox.clear();
}

std::uint64_t
ShardedExecutor::runUntil(Tick limit)
{
    if (doms.empty())
        fatal("ShardedExecutor::runUntil with no domains");

    const std::vector<std::vector<DomainId>> groups = groupTable();

    // Deliver posts/messages staged by setup code before the first
    // window.
    flushChannels();
    mergeStagedPosts();

    std::uint64_t processed = 0;
    // Start from the furthest-advanced member; after a restore the
    // queues carry the checkpointed time base and we must not step
    // backwards.
    Tick base = 0;
    for (const DomainRec &d : doms)
        base = std::max(base, d.queue->now());

    while (base <= limit) {
        // Idle skip: nothing can fire before the earliest pending
        // event anywhere, so jump straight to it.
        Tick minNext = maxTick;
        for (const DomainRec &d : doms)
            minNext = std::min(minNext, d.queue->peekNextTick());
        if (minNext > limit)
            break;
        base = std::max(base, minNext);

        const Tick windowEnd =
            (windowTicks >= maxTick - base)
                ? limit
                : std::min(base + windowTicks - 1, limit);
        curWindowEnd = windowEnd;
        inWindow = true;

        if (groups.size() > 1 && nJobs > 1) {
            // Hand the window to the persistent pool: each group is
            // claimed off a shared index, and results land in
            // per-group slots so the sum (and everything else) is
            // independent of thread scheduling. The main thread
            // claims groups alongside the workers.
            if (workers.empty()) {
                startWorkers(static_cast<unsigned>(std::min<std::size_t>(
                    nJobs - 1, groups.size() - 1)));
            }
            poolGroups = &groups;
            poolWindowEnd = windowEnd;
            poolCounts.assign(groups.size(), 0);
            poolNext.store(0, std::memory_order_relaxed);
            poolDone.store(0, std::memory_order_relaxed);
            poolGen.fetch_add(1, std::memory_order_release);
            claimGroups();
            unsigned spins = 0;
            while (poolDone.load(std::memory_order_acquire) !=
                   workers.size()) {
                if (++spins > 256) {
                    std::this_thread::yield();
                    spins = 0;
                }
            }
            for (std::uint64_t c : poolCounts)
                processed += c;
        } else {
            for (const std::vector<DomainId> &g : groups)
                processed += runGroup(g, windowEnd);
        }

        inWindow = false;
        flushChannels();
        mergeStagedPosts();
        ++nWindows;

        if (windowEnd >= limit)
            break;
        base = windowEnd + 1;
    }

    // Mirror runUntil(limit) semantics on every member: time base ends
    // at the limit even if a domain went idle early.
    if (limit != maxTick) {
        for (DomainRec &d : doms)
            d.queue->runOne(limit);
    }
    return processed;
}

} // namespace shard
} // namespace sim
