/**
 * @file
 * Latency-carrying cross-domain message channels.
 *
 * A LinkChannel is one directed edge of a split ShardPlan: a modelled
 * interconnect link (PCIe port, mesh hop) between a source timing
 * domain and a destination domain that live on different event queues.
 * The source domain calls send() during a conservative window, which
 * only appends to a single-producer staging deque — no cross-thread
 * state is touched while domains run in parallel. At each window
 * barrier the ShardedExecutor flushes every registered channel (in
 * registration order, single-threaded): each staged message is
 * scheduled into the destination queue at sendTick + linkLatency and
 * moved to the in-flight deque. Because the executor window never
 * exceeds the minimum link latency, a delivery always lands in a later
 * window than its send — the barrier protocol guarantees the
 * destination has not advanced past the delivery tick.
 *
 * Delivery order is FIFO per channel: the fixed latency makes delivery
 * ticks ascend with send ticks, and same-tick deliveries inherit the
 * staging order through the queue's sequence numbers.
 *
 * In-flight messages checkpoint: serialize() records the delivery
 * schedule (tick + sequence) and the message payload; unserialize()
 * re-registers the deliveries against the destination queue through
 * the deferred-replay machinery, so a checkpoint taken with messages
 * on the wire restores bit-identically.
 *
 * The message type must provide
 *     static void serializeMsg(ckpt::Serializer &, const Msg &);
 *     static Msg unserializeMsg(ckpt::Deserializer &);
 */

#ifndef IDIO_SIM_SHARD_LINK_HH
#define IDIO_SIM_SHARD_LINK_HH

#include <deque>
#include <functional>
#include <string>
#include <utility>

#include "ckpt/serializer.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/sim_object.hh"
#include "sim/simulation.hh"
#include "sim/types.hh"

namespace sim
{
namespace shard
{

/**
 * Executor-facing channel interface: the barrier flush point.
 */
class LinkChannelBase
{
  public:
    virtual ~LinkChannelBase() = default;

    /**
     * Move every staged message onto the destination queue's schedule.
     * Called only at window barriers (single-threaded).
     */
    virtual void flush() = 0;

    /** Messages staged but not yet flushed. */
    virtual std::size_t staged() const = 0;

    /** Messages flushed but not yet delivered. */
    virtual std::size_t inFlight() const = 0;
};

/**
 * One directed latency edge carrying messages of type @p Msg.
 */
template <typename Msg>
class LinkChannel : public SimObject, public LinkChannelBase
{
  public:
    using Handler = std::function<void(const Msg &)>;

    /**
     * @param srcQueue The sender domain's queue (supplies send ticks).
     * @param dstQueue The receiver domain's queue (deliveries land
     *        here).
     * @param latency One-way link latency; must be at least the
     *        executor's conservative window (the plan derives the
     *        window as the minimum link latency, so it is).
     */
    LinkChannel(Simulation &simulation, const std::string &name,
                const EventQueue &srcQueue, EventQueue &dstQueue,
                Tick latency)
        : SimObject(simulation, name), srcQueue(srcQueue),
          dstQueue(dstQueue), linkLatency(latency)
    {
        SIM_ASSERT(latency > 0, "link channels need a nonzero latency");
    }

    /** Receiver-side message handler (set once, at construction). */
    void setHandler(Handler h) { handler = std::move(h); }

    Tick latency() const { return linkLatency; }

    /**
     * Stage a message for delivery at srcNow + latency. Called only
     * from the source domain (single producer).
     */
    void
    send(Msg m)
    {
        stagedMsgs.push_back(Staged{srcQueue.now(), std::move(m)});
    }

    void
    flush() override
    {
        for (Staged &st : stagedMsgs) {
            const Tick at = st.sendTick + linkLatency;
            const std::uint64_t seq =
                dstQueue.schedule(at, [this] { deliverFront(); });
            inflight.push_back(
                InFlight{at, seq, std::move(st.msg)});
        }
        stagedMsgs.clear();
    }

    std::size_t staged() const override { return stagedMsgs.size(); }
    std::size_t inFlight() const override { return inflight.size(); }

    void
    serialize(ckpt::Serializer &s) const override
    {
        SIM_ASSERT(stagedMsgs.empty(),
                   "checkpoint taken mid-window (staged link messages)");
        s.writeU64(inflight.size());
        for (const InFlight &f : inflight) {
            s.writeTick(f.when);
            s.writeU64(f.seq);
            Msg::serializeMsg(s, f.msg);
        }
    }

    void
    unserialize(ckpt::Deserializer &d) override
    {
        inflight.clear();
        const std::uint64_t n = d.readU64();
        for (std::uint64_t i = 0; i < n; ++i) {
            InFlight f;
            f.when = d.readTick();
            f.seq = d.readU64();
            f.msg = Msg::unserializeMsg(d);
            inflight.push_back(std::move(f));
            d.deferOneShot(f.seq, f.when, [this] { deliverFront(); },
                           &dstQueue);
        }
    }

  private:
    struct Staged
    {
        Tick sendTick;
        Msg msg;
    };

    struct InFlight
    {
        Tick when = 0;
        std::uint64_t seq = 0;
        Msg msg;
    };

    /**
     * Deliveries fire in the order they were flushed (fixed latency =>
     * ascending delivery ticks; ties keep staging order through the
     * queue sequence numbers), so the front is always the one due.
     */
    void
    deliverFront()
    {
        SIM_ASSERT(!inflight.empty(),
                   "link delivery fired with nothing in flight");
        const Msg m = std::move(inflight.front().msg);
        inflight.pop_front();
        handler(m);
    }

    const EventQueue &srcQueue;
    EventQueue &dstQueue;
    Tick linkLatency;
    Handler handler;
    std::deque<Staged> stagedMsgs;
    std::deque<InFlight> inflight;
};

} // namespace shard
} // namespace sim

#endif // IDIO_SIM_SHARD_LINK_HH
