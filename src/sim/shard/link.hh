/**
 * @file
 * Latency-carrying cross-domain message channels.
 *
 * A LinkChannel is one directed edge of a split ShardPlan: a modelled
 * interconnect link (PCIe port, mesh hop) between a source timing
 * domain and a destination domain that live on different event queues.
 * The source domain calls send() during a conservative window, which
 * only appends to a single-producer staging deque — no cross-thread
 * state is touched while domains run in parallel. At each window
 * barrier the ShardedExecutor flushes every registered channel (in
 * registration order, single-threaded): each staged message is
 * scheduled into the destination queue at sendTick + linkLatency and
 * moved to the in-flight deque. Because the executor window never
 * exceeds the minimum link latency, a delivery always lands in a later
 * window than its send — the barrier protocol guarantees the
 * destination has not advanced past the delivery tick.
 *
 * Delivery order is FIFO per channel: the fixed latency makes delivery
 * ticks ascend with send ticks, and same-tick deliveries inherit the
 * staging order through the queue's sequence numbers.
 *
 * Deliveries are batched per delivery tick: a run of staged messages
 * that land on the same destination tick is flushed as ONE scheduled
 * event that replays the whole run through the handler in staging
 * order, so a burst of same-window messages pays a single scheduler
 * insertion instead of one per message. The per-channel FIFO order is
 * unchanged — runs are consecutive in the staging deque (delivery
 * ticks ascend), and the batch fires at the position the run's first
 * message would have had.
 *
 * In-flight messages checkpoint: serialize() records the batch
 * delivery schedule (tick + sequence + run length) and the message
 * payloads; unserialize() re-registers one delivery per batch against
 * the destination queue through the deferred-replay machinery, so a
 * checkpoint taken with messages on the wire restores bit-identically.
 * Batch bookkeeping is validated eagerly on both save and restore
 * (the run lengths must sum to the payload count).
 *
 * The message type must provide
 *     static void serializeMsg(ckpt::Serializer &, const Msg &);
 *     static Msg unserializeMsg(ckpt::Deserializer &);
 */

#ifndef IDIO_SIM_SHARD_LINK_HH
#define IDIO_SIM_SHARD_LINK_HH

#include <deque>
#include <functional>
#include <string>
#include <utility>

#include "ckpt/serializer.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/sim_object.hh"
#include "sim/simulation.hh"
#include "sim/types.hh"

namespace sim
{
namespace shard
{

/**
 * Executor-facing channel interface: the barrier flush point.
 */
class LinkChannelBase
{
  public:
    virtual ~LinkChannelBase() = default;

    /**
     * Move every staged message onto the destination queue's schedule.
     * Called only at window barriers (single-threaded).
     */
    virtual void flush() = 0;

    /** Messages staged but not yet flushed. */
    virtual std::size_t staged() const = 0;

    /** Messages flushed but not yet delivered. */
    virtual std::size_t inFlight() const = 0;
};

/**
 * One directed latency edge carrying messages of type @p Msg.
 */
template <typename Msg>
class LinkChannel : public SimObject, public LinkChannelBase
{
  public:
    using Handler = std::function<void(const Msg &)>;

    /**
     * @param srcQueue The sender domain's queue (supplies send ticks).
     * @param dstQueue The receiver domain's queue (deliveries land
     *        here).
     * @param latency One-way link latency; must be at least the
     *        executor's conservative window (the plan derives the
     *        window as the minimum link latency, so it is).
     */
    LinkChannel(Simulation &simulation, const std::string &name,
                const EventQueue &srcQueue, EventQueue &dstQueue,
                Tick latency)
        : SimObject(simulation, name), srcQueue(srcQueue),
          dstQueue(dstQueue), linkLatency(latency)
    {
        SIM_ASSERT(latency > 0, "link channels need a nonzero latency");
    }

    /** Receiver-side message handler (set once, at construction). */
    void setHandler(Handler h) { handler = std::move(h); }

    Tick latency() const { return linkLatency; }

    /**
     * Stage a message for delivery at srcNow + latency. Called only
     * from the source domain (single producer).
     */
    void
    send(Msg m)
    {
        stagedMsgs.push_back(Staged{srcQueue.now(), std::move(m)});
    }

    void
    flush() override
    {
        std::size_t i = 0;
        while (i < stagedMsgs.size()) {
            const Tick at = stagedMsgs[i].sendTick + linkLatency;
            std::size_t j = i + 1;
            while (j < stagedMsgs.size() &&
                   stagedMsgs[j].sendTick + linkLatency == at)
                ++j;
            const std::uint64_t seq =
                dstQueue.schedule(at, [this] { deliverBatch(); });
            batches.push_back(Batch{
                at, seq, static_cast<std::uint64_t>(j - i)});
            for (std::size_t k = i; k < j; ++k)
                inflight.push_back(std::move(stagedMsgs[k].msg));
            i = j;
        }
        stagedMsgs.clear();
    }

    std::size_t staged() const override { return stagedMsgs.size(); }
    std::size_t inFlight() const override { return inflight.size(); }

    void
    serialize(ckpt::Serializer &s) const override
    {
        SIM_ASSERT(stagedMsgs.empty(),
                   "checkpoint taken mid-window (staged link messages)");
        std::uint64_t total = 0;
        for (const Batch &b : batches)
            total += b.count;
        SIM_ASSERT(total == inflight.size(),
                   "link batch bookkeeping out of sync with payloads");
        s.writeU64(batches.size());
        for (const Batch &b : batches) {
            s.writeTick(b.when);
            s.writeU64(b.seq);
            s.writeU64(b.count);
        }
        s.writeU64(inflight.size());
        for (const Msg &m : inflight)
            Msg::serializeMsg(s, m);
    }

    void
    unserialize(ckpt::Deserializer &d) override
    {
        batches.clear();
        inflight.clear();
        const std::uint64_t nBatches = d.readU64();
        std::uint64_t total = 0;
        for (std::uint64_t i = 0; i < nBatches; ++i) {
            Batch b;
            b.when = d.readTick();
            b.seq = d.readU64();
            b.count = d.readU64();
            if (b.count == 0)
                fatal("link channel '%s': checkpointed empty batch",
                      name().c_str());
            total += b.count;
            batches.push_back(b);
            d.deferOneShot(b.seq, b.when, [this] { deliverBatch(); },
                           &dstQueue);
        }
        const std::uint64_t nMsgs = d.readU64();
        if (total != nMsgs) {
            fatal("link channel '%s': checkpointed batch lengths sum "
                  "to %llu but %llu payloads follow",
                  name().c_str(),
                  static_cast<unsigned long long>(total),
                  static_cast<unsigned long long>(nMsgs));
        }
        for (std::uint64_t i = 0; i < nMsgs; ++i)
            inflight.push_back(Msg::unserializeMsg(d));
    }

  private:
    struct Staged
    {
        Tick sendTick;
        Msg msg;
    };

    /** One scheduled delivery covering @c count consecutive payloads. */
    struct Batch
    {
        Tick when = 0;
        std::uint64_t seq = 0;
        std::uint64_t count = 0;
    };

    /**
     * Deliveries fire in the order they were flushed (fixed latency =>
     * ascending delivery ticks; ties keep staging order through the
     * queue sequence numbers), so the front batch is always the one
     * due, covering the first @c count payloads in flight.
     */
    void
    deliverBatch()
    {
        SIM_ASSERT(!batches.empty(),
                   "link delivery fired with nothing in flight");
        const Batch b = batches.front();
        batches.pop_front();
        SIM_ASSERT(b.count <= inflight.size(),
                   "link batch longer than in-flight payloads");
        for (std::uint64_t i = 0; i < b.count; ++i) {
            const Msg m = std::move(inflight.front());
            inflight.pop_front();
            handler(m);
        }
    }

    const EventQueue &srcQueue;
    EventQueue &dstQueue;
    Tick linkLatency;
    Handler handler;
    std::deque<Staged> stagedMsgs;
    std::deque<Batch> batches;
    std::deque<Msg> inflight;
};

} // namespace shard
} // namespace sim

#endif // IDIO_SIM_SHARD_LINK_HH
