/**
 * @file
 * Top-level simulation context.
 *
 * A Simulation owns the EventQueue, the stats registry, and the global
 * RNG seed. Experiment harnesses create one Simulation, build the system
 * model inside it, and call run()/runFor().
 */

#ifndef IDIO_SIM_SIMULATION_HH
#define IDIO_SIM_SIMULATION_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "event_queue.hh"
#include "rng.hh"
#include "types.hh"

namespace stats
{
class Registry;
}

namespace trace
{
class Tracer;
}

namespace sim
{

class SimObject;

/**
 * Owns the event queue, stats registry and RNG for one simulated system.
 */
class Simulation
{
  public:
    explicit Simulation(std::uint64_t seed = 1);
    ~Simulation();

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    /** The central event queue / time base. */
    EventQueue &eventq() { return queue; }
    const EventQueue &eventq() const { return queue; }

    /** Current simulated time. */
    Tick now() const { return queue.now(); }

    /** Stats registry for all SimObjects in this simulation. */
    stats::Registry &statsRegistry() { return *statsReg; }

    /**
     * Packet-lifecycle event tracer for this simulation (disabled
     * until trace::Tracer::enable(); see src/trace/tracer.hh).
     */
    trace::Tracer &tracer() { return *tracerPtr; }
    const trace::Tracer &tracer() const { return *tracerPtr; }

    /** Root RNG; components derive their own via deriveRng(). */
    Rng &rng() { return rootRng; }

    /** Root seed this simulation was constructed with. */
    std::uint64_t seed() const { return seedVal; }

    /**
     * @{ SimObject registry (checkpoint support). Every SimObject
     * registers itself at construction and unregisters at destruction;
     * ckpt::save()/restore() walk the list in registration order,
     * which is deterministic because model construction is.
     */
    void registerObject(SimObject *obj);
    void unregisterObject(SimObject *obj);
    const std::vector<SimObject *> &objects() const { return objs; }
    /** @} */

    /**
     * Create an independent deterministic RNG for a component, derived
     * from the root seed and the component name hash.
     */
    Rng deriveRng(const std::string &component) const;

    /** Run until the event queue drains or @p limit is reached. */
    std::uint64_t runUntil(Tick limit) { return queue.runUntil(limit); }

    /** Run for @p delta more simulated time. */
    std::uint64_t
    runFor(Tick delta)
    {
        return queue.runUntil(queue.now() + delta);
    }

    /**
     * Total events processed across the main queue and every domain
     * queue. Host-independent (scheduling backend and thread count do
     * not change it), which makes it the work counter the perf bench
     * reports and CI gates on.
     */
    std::uint64_t
    totalProcessedEvents() const
    {
        std::uint64_t total = queue.processedEvents();
        for (const auto &q : auxQueues)
            total += q->processedEvents();
        return total;
    }

    /**
     * @{ Auxiliary per-domain event queues (sharded execution).
     *
     * A split ShardPlan places each timing domain on its own queue; the
     * harness creates them before constructing the domain's components
     * and the ShardedExecutor advances them under the conservative
     * window. Creation order is deterministic (model construction is),
     * which the checkpoint layer relies on. A simulation with no
     * auxiliary queues behaves exactly as before.
     */
    EventQueue &addDomainQueue(std::string name);
    std::size_t domainQueueCount() const { return auxQueues.size(); }
    EventQueue &domainQueue(std::size_t i) { return *auxQueues[i]; }
    const std::string &domainQueueName(std::size_t i) const
    {
        return auxNames[i];
    }
    /** @} */

    /**
     * @{ Construction-time queue binding. SimObjects capture the
     * current construction queue in their constructor; the harness
     * brackets each domain's component construction with
     * bindConstructionQueue(&domainQueue)/bindConstructionQueue(nullptr).
     * The default (nullptr) binds to the main queue, so existing
     * single-queue models are untouched.
     */
    void bindConstructionQueue(EventQueue *q) { buildQueue = q; }
    EventQueue &constructionQueue()
    {
        return buildQueue ? *buildQueue : queue;
    }
    /** @} */

  private:
    EventQueue queue;
    Rng rootRng;
    std::uint64_t seedVal;
    std::unique_ptr<stats::Registry> statsReg;
    std::unique_ptr<trace::Tracer> tracerPtr;
    std::vector<SimObject *> objs;
    std::vector<std::unique_ptr<EventQueue>> auxQueues;
    std::vector<std::string> auxNames;
    EventQueue *buildQueue = nullptr;
};

} // namespace sim

#endif // IDIO_SIM_SIMULATION_HH
