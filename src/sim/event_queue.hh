/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The EventQueue totally orders (tick, sequence, callback) entries.
 * Events scheduled for the same tick fire in insertion order, which
 * makes simulations fully deterministic. Components either schedule
 * one-shot callbacks or derive from Event for reschedulable events
 * (e.g.\ periodic control-plane sampling).
 *
 * Two scheduler backends produce the identical (tick, seq) firing
 * order:
 *
 *  - TimingWheel (default): a hierarchical timing wheel — three
 *    levels of 256 slots each (8 bits of tick per level, 2^24 ticks
 *    of horizon). Level-0 slots cover exactly one tick, so a slot IS
 *    the same-tick dispatch batch: schedule, deschedule and pop are
 *    O(1) for the short-horizon events that dominate the workload
 *    (per-cacheline DMA completions, 250–500 ns link hops, ring
 *    polls, 1 us telemetry). Events beyond the horizon spill to a
 *    binary-heap overflow level and are pulled back into the wheel
 *    when the wheel base crosses into their 2^24 block.
 *  - BinaryHeap: the reference std::push_heap/std::pop_heap
 *    implementation, kept for the differential scheduler tests and
 *    the nightly backend comparison (IDIO_EVENTQ=heap).
 *
 * Fused same-tick dispatch: runUntil()/runSameTick() drain all events
 * of the current tick in one pass (in seq order) without re-entering
 * the scheduler between them. runOne() still fires exactly one event
 * for the sharded executor's fine-grained interleave.
 *
 * One-shot callbacks are stored in pooled OneShotEvent nodes with
 * inline callable storage: scheduling one performs no heap allocation
 * once the pool is warm (callables larger than the inline buffer spill
 * to the heap, which no simulator callback does today). Wheel entries
 * are removed exactly on deschedule; descheduled ("squashed") overflow
 * heap entries are compacted lazily so deschedule churn cannot bloat
 * the heap.
 *
 * The queue also carries the hook the runtime invariant checker hangs
 * off: a callback invoked every N processed events, between events, so
 * whole-model sweeps observe only quiescent (post-transaction) state.
 */

#ifndef IDIO_SIM_EVENT_QUEUE_HH
#define IDIO_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "logging.hh"
#include "types.hh"

namespace sim
{

class EventQueue;

/**
 * Scheduler backend selector. Both backends fire events in the
 * identical (tick, seq) total order; TimingWheel is the production
 * default, BinaryHeap the reference kept for differential testing.
 * The process-wide default comes from the IDIO_EVENTQ environment
 * variable ("wheel" or "heap"; unset means wheel).
 */
enum class SchedulerBackend : std::uint8_t
{
    TimingWheel = 0,
    BinaryHeap = 1,
};

/**
 * A reschedulable event. The owner keeps the Event alive while it is
 * scheduled; the queue holds a non-owning pointer.
 */
class Event
{
  public:
    virtual ~Event();

    /** Invoked by the queue when simulated time reaches the event. */
    virtual void process() = 0;

    /** Human-readable name for tracing. */
    virtual std::string name() const { return "anon-event"; }

    /** True while the event sits in a queue. */
    bool scheduled() const { return _scheduled; }

    /** Tick the event is scheduled for (valid only while scheduled). */
    Tick when() const { return _when; }

    /**
     * Sequence number of the live schedule (valid only while
     * scheduled). Same-tick events fire in ascending sequence order;
     * checkpointing records it so restore can reproduce the order.
     */
    std::uint64_t seq() const { return _seq; }

  private:
    friend class EventQueue;
    friend struct EventQueueRestoreAccess;

    bool _scheduled = false;
    Tick _when = 0;
    std::uint64_t _seq = 0; // identifies the live queue entry
};

/**
 * Pooled one-shot event used by EventQueue::schedule(Tick, callable).
 *
 * The callable is type-erased into a fixed inline buffer (no heap
 * allocation, no std::function); a callable too large for the buffer
 * is boxed into a unique_ptr whose 8-byte handle fits inline. Nodes
 * are owned and recycled by the EventQueue's free list, so the steady
 * state of a simulation performs zero allocations per one-shot.
 *
 * Declared final so the queue's hot path can call process()
 * non-virtually for entries it owns.
 */
class OneShotEvent final : public Event
{
  public:
    OneShotEvent() = default;
    ~OneShotEvent() override { disarm(); }

    /** Invoke and consume the stored callable (single indirect call). */
    void
    process() override
    {
        auto fire = invokeFn;
        invokeFn = nullptr;
        destroyFn = nullptr;
        fire(storage);
    }

    std::string name() const override { return "one-shot-event"; }

    /**
     * Store @p fn; the previous callable must be disarmed already.
     * invokeFn CONSUMES the callable (invoke + destroy in one
     * type-erased call, so the fire path pays a single indirect
     * call); destroyFn destroys without invoking, for the disarm
     * path.
     */
    template <typename F>
    void
    arm(F &&fn)
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= storageBytes &&
                      alignof(Fn) <= alignof(std::max_align_t)) {
            ::new (static_cast<void *>(storage)) // lint: allow(no-naked-new)
                Fn(std::forward<F>(fn));
            invokeFn = [](void *p) {
                Fn *f = static_cast<Fn *>(p);
                (*f)();
                f->~Fn();
            };
            destroyFn = [](void *p) { static_cast<Fn *>(p)->~Fn(); };
        } else {
            // Oversized callable: box it; the unique_ptr fits inline.
            arm([boxed = std::make_unique<Fn>(std::forward<F>(fn))] {
                (*boxed)();
            });
        }
    }

    /** Destroy the stored callable (idempotent). */
    void
    disarm()
    {
        if (destroyFn) {
            destroyFn(storage);
            destroyFn = nullptr;
            invokeFn = nullptr;
        }
    }

  private:
    friend class EventQueue;

    static constexpr std::size_t storageBytes = 48;

    alignas(std::max_align_t) unsigned char storage[storageBytes];
    void (*invokeFn)(void *) = nullptr;
    void (*destroyFn)(void *) = nullptr;
    OneShotEvent *nextFree = nullptr; // intrusive pool free list
};

/**
 * The central event queue and time base for one Simulation.
 */
class EventQueue
{
  public:
    explicit EventQueue(SchedulerBackend b = defaultBackend());
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;
    ~EventQueue();

    /**
     * Process-wide default backend: IDIO_EVENTQ=heap selects the
     * reference binary heap, anything else (or unset) the wheel.
     * Read once; an unknown value is fatal.
     */
    static SchedulerBackend defaultBackend();

    /** Human-readable backend name ("wheel" / "heap"). */
    static const char *backendName(SchedulerBackend b);

    SchedulerBackend
    backend() const
    {
        return useHeap ? SchedulerBackend::BinaryHeap
                       : SchedulerBackend::TimingWheel;
    }

    /** Current simulated time. */
    Tick now() const { return curTick; }

    /**
     * Schedule a reschedulable event at an absolute tick.
     * The event must not already be scheduled.
     */
    void schedule(Event *ev, Tick when);

    /** Remove a scheduled event from the queue. */
    void deschedule(Event *ev);

    /** Schedule @p ev at now() + @p delta. */
    void scheduleIn(Event *ev, Tick delta) { schedule(ev, now() + delta); }

    /**
     * Schedule a one-shot callable at an absolute tick. The callable
     * is moved into a pooled OneShotEvent: no per-call allocation.
     *
     * @return the assigned sequence number; owners that need to
     *         checkpoint the pending callback record it (together with
     *         @p when) so restore can replay the exact firing order.
     */
    template <typename F>
    std::uint64_t
    schedule(Tick when, F &&fn)
    {
        if (when < curTick)
            panic("one-shot event scheduled in the past (%llu < %llu)",
                  (unsigned long long)when,
                  (unsigned long long)curTick);
        OneShotEvent *ev = acquireOneShot();
        ev->arm(std::forward<F>(fn));
        // One-shots are anonymous: nothing outside the queue holds a
        // pointer, so the Event-side bookkeeping (_scheduled, _when,
        // _seq) is skipped on this hot path. Identity lives in the
        // Entry alone.
        const std::uint64_t seq = nextSeq++;
        insert(Entry{when, seq, Entry::tag(ev, true)});
        return seq;
    }

    /** Schedule a one-shot callable at now() + delta. */
    template <typename F>
    std::uint64_t
    scheduleIn(Tick delta, F &&fn)
    {
        return schedule(now() + delta, std::forward<F>(fn));
    }

    /** Number of events currently pending. */
    std::size_t pending() const { return livePending; }

    /** True if no events remain. */
    bool empty() const { return livePending == 0; }

    /**
     * Tick of the earliest live (not descheduled) pending event, or
     * maxTick when the queue is empty. O(pending); meant for the
     * invariant checker and tests, not for hot paths.
     */
    Tick nextEventTick() const;

    /**
     * Hot-path variant of nextEventTick(): amortized O(1). The result
     * is cached across calls and recomputed lazily (level-occupancy
     * bitmaps make the recompute cheap); squashed overflow entries are
     * popped off the heap top, each pop amortized against the
     * deschedule that created it. Does not change pending() or fire
     * anything.
     */
    Tick
    peekNextTick()
    {
        if (!minValid) {
            cachedMin = computeMin();
            minValid = true;
        }
        return cachedMin;
    }

    /**
     * Run until the queue drains or simulated time would pass @p limit.
     * Events scheduled exactly at @p limit still fire. Same-tick events
     * are drained in one fused pass, in (tick, seq) order.
     *
     * @return number of events processed.
     */
    std::uint64_t
    runUntil(Tick limit)
    {
        std::uint64_t processed = 0;
        for (;;) {
            if (!minValid) {
                cachedMin = computeMin();
                minValid = true;
            }
            const Tick next = cachedMin;
            if (next > limit || livePending == 0)
                break;
            advanceTo(next);
            processed += fireCurTick();
        }
        if (curTick < limit && limit != maxTick)
            advanceTo(limit);
        return processed;
    }

    /**
     * Fire at most one event scheduled at or before @p limit.
     *
     * With no such event, behaves like an empty runUntil(limit):
     * advances the time base to @p limit (unless limit == maxTick) and
     * returns false. The sharded executor uses this to interleave
     * fused domains deterministically by (tick, domain-id).
     *
     * @return true iff an event fired.
     */
    bool
    runOne(Tick limit)
    {
        if (!minValid) {
            cachedMin = computeMin();
            minValid = true;
        }
        if (cachedMin > limit || livePending == 0) {
            if (curTick < limit && limit != maxTick)
                advanceTo(limit);
            return false;
        }
        advanceTo(cachedMin);
        cachedMin = maxTick;
        minValid = false;
        if (!useHeap) {
            const std::size_t idx = slotIndex(0, curTick);
            auto &slot = slots[0][idx];
            if (!slot.empty()) {
                // Slots are seq-sorted: the front is the next event.
                const Entry e = slot.front();
                slot.erase(slot.begin());
                if (slot.empty())
                    clearSlotMark(0, idx);
                fireEntry(e);
                if (livePending == 0)
                    minValid = true;
                return true;
            }
        }
        fireOneOverflow();
        return true;
    }

    /**
     * Batched variant of runOne(): fire EVERY event of the earliest
     * eligible tick (including chained same-tick schedules) in one
     * fused pass, equivalent to calling runOne(limit) until the tick
     * is exhausted. With no eligible event, behaves like the runOne()
     * no-op (advances the time base to @p limit unless maxTick).
     *
     * @return number of events processed (0 when nothing was eligible).
     */
    std::uint64_t
    runSameTick(Tick limit)
    {
        if (!minValid) {
            cachedMin = computeMin();
            minValid = true;
        }
        if (cachedMin > limit || livePending == 0) {
            if (curTick < limit && limit != maxTick)
                advanceTo(limit);
            return 0;
        }
        advanceTo(cachedMin);
        return fireCurTick();
    }

    /** Run until the queue drains completely. */
    std::uint64_t run() { return runUntil(maxTick); }

    /** Total events processed over the queue's lifetime. */
    std::uint64_t processedEvents() const { return nProcessed; }

    /**
     * Install a callback invoked after every @p everyNEvents processed
     * events (the invariant-checker hang point). The hook runs between
     * events: all model state is quiescent when it fires. Passing an
     * empty function or @p everyNEvents == 0 uninstalls the hook.
     */
    void
    setPostEventHook(std::uint64_t everyNEvents,
                     std::function<void()> hook)
    {
        if (everyNEvents == 0 || !hook) {
            hookEvery = 0;
            postEventHook = nullptr;
        } else {
            hookEvery = everyNEvents;
            postEventHook = std::move(hook);
        }
        sinceHook = 0;
    }

    /**
     * Exhaustive self-check of the scheduler's internal bookkeeping:
     * live counters match a full scan, occupancy bitmaps match slot
     * contents, every wheel entry sits in the slot its tick maps to,
     * and no live entry lies in the past. O(pending) — used by the
     * runtime invariant checker and the unit tests, never by model
     * code.
     */
    bool selfCheckConsistent() const;

  private:
    friend struct EventQueueTestAccess;
    friend struct EventQueueRestoreAccess;

    // Wheel geometry: three levels of 256 one-per-2^(8*level)-tick
    // slots cover 2^24 ticks (~16.8 ms at 1 ns ticks) of horizon;
    // later events spill to the overflow heap. The geometry constants
    // are recorded in checkpoints and validated eagerly on restore.
    static constexpr unsigned slotBits = 8;
    static constexpr std::size_t slotCount = std::size_t(1)
                                             << slotBits;
    static constexpr std::size_t slotMask = slotCount - 1;
    static constexpr unsigned numLevels = 3;
    static constexpr unsigned spanBits = slotBits * numLevels;
    static constexpr std::size_t wordsPerLevel = slotCount / 64;

    /**
     * A queue entry: 24 bytes. The owned flag (pooled OneShotEvent
     * recycled by the queue) is packed into bit 0 of the event
     * pointer — Event alignment guarantees it is free.
     */
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        std::uintptr_t evTag;

        static std::uintptr_t
        tag(const Event *ev, bool owned)
        {
            return reinterpret_cast<std::uintptr_t>(ev) |
                   std::uintptr_t(owned);
        }

        Event *
        ev() const
        {
            return reinterpret_cast<Event *>(evTag & ~std::uintptr_t(1));
        }

        bool owned() const { return (evTag & 1) != 0; }

        bool
        operator>(const Entry &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    /** Min-heap ordering for std::push_heap/std::pop_heap. */
    struct EntryAfter
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            return a > b;
        }
    };

    /**
     * True when an overflow-heap entry no longer refers to a live
     * schedule. deschedule() nulls the entry's pointer eagerly — the
     * owner may destroy the Event as soon as it is descheduled, so a
     * squashed entry must never be dereferenced. (Wheel entries are
     * erased exactly instead; only the drain batch uses tombstones,
     * for deschedule-during-dispatch.)
     */
    static bool squashed(const Entry &e) { return e.evTag == 0; }

    /**
     * Wheel level for @p when relative to the current base, or
     * numLevels for the overflow heap. The XOR trick compares block
     * prefixes: (a ^ b) >> k == 0 iff a >> k == b >> k.
     */
    unsigned
    levelFor(Tick when) const
    {
        const Tick x = when ^ wheelBase;
        if (!(x >> slotBits))
            return 0;
        if (!(x >> (2 * slotBits)))
            return 1;
        if (!(x >> spanBits))
            return 2;
        return numLevels;
    }

    static std::size_t
    slotIndex(unsigned level, Tick when)
    {
        return (when >> (slotBits * level)) & slotMask;
    }

    void
    markSlot(unsigned level, std::size_t idx)
    {
        occupied[level][idx >> 6] |= std::uint64_t(1) << (idx & 63);
    }

    void
    clearSlotMark(unsigned level, std::size_t idx)
    {
        occupied[level][idx >> 6] &=
            ~(std::uint64_t(1) << (idx & 63));
    }

    bool
    levelEmpty(unsigned level) const
    {
        const auto &w = occupied[level];
        return (w[0] | w[1] | w[2] | w[3]) == 0;
    }

    /** Place an entry into its wheel slot (never the heap). */
    void
    placeWheel(const Entry &e)
    {
        const unsigned l = levelFor(e.when);
        const std::size_t idx = slotIndex(l, e.when);
        slots[l][idx].push_back(e);
        markSlot(l, idx);
    }

    /** Route a new entry to the wheel or the overflow heap. */
    void
    insert(const Entry &e)
    {
        if (minValid && e.when < cachedMin)
            cachedMin = e.when;
        ++livePending;
        if (useHeap || ((e.when ^ wheelBase) >> spanBits))
            push(e);
        else
            placeWheel(e);
    }

    /**
     * Advance the time base to @p t. Precondition: no live event is
     * scheduled before @p t. Cascades the level-1/2 slots covering
     * @p t when the base crosses their block boundaries, and refills
     * the wheel from the overflow heap on 2^24 crossings.
     */
    void
    advanceTo(Tick t)
    {
        const Tick x = wheelBase ^ t;
        curTick = t;
        if (!(x >> slotBits)) { // same level-0 block (or no move)
            wheelBase = t;
            return;
        }
        advanceSlow(t);
    }

    void advanceSlow(Tick t);
    void cascade(unsigned level, std::size_t idx);
    void refillFromOverflow(Tick t);

    /**
     * Dispatch one entry: unmark, invoke, recycle (for pooled
     * one-shots the invoke is a single devirtualized indirect call
     * that consumes the callable), bump counters, maybe fire the
     * post-event hook. The entry is already out of its container.
     */
    void
    fireEntry(const Entry &e)
    {
        --livePending;
        if (e.owned()) {
            // The queue created this node, so its dynamic type is
            // exactly OneShotEvent (final): call non-virtually, then
            // push it straight onto the free list (process() consumed
            // the callable, so no disarm is needed).
            auto *os = static_cast<OneShotEvent *>(e.ev());
            os->OneShotEvent::process();
            os->nextFree = freeOneShots;
            freeOneShots = os;
        } else {
            Event *ev = e.ev();
            ev->_scheduled = false;
            ev->process();
        }
        ++nProcessed;
        if (hookEvery && ++sinceHook >= hookEvery) {
            sinceHook = 0;
            postEventHook();
        }
    }

    /**
     * Fire every event scheduled at curTick, in seq order. The
     * singleton case (one pending event at this tick — the dominant
     * cadence) stays inline; fan-out ticks take the batch-swap drain
     * in fireTickSlow().
     */
    std::uint64_t
    fireCurTick()
    {
        if (!useHeap) {
            const std::size_t idx = slotIndex(0, curTick);
            auto &slot = slots[0][idx];
            if (slot.size() == 1) {
                const Entry e = slot.front();
                slot.clear();
                clearSlotMark(0, idx);
                fireEntry(e);
                if (slot.empty()) { // no chained same-tick schedule
                    cachedMin = maxTick;
                    minValid = livePending == 0;
                    return 1;
                }
                return 1 + fireTickSlow();
            }
        }
        return fireTickSlow();
    }

    /** Batch drain of curTick: wheel slot swap + overflow/heap loop. */
    std::uint64_t fireTickSlow();
    /** runOne() fallback: fire the heap-top entry (at curTick). */
    void fireOneOverflow();

    Tick computeMin();

    void push(const Entry &e);
    Entry popTop();

    /** Pop squashed entries off the heap top (amortized O(1)). */
    void
    dropSquashedTop()
    {
        while (!heap.empty() && squashed(heap.front())) {
            popTop();
            --squashedCount;
        }
    }

    /**
     * Remove every squashed overflow entry and re-heapify. Called when
     * squashed entries outnumber live ones so deschedule churn keeps
     * the heap within 2x of its live population.
     */
    void compact();

    OneShotEvent *acquireOneShot();
    void releaseOneShot(OneShotEvent *ev);

    // --- Hierarchical timing wheel (TimingWheel backend) ---------
    // slots[l][i] holds the entries of level l, slot i; level-0 slots
    // cover exactly one tick. occupied[] mirrors slot non-emptiness
    // so the min recompute scans 4 words per level instead of 256
    // vectors. wheelBase is the tick the slot indexing is anchored
    // at; it trails curTick only transiently after a restore.
    std::array<std::array<std::vector<Entry>, slotCount>, numLevels>
        slots;
    std::array<std::array<std::uint64_t, wordsPerLevel>, numLevels>
        occupied{};
    Tick wheelBase = 0;
    std::size_t livePending = 0; // all live entries (wheel + heap)
    std::vector<Entry> cascadeScratch;

    // Fused same-tick dispatch: the active tick's slot is swapped
    // into drainBatch and fired in one pass; deschedule() tombstones
    // into the batch when an in-batch event is killed mid-dispatch.
    std::vector<Entry> drainBatch;
    std::size_t drainPos = 0;
    bool draining = false;

    // Cached earliest live tick: exact while minValid; recomputed
    // lazily from the occupancy bitmaps + heap top otherwise.
    Tick cachedMin = maxTick;
    bool minValid = true;

    // --- Overflow level / BinaryHeap backend ---------------------
    // A plain vector managed with the <algorithm> heap primitives
    // (rather than std::priority_queue) so nextEventTick() and the
    // invariant checker can inspect pending entries in place. The
    // BinaryHeap backend routes every event here.
    std::vector<Entry> heap;
    std::size_t squashedCount = 0;
    const bool useHeap;

    Tick curTick = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t nProcessed = 0;

    // One-shot node pool: `oneShotPool` owns every node ever created;
    // `freeOneShots` chains the currently idle ones.
    std::vector<std::unique_ptr<OneShotEvent>> oneShotPool;
    OneShotEvent *freeOneShots = nullptr;

    std::uint64_t hookEvery = 0;
    std::uint64_t sinceHook = 0;
    std::function<void()> postEventHook;
};

/**
 * Test-only access to EventQueue internals.
 *
 * Exists solely so the invariant-checker unit tests can corrupt the
 * time base and prove the checker catches it; production code must
 * never touch it.
 */
struct EventQueueTestAccess
{
    /** Force the current tick, bypassing all monotonicity checks. */
    static void
    setCurTick(EventQueue &eq, Tick t)
    {
        eq.curTick = t;
    }

    /**
     * Raw overflow-heap slots (live + squashed), for compaction
     * tests. Wheel entries never appear here: deschedule removes
     * them exactly.
     */
    static std::size_t
    heapSlots(const EventQueue &eq)
    {
        return eq.heap.size();
    }

    /** Live entries currently resident in the wheel (full scan). */
    static std::size_t
    wheelEntries(const EventQueue &eq)
    {
        std::size_t n = 0;
        for (const auto &level : eq.slots)
            for (const auto &slot : level)
                n += slot.size();
        for (std::size_t i = eq.drainPos; i < eq.drainBatch.size();
             ++i)
            if (eq.drainBatch[i].evTag)
                ++n;
        return n;
    }

    /** Nodes in the one-shot pool (idle + in flight). */
    static std::size_t
    oneShotPoolSize(const EventQueue &eq)
    {
        return eq.oneShotPool.size();
    }
};

/**
 * Checkpoint-layer access to EventQueue internals (used only by
 * src/ckpt). Restore must discard every event scheduled by fresh
 * construction/start() and rebuild the pending set from the
 * checkpoint, then force the private time base and counters to the
 * checkpointed values. Production model code must never touch this.
 */
struct EventQueueRestoreAccess
{
    /**
     * Drop every pending event and reset the sequence counter so the
     * deferred-schedule replay starts from zero. Owned one-shot nodes
     * go back to the pool; non-owned events are simply unmarked so
     * their owners can reschedule them.
     */
    static void clearPending(EventQueue &eq);

    /** @{ Private counters the checkpoint records/restores. */
    static std::uint64_t nextSeq(const EventQueue &eq)
    {
        return eq.nextSeq;
    }

    static std::uint64_t sinceHook(const EventQueue &eq)
    {
        return eq.sinceHook;
    }

    /**
     * Wheel base tick (== now() except transiently after restore).
     * Recorded in checkpoints for eager validation.
     */
    static Tick wheelBase(const EventQueue &eq)
    {
        return eq.wheelBase;
    }

    /** @{ Wheel geometry constants (checkpoint validation). */
    static std::uint32_t wheelLevels() { return EventQueue::numLevels; }
    static std::uint32_t wheelSlotBits() { return EventQueue::slotBits; }
    /** @} */

    /**
     * Force the time base. The wheel base is left untouched: replayed
     * entries were placed relative to it, and the first advance
     * cascades it forward to the restored tick.
     */
    static void setCurTick(EventQueue &eq, Tick t) { eq.curTick = t; }

    static void setNextSeq(EventQueue &eq, std::uint64_t s)
    {
        eq.nextSeq = s;
    }

    static void setProcessed(EventQueue &eq, std::uint64_t n)
    {
        eq.nProcessed = n;
    }

    static void setSinceHook(EventQueue &eq, std::uint64_t n)
    {
        eq.sinceHook = n;
    }
    /** @} */
};

} // namespace sim

#endif // IDIO_SIM_EVENT_QUEUE_HH
