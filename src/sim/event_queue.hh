/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The EventQueue keeps a priority queue of (tick, sequence, callback)
 * entries. Events scheduled for the same tick fire in insertion order,
 * which makes simulations fully deterministic. Components either
 * schedule one-shot std::function callbacks or derive from Event for
 * reschedulable events (e.g.\ periodic control-plane sampling).
 *
 * The queue also carries the hook the runtime invariant checker hangs
 * off: a callback invoked every N processed events, between events, so
 * whole-model sweeps observe only quiescent (post-transaction) state.
 */

#ifndef IDIO_SIM_EVENT_QUEUE_HH
#define IDIO_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "logging.hh"
#include "types.hh"

namespace sim
{

class EventQueue;

/**
 * A reschedulable event. The owner keeps the Event alive while it is
 * scheduled; the queue holds a non-owning pointer.
 */
class Event
{
  public:
    virtual ~Event();

    /** Invoked by the queue when simulated time reaches the event. */
    virtual void process() = 0;

    /** Human-readable name for tracing. */
    virtual std::string name() const { return "anon-event"; }

    /** True while the event sits in a queue. */
    bool scheduled() const { return _scheduled; }

    /** Tick the event is scheduled for (valid only while scheduled). */
    Tick when() const { return _when; }

  private:
    friend class EventQueue;

    bool _scheduled = false;
    Tick _when = 0;
    std::uint64_t _seq = 0; // identifies the live heap entry
};

/**
 * Wraps a std::function as a one-shot heap event; used by
 * EventQueue::schedule(Tick, callback).
 */
class LambdaEvent : public Event
{
  public:
    explicit LambdaEvent(std::function<void()> fn) : fn(std::move(fn)) {}

    void process() override { fn(); }
    std::string name() const override { return "lambda-event"; }

  private:
    std::function<void()> fn;
};

/**
 * The central event queue and time base for one Simulation.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;
    ~EventQueue();

    /** Current simulated time. */
    Tick now() const { return curTick; }

    /**
     * Schedule a reschedulable event at an absolute tick.
     * The event must not already be scheduled.
     */
    void schedule(Event *ev, Tick when);

    /** Remove a scheduled event from the queue. */
    void deschedule(Event *ev);

    /** Schedule @p ev at now() + @p delta. */
    void scheduleIn(Event *ev, Tick delta) { schedule(ev, now() + delta); }

    /** Schedule a one-shot callback at an absolute tick. */
    void schedule(Tick when, std::function<void()> fn);

    /** Schedule a one-shot callback at now() + delta. */
    void
    scheduleIn(Tick delta, std::function<void()> fn)
    {
        schedule(now() + delta, std::move(fn));
    }

    /** Number of events currently pending. */
    std::size_t pending() const { return heap.size() - squashedCount; }

    /** True if no events remain. */
    bool empty() const { return pending() == 0; }

    /**
     * Tick of the earliest live (not descheduled) pending event, or
     * maxTick when the queue is empty. O(pending); meant for the
     * invariant checker and tests, not for hot paths.
     */
    Tick nextEventTick() const;

    /**
     * Run until the queue drains or simulated time would pass @p limit.
     * Events scheduled exactly at @p limit still fire.
     *
     * @return number of events processed.
     */
    std::uint64_t runUntil(Tick limit);

    /** Run until the queue drains completely. */
    std::uint64_t run() { return runUntil(maxTick); }

    /** Total events processed over the queue's lifetime. */
    std::uint64_t processedEvents() const { return nProcessed; }

    /**
     * Install a callback invoked after every @p everyNEvents processed
     * events (the invariant-checker hang point). The hook runs between
     * events: all model state is quiescent when it fires. Passing an
     * empty function or @p everyNEvents == 0 uninstalls the hook.
     */
    void
    setPostEventHook(std::uint64_t everyNEvents,
                     std::function<void()> hook)
    {
        if (everyNEvents == 0 || !hook) {
            hookEvery = 0;
            postEventHook = nullptr;
        } else {
            hookEvery = everyNEvents;
            postEventHook = std::move(hook);
        }
        sinceHook = 0;
    }

  private:
    friend struct EventQueueTestAccess;

    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Event *ev;
        bool owned; // heap-allocated LambdaEvent we must delete

        bool
        operator>(const Entry &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    /** Min-heap ordering for std::push_heap/std::pop_heap. */
    struct EntryAfter
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            return a > b;
        }
    };

    /**
     * True when a heap entry no longer refers to a live schedule.
     * deschedule() nulls the entry's pointer eagerly — the owner may
     * destroy the Event as soon as it is descheduled, so a squashed
     * entry must never be dereferenced.
     */
    static bool squashed(const Entry &e) { return e.ev == nullptr; }

    void push(Entry e);
    Entry popTop();

    // Kept as a plain vector managed with the <algorithm> heap
    // primitives (rather than std::priority_queue) so nextEventTick()
    // and the invariant checker can inspect pending entries in place.
    std::vector<Entry> heap;
    Tick curTick = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t nProcessed = 0;
    std::size_t squashedCount = 0;

    std::uint64_t hookEvery = 0;
    std::uint64_t sinceHook = 0;
    std::function<void()> postEventHook;
};

/**
 * Test-only access to EventQueue internals.
 *
 * Exists solely so the invariant-checker unit tests can corrupt the
 * time base and prove the checker catches it; production code must
 * never touch it.
 */
struct EventQueueTestAccess
{
    /** Force the current tick, bypassing all monotonicity checks. */
    static void
    setCurTick(EventQueue &eq, Tick t)
    {
        eq.curTick = t;
    }
};

} // namespace sim

#endif // IDIO_SIM_EVENT_QUEUE_HH
