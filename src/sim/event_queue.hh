/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The EventQueue keeps a priority queue of (tick, sequence, callback)
 * entries. Events scheduled for the same tick fire in insertion order,
 * which makes simulations fully deterministic. Components either
 * schedule one-shot callbacks or derive from Event for reschedulable
 * events (e.g.\ periodic control-plane sampling).
 *
 * One-shot callbacks are stored in pooled OneShotEvent nodes with
 * inline callable storage: scheduling one performs no heap allocation
 * once the pool is warm (callables larger than the inline buffer spill
 * to the heap, which no simulator callback does today). Descheduled
 * ("squashed") heap entries are compacted lazily so deschedule churn
 * cannot bloat the heap.
 *
 * The queue also carries the hook the runtime invariant checker hangs
 * off: a callback invoked every N processed events, between events, so
 * whole-model sweeps observe only quiescent (post-transaction) state.
 */

#ifndef IDIO_SIM_EVENT_QUEUE_HH
#define IDIO_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "logging.hh"
#include "types.hh"

namespace sim
{

class EventQueue;

/**
 * A reschedulable event. The owner keeps the Event alive while it is
 * scheduled; the queue holds a non-owning pointer.
 */
class Event
{
  public:
    virtual ~Event();

    /** Invoked by the queue when simulated time reaches the event. */
    virtual void process() = 0;

    /** Human-readable name for tracing. */
    virtual std::string name() const { return "anon-event"; }

    /** True while the event sits in a queue. */
    bool scheduled() const { return _scheduled; }

    /** Tick the event is scheduled for (valid only while scheduled). */
    Tick when() const { return _when; }

    /**
     * Sequence number of the live heap entry (valid only while
     * scheduled). Same-tick events fire in ascending sequence order;
     * checkpointing records it so restore can reproduce the order.
     */
    std::uint64_t seq() const { return _seq; }

  private:
    friend class EventQueue;
    friend struct EventQueueRestoreAccess;

    bool _scheduled = false;
    Tick _when = 0;
    std::uint64_t _seq = 0; // identifies the live heap entry
};

/**
 * Pooled one-shot event used by EventQueue::schedule(Tick, callable).
 *
 * The callable is type-erased into a fixed inline buffer (no heap
 * allocation, no std::function); a callable too large for the buffer
 * is boxed into a unique_ptr whose 8-byte handle fits inline. Nodes
 * are owned and recycled by the EventQueue's free list, so the steady
 * state of a simulation performs zero allocations per one-shot.
 */
class OneShotEvent : public Event
{
  public:
    OneShotEvent() = default;
    ~OneShotEvent() override { disarm(); }

    void process() override { invokeFn(storage); }
    std::string name() const override { return "one-shot-event"; }

    /** Store @p fn; the previous callable must be disarmed already. */
    template <typename F>
    void
    arm(F &&fn)
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= storageBytes &&
                      alignof(Fn) <= alignof(std::max_align_t)) {
            ::new (static_cast<void *>(storage)) // lint: allow(no-naked-new)
                Fn(std::forward<F>(fn));
            invokeFn = [](void *p) { (*static_cast<Fn *>(p))(); };
            destroyFn = [](void *p) { static_cast<Fn *>(p)->~Fn(); };
        } else {
            // Oversized callable: box it; the unique_ptr fits inline.
            arm([boxed = std::make_unique<Fn>(std::forward<F>(fn))] {
                (*boxed)();
            });
        }
    }

    /** Destroy the stored callable (idempotent). */
    void
    disarm()
    {
        if (destroyFn) {
            destroyFn(storage);
            destroyFn = nullptr;
            invokeFn = nullptr;
        }
    }

  private:
    friend class EventQueue;

    static constexpr std::size_t storageBytes = 48;

    alignas(std::max_align_t) unsigned char storage[storageBytes];
    void (*invokeFn)(void *) = nullptr;
    void (*destroyFn)(void *) = nullptr;
    OneShotEvent *nextFree = nullptr; // intrusive pool free list
};

/**
 * The central event queue and time base for one Simulation.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;
    ~EventQueue();

    /** Current simulated time. */
    Tick now() const { return curTick; }

    /**
     * Schedule a reschedulable event at an absolute tick.
     * The event must not already be scheduled.
     */
    void schedule(Event *ev, Tick when);

    /** Remove a scheduled event from the queue. */
    void deschedule(Event *ev);

    /** Schedule @p ev at now() + @p delta. */
    void scheduleIn(Event *ev, Tick delta) { schedule(ev, now() + delta); }

    /**
     * Schedule a one-shot callable at an absolute tick. The callable
     * is moved into a pooled OneShotEvent: no per-call allocation.
     *
     * @return the assigned sequence number; owners that need to
     *         checkpoint the pending callback record it (together with
     *         @p when) so restore can replay the exact firing order.
     */
    template <typename F>
    std::uint64_t
    schedule(Tick when, F &&fn)
    {
        if (when < curTick)
            panic("one-shot event scheduled in the past (%llu < %llu)",
                  (unsigned long long)when,
                  (unsigned long long)curTick);
        OneShotEvent *ev = acquireOneShot();
        ev->arm(std::forward<F>(fn));
        ev->_scheduled = true;
        ev->_when = when;
        ev->_seq = nextSeq;
        push(Entry{when, nextSeq++, ev, true});
        return ev->_seq;
    }

    /** Schedule a one-shot callable at now() + delta. */
    template <typename F>
    std::uint64_t
    scheduleIn(Tick delta, F &&fn)
    {
        return schedule(now() + delta, std::forward<F>(fn));
    }

    /** Number of events currently pending. */
    std::size_t pending() const { return heap.size() - squashedCount; }

    /** True if no events remain. */
    bool empty() const { return pending() == 0; }

    /**
     * Tick of the earliest live (not descheduled) pending event, or
     * maxTick when the queue is empty. O(pending); meant for the
     * invariant checker and tests, not for hot paths.
     */
    Tick nextEventTick() const;

    /**
     * Hot-path variant of nextEventTick(): amortized O(1). Pops
     * squashed entries off the heap top (each pop is amortized
     * against the deschedule that created it), then reads the live
     * minimum in place. Does not change pending() or fire anything.
     */
    Tick
    peekNextTick()
    {
        dropSquashedTop();
        return heap.empty() ? maxTick : heap.front().when;
    }

    /**
     * Run until the queue drains or simulated time would pass @p limit.
     * Events scheduled exactly at @p limit still fire.
     *
     * @return number of events processed.
     */
    std::uint64_t runUntil(Tick limit);

    /**
     * Fire at most one event scheduled at or before @p limit.
     *
     * With no such event, behaves like an empty runUntil(limit):
     * advances the time base to @p limit (unless limit == maxTick) and
     * returns false. The sharded executor uses this to interleave
     * fused domains deterministically by (tick, domain-id).
     *
     * @return true iff an event fired.
     */
    bool runOne(Tick limit);

    /** Run until the queue drains completely. */
    std::uint64_t run() { return runUntil(maxTick); }

    /** Total events processed over the queue's lifetime. */
    std::uint64_t processedEvents() const { return nProcessed; }

    /**
     * Install a callback invoked after every @p everyNEvents processed
     * events (the invariant-checker hang point). The hook runs between
     * events: all model state is quiescent when it fires. Passing an
     * empty function or @p everyNEvents == 0 uninstalls the hook.
     */
    void
    setPostEventHook(std::uint64_t everyNEvents,
                     std::function<void()> hook)
    {
        if (everyNEvents == 0 || !hook) {
            hookEvery = 0;
            postEventHook = nullptr;
        } else {
            hookEvery = everyNEvents;
            postEventHook = std::move(hook);
        }
        sinceHook = 0;
    }

  private:
    friend struct EventQueueTestAccess;
    friend struct EventQueueRestoreAccess;

    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Event *ev;
        bool owned; // pooled OneShotEvent recycled by the queue

        bool
        operator>(const Entry &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    /** Min-heap ordering for std::push_heap/std::pop_heap. */
    struct EntryAfter
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            return a > b;
        }
    };

    /**
     * True when a heap entry no longer refers to a live schedule.
     * deschedule() nulls the entry's pointer eagerly — the owner may
     * destroy the Event as soon as it is descheduled, so a squashed
     * entry must never be dereferenced.
     */
    static bool squashed(const Entry &e) { return e.ev == nullptr; }

    void push(Entry e);
    Entry popTop();

    /** Pop squashed entries off the heap top (amortized O(1)). */
    void
    dropSquashedTop()
    {
        while (!heap.empty() && squashed(heap.front())) {
            popTop();
            --squashedCount;
        }
    }

    /**
     * Remove every squashed entry and re-heapify. Called when squashed
     * entries outnumber live ones so deschedule churn keeps the heap
     * within 2x of pending() instead of growing without bound.
     */
    void compact();

    OneShotEvent *acquireOneShot();
    void releaseOneShot(OneShotEvent *ev);

    // Kept as a plain vector managed with the <algorithm> heap
    // primitives (rather than std::priority_queue) so nextEventTick()
    // and the invariant checker can inspect pending entries in place.
    std::vector<Entry> heap;
    Tick curTick = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t nProcessed = 0;
    std::size_t squashedCount = 0;

    // One-shot node pool: `oneShotPool` owns every node ever created;
    // `freeOneShots` chains the currently idle ones.
    std::vector<std::unique_ptr<OneShotEvent>> oneShotPool;
    OneShotEvent *freeOneShots = nullptr;

    std::uint64_t hookEvery = 0;
    std::uint64_t sinceHook = 0;
    std::function<void()> postEventHook;
};

/**
 * Test-only access to EventQueue internals.
 *
 * Exists solely so the invariant-checker unit tests can corrupt the
 * time base and prove the checker catches it; production code must
 * never touch it.
 */
struct EventQueueTestAccess
{
    /** Force the current tick, bypassing all monotonicity checks. */
    static void
    setCurTick(EventQueue &eq, Tick t)
    {
        eq.curTick = t;
    }

    /** Raw heap slots (live + squashed), for compaction tests. */
    static std::size_t
    heapSlots(const EventQueue &eq)
    {
        return eq.heap.size();
    }

    /** Nodes in the one-shot pool (idle + in flight). */
    static std::size_t
    oneShotPoolSize(const EventQueue &eq)
    {
        return eq.oneShotPool.size();
    }
};

/**
 * Checkpoint-layer access to EventQueue internals (used only by
 * src/ckpt). Restore must discard every event scheduled by fresh
 * construction/start() and rebuild the pending set from the
 * checkpoint, then force the private time base and counters to the
 * checkpointed values. Production model code must never touch this.
 */
struct EventQueueRestoreAccess
{
    /**
     * Drop every pending event and reset the sequence counter so the
     * deferred-schedule replay starts from zero. Owned one-shot nodes
     * go back to the pool; non-owned events are simply unmarked so
     * their owners can reschedule them.
     */
    static void
    clearPending(EventQueue &eq)
    {
        for (EventQueue::Entry &e : eq.heap) {
            if (e.ev) {
                e.ev->_scheduled = false;
                if (e.owned) {
                    eq.releaseOneShot(
                        static_cast<OneShotEvent *>(e.ev));
                }
            }
        }
        eq.heap.clear();
        eq.squashedCount = 0;
        eq.nextSeq = 0;
    }

    /** @{ Private counters the checkpoint records/restores. */
    static std::uint64_t nextSeq(const EventQueue &eq)
    {
        return eq.nextSeq;
    }

    static std::uint64_t sinceHook(const EventQueue &eq)
    {
        return eq.sinceHook;
    }

    static void setCurTick(EventQueue &eq, Tick t) { eq.curTick = t; }

    static void setNextSeq(EventQueue &eq, std::uint64_t s)
    {
        eq.nextSeq = s;
    }

    static void setProcessed(EventQueue &eq, std::uint64_t n)
    {
        eq.nProcessed = n;
    }

    static void setSinceHook(EventQueue &eq, std::uint64_t n)
    {
        eq.sinceHook = n;
    }
    /** @} */
};

} // namespace sim

#endif // IDIO_SIM_EVENT_QUEUE_HH
