/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The EventQueue keeps a priority queue of (tick, sequence, callback)
 * entries. Events scheduled for the same tick fire in insertion order,
 * which makes simulations fully deterministic. Components either
 * schedule one-shot std::function callbacks or derive from Event for
 * reschedulable events (e.g.\ periodic control-plane sampling).
 */

#ifndef IDIO_SIM_EVENT_QUEUE_HH
#define IDIO_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "logging.hh"
#include "types.hh"

namespace sim
{

class EventQueue;

/**
 * A reschedulable event. The owner keeps the Event alive while it is
 * scheduled; the queue holds a non-owning pointer.
 */
class Event
{
  public:
    virtual ~Event();

    /** Invoked by the queue when simulated time reaches the event. */
    virtual void process() = 0;

    /** Human-readable name for tracing. */
    virtual std::string name() const { return "anon-event"; }

    /** True while the event sits in a queue. */
    bool scheduled() const { return _scheduled; }

    /** Tick the event is scheduled for (valid only while scheduled). */
    Tick when() const { return _when; }

  private:
    friend class EventQueue;

    bool _scheduled = false;
    Tick _when = 0;
    std::uint64_t _seq = 0; // identifies the live heap entry
};

/**
 * Wraps a std::function as a one-shot heap event; used by
 * EventQueue::schedule(Tick, callback).
 */
class LambdaEvent : public Event
{
  public:
    explicit LambdaEvent(std::function<void()> fn) : fn(std::move(fn)) {}

    void process() override { fn(); }
    std::string name() const override { return "lambda-event"; }

  private:
    std::function<void()> fn;
};

/**
 * The central event queue and time base for one Simulation.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;
    ~EventQueue();

    /** Current simulated time. */
    Tick now() const { return curTick; }

    /**
     * Schedule a reschedulable event at an absolute tick.
     * The event must not already be scheduled.
     */
    void schedule(Event *ev, Tick when);

    /** Remove a scheduled event from the queue. */
    void deschedule(Event *ev);

    /** Schedule @p ev at now() + @p delta. */
    void scheduleIn(Event *ev, Tick delta) { schedule(ev, now() + delta); }

    /** Schedule a one-shot callback at an absolute tick. */
    void schedule(Tick when, std::function<void()> fn);

    /** Schedule a one-shot callback at now() + delta. */
    void
    scheduleIn(Tick delta, std::function<void()> fn)
    {
        schedule(now() + delta, std::move(fn));
    }

    /** Number of events currently pending. */
    std::size_t pending() const { return heap.size() - squashedCount; }

    /** True if no events remain. */
    bool empty() const { return pending() == 0; }

    /**
     * Run until the queue drains or simulated time would pass @p limit.
     * Events scheduled exactly at @p limit still fire.
     *
     * @return number of events processed.
     */
    std::uint64_t runUntil(Tick limit);

    /** Run until the queue drains completely. */
    std::uint64_t run() { return runUntil(maxTick); }

    /** Total events processed over the queue's lifetime. */
    std::uint64_t processedEvents() const { return nProcessed; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Event *ev;
        bool owned; // heap-allocated LambdaEvent we must delete

        bool
        operator>(const Entry &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    using Heap = std::priority_queue<Entry, std::vector<Entry>,
                                     std::greater<Entry>>;

    Heap heap;
    Tick curTick = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t nProcessed = 0;
    std::size_t squashedCount = 0;
};

} // namespace sim

#endif // IDIO_SIM_EVENT_QUEUE_HH
