/**
 * @file
 * InvariantChecker implementation.
 */

#include "invariant_checker.hh"

#include <memory>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace sim
{

InvariantChecker::InvariantChecker(Simulation &simulation,
                                   const std::string &name,
                                   std::uint64_t periodEvents)
    : SimObject(simulation, name),
      statGroup(simulation.statsRegistry(), name),
      sweeps(statGroup, "sweeps", "completed invariant sweeps"),
      evaluations(statGroup, "evaluations",
                  "individual invariant evaluations"),
      violations(statGroup, "violations",
                 "invariant violations detected"),
      period(periodEvents)
{
}

InvariantChecker::~InvariantChecker()
{
    detach();
}

void
InvariantChecker::registerInvariant(std::string invName, Invariant fn)
{
    if (!fn)
        panic("registering null invariant '%s'", invName.c_str());
    invariants.push_back({std::move(invName), std::move(fn)});
}

void
InvariantChecker::attach()
{
    if (!compiledIn || period == 0)
        return;
    EventQueue &eq = eventq();
    eq.setPostEventHook(period, [this] { check(); });
    attachedTo = &eq;
}

void
InvariantChecker::detach()
{
    if (attachedTo) {
        attachedTo->setPostEventHook(0, nullptr);
        attachedTo = nullptr;
    }
}

void
InvariantChecker::check()
{
    if (!enabled())
        return;

    InvariantReport report;
    for (const NamedInvariant &inv : invariants) {
        const std::size_t before = report.failures().size();
        inv.fn(report);
        ++evaluations;
        // Prefix new messages with the invariant's name so a combined
        // panic message attributes every violation.
        for (std::size_t i = before; i < report.failures().size(); ++i) {
            violations += 1;
            warn("invariant '%s' violated at tick %llu: %s",
                 inv.name.c_str(), (unsigned long long)now(),
                 report.failures()[i].c_str());
        }
    }
    ++sweeps;

    if (!report.clean()) {
        panic("%zu invariant violation(s) at tick %llu in '%s'; "
              "first: %s",
              report.failures().size(), (unsigned long long)now(),
              name().c_str(), report.failures().front().c_str());
    }
}

void
registerEventQueueInvariants(InvariantChecker &checker, EventQueue &eq)
{
    checker.registerInvariant(
        "eventq.no-past-events", [&eq](InvariantReport &report) {
            const Tick next = eq.nextEventTick();
            if (next != maxTick && next < eq.now()) {
                report.fail("pending event at tick " +
                            std::to_string(next) +
                            " is before current tick " +
                            std::to_string(eq.now()));
            }
        });

    // Structural audit of the scheduler internals: wheel occupancy
    // bitmaps, slot placement/ordering, overflow-heap squash counts
    // and the live-entry accounting must all agree.
    checker.registerInvariant(
        "eventq.self-consistent", [&eq](InvariantReport &report) {
            if (!eq.selfCheckConsistent())
                report.fail("scheduler structures inconsistent "
                            "(wheel slots/bitmaps/overflow accounting)");
        });

    // Dequeue-tick monotonicity: time observed by consecutive sweeps
    // must never move backwards.
    auto lastSeen = std::make_shared<Tick>(0);
    checker.registerInvariant(
        "eventq.monotonic-time",
        [&eq, lastSeen](InvariantReport &report) {
            if (eq.now() < *lastSeen) {
                report.fail("current tick " + std::to_string(eq.now()) +
                            " went backwards (last sweep saw " +
                            std::to_string(*lastSeen) + ")");
            }
            *lastSeen = eq.now();
        });
}

} // namespace sim
