/**
 * @file
 * Runtime invariant checker.
 *
 * The simulator's correctness rests on structural invariants (cache
 * exclusivity, directory/tag consistency, descriptor-ring legality,
 * event-time monotonicity) that a silent pointer bug can violate
 * without crashing — producing plausible-but-wrong numbers. The
 * InvariantChecker turns those invariants into machine-checked
 * assertions: subsystems register named callbacks, and the checker
 * sweeps all of them every N processed events via the EventQueue's
 * post-event hook, so every sweep observes quiescent inter-event state.
 * Any recorded failure panics with the full list of violations.
 *
 * Cost control: the whole subsystem is compiled down to no-ops when
 * the build sets -DIDIO_CHECK_INVARIANTS=0 (CMake option
 * IDIO_CHECK_INVARIANTS=OFF), and can be disabled at runtime with
 * setEnabled(false) or a zero sweep period.
 *
 * Adding a new invariant (see DESIGN.md "Correctness tooling"):
 * write a `void(sim::InvariantReport &)` callback that calls
 * `report.fail(...)` for each violation it finds, and register it with
 * `checker.registerInvariant("subsystem.rule-name", fn)`.
 */

#ifndef IDIO_SIM_CHECKER_INVARIANT_CHECKER_HH
#define IDIO_SIM_CHECKER_INVARIANT_CHECKER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/sim_object.hh"
#include "sim/types.hh"
#include "stats/registry.hh"

#ifndef IDIO_CHECK_INVARIANTS
#define IDIO_CHECK_INVARIANTS 1
#endif

namespace sim
{

class EventQueue;

/**
 * Collector handed to every invariant callback; each detected
 * violation is recorded with fail(). An invariant that records nothing
 * passed.
 */
class InvariantReport
{
  public:
    /** Record one violation. @p message should name the broken rule
     *  and the offending state (address, slot index, tick...). */
    void fail(std::string message)
    {
        messages.push_back(std::move(message));
    }

    /** True when no violation has been recorded. */
    bool clean() const { return messages.empty(); }

    /** All recorded violation messages. */
    const std::vector<std::string> &failures() const { return messages; }

  private:
    std::vector<std::string> messages;
};

/**
 * SimObject that owns the registered invariants and runs them
 * periodically (every N processed events) or on demand via check().
 */
class InvariantChecker : public SimObject
{
    stats::StatGroup statGroup;

  public:
    /** An invariant callback: inspect model state, report failures. */
    using Invariant = std::function<void(InvariantReport &)>;

    /** False when the build compiled the checker out. */
    static constexpr bool compiledIn = (IDIO_CHECK_INVARIANTS != 0);

    /**
     * @param periodEvents Run a sweep every this many processed events
     *        once attach()ed; 0 disables periodic sweeps (check() still
     *        works).
     */
    InvariantChecker(Simulation &simulation, const std::string &name,
                     std::uint64_t periodEvents = 4096);

    ~InvariantChecker() override;

    /** Register @p fn under @p invName (used in violation reports). */
    void registerInvariant(std::string invName, Invariant fn);

    /** Number of registered invariants. */
    std::size_t numInvariants() const { return invariants.size(); }

    /**
     * Install the periodic sweep on the simulation's event queue.
     * No-op when compiled out or the period is 0.
     */
    void attach();

    /** Remove the periodic sweep hook. */
    void detach();

    /**
     * Run one full sweep immediately. panic()s listing every violation
     * when any invariant fails. No-op when compiled out or disabled.
     */
    void check();

    /** Runtime kill switch (independent of the compile-time gate). */
    void setEnabled(bool on) { isEnabled = on; }

    /** True when sweeps actually evaluate invariants. */
    bool enabled() const { return compiledIn && isEnabled; }

    /** Sweep period in processed events (0 = periodic sweeps off). */
    std::uint64_t periodEvents() const { return period; }

    /** @{ Counters (acceptance: every invariant evaluated >= once
     *  iff sweeps.get() >= 1 and evaluations == sweeps*numInvariants). */
    stats::Counter sweeps;      ///< completed full sweeps
    stats::Counter evaluations; ///< individual invariant evaluations
    stats::Counter violations;  ///< failures recorded (then panicking)
    /** @} */

  private:
    struct NamedInvariant
    {
        std::string name;
        Invariant fn;
    };

    std::vector<NamedInvariant> invariants;
    std::uint64_t period;
    bool isEnabled = true;
    EventQueue *attachedTo = nullptr;
};

/**
 * Register the event-queue invariants on @p checker:
 *  - no live pending event is scheduled before the current tick;
 *  - simulated time never moves backwards between sweeps.
 */
void registerEventQueueInvariants(InvariantChecker &checker,
                                  EventQueue &eq);

} // namespace sim

#endif // IDIO_SIM_CHECKER_INVARIANT_CHECKER_HH
