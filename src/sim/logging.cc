/**
 * @file
 * Implementation of the status/error reporting helpers.
 */

#include "logging.hh"

#include <cstdio>
#include <cstdlib>

namespace sim
{

namespace
{

LogLevel gLevel = LogLevel::Inform;

void
vprint(std::FILE *out, const char *prefix, const char *fmt, va_list ap)
{
    std::fprintf(out, "%s", prefix);
    std::vfprintf(out, fmt, ap);
    std::fprintf(out, "\n");
}

} // anonymous namespace

void
setLogLevel(LogLevel level)
{
    gLevel = level;
}

LogLevel
logLevel()
{
    return gLevel;
}

void
inform(const char *fmt, ...)
{
    if (gLevel < LogLevel::Inform)
        return;
    va_list ap;
    va_start(ap, fmt);
    vprint(stdout, "info: ", fmt, ap);
    va_end(ap);
}

void
warn(const char *fmt, ...)
{
    if (gLevel < LogLevel::Warn)
        return;
    va_list ap;
    va_start(ap, fmt);
    vprint(stderr, "warn: ", fmt, ap);
    va_end(ap);
}

void
debug(const char *fmt, ...)
{
    if (gLevel < LogLevel::Debug)
        return;
    va_list ap;
    va_start(ap, fmt);
    vprint(stdout, "debug: ", fmt, ap);
    va_end(ap);
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vprint(stderr, "fatal: ", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vprint(stderr, "panic: ", fmt, ap);
    va_end(ap);
    std::abort();
}

} // namespace sim
