/**
 * @file
 * Wire-format protocol headers.
 *
 * The simulator is cacheline-granular and does not need byte-accurate
 * payloads, but the NIC-side IDIO classifier is defined in terms of
 * real header fields (the IPv4 DSCP bits select the application class,
 * the 5-tuple drives Flow Director). These structs provide the exact
 * field layout, serialisation, and checksum math so classifier tests
 * can operate on real bytes.
 */

#ifndef IDIO_NET_HEADERS_HH
#define IDIO_NET_HEADERS_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <string>

namespace net
{

/** Bytes of an Ethernet MAC address. */
using MacAddr = std::array<std::uint8_t, 6>;

/** Ethernet MTU (payload bytes) and maximum frame size. */
constexpr std::uint32_t ethernetMtu = 1500;

/** Maximum Ethernet frame (MTU + 14 B header), the paper's 1514 B. */
constexpr std::uint32_t maxFrameBytes = 1514;

/** Combined Ethernet+IPv4+UDP header bytes. */
constexpr std::uint32_t headerBytes = 14 + 20 + 8;

/** IANA protocol numbers used by the models. */
enum class IpProto : std::uint8_t
{
    Tcp = 6,
    Udp = 17,
};

/**
 * Ethernet II header (14 bytes on the wire).
 */
struct EthernetHeader
{
    MacAddr dst{};
    MacAddr src{};
    std::uint16_t etherType = 0x0800; // IPv4

    static constexpr std::uint32_t wireBytes = 14;

    /** Serialise to @p out (must have wireBytes space). */
    void write(std::uint8_t *out) const;

    /** Parse from @p in. */
    static EthernetHeader read(const std::uint8_t *in);

    bool operator==(const EthernetHeader &) const = default;
};

/**
 * IPv4 header (20 bytes, no options).
 *
 * The 6-bit DSCP field (upper bits of the old ToS byte) carries the
 * IDIO application class, as proposed in paper Sec. V-A.
 */
struct Ipv4Header
{
    std::uint8_t dscp = 0;      ///< 6-bit differentiated services
    std::uint8_t ecn = 0;       ///< 2-bit ECN
    std::uint16_t totalLength = 0;
    std::uint16_t identification = 0;
    std::uint8_t ttl = 64;
    IpProto protocol = IpProto::Udp;
    std::uint32_t srcIp = 0;
    std::uint32_t dstIp = 0;

    static constexpr std::uint32_t wireBytes = 20;

    /** Serialise (computes and embeds the header checksum). */
    void write(std::uint8_t *out) const;

    /** Parse from @p in (does not verify the checksum). */
    static Ipv4Header read(const std::uint8_t *in);

    /** RFC 791 ones-complement header checksum of @p bytes. */
    static std::uint16_t checksum(const std::uint8_t *bytes,
                                  std::size_t len);

    bool operator==(const Ipv4Header &) const = default;
};

/**
 * UDP header (8 bytes).
 */
struct UdpHeader
{
    std::uint16_t srcPort = 0;
    std::uint16_t dstPort = 0;
    std::uint16_t length = 0;
    std::uint16_t checksum = 0; // optional in IPv4; 0 = unused

    static constexpr std::uint32_t wireBytes = 8;

    void write(std::uint8_t *out) const;
    static UdpHeader read(const std::uint8_t *in);

    bool operator==(const UdpHeader &) const = default;
};

/** Render an IPv4 address dotted-quad for diagnostics. */
std::string ipToString(std::uint32_t ip);

} // namespace net

#endif // IDIO_NET_HEADERS_HH
