/**
 * @file
 * The simulated packet.
 *
 * Packets carry flow identity, size, DSCP class, and timestamps; the
 * payload itself is not materialised (the hierarchy model is
 * cacheline-granular). renderHeaders() produces the real wire bytes of
 * the first cacheline for classifier tests.
 */

#ifndef IDIO_NET_PACKET_HH
#define IDIO_NET_PACKET_HH

#include <cstdint>

#include "ckpt/serializer.hh"
#include "net/flow.hh"
#include "net/headers.hh"
#include "sim/types.hh"

namespace net
{

/**
 * One network packet in flight.
 */
struct Packet
{
    FiveTuple flow;
    std::uint32_t frameBytes = maxFrameBytes; ///< Ethernet frame size
    std::uint8_t dscp = 0;                    ///< IDIO app class source
    std::uint64_t seq = 0;                    ///< generator sequence no
    sim::Tick genTime = 0;                    ///< left the generator
    sim::Tick nicArrival = 0;                 ///< hit the NIC MAC

    /**
     * Trace correlation id, assigned by the NIC at MAC arrival
     * (trace::Tracer::newPacketId; 0 = never delivered). Threaded
     * through nic::RxSlot and dpdk::Mbuf so every lifecycle trace
     * event of one packet shares the id.
     */
    std::uint64_t id = 0;

    /** Payload bytes after the protocol headers. */
    std::uint32_t
    payloadBytes() const
    {
        return frameBytes > headerBytes ? frameBytes - headerBytes : 0;
    }

    /** Cachelines the frame occupies in a DMA buffer. */
    std::uint32_t
    lines() const
    {
        return (frameBytes + 63) / 64;
    }

    /**
     * Write the Ethernet+IPv4+UDP headers (headerBytes bytes) into
     * @p out, embedding this packet's flow and DSCP.
     */
    void renderHeaders(std::uint8_t *out) const;

    /** Parse a rendered header block back into flow identity + DSCP. */
    static Packet parseHeaders(const std::uint8_t *in);
};

/**
 * @{ Checkpoint helpers: field-by-field so the byte stream is free of
 * struct padding (keeps checkpoint files deterministic).
 */
inline void
serializePacket(ckpt::Serializer &s, const Packet &p)
{
    s.writeU32(p.flow.srcIp);
    s.writeU32(p.flow.dstIp);
    s.writeU16(p.flow.srcPort);
    s.writeU16(p.flow.dstPort);
    s.writeU8(static_cast<std::uint8_t>(p.flow.proto));
    s.writeU32(p.frameBytes);
    s.writeU8(p.dscp);
    s.writeU64(p.seq);
    s.writeTick(p.genTime);
    s.writeTick(p.nicArrival);
    s.writeU64(p.id);
}

inline Packet
unserializePacket(ckpt::Deserializer &d)
{
    Packet p;
    p.flow.srcIp = d.readU32();
    p.flow.dstIp = d.readU32();
    p.flow.srcPort = d.readU16();
    p.flow.dstPort = d.readU16();
    p.flow.proto = static_cast<IpProto>(d.readU8());
    p.frameBytes = d.readU32();
    p.dscp = d.readU8();
    p.seq = d.readU64();
    p.genTime = d.readTick();
    p.nicArrival = d.readTick();
    p.id = d.readU64();
    return p;
}
/** @} */

} // namespace net

#endif // IDIO_NET_PACKET_HH
