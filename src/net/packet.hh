/**
 * @file
 * The simulated packet.
 *
 * Packets carry flow identity, size, DSCP class, and timestamps; the
 * payload itself is not materialised (the hierarchy model is
 * cacheline-granular). renderHeaders() produces the real wire bytes of
 * the first cacheline for classifier tests.
 */

#ifndef IDIO_NET_PACKET_HH
#define IDIO_NET_PACKET_HH

#include <cstdint>

#include "net/flow.hh"
#include "net/headers.hh"
#include "sim/types.hh"

namespace net
{

/**
 * One network packet in flight.
 */
struct Packet
{
    FiveTuple flow;
    std::uint32_t frameBytes = maxFrameBytes; ///< Ethernet frame size
    std::uint8_t dscp = 0;                    ///< IDIO app class source
    std::uint64_t seq = 0;                    ///< generator sequence no
    sim::Tick genTime = 0;                    ///< left the generator
    sim::Tick nicArrival = 0;                 ///< hit the NIC MAC

    /**
     * Trace correlation id, assigned by the NIC at MAC arrival
     * (trace::Tracer::newPacketId; 0 = never delivered). Threaded
     * through nic::RxSlot and dpdk::Mbuf so every lifecycle trace
     * event of one packet shares the id.
     */
    std::uint64_t id = 0;

    /** Payload bytes after the protocol headers. */
    std::uint32_t
    payloadBytes() const
    {
        return frameBytes > headerBytes ? frameBytes - headerBytes : 0;
    }

    /** Cachelines the frame occupies in a DMA buffer. */
    std::uint32_t
    lines() const
    {
        return (frameBytes + 63) / 64;
    }

    /**
     * Write the Ethernet+IPv4+UDP headers (headerBytes bytes) into
     * @p out, embedding this packet's flow and DSCP.
     */
    void renderHeaders(std::uint8_t *out) const;

    /** Parse a rendered header block back into flow identity + DSCP. */
    static Packet parseHeaders(const std::uint8_t *in);
};

} // namespace net

#endif // IDIO_NET_PACKET_HH
