/**
 * @file
 * Packet header rendering.
 */

#include "packet.hh"

namespace net
{

void
Packet::renderHeaders(std::uint8_t *out) const
{
    EthernetHeader eth;
    eth.dst = MacAddr{0x02, 0, 0, 0, 0, 0x01};
    eth.src = MacAddr{0x02, 0, 0, 0, 0, 0x02};
    eth.write(out);

    Ipv4Header ip;
    ip.dscp = dscp;
    ip.totalLength = static_cast<std::uint16_t>(
        frameBytes - EthernetHeader::wireBytes);
    ip.identification = static_cast<std::uint16_t>(seq);
    ip.protocol = flow.proto;
    ip.srcIp = flow.srcIp;
    ip.dstIp = flow.dstIp;
    ip.write(out + EthernetHeader::wireBytes);

    UdpHeader udp;
    udp.srcPort = flow.srcPort;
    udp.dstPort = flow.dstPort;
    udp.length = static_cast<std::uint16_t>(
        frameBytes - EthernetHeader::wireBytes - Ipv4Header::wireBytes);
    udp.write(out + EthernetHeader::wireBytes + Ipv4Header::wireBytes);
}

Packet
Packet::parseHeaders(const std::uint8_t *in)
{
    Packet p;
    const Ipv4Header ip = Ipv4Header::read(in + EthernetHeader::wireBytes);
    const UdpHeader udp = UdpHeader::read(
        in + EthernetHeader::wireBytes + Ipv4Header::wireBytes);
    p.flow.srcIp = ip.srcIp;
    p.flow.dstIp = ip.dstIp;
    p.flow.proto = ip.protocol;
    p.flow.srcPort = udp.srcPort;
    p.flow.dstPort = udp.dstPort;
    p.dscp = ip.dscp;
    p.frameBytes = ip.totalLength + EthernetHeader::wireBytes;
    return p;
}

} // namespace net
