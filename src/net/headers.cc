/**
 * @file
 * Header serialisation and checksums.
 */

#include "headers.hh"

#include <cstdio>

namespace net
{

namespace
{

void
put16(std::uint8_t *out, std::uint16_t v)
{
    out[0] = static_cast<std::uint8_t>(v >> 8);
    out[1] = static_cast<std::uint8_t>(v & 0xff);
}

std::uint16_t
get16(const std::uint8_t *in)
{
    return static_cast<std::uint16_t>((in[0] << 8) | in[1]);
}

void
put32(std::uint8_t *out, std::uint32_t v)
{
    out[0] = static_cast<std::uint8_t>(v >> 24);
    out[1] = static_cast<std::uint8_t>(v >> 16);
    out[2] = static_cast<std::uint8_t>(v >> 8);
    out[3] = static_cast<std::uint8_t>(v);
}

std::uint32_t
get32(const std::uint8_t *in)
{
    return (std::uint32_t(in[0]) << 24) | (std::uint32_t(in[1]) << 16) |
           (std::uint32_t(in[2]) << 8) | std::uint32_t(in[3]);
}

} // anonymous namespace

void
EthernetHeader::write(std::uint8_t *out) const
{
    std::memcpy(out, dst.data(), 6);
    std::memcpy(out + 6, src.data(), 6);
    put16(out + 12, etherType);
}

EthernetHeader
EthernetHeader::read(const std::uint8_t *in)
{
    EthernetHeader h;
    std::memcpy(h.dst.data(), in, 6);
    std::memcpy(h.src.data(), in + 6, 6);
    h.etherType = get16(in + 12);
    return h;
}

void
Ipv4Header::write(std::uint8_t *out) const
{
    out[0] = 0x45; // version 4, IHL 5
    out[1] = static_cast<std::uint8_t>((dscp << 2) | (ecn & 0x3));
    put16(out + 2, totalLength);
    put16(out + 4, identification);
    put16(out + 6, 0); // flags + fragment offset
    out[8] = ttl;
    out[9] = static_cast<std::uint8_t>(protocol);
    put16(out + 10, 0); // checksum placeholder
    put32(out + 12, srcIp);
    put32(out + 16, dstIp);
    put16(out + 10, checksum(out, wireBytes));
}

Ipv4Header
Ipv4Header::read(const std::uint8_t *in)
{
    Ipv4Header h;
    h.dscp = static_cast<std::uint8_t>(in[1] >> 2);
    h.ecn = static_cast<std::uint8_t>(in[1] & 0x3);
    h.totalLength = get16(in + 2);
    h.identification = get16(in + 4);
    h.ttl = in[8];
    h.protocol = static_cast<IpProto>(in[9]);
    h.srcIp = get32(in + 12);
    h.dstIp = get32(in + 16);
    return h;
}

std::uint16_t
Ipv4Header::checksum(const std::uint8_t *bytes, std::size_t len)
{
    std::uint32_t sum = 0;
    for (std::size_t i = 0; i + 1 < len; i += 2)
        sum += get16(bytes + i);
    if (len & 1)
        sum += std::uint32_t(bytes[len - 1]) << 8;
    while (sum >> 16)
        sum = (sum & 0xffff) + (sum >> 16);
    return static_cast<std::uint16_t>(~sum);
}

void
UdpHeader::write(std::uint8_t *out) const
{
    put16(out, srcPort);
    put16(out + 2, dstPort);
    put16(out + 4, length);
    put16(out + 6, checksum);
}

UdpHeader
UdpHeader::read(const std::uint8_t *in)
{
    UdpHeader h;
    h.srcPort = get16(in);
    h.dstPort = get16(in + 2);
    h.length = get16(in + 4);
    h.checksum = get16(in + 6);
    return h;
}

std::string
ipToString(std::uint32_t ip)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (ip >> 24) & 0xff,
                  (ip >> 16) & 0xff, (ip >> 8) & 0xff, ip & 0xff);
    return buf;
}

} // namespace net
