/**
 * @file
 * Toeplitz hashing.
 */

#include "flow.hh"

namespace net
{

// Microsoft's canonical RSS key (40 bytes).
const std::uint8_t defaultRssKey[40] = {
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67,
    0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0, 0xd0, 0xca, 0x2b, 0xcb,
    0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30,
    0xf2, 0x0c, 0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
};

namespace
{

/** Bit @p b (MSB first) of the byte array @p bytes. */
bool
bitAt(const std::uint8_t *bytes, int b)
{
    return (bytes[b / 8] >> (7 - (b % 8))) & 1;
}

/** The 32 key bits starting at bit offset @p b. */
std::uint32_t
keyWindow(const std::uint8_t *key, int b)
{
    std::uint32_t w = 0;
    for (int i = 0; i < 32; ++i)
        w = (w << 1) | static_cast<std::uint32_t>(bitAt(key, b + i));
    return w;
}

} // anonymous namespace

std::uint32_t
toeplitzHash(const FiveTuple &tuple, const std::uint8_t *key)
{
    // Standard IPv4-with-ports RSS input: srcIp | dstIp | srcPort |
    // dstPort, 12 bytes big-endian. The protocol byte is not hashed.
    std::uint8_t input[12];
    input[0] = static_cast<std::uint8_t>(tuple.srcIp >> 24);
    input[1] = static_cast<std::uint8_t>(tuple.srcIp >> 16);
    input[2] = static_cast<std::uint8_t>(tuple.srcIp >> 8);
    input[3] = static_cast<std::uint8_t>(tuple.srcIp);
    input[4] = static_cast<std::uint8_t>(tuple.dstIp >> 24);
    input[5] = static_cast<std::uint8_t>(tuple.dstIp >> 16);
    input[6] = static_cast<std::uint8_t>(tuple.dstIp >> 8);
    input[7] = static_cast<std::uint8_t>(tuple.dstIp);
    input[8] = static_cast<std::uint8_t>(tuple.srcPort >> 8);
    input[9] = static_cast<std::uint8_t>(tuple.srcPort);
    input[10] = static_cast<std::uint8_t>(tuple.dstPort >> 8);
    input[11] = static_cast<std::uint8_t>(tuple.dstPort);

    std::uint32_t result = 0;
    for (int b = 0; b < 96; ++b) {
        if (bitAt(input, b))
            result ^= keyWindow(key, b);
    }
    return result;
}

std::uint32_t
toeplitzHash(const FiveTuple &tuple)
{
    return toeplitzHash(tuple, defaultRssKey);
}

} // namespace net
