/**
 * @file
 * Packet capture in the classic libpcap format.
 *
 * PcapWriter records simulated packets (headers rendered to real wire
 * bytes, payload zero-filled) into files any standard tool can open
 * (tcpdump/wireshark/tshark); PcapReader loads captures back, so
 * experiments can be driven by recorded or externally produced
 * traces via gen::TraceTrafficGen.
 */

#ifndef IDIO_NET_PCAP_HH
#define IDIO_NET_PCAP_HH

#include <cstdio>
#include <string>
#include <vector>

#include "net/packet.hh"
#include "sim/types.hh"

namespace net
{

/** One record of a capture: arrival time plus the packet identity. */
struct TraceRecord
{
    sim::Tick when = 0;
    Packet pkt;
};

/**
 * Writes classic (non-ng) pcap files, LINKTYPE_ETHERNET.
 */
class PcapWriter
{
  public:
    /**
     * Open @p path and emit the global header.
     * @param snapLen Bytes captured per packet (headers always fit).
     */
    explicit PcapWriter(const std::string &path,
                        std::uint32_t snapLen = 128);
    ~PcapWriter();

    PcapWriter(const PcapWriter &) = delete;
    PcapWriter &operator=(const PcapWriter &) = delete;

    /** Append one packet stamped at @p when. */
    void record(sim::Tick when, const Packet &pkt);

    /** Packets written so far. */
    std::uint64_t count() const { return nRecords; }

    /** Flush and close (also done by the destructor). */
    void close();

  private:
    std::FILE *file = nullptr;
    std::uint32_t snapLen;
    std::uint64_t nRecords = 0;
};

/**
 * Reads pcap files produced by PcapWriter (or any classic pcap file
 * of Ethernet/IPv4/UDP traffic).
 */
class PcapReader
{
  public:
    /**
     * Load every record of @p path. fatal()s on malformed files.
     */
    static std::vector<TraceRecord> readAll(const std::string &path);
};

} // namespace net

#endif // IDIO_NET_PCAP_HH
