/**
 * @file
 * Classic pcap serialisation.
 *
 * Format reference: the de-facto libpcap layout — a 24-byte global
 * header (magic 0xa1b2c3d4 for microsecond timestamps) followed by
 * per-record headers of (ts_sec, ts_usec, incl_len, orig_len).
 * We use the nanosecond-precision magic 0xa1b23c4d since simulated
 * time is picosecond-granular.
 */

#include "pcap.hh"

#include <algorithm>
#include <cstring>

#include "sim/logging.hh"

namespace net
{

namespace
{

constexpr std::uint32_t pcapMagicNanos = 0xa1b23c4d;
constexpr std::uint16_t pcapVersionMajor = 2;
constexpr std::uint16_t pcapVersionMinor = 4;
constexpr std::uint32_t linkTypeEthernet = 1;

struct GlobalHeader
{
    std::uint32_t magic;
    std::uint16_t versionMajor;
    std::uint16_t versionMinor;
    std::int32_t thisZone;
    std::uint32_t sigfigs;
    std::uint32_t snapLen;
    std::uint32_t network;
};

struct RecordHeader
{
    std::uint32_t tsSec;
    std::uint32_t tsNsec; // nanoseconds with the nanos magic
    std::uint32_t inclLen;
    std::uint32_t origLen;
};

} // anonymous namespace

PcapWriter::PcapWriter(const std::string &path, std::uint32_t snapLen)
    : snapLen(snapLen)
{
    file = std::fopen(path.c_str(), "wb");
    if (!file)
        sim::fatal("cannot open pcap file '%s'", path.c_str());

    GlobalHeader gh{};
    gh.magic = pcapMagicNanos;
    gh.versionMajor = pcapVersionMajor;
    gh.versionMinor = pcapVersionMinor;
    gh.snapLen = snapLen;
    gh.network = linkTypeEthernet;
    std::fwrite(&gh, sizeof(gh), 1, file);
}

PcapWriter::~PcapWriter()
{
    close();
}

void
PcapWriter::close()
{
    if (file) {
        std::fclose(file);
        file = nullptr;
    }
}

void
PcapWriter::record(sim::Tick when, const Packet &pkt)
{
    SIM_ASSERT(file != nullptr, "recording into a closed pcap");

    std::uint8_t frame[2048] = {};
    pkt.renderHeaders(frame);
    const std::uint32_t incl =
        std::min({pkt.frameBytes, snapLen,
                  static_cast<std::uint32_t>(sizeof(frame))});

    RecordHeader rh{};
    rh.tsSec = static_cast<std::uint32_t>(when / sim::oneSec);
    rh.tsNsec =
        static_cast<std::uint32_t>((when % sim::oneSec) / sim::oneNs);
    rh.inclLen = incl;
    rh.origLen = pkt.frameBytes;
    std::fwrite(&rh, sizeof(rh), 1, file);
    std::fwrite(frame, 1, incl, file);
    ++nRecords;
}

std::vector<TraceRecord>
PcapReader::readAll(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        sim::fatal("cannot open pcap file '%s'", path.c_str());

    GlobalHeader gh{};
    if (std::fread(&gh, sizeof(gh), 1, f) != 1) {
        std::fclose(f);
        sim::fatal("'%s': truncated pcap header", path.c_str());
    }
    const bool nanos = gh.magic == pcapMagicNanos;
    if (!nanos && gh.magic != 0xa1b2c3d4u) {
        std::fclose(f);
        sim::fatal("'%s': not a pcap file (magic 0x%08x)",
                   path.c_str(), gh.magic);
    }
    if (gh.network != linkTypeEthernet) {
        std::fclose(f);
        sim::fatal("'%s': unsupported link type %u", path.c_str(),
                   gh.network);
    }

    std::vector<TraceRecord> out;
    for (;;) {
        RecordHeader rh{};
        if (std::fread(&rh, sizeof(rh), 1, f) != 1)
            break; // EOF
        std::vector<std::uint8_t> data(rh.inclLen);
        if (rh.inclLen &&
            std::fread(data.data(), 1, rh.inclLen, f) != rh.inclLen) {
            std::fclose(f);
            sim::fatal("'%s': truncated pcap record", path.c_str());
        }

        TraceRecord rec;
        rec.when = sim::Tick(rh.tsSec) * sim::oneSec +
                   sim::Tick(rh.tsNsec) *
                       (nanos ? sim::oneNs : sim::oneUs);
        if (rh.inclLen >= headerBytes) {
            rec.pkt = Packet::parseHeaders(data.data());
            rec.pkt.frameBytes = rh.origLen;
        } else {
            rec.pkt.frameBytes = rh.origLen;
        }
        out.push_back(rec);
    }
    std::fclose(f);
    return out;
}

} // namespace net
