/**
 * @file
 * Flow identification and RSS/Flow-Director hashing.
 */

#ifndef IDIO_NET_FLOW_HH
#define IDIO_NET_FLOW_HH

#include <cstdint>
#include <functional>

#include "net/headers.hh"

namespace net
{

/**
 * Canonical 5-tuple identifying a flow.
 */
struct FiveTuple
{
    std::uint32_t srcIp = 0;
    std::uint32_t dstIp = 0;
    std::uint16_t srcPort = 0;
    std::uint16_t dstPort = 0;
    IpProto proto = IpProto::Udp;

    bool operator==(const FiveTuple &) const = default;
};

/**
 * Toeplitz hash over the 5-tuple, as used by RSS and Flow Director's
 * signature filters. @p key must provide at least 40 bytes.
 */
std::uint32_t toeplitzHash(const FiveTuple &tuple,
                           const std::uint8_t *key);

/** The default Microsoft RSS key. */
extern const std::uint8_t defaultRssKey[40];

/** Toeplitz hash with the default key. */
std::uint32_t toeplitzHash(const FiveTuple &tuple);

/** Cheap structural hash for container keys. */
struct FiveTupleHash
{
    std::size_t
    operator()(const FiveTuple &t) const
    {
        std::uint64_t h = t.srcIp;
        h = h * 0x100000001b3ULL ^ t.dstIp;
        h = h * 0x100000001b3ULL ^ t.srcPort;
        h = h * 0x100000001b3ULL ^ t.dstPort;
        h = h * 0x100000001b3ULL ^ static_cast<std::uint8_t>(t.proto);
        return static_cast<std::size_t>(h);
    }
};

} // namespace net

#endif // IDIO_NET_FLOW_HH
