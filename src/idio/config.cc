/**
 * @file
 * Policy presets.
 */

#include "config.hh"

#include "sim/logging.hh"

namespace idio
{

const char *
policyName(Policy p)
{
    switch (p) {
      case Policy::Ddio:
        return "DDIO";
      case Policy::InvalidateOnly:
        return "Invalidate";
      case Policy::PrefetchOnly:
        return "Prefetch";
      case Policy::Static:
        return "Static";
      case Policy::Idio:
        return "IDIO";
    }
    return "?";
}

Policy
parsePolicy(const std::string &name)
{
    if (name == "ddio" || name == "DDIO")
        return Policy::Ddio;
    if (name == "invalidate" || name == "Invalidate")
        return Policy::InvalidateOnly;
    if (name == "prefetch" || name == "Prefetch")
        return Policy::PrefetchOnly;
    if (name == "static" || name == "Static")
        return Policy::Static;
    if (name == "idio" || name == "IDIO")
        return Policy::Idio;
    sim::fatal("unknown IDIO policy '%s'", name.c_str());
}

IdioConfig
IdioConfig::preset(Policy p)
{
    IdioConfig cfg;
    cfg.policy = p;
    switch (p) {
      case Policy::Ddio:
        break;
      case Policy::InvalidateOnly:
        cfg.selfInvalidate = true;
        break;
      case Policy::PrefetchOnly:
        cfg.mlcPrefetch = true;
        cfg.dynamicFsm = true;
        cfg.directDram = true;
        break;
      case Policy::Static:
        cfg.selfInvalidate = true;
        cfg.mlcPrefetch = true;
        cfg.dynamicFsm = false;
        cfg.directDram = true;
        break;
      case Policy::Idio:
        cfg.selfInvalidate = true;
        cfg.mlcPrefetch = true;
        cfg.dynamicFsm = true;
        cfg.directDram = true;
        break;
    }
    return cfg;
}

} // namespace idio
