/**
 * @file
 * Queued MLC prefetcher (paper Sec. V-C).
 *
 * Each MLC controller keeps a small FIFO (default 32 entries) of
 * prefetch hints received from the IDIO controller and issues prefetch
 * requests to the LLC at a configurable pace. Hints arriving at a full
 * queue are dropped.
 *
 * Besides the paper's simple queued prefetcher, a *CPU-paced* mode
 * implements the paper's suggested improvement ("a more sophisticated
 * prefetcher that follows the CPU pointer in the ring buffer to
 * regulate the MLC prefetching rate"): issuing stalls while more than
 * a window of prefetched lines sit unconsumed in the MLC, so the
 * prefetcher can never run far ahead of the consuming core and
 * thrash its own fills. The window is maintained from the
 * hierarchy's prefetch-retire feedback.
 */

#ifndef IDIO_IDIO_PREFETCHER_HH
#define IDIO_IDIO_PREFETCHER_HH

#include <deque>

#include "cache/hierarchy.hh"
#include "sim/event_queue.hh"
#include "sim/sim_object.hh"
#include "stats/registry.hh"

namespace idio
{

/**
 * Per-core queued prefetcher.
 */
class MlcPrefetcher : public sim::SimObject
{
    stats::StatGroup statGroup;

  public:
    /**
     * @param core The MLC this prefetcher fills.
     * @param depth Queue depth (paper default 32).
     * @param issuePeriod Ticks between issued prefetches.
     * @param pacingWindow Maximum prefetched-but-unconsumed lines
     *        allowed in the MLC before issuing stalls (0 disables
     *        pacing: the paper's simple queued prefetcher).
     */
    MlcPrefetcher(sim::Simulation &simulation, const std::string &name,
                  cache::MemoryHierarchy &hierarchy, sim::CoreId core,
                  std::uint32_t depth, sim::Tick issuePeriod,
                  std::uint32_t pacingWindow = 0);

    ~MlcPrefetcher() override;

    /** Enqueue a prefetch hint (dropped when the queue is full). */
    void hint(sim::Addr addr);

    /**
     * A prefetched line retired from the MLC (demand hit, eviction,
     * or invalidation); frees one pacing credit.
     */
    void onRetire();

    /** Pending hints. */
    std::size_t queueDepth() const { return queue.size(); }

    /** Prefetched lines currently unconsumed in the MLC. */
    std::uint32_t outstandingLines() const { return outstanding; }

    /** @{ Counters. */
    stats::Counter hintsReceived;
    stats::Counter hintsDropped;
    stats::Counter issued;
    stats::Counter fills;  ///< prefetches that actually moved a line
    stats::Counter stalls; ///< issue slots skipped (window full)
    /** @} */

    void serialize(ckpt::Serializer &s) const override;
    void unserialize(ckpt::Deserializer &d) override;

  private:
    class IssueEvent : public sim::Event
    {
      public:
        explicit IssueEvent(MlcPrefetcher &owner) : owner(owner) {}
        void process() override { owner.issue(); }
        std::string name() const override
        {
            return owner.name() + ".issue";
        }

      private:
        MlcPrefetcher &owner;
    };

    void issue();

    /** True when pacing permits another issue. */
    bool
    canIssue() const
    {
        return window == 0 || outstanding < window;
    }

    cache::MemoryHierarchy &hier;
    sim::CoreId core;
    std::uint32_t depth;
    sim::Tick issuePeriod;
    std::uint32_t window;
    std::uint32_t outstanding = 0;
    std::deque<sim::Addr> queue;
    IssueEvent issueEvent;
};

} // namespace idio

#endif // IDIO_IDIO_PREFETCHER_HH
