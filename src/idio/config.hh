/**
 * @file
 * IDIO policy configuration.
 *
 * The paper's evaluation compares five configurations (Fig. 9):
 *  - DDIO: baseline static LLC placement.
 *  - Invalidate: self-invalidating I/O buffers only (M1).
 *  - Prefetch: network-driven MLC prefetching only (M2).
 *  - Static: M1 + M2 with the per-core status register hardcoded to
 *    MLC (prefetching always on).
 *  - IDIO: M1 + M2 governed by the dynamic FSM, plus selective direct
 *    DRAM access (M3).
 */

#ifndef IDIO_IDIO_CONFIG_HH
#define IDIO_IDIO_CONFIG_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace idio
{

/** Named policy presets. */
enum class Policy
{
    Ddio,
    InvalidateOnly,
    PrefetchOnly,
    Static,
    Idio,
};

/** Printable policy name. */
const char *policyName(Policy p);

/**
 * Prefetcher flavour (Sec. V-C plus the paper's suggested
 * improvement).
 */
enum class PrefetcherKind
{
    SimpleQueue, ///< the paper's queued prefetcher
    CpuPaced,    ///< stalls while too many prefetched lines are unread
};

/** Parse a policy name ("ddio", "invalidate", ...). */
Policy parsePolicy(const std::string &name);

/**
 * Controller and mechanism knobs.
 */
struct IdioConfig
{
    Policy policy = Policy::Ddio;

    /** M1: software self-invalidates consumed DMA buffers. */
    bool selfInvalidate = false;

    /** M2: controller sends MLC prefetch hints. */
    bool mlcPrefetch = false;

    /** Use the dynamic FSM (false = status hardcoded to MLC). */
    bool dynamicFsm = false;

    /** M3: class-1 payloads go straight to DRAM. */
    bool directDram = false;

    /** MLC-pressure threshold, million transactions/second. */
    double mlcThrMtps = 50.0;

    /** Control-plane sampling interval (paper: 1 us). */
    sim::Tick controlInterval = sim::oneUs;

    /** Samples averaged for mlcWBAvg (paper: 8192). */
    std::uint32_t avgWindow = 8192;

    /** MLC prefetcher queue depth (paper: 32). */
    std::uint32_t prefetchQueueDepth = 32;

    /** Pacing between prefetch issues, ns. */
    double prefetchIssueNs = 5.0;

    /** Prefetcher flavour. */
    PrefetcherKind prefetcher = PrefetcherKind::SimpleQueue;

    /**
     * CpuPaced: maximum prefetched-but-unconsumed MLC lines (half the
     * 1 MB MLC by default).
     */
    std::uint32_t prefetchWindowLines = 8192;

    /** Build the preset for a named policy. */
    static IdioConfig preset(Policy p);

    /** mlcTHR converted to transactions per control interval. */
    std::uint32_t
    thresholdPerInterval() const
    {
        return static_cast<std::uint32_t>(
            mlcThrMtps * 1e6 * sim::ticksToSeconds(controlInterval));
    }
};

} // namespace idio

#endif // IDIO_IDIO_CONFIG_HH
