/**
 * @file
 * The IDIO controller (paper Sec. V-B, Algorithm 1).
 *
 * Sits at the PCIe root complex between the NIC DMA engines and the
 * cache hierarchy. The data plane steers each inbound DMA write:
 * headers get MLC prefetch hints, class-1 payloads bypass to DRAM,
 * class-0 payloads get prefetch hints while the destination core's
 * status register reads MLC, and everything else follows the normal
 * DDIO path. The control plane samples per-core MLC writeback counts
 * every 1 us, maintains an 8192-sample running average, and steps the
 * per-core steering FSMs.
 *
 * With the DDIO policy preset the controller degenerates into the
 * baseline: every write takes the plain DDIO path.
 */

#ifndef IDIO_IDIO_CONTROLLER_HH
#define IDIO_IDIO_CONTROLLER_HH

#include <memory>
#include <vector>

#include "cache/hierarchy.hh"
#include "idio/config.hh"
#include "idio/fsm.hh"
#include "idio/prefetcher.hh"
#include "nic/dma.hh"
#include "sim/periodic.hh"
#include "sim/sim_object.hh"
#include "stats/registry.hh"
#include "trace/tracer.hh"

namespace idio
{

/**
 * Root-complex DMA steering controller.
 */
class IdioController : public sim::SimObject, public nic::DmaTarget
{
    stats::StatGroup statGroup;

  public:
    IdioController(sim::Simulation &simulation, const std::string &name,
                   cache::MemoryHierarchy &hierarchy,
                   const IdioConfig &config);

    ~IdioController() override;

    /** Hook the MLC telemetry and start the control plane. */
    void start();

    /** @{ nic::DmaTarget. */
    void dmaWrite(sim::Addr addr, const nic::TlpMeta &meta) override;
    sim::Tick dmaRead(sim::Addr addr) override;
    /** @} */

    /** Current steering status for @p core. */
    Steering status(sim::CoreId core) const;

    /** FSM counter value for @p core. */
    std::uint8_t fsmState(sim::CoreId core) const
    {
        return fsms[core].state();
    }

    /** Running MLC-writeback average (per interval) for @p core. */
    std::uint32_t
    mlcWbAvg(sim::CoreId core) const
    {
        return wbAvg[core];
    }

    const IdioConfig &config() const { return cfg; }

    /** Per-core prefetcher access (for tests). */
    MlcPrefetcher &prefetcher(sim::CoreId core)
    {
        return *prefetchers[core];
    }

    /** @{ Counters. */
    stats::Counter headerHints;
    stats::Counter payloadHints;
    stats::Counter directDramSteers;
    stats::Counter burstSignals;
    stats::Counter highPressureIntervals;
    /** @} */

    void serialize(ckpt::Serializer &s) const override;
    void unserialize(ckpt::Deserializer &d) override;

  private:
    void controlPlaneTick();

    /** @{ MemoryHierarchy observer targets (Delegate-bound). */
    void onMlcWriteback(sim::CoreId core) { ++wbThisInterval[core]; }
    void
    onPrefetchRetire(sim::CoreId core)
    {
        prefetchers[core]->onRetire();
    }
    /** @} */

    cache::MemoryHierarchy &hier;
    IdioConfig cfg;
    trace::Source trc;
    std::uint32_t thrPerInterval;

    std::vector<SteeringFsm> fsms;
    std::vector<std::uint32_t> wbThisInterval; ///< mlcWB
    std::vector<std::uint64_t> wbAccum;        ///< mlcWBAcc
    std::vector<std::uint32_t> wbAvg;          ///< mlcWBAvg
    std::uint32_t intervalsSinceAvg = 0;

    std::vector<std::unique_ptr<MlcPrefetcher>> prefetchers;
    sim::PeriodicEvent controlEvent;
};

} // namespace idio

#endif // IDIO_IDIO_CONTROLLER_HH
