/**
 * @file
 * Per-core steering FSM (paper Fig. 8).
 *
 * A 2-bit saturating counter per physical core decides whether inbound
 * class-0 DMA data is prefetched to the core's MLC. State 0b11 (the
 * reset state) means "LLC" — prefetching disabled. A detected RX burst
 * forces the state to 0b00 ("MLC"). Every control interval the counter
 * is incremented under high MLC pressure and decremented otherwise,
 * saturating at both ends; the status bit reads MLC unless the counter
 * sits at 0b11.
 */

#ifndef IDIO_IDIO_FSM_HH
#define IDIO_IDIO_FSM_HH

#include <cstdint>

namespace idio
{

/** Destination encoded by the status bit. */
enum class Steering : std::uint8_t
{
    Llc = 0,
    Mlc = 1,
};

/**
 * The 2-bit saturating steering FSM for one core.
 */
class SteeringFsm
{
  public:
    /** Counter value (0b00..0b11). */
    std::uint8_t state() const { return counter; }

    /** Current steering target. */
    Steering
    status() const
    {
        return counter == 3 ? Steering::Llc : Steering::Mlc;
    }

    /** A burst was detected for this core: jump to 0b00. */
    void onBurst() { counter = 0; }

    /**
     * One control-plane step.
     * @param highPressure mlcWB exceeded mlcWBAvg + mlcTHR.
     */
    void
    step(bool highPressure)
    {
        if (highPressure) {
            if (counter < 3)
                ++counter;
        } else {
            if (counter > 0)
                --counter;
        }
    }

    /** Reset to the power-on state (prefetching disabled). */
    void reset() { counter = 3; }

    /** Force the counter value (checkpoint restore only). */
    void restoreState(std::uint8_t c) { counter = c & 3; }

  private:
    std::uint8_t counter = 3;
};

} // namespace idio

#endif // IDIO_IDIO_FSM_HH
