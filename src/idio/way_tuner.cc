/**
 * @file
 * DdioWayTuner implementation.
 */

#include "way_tuner.hh"

#include "ckpt/serializer.hh"
#include "sim/simulation.hh"

namespace idio
{

DdioWayTuner::DdioWayTuner(sim::Simulation &simulation,
                           const std::string &name,
                           cache::MemoryHierarchy &hierarchy,
                           const WayTunerConfig &config)
    : sim::SimObject(simulation, name),
      statGroup(simulation.statsRegistry(), name),
      grows(statGroup, "grows", "DDIO partition grow decisions"),
      shrinks(statGroup, "shrinks", "DDIO partition shrink decisions"),
      evaluations(statGroup, "evaluations", "tuning intervals"),
      hier(hierarchy), cfg(config),
      tick(simulation.eventq(), config.interval,
           [this] { evaluate(); }, name + ".tick")
{
    if (cfg.minWays == 0 || cfg.minWays > cfg.maxWays)
        sim::fatal("way tuner range [%u, %u] invalid", cfg.minWays,
                   cfg.maxWays);
}

void
DdioWayTuner::start()
{
    lastLeak = hier.llc().ddioWayEvictions.get();
    lastMisses = hier.llc().misses.get();
    tick.start();
}

void
DdioWayTuner::stop()
{
    tick.stop();
}

std::uint32_t
DdioWayTuner::currentWays() const
{
    return hier.llc().ddioWays();
}

void
DdioWayTuner::evaluate()
{
    ++evaluations;

    const std::uint64_t leakNow = hier.llc().ddioWayEvictions.get();
    const std::uint64_t missNow = hier.llc().misses.get();
    const std::uint64_t leak = leakNow - lastLeak;
    const std::uint64_t misses = missNow - lastMisses;
    lastLeak = leakNow;
    lastMisses = missNow;

    const std::uint32_t ways = hier.llc().ddioWays();
    if (leak > cfg.growLeakThreshold && ways < cfg.maxWays) {
        hier.llc().setDdioWays(ways + 1);
        ++grows;
    } else if (leak < cfg.shrinkLeakThreshold &&
               misses > cfg.missThreshold && ways > cfg.minWays) {
        hier.llc().setDdioWays(ways - 1);
        ++shrinks;
    }
}

void
DdioWayTuner::serialize(ckpt::Serializer &s) const
{
    s.writeU64(lastLeak);
    s.writeU64(lastMisses);
    ckpt::serializeEvent(s, tick);
}

void
DdioWayTuner::unserialize(ckpt::Deserializer &d)
{
    lastLeak = d.readU64();
    lastMisses = d.readU64();
    ckpt::unserializeEvent(d, &tick, &eventq());
}

} // namespace idio
