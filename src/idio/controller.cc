/**
 * @file
 * IdioController implementation.
 */

#include "controller.hh"

#include "ckpt/serializer.hh"
#include "sim/simulation.hh"

namespace idio
{

IdioController::IdioController(sim::Simulation &simulation,
                               const std::string &name,
                               cache::MemoryHierarchy &hierarchy,
                               const IdioConfig &config)
    : sim::SimObject(simulation, name),
      statGroup(simulation.statsRegistry(), name),
      headerHints(statGroup, "headerHints",
                  "prefetch hints for header cachelines"),
      payloadHints(statGroup, "payloadHints",
                   "prefetch hints for payload cachelines"),
      directDramSteers(statGroup, "directDramSteers",
                       "class-1 writes steered to DRAM"),
      burstSignals(statGroup, "burstSignals",
                   "burst notifications received from the classifier"),
      highPressureIntervals(statGroup, "highPressureIntervals",
                            "core-intervals with high MLC pressure"),
      hier(hierarchy), cfg(config),
      trc(simulation.tracer().registerSource(name)),
      thrPerInterval(config.thresholdPerInterval()),
      fsms(hierarchy.numCores()),
      wbThisInterval(hierarchy.numCores(), 0),
      wbAccum(hierarchy.numCores(), 0),
      wbAvg(hierarchy.numCores(), 0),
      controlEvent(eventq(), config.controlInterval,
                   [this] { controlPlaneTick(); },
                   name + ".controlPlane")
{
    const std::uint32_t window =
        cfg.prefetcher == PrefetcherKind::CpuPaced
            ? cfg.prefetchWindowLines
            : 0;
    for (std::uint32_t c = 0; c < hierarchy.numCores(); ++c) {
        prefetchers.push_back(std::make_unique<MlcPrefetcher>(
            simulation, name + ".prefetcher" + std::to_string(c),
            hierarchy, c, cfg.prefetchQueueDepth,
            sim::nsToTicks(cfg.prefetchIssueNs), window));
    }
}

IdioController::~IdioController() = default;

void
IdioController::start()
{
    hier.setMlcWbObserver(
        cache::MemoryHierarchy::MlcWbObserver::fromMember<
            &IdioController::onMlcWriteback>(this));
    if (cfg.prefetcher == PrefetcherKind::CpuPaced) {
        hier.setPrefetchRetireObserver(
            cache::MemoryHierarchy::PrefetchRetireObserver::fromMember<
                &IdioController::onPrefetchRetire>(this));
    }
    controlEvent.start();
}

Steering
IdioController::status(sim::CoreId core) const
{
    if (!cfg.mlcPrefetch)
        return Steering::Llc;
    if (!cfg.dynamicFsm)
        return Steering::Mlc; // Static configuration
    return fsms[core].status();
}

void
IdioController::dmaWrite(sim::Addr addr, const nic::TlpMeta &meta)
{
    // Baseline DDIO / invalidate-only: static LLC placement.
    if (!cfg.mlcPrefetch && !cfg.directDram) {
        hier.pcieWrite(addr);
        return;
    }

    // Burst notification resets the FSM to the MLC state (Alg. 1 l.3).
    if (meta.isBurst && cfg.dynamicFsm && cfg.mlcPrefetch) {
        if (fsms[meta.destCore].state() != 0) {
            ++burstSignals;
            IDIO_TRACE_INSTANT(trc, trace::EventKind::IdioBurst, now(),
                               0, meta.destCore, 0);
            IDIO_TRACE_COUNTER(trc, trace::EventKind::IdioFsm, now(),
                               0, meta.destCore);
        }
        fsms[meta.destCore].onBurst();
    }

    // Headers always stay on the DCA path and are prefetched to the
    // destination MLC (Alg. 1 l.4-5).
    if (meta.isHeader && cfg.mlcPrefetch) {
        hier.pcieWrite(addr);
        prefetchers[meta.destCore]->hint(addr);
        ++headerHints;
        IDIO_TRACE_INSTANT(trc, trace::EventKind::IdioHintHeader,
                           now(), 0, meta.destCore, addr);
        return;
    }

    // Class-1 payloads bypass the cache hierarchy (Alg. 1 l.6-7).
    if (meta.appClass == 1 && cfg.directDram) {
        hier.pcieWriteDirectDram(addr);
        ++directDramSteers;
        IDIO_TRACE_INSTANT(trc, trace::EventKind::IdioDirectDram,
                           now(), 0, meta.destCore, addr);
        return;
    }

    // Class-0 payloads: DDIO write, plus a prefetch hint while the
    // destination core's status register reads MLC (Alg. 1 l.8-11).
    hier.pcieWrite(addr);
    if (cfg.mlcPrefetch && status(meta.destCore) == Steering::Mlc) {
        prefetchers[meta.destCore]->hint(addr);
        ++payloadHints;
        IDIO_TRACE_INSTANT(trc, trace::EventKind::IdioHintPayload,
                           now(), 0, meta.destCore, addr);
    }
}

sim::Tick
IdioController::dmaRead(sim::Addr addr)
{
    return hier.pcieRead(addr);
}

void
IdioController::controlPlaneTick()
{
    const std::uint32_t n = hier.numCores();
    for (std::uint32_t c = 0; c < n; ++c) {
        const bool high =
            wbThisInterval[c] > wbAvg[c] + thrPerInterval;
        if (high)
            ++highPressureIntervals;
        if (cfg.mlcPrefetch && cfg.dynamicFsm) {
            const std::uint8_t before = fsms[c].state();
            fsms[c].step(high);
            if (fsms[c].state() != before) {
                IDIO_TRACE_COUNTER(trc, trace::EventKind::IdioFsm,
                                   now(), fsms[c].state(), c);
            }
        }
        wbAccum[c] += wbThisInterval[c];
        wbThisInterval[c] = 0;
    }

    if (++intervalsSinceAvg >= cfg.avgWindow) {
        for (std::uint32_t c = 0; c < n; ++c) {
            wbAvg[c] = static_cast<std::uint32_t>(wbAccum[c] /
                                                  cfg.avgWindow);
            wbAccum[c] = 0;
        }
        intervalsSinceAvg = 0;
    }
}

void
IdioController::serialize(ckpt::Serializer &s) const
{
    s.writeU64(fsms.size());
    for (const SteeringFsm &fsm : fsms)
        s.writeU8(fsm.state());
    s.writePodVec(wbThisInterval);
    s.writePodVec(wbAccum);
    s.writePodVec(wbAvg);
    s.writeU32(intervalsSinceAvg);
    ckpt::serializeEvent(s, controlEvent);
}

void
IdioController::unserialize(ckpt::Deserializer &d)
{
    const std::uint64_t n = d.readU64();
    if (n != fsms.size())
        sim::fatal("ckpt: '%s' FSM count mismatch (checkpoint %llu, "
                   "config %zu)",
                   name().c_str(), (unsigned long long)n, fsms.size());
    for (SteeringFsm &fsm : fsms)
        fsm.restoreState(d.readU8());
    wbThisInterval = d.readPodVec<std::uint32_t>();
    wbAccum = d.readPodVec<std::uint64_t>();
    wbAvg = d.readPodVec<std::uint32_t>();
    if (wbThisInterval.size() != n || wbAccum.size() != n ||
        wbAvg.size() != n) {
        sim::fatal("ckpt: '%s' telemetry vector size mismatch",
                   name().c_str());
    }
    intervalsSinceAvg = d.readU32();
    ckpt::unserializeEvent(d, &controlEvent, &eventq());
}

} // namespace idio
