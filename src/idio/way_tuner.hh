/**
 * @file
 * IAT-style dynamic DDIO way allocation (related-work comparator).
 *
 * IAT ("Don't forget the I/O when allocating your LLC", ISCA'21 —
 * paper reference [41]) re-configures the number of LLC ways DDIO may
 * write-allocate into, based on runtime monitoring: grow the I/O
 * partition when inbound traffic leaks out of it, shrink it when the
 * CPU side misses heavily and the leak is quiet. The paper positions
 * IDIO against exactly this class of dynamic-DDIO policies (they
 * "are not able to fine-tune the destination of the inbound data and
 * still suffer from the penalty of a high MLC writeback rate"), so a
 * faithful reproduction needs the comparator: see
 * bench/ablation_way_tuner.
 */

#ifndef IDIO_IDIO_WAY_TUNER_HH
#define IDIO_IDIO_WAY_TUNER_HH

#include "cache/hierarchy.hh"
#include "sim/periodic.hh"
#include "sim/sim_object.hh"
#include "stats/registry.hh"

namespace idio
{

/** Tuner knobs. */
struct WayTunerConfig
{
    /** Re-evaluation cadence. */
    sim::Tick interval = 100 * sim::oneUs;

    /** Minimum / maximum DDIO ways the tuner may configure. */
    std::uint32_t minWays = 1;
    std::uint32_t maxWays = 8;

    /**
     * Grow the partition when more than this many DDIO-way victims
     * were displaced during the last interval (DMA leak pressure).
     */
    std::uint64_t growLeakThreshold = 64;

    /**
     * Shrink when the leak was below this and the CPU side missed in
     * the LLC more than missThreshold times.
     */
    std::uint64_t shrinkLeakThreshold = 8;
    std::uint64_t missThreshold = 256;
};

/**
 * Periodic controller adjusting the LLC's DDIO partition.
 */
class DdioWayTuner : public sim::SimObject
{
    stats::StatGroup statGroup;

  public:
    DdioWayTuner(sim::Simulation &simulation, const std::string &name,
                 cache::MemoryHierarchy &hierarchy,
                 const WayTunerConfig &config = {});

    /** Begin the monitoring loop. */
    void start();

    /** Stop adjusting (the current partition stays). */
    void stop();

    /** Current partition size. */
    std::uint32_t currentWays() const;

    /** @{ Counters. */
    stats::Counter grows;
    stats::Counter shrinks;
    stats::Counter evaluations;
    /** @} */

    void serialize(ckpt::Serializer &s) const override;
    void unserialize(ckpt::Deserializer &d) override;

  private:
    void evaluate();

    cache::MemoryHierarchy &hier;
    WayTunerConfig cfg;
    std::uint64_t lastLeak = 0;
    std::uint64_t lastMisses = 0;
    sim::PeriodicEvent tick;
};

} // namespace idio

#endif // IDIO_IDIO_WAY_TUNER_HH
