/**
 * @file
 * MlcPrefetcher implementation.
 */

#include "prefetcher.hh"

#include "ckpt/serializer.hh"
#include "sim/simulation.hh"

namespace idio
{

MlcPrefetcher::MlcPrefetcher(sim::Simulation &simulation,
                             const std::string &name,
                             cache::MemoryHierarchy &hierarchy,
                             sim::CoreId core, std::uint32_t depth,
                             sim::Tick issuePeriod,
                             std::uint32_t pacingWindow)
    : sim::SimObject(simulation, name),
      statGroup(simulation.statsRegistry(), name),
      hintsReceived(statGroup, "hintsReceived",
                    "prefetch hints from the IDIO controller"),
      hintsDropped(statGroup, "hintsDropped",
                   "hints dropped because the queue was full"),
      issued(statGroup, "issued", "prefetch requests sent to the LLC"),
      fills(statGroup, "fills", "prefetches that filled the MLC"),
      stalls(statGroup, "stalls",
             "issue slots skipped because the pacing window was full"),
      hier(hierarchy), core(core), depth(depth),
      issuePeriod(issuePeriod), window(pacingWindow), issueEvent(*this)
{
}

MlcPrefetcher::~MlcPrefetcher()
{
    if (issueEvent.scheduled())
        eventq().deschedule(&issueEvent);
}

void
MlcPrefetcher::hint(sim::Addr addr)
{
    ++hintsReceived;
    if (queue.size() >= depth) {
        ++hintsDropped;
        return;
    }
    queue.push_back(mem::lineAlign(addr));
    if (!canIssue())
        ++stalls; // parked until a prefetched line retires
    else if (!issueEvent.scheduled())
        eventq().scheduleIn(&issueEvent, issuePeriod);
}

void
MlcPrefetcher::onRetire()
{
    if (outstanding > 0)
        --outstanding;
    // A credit freed up: resume a stalled queue.
    if (!queue.empty() && canIssue() && !issueEvent.scheduled())
        eventq().scheduleIn(&issueEvent, issuePeriod);
}

void
MlcPrefetcher::issue()
{
    if (queue.empty())
        return;
    if (!canIssue()) {
        // CPU-paced mode: too many unconsumed prefetched lines; wait
        // for the core (or an eviction) to retire one.
        ++stalls;
        return;
    }
    const sim::Addr addr = queue.front();
    queue.pop_front();
    ++issued;
    if (hier.mlcPrefetch(core, addr)) {
        ++fills;
        ++outstanding;
    }
    // The prefetch fill may have synchronously evicted a prefetched
    // line and re-armed this event through onRetire(); guard against
    // double scheduling.
    if (!queue.empty()) {
        if (!canIssue())
            ++stalls;
        else if (!issueEvent.scheduled())
            eventq().scheduleIn(&issueEvent, issuePeriod);
    }
}

void
MlcPrefetcher::serialize(ckpt::Serializer &s) const
{
    s.writeU32(outstanding);
    s.writeU64(queue.size());
    for (const sim::Addr a : queue)
        s.writeU64(a);
    ckpt::serializeEvent(s, issueEvent);
}

void
MlcPrefetcher::unserialize(ckpt::Deserializer &d)
{
    outstanding = d.readU32();
    queue.clear();
    const std::uint64_t n = d.readU64();
    for (std::uint64_t i = 0; i < n; ++i)
        queue.push_back(d.readU64());
    ckpt::unserializeEvent(d, &issueEvent, &eventq());
}

} // namespace idio
