/**
 * @file
 * TouchDrop network function (paper Table II).
 *
 * "Receive packets, touch data, drop packets": the NF reads every
 * cacheline of the received frame and releases the buffer. It models
 * the general deep-packet-inspection class whose DMA buffers end up in
 * the MLC after processing (paper Fig. 3, left).
 */

#ifndef IDIO_NF_TOUCH_DROP_HH
#define IDIO_NF_TOUCH_DROP_HH

#include "nf/network_function.hh"

namespace nf
{

/**
 * Deep-touching drop NF.
 */
class TouchDrop : public NetworkFunction
{
  public:
    using NetworkFunction::NetworkFunction;

  protected:
    sim::Tick
    processPacket(cpu::Core &c, dpdk::Mbuf &m) override
    {
        // Touch the entire frame, one cacheline at a time.
        sim::Tick lat = c.read(m.dataAddr, m.pktBytes);
        lat += perLineCost * mem::linesSpanned(m.dataAddr, m.pktBytes);
        return lat;
    }
};

} // namespace nf

#endif // IDIO_NF_TOUCH_DROP_HH
