/**
 * @file
 * LlcAntagonist implementation.
 */

#include "llc_antagonist.hh"

#include "ckpt/serializer.hh"
#include "sim/simulation.hh"

namespace nf
{

LlcAntagonist::LlcAntagonist(sim::Simulation &simulation,
                             const std::string &name, cpu::Core &core,
                             mem::PhysAllocator &alloc,
                             const AntagonistConfig &config)
    : sim::SimObject(simulation, name),
      statGroup(simulation.statsRegistry(), name),
      accesses(statGroup, "accesses", "random accesses performed"),
      accessTicks(statGroup, "accessTicks",
                  "total latency of random accesses (ticks)"),
      core(core), cfg(config),
      base(alloc.allocate(config.bufferBytes, mem::pageSize)),
      lines(config.bufferBytes / mem::lineSize),
      perAccessCost(sim::nsToTicks(config.perAccessCostNs)),
      rng(simulation.deriveRng(name).next())
{
}

void
LlcAntagonist::warmUp()
{
    for (std::uint64_t i = 0; i < lines; ++i)
        core.read(base + i * mem::lineSize, 1);
    // The warm-up is logically instantaneous: drop the DRAM channel
    // backlog it accumulated so measurement starts clean.
    core.hierarchy().dram().resetTiming();
}

void
LlcAntagonist::launch()
{
    core.run(*this);
}

sim::Tick
LlcAntagonist::step(cpu::Core &c)
{
    sim::Tick lat = 0;
    for (std::uint32_t i = 0; i < cfg.accessesPerStep; ++i) {
        const sim::Addr addr =
            base + rng.below(lines) * mem::lineSize;
        sim::Tick access;
        if (rng.chance(cfg.writeFraction))
            access = c.write(addr, 1);
        else
            access = c.read(addr, 1);
        access += perAccessCost;
        lat += access;
        ++accesses;
        accessTicks += access;
    }
    return lat > 0 ? lat : 1;
}

double
LlcAntagonist::ticksPerAccess() const
{
    if (accesses.get() == 0)
        return 0.0;
    return static_cast<double>(accessTicks.get()) /
           static_cast<double>(accesses.get());
}

void
LlcAntagonist::serialize(ckpt::Serializer &s) const
{
    for (const std::uint64_t w : rng.state())
        s.writeU64(w);
}

void
LlcAntagonist::unserialize(ckpt::Deserializer &d)
{
    std::array<std::uint64_t, 4> st;
    for (std::uint64_t &w : st)
        w = d.readU64();
    rng.setState(st);
}

} // namespace nf
