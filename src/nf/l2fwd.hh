/**
 * @file
 * L2Fwd network functions (paper Table II and Sec. VII).
 *
 * L2Fwd is the zero-copy, run-to-completion shallow NF: it inspects
 * and rewrites only the Ethernet header, then transmits the *same* DMA
 * buffer back out (paper Fig. 3, right). The buffer is consumed only
 * when the TX DMA read completes, at which point it is freed (and
 * self-invalidated under IDIO).
 *
 * L2FwdDropPayload is the paper's class-1 variant ("the application
 * drops the payload after processing the header"): only the header
 * cacheline is forwarded, so the payload is never touched by the CPU
 * — the workload that motivates selective direct DRAM access.
 */

#ifndef IDIO_NF_L2FWD_HH
#define IDIO_NF_L2FWD_HH

#include "nf/network_function.hh"

namespace nf
{

/**
 * Zero-copy L2 forwarder.
 */
class L2Fwd : public NetworkFunction
{
  public:
    L2Fwd(sim::Simulation &simulation, const std::string &name,
          cpu::Core &core, dpdk::RxQueue &rxQueue,
          const NfConfig &config);

    /** Packets whose TX has not completed yet. */
    std::uint32_t inFlightTx() const { return txInFlight; }

    void serialize(ckpt::Serializer &s) const override;
    void unserialize(ckpt::Deserializer &d) override;

  protected:
    sim::Tick processPacket(cpu::Core &c, dpdk::Mbuf &m) override;
    bool asyncCompletion() const override { return true; }

    /** Bytes of the frame actually transmitted. */
    virtual std::uint32_t
    txBytes(const dpdk::Mbuf &m) const
    {
        return m.pktBytes;
    }

  private:
    void onTxDone(std::uint32_t mbufIdx);

    std::uint32_t txInFlight = 0;
    std::uint32_t txDoneHandler; ///< named DMA completion handler
};

/**
 * Header-forward / payload-drop variant (application class 1).
 */
class L2FwdDropPayload : public L2Fwd
{
  public:
    using L2Fwd::L2Fwd;

  protected:
    std::uint32_t
    txBytes(const dpdk::Mbuf &) const override
    {
        return mem::lineSize; // header cacheline only
    }
};

} // namespace nf

#endif // IDIO_NF_L2FWD_HH
