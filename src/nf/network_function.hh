/**
 * @file
 * Network function base class.
 *
 * Implements the run-to-completion DPDK execution loop common to the
 * paper's workloads (Table II): poll a burst of up to 32 descriptors,
 * process packets one at a time, then free (and, under IDIO, self-
 * invalidate) the consumed DMA buffers and re-arm the ring. Concrete
 * NFs override processPacket() with their touching pattern.
 *
 * Per-packet latency is sampled at the moment the paper's gem5 pseudo
 * instruction would execute: when the packet is fully processed
 * (TouchDrop) or when its TX DMA completes (L2Fwd).
 */

#ifndef IDIO_NF_NETWORK_FUNCTION_HH
#define IDIO_NF_NETWORK_FUNCTION_HH

#include <deque>
#include <string>

#include "cpu/core.hh"
#include "dpdk/rx_queue.hh"
#include "sim/sim_object.hh"
#include "stats/latency_recorder.hh"
#include "stats/registry.hh"
#include "trace/tracer.hh"

namespace nf
{

/** Tuning knobs shared by all network functions. */
struct NfConfig
{
    /** Packets processed per poll (DPDK default 32). */
    std::uint32_t batch = 32;

    /** Gap between empty polls, ns (bounds idle event count). */
    double idlePollGapNs = 100.0;

    /** Fixed software overhead per packet, ns (calibrated). */
    double perPacketCostNs = 100.0;

    /** Compute cost per touched cacheline, ns (calibrated). */
    double perLineCostNs = 8.0;

    /** M1: self-invalidate DMA buffers after consumption. */
    bool selfInvalidate = false;
};

/**
 * Common NF machinery.
 */
class NetworkFunction : public cpu::Workload, public sim::SimObject
{
    stats::StatGroup statGroup;

  public:
    NetworkFunction(sim::Simulation &simulation, const std::string &name,
                    cpu::Core &core, dpdk::RxQueue &rxQueue,
                    const NfConfig &config);

    /** Bind to the core and start polling. */
    void launch();

    sim::Tick step(cpu::Core &core) final;
    std::string label() const override { return name(); }

    const NfConfig &config() const { return cfg; }

    /** @{ Counters. */
    stats::Counter packetsProcessed;
    stats::Counter bytesProcessed;
    stats::Counter batches;
    stats::Counter emptyPolls;
    stats::LatencyRecorder latency;
    /** @} */

    /**
     * Checkpoints the NF loop state plus the driver objects it owns
     * (RX queue cursors and the mempool) in one section.
     */
    void serialize(ckpt::Serializer &s) const override;
    void unserialize(ckpt::Deserializer &d) override;

  protected:
    /**
     * NF-specific packet handling.
     * @return CPU latency of the handling.
     */
    virtual sim::Tick processPacket(cpu::Core &core, dpdk::Mbuf &m) = 0;

    /**
     * True when the packet's life continues after processPacket()
     * (e.g.\ zero-copy TX); the subclass then calls completePacket()
     * itself.
     */
    virtual bool asyncCompletion() const { return false; }

    /**
     * Whether completePacket() performs the self-invalidation.
     * Copy-mode NFs invalidate earlier, inside processPacket().
     */
    virtual bool
    invalidateOnComplete() const
    {
        return cfg.selfInvalidate;
    }

    /**
     * Sample latency and release the buffer. Synchronous NFs get the
     * cost added to the current step; asynchronous completions (TX
     * callbacks) report their cost through deferredCost, charged to
     * the next step.
     *
     * @param accrued Latency already accrued in the current step
     *        (pass 0 from asynchronous completion contexts).
     * @return buffer release cost.
     */
    sim::Tick completePacket(std::uint32_t mbufIdx, sim::Tick accrued);

    dpdk::RxQueue &rxq;
    cpu::Core &core;
    NfConfig cfg;
    trace::Source trc;
    sim::Tick perPacketCost;
    sim::Tick perLineCost;
    sim::Tick idleGap;

    /** Cost accrued by async completions, charged to the next step. */
    sim::Tick deferredCost = 0;

  private:
    std::deque<std::uint32_t> pending;
};

} // namespace nf

#endif // IDIO_NF_NETWORK_FUNCTION_HH
