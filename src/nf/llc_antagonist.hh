/**
 * @file
 * LLCAntagonist workload (paper Table II).
 *
 * "Allocate a variable size buffer and randomly access elements":
 * the co-running application used to create LLC contention and to
 * measure the isolation IDIO provides. The paper shrinks the
 * antagonist core's MLC to 256 KB so its working set spills into the
 * LLC; that override lives in HierarchyConfig::mlcSizeOverride.
 */

#ifndef IDIO_NF_LLC_ANTAGONIST_HH
#define IDIO_NF_LLC_ANTAGONIST_HH

#include <string>

#include "cpu/core.hh"
#include "mem/phys_alloc.hh"
#include "sim/rng.hh"
#include "sim/sim_object.hh"
#include "stats/registry.hh"

namespace nf
{

/** Antagonist tuning. */
struct AntagonistConfig
{
    /** Working-set bytes (default 8 MB: larger than the LLC). */
    std::uint64_t bufferBytes = 8ull << 20;

    /** Random accesses per atomic step. */
    std::uint32_t accessesPerStep = 64;

    /** Fraction of accesses that are writes. */
    double writeFraction = 0.3;

    /** Compute cost per access, ns. */
    double perAccessCostNs = 2.0;
};

/**
 * Random-access LLC thrasher.
 */
class LlcAntagonist : public cpu::Workload, public sim::SimObject
{
    stats::StatGroup statGroup;

  public:
    LlcAntagonist(sim::Simulation &simulation, const std::string &name,
                  cpu::Core &core, mem::PhysAllocator &alloc,
                  const AntagonistConfig &config);

    /**
     * Touch the buffer sequentially (outside simulated time) so stats
     * collection starts from a warm cache, as the paper does.
     */
    void warmUp();

    /** Bind to the core and start. */
    void launch();

    sim::Tick step(cpu::Core &core) override;
    std::string label() const override { return name(); }

    /**
     * Mean ticks per access — the CPI proxy the paper's Fig. 10
     * co-running discussion reports.
     */
    double ticksPerAccess() const;

    /** @{ Counters. */
    stats::Counter accesses;
    stats::Counter accessTicks;
    /** @} */

    void serialize(ckpt::Serializer &s) const override;
    void unserialize(ckpt::Deserializer &d) override;

  private:
    cpu::Core &core;
    AntagonistConfig cfg;
    sim::Addr base;
    std::uint64_t lines;
    sim::Tick perAccessCost;
    sim::Rng rng;
};

} // namespace nf

#endif // IDIO_NF_LLC_ANTAGONIST_HH
