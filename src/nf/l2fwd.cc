/**
 * @file
 * L2Fwd implementation.
 */

#include "l2fwd.hh"

#include "ckpt/serializer.hh"
#include "net/headers.hh"

namespace nf
{

L2Fwd::L2Fwd(sim::Simulation &simulation, const std::string &name,
             cpu::Core &core, dpdk::RxQueue &rxQueue,
             const NfConfig &config)
    : NetworkFunction(simulation, name, core, rxQueue, config),
      txDoneHandler(rxQueue.port().dmaEngine().registerHandler(
          name + ".txDone",
          [this](const nic::DmaArgs &args) {
              onTxDone(static_cast<std::uint32_t>(args[0]));
          }))
{
}

sim::Tick
L2Fwd::processPacket(cpu::Core &c, dpdk::Mbuf &m)
{
    // Read the protocol headers (one cacheline: Ethernet+IP+UDP fit in
    // 42 bytes) and rewrite the Ethernet addresses in place.
    sim::Tick lat = c.read(m.dataAddr, net::headerBytes);
    lat += c.write(m.dataAddr, net::EthernetHeader::wireBytes);
    lat += perLineCost;

    // Zero-copy TX of the same DMA buffer; completion recycles it.
    // The completion goes through a named handler so a pending TX
    // survives a checkpoint.
    ++txInFlight;
    rxq.port().transmit(m.dataAddr, txBytes(m), txDoneHandler,
                        nic::DmaArgs{m.idx, 0, 0, 0, 0, 0});
    return lat;
}

void
L2Fwd::onTxDone(std::uint32_t mbufIdx)
{
    --txInFlight;
    // The buffer is dead only now; sample latency, self-invalidate,
    // and recycle. The release cost is charged to the NF's next step.
    deferredCost += completePacket(mbufIdx, 0);
}

void
L2Fwd::serialize(ckpt::Serializer &s) const
{
    NetworkFunction::serialize(s);
    s.writeU32(txInFlight);
}

void
L2Fwd::unserialize(ckpt::Deserializer &d)
{
    NetworkFunction::unserialize(d);
    txInFlight = d.readU32();
}

} // namespace nf
