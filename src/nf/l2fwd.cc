/**
 * @file
 * L2Fwd implementation.
 */

#include "l2fwd.hh"

#include "net/headers.hh"

namespace nf
{

L2Fwd::L2Fwd(sim::Simulation &simulation, const std::string &name,
             cpu::Core &core, dpdk::RxQueue &rxQueue,
             const NfConfig &config)
    : NetworkFunction(simulation, name, core, rxQueue, config)
{
}

sim::Tick
L2Fwd::processPacket(cpu::Core &c, dpdk::Mbuf &m)
{
    // Read the protocol headers (one cacheline: Ethernet+IP+UDP fit in
    // 42 bytes) and rewrite the Ethernet addresses in place.
    sim::Tick lat = c.read(m.dataAddr, net::headerBytes);
    lat += c.write(m.dataAddr, net::EthernetHeader::wireBytes);
    lat += perLineCost;

    // Zero-copy TX of the same DMA buffer; completion recycles it.
    const std::uint32_t idx = m.idx;
    ++txInFlight;
    rxq.port().transmit(m.dataAddr, txBytes(m),
                        [this, idx] { onTxDone(idx); });
    return lat;
}

void
L2Fwd::onTxDone(std::uint32_t mbufIdx)
{
    --txInFlight;
    // The buffer is dead only now; sample latency, self-invalidate,
    // and recycle. The release cost is charged to the NF's next step.
    deferredCost += completePacket(mbufIdx, 0);
}

} // namespace nf
