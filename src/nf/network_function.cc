/**
 * @file
 * NetworkFunction implementation.
 */

#include "network_function.hh"

#include <algorithm>

#include "ckpt/serializer.hh"
#include "sim/simulation.hh"

namespace nf
{

NetworkFunction::NetworkFunction(sim::Simulation &simulation,
                                 const std::string &name,
                                 cpu::Core &core, dpdk::RxQueue &rxQueue,
                                 const NfConfig &config)
    : sim::SimObject(simulation, name),
      statGroup(simulation.statsRegistry(), name),
      packetsProcessed(statGroup, "packetsProcessed",
                       "packets fully processed"),
      bytesProcessed(statGroup, "bytesProcessed",
                     "frame bytes fully processed"),
      batches(statGroup, "batches", "non-empty RX bursts"),
      emptyPolls(statGroup, "emptyPolls", "polls that found no packet"),
      latency(statGroup, "latency",
              "per-packet NIC-arrival-to-completion latency (ticks)"),
      rxq(rxQueue), core(core), cfg(config),
      trc(simulation.tracer().registerSource(name)),
      perPacketCost(sim::nsToTicks(config.perPacketCostNs)),
      perLineCost(sim::nsToTicks(config.perLineCostNs)),
      idleGap(sim::nsToTicks(config.idlePollGapNs))
{
}

void
NetworkFunction::launch()
{
    rxq.initialArm();
    core.run(*this);
}

sim::Tick
NetworkFunction::step(cpu::Core &c)
{
    sim::Tick lat = deferredCost;
    deferredCost = 0;

    if (pending.empty()) {
        dpdk::PollResult res = rxq.pollBurst();
        lat += res.latency;
        if (res.mbufs.empty()) {
            ++emptyPolls;
            return std::max<sim::Tick>(1, lat + idleGap);
        }
        ++batches;
        for (auto idx : res.mbufs)
            pending.push_back(idx);
        return std::max<sim::Tick>(1, lat);
    }

    const std::uint32_t idx = pending.front();
    pending.pop_front();
    dpdk::Mbuf &m = rxq.mempool().at(idx);

    lat += perPacketCost;
    lat += processPacket(c, m);

    ++packetsProcessed;
    bytesProcessed += m.pktBytes;
    // The span starts at the current step's begin; the CPU charges
    // the accrued latency after step() returns, so `lat` is this
    // packet's share of wall-clock core time.
    IDIO_TRACE_COMPLETE(trc, trace::EventKind::NfConsume, now(), lat,
                        m.pkt.id, c.id(), m.pktBytes);

    if (!asyncCompletion())
        lat += completePacket(idx, lat);

    if (pending.empty())
        lat += rxq.refill();

    return std::max<sim::Tick>(1, lat);
}

sim::Tick
NetworkFunction::completePacket(std::uint32_t mbufIdx, sim::Tick accrued)
{
    dpdk::Mbuf &m = rxq.mempool().at(mbufIdx);
    latency.sample(now() + accrued - m.pkt.nicArrival);

    sim::Tick lat = 0;
    if (invalidateOnComplete() && m.pktBytes > 0)
        lat += core.invalidate(m.dataAddr, m.pktBytes);
    lat += core.write(rxq.mempool().freeListSlotAddr(), 1);
    IDIO_TRACE_INSTANT(trc, trace::EventKind::DpdkFree, now(),
                       m.pkt.id, 0, mbufIdx);
    rxq.mempool().free(mbufIdx);
    return lat;
}

void
NetworkFunction::serialize(ckpt::Serializer &s) const
{
    s.writeU64(pending.size());
    for (const std::uint32_t idx : pending)
        s.writeU32(idx);
    s.writeTick(deferredCost);
    rxq.serialize(s);
    rxq.mempool().serialize(s);
}

void
NetworkFunction::unserialize(ckpt::Deserializer &d)
{
    pending.clear();
    const std::uint64_t n = d.readU64();
    for (std::uint64_t i = 0; i < n; ++i)
        pending.push_back(d.readU32());
    deferredCost = d.readTick();
    rxq.unserialize(d);
    rxq.mempool().unserialize(d);
}

} // namespace nf
