/**
 * @file
 * Copy-mode TouchDrop (paper Sec. II-B, recycling mode M1).
 *
 * The Linux-stack-style consumption model: the packet is copied out
 * of the DMA buffer into an application-owned arena and processed
 * from the copy. The DMA buffer is dead after the copy's first touch
 * — the earliest legal self-invalidation point the paper identifies
 * ("if the RX DMA buffers are copied to a new buffer before
 * processing them, then it is safe to invalidate the cachelines that
 * belong to the DMA buffer after the first touch").
 *
 * Compared to run-to-completion TouchDrop, the copy doubles the
 * CPU-side line traffic (read DMA + write copy + read copy) but
 * shrinks each DMA buffer's use distance to the copy loop.
 */

#ifndef IDIO_NF_COPY_TOUCH_DROP_HH
#define IDIO_NF_COPY_TOUCH_DROP_HH

#include <vector>

#include "mem/phys_alloc.hh"
#include "nf/network_function.hh"

namespace nf
{

/**
 * TouchDrop with copy-mode buffer recycling.
 */
class CopyTouchDrop : public NetworkFunction
{
  public:
    /**
     * @param alloc Allocator for the application copy arena.
     * @param arenaBuffers Copy slots cycled round-robin (bounds the
     *        application working set like a socket buffer pool).
     */
    CopyTouchDrop(sim::Simulation &simulation, const std::string &name,
                  cpu::Core &core, dpdk::RxQueue &rxQueue,
                  const NfConfig &config, mem::PhysAllocator &alloc,
                  std::uint32_t arenaBuffers = 512);

    void serialize(ckpt::Serializer &s) const override;
    void unserialize(ckpt::Deserializer &d) override;

  protected:
    sim::Tick processPacket(cpu::Core &c, dpdk::Mbuf &m) override;

    /** The copy loop already invalidated the buffer. */
    bool invalidateOnComplete() const override { return false; }

  private:
    sim::Addr arenaBase;
    std::uint32_t arenaBuffers;
    std::uint32_t nextSlot = 0;
};

} // namespace nf

#endif // IDIO_NF_COPY_TOUCH_DROP_HH
