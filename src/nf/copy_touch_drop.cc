/**
 * @file
 * CopyTouchDrop implementation.
 */

#include "copy_touch_drop.hh"

#include "ckpt/serializer.hh"

namespace nf
{

CopyTouchDrop::CopyTouchDrop(sim::Simulation &simulation,
                             const std::string &name, cpu::Core &core,
                             dpdk::RxQueue &rxQueue,
                             const NfConfig &config,
                             mem::PhysAllocator &alloc,
                             std::uint32_t arenaBuffers)
    : NetworkFunction(simulation, name, core, rxQueue, config),
      arenaBase(alloc.allocate(
          std::uint64_t(arenaBuffers) * dpdk::defaultBufBytes,
          mem::pageSize)),
      arenaBuffers(arenaBuffers)
{
}

sim::Tick
CopyTouchDrop::processPacket(cpu::Core &c, dpdk::Mbuf &m)
{
    const sim::Addr copyAddr =
        arenaBase + std::uint64_t(nextSlot) * dpdk::defaultBufBytes;
    nextSlot = (nextSlot + 1) % arenaBuffers;

    // Copy loop: read each DMA line, write the copy line.
    sim::Tick lat = c.read(m.dataAddr, m.pktBytes);
    lat += c.write(copyAddr, m.pktBytes);

    // The DMA buffer is dead right now — before processing — which is
    // what makes copy-mode stacks the easiest self-invalidation
    // clients. (The base class's completePacket() would invalidate
    // after processing; doing it here shortens the window further.)
    if (cfg.selfInvalidate)
        lat += c.invalidate(m.dataAddr, m.pktBytes);

    // Process the copy: touch every line of it.
    lat += c.read(copyAddr, m.pktBytes);
    lat += perLineCost * mem::linesSpanned(copyAddr, m.pktBytes);
    return lat;
}

void
CopyTouchDrop::serialize(ckpt::Serializer &s) const
{
    NetworkFunction::serialize(s);
    s.writeU32(nextSlot);
}

void
CopyTouchDrop::unserialize(ckpt::Deserializer &d)
{
    NetworkFunction::unserialize(d);
    nextSlot = d.readU32();
}

} // namespace nf
