/**
 * @file
 * RX descriptor ring shared between the NIC model and the driver.
 *
 * Mirrors the hardware contract: software arms descriptors with buffer
 * addresses and advances the tail; the NIC fills armed descriptors in
 * order and sets the DD (descriptor done) bit after DMA completes. The
 * descriptor *memory* (128 B per descriptor, as in the paper) has real
 * simulated addresses — the NIC writes it via DMA and the driver reads
 * it through the cache hierarchy, so descriptor traffic shows up in
 * the cache statistics exactly like the paper's.
 */

#ifndef IDIO_NIC_RX_RING_HH
#define IDIO_NIC_RX_RING_HH

#include <cstdint>
#include <vector>

#include "net/packet.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace nic
{

/** Descriptor footprint in memory (paper: 128-byte descriptors). */
constexpr std::uint32_t rxDescBytes = 128;

/** One RX descriptor slot. */
struct RxSlot
{
    sim::Addr bufAddr = 0;      ///< armed DMA buffer
    std::uint32_t mbufIdx = 0;  ///< driver cookie (mbuf index)
    bool armed = false;         ///< SW handed the slot to HW
    bool inFlight = false;      ///< NIC DMA in progress
    bool dd = false;            ///< descriptor done (HW -> SW)
    net::Packet pkt;            ///< packet landed in the buffer
};

/**
 * The shared RX ring state.
 */
class RxRing
{
  public:
    /**
     * @param descBase Physical base address of the descriptor array.
     * @param size Number of descriptors (power of two not required).
     */
    RxRing(sim::Addr descBase, std::uint32_t size)
        : descBase(descBase), slots(size)
    {
        SIM_ASSERT(size >= 8, "RX ring too small");
    }

    std::uint32_t size() const
    {
        return static_cast<std::uint32_t>(slots.size());
    }

    /** Physical address of descriptor @p idx. */
    sim::Addr
    descAddr(std::uint32_t idx) const
    {
        return descBase + std::uint64_t(idx) * rxDescBytes;
    }

    RxSlot &slot(std::uint32_t idx) { return slots[idx]; }
    const RxSlot &slot(std::uint32_t idx) const { return slots[idx]; }

    /** @{ Hardware side. */

    /** True when the NIC can start filling the next descriptor. */
    bool
    hwCanFill() const
    {
        const RxSlot &s = slots[hwNext];
        return s.armed && !s.inFlight && !s.dd;
    }

    /** Claim the next descriptor for an incoming packet. */
    std::uint32_t
    hwClaim(const net::Packet &pkt)
    {
        SIM_ASSERT(hwCanFill(), "claiming an unavailable descriptor");
        const std::uint32_t idx = hwNext;
        RxSlot &s = slots[idx];
        s.inFlight = true;
        s.pkt = pkt;
        hwNext = (hwNext + 1) % size();
        return idx;
    }

    /** Mark DMA complete: DD becomes visible to software. */
    void
    hwComplete(std::uint32_t idx)
    {
        RxSlot &s = slots[idx];
        SIM_ASSERT(s.inFlight, "completing a descriptor not in flight");
        s.inFlight = false;
        s.dd = true;
    }
    /** @} */

    /** Index of the next descriptor the NIC will claim. */
    std::uint32_t hwHead() const { return hwNext; }

    /** @{ Software (driver) side. */

    /** Index of the next descriptor software will examine. */
    std::uint32_t swHead() const { return swNext; }

    /** True when the next descriptor has completed. */
    bool swReady() const { return slots[swNext].dd; }

    /** Consume the next completed descriptor. */
    std::uint32_t
    swConsume()
    {
        SIM_ASSERT(swReady(), "consuming an incomplete descriptor");
        const std::uint32_t idx = swNext;
        RxSlot &s = slots[idx];
        s.dd = false;
        s.armed = false;
        swNext = (swNext + 1) % size();
        return idx;
    }

    /** Re-arm descriptor @p idx with a fresh buffer. */
    void
    swArm(std::uint32_t idx, sim::Addr bufAddr, std::uint32_t mbufIdx)
    {
        RxSlot &s = slots[idx];
        SIM_ASSERT(!s.armed && !s.inFlight && !s.dd,
                   "re-arming a busy descriptor");
        s.bufAddr = bufAddr;
        s.mbufIdx = mbufIdx;
        s.armed = true;
    }
    /** @} */

    /** Force the head indices (checkpoint restore only). */
    void
    restoreHeads(std::uint32_t hw, std::uint32_t sw)
    {
        SIM_ASSERT(hw < size() && sw < size(),
                   "restoring out-of-range ring heads");
        hwNext = hw;
        swNext = sw;
    }

    /** Armed-and-idle descriptor count (free ring capacity). */
    std::uint32_t
    armedCount() const
    {
        std::uint32_t n = 0;
        for (const auto &s : slots)
            n += (s.armed && !s.inFlight && !s.dd);
        return n;
    }

    /** Completed-but-unconsumed descriptor count (backlog). */
    std::uint32_t
    backlog() const
    {
        std::uint32_t n = 0;
        for (const auto &s : slots)
            n += s.dd;
        return n;
    }

  private:
    sim::Addr descBase;
    std::vector<RxSlot> slots;
    std::uint32_t hwNext = 0;
    std::uint32_t swNext = 0;
};

} // namespace nic

#endif // IDIO_NIC_RX_RING_HH
