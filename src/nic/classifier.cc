/**
 * @file
 * IdioClassifier implementation.
 */

#include "classifier.hh"

#include <algorithm>

#include "sim/simulation.hh"

namespace nic
{

namespace
{

std::uint32_t
bytesPerInterval(double gbps, sim::Tick interval)
{
    // gbps -> bytes per interval.
    const double bytesPerSec = gbps * 1e9 / 8.0;
    return static_cast<std::uint32_t>(bytesPerSec *
                                      sim::ticksToSeconds(interval));
}

} // anonymous namespace

IdioClassifier::IdioClassifier(sim::Simulation &simulation,
                               const std::string &name,
                               FlowDirector &flowDirector,
                               const ClassifierConfig &config,
                               std::uint32_t numCores)
    : sim::SimObject(simulation, name),
      statGroup(simulation.statsRegistry(), name),
      packetsClassified(statGroup, "packetsClassified",
                        "packets run through the classifier"),
      burstsDetected(statGroup, "burstsDetected",
                     "burst-threshold crossings"),
      class1Packets(statGroup, "class1Packets",
                    "packets classified as application class 1"),
      fdir(flowDirector), cfg(config),
      thrBytes(bytesPerInterval(config.rxBurstThresholdGbps,
                                config.counterInterval)),
      counters(numCores, 0), crossedThis(numCores, false),
      crossedPrev(numCores, false),
      // eventq(), not simulation.eventq(): under a split plan the
      // classifier lives on the NIC domain's queue and the counter
      // reset must fire there, not on the uncore queue.
      resetEvent(eventq(), config.counterInterval,
                 [this] { resetCounters(); }, name + ".counterReset")
{
}

void
IdioClassifier::start()
{
    resetEvent.start();
}

Classification
IdioClassifier::classify(const net::Packet &pkt)
{
    ++packetsClassified;

    Classification cls;
    cls.appClass = pkt.dscp >= cfg.class1DscpMin ? 1 : 0;
    if (cls.appClass == 1)
        ++class1Packets;

    cls.destCore = fdir.lookup(pkt.flow);

    auto &counter = counters[cls.destCore];
    counter += pkt.frameBytes;
    if (!crossedThis[cls.destCore] && counter > thrBytes) {
        crossedThis[cls.destCore] = true;
        if (!crossedPrev[cls.destCore]) {
            // A fresh burst: quiet interval followed by a crossing.
            ++burstsDetected;
            cls.burstActive = true;
        }
    }
    return cls;
}

void
IdioClassifier::resetCounters()
{
    std::fill(counters.begin(), counters.end(), 0);
    crossedPrev = crossedThis;
    std::fill(crossedThis.begin(), crossedThis.end(), false);
}

void
IdioClassifier::serialize(ckpt::Serializer &s) const
{
    s.writePodVec(counters);
    s.writeBoolVec(crossedThis);
    s.writeBoolVec(crossedPrev);
    ckpt::serializeEvent(s, resetEvent);
}

void
IdioClassifier::unserialize(ckpt::Deserializer &d)
{
    counters = d.readPodVec<std::uint32_t>();
    crossedThis = d.readBoolVec();
    crossedPrev = d.readBoolVec();
    if (counters.size() != crossedThis.size() ||
        counters.size() != crossedPrev.size()) {
        sim::fatal("ckpt: '%s' per-core vector size mismatch",
                   name().c_str());
    }
    ckpt::unserializeEvent(d, &resetEvent, &eventq());
}

} // namespace nic
