/**
 * @file
 * Nic implementation.
 */

#include "nic.hh"

#include "sim/simulation.hh"

namespace nic
{

Nic::Nic(sim::Simulation &simulation, const std::string &name,
         const NicConfig &config, DmaTarget &target,
         mem::PhysAllocator &alloc, std::uint32_t numCores)
    : sim::SimObject(simulation, name),
      statGroup(simulation.statsRegistry(), name),
      rxPackets(statGroup, "rxPackets", "packets received at the MAC"),
      rxBytes(statGroup, "rxBytes", "bytes received at the MAC"),
      rxDrops(statGroup, "rxDrops",
              "packets dropped because the RX ring was full"),
      txPackets(statGroup, "txPackets", "packets transmitted"),
      txBytes(statGroup, "txBytes", "bytes transmitted"),
      cfg(config), trc(simulation.tracer().registerSource(name)),
      fdir(numCores),
      dma(simulation, name + ".dma", target, config.pcieGBps),
      cls(simulation, name + ".classifier", fdir, config.classifier,
          numCores),
      ring(alloc.allocate(std::uint64_t(config.ringSize) * rxDescBytes,
                          mem::lineSize),
           config.ringSize),
      descWbDelay(sim::nsToTicks(config.descWbDelayNs))
{
}

void
Nic::start()
{
    cls.start();
}

void
Nic::deliver(net::Packet pkt)
{
    pkt.nicArrival = now();
    pkt.id = tracer().newPacketId();
    ++rxPackets;
    rxBytes += pkt.frameBytes;
    IDIO_TRACE_INSTANT(trc, trace::EventKind::NicRx, pkt.nicArrival,
                       pkt.id, pkt.dscp, pkt.frameBytes);
    if (rxTap)
        rxTap(pkt.nicArrival, pkt);

    if (!ring.hwCanFill()) {
        ++rxDrops;
        IDIO_TRACE_INSTANT(trc, trace::EventKind::NicDrop, now(),
                           pkt.id, 0, pkt.frameBytes);
        return;
    }

    const Classification pktCls = cls.classify(pkt);
    IDIO_TRACE_INSTANT(trc, trace::EventKind::NicClassify, now(),
                       pkt.id, pktCls.appClass, pktCls.destCore);
    const std::uint32_t idx = ring.hwClaim(pkt);
    const RxSlot &slot = ring.slot(idx);

    const std::uint32_t lines = pkt.lines();
    for (std::uint32_t i = 0; i < lines; ++i) {
        dma.enqueueWrite(slot.bufAddr + std::uint64_t(i) * mem::lineSize,
                         cls.tlpFor(pktCls, i == 0));
    }
    const sim::Tick dmaStart = now();
    dma.enqueueCallback([this, idx, pktCls, dmaStart,
                         pktId = pkt.id, lines,
                         bufAddr = slot.bufAddr] {
        IDIO_TRACE_COMPLETE(trc, trace::EventKind::NicDmaPayload,
                            dmaStart, now() - dmaStart, pktId, lines,
                            bufAddr);
        startDescriptorWriteback(idx, pktCls);
    });
}

void
Nic::startDescriptorWriteback(std::uint32_t descIdx,
                              const Classification &pktCls)
{
    // Descriptor writeback happens a little after the payload DMA
    // (hardware batches completions); the descriptor lines are normal
    // DDIO writes tagged class 0 so they never take the direct-DRAM
    // path.
    TlpMeta meta;
    meta.appClass = 0;
    meta.isHeader = false;
    meta.isBurst = pktCls.burstActive;
    meta.destCore = pktCls.destCore;

    eventq().scheduleIn(descWbDelay, [this, descIdx, meta] {
        const sim::Addr base = ring.descAddr(descIdx);
        const std::uint64_t descLines =
            mem::linesSpanned(base, rxDescBytes);
        for (std::uint64_t i = 0; i < descLines; ++i) {
            dma.enqueueWrite(base + i * mem::lineSize, meta);
        }
        dma.enqueueCallback([this, descIdx] {
            ring.hwComplete(descIdx);
            IDIO_TRACE_INSTANT(trc, trace::EventKind::NicDescWb, now(),
                               ring.slot(descIdx).pkt.id, 0, descIdx);
        });
    });
}

void
Nic::transmit(sim::Addr bufAddr, std::uint32_t frameBytes,
              std::function<void()> txDone)
{
    const std::uint64_t lines = mem::linesSpanned(bufAddr, frameBytes);
    for (std::uint64_t i = 0; i < lines; ++i)
        dma.enqueueRead(bufAddr + i * mem::lineSize);
    ++txPackets;
    txBytes += frameBytes;
    if (txDone)
        dma.enqueueCallback(std::move(txDone));
}

} // namespace nic
