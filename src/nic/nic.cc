/**
 * @file
 * Nic implementation.
 */

#include "nic.hh"

#include "sim/simulation.hh"

namespace nic
{

namespace
{

/** Pack a Classification into one DmaArgs slot (and back). */
std::uint64_t
packClassification(const Classification &cls)
{
    return std::uint64_t(cls.appClass) |
           (std::uint64_t(cls.destCore) << 8) |
           (std::uint64_t(cls.burstActive ? 1 : 0) << 40);
}

Classification
unpackClassification(std::uint64_t v)
{
    Classification cls;
    cls.appClass = static_cast<std::uint8_t>(v & 0xff);
    cls.destCore = static_cast<sim::CoreId>((v >> 8) & 0xffffffffu);
    cls.burstActive = ((v >> 40) & 1) != 0;
    return cls;
}

/**
 * Pack (descriptor index, queue) into one DmaArgs slot. Queue 0 packs
 * to the bare index, so single-queue DMA argument streams are
 * bit-identical to the historical ones.
 */
std::uint64_t
packDescRef(std::uint32_t idx, std::uint32_t queue)
{
    return std::uint64_t(idx) | (std::uint64_t(queue) << 32);
}

std::uint32_t descRefIdx(std::uint64_t v)
{
    return static_cast<std::uint32_t>(v & 0xffffffffu);
}

std::uint32_t descRefQueue(std::uint64_t v)
{
    return static_cast<std::uint32_t>(v >> 32);
}

} // anonymous namespace

Nic::Nic(sim::Simulation &simulation, const std::string &name,
         const NicConfig &config, DmaTarget &target,
         mem::PhysAllocator &alloc, std::uint32_t numCores)
    : sim::SimObject(simulation, name),
      statGroup(simulation.statsRegistry(), name),
      rxPackets(statGroup, "rxPackets", "packets received at the MAC"),
      rxBytes(statGroup, "rxBytes", "bytes received at the MAC"),
      rxDrops(statGroup, "rxDrops",
              "packets dropped because the RX ring was full"),
      txPackets(statGroup, "txPackets", "packets transmitted"),
      txBytes(statGroup, "txBytes", "bytes transmitted"),
      cfg(config), trc(simulation.tracer().registerSource(name)),
      fdir(numCores, 8192, config.rssTableEntries, config.numQueues),
      dma(simulation, name + ".dma", target, config.pcieGBps),
      cls(simulation, name + ".classifier", fdir, config.classifier,
          numCores),
      descWbDelay(sim::nsToTicks(config.descWbDelayNs))
{
    if (cfg.numQueues == 0)
        sim::fatal("NIC '%s' needs at least one RX queue",
                   name.c_str());
    rings.reserve(cfg.numQueues);
    for (std::uint32_t q = 0; q < cfg.numQueues; ++q) {
        rings.emplace_back(
            alloc.allocate(std::uint64_t(cfg.ringSize) * rxDescBytes,
                           mem::lineSize),
            cfg.ringSize);
    }
    queueRx.assign(cfg.numQueues, 0);
    queueDrops.assign(cfg.numQueues, 0);

    payloadDoneHandler = dma.registerHandler(
        name + ".payloadDone",
        [this](const DmaArgs &args) { onPayloadDone(args); });
    descCompleteHandler = dma.registerHandler(
        name + ".descComplete", [this](const DmaArgs &args) {
            onDescComplete(descRefIdx(args[0]),
                           descRefQueue(args[0]));
        });
}

void
Nic::start()
{
    cls.start();
}

void
Nic::deliver(net::Packet pkt)
{
    pkt.nicArrival = now();
    pkt.id = tracer().newPacketId();
    ++rxPackets;
    rxBytes += pkt.frameBytes;
    IDIO_TRACE_INSTANT(trc, trace::EventKind::NicRx, pkt.nicArrival,
                       pkt.id, pkt.dscp, pkt.frameBytes);
    if (rxTap)
        rxTap(pkt.nicArrival, pkt);

    // Queue selection happens before the ring-full check, as in real
    // multi-queue hardware: the steering decision (EP/ATR filter or
    // RSS hash) picks the ring whose occupancy then decides the drop.
    // With one queue this degenerates to the historical single-ring
    // path, byte-for-byte.
    const std::uint32_t q =
        cfg.numQueues > 1 ? fdir.lookup(pkt.flow) % cfg.numQueues : 0;
    RxRing &ring = rings[q];

    if (!ring.hwCanFill()) {
        ++rxDrops;
        ++queueDrops[q];
        IDIO_TRACE_INSTANT(trc, trace::EventKind::NicDrop, now(),
                           pkt.id, q, pkt.frameBytes);
        return;
    }

    const Classification pktCls = cls.classify(pkt);
    IDIO_TRACE_INSTANT(trc, trace::EventKind::NicClassify, now(),
                       pkt.id, pktCls.appClass, pktCls.destCore);
    const std::uint32_t idx = ring.hwClaim(pkt);
    ++queueRx[q];
    const RxSlot &slot = ring.slot(idx);

    const std::uint32_t lines = pkt.lines();
    for (std::uint32_t i = 0; i < lines; ++i) {
        dma.enqueueWrite(slot.bufAddr + std::uint64_t(i) * mem::lineSize,
                         cls.tlpFor(pktCls, i == 0));
    }
    const sim::Tick dmaStart = now();
    dma.enqueueCallback(payloadDoneHandler,
                        DmaArgs{packDescRef(idx, q),
                                packClassification(pktCls),
                                dmaStart, pkt.id, lines,
                                slot.bufAddr});
}

void
Nic::onPayloadDone(const DmaArgs &args)
{
    const std::uint32_t idx = descRefIdx(args[0]);
    const std::uint32_t queue = descRefQueue(args[0]);
    const Classification pktCls = unpackClassification(args[1]);
    [[maybe_unused]] const sim::Tick dmaStart = args[2];
    [[maybe_unused]] const std::uint64_t pktId = args[3];
    [[maybe_unused]] const auto lines =
        static_cast<std::uint32_t>(args[4]);
    [[maybe_unused]] const sim::Addr bufAddr = args[5];
    IDIO_TRACE_COMPLETE(trc, trace::EventKind::NicDmaPayload, dmaStart,
                        now() - dmaStart, pktId, lines, bufAddr);
    startDescriptorWriteback(idx, queue, pktCls);
}

void
Nic::startDescriptorWriteback(std::uint32_t descIdx,
                              std::uint32_t queue,
                              const Classification &pktCls)
{
    // Descriptor writeback happens a little after the payload DMA
    // (hardware batches completions); the descriptor lines are normal
    // DDIO writes tagged class 0 so they never take the direct-DRAM
    // path.
    TlpMeta meta;
    meta.appClass = 0;
    meta.isHeader = false;
    meta.isBurst = pktCls.burstActive;
    meta.destCore = pktCls.destCore;

    // The delay is a constant, so pending writebacks complete in FIFO
    // order; the scheduled one-shot pops the deque's front. Tracking
    // them explicitly (instead of capturing descIdx/meta in the
    // closure) is what makes in-flight writebacks checkpointable.
    pendingWbs.push_back(
        PendingWb{now() + descWbDelay, 0, descIdx, queue, meta});
    pendingWbs.back().seq =
        eventq().scheduleIn(descWbDelay, [this] { descWbFire(); });
}

void
Nic::descWbFire()
{
    SIM_ASSERT(!pendingWbs.empty(),
               "descriptor writeback fired with none pending");
    const PendingWb wb = pendingWbs.front();
    pendingWbs.pop_front();

    const sim::Addr base = rings[wb.queue].descAddr(wb.descIdx);
    const std::uint64_t descLines = mem::linesSpanned(base, rxDescBytes);
    for (std::uint64_t i = 0; i < descLines; ++i) {
        dma.enqueueWrite(base + i * mem::lineSize, wb.meta);
    }
    dma.enqueueCallback(descCompleteHandler,
                        DmaArgs{packDescRef(wb.descIdx, wb.queue),
                                0, 0, 0, 0, 0});
}

void
Nic::onDescComplete(std::uint32_t descIdx, std::uint32_t queue)
{
    RxRing &ring = rings[queue];
    ring.hwComplete(descIdx);
    IDIO_TRACE_INSTANT(trc, trace::EventKind::NicDescWb, now(),
                       ring.slot(descIdx).pkt.id, queue, descIdx);
    if (descReady)
        descReady(queue, descIdx);
}

void
Nic::transmit(sim::Addr bufAddr, std::uint32_t frameBytes,
              std::function<void()> txDone)
{
    const std::uint64_t lines = mem::linesSpanned(bufAddr, frameBytes);
    for (std::uint64_t i = 0; i < lines; ++i)
        dma.enqueueRead(bufAddr + i * mem::lineSize);
    ++txPackets;
    txBytes += frameBytes;
    if (txDone)
        dma.enqueueCallback(std::move(txDone));
}

void
Nic::transmit(sim::Addr bufAddr, std::uint32_t frameBytes,
              std::uint32_t txDoneHandler, const DmaArgs &args)
{
    const std::uint64_t lines = mem::linesSpanned(bufAddr, frameBytes);
    for (std::uint64_t i = 0; i < lines; ++i)
        dma.enqueueRead(bufAddr + i * mem::lineSize);
    ++txPackets;
    txBytes += frameBytes;
    dma.enqueueCallback(txDoneHandler, args);
}

void
Nic::serialize(ckpt::Serializer &s) const
{
    s.writeU32(numQueues());
    for (const RxRing &ring : rings) {
        // Ring indices and per-slot state (field by field: RxSlot
        // holds a Packet, which has padding).
        s.writeU32(ring.hwHead());
        s.writeU32(ring.swHead());
        s.writeU32(ring.size());
        for (std::uint32_t i = 0; i < ring.size(); ++i) {
            const RxSlot &slot = ring.slot(i);
            s.writeU64(slot.bufAddr);
            s.writeU32(slot.mbufIdx);
            s.writeBool(slot.armed);
            s.writeBool(slot.inFlight);
            s.writeBool(slot.dd);
            net::serializePacket(s, slot.pkt);
        }
    }
    for (std::uint64_t v : queueRx)
        s.writeU64(v);
    for (std::uint64_t v : queueDrops)
        s.writeU64(v);

    // In-flight descriptor writebacks, front (oldest) first.
    s.writeU64(pendingWbs.size());
    for (const PendingWb &wb : pendingWbs) {
        s.writeTick(wb.when);
        s.writeU64(wb.seq);
        s.writeU32(wb.descIdx);
        s.writeU32(wb.queue);
        serializeTlpMeta(s, wb.meta);
    }
}

void
Nic::unserialize(ckpt::Deserializer &d)
{
    const std::uint32_t queues = d.readU32();
    if (queues != numQueues())
        sim::fatal("ckpt: '%s' queue count mismatch (checkpoint %u, "
                   "config %u)",
                   name().c_str(), queues, numQueues());
    for (RxRing &ring : rings) {
        const std::uint32_t hw = d.readU32();
        const std::uint32_t sw = d.readU32();
        const std::uint32_t n = d.readU32();
        if (n != ring.size())
            sim::fatal("ckpt: '%s' ring size mismatch (checkpoint %u, "
                       "config %u)",
                       name().c_str(), n, ring.size());
        ring.restoreHeads(hw, sw);
        for (std::uint32_t i = 0; i < n; ++i) {
            RxSlot &slot = ring.slot(i);
            slot.bufAddr = d.readU64();
            slot.mbufIdx = d.readU32();
            slot.armed = d.readBool();
            slot.inFlight = d.readBool();
            slot.dd = d.readBool();
            slot.pkt = net::unserializePacket(d);
        }
    }
    for (std::uint64_t &v : queueRx)
        v = d.readU64();
    for (std::uint64_t &v : queueDrops)
        v = d.readU64();

    pendingWbs.clear();
    const std::uint64_t wbs = d.readU64();
    for (std::uint64_t i = 0; i < wbs; ++i) {
        PendingWb wb;
        wb.when = d.readTick();
        wb.seq = d.readU64();
        wb.descIdx = d.readU32();
        wb.queue = d.readU32();
        wb.meta = unserializeTlpMeta(d);
        pendingWbs.push_back(wb);
        d.deferOneShot(wb.seq, wb.when, [this] { descWbFire(); },
                       &eventq());
    }
}

} // namespace nic
