/**
 * @file
 * Intel Ethernet Flow Director model (paper Sec. II-C).
 *
 * Flow Director steers incoming packets to the core running their
 * consumer. Two modes are modelled:
 *
 *  - EP (Externally Programmed): exact 5-tuple rules installed by the
 *    administrator ("perfect match" filters).
 *  - ATR (Application Targeting Routing): a hashed Filter Table (8k
 *    entries by default) populated by sampling outbound traffic; RX
 *    lookups hash the 5-tuple and read the learned destination core.
 *
 * Packets matching neither fall back to RSS. Two RSS variants exist:
 * the legacy direct modulus (hash % numCores, the historical default,
 * kept byte-for-byte) and a real indirection table (RETA) of
 * power-of-two size whose entries map hash buckets to RX queues —
 * the Niantic/Fortville model, enabled by passing rssTableEntries > 0.
 */

#ifndef IDIO_NIC_FLOW_DIRECTOR_HH
#define IDIO_NIC_FLOW_DIRECTOR_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/flow.hh"
#include "sim/types.hh"

namespace nic
{

/**
 * Flow-to-core steering table.
 */
class FlowDirector
{
  public:
    /**
     * @param numCores RSS fallback modulus (legacy mode) and default
     *                 queue count for the RETA fill.
     * @param filterTableEntries ATR table size (power of two).
     * @param rssTableEntries RETA size (power of two); 0 keeps the
     *                        legacy direct-modulus RSS fallback.
     * @param rssQueues Queues the default RETA fill round-robins
     *                  over; 0 means numCores.
     */
    explicit FlowDirector(std::uint32_t numCores,
                          std::uint32_t filterTableEntries = 8192,
                          std::uint32_t rssTableEntries = 0,
                          std::uint32_t rssQueues = 0);

    /** Install an EP perfect-match rule. */
    void addRule(const net::FiveTuple &flow, sim::CoreId core);

    /** Remove an EP rule; no-op when absent. */
    void removeRule(const net::FiveTuple &flow);

    /**
     * ATR learning: record that @p core transmitted on @p flow, so RX
     * traffic of the same flow is steered back to it.
     */
    void learn(const net::FiveTuple &flow, sim::CoreId core);

    /** Destination core for an RX packet. */
    sim::CoreId lookup(const net::FiveTuple &flow) const;

    /** Number of installed EP rules. */
    std::size_t ruleCount() const { return rules.size(); }

    /** Number of populated ATR entries. */
    std::size_t learnedCount() const;

    /**
     * RSS queue for @p flow, ignoring EP/ATR state: the pure hash →
     * RETA (or legacy modulus) mapping. This is what a multi-queue
     * NIC uses for ring selection.
     */
    std::uint32_t rssQueue(const net::FiveTuple &flow) const;

    /** Overwrite the RETA (lengths must match; RETA mode only). */
    void setIndirection(const std::vector<std::uint32_t> &table);

    /** The RETA; empty in legacy direct-modulus mode. */
    const std::vector<std::uint32_t> &indirection() const
    {
        return reta;
    }

  private:
    std::uint32_t
    tableIndex(const net::FiveTuple &flow) const
    {
        return net::toeplitzHash(flow) & (tableSize - 1);
    }

    std::uint32_t numCores;
    std::uint32_t tableSize;
    std::unordered_map<net::FiveTuple, sim::CoreId, net::FiveTupleHash>
        rules;
    std::vector<std::int32_t> filterTable; // -1 = unpopulated
    std::vector<std::uint32_t> reta;       // empty = legacy modulus
};

} // namespace nic

#endif // IDIO_NIC_FLOW_DIRECTOR_HH
