/**
 * @file
 * NIC top level.
 *
 * One Nic models one 100 Gbps Ethernet port: it accepts packets from a
 * traffic generator, claims RX descriptors, runs the IDIO classifier,
 * and streams cacheline DMA writes (payload first, then the descriptor
 * writeback after a configurable completion delay) through the DMA
 * engine to the root complex. The TX path DMA-reads buffers for
 * zero-copy forwarding NFs.
 */

#ifndef IDIO_NIC_NIC_HH
#define IDIO_NIC_NIC_HH

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "mem/phys_alloc.hh"
#include "net/packet.hh"
#include "nic/classifier.hh"
#include "nic/dma.hh"
#include "nic/flow_director.hh"
#include "nic/rx_ring.hh"
#include "sim/sim_object.hh"
#include "stats/registry.hh"
#include "trace/tracer.hh"

namespace nic
{

/** NIC configuration. */
struct NicConfig
{
    /** RX descriptor ring entries per queue (DPDK default 1024). */
    std::uint32_t ringSize = 1024;

    /**
     * RX queues (rings) on the port. With one queue the port behaves
     * exactly as the historical single-ring model; with more, the
     * flow director's steering decision selects the ring before the
     * ring-full drop check, like real multi-queue hardware.
     */
    std::uint32_t numQueues = 1;

    /**
     * RSS indirection table (RETA) entries; 0 keeps the legacy
     * direct-modulus RSS fallback. See FlowDirector.
     */
    std::uint32_t rssTableEntries = 0;

    /** Effective PCIe bandwidth of the port, GB/s. */
    double pcieGBps = 32.0;

    /**
     * Delay between the end of a packet's payload DMA and the start of
     * its descriptor writeback (models the NIC's descriptor batching;
     * the paper observes ~1.9 us from first DMA to execution start).
     */
    double descWbDelayNs = 1500.0;

    ClassifierConfig classifier;
};

/**
 * One Ethernet port with IDIO-capable DMA.
 */
class Nic : public sim::SimObject
{
    stats::StatGroup statGroup;

  public:
    /**
     * @param target Root-complex DMA handler.
     * @param alloc Allocator for descriptor ring memory.
     * @param numCores Flow-steering fallback modulus.
     */
    Nic(sim::Simulation &simulation, const std::string &name,
        const NicConfig &config, DmaTarget &target,
        mem::PhysAllocator &alloc, std::uint32_t numCores);

    /** Start periodic machinery (classifier counters). */
    void start();

    /** Ingress: a packet arrives at the MAC. */
    void deliver(net::Packet pkt);

    /**
     * Observation tap on the ingress path (e.g.\ a pcap recorder);
     * invoked for every delivered packet, drops included.
     */
    using RxTap = std::function<void(sim::Tick, const net::Packet &)>;
    void setRxTap(RxTap tap) { rxTap = std::move(tap); }

    /**
     * Split-link mode: invoked when a descriptor writeback completes
     * (the DD bit just set). The harness reads the slot (still in the
     * NIC's domain) and ships a DescReady message to the owning core's
     * PMD over the PCIe link.
     */
    using DescReadyHook =
        std::function<void(std::uint32_t queue, std::uint32_t descIdx)>;
    void setDescReadyHook(DescReadyHook h) { descReady = std::move(h); }

    /**
     * Egress: DMA-read a frame for transmission.
     * @param txDone invoked when the last line has been read.
     * Anonymous-callback variant (not checkpointable while pending);
     * NFs that transmit register a named handler and use the overload.
     */
    void transmit(sim::Addr bufAddr, std::uint32_t frameBytes,
                  std::function<void()> txDone);

    /** Egress with a named completion handler (checkpointable). */
    void transmit(sim::Addr bufAddr, std::uint32_t frameBytes,
                  std::uint32_t txDoneHandler, const DmaArgs &args);

    /** RX ring of queue @p q (queue 0 is the legacy single ring). */
    RxRing &
    rxRing(std::uint32_t q = 0)
    {
        SIM_ASSERT(q < rings.size(), "rxRing: queue out of range");
        return rings[q];
    }

    std::uint32_t numQueues() const
    {
        return static_cast<std::uint32_t>(rings.size());
    }

    /** @{ Per-queue delivery counters (accepted / ring-full drops). */
    std::uint64_t queueRxPackets(std::uint32_t q) const
    {
        return queueRx.at(q);
    }
    std::uint64_t queueDropPackets(std::uint32_t q) const
    {
        return queueDrops.at(q);
    }
    /** @} */

    FlowDirector &flowDirector() { return fdir; }
    IdioClassifier &classifier() { return cls; }
    DmaEngine &dmaEngine() { return dma; }
    const NicConfig &config() const { return cfg; }

    void serialize(ckpt::Serializer &s) const override;
    void unserialize(ckpt::Deserializer &d) override;

    /** @{ Counters. */
    stats::Counter rxPackets;
    stats::Counter rxBytes;
    stats::Counter rxDrops;
    stats::Counter txPackets;
    stats::Counter txBytes;
    /** @} */

  private:
    /**
     * A descriptor writeback waiting for its batching delay to elapse.
     * The delay is a constant, so pending writebacks fire in FIFO
     * order: the scheduled one-shots pop the front of the deque, and a
     * checkpoint serializes the deque plus each entry's schedule.
     */
    struct PendingWb
    {
        sim::Tick when;
        std::uint64_t seq;
        std::uint32_t descIdx;
        std::uint32_t queue;
        TlpMeta meta;
    };

    void startDescriptorWriteback(std::uint32_t descIdx,
                                  std::uint32_t queue,
                                  const Classification &pktCls);
    void descWbFire();
    void onPayloadDone(const DmaArgs &args);
    void onDescComplete(std::uint32_t descIdx, std::uint32_t queue);

    NicConfig cfg;
    RxTap rxTap;
    DescReadyHook descReady;
    trace::Source trc;
    FlowDirector fdir;
    DmaEngine dma;
    IdioClassifier cls;
    std::vector<RxRing> rings;
    std::vector<std::uint64_t> queueRx;
    std::vector<std::uint64_t> queueDrops;
    sim::Tick descWbDelay;
    std::deque<PendingWb> pendingWbs;
    std::uint32_t payloadDoneHandler;
    std::uint32_t descCompleteHandler;
};

} // namespace nic

#endif // IDIO_NIC_NIC_HH
