/**
 * @file
 * Machine-checked invariants of the NIC RX path.
 *
 * The descriptor ring is a hardware/software contract with a strict
 * state machine per slot (idle -> armed -> in-flight -> done -> idle)
 * and a strict ordering discipline (the NIC fills armed descriptors in
 * order; software consumes completed ones in order). The rules here
 * let the runtime InvariantChecker prove both after every sweep:
 *
 *  - slot legality: a slot is never simultaneously in-flight and
 *    done, and never in-flight or done without having been armed;
 *  - posted buffers: DMA only ever targets a posted (armed, non-null)
 *    buffer address;
 *  - window ordering: exactly the descriptors between the software
 *    head and the hardware head are busy (in-flight or done).
 */

#ifndef IDIO_NIC_INVARIANTS_HH
#define IDIO_NIC_INVARIANTS_HH

#include <string>

#include "sim/checker/invariant_checker.hh"

namespace nic
{

class Nic;
class RxRing;

/**
 * Check every RX-ring invariant on @p ring, reporting violations with
 * @p label as the ring's name. Exposed separately so unit tests can
 * drive it against hand-corrupted rings.
 */
void checkRxRing(const RxRing &ring, const std::string &label,
                 sim::InvariantReport &report);

/** Register the RX-ring invariants of @p nic on @p checker. */
void registerNicInvariants(sim::InvariantChecker &checker, Nic &nic);

} // namespace nic

#endif // IDIO_NIC_INVARIANTS_HH
