/**
 * @file
 * FlowDirector implementation.
 */

#include "flow_director.hh"

#include "sim/logging.hh"

namespace nic
{

FlowDirector::FlowDirector(std::uint32_t numCores,
                           std::uint32_t filterTableEntries)
    : numCores(numCores), tableSize(filterTableEntries),
      filterTable(filterTableEntries, -1)
{
    if (numCores == 0)
        sim::fatal("FlowDirector needs at least one core");
    if (tableSize == 0 || (tableSize & (tableSize - 1)) != 0)
        sim::fatal("filter table size must be a power of two");
}

void
FlowDirector::addRule(const net::FiveTuple &flow, sim::CoreId core)
{
    rules[flow] = core;
}

void
FlowDirector::removeRule(const net::FiveTuple &flow)
{
    rules.erase(flow);
}

void
FlowDirector::learn(const net::FiveTuple &flow, sim::CoreId core)
{
    filterTable[tableIndex(flow)] = static_cast<std::int32_t>(core);
}

sim::CoreId
FlowDirector::lookup(const net::FiveTuple &flow) const
{
    auto it = rules.find(flow);
    if (it != rules.end())
        return it->second;

    const std::int32_t learned = filterTable[tableIndex(flow)];
    if (learned >= 0)
        return static_cast<sim::CoreId>(learned);

    return net::toeplitzHash(flow) % numCores;
}

std::size_t
FlowDirector::learnedCount() const
{
    std::size_t n = 0;
    for (auto e : filterTable)
        n += (e >= 0);
    return n;
}

} // namespace nic
