/**
 * @file
 * FlowDirector implementation.
 */

#include "flow_director.hh"

#include "sim/logging.hh"

namespace nic
{

FlowDirector::FlowDirector(std::uint32_t numCores,
                           std::uint32_t filterTableEntries,
                           std::uint32_t rssTableEntries,
                           std::uint32_t rssQueues)
    : numCores(numCores), tableSize(filterTableEntries),
      filterTable(filterTableEntries, -1)
{
    if (numCores == 0)
        sim::fatal("FlowDirector needs at least one core");
    if (tableSize == 0 || (tableSize & (tableSize - 1)) != 0)
        sim::fatal("filter table size must be a power of two");
    if (rssTableEntries != 0) {
        if ((rssTableEntries & (rssTableEntries - 1)) != 0)
            sim::fatal("RSS table size must be a power of two");
        if (rssQueues == 0)
            rssQueues = numCores;
        // Default fill round-robins queues over the table, the same
        // layout drivers program at device init.
        reta.resize(rssTableEntries);
        for (std::uint32_t i = 0; i < rssTableEntries; ++i)
            reta[i] = i % rssQueues;
    }
}

void
FlowDirector::addRule(const net::FiveTuple &flow, sim::CoreId core)
{
    rules[flow] = core;
}

void
FlowDirector::removeRule(const net::FiveTuple &flow)
{
    rules.erase(flow);
}

void
FlowDirector::learn(const net::FiveTuple &flow, sim::CoreId core)
{
    filterTable[tableIndex(flow)] = static_cast<std::int32_t>(core);
}

sim::CoreId
FlowDirector::lookup(const net::FiveTuple &flow) const
{
    auto it = rules.find(flow);
    if (it != rules.end())
        return it->second;

    const std::int32_t learned = filterTable[tableIndex(flow)];
    if (learned >= 0)
        return static_cast<sim::CoreId>(learned);

    return rssQueue(flow);
}

std::uint32_t
FlowDirector::rssQueue(const net::FiveTuple &flow) const
{
    const std::uint32_t hash = net::toeplitzHash(flow);
    if (reta.empty())
        return hash % numCores; // legacy direct modulus
    return reta[hash & (static_cast<std::uint32_t>(reta.size()) - 1)];
}

void
FlowDirector::setIndirection(const std::vector<std::uint32_t> &table)
{
    if (reta.empty())
        sim::fatal("setIndirection: flow director is in legacy RSS "
                   "mode (no RETA)");
    if (table.size() != reta.size())
        sim::fatal("setIndirection: size mismatch (RETA %zu, new %zu)",
                   reta.size(), table.size());
    reta = table;
}

std::size_t
FlowDirector::learnedCount() const
{
    std::size_t n = 0;
    for (auto e : filterTable)
        n += (e >= 0);
    return n;
}

} // namespace nic
