/**
 * @file
 * NIC RX-ring invariant implementations.
 */

#include "invariants.hh"

#include "nic/nic.hh"
#include "nic/rx_ring.hh"

namespace nic
{

namespace
{

std::string
slotDesc(const std::string &label, std::uint32_t idx)
{
    return label + " slot " + std::to_string(idx);
}

} // namespace

void
checkRxRing(const RxRing &ring, const std::string &label,
            sim::InvariantReport &report)
{
    const std::uint32_t n = ring.size();
    std::uint32_t busyCount = 0;

    // Per-slot state-machine legality.
    for (std::uint32_t i = 0; i < n; ++i) {
        const RxSlot &s = ring.slot(i);
        if (s.inFlight && s.dd) {
            report.fail(slotDesc(label, i) +
                        " is both in-flight and done");
        }
        if ((s.inFlight || s.dd) && !s.armed) {
            report.fail(slotDesc(label, i) +
                        " is busy without being armed (state machine "
                        "violated)");
        }
        if (s.inFlight && s.bufAddr == 0) {
            report.fail(slotDesc(label, i) +
                        " has DMA in flight into an unposted buffer");
        }
        busyCount += (s.inFlight || s.dd);
    }

    // Window ordering: walking from the software head, the busy
    // descriptors (claimed but not yet consumed) occupy exactly the
    // range up to the hardware head. hwHead == swHead is legal only
    // when the window is completely empty or completely full.
    const std::uint32_t span =
        (ring.hwHead() + n - ring.swHead()) % n;
    if (span == 0 && busyCount != 0 && busyCount != n) {
        report.fail(label + ": hw and sw heads coincide at " +
                    std::to_string(ring.swHead()) + " but " +
                    std::to_string(busyCount) + "/" +
                    std::to_string(n) + " descriptors are busy");
        return;
    }
    const std::uint32_t window = (span == 0 && busyCount == n) ? n
                                                               : span;
    for (std::uint32_t j = 0; j < n; ++j) {
        const std::uint32_t idx = (ring.swHead() + j) % n;
        const RxSlot &s = ring.slot(idx);
        const bool busy = s.inFlight || s.dd;
        if (j < window && !busy) {
            report.fail(slotDesc(label, idx) +
                        " is inside the hw/sw window but idle "
                        "(ordering violated)");
        } else if (j >= window && busy) {
            report.fail(slotDesc(label, idx) +
                        " is outside the hw/sw window but busy "
                        "(ordering violated)");
        }
    }
}

void
registerNicInvariants(sim::InvariantChecker &checker, Nic &nic)
{
    const std::string label = nic.name() + ".rx-ring";
    checker.registerInvariant(
        "nic.rx-ring[" + nic.name() + "]",
        [&nic, label](sim::InvariantReport &r) {
            for (std::uint32_t q = 0; q < nic.numQueues(); ++q) {
                const std::string qLabel =
                    nic.numQueues() > 1
                        ? label + "[q" + std::to_string(q) + "]"
                        : label;
                checkRxRing(nic.rxRing(q), qLabel, r);
            }
        });
}

} // namespace nic
