/**
 * @file
 * DmaEngine implementation.
 */

#include "dma.hh"

#include <algorithm>

#include "sim/simulation.hh"

namespace nic
{

DmaEngine::DmaEngine(sim::Simulation &simulation, const std::string &name,
                     DmaTarget &target, double pcieGBps)
    : sim::SimObject(simulation, name),
      statGroup(simulation.statsRegistry(), name),
      linesWritten(statGroup, "linesWritten",
                   "inbound DMA cachelines written"),
      linesRead(statGroup, "linesRead", "outbound DMA cachelines read"),
      callbacks(statGroup, "callbacks", "completion callbacks fired"),
      target(target), pumpEvent(*this)
{
    const double ns = static_cast<double>(mem::lineSize) / pcieGBps;
    lineTime = std::max<sim::Tick>(1, sim::nsToTicks(ns));
}

DmaEngine::~DmaEngine()
{
    if (pumpEvent.scheduled())
        eventq().deschedule(&pumpEvent);
}

void
DmaEngine::enqueueWrite(sim::Addr addr, const TlpMeta &meta)
{
    ops.push_back(DmaOp{DmaOp::Kind::WriteLine, mem::lineAlign(addr),
                        meta, {}});
    schedulePump();
}

void
DmaEngine::enqueueRead(sim::Addr addr)
{
    ops.push_back(
        DmaOp{DmaOp::Kind::ReadLine, mem::lineAlign(addr), {}, {}});
    schedulePump();
}

void
DmaEngine::enqueueCallback(std::function<void()> cb)
{
    ops.push_back(DmaOp{DmaOp::Kind::Callback, 0, {}, std::move(cb)});
    schedulePump();
}

void
DmaEngine::schedulePump()
{
    if (!pumpEvent.scheduled() && !ops.empty())
        eventq().scheduleIn(&pumpEvent, 0);
}

void
DmaEngine::pump()
{
    // Run consecutive callbacks for free; transfers occupy the link
    // for lineTime each.
    while (!ops.empty() &&
           ops.front().kind == DmaOp::Kind::Callback) {
        auto cb = std::move(ops.front().cb);
        ops.pop_front();
        ++callbacks;
        cb();
    }

    if (ops.empty())
        return;

    DmaOp op = std::move(ops.front());
    ops.pop_front();
    switch (op.kind) {
      case DmaOp::Kind::WriteLine:
        target.dmaWrite(op.addr, op.meta);
        ++linesWritten;
        break;
      case DmaOp::Kind::ReadLine:
        target.dmaRead(op.addr);
        ++linesRead;
        break;
      case DmaOp::Kind::Callback:
        break; // unreachable
    }

    // Re-arm after the link occupancy interval; the pending event also
    // represents "link busy until then" for later enqueues.
    eventq().scheduleIn(&pumpEvent, lineTime);
}

} // namespace nic
