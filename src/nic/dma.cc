/**
 * @file
 * DmaEngine implementation.
 */

#include "dma.hh"

#include <algorithm>

#include "sim/simulation.hh"

namespace nic
{

DmaEngine::DmaEngine(sim::Simulation &simulation, const std::string &name,
                     DmaTarget &target, double pcieGBps)
    : sim::SimObject(simulation, name),
      statGroup(simulation.statsRegistry(), name),
      linesWritten(statGroup, "linesWritten",
                   "inbound DMA cachelines written"),
      linesRead(statGroup, "linesRead", "outbound DMA cachelines read"),
      callbacks(statGroup, "callbacks", "completion callbacks fired"),
      target(target), pumpEvent(*this)
{
    const double ns = static_cast<double>(mem::lineSize) / pcieGBps;
    lineTime = std::max<sim::Tick>(1, sim::nsToTicks(ns));
}

DmaEngine::~DmaEngine()
{
    if (pumpEvent.scheduled())
        eventq().deschedule(&pumpEvent);
}

void
DmaEngine::enqueueWrite(sim::Addr addr, const TlpMeta &meta)
{
    ops.push_back(DmaOp{DmaOp::Kind::WriteLine, mem::lineAlign(addr),
                        meta, {}});
    schedulePump();
}

void
DmaEngine::enqueueRead(sim::Addr addr)
{
    ops.push_back(
        DmaOp{DmaOp::Kind::ReadLine, mem::lineAlign(addr), {}, {}});
    schedulePump();
}

void
DmaEngine::enqueueCallback(std::function<void()> cb)
{
    DmaOp op;
    op.kind = DmaOp::Kind::Callback;
    op.cb = std::move(cb);
    ops.push_back(std::move(op));
    schedulePump();
}

std::uint32_t
DmaEngine::registerHandler(const std::string &handlerName,
                           DmaHandler fn)
{
    for (const Handler &h : handlers) {
        if (h.hname == handlerName)
            sim::panic("DMA handler '%s' registered twice on '%s'",
                       handlerName.c_str(), name().c_str());
    }
    handlers.push_back(Handler{handlerName, std::move(fn)});
    return static_cast<std::uint32_t>(handlers.size() - 1);
}

void
DmaEngine::enqueueCallback(std::uint32_t handlerId,
                           const DmaArgs &args)
{
    SIM_ASSERT(handlerId < handlers.size(),
               "enqueueCallback with an unregistered handler id");
    DmaOp op;
    op.kind = DmaOp::Kind::Callback;
    op.handlerId = handlerId;
    op.args = args;
    ops.push_back(std::move(op));
    schedulePump();
}

void
DmaEngine::schedulePump()
{
    if (!pumpEvent.scheduled() && !ops.empty())
        eventq().scheduleIn(&pumpEvent, 0);
}

void
DmaEngine::fireCallback(DmaOp &op)
{
    if (op.handlerId != DmaOp::noHandler)
        handlers[op.handlerId].fn(op.args);
    else
        op.cb();
}

void
DmaEngine::pump()
{
    // Run consecutive callbacks for free; transfers occupy the link
    // for lineTime each.
    while (!ops.empty() &&
           ops.front().kind == DmaOp::Kind::Callback) {
        DmaOp op = std::move(ops.front());
        ops.pop_front();
        ++callbacks;
        fireCallback(op);
    }

    if (ops.empty())
        return;

    DmaOp op = std::move(ops.front());
    ops.pop_front();
    switch (op.kind) {
      case DmaOp::Kind::WriteLine:
        target.dmaWrite(op.addr, op.meta);
        ++linesWritten;
        break;
      case DmaOp::Kind::ReadLine:
        target.dmaRead(op.addr);
        ++linesRead;
        break;
      case DmaOp::Kind::Callback:
        break; // unreachable
    }

    // Re-arm after the link occupancy interval; the pending event also
    // represents "link busy until then" for later enqueues.
    eventq().scheduleIn(&pumpEvent, lineTime);
}

void
DmaEngine::serialize(ckpt::Serializer &s) const
{
    ckpt::serializeEvent(s, pumpEvent);
    s.writeU64(ops.size());
    for (const DmaOp &op : ops) {
        s.writeU8(static_cast<std::uint8_t>(op.kind));
        switch (op.kind) {
          case DmaOp::Kind::WriteLine:
            s.writeU64(op.addr);
            serializeTlpMeta(s, op.meta);
            break;
          case DmaOp::Kind::ReadLine:
            s.writeU64(op.addr);
            break;
          case DmaOp::Kind::Callback:
            if (op.handlerId == DmaOp::noHandler) {
                sim::fatal("ckpt: DMA engine '%s' has an anonymous "
                           "callback pending; only named handlers "
                           "(registerHandler) are checkpointable",
                           name().c_str());
            }
            s.writeString(handlers[op.handlerId].hname);
            for (const std::uint64_t a : op.args)
                s.writeU64(a);
            break;
        }
    }
}

void
DmaEngine::unserialize(ckpt::Deserializer &d)
{
    ckpt::unserializeEvent(d, &pumpEvent, &eventq());
    ops.clear();
    const std::uint64_t count = d.readU64();
    for (std::uint64_t i = 0; i < count; ++i) {
        DmaOp op;
        op.kind = static_cast<DmaOp::Kind>(d.readU8());
        switch (op.kind) {
          case DmaOp::Kind::WriteLine:
            op.addr = d.readU64();
            op.meta = unserializeTlpMeta(d);
            break;
          case DmaOp::Kind::ReadLine:
            op.addr = d.readU64();
            break;
          case DmaOp::Kind::Callback: {
            const std::string hname = d.readString();
            op.handlerId = DmaOp::noHandler;
            for (std::uint32_t h = 0; h < handlers.size(); ++h) {
                if (handlers[h].hname == hname) {
                    op.handlerId = h;
                    break;
                }
            }
            if (op.handlerId == DmaOp::noHandler)
                sim::fatal("ckpt: checkpointed DMA handler '%s' is "
                           "not registered on '%s'",
                           hname.c_str(), name().c_str());
            for (std::uint64_t &a : op.args)
                a = d.readU64();
            break;
          }
          default:
            sim::fatal("ckpt: bad DMA op kind in section '%s'",
                       name().c_str());
        }
        // Push directly: restore must not re-arm the pump here, the
        // checkpointed pumpEvent schedule is replayed instead.
        ops.push_back(std::move(op));
    }
}

} // namespace nic
