/**
 * @file
 * PCIe TLP metadata encoding (paper Fig. 7).
 *
 * The IDIO classifier embeds per-packet steering metadata into the
 * reserved bits of the PCIe TLP header's first doubleword:
 *
 *  - bit 31: isHeader (this DMA write carries the packet's first,
 *    header-bearing cacheline)
 *  - bit 23, bits 19:16, bit 11: 6-bit destination core number
 *    (MSB..LSB); all six bits set (63) encodes application class 1
 *  - bit 10: isBurst (an RX burst is in progress for the target core)
 *
 * IDIO therefore supports up to 63 cores.
 */

#ifndef IDIO_NIC_TLP_HH
#define IDIO_NIC_TLP_HH

#include <cstdint>

#include "ckpt/serializer.hh"
#include "sim/types.hh"

namespace nic
{

/** Core-number encoding that signals application class 1. */
constexpr std::uint32_t appClass1Code = 63;

/** Decoded steering metadata of one DMA write TLP. */
struct TlpMeta
{
    std::uint8_t appClass = 0; ///< 0 = short use distance, 1 = long
    bool isHeader = false;
    bool isBurst = false;
    sim::CoreId destCore = 0;

    bool operator==(const TlpMeta &) const = default;
};

/**
 * Pack metadata into the reserved bits of TLP header DW0.
 * Only the reserved bits are produced; the caller ORs the result into
 * the real DW0 (which is all zeroes in this model).
 */
std::uint32_t encodeTlp(const TlpMeta &meta);

/** Recover metadata from TLP header DW0 reserved bits. */
TlpMeta decodeTlp(std::uint32_t dw0);

/**
 * @{ Checkpoint helpers. Serialized field by field (not via
 * encodeTlp(), which cannot represent appClass 1 together with a
 * destination core).
 */
inline void
serializeTlpMeta(ckpt::Serializer &s, const TlpMeta &m)
{
    s.writeU8(m.appClass);
    s.writeBool(m.isHeader);
    s.writeBool(m.isBurst);
    s.writeU32(m.destCore);
}

inline TlpMeta
unserializeTlpMeta(ckpt::Deserializer &d)
{
    TlpMeta m;
    m.appClass = d.readU8();
    m.isHeader = d.readBool();
    m.isBurst = d.readBool();
    m.destCore = d.readU32();
    return m;
}
/** @} */

} // namespace nic

#endif // IDIO_NIC_TLP_HH
