/**
 * @file
 * IDIO classifier (paper Sec. V-A).
 *
 * NIC-resident logic that, for every inbound packet, determines:
 *  (1) the application class from the IPv4 DSCP field,
 *  (2) which DMA write carries the header cacheline,
 *  (3) the destination core (via Flow Director), and
 *  (4) whether an RX burst is in progress for that core, by keeping a
 *      32-bit per-core received-byte counter that is reset every 1 us
 *      and compared against rxBurstTHR.
 */

#ifndef IDIO_NIC_CLASSIFIER_HH
#define IDIO_NIC_CLASSIFIER_HH

#include <cstdint>
#include <vector>

#include "net/packet.hh"
#include "nic/flow_director.hh"
#include "nic/tlp.hh"
#include "sim/periodic.hh"
#include "sim/sim_object.hh"
#include "stats/registry.hh"

namespace nic
{

/** Classifier configuration. */
struct ClassifierConfig
{
    /** Burst detection threshold (paper default 10 Gbps). */
    double rxBurstThresholdGbps = 10.0;

    /** Burst counter reset interval. */
    sim::Tick counterInterval = sim::oneUs;

    /**
     * DSCP values at or above this mark application class 1 (long use
     * distance). The paper leaves the DSCP-to-class mapping to the
     * deployment; a single threshold on the 6-bit field is the
     * simplest faithful realisation.
     */
    std::uint8_t class1DscpMin = 32;
};

/**
 * Per-packet classification outcome.
 */
struct Classification
{
    std::uint8_t appClass = 0;
    sim::CoreId destCore = 0;
    bool burstActive = false;
};

/**
 * The NIC-side IDIO classifier.
 */
class IdioClassifier : public sim::SimObject
{
    stats::StatGroup statGroup;

  public:
    IdioClassifier(sim::Simulation &simulation, const std::string &name,
                   FlowDirector &flowDirector,
                   const ClassifierConfig &config,
                   std::uint32_t numCores);

    /** Start the periodic counter-reset machinery. */
    void start();

    /**
     * Classify one inbound packet and update the burst counters.
     * Called once per packet when its DMA begins.
     *
     * Burst detection is edge-triggered: the burst bit is raised on
     * the packet whose bytes push the interval counter over
     * rxBurstTHR after a quiet interval — i.e.\ at the *start* of an
     * RX burst, which is what resets the IDIO FSM to the MLC state.
     * Sustained reception keeps crossing the threshold every interval
     * but does not re-signal, so the controller's pressure feedback
     * stays in charge during the burst.
     */
    Classification classify(const net::Packet &pkt);

    /**
     * Build the TLP metadata for one cacheline of the packet.
     * @param cls The packet's classification.
     * @param isFirstLine True for the DMA write carrying byte 0.
     */
    TlpMeta
    tlpFor(const Classification &cls, bool isFirstLine) const
    {
        TlpMeta meta;
        meta.appClass = cls.appClass;
        meta.isHeader = isFirstLine;
        meta.isBurst = cls.burstActive;
        meta.destCore = cls.destCore;
        return meta;
    }

    /** Current burst-counter value for @p core (bytes this interval). */
    std::uint32_t burstCounter(sim::CoreId core) const
    {
        return counters[core];
    }

    /** Threshold in bytes per interval. */
    std::uint32_t thresholdBytes() const { return thrBytes; }

    void serialize(ckpt::Serializer &s) const override;
    void unserialize(ckpt::Deserializer &d) override;

    /** @{ Counters. */
    stats::Counter packetsClassified;
    stats::Counter burstsDetected; ///< threshold crossings
    stats::Counter class1Packets;
    /** @} */

  private:
    void resetCounters();

    FlowDirector &fdir;
    ClassifierConfig cfg;
    std::uint32_t thrBytes;
    std::vector<std::uint32_t> counters;
    std::vector<bool> crossedThis; // crossed threshold this interval
    std::vector<bool> crossedPrev; // crossed in the previous interval
    sim::PeriodicEvent resetEvent;
};

} // namespace nic

#endif // IDIO_NIC_CLASSIFIER_HH
