/**
 * @file
 * TLP reserved-bit packing.
 */

#include "tlp.hh"

#include "sim/logging.hh"

namespace nic
{

namespace
{

// Bit positions of the 6-bit core field, MSB first: 23, 19..16, 11.
constexpr int coreBitPositions[6] = {23, 19, 18, 17, 16, 11};

constexpr std::uint32_t headerBit = 1u << 31;
constexpr std::uint32_t burstBit = 1u << 10;

} // anonymous namespace

std::uint32_t
encodeTlp(const TlpMeta &meta)
{
    std::uint32_t code;
    if (meta.appClass == 1) {
        code = appClass1Code;
    } else {
        if (meta.destCore >= appClass1Code)
            sim::fatal("IDIO TLP encoding supports at most %u cores",
                       appClass1Code);
        code = meta.destCore;
    }

    std::uint32_t dw0 = 0;
    for (int i = 0; i < 6; ++i) {
        if (code & (1u << (5 - i)))
            dw0 |= 1u << coreBitPositions[i];
    }
    if (meta.isHeader)
        dw0 |= headerBit;
    if (meta.isBurst)
        dw0 |= burstBit;
    return dw0;
}

TlpMeta
decodeTlp(std::uint32_t dw0)
{
    std::uint32_t code = 0;
    for (int i = 0; i < 6; ++i) {
        code <<= 1;
        if (dw0 & (1u << coreBitPositions[i]))
            code |= 1;
    }

    TlpMeta meta;
    meta.isHeader = (dw0 & headerBit) != 0;
    meta.isBurst = (dw0 & burstBit) != 0;
    if (code == appClass1Code) {
        meta.appClass = 1;
        meta.destCore = 0;
    } else {
        meta.appClass = 0;
        meta.destCore = code;
    }
    return meta;
}

} // namespace nic
