/**
 * @file
 * NIC DMA engine.
 *
 * Serialises cacheline-granular DMA operations over a PCIe link of
 * configurable bandwidth. Write operations invoke the DmaTarget (the
 * root-complex-side IDIO controller / DDIO logic); read operations
 * model the TX egress path. Callback entries fire in order with the
 * surrounding transfers, letting the NIC observe transfer completion
 * (descriptor writeback, TX done).
 */

#ifndef IDIO_NIC_DMA_HH
#define IDIO_NIC_DMA_HH

#include <array>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "mem/addr.hh"
#include "nic/tlp.hh"
#include "sim/event_queue.hh"
#include "sim/sim_object.hh"
#include "stats/registry.hh"

namespace nic
{

/**
 * Arguments carried by a *named* DMA completion callback. Fixed-size
 * so pending callbacks are checkpointable: owners pack whatever the
 * handler needs (indices, addresses, timestamps) into the slots.
 */
using DmaArgs = std::array<std::uint64_t, 6>;

/** A named completion handler registered with registerHandler(). */
using DmaHandler = std::function<void(const DmaArgs &)>;

/**
 * Root-complex-side consumer of DMA transactions. Implemented by the
 * IDIO controller (and by the plain-DDIO baseline configuration).
 */
class DmaTarget
{
  public:
    virtual ~DmaTarget() = default;

    /** A full-cacheline inbound DMA write with TLP metadata. */
    virtual void dmaWrite(sim::Addr addr, const TlpMeta &meta) = 0;

    /** An outbound DMA read. @return service latency. */
    virtual sim::Tick dmaRead(sim::Addr addr) = 0;
};

/**
 * The per-port DMA engine.
 */
class DmaEngine : public sim::SimObject
{
    stats::StatGroup statGroup;

  public:
    /**
     * @param target Root-complex handler for DMA transactions.
     * @param pcieGBps Effective PCIe bandwidth for this port.
     */
    DmaEngine(sim::Simulation &simulation, const std::string &name,
              DmaTarget &target, double pcieGBps);

    ~DmaEngine() override;

    /** Queue an inbound cacheline write. */
    void enqueueWrite(sim::Addr addr, const TlpMeta &meta);

    /** Queue an outbound cacheline read. */
    void enqueueRead(sim::Addr addr);

    /**
     * Queue an in-order *anonymous* completion callback. Fine for
     * tests and throwaway harnesses, but a checkpoint taken while one
     * is pending fails loudly — production callers register a named
     * handler instead so pending completions can be serialized.
     */
    void enqueueCallback(std::function<void()> cb);

    /**
     * Register a named completion handler. Handlers must be
     * registered in deterministic construction order; the returned id
     * is stable for a given configuration, and the checkpoint stores
     * the *name* so id drift across versions still restores correctly.
     */
    std::uint32_t registerHandler(const std::string &handlerName,
                                  DmaHandler fn);

    /** Queue an in-order completion callback by handler id. */
    void enqueueCallback(std::uint32_t handlerId, const DmaArgs &args);

    /** Operations not yet issued. */
    std::size_t queueDepth() const { return ops.size(); }

    void serialize(ckpt::Serializer &s) const override;
    void unserialize(ckpt::Deserializer &d) override;

    /** @{ Counters. */
    stats::Counter linesWritten;
    stats::Counter linesRead;
    stats::Counter callbacks;
    /** @} */

  private:
    struct DmaOp
    {
        enum class Kind
        {
            WriteLine,
            ReadLine,
            Callback,
        };

        /** handlerId value for the anonymous std::function path. */
        static constexpr std::uint32_t noHandler = ~std::uint32_t(0);

        Kind kind;
        sim::Addr addr = 0;
        TlpMeta meta;
        std::function<void()> cb;
        std::uint32_t handlerId = noHandler;
        DmaArgs args{};
    };

    struct Handler
    {
        std::string hname;
        DmaHandler fn;
    };

    class PumpEvent : public sim::Event
    {
      public:
        explicit PumpEvent(DmaEngine &owner) : owner(owner) {}
        void process() override { owner.pump(); }
        std::string name() const override
        {
            return owner.name() + ".pump";
        }

      private:
        DmaEngine &owner;
    };

    void schedulePump();
    void pump();
    void fireCallback(DmaOp &op);

    DmaTarget &target;
    sim::Tick lineTime;
    std::deque<DmaOp> ops;
    std::vector<Handler> handlers;
    PumpEvent pumpEvent;
};

} // namespace nic

#endif // IDIO_NIC_DMA_HH
