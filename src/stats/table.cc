/**
 * @file
 * TablePrinter implementation.
 */

#include "table.hh"

#include <algorithm>
#include <cstdio>

namespace stats
{

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header(std::move(header))
{
}

void
TablePrinter::addRow(std::vector<std::string> row)
{
    row.resize(header.size());
    rows.push_back(std::move(row));
}

std::string
TablePrinter::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TablePrinter::pct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision,
                  fraction * 100.0);
    return buf;
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header.size());
    for (std::size_t i = 0; i < header.size(); ++i)
        widths[i] = header[i].size();
    for (const auto &row : rows) {
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    }

    auto printRow = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            os << row[i];
            for (std::size_t p = row[i].size(); p < widths[i] + 2; ++p)
                os << ' ';
        }
        os << "\n";
    };

    printRow(header);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows)
        printRow(row);
}

} // namespace stats
