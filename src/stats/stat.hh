/**
 * @file
 * Scalar statistics: counters and gauges.
 *
 * Stats are plain in-memory objects registered with a StatGroup so
 * experiment harnesses can enumerate and dump them. Counters are the
 * backbone of the reproduction: every cache/DRAM/NIC event of interest
 * increments one, and the figure harnesses sample them periodically to
 * build the paper's timelines.
 */

#ifndef IDIO_STATS_STAT_HH
#define IDIO_STATS_STAT_HH

#include <cstdint>
#include <string>

namespace stats
{

class StatGroup;

/**
 * Common base for named statistics.
 */
class Stat
{
  public:
    Stat(StatGroup &group, std::string name, std::string desc);
    virtual ~Stat() = default;

    Stat(const Stat &) = delete;
    Stat &operator=(const Stat &) = delete;

    /** Short name within the owning group. */
    const std::string &name() const { return _name; }

    /** One-line description. */
    const std::string &desc() const { return _desc; }

    /** Current value as a double (for generic dumping). */
    virtual double value() const = 0;

    /** Reset to the initial state. */
    virtual void reset() = 0;

  private:
    std::string _name;
    std::string _desc;
};

/**
 * Monotonically increasing 64-bit event counter.
 */
class Counter : public Stat
{
  public:
    using Stat::Stat;

    /** Increment by one. */
    Counter &operator++()
    {
        ++count;
        return *this;
    }

    /** Increment by @p n. */
    Counter &operator+=(std::uint64_t n)
    {
        count += n;
        return *this;
    }

    /** Raw count. */
    std::uint64_t get() const { return count; }

    /** Overwrite the raw count (checkpoint restore only). */
    void restore(std::uint64_t v) { count = v; }

    double value() const override { return static_cast<double>(count); }
    void reset() override { count = 0; }

  private:
    std::uint64_t count = 0;
};

/**
 * A settable floating-point statistic (e.g.\ a configured parameter or a
 * derived metric recorded at the end of a run).
 */
class Gauge : public Stat
{
  public:
    using Stat::Stat;

    /** Set the current value. */
    void set(double v) { val = v; }

    double value() const override { return val; }
    void reset() override { val = 0.0; }

  private:
    double val = 0.0;
};

} // namespace stats

#endif // IDIO_STATS_STAT_HH
