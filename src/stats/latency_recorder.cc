/**
 * @file
 * LatencyRecorder implementation.
 */

#include "latency_recorder.hh"

#include <algorithm>
#include <cmath>

namespace stats
{

void
LatencyRecorder::ensureSorted() const
{
    if (!sorted) {
        std::sort(samples.begin(), samples.end());
        sorted = true;
    }
}

std::uint64_t
LatencyRecorder::percentile(double p) const
{
    if (samples.empty())
        return 0;
    ensureSorted();
    p = std::clamp(p, 0.0, 100.0);
    // Nearest-rank: the smallest value with at least ceil(p/100 * n)
    // samples at or below it.
    const auto n = samples.size();
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(n)));
    if (rank == 0)
        rank = 1;
    return samples[rank - 1];
}

double
LatencyRecorder::mean() const
{
    if (samples.empty())
        return 0.0;
    double sum = 0.0;
    for (auto s : samples)
        sum += static_cast<double>(s);
    return sum / static_cast<double>(samples.size());
}

std::uint64_t
LatencyRecorder::maxSample() const
{
    if (samples.empty())
        return 0;
    ensureSorted();
    return samples.back();
}

} // namespace stats
