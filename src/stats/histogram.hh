/**
 * @file
 * Bucketed distribution statistics.
 */

#ifndef IDIO_STATS_HISTOGRAM_HH
#define IDIO_STATS_HISTOGRAM_HH

#include <cstdint>
#include <ostream>
#include <vector>

#include "stat.hh"

namespace stats
{

/**
 * Fixed-width linear histogram over [min, max). Samples outside the
 * range land in underflow/overflow buckets. value() reports the mean.
 */
class Histogram : public Stat
{
  public:
    /**
     * @param group Owning stat group.
     * @param name Stat name.
     * @param desc Description.
     * @param min Inclusive lower bound of the bucketed range.
     * @param max Exclusive upper bound of the bucketed range.
     * @param numBuckets Number of equal-width buckets.
     */
    Histogram(StatGroup &group, std::string name, std::string desc,
              double min, double max, std::size_t numBuckets);

    /** Record one sample. */
    void sample(double v);

    /** Number of recorded samples. */
    std::uint64_t count() const { return n; }

    /** Sample mean (0 when empty). */
    double mean() const { return n ? sum / static_cast<double>(n) : 0.0; }

    /** Minimum recorded sample (undefined when empty). */
    double minSample() const { return sampleMin; }

    /** Maximum recorded sample (undefined when empty). */
    double maxSample() const { return sampleMax; }

    /** Bucket counts, including [0]=underflow and [last]=overflow. */
    const std::vector<std::uint64_t> &buckets() const { return counts; }

    /**
     * Approximate quantile via linear interpolation within the bucket
     * containing the target rank. @p q in [0, 1].
     */
    double quantile(double q) const;

    /** Print a compact textual rendering. */
    void print(std::ostream &os) const;

    double value() const override { return mean(); }
    void reset() override;

  private:
    double lo;
    double hi;
    double bucketWidth;
    std::vector<std::uint64_t> counts; // under + buckets + over
    std::uint64_t n = 0;
    double sum = 0.0;
    double sampleMin = 0.0;
    double sampleMax = 0.0;
};

} // namespace stats

#endif // IDIO_STATS_HISTOGRAM_HH
