/**
 * @file
 * JSON export of the statistics registry.
 *
 * Machine-readable companion to Registry::dump(): emits one JSON
 * object per stat group so external tooling (plotting scripts, CI
 * regression checks) can consume simulation results without parsing
 * the human-oriented table output.
 */

#ifndef IDIO_STATS_JSON_HH
#define IDIO_STATS_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "stats/registry.hh"
#include "stats/series.hh"

namespace stats
{

/** Escape a string for embedding in a JSON document. */
std::string jsonEscape(const std::string &s);

/**
 * Minimal streaming JSON writer for bench result files.
 *
 * Produces compact, valid JSON with automatic comma management; the
 * caller is responsible for nesting begin/end calls correctly (an
 * unbalanced document is a programming error and asserts). Used by the
 * figure benches (`--json=FILE`) and the perf_smoke trajectory file.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &out) : os(out) {}
    ~JsonWriter();

    /** @{ Containers. Keyed forms are for use inside an object. */
    void beginObject();
    void beginObject(const std::string &key);
    void beginArray();
    void beginArray(const std::string &key);
    void end(); ///< close the innermost object or array
    /** @} */

    /** @{ Key/value fields (inside an object). */
    void field(const std::string &key, std::uint64_t v);
    void field(const std::string &key, std::int64_t v);
    void field(const std::string &key, int v);
    void field(const std::string &key, unsigned v);
    void field(const std::string &key, double v);
    void field(const std::string &key, bool v);
    void field(const std::string &key, const std::string &v);
    void field(const std::string &key, const char *v);

    /**
     * Emit @p rawJson verbatim as the value of @p key. For values the
     * typed overloads cannot express exactly (e.g.\ fixed-point
     * decimals wider than double's %.9g round-trip, used by the trace
     * exporter for tick-accurate microsecond timestamps). The caller
     * guarantees @p rawJson is a valid JSON value.
     */
    void fieldRaw(const std::string &key, const std::string &rawJson);
    /** @} */

    /** @{ Bare values (inside an array). */
    void value(std::uint64_t v);
    void value(double v);
    void value(const std::string &v);
    /** @} */

  private:
    void comma();
    void key(const std::string &k);
    void open(char opener, char closer);

    /** One open container: its closing bracket and comma state. */
    struct Level
    {
        char closer;
        bool needComma;
    };

    std::ostream &os;
    std::vector<Level> levels;
};

/**
 * Write the whole registry as a JSON object:
 * {"groups": {"<group>": {"<stat>": value, ...}, ...}}
 */
void writeJson(std::ostream &os, const Registry &registry);

/**
 * Write a set of time series as JSON:
 * {"series": {"<name>": [[time_us, value], ...], ...}}
 */
void writeJson(std::ostream &os,
               const std::vector<const Series *> &series);

} // namespace stats

#endif // IDIO_STATS_JSON_HH
