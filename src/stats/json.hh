/**
 * @file
 * JSON export of the statistics registry.
 *
 * Machine-readable companion to Registry::dump(): emits one JSON
 * object per stat group so external tooling (plotting scripts, CI
 * regression checks) can consume simulation results without parsing
 * the human-oriented table output.
 */

#ifndef IDIO_STATS_JSON_HH
#define IDIO_STATS_JSON_HH

#include <ostream>
#include <string>

#include "stats/registry.hh"
#include "stats/series.hh"

namespace stats
{

/** Escape a string for embedding in a JSON document. */
std::string jsonEscape(const std::string &s);

/**
 * Write the whole registry as a JSON object:
 * {"groups": {"<group>": {"<stat>": value, ...}, ...}}
 */
void writeJson(std::ostream &os, const Registry &registry);

/**
 * Write a set of time series as JSON:
 * {"series": {"<name>": [[time_us, value], ...], ...}}
 */
void writeJson(std::ostream &os,
               const std::vector<const Series *> &series);

} // namespace stats

#endif // IDIO_STATS_JSON_HH
