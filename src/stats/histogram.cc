/**
 * @file
 * Histogram implementation.
 */

#include "histogram.hh"

#include <algorithm>
#include <cmath>

namespace stats
{

Histogram::Histogram(StatGroup &group, std::string name, std::string desc,
                     double min, double max, std::size_t numBuckets)
    : Stat(group, std::move(name), std::move(desc)), lo(min), hi(max),
      bucketWidth((max - min) / static_cast<double>(numBuckets)),
      counts(numBuckets + 2, 0)
{
}

void
Histogram::sample(double v)
{
    if (n == 0) {
        sampleMin = v;
        sampleMax = v;
    } else {
        sampleMin = std::min(sampleMin, v);
        sampleMax = std::max(sampleMax, v);
    }
    ++n;
    sum += v;

    std::size_t idx;
    if (v < lo) {
        idx = 0;
    } else if (v >= hi) {
        idx = counts.size() - 1;
    } else {
        idx = 1 + static_cast<std::size_t>((v - lo) / bucketWidth);
        idx = std::min(idx, counts.size() - 2);
    }
    ++counts[idx];
}

double
Histogram::quantile(double q) const
{
    if (n == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(n);
    double cum = 0.0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        const double c = static_cast<double>(counts[i]);
        if (cum + c >= target && c > 0) {
            if (i == 0)
                return sampleMin;
            if (i == counts.size() - 1)
                return sampleMax;
            const double bucketLo =
                lo + static_cast<double>(i - 1) * bucketWidth;
            const double frac = (target - cum) / c;
            return bucketLo + frac * bucketWidth;
        }
        cum += c;
    }
    return sampleMax;
}

void
Histogram::print(std::ostream &os) const
{
    os << name() << ": n=" << n << " mean=" << mean()
       << " min=" << sampleMin << " max=" << sampleMax << "\n";
}

void
Histogram::reset()
{
    std::fill(counts.begin(), counts.end(), 0);
    n = 0;
    sum = 0.0;
    sampleMin = 0.0;
    sampleMax = 0.0;
}

} // namespace stats
