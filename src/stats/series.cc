/**
 * @file
 * Series implementation.
 */

#include "series.hh"

#include <algorithm>
#include <limits>
#include <map>

namespace stats
{

double
Series::peak() const
{
    double p = 0.0;
    for (const auto &pt : pts)
        p = std::max(p, pt.value);
    return p;
}

double
Series::mean() const
{
    if (pts.empty())
        return 0.0;
    return sum() / static_cast<double>(pts.size());
}

double
Series::sum() const
{
    double s = 0.0;
    for (const auto &pt : pts)
        s += pt.value;
    return s;
}

void
writeCsv(std::ostream &os, const std::vector<const Series *> &series)
{
    os << "time_us";
    for (const Series *s : series)
        os << "," << s->name();
    os << "\n";

    // Merge on the time axis.
    std::map<sim::Tick, std::vector<double>> rows;
    for (std::size_t i = 0; i < series.size(); ++i) {
        for (const auto &pt : series[i]->points()) {
            auto &row = rows[pt.when];
            row.resize(series.size(),
                       std::numeric_limits<double>::quiet_NaN());
            row[i] = pt.value;
        }
    }

    for (const auto &[when, row] : rows) {
        os << sim::ticksToUs(when);
        for (std::size_t i = 0; i < series.size(); ++i) {
            os << ",";
            if (i < row.size() && row[i] == row[i]) // not NaN
                os << row[i];
        }
        os << "\n";
    }
}

} // namespace stats
