/**
 * @file
 * Registry and grouping of statistics.
 *
 * A Registry holds one StatGroup per SimObject; a StatGroup holds
 * non-owning pointers to the Stat members declared inside the object.
 * Harnesses use the registry to enumerate, reset, and dump all stats.
 */

#ifndef IDIO_STATS_REGISTRY_HH
#define IDIO_STATS_REGISTRY_HH

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "stat.hh"

namespace stats
{

class Registry;

/**
 * Collection of statistics belonging to one component.
 *
 * The group registers itself with the Registry on construction and
 * unregisters on destruction; Stat members register with their group.
 */
class StatGroup
{
  public:
    /**
     * @param registry Owning registry.
     * @param name Component instance name (dotted path).
     */
    StatGroup(Registry &registry, std::string name);
    ~StatGroup();

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Component name this group belongs to. */
    const std::string &name() const { return _name; }

    /** Stats registered in declaration order. */
    const std::vector<Stat *> &statList() const { return statsVec; }

    /** Look up a stat by short name; nullptr if absent. */
    Stat *find(const std::string &statName) const;

    /** Reset every stat in the group. */
    void resetAll();

  private:
    friend class Stat;

    void add(Stat *s) { statsVec.push_back(s); }

    Registry &registry;
    std::string _name;
    std::vector<Stat *> statsVec;
};

/**
 * Flat registry of all StatGroups in one simulation.
 */
class Registry
{
  public:
    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** All currently live groups. */
    const std::vector<StatGroup *> &groups() const { return groupsVec; }

    /** Find a group by exact component name; nullptr if absent. */
    StatGroup *findGroup(const std::string &name) const;

    /**
     * Find a stat by "component.stat" dotted path.
     * @return nullptr when either part does not resolve.
     */
    Stat *findStat(const std::string &path) const;

    /** Reset every stat in every group. */
    void resetAll();

    /** Dump "group.stat value  # desc" lines. */
    void dump(std::ostream &os) const;

    /** Visit every (group, stat) pair. */
    void forEach(
        const std::function<void(const StatGroup &, const Stat &)> &fn)
        const;

  private:
    friend class StatGroup;

    void add(StatGroup *g) { groupsVec.push_back(g); }
    void remove(StatGroup *g);

    std::vector<StatGroup *> groupsVec;
};

} // namespace stats

#endif // IDIO_STATS_REGISTRY_HH
