/**
 * @file
 * Registry / StatGroup implementation.
 */

#include "registry.hh"

#include <algorithm>
#include <iomanip>

namespace stats
{

Stat::Stat(StatGroup &group, std::string name, std::string desc)
    : _name(std::move(name)), _desc(std::move(desc))
{
    group.add(this);
}

StatGroup::StatGroup(Registry &registry, std::string name)
    : registry(registry), _name(std::move(name))
{
    registry.add(this);
}

StatGroup::~StatGroup()
{
    registry.remove(this);
}

Stat *
StatGroup::find(const std::string &statName) const
{
    for (Stat *s : statsVec) {
        if (s->name() == statName)
            return s;
    }
    return nullptr;
}

void
StatGroup::resetAll()
{
    for (Stat *s : statsVec)
        s->reset();
}

StatGroup *
Registry::findGroup(const std::string &name) const
{
    for (StatGroup *g : groupsVec) {
        if (g->name() == name)
            return g;
    }
    return nullptr;
}

Stat *
Registry::findStat(const std::string &path) const
{
    auto dot = path.rfind('.');
    if (dot == std::string::npos)
        return nullptr;
    StatGroup *g = findGroup(path.substr(0, dot));
    return g ? g->find(path.substr(dot + 1)) : nullptr;
}

void
Registry::resetAll()
{
    for (StatGroup *g : groupsVec)
        g->resetAll();
}

void
Registry::dump(std::ostream &os) const
{
    for (const StatGroup *g : groupsVec) {
        for (const Stat *s : g->statList()) {
            os << std::left << std::setw(48)
               << (g->name() + "." + s->name()) << " "
               << std::setw(16) << s->value() << " # " << s->desc()
               << "\n";
        }
    }
}

void
Registry::forEach(
    const std::function<void(const StatGroup &, const Stat &)> &fn) const
{
    for (const StatGroup *g : groupsVec) {
        for (const Stat *s : g->statList())
            fn(*g, *s);
    }
}

void
Registry::remove(StatGroup *g)
{
    groupsVec.erase(std::remove(groupsVec.begin(), groupsVec.end(), g),
                    groupsVec.end());
}

} // namespace stats
