/**
 * @file
 * JSON export implementation.
 */

#include "json.hh"

#include <cmath>

namespace stats
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace
{

void
writeNumber(std::ostream &os, double v)
{
    // JSON has no NaN/Inf; map them to null.
    if (std::isfinite(v)) {
        // Integers print exactly; everything else with precision.
        if (v == std::floor(v) && std::abs(v) < 1e15) {
            os << static_cast<long long>(v);
        } else {
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%.9g", v);
            os << buf;
        }
    } else {
        os << "null";
    }
}

} // anonymous namespace

void
writeJson(std::ostream &os, const Registry &registry)
{
    os << "{\"groups\":{";
    bool firstGroup = true;
    for (const StatGroup *g : registry.groups()) {
        if (!firstGroup)
            os << ",";
        firstGroup = false;
        os << "\"" << jsonEscape(g->name()) << "\":{";
        bool firstStat = true;
        for (const Stat *s : g->statList()) {
            if (!firstStat)
                os << ",";
            firstStat = false;
            os << "\"" << jsonEscape(s->name()) << "\":";
            writeNumber(os, s->value());
        }
        os << "}";
    }
    os << "}}";
}

void
writeJson(std::ostream &os, const std::vector<const Series *> &series)
{
    os << "{\"series\":{";
    bool firstSeries = true;
    for (const Series *s : series) {
        if (!firstSeries)
            os << ",";
        firstSeries = false;
        os << "\"" << jsonEscape(s->name()) << "\":[";
        bool firstPt = true;
        for (const auto &pt : s->points()) {
            if (!firstPt)
                os << ",";
            firstPt = false;
            os << "[";
            writeNumber(os, sim::ticksToUs(pt.when));
            os << ",";
            writeNumber(os, pt.value);
            os << "]";
        }
        os << "]";
    }
    os << "}}";
}

} // namespace stats
