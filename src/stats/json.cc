/**
 * @file
 * JSON export implementation.
 */

#include "json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace stats
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace
{

void
writeNumber(std::ostream &os, double v)
{
    // JSON has no NaN/Inf; map them to null.
    if (std::isfinite(v)) {
        // Integers print exactly; everything else with precision.
        if (v == std::floor(v) && std::abs(v) < 1e15) {
            os << static_cast<long long>(v);
        } else {
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%.9g", v);
            os << buf;
        }
    } else {
        os << "null";
    }
}

} // anonymous namespace

namespace
{

/**
 * Unbalanced begin/end calls are programmer errors; stats is a leaf
 * library (no sim::panic), so fail with a plain diagnostic.
 */
void
jsonMisuse(const char *what)
{
    std::fprintf(stderr, "stats::JsonWriter misuse: %s\n", what);
    std::abort();
}

} // anonymous namespace

JsonWriter::~JsonWriter()
{
    if (!levels.empty())
        jsonMisuse("destroyed with open containers");
}

void
JsonWriter::comma()
{
    if (!levels.empty()) {
        if (levels.back().needComma)
            os << ",";
        levels.back().needComma = true;
    }
}

void
JsonWriter::key(const std::string &k)
{
    comma();
    os << "\"" << jsonEscape(k) << "\":";
}

void
JsonWriter::open(char opener, char closer)
{
    os << opener;
    levels.push_back(Level{closer, false});
}

void
JsonWriter::beginObject()
{
    comma();
    open('{', '}');
}

void
JsonWriter::beginObject(const std::string &k)
{
    key(k);
    open('{', '}');
}

void
JsonWriter::beginArray()
{
    comma();
    open('[', ']');
}

void
JsonWriter::beginArray(const std::string &k)
{
    key(k);
    open('[', ']');
}

void
JsonWriter::end()
{
    if (levels.empty())
        jsonMisuse("end() with no open container");
    os << levels.back().closer;
    levels.pop_back();
}

void
JsonWriter::field(const std::string &k, std::uint64_t v)
{
    key(k);
    os << v;
}

void
JsonWriter::field(const std::string &k, std::int64_t v)
{
    key(k);
    os << v;
}

void
JsonWriter::field(const std::string &k, int v)
{
    key(k);
    os << v;
}

void
JsonWriter::field(const std::string &k, unsigned v)
{
    key(k);
    os << v;
}

void
JsonWriter::field(const std::string &k, double v)
{
    key(k);
    writeNumber(os, v);
}

void
JsonWriter::field(const std::string &k, bool v)
{
    key(k);
    os << (v ? "true" : "false");
}

void
JsonWriter::field(const std::string &k, const std::string &v)
{
    key(k);
    os << "\"" << jsonEscape(v) << "\"";
}

void
JsonWriter::field(const std::string &k, const char *v)
{
    field(k, std::string(v));
}

void
JsonWriter::fieldRaw(const std::string &k, const std::string &rawJson)
{
    key(k);
    os << rawJson;
}

void
JsonWriter::value(std::uint64_t v)
{
    comma();
    os << v;
}

void
JsonWriter::value(double v)
{
    comma();
    writeNumber(os, v);
}

void
JsonWriter::value(const std::string &v)
{
    comma();
    os << "\"" << jsonEscape(v) << "\"";
}

void
writeJson(std::ostream &os, const Registry &registry)
{
    os << "{\"groups\":{";
    bool firstGroup = true;
    for (const StatGroup *g : registry.groups()) {
        if (!firstGroup)
            os << ",";
        firstGroup = false;
        os << "\"" << jsonEscape(g->name()) << "\":{";
        bool firstStat = true;
        for (const Stat *s : g->statList()) {
            if (!firstStat)
                os << ",";
            firstStat = false;
            os << "\"" << jsonEscape(s->name()) << "\":";
            writeNumber(os, s->value());
        }
        os << "}";
    }
    os << "}}";
}

void
writeJson(std::ostream &os, const std::vector<const Series *> &series)
{
    os << "{\"series\":{";
    bool firstSeries = true;
    for (const Series *s : series) {
        if (!firstSeries)
            os << ",";
        firstSeries = false;
        os << "\"" << jsonEscape(s->name()) << "\":[";
        bool firstPt = true;
        for (const auto &pt : s->points()) {
            if (!firstPt)
                os << ",";
            firstPt = false;
            os << "[";
            writeNumber(os, sim::ticksToUs(pt.when));
            os << ",";
            writeNumber(os, pt.value);
            os << "]";
        }
        os << "]";
    }
    os << "}}";
}

} // namespace stats
