/**
 * @file
 * Time series containers for figure reproduction.
 *
 * The paper's timeline figures (Figs. 5, 9, 11, 13) plot event *rates*
 * sampled at 10 us intervals. A Series stores (tick, value) points; the
 * rate-from-counter computation lives in harness::TimelineRecorder,
 * which owns the periodic sampling events.
 */

#ifndef IDIO_STATS_SERIES_HH
#define IDIO_STATS_SERIES_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace stats
{

/** One sampled point of a time series. */
struct SeriesPoint
{
    sim::Tick when;
    double value;
};

/**
 * A named sequence of sampled points.
 */
class Series
{
  public:
    explicit Series(std::string name = "") : _name(std::move(name)) {}

    /** Series label used in CSV headers. */
    const std::string &name() const { return _name; }

    /** Append one point; points must arrive in time order. */
    void
    append(sim::Tick when, double value)
    {
        pts.push_back(SeriesPoint{when, value});
    }

    /** All points. */
    const std::vector<SeriesPoint> &points() const { return pts; }

    /** Number of points. */
    std::size_t size() const { return pts.size(); }

    bool empty() const { return pts.empty(); }

    /** Largest sampled value (0 when empty). */
    double peak() const;

    /** Arithmetic mean of sampled values (0 when empty). */
    double mean() const;

    /** Sum of sampled values. */
    double sum() const;

    /** Remove all points. */
    void clear() { pts.clear(); }

  private:
    std::string _name;
    std::vector<SeriesPoint> pts;
};

/**
 * Write a set of series sharing a time axis as CSV:
 * time_us,name1,name2,... Missing points are left blank.
 */
void writeCsv(std::ostream &os, const std::vector<const Series *> &series);

} // namespace stats

#endif // IDIO_STATS_SERIES_HH
