/**
 * @file
 * Exact-percentile latency recording.
 *
 * The paper reports 50th and 99th percentile per-packet latencies
 * (Fig. 12). LatencyRecorder stores every sample so percentiles are
 * exact; sample counts in our experiments (up to a few million packets)
 * make this affordable.
 */

#ifndef IDIO_STATS_LATENCY_RECORDER_HH
#define IDIO_STATS_LATENCY_RECORDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "stat.hh"

namespace stats
{

/**
 * Stores raw latency samples (in ticks) and answers exact percentile
 * queries. value() reports the mean.
 */
class LatencyRecorder : public Stat
{
  public:
    using Stat::Stat;

    /** Record one latency sample (ticks). */
    void
    sample(std::uint64_t ticks)
    {
        samples.push_back(ticks);
        sorted = false;
    }

    /** Number of recorded samples. */
    std::size_t count() const { return samples.size(); }

    /**
     * Exact percentile using the nearest-rank method.
     * @param p Percentile in [0, 100]; e.g.\ 99.0 for p99.
     * @return 0 when no samples were recorded.
     */
    std::uint64_t percentile(double p) const;

    /** Convenience accessors. @{ */
    std::uint64_t p50() const { return percentile(50.0); }
    std::uint64_t p99() const { return percentile(99.0); }
    std::uint64_t p999() const { return percentile(99.9); }
    /** @} */

    /** Mean sample (0 when empty). */
    double mean() const;

    /** Largest sample (0 when empty). */
    std::uint64_t maxSample() const;

    /**
     * @{ Raw sample access (checkpoint save/restore). Samples are kept
     * in insertion order until the first percentile query sorts them,
     * so round-tripping the raw vector preserves bit-identical state.
     */
    const std::vector<std::uint64_t> &rawSamples() const
    {
        return samples;
    }

    void
    restore(std::vector<std::uint64_t> s)
    {
        samples = std::move(s);
        sorted = false;
    }
    /** @} */

    double value() const override { return mean(); }

    void
    reset() override
    {
        samples.clear();
        sorted = false;
    }

  private:
    mutable std::vector<std::uint64_t> samples;
    mutable bool sorted = false;

    void ensureSorted() const;
};

} // namespace stats

#endif // IDIO_STATS_LATENCY_RECORDER_HH
