/**
 * @file
 * Minimal ASCII table formatting for benchmark/figure output.
 *
 * Every bench binary prints the rows of the paper table/figure it
 * reproduces; TablePrinter keeps that output aligned and greppable.
 */

#ifndef IDIO_STATS_TABLE_HH
#define IDIO_STATS_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace stats
{

/**
 * Accumulates rows of string cells and prints them with aligned columns.
 */
class TablePrinter
{
  public:
    /** @param header Column titles. */
    explicit TablePrinter(std::vector<std::string> header);

    /** Append a full row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Format a double with the given precision. */
    static std::string num(double v, int precision = 3);

    /** Format a percentage ("12.3%"). */
    static std::string pct(double fraction, int precision = 1);

    /** Write the table to @p os. */
    void print(std::ostream &os) const;

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

} // namespace stats

#endif // IDIO_STATS_TABLE_HH
