/**
 * @file
 * The packet-lifecycle event taxonomy.
 *
 * Every trace event carries one EventKind. The kinds follow one DMA'd
 * cacheline through its life, mirroring the paper's shortcomings
 * S1..S3 and mechanisms M1..M3: NIC arrival and classifier decision,
 * payload DMA, IDIO steering hints and FSM movement, cache placement /
 * eviction / self-invalidation, driver buffer churn, and NF
 * consumption.
 *
 * Kinds are deliberately emitted at exactly the sites where the
 * corresponding statistics counters increment, so an aggregated trace
 * is cross-checkable against harness::Totals (see
 * tests/integration/test_trace_totals.cc and tools/trace_summary.py).
 */

#ifndef IDIO_TRACE_EVENTS_HH
#define IDIO_TRACE_EVENTS_HH

#include <cstdint>

namespace trace
{

/** What happened. Keep eventName()/eventCategory() in sync. */
enum class EventKind : std::uint8_t
{
    /** @{ NIC ingress/egress (src/nic). */
    NicRx = 0,      ///< packet hit the MAC (== Nic::rxPackets)
    NicDrop,        ///< RX ring full, packet lost (== Nic::rxDrops)
    NicClassify,    ///< classifier decision (appClass/destCore/burst)
    NicDmaPayload,  ///< span: payload TLP stream on the PCIe link
    NicDescWb,      ///< descriptor writeback completed (DD set)
    /** @} */

    /** @{ IDIO controller steering (src/idio). */
    IdioHintHeader,  ///< header cacheline MLC-prefetch hint
    IdioHintPayload, ///< class-0 payload MLC-prefetch hint
    IdioDirectDram,  ///< class-1 payload steered straight to DRAM
    IdioBurst,       ///< burst notification reset an active FSM
    IdioFsm,         ///< counter: per-core FSM state after a change
    /** @} */

    /** @{ Cache hierarchy placement and departure (src/cache). */
    CacheDdioUpdate, ///< inbound write updated a cached line in place
    CacheDdioAlloc,  ///< inbound write allocated into the DDIO ways
    CacheDramDirect, ///< inbound write bypassed the hierarchy (M3)
    CacheMlcFill,    ///< demand fill into a core's MLC
    CacheMlcPrefetchFill, ///< IDIO prefetch fill into a core's MLC
    CacheMlcEvict,   ///< MLC eviction (== Totals::mlcWritebacks)
    CachePcieInval,  ///< MLC copy dropped by DMA (== mlcPcieInvals)
    CacheSelfInval,  ///< self-invalidate dropped an MLC line (M1)
    CacheLlcWb,      ///< dead writeback LLC->DRAM (== llcWritebacks)
    /** @} */

    /** @{ Driver buffer churn (src/dpdk). */
    DpdkAlloc,       ///< mbuf taken off the free list (ring re-arm)
    DpdkFree,        ///< mbuf returned to the free list
    DpdkRingBacklog, ///< counter: completed-but-unconsumed descriptors
    /** @} */

    /** @{ Network function (src/nf). */
    NfConsume, ///< span: one packet processed (== processedPackets)
    /** @} */

    /** @{ Multi-tenant LLC partitioning (src/tenant). */
    TenantWays,    ///< counter: ways allocated to a tenant partition
    TenantRealloc, ///< controller moved one way between tenants
    /** @} */

    NumKinds,
};

/** Chrome trace-event phase of one record. */
enum class Phase : std::uint8_t
{
    Instant,  ///< ph "i": point event
    Complete, ///< ph "X": span with a duration
    Counter,  ///< ph "C": sampled value
};

/** Stable event name ("nic.rx", "cache.mlcEvict", ...). */
const char *eventName(EventKind kind);

/** Category ("nic", "idio", "cache", "dpdk", "nf", "tenant"). */
const char *eventCategory(EventKind kind);

/** Natural phase of the kind. */
Phase eventPhase(EventKind kind);

/**
 * Names for the two small payload arguments of a kind (nullptr when
 * the argument is unused and should be omitted from exports).
 */
const char *eventArgAName(EventKind kind);
const char *eventArgBName(EventKind kind);

} // namespace trace

#endif // IDIO_TRACE_EVENTS_HH
