/**
 * @file
 * Structured packet-lifecycle event tracing.
 *
 * The Tracer owns one fixed-capacity ring buffer per *source* (one per
 * instrumented component). The hot path is lock-free and branch-cheap:
 *
 *  - compile time: the IDIO_TRACE flag (CMake option, OFF in the
 *    release preset) turns every IDIO_TRACE_* macro into `(void)0`, so
 *    instrumented code carries zero cost when tracing is compiled out;
 *  - run time: when compiled in, each macro guards the record call
 *    with a single `enabled()` flag test, and a disabled tracer never
 *    allocates ring memory;
 *  - recording: an enabled record is one store into the source's own
 *    ring (power-of-two mask, overwrite-oldest), with no locks and no
 *    allocation. Sources are registered at construction time
 *    (cold path); each simulated system owns its own Tracer, so
 *    parallel sweeps (harness::SweepRunner) never share a buffer.
 *
 * Events follow the Chrome trace-event model (instant / complete /
 * counter, see events.hh) and are exported with writeChromeTrace()
 * for Perfetto / chrome://tracing. A monotonically increasing packet
 * id — assigned by the NIC at MAC arrival and threaded through
 * net::Packet and dpdk::Mbuf — correlates events across sources.
 */

#ifndef IDIO_TRACE_TRACER_HH
#define IDIO_TRACE_TRACER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/types.hh"
#include "trace/events.hh"

// Compile-time gate. The build system defines IDIO_TRACE=0/1; default
// to "compiled in" for ad-hoc builds that bypass CMake.
#ifndef IDIO_TRACE
#define IDIO_TRACE 1
#endif

namespace trace
{

/** One recorded event (fixed-size POD; 40 bytes). */
struct Event
{
    sim::Tick ts = 0;   ///< event (or span start) time, ticks
    sim::Tick dur = 0;  ///< span length (Complete) / value (Counter)
    std::uint64_t pktId = 0; ///< correlating packet id (0 = none)
    std::uint64_t argB = 0;  ///< kind-specific payload (addr, bytes..)
    std::uint32_t argA = 0;  ///< kind-specific payload (core, flag..)
    EventKind kind = EventKind::NicRx;
};

/**
 * Per-source ring of events. Overwrites the oldest record when full;
 * the drop count is reported so aggregations can detect truncation.
 */
class RingBuffer
{
  public:
    RingBuffer(std::uint32_t tid, std::string name)
        : srcName(std::move(name)), id(tid)
    {
    }

    /** Reserve the ring (called when tracing becomes enabled). */
    void
    allocate(std::size_t capacity)
    {
        if (!ring.empty())
            return;
        ring.resize(capacity);
        mask = capacity - 1;
    }

    bool allocated() const { return !ring.empty(); }

    /** Append one event (single store; caller checked enablement). */
    void
    record(const Event &ev)
    {
        if (ring.empty())
            return; // recorded while disabled: drop silently
        ring[head & mask] = ev;
        ++head;
    }

    /** Events ever appended. */
    std::uint64_t recorded() const { return head; }

    /** Events overwritten (lost to wraparound). */
    std::uint64_t
    dropped() const
    {
        return head > ring.size() ? head - ring.size() : 0;
    }

    /** Events still held in the ring. */
    std::size_t
    retained() const
    {
        return static_cast<std::size_t>(head - dropped());
    }

    /** Visit retained events, oldest first. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        const std::uint64_t first = dropped();
        for (std::uint64_t i = first; i < head; ++i)
            fn(ring[i & mask]);
    }

    std::uint32_t tid() const { return id; }
    const std::string &name() const { return srcName; }

    /**
     * Checkpoint restore: rewind the append counter to @p startHead
     * (the checkpointed drop count) so replaying the retained events
     * with record() reproduces the checkpointed ring bit for bit.
     */
    void resetForRestore(std::uint64_t startHead)
    {
        head = startHead;
    }

    /** Bytes of ring storage currently allocated. */
    std::size_t capacityBytes() const
    {
        return ring.size() * sizeof(Event);
    }

  private:
    std::string srcName;
    std::vector<Event> ring;
    std::uint64_t head = 0; ///< total appended
    std::uint64_t mask = 0;
    std::uint32_t id;
};

class Tracer;

/**
 * Cheap per-component handle; components keep one by value and feed
 * it through the IDIO_TRACE_* macros. A default-constructed Source is
 * inert.
 */
class Source
{
  public:
    Source() = default;

    /** True when the owning tracer is currently recording. */
    bool enabled() const;

    /** @{ Record one event (call only when enabled()). */
    void
    instant(EventKind kind, sim::Tick ts, std::uint64_t pktId,
            std::uint32_t argA, std::uint64_t argB)
    {
        Event ev;
        ev.ts = ts;
        ev.pktId = pktId;
        ev.argA = argA;
        ev.argB = argB;
        ev.kind = kind;
        buf->record(ev);
    }

    void
    complete(EventKind kind, sim::Tick start, sim::Tick dur,
             std::uint64_t pktId, std::uint32_t argA,
             std::uint64_t argB)
    {
        Event ev;
        ev.ts = start;
        ev.dur = dur;
        ev.pktId = pktId;
        ev.argA = argA;
        ev.argB = argB;
        ev.kind = kind;
        buf->record(ev);
    }

    void
    counter(EventKind kind, sim::Tick ts, std::uint64_t value,
            std::uint32_t argA = 0)
    {
        Event ev;
        ev.ts = ts;
        ev.dur = value;
        ev.argA = argA;
        ev.kind = kind;
        buf->record(ev);
    }
    /** @} */

  private:
    friend class Tracer;
    Source(Tracer *tracer, RingBuffer *buffer)
        : trc(tracer), buf(buffer)
    {
    }

    Tracer *trc = nullptr;
    RingBuffer *buf = nullptr;
};

/**
 * The per-simulation trace collector.
 */
class Tracer
{
  public:
    Tracer() = default;

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /**
     * Register one event source (component constructor time). Ring
     * memory is only reserved once tracing is enabled.
     */
    Source registerSource(const std::string &name);

    /**
     * Set the per-source ring capacity (rounded up to a power of
     * two). Applies to rings not yet allocated; call before enable().
     */
    void setCapacity(std::size_t eventsPerSource);

    /** Start recording (allocates rings for registered sources). */
    void enable();

    /** Stop recording (retained events stay exportable). */
    void disable() { on = false; }

    bool enabled() const { return on; }

    /**
     * Hand out the next packet correlation id. Deterministic (one
     * counter per simulation) and valid even while tracing is
     * disabled, so packet ids are stable run properties.
     */
    std::uint64_t newPacketId() { return nextPktId++; }

    /** Registered sources, in registration (= tid) order. */
    const std::vector<std::unique_ptr<RingBuffer>> &
    sources() const
    {
        return bufs;
    }

    /** @{ Checkpoint save/restore access. */
    RingBuffer *findSource(const std::string &name);
    std::size_t capacity() const { return cap; }
    std::uint64_t peekNextPacketId() const { return nextPktId; }
    void setNextPacketId(std::uint64_t id) { nextPktId = id; }
    /** @} */

    /** Retained events of @p kind across all sources. */
    std::uint64_t count(EventKind kind) const;

    /** Events lost to ring wraparound across all sources. */
    std::uint64_t totalDropped() const;

    /** Ring bytes currently allocated (0 while never enabled). */
    std::size_t allocatedBytes() const;

  private:
    bool on = false;
    std::size_t cap = 1 << 16;
    std::uint64_t nextPktId = 1;
    std::vector<std::unique_ptr<RingBuffer>> bufs;
};

inline bool
Source::enabled() const
{
    return trc != nullptr && trc->enabled();
}

} // namespace trace

/**
 * @{ Instrumentation macros. With IDIO_TRACE=0 they expand to nothing
 * (arguments unevaluated); otherwise they cost one flag test when
 * tracing is off at run time.
 */
#if IDIO_TRACE
#define IDIO_TRACE_INSTANT(src, kind, ts, pktId, argA, argB)           \
    do {                                                               \
        if ((src).enabled())                                           \
            (src).instant((kind), (ts), (pktId), (argA), (argB));      \
    } while (0)
#define IDIO_TRACE_COMPLETE(src, kind, ts, dur, pktId, argA, argB)     \
    do {                                                               \
        if ((src).enabled())                                           \
            (src).complete((kind), (ts), (dur), (pktId), (argA),       \
                           (argB));                                    \
    } while (0)
#define IDIO_TRACE_COUNTER(src, kind, ts, value, argA)                 \
    do {                                                               \
        if ((src).enabled())                                           \
            (src).counter((kind), (ts), (value), (argA));              \
    } while (0)
#else
#define IDIO_TRACE_INSTANT(src, kind, ts, pktId, argA, argB) ((void)0)
#define IDIO_TRACE_COMPLETE(src, kind, ts, dur, pktId, argA, argB)     \
    ((void)0)
#define IDIO_TRACE_COUNTER(src, kind, ts, value, argA) ((void)0)
#endif
/** @} */

#endif // IDIO_TRACE_TRACER_HH
