/**
 * @file
 * Chrome trace-event JSON export.
 *
 * Serialises a Tracer's retained events into the JSON object format
 * understood by Perfetto (ui.perfetto.dev) and chrome://tracing: a
 * "traceEvents" array of instant ("i"), complete ("X") and counter
 * ("C") records plus thread-name metadata, with one trace "thread"
 * per event source. Timestamps are microseconds with tick (picosecond)
 * precision preserved as fixed-point decimals.
 *
 * An "idio" metadata section records per-source recorded/dropped
 * counts so tools/trace_summary.py can detect ring truncation.
 */

#ifndef IDIO_TRACE_CHROME_EXPORT_HH
#define IDIO_TRACE_CHROME_EXPORT_HH

#include <ostream>
#include <string>

#include "trace/tracer.hh"

namespace trace
{

/** Render @p ticks as a decimal microsecond count ("12.345678"). */
std::string ticksToUsString(sim::Tick ticks);

/** Write the whole trace as one Chrome trace-event JSON object. */
void writeChromeTrace(std::ostream &os, const Tracer &tracer);

/**
 * Write the trace to @p path.
 * @return false when the file cannot be opened.
 */
bool writeChromeTrace(const std::string &path, const Tracer &tracer);

} // namespace trace

#endif // IDIO_TRACE_CHROME_EXPORT_HH
