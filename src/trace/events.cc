/**
 * @file
 * Event taxonomy tables.
 */

#include "events.hh"

namespace trace
{

namespace
{

/** Per-kind static description. */
struct KindInfo
{
    const char *name;
    const char *category;
    Phase phase;
    const char *argA; ///< nullptr = unused
    const char *argB; ///< nullptr = unused
};

constexpr KindInfo kinds[] = {
    // nic
    {"nic.rx", "nic", Phase::Instant, "dscp", "bytes"},
    {"nic.drop", "nic", Phase::Instant, nullptr, "bytes"},
    {"nic.classify", "nic", Phase::Instant, "appClass", "destCore"},
    {"nic.dmaPayload", "nic", Phase::Complete, "lines", "addr"},
    {"nic.descWb", "nic", Phase::Instant, nullptr, "descIdx"},
    // idio
    {"idio.hintHeader", "idio", Phase::Instant, "core", "addr"},
    {"idio.hintPayload", "idio", Phase::Instant, "core", "addr"},
    {"idio.directDram", "idio", Phase::Instant, "core", "addr"},
    {"idio.burst", "idio", Phase::Instant, "core", nullptr},
    {"idio.fsm", "idio", Phase::Counter, "core", nullptr},
    // cache
    {"cache.ddioUpdate", "cache", Phase::Instant, nullptr, "addr"},
    {"cache.ddioAlloc", "cache", Phase::Instant, "evicted", "addr"},
    {"cache.dramDirect", "cache", Phase::Instant, nullptr, "addr"},
    {"cache.mlcFill", "cache", Phase::Instant, "core", "addr"},
    {"cache.mlcPrefetchFill", "cache", Phase::Instant, "core", "addr"},
    {"cache.mlcEvict", "cache", Phase::Instant, "dirty", "addr"},
    {"cache.pcieInval", "cache", Phase::Instant, "core", "addr"},
    {"cache.selfInval", "cache", Phase::Instant, "core", "addr"},
    {"cache.llcWb", "cache", Phase::Instant, nullptr, "addr"},
    // dpdk
    {"dpdk.alloc", "dpdk", Phase::Instant, nullptr, "mbuf"},
    {"dpdk.free", "dpdk", Phase::Instant, nullptr, "mbuf"},
    {"dpdk.ringBacklog", "dpdk", Phase::Counter, nullptr, nullptr},
    // nf
    {"nf.consume", "nf", Phase::Complete, "core", "bytes"},
    // tenant
    {"tenant.ways", "tenant", Phase::Counter, "tenant", nullptr},
    {"tenant.realloc", "tenant", Phase::Instant, "from", "to"},
};

static_assert(sizeof(kinds) / sizeof(kinds[0]) ==
                  static_cast<unsigned>(EventKind::NumKinds),
              "event table out of sync with EventKind");

const KindInfo &
info(EventKind kind)
{
    return kinds[static_cast<unsigned>(kind)];
}

} // anonymous namespace

const char *
eventName(EventKind kind)
{
    return info(kind).name;
}

const char *
eventCategory(EventKind kind)
{
    return info(kind).category;
}

Phase
eventPhase(EventKind kind)
{
    return info(kind).phase;
}

const char *
eventArgAName(EventKind kind)
{
    return info(kind).argA;
}

const char *
eventArgBName(EventKind kind)
{
    return info(kind).argB;
}

} // namespace trace
