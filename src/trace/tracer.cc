/**
 * @file
 * Tracer implementation (cold paths).
 */

#include "tracer.hh"

namespace trace
{

namespace
{

std::size_t
roundUpPow2(std::size_t n)
{
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

} // anonymous namespace

Source
Tracer::registerSource(const std::string &name)
{
    const auto tid = static_cast<std::uint32_t>(bufs.size());
    bufs.push_back(std::make_unique<RingBuffer>(tid, name));
    RingBuffer *buf = bufs.back().get();
    if (on)
        buf->allocate(cap);
    return Source(this, buf);
}

void
Tracer::setCapacity(std::size_t eventsPerSource)
{
    cap = roundUpPow2(eventsPerSource < 8 ? 8 : eventsPerSource);
}

void
Tracer::enable()
{
    on = true;
    for (auto &b : bufs)
        b->allocate(cap);
}

RingBuffer *
Tracer::findSource(const std::string &name)
{
    for (auto &b : bufs) {
        if (b->name() == name)
            return b.get();
    }
    return nullptr;
}

std::uint64_t
Tracer::count(EventKind kind) const
{
    std::uint64_t n = 0;
    for (const auto &b : bufs) {
        b->forEach([&](const Event &ev) {
            if (ev.kind == kind)
                ++n;
        });
    }
    return n;
}

std::uint64_t
Tracer::totalDropped() const
{
    std::uint64_t n = 0;
    for (const auto &b : bufs)
        n += b->dropped();
    return n;
}

std::size_t
Tracer::allocatedBytes() const
{
    std::size_t n = 0;
    for (const auto &b : bufs)
        n += b->capacityBytes();
    return n;
}

} // namespace trace
