/**
 * @file
 * Chrome trace-event exporter implementation.
 */

#include "chrome_export.hh"

#include <cstdio>
#include <fstream>

#include "stats/json.hh"

namespace trace
{

std::string
ticksToUsString(sim::Tick ticks)
{
    // One tick is one picosecond; 1 us = 1e6 ticks. Emit a fixed-point
    // decimal so no precision is lost on long runs (a double's ~15.9
    // significant digits cannot hold seconds-range timestamps at tick
    // resolution).
    const sim::Tick whole = ticks / 1000000;
    const sim::Tick frac = ticks % 1000000;
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%llu.%06llu",
                  static_cast<unsigned long long>(whole),
                  static_cast<unsigned long long>(frac));
    return buf;
}

namespace
{

void
writeEvent(stats::JsonWriter &w, const RingBuffer &src, const Event &ev)
{
    w.beginObject();
    w.field("name", eventName(ev.kind));
    w.field("cat", eventCategory(ev.kind));
    w.field("pid", 0);
    w.field("tid", src.tid());
    w.fieldRaw("ts", ticksToUsString(ev.ts));

    const Phase phase = eventPhase(ev.kind);
    switch (phase) {
      case Phase::Instant:
        w.field("ph", "i");
        w.field("s", "t"); // thread-scoped instant
        break;
      case Phase::Complete:
        w.field("ph", "X");
        w.fieldRaw("dur", ticksToUsString(ev.dur));
        break;
      case Phase::Counter:
        w.field("ph", "C");
        // Counter tracks are keyed by (pid, name, id): distinguish
        // per-core instances (e.g. the FSM state) via "id".
        if (eventArgAName(ev.kind))
            w.field("id", static_cast<std::uint64_t>(ev.argA));
        break;
    }

    w.beginObject("args");
    if (phase == Phase::Counter) {
        w.field("value", ev.dur);
    } else {
        if (ev.pktId != 0)
            w.field("pkt", ev.pktId);
        if (const char *a = eventArgAName(ev.kind))
            w.field(a, static_cast<std::uint64_t>(ev.argA));
        if (const char *b = eventArgBName(ev.kind))
            w.field(b, ev.argB);
    }
    w.end(); // args
    w.end(); // event
}

} // anonymous namespace

void
writeChromeTrace(std::ostream &os, const Tracer &tracer)
{
    stats::JsonWriter w(os);
    w.beginObject();
    w.field("displayTimeUnit", "ns");

    w.beginArray("traceEvents");

    // Thread-name metadata: one trace thread per source. Per-core FSM
    // counter tracks get derived tids (tid*1000+core) and their own
    // names.
    for (const auto &src : tracer.sources()) {
        w.beginObject();
        w.field("name", "thread_name");
        w.field("ph", "M");
        w.field("pid", 0);
        w.field("tid", src->tid());
        w.beginObject("args");
        w.field("name", src->name());
        w.end();
        w.end();
    }

    for (const auto &src : tracer.sources()) {
        src->forEach(
            [&](const Event &ev) { writeEvent(w, *src, ev); });
    }
    w.end(); // traceEvents

    // Repo-specific metadata: lets aggregation tooling detect ring
    // truncation and map tids back to component names.
    w.beginObject("idio");
    w.beginArray("sources");
    for (const auto &src : tracer.sources()) {
        w.beginObject();
        w.field("tid", src->tid());
        w.field("name", src->name());
        w.field("recorded", src->recorded());
        w.field("dropped", src->dropped());
        w.end();
    }
    w.end(); // sources
    w.end(); // idio

    w.end(); // top-level
    os << "\n";
}

bool
writeChromeTrace(const std::string &path, const Tracer &tracer)
{
    std::ofstream ofs(path);
    if (!ofs)
        return false;
    writeChromeTrace(ofs, tracer);
    return ofs.good();
}

} // namespace trace
