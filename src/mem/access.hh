/**
 * @file
 * Memory access descriptors shared across the hierarchy.
 */

#ifndef IDIO_MEM_ACCESS_HH
#define IDIO_MEM_ACCESS_HH

#include <cstdint>

#include "sim/types.hh"

namespace mem
{

/** Direction of a CPU memory access. */
enum class AccessType : std::uint8_t
{
    Read,
    Write,
};

/** Hierarchy level an access was satisfied from. */
enum class HitLevel : std::uint8_t
{
    L1 = 0,
    MLC,
    LLC,
    DRAM,
};

/** Printable name of a HitLevel. */
const char *hitLevelName(HitLevel level);

/** Outcome of one CPU cacheline access. */
struct AccessResult
{
    /** Latency charged to the requesting core, in ticks. */
    sim::Tick latency = 0;

    /** Level the line was found in. */
    HitLevel level = HitLevel::L1;

    /**
     * Split-link mode only: the private caches missed and a fill
     * request is pending on the mesh link. The latency covers only the
     * local probes, and level is meaningless until the fill reply
     * arrives (the core counts the level then).
     */
    bool pending = false;
};

} // namespace mem

#endif // IDIO_MEM_ACCESS_HH
