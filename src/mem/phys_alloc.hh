/**
 * @file
 * Simulated physical memory allocation.
 *
 * The models need distinct, stable physical addresses for descriptor
 * rings, DMA buffers, and application working sets. PhysAllocator is a
 * bump allocator over the simulated physical address space with an
 * "Invalidatable" page attribute, modelling the kernel-allocated buffers
 * required by the self-invalidating-I/O-buffer instruction (Sec. V-D of
 * the paper: a PTE bit marks pages whose lines may be dropped without
 * writeback).
 */

#ifndef IDIO_MEM_PHYS_ALLOC_HH
#define IDIO_MEM_PHYS_ALLOC_HH

#include <cstdint>
#include <unordered_set>

#include "mem/addr.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace mem
{

/** 4 KiB pages, as in the paper's PTE-bit scheme. */
constexpr std::uint64_t pageSize = 4096;

/** Align an address down to its page base. */
constexpr sim::Addr
pageAlign(sim::Addr a)
{
    return a & ~sim::Addr(pageSize - 1);
}

/**
 * Bump allocator with page attributes for one simulated system.
 */
class PhysAllocator
{
  public:
    /**
     * @param base First allocatable address (default leaves the low
     *        16 MiB for "firmware/MMIO" so address 0 is never handed
     *        out).
     * @param size Size of the allocatable region in bytes.
     */
    explicit PhysAllocator(sim::Addr base = 16ull << 20,
                           std::uint64_t size = 4ull << 30)
        : base(base), limit(base + size), next(base)
    {
    }

    /**
     * Allocate @p bytes aligned to @p align (power of two, >= 64).
     * fatal()s when the simulated memory is exhausted.
     */
    sim::Addr
    allocate(std::uint64_t bytes, std::uint64_t align = lineSize)
    {
        sim::Addr a = (next + align - 1) & ~(align - 1);
        if (a + bytes > limit)
            sim::fatal("simulated physical memory exhausted");
        next = a + bytes;
        return a;
    }

    /**
     * Allocate an Invalidatable buffer: page aligned, with every
     * covered page marked invalidatable. Models the kernel API that
     * flushes and tags pages before handing them to userspace.
     */
    sim::Addr
    allocateInvalidatable(std::uint64_t bytes)
    {
        sim::Addr a = allocate((bytes + pageSize - 1) & ~(pageSize - 1),
                               pageSize);
        for (sim::Addr p = a; p < a + bytes; p += pageSize)
            invalidatablePages.insert(p);
        return a;
    }

    /** True when the page containing @p a is marked invalidatable. */
    bool
    isInvalidatable(sim::Addr a) const
    {
        return invalidatablePages.count(pageAlign(a)) != 0;
    }

    /** Bytes allocated so far. */
    std::uint64_t allocatedBytes() const { return next - base; }

  private:
    sim::Addr base;
    sim::Addr limit;
    sim::Addr next;
    std::unordered_set<sim::Addr> invalidatablePages;
};

} // namespace mem

#endif // IDIO_MEM_PHYS_ALLOC_HH
