/**
 * @file
 * Main-memory model.
 *
 * DramModel charges a fixed device latency per access plus queueing
 * delay from a bandwidth token bucket (one "slot" per cacheline at the
 * configured peak bandwidth, shared across channels). It maintains the
 * DRAM read/write transaction counters the paper plots in Figs. 4 and
 * 10.
 */

#ifndef IDIO_MEM_DRAM_HH
#define IDIO_MEM_DRAM_HH

#include <cstdint>
#include <string>

#include "mem/access.hh"
#include "mem/addr.hh"
#include "sim/sim_object.hh"
#include "stats/registry.hh"

namespace mem
{

/** Configuration for DramModel. */
struct DramConfig
{
    /** Device access latency (row hit average), ns. */
    double accessLatencyNs = 60.0;

    /** Peak sustainable bandwidth, GB/s (DDR4-3200, 3 channels). */
    double bandwidthGBps = 60.0;
};

/**
 * Latency/bandwidth DRAM model with read/write accounting.
 */
class DramModel : public sim::SimObject
{
  public:
    DramModel(sim::Simulation &simulation, const std::string &name,
              const DramConfig &config);

    /**
     * Perform one cacheline access.
     *
     * @param type Read or Write.
     * @return latency in ticks, including queueing delay.
     */
    sim::Tick access(AccessType type);

    /** Number of cacheline reads served. */
    std::uint64_t readCount() const { return reads.get(); }

    /** Number of cacheline writes served. */
    std::uint64_t writeCount() const { return writes.get(); }

    /** Read bandwidth consumed so far, bytes. */
    std::uint64_t readBytes() const { return reads.get() * lineSize; }

    /** Write bandwidth consumed so far, bytes. */
    std::uint64_t writeBytes() const { return writes.get() * lineSize; }

    /** Stats group (for timeline samplers). */
    stats::StatGroup &stats() { return statGroup; }

    /**
     * Discard accumulated channel occupancy. Used after warm-up
     * phases that run "outside" simulated time so that measurement
     * does not start against a backlogged channel.
     */
    void resetTiming() { nextFree = 0; }

    void serialize(ckpt::Serializer &s) const override;
    void unserialize(ckpt::Deserializer &d) override;

  private:
    DramConfig cfg;
    sim::Tick serviceTime;  // channel occupancy per cacheline
    sim::Tick accessLatency;
    sim::Tick nextFree = 0; // earliest tick the channel is free

    stats::StatGroup statGroup;
    stats::Counter reads;
    stats::Counter writes;
    stats::Counter queuedTicks;
};

} // namespace mem

#endif // IDIO_MEM_DRAM_HH
