/**
 * @file
 * Cacheline address arithmetic.
 *
 * Everything in the model moves at cacheline (64 B) granularity, which
 * matches the paper's PCIe-write assumption ("DMA write requests are
 * mostly full cacheline writes").
 */

#ifndef IDIO_MEM_ADDR_HH
#define IDIO_MEM_ADDR_HH

#include <cstdint>

#include "sim/types.hh"

namespace mem
{

/** Cacheline size in bytes. */
constexpr std::uint32_t lineSize = 64;

/** log2(lineSize). */
constexpr std::uint32_t lineShift = 6;

static_assert((1u << lineShift) == lineSize);

/** Align an address down to its cacheline base. */
constexpr sim::Addr
lineAlign(sim::Addr a)
{
    return a & ~sim::Addr(lineSize - 1);
}

/** Cacheline index of an address. */
constexpr sim::Addr
lineNumber(sim::Addr a)
{
    return a >> lineShift;
}

/** Offset of an address within its cacheline. */
constexpr std::uint32_t
lineOffset(sim::Addr a)
{
    return static_cast<std::uint32_t>(a & (lineSize - 1));
}

/** True when @p a is cacheline aligned. */
constexpr bool
isLineAligned(sim::Addr a)
{
    return lineOffset(a) == 0;
}

/**
 * Number of cachelines spanned by the byte range [addr, addr + bytes).
 */
constexpr std::uint64_t
linesSpanned(sim::Addr addr, std::uint64_t bytes)
{
    if (bytes == 0)
        return 0;
    const sim::Addr first = lineNumber(addr);
    const sim::Addr last = lineNumber(addr + bytes - 1);
    return last - first + 1;
}

} // namespace mem

#endif // IDIO_MEM_ADDR_HH
