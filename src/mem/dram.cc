/**
 * @file
 * DramModel implementation.
 */

#include "dram.hh"

#include <algorithm>

#include "ckpt/serializer.hh"
#include "sim/simulation.hh"

namespace mem
{

const char *
hitLevelName(HitLevel level)
{
    switch (level) {
      case HitLevel::L1:
        return "L1";
      case HitLevel::MLC:
        return "MLC";
      case HitLevel::LLC:
        return "LLC";
      case HitLevel::DRAM:
        return "DRAM";
    }
    return "?";
}

DramModel::DramModel(sim::Simulation &simulation, const std::string &name,
                     const DramConfig &config)
    : sim::SimObject(simulation, name), cfg(config),
      statGroup(simulation.statsRegistry(), name),
      reads(statGroup, "reads", "DRAM cacheline read transactions"),
      writes(statGroup, "writes", "DRAM cacheline write transactions"),
      queuedTicks(statGroup, "queuedTicks",
                  "total queueing delay suffered at DRAM (ticks)")
{
    accessLatency = sim::nsToTicks(cfg.accessLatencyNs);
    // Time one cacheline occupies the (aggregated) channels.
    const double ns = static_cast<double>(lineSize) / cfg.bandwidthGBps;
    serviceTime = std::max<sim::Tick>(1, sim::nsToTicks(ns));
}

sim::Tick
DramModel::access(AccessType type)
{
    const sim::Tick nowT = now();
    const sim::Tick start = std::max(nowT, nextFree);
    const sim::Tick queueDelay = start - nowT;
    nextFree = start + serviceTime;

    if (type == AccessType::Read)
        ++reads;
    else
        ++writes;
    queuedTicks += queueDelay;

    return queueDelay + accessLatency;
}

void
DramModel::serialize(ckpt::Serializer &s) const
{
    s.writeTick(nextFree);
}

void
DramModel::unserialize(ckpt::Deserializer &d)
{
    nextFree = d.readTick();
}

} // namespace mem
