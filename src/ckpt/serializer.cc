/**
 * @file
 * Checkpoint Serializer/Deserializer implementation.
 */

#include "serializer.hh"

#include <algorithm>

#include "sim/event_queue.hh"

namespace ckpt
{

std::uint64_t
fnv1a(const void *data, std::size_t n)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint64_t h = 14695981039346656037ULL;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ULL;
    }
    return h;
}

void
Serializer::beginSection(const std::string &name, std::uint32_t version)
{
    if (open)
        sim::panic("ckpt: beginSection('%s') with a section still open",
                   name.c_str());
    for (const Section &s : sections) {
        if (s.name == name)
            sim::panic("ckpt: duplicate section name '%s'",
                       name.c_str());
    }
    sections.push_back(Section{name, version, {}});
    open = true;
}

void
Serializer::endSection()
{
    if (!open)
        sim::panic("ckpt: endSection() without an open section");
    open = false;
}

void
Serializer::writeBytes(const void *data, std::size_t n)
{
    if (!open)
        sim::panic("ckpt: write outside a section");
    if (n == 0)
        return;
    auto &payload = sections.back().payload;
    const auto *p = static_cast<const std::uint8_t *>(data);
    payload.insert(payload.end(), p, p + n);
}

void
Serializer::writeBoolVec(const std::vector<bool> &v)
{
    writeU64(v.size());
    for (const bool b : v)
        writeU8(b ? 1 : 0);
}

namespace
{

void
appendRaw(std::vector<std::uint8_t> &out, const void *data,
          std::size_t n)
{
    if (n == 0)
        return; // empty vectors hand us data() == nullptr
    const auto *p = static_cast<const std::uint8_t *>(data);
    out.insert(out.end(), p, p + n);
}

template <typename T>
void
appendInt(std::vector<std::uint8_t> &out, T v)
{
    appendRaw(out, &v, sizeof(v));
}

} // anonymous namespace

std::vector<std::uint8_t>
Serializer::finish(std::uint64_t seed, sim::Tick tick)
{
    if (open)
        sim::panic("ckpt: finish() with a section still open");

    std::vector<std::uint8_t> out;
    appendRaw(out, magic.data(), magic.size());
    appendInt<std::uint32_t>(out, formatVersion);
    appendInt<std::uint64_t>(out, seed);
    appendInt<std::uint64_t>(out, tick);
    appendInt<std::uint32_t>(
        out, static_cast<std::uint32_t>(sections.size()));

    for (const Section &s : sections) {
        appendInt<std::uint32_t>(
            out, static_cast<std::uint32_t>(s.name.size()));
        appendRaw(out, s.name.data(), s.name.size());
        appendInt<std::uint32_t>(out, s.version);
        appendInt<std::uint64_t>(out, s.payload.size());
        appendInt<std::uint64_t>(
            out, fnv1a(s.payload.data(), s.payload.size()));
        appendRaw(out, s.payload.data(), s.payload.size());
    }
    return out;
}

namespace
{

/** Bounds-checked little reader over the raw blob. */
class BlobReader
{
  public:
    BlobReader(const std::vector<std::uint8_t> &blob) : blob(blob) {}

    void
    read(void *out, std::size_t n)
    {
        if (pos + n > blob.size())
            sim::fatal("ckpt: truncated checkpoint (need %zu bytes at "
                       "offset %zu, have %zu)",
                       n, pos, blob.size());
        if (n != 0) // empty vectors hand us out == nullptr
            std::memcpy(out, blob.data() + pos, n);
        pos += n;
    }

    template <typename T>
    T
    readInt()
    {
        T v;
        read(&v, sizeof(v));
        return v;
    }

    std::string
    readString(std::size_t n)
    {
        std::string s(n, '\0');
        read(s.data(), n);
        return s;
    }

    std::size_t position() const { return pos; }
    bool atEnd() const { return pos == blob.size(); }

  private:
    const std::vector<std::uint8_t> &blob;
    std::size_t pos = 0;
};

} // anonymous namespace

Deserializer::Deserializer(const std::vector<std::uint8_t> &blob)
{
    BlobReader r(blob);

    std::array<char, 8> m;
    r.read(m.data(), m.size());
    if (m != magic)
        sim::fatal("ckpt: bad magic (not a checkpoint file)");

    const std::uint32_t version = r.readInt<std::uint32_t>();
    if (version != formatVersion)
        sim::fatal("ckpt: format version mismatch (file %u, "
                   "simulator %u)",
                   version, formatVersion);

    hdrSeed = r.readInt<std::uint64_t>();
    hdrTick = r.readInt<std::uint64_t>();
    const std::uint32_t count = r.readInt<std::uint32_t>();

    sections.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        Section s;
        const std::uint32_t nameLen = r.readInt<std::uint32_t>();
        s.name = r.readString(nameLen);
        s.version = r.readInt<std::uint32_t>();
        const std::uint64_t payloadLen = r.readInt<std::uint64_t>();
        const std::uint64_t checksum = r.readInt<std::uint64_t>();
        s.payload.resize(static_cast<std::size_t>(payloadLen));
        r.read(s.payload.data(), s.payload.size());
        const std::uint64_t actual =
            fnv1a(s.payload.data(), s.payload.size());
        if (actual != checksum)
            sim::fatal("ckpt: checksum mismatch in section '%s' "
                       "(stored %016llx, computed %016llx)",
                       s.name.c_str(), (unsigned long long)checksum,
                       (unsigned long long)actual);
        if (findSection(s.name))
            sim::fatal("ckpt: duplicate section '%s'", s.name.c_str());
        sections.push_back(std::move(s));
    }

    if (!r.atEnd())
        sim::fatal("ckpt: %zu trailing bytes after the last section",
                   blob.size() - r.position());
}

const Deserializer::Section *
Deserializer::findSection(const std::string &name) const
{
    for (const Section &s : sections) {
        if (s.name == name)
            return &s;
    }
    return nullptr;
}

bool
Deserializer::hasSection(const std::string &name) const
{
    return findSection(name) != nullptr;
}

std::uint32_t
Deserializer::beginSection(const std::string &name)
{
    if (cur)
        sim::panic("ckpt: beginSection('%s') with '%s' still open",
                   name.c_str(), cur->name.c_str());
    cur = findSection(name);
    if (!cur)
        sim::fatal("ckpt: checkpoint has no section '%s' "
                   "(model/checkpoint drift)",
                   name.c_str());
    cursor = 0;
    return cur->version;
}

void
Deserializer::endSection()
{
    if (!cur)
        sim::panic("ckpt: endSection() without an open section");
    if (cursor != cur->payload.size())
        sim::fatal("ckpt: section '%s' only partially consumed "
                   "(%zu of %zu bytes; schema drift)",
                   cur->name.c_str(), cursor, cur->payload.size());
    cur = nullptr;
}

void
Deserializer::readBytes(void *out, std::size_t n)
{
    if (!cur)
        sim::panic("ckpt: read outside a section");
    if (cursor + n > cur->payload.size())
        sim::fatal("ckpt: read past the end of section '%s' "
                   "(offset %zu + %zu > %zu)",
                   cur->name.c_str(), cursor, n, cur->payload.size());
    if (n != 0) // empty vectors hand us out == nullptr
        std::memcpy(out, cur->payload.data() + cursor, n);
    cursor += n;
}

std::string
Deserializer::readString()
{
    const std::uint32_t n = readU32();
    std::string s(n, '\0');
    readBytes(s.data(), n);
    return s;
}

std::vector<bool>
Deserializer::readBoolVec()
{
    const std::uint64_t n = readU64();
    std::vector<bool> v(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i)
        v[static_cast<std::size_t>(i)] = readU8() != 0;
    return v;
}

void
Deserializer::deferOneShot(std::uint64_t origSeq, sim::Tick when,
                           std::function<void()> fn,
                           sim::EventQueue *target)
{
    deferred.push_back(
        Deferred{origSeq, when, std::move(fn), nullptr, target});
}

void
Deserializer::deferEvent(std::uint64_t origSeq, sim::Tick when,
                         sim::Event *ev, sim::EventQueue *target)
{
    deferred.push_back(Deferred{origSeq, when, nullptr, ev, target});
}

void
serializeEvent(Serializer &s, const sim::Event &ev)
{
    s.writeBool(ev.scheduled());
    if (ev.scheduled()) {
        s.writeU64(ev.when());
        s.writeU64(ev.seq());
    }
}

void
unserializeEvent(Deserializer &d, sim::Event *ev,
                 sim::EventQueue *target)
{
    if (!d.readBool())
        return;
    const sim::Tick when = d.readU64();
    const std::uint64_t seq = d.readU64();
    d.deferEvent(seq, when, ev, target);
}

void
Deserializer::applyDeferred(sim::EventQueue &eq)
{
    // Replay in original-sequence order: each queue hands out fresh
    // ascending sequence numbers, so same-tick events keep exactly the
    // relative order they had in the checkpointed run. Sequence
    // numbers are per-queue; one global sort still preserves every
    // queue's relative order.
    std::sort(deferred.begin(), deferred.end(),
              [](const Deferred &a, const Deferred &b) {
                  return a.origSeq < b.origSeq;
              });
    for (Deferred &d : deferred) {
        sim::EventQueue &q = d.target ? *d.target : eq;
        if (d.fn)
            q.schedule(d.when, std::move(d.fn));
        else
            q.schedule(d.ev, d.when);
    }
    deferred.clear();
}

} // namespace ckpt
