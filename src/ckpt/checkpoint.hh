/**
 * @file
 * Whole-simulation checkpoint save/restore orchestration.
 *
 * save() walks the Simulation's SimObject registry in registration
 * order and writes one section per object, plus four reserved
 * pseudo-sections:
 *
 *   _eventq  — tick, sequence counter, processed-event counters;
 *   _rootRng — the root xoshiro256** state;
 *   _stats   — every registered stat, keyed (group name, stat name);
 *   _tracer  — packet-id counter plus each source's retained events.
 *
 * restore() expects a *started* system built from the same
 * configuration: construction and start() rebuild all structural
 * state (addresses, sizes, callbacks, observers), then restore
 * overwrites the dynamic state — it drops every pending event that
 * start() scheduled, replays the checkpointed pending set in original
 * sequence order, and forces the time base last. A restored run is
 * bit-identical to the uninterrupted one.
 *
 * Checkpoints must be taken between events (i.e.\ from harness code
 * around runUntil()/runFor() boundaries), never from inside an event
 * handler.
 */

#ifndef IDIO_CKPT_CHECKPOINT_HH
#define IDIO_CKPT_CHECKPOINT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace sim
{
class Simulation;
}

namespace ckpt
{

/** Serialize the full dynamic state of @p simulation into a blob. */
std::vector<std::uint8_t> save(sim::Simulation &simulation);

/** save() + write the blob to @p path (fatal on I/O error). */
void saveToFile(const std::string &path, sim::Simulation &simulation);

/**
 * Restore @p blob into @p simulation (a freshly constructed and
 * started system with the same configuration and seed). Fatal on any
 * mismatch: seed, format version, missing/extra sections, checksum.
 */
void restore(sim::Simulation &simulation,
             const std::vector<std::uint8_t> &blob);

/** Read @p path and restore() it (fatal on I/O error). */
void restoreFromFile(const std::string &path,
                     sim::Simulation &simulation);

} // namespace ckpt

#endif // IDIO_CKPT_CHECKPOINT_HH
