/**
 * @file
 * Versioned, sectioned binary checkpoint serialization.
 *
 * A checkpoint is a flat blob of named sections, one per SimObject
 * (keyed by SimObject::name()) plus a few reserved pseudo-sections
 * ("_eventq", "_rootRng", "_stats", "_tracer") written by the
 * ckpt::save() orchestrator. Truncation and schema drift fail loudly:
 * every section carries its own version, length and FNV-1a checksum,
 * and Deserializer::endSection() verifies the reader consumed the
 * payload exactly.
 *
 * Blob layout (all integers little-endian, no padding):
 *
 *   header:
 *     char[8]  magic          "IDIOCKPT"
 *     u32      formatVersion  (ckpt::formatVersion)
 *     u64      seed           (root simulation seed)
 *     u64      tick           (simulated time of the checkpoint)
 *     u32      sectionCount
 *   sectionCount x section:
 *     u32      nameLen
 *     char[n]  name
 *     u32      version        (per-section schema version)
 *     u64      payloadLen
 *     u64      checksum       (FNV-1a 64 over the payload bytes)
 *     u8[len]  payload
 *
 * Pending one-shot events cannot be serialized as raw callables;
 * instead each owner records enough state to re-create its own
 * callbacks and, on restore, re-registers them through
 * Deserializer::deferOneShot()/deferEvent(). The deferred schedules
 * are replayed in original-sequence order so same-tick events fire in
 * exactly the order the uninterrupted run would have used.
 */

#ifndef IDIO_CKPT_SERIALIZER_HH
#define IDIO_CKPT_SERIALIZER_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <type_traits>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace sim
{
class Event;
class EventQueue;
}

namespace ckpt
{

/**
 * Whole-file format version; bumped on any layout change.
 * v3: _eventq sections carry the scheduler backend tag, the timing-
 * wheel base tick and the wheel geometry (levels, slot bits), and
 * link-channel sections store batched delivery records.
 */
constexpr std::uint32_t formatVersion = 3;

/** File magic, first 8 bytes of every checkpoint. */
constexpr std::array<char, 8> magic = {'I', 'D', 'I', 'O',
                                       'C', 'K', 'P', 'T'};

/** FNV-1a 64-bit checksum over a byte range. */
std::uint64_t fnv1a(const void *data, std::size_t n);

/**
 * Builds a checkpoint blob section by section. Writers open a section,
 * append typed fields, and close it; finish() assembles the blob with
 * the header and per-section checksums.
 */
class Serializer
{
  public:
    Serializer() = default;
    Serializer(const Serializer &) = delete;
    Serializer &operator=(const Serializer &) = delete;

    /**
     * Open a new section. Section names must be unique within one
     * checkpoint (they key the restore lookup); duplicates panic.
     */
    void beginSection(const std::string &name,
                      std::uint32_t version = 1);

    /** Close the currently open section. */
    void endSection();

    /** @{ Typed field writers (only valid inside a section). */
    void writeBytes(const void *data, std::size_t n);

    void writeU8(std::uint8_t v) { writeBytes(&v, sizeof(v)); }
    void writeU16(std::uint16_t v) { writeBytes(&v, sizeof(v)); }
    void writeU32(std::uint32_t v) { writeBytes(&v, sizeof(v)); }
    void writeU64(std::uint64_t v) { writeBytes(&v, sizeof(v)); }
    void writeBool(bool v) { writeU8(v ? 1 : 0); }
    void writeTick(sim::Tick t) { writeU64(t); }

    void
    writeDouble(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        writeU64(bits);
    }

    void
    writeString(const std::string &s)
    {
        writeU32(static_cast<std::uint32_t>(s.size()));
        writeBytes(s.data(), s.size());
    }

    /** Length-prefixed vector of trivially copyable elements. */
    template <typename T>
    void
    writePodVec(const std::vector<T> &v)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "writePodVec requires a trivially copyable T");
        writeU64(v.size());
        if (!v.empty())
            writeBytes(v.data(), v.size() * sizeof(T));
    }

    /** vector<bool> (bit-packed in memory) as one byte per element. */
    void writeBoolVec(const std::vector<bool> &v);
    /** @} */

    /** Assemble the final blob (header + all closed sections). */
    std::vector<std::uint8_t> finish(std::uint64_t seed,
                                     sim::Tick tick);

  private:
    struct Section
    {
        std::string name;
        std::uint32_t version;
        std::vector<std::uint8_t> payload;
    };

    std::vector<Section> sections;
    bool open = false;
};

/**
 * Reads a checkpoint blob. The constructor validates the magic, the
 * format version and every section checksum eagerly, so a truncated
 * or corrupted file fails before any state is touched.
 */
class Deserializer
{
  public:
    explicit Deserializer(const std::vector<std::uint8_t> &blob);
    Deserializer(const Deserializer &) = delete;
    Deserializer &operator=(const Deserializer &) = delete;

    /** @{ Header accessors. */
    std::uint64_t seed() const { return hdrSeed; }
    sim::Tick tick() const { return hdrTick; }
    /** @} */

    bool hasSection(const std::string &name) const;

    /**
     * Open a section for reading and return its schema version.
     * Fatal when the section is absent (model/checkpoint drift).
     */
    std::uint32_t beginSection(const std::string &name);

    /**
     * Close the current section; fatal unless the reader consumed the
     * payload exactly (partial consumption means schema drift).
     */
    void endSection();

    /** @{ Typed field readers (mirror the Serializer writers). */
    void readBytes(void *out, std::size_t n);

    std::uint8_t
    readU8()
    {
        std::uint8_t v;
        readBytes(&v, sizeof(v));
        return v;
    }

    std::uint16_t
    readU16()
    {
        std::uint16_t v;
        readBytes(&v, sizeof(v));
        return v;
    }

    std::uint32_t
    readU32()
    {
        std::uint32_t v;
        readBytes(&v, sizeof(v));
        return v;
    }

    std::uint64_t
    readU64()
    {
        std::uint64_t v;
        readBytes(&v, sizeof(v));
        return v;
    }

    bool readBool() { return readU8() != 0; }
    sim::Tick readTick() { return readU64(); }

    double
    readDouble()
    {
        const std::uint64_t bits = readU64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::string readString();

    template <typename T>
    std::vector<T>
    readPodVec()
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "readPodVec requires a trivially copyable T");
        const std::uint64_t n = readU64();
        std::vector<T> v(static_cast<std::size_t>(n));
        if (n)
            readBytes(v.data(), v.size() * sizeof(T));
        return v;
    }

    std::vector<bool> readBoolVec();
    /** @} */

    /**
     * @{ Deferred event re-registration. unserialize() implementations
     * cannot schedule directly — relative ordering of same-tick events
     * must match the checkpointed sequence numbers, which requires a
     * globally sorted replay. Owners register their pending events
     * here; ckpt::restore() replays them in @p origSeq order.
     *
     * @p target selects the event queue the schedule replays into;
     * nullptr (the default, and the only case in single-queue models)
     * means the queue passed to applyDeferred(). Sharded models pass
     * their domain queue; sequence numbers are per-queue, so the sort
     * preserves each queue's relative order independently.
     */
    void deferOneShot(std::uint64_t origSeq, sim::Tick when,
                      std::function<void()> fn,
                      sim::EventQueue *target = nullptr);
    void deferEvent(std::uint64_t origSeq, sim::Tick when,
                    sim::Event *ev, sim::EventQueue *target = nullptr);

    /** Replay all deferred schedules in original-sequence order. */
    void applyDeferred(sim::EventQueue &eq);
    /** @} */

  private:
    struct Section
    {
        std::string name;
        std::uint32_t version;
        std::vector<std::uint8_t> payload;
    };

    struct Deferred
    {
        std::uint64_t origSeq;
        sim::Tick when;
        std::function<void()> fn; // empty => reschedulable `ev`
        sim::Event *ev;
        sim::EventQueue *target; // nullptr => applyDeferred()'s queue
    };

    const Section *findSection(const std::string &name) const;

    std::uint64_t hdrSeed = 0;
    sim::Tick hdrTick = 0;
    std::vector<Section> sections;
    const Section *cur = nullptr;
    std::size_t cursor = 0;
    std::vector<Deferred> deferred;
};

/**
 * @{ Helpers for member (reschedulable) events — PeriodicEvents, pump
 * and step events, and the like. serializeEvent() records
 * {scheduled, when, seq}; unserializeEvent() defers a reschedule of
 * the same Event object when it was pending at checkpoint time.
 * @p target selects the domain queue (nullptr = restore's main queue).
 */
void serializeEvent(Serializer &s, const sim::Event &ev);
void unserializeEvent(Deserializer &d, sim::Event *ev,
                      sim::EventQueue *target = nullptr);
/** @} */

} // namespace ckpt

#endif // IDIO_CKPT_SERIALIZER_HH
