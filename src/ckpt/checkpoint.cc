/**
 * @file
 * Checkpoint orchestration implementation.
 */

#include "checkpoint.hh"

#include <fstream>
#include <iterator>

#include "serializer.hh"
#include "sim/event_queue.hh"
#include "sim/sim_object.hh"
#include "sim/simulation.hh"
#include "stats/latency_recorder.hh"
#include "stats/registry.hh"
#include "stats/stat.hh"
#include "trace/tracer.hh"

namespace ckpt
{

namespace
{

// Stat type tags in the _stats section.
constexpr std::uint8_t tagCounter = 0;
constexpr std::uint8_t tagGauge = 1;
constexpr std::uint8_t tagLatencyRecorder = 2;

void
saveEventq(Serializer &s, sim::EventQueue &eq,
           const std::string &section = "_eventq")
{
    s.beginSection(section, /*version=*/2);
    s.writeU8(static_cast<std::uint8_t>(eq.backend()));
    s.writeU32(sim::EventQueueRestoreAccess::wheelLevels());
    s.writeU32(sim::EventQueueRestoreAccess::wheelSlotBits());
    s.writeTick(sim::EventQueueRestoreAccess::wheelBase(eq));
    s.writeTick(eq.now());
    s.writeU64(sim::EventQueueRestoreAccess::nextSeq(eq));
    s.writeU64(eq.processedEvents());
    s.writeU64(sim::EventQueueRestoreAccess::sinceHook(eq));
    s.writeU64(eq.pending());
    s.endSection();
}

void
restoreEventq(Deserializer &d, sim::EventQueue &eq,
              const std::string &section)
{
    const std::uint32_t version = d.beginSection(section);
    if (version != 2)
        sim::fatal("ckpt: '%s' section version %u; this build reads "
                   "version 2",
                   section.c_str(), version);
    const std::uint8_t backend = d.readU8();
    const std::uint32_t levels = d.readU32();
    const std::uint32_t slotBits = d.readU32();
    const sim::Tick wheelBase = d.readTick();
    const sim::Tick tick = d.readTick();
    const std::uint64_t nextSeq = d.readU64();
    const std::uint64_t nProcessed = d.readU64();
    const std::uint64_t sinceHook = d.readU64();
    const std::uint64_t pendingCount = d.readU64();
    d.endSection();

    // Validate scheduler identity eagerly: the pending set was already
    // replayed into this queue, so drift between the checkpointed and
    // live wheel would otherwise surface as a silent ordering change.
    if (backend != static_cast<std::uint8_t>(eq.backend()))
        sim::fatal("ckpt: '%s' was checkpointed under the %s backend "
                   "but this run uses %s; set IDIO_EVENTQ to match",
                   section.c_str(),
                   sim::EventQueue::backendName(
                       static_cast<sim::SchedulerBackend>(backend)),
                   sim::EventQueue::backendName(eq.backend()));
    if (levels != sim::EventQueueRestoreAccess::wheelLevels() ||
        slotBits != sim::EventQueueRestoreAccess::wheelSlotBits())
        sim::fatal("ckpt: '%s' wheel geometry %u levels x 2^%u slots "
                   "does not match this build (%u x 2^%u)",
                   section.c_str(), levels, slotBits,
                   sim::EventQueueRestoreAccess::wheelLevels(),
                   sim::EventQueueRestoreAccess::wheelSlotBits());
    if (wheelBase > tick)
        sim::fatal("ckpt: '%s' wheel base %llu is ahead of the "
                   "checkpointed tick %llu (corrupt section)",
                   section.c_str(), (unsigned long long)wheelBase,
                   (unsigned long long)tick);

    if (eq.pending() != pendingCount)
        sim::fatal("ckpt: restored %zu pending events in '%s' but the "
                   "checkpoint recorded %llu — some owner failed to "
                   "re-register its callbacks",
                   eq.pending(), section.c_str(),
                   (unsigned long long)pendingCount);

    sim::EventQueueRestoreAccess::setCurTick(eq, tick);
    sim::EventQueueRestoreAccess::setNextSeq(eq, nextSeq);
    sim::EventQueueRestoreAccess::setProcessed(eq, nProcessed);
    sim::EventQueueRestoreAccess::setSinceHook(eq, sinceHook);
}

void
saveRootRng(Serializer &s, sim::Simulation &simulation)
{
    s.beginSection("_rootRng");
    for (const std::uint64_t w : simulation.rng().state())
        s.writeU64(w);
    s.endSection();
}

void
saveStats(Serializer &s, const stats::Registry &reg)
{
    s.beginSection("_stats");
    const auto &groups = reg.groups();
    s.writeU32(static_cast<std::uint32_t>(groups.size()));
    for (const stats::StatGroup *g : groups) {
        s.writeString(g->name());
        s.writeU32(static_cast<std::uint32_t>(g->statList().size()));
        for (const stats::Stat *st : g->statList()) {
            s.writeString(st->name());
            if (const auto *c =
                    dynamic_cast<const stats::Counter *>(st)) {
                s.writeU8(tagCounter);
                s.writeU64(c->get());
            } else if (const auto *gg =
                           dynamic_cast<const stats::Gauge *>(st)) {
                s.writeU8(tagGauge);
                s.writeDouble(gg->value());
            } else if (const auto *lr = dynamic_cast<
                           const stats::LatencyRecorder *>(st)) {
                s.writeU8(tagLatencyRecorder);
                s.writePodVec(lr->rawSamples());
            } else {
                sim::fatal("ckpt: stat '%s.%s' has an unsupported "
                           "type; teach saveStats() about it",
                           g->name().c_str(), st->name().c_str());
            }
        }
    }
    s.endSection();
}

void
restoreStats(Deserializer &d, stats::Registry &reg)
{
    d.beginSection("_stats");
    const std::uint32_t nGroups = d.readU32();
    if (nGroups != reg.groups().size())
        sim::fatal("ckpt: stat group count mismatch (checkpoint %u, "
                   "simulation %zu)",
                   nGroups, reg.groups().size());
    for (std::uint32_t gi = 0; gi < nGroups; ++gi) {
        const std::string gname = d.readString();
        stats::StatGroup *g = reg.findGroup(gname);
        if (!g)
            sim::fatal("ckpt: checkpointed stat group '%s' not "
                       "present in this simulation",
                       gname.c_str());
        const std::uint32_t nStats = d.readU32();
        if (nStats != g->statList().size())
            sim::fatal("ckpt: stat count mismatch in group '%s' "
                       "(checkpoint %u, simulation %zu)",
                       gname.c_str(), nStats, g->statList().size());
        for (std::uint32_t si = 0; si < nStats; ++si) {
            const std::string sname = d.readString();
            stats::Stat *st = g->find(sname);
            if (!st)
                sim::fatal("ckpt: checkpointed stat '%s.%s' not "
                           "present in this simulation",
                           gname.c_str(), sname.c_str());
            const std::uint8_t tag = d.readU8();
            if (tag == tagCounter) {
                auto *c = dynamic_cast<stats::Counter *>(st);
                if (!c)
                    sim::fatal("ckpt: stat '%s.%s' is not a Counter",
                               gname.c_str(), sname.c_str());
                c->restore(d.readU64());
            } else if (tag == tagGauge) {
                auto *gg = dynamic_cast<stats::Gauge *>(st);
                if (!gg)
                    sim::fatal("ckpt: stat '%s.%s' is not a Gauge",
                               gname.c_str(), sname.c_str());
                gg->set(d.readDouble());
            } else if (tag == tagLatencyRecorder) {
                auto *lr = dynamic_cast<stats::LatencyRecorder *>(st);
                if (!lr)
                    sim::fatal(
                        "ckpt: stat '%s.%s' is not a LatencyRecorder",
                        gname.c_str(), sname.c_str());
                lr->restore(d.readPodVec<std::uint64_t>());
            } else {
                sim::fatal("ckpt: unknown stat tag %u for '%s.%s'",
                           tag, gname.c_str(), sname.c_str());
            }
        }
    }
    d.endSection();
}

void
saveTracer(Serializer &s, trace::Tracer &tracer)
{
    s.beginSection("_tracer");
    s.writeBool(tracer.enabled());
    s.writeU64(tracer.capacity());
    s.writeU64(tracer.peekNextPacketId());
    const auto &srcs = tracer.sources();
    s.writeU32(static_cast<std::uint32_t>(srcs.size()));
    for (const auto &buf : srcs) {
        s.writeString(buf->name());
        s.writeU64(buf->recorded());
        std::vector<trace::Event> events;
        events.reserve(buf->retained());
        buf->forEach(
            [&](const trace::Event &ev) { events.push_back(ev); });
        s.writePodVec(events);
    }
    s.endSection();
}

void
restoreTracer(Deserializer &d, trace::Tracer &tracer)
{
    d.beginSection("_tracer");
    const bool on = d.readBool();
    const std::uint64_t cap = d.readU64();
    const std::uint64_t nextPktId = d.readU64();
    const std::uint32_t nSources = d.readU32();
    if (nSources != tracer.sources().size())
        sim::fatal("ckpt: trace source count mismatch (checkpoint "
                   "%u, simulation %zu)",
                   nSources, tracer.sources().size());

    // Match the checkpointed enablement. setCapacity() only applies
    // to rings not yet allocated, so a harness that already enabled
    // tracing with a different capacity keeps its own rings (the
    // retained events replay identically either way).
    tracer.setCapacity(static_cast<std::size_t>(cap));
    if (on)
        tracer.enable();

    for (std::uint32_t i = 0; i < nSources; ++i) {
        const std::string name = d.readString();
        const std::uint64_t recorded = d.readU64();
        const auto events = d.readPodVec<trace::Event>();
        trace::RingBuffer *buf = tracer.findSource(name);
        if (!buf)
            sim::fatal("ckpt: checkpointed trace source '%s' not "
                       "present in this simulation",
                       name.c_str());
        if (recorded && !buf->allocated()) {
            // Tracing was disabled after recording: the ring still
            // holds exportable events, so it must exist here too.
            buf->allocate(tracer.capacity());
        }
        // Replay retained events through record() so the ring layout
        // (head counter and slot placement) matches the checkpointed
        // tracer exactly.
        buf->resetForRestore(recorded - events.size());
        for (const trace::Event &ev : events)
            buf->record(ev);
    }
    tracer.setNextPacketId(nextPktId);
    d.endSection();
}

} // anonymous namespace

std::vector<std::uint8_t>
save(sim::Simulation &simulation)
{
    sim::EventQueue &eq = simulation.eventq();
    Serializer s;
    saveEventq(s, eq);
    // Per-domain queues of a sharded model. Single-queue simulations
    // have none, keeping their checkpoint bytes unchanged.
    for (std::size_t i = 0; i < simulation.domainQueueCount(); ++i) {
        saveEventq(s, simulation.domainQueue(i),
                   "_eventq:" + simulation.domainQueueName(i));
    }
    saveRootRng(s, simulation);
    saveStats(s, simulation.statsRegistry());
    saveTracer(s, simulation.tracer());
    for (const sim::SimObject *obj : simulation.objects()) {
        s.beginSection(obj->name());
        obj->serialize(s);
        s.endSection();
    }
    return s.finish(simulation.seed(), eq.now());
}

void
saveToFile(const std::string &path, sim::Simulation &simulation)
{
    const std::vector<std::uint8_t> blob = save(simulation);
    std::ofstream ofs(path, std::ios::binary);
    if (!ofs)
        sim::fatal("ckpt: cannot open '%s' for writing",
                   path.c_str());
    ofs.write(reinterpret_cast<const char *>(blob.data()),
              static_cast<std::streamsize>(blob.size()));
    if (!ofs)
        sim::fatal("ckpt: short write to '%s'", path.c_str());
}

void
restore(sim::Simulation &simulation,
        const std::vector<std::uint8_t> &blob)
{
    Deserializer d(blob);
    if (d.seed() != simulation.seed())
        sim::fatal("ckpt: seed mismatch (checkpoint %llu, simulation "
                   "%llu); pass the matching --seed",
                   (unsigned long long)d.seed(),
                   (unsigned long long)simulation.seed());

    sim::EventQueue &eq = simulation.eventq();

    // Drop everything construction/start() scheduled; the checkpointed
    // pending set replaces it wholesale.
    sim::EventQueueRestoreAccess::clearPending(eq);
    for (std::size_t i = 0; i < simulation.domainQueueCount(); ++i) {
        sim::EventQueueRestoreAccess::clearPending(
            simulation.domainQueue(i));
    }

    // _rootRng
    d.beginSection("_rootRng");
    std::array<std::uint64_t, 4> st;
    for (auto &w : st)
        w = d.readU64();
    simulation.rng().setState(st);
    d.endSection();

    restoreStats(d, simulation.statsRegistry());
    restoreTracer(d, simulation.tracer());

    for (sim::SimObject *obj : simulation.objects()) {
        d.beginSection(obj->name());
        obj->unserialize(d);
        d.endSection();
    }

    // Replay pending events in original order, then force the time
    // bases and counters last (schedule() checks against curTick).
    d.applyDeferred(eq);

    restoreEventq(d, eq, "_eventq");
    for (std::size_t i = 0; i < simulation.domainQueueCount(); ++i) {
        restoreEventq(d, simulation.domainQueue(i),
                      "_eventq:" + simulation.domainQueueName(i));
    }
}

void
restoreFromFile(const std::string &path, sim::Simulation &simulation)
{
    std::ifstream ifs(path, std::ios::binary);
    if (!ifs)
        sim::fatal("ckpt: cannot open '%s'", path.c_str());
    std::vector<std::uint8_t> blob(
        (std::istreambuf_iterator<char>(ifs)),
        std::istreambuf_iterator<char>());
    restore(simulation, blob);
}

} // namespace ckpt
