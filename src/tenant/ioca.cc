/**
 * @file
 * IocaController implementation.
 */

#include "ioca.hh"

#include "ckpt/serializer.hh"
#include "sim/simulation.hh"

namespace tenant
{

IocaController::IocaController(sim::Simulation &simulation,
                               const std::string &name,
                               cache::MemoryHierarchy &hierarchy,
                               TenantManager &manager,
                               const IocaConfig &config)
    : sim::SimObject(simulation, name),
      statGroup(simulation.statsRegistry(), name),
      evaluations(statGroup, "evaluations", "control intervals"),
      reallocations(statGroup, "reallocations",
                    "ways moved between tenants"),
      hier(hierarchy), mgr(manager), cfg(config),
      trc(simulation.tracer().registerSource(name)),
      lastDemand(manager.numTenants(), 0),
      tick(simulation.eventq(), config.interval, [this] { evaluate(); },
           name + ".tick")
{
    if (!mgr.partitioned())
        sim::fatal("IocaController needs a partitioned TenantManager");
    if (cfg.minWays == 0)
        sim::fatal("IocaController minWays must be >= 1");
}

void
IocaController::start()
{
    for (std::uint32_t id = 0; id < mgr.numTenants(); ++id)
        lastDemand[id] = tenantDemand(id);
    tick.start();
}

void
IocaController::stop()
{
    tick.stop();
}

std::uint64_t
IocaController::tenantDemand(std::uint32_t id) const
{
    std::uint64_t misses = 0;
    for (const sim::CoreId c : mgr.tenant(id).cores)
        misses += hier.mlcOf(c).misses.get();
    return misses;
}

void
IocaController::evaluate()
{
    ++evaluations;

    const std::uint32_t n = mgr.numTenants();
    std::vector<std::uint64_t> pressure(n, 0);
    for (std::uint32_t id = 0; id < n; ++id) {
        const std::uint64_t now_ = tenantDemand(id);
        pressure[id] = (now_ - lastDemand[id]) *
                       sloWeight(mgr.tenant(id).slo);
        lastDemand[id] = now_;
    }

    // Hill-climb: compare tenants by pressure per held way (cross-
    // multiplied to stay in integers); ties break toward the lower
    // tenant id, so the decision is deterministic.
    auto denser = [&](std::uint32_t a, std::uint32_t b) {
        // True when a's per-way pressure is strictly above b's.
        return pressure[a] * mgr.tenant(b).ways >
               pressure[b] * mgr.tenant(a).ways;
    };
    std::int32_t donor = -1;
    std::int32_t receiver = -1;
    for (std::uint32_t id = 0; id < n; ++id) {
        if (receiver < 0 ||
            denser(id, static_cast<std::uint32_t>(receiver)))
            receiver = static_cast<std::int32_t>(id);
        if (mgr.tenant(id).ways > cfg.minWays &&
            (donor < 0 ||
             denser(static_cast<std::uint32_t>(donor), id)))
            donor = static_cast<std::int32_t>(id);
    }
    if (donor < 0 || receiver < 0 || donor == receiver)
        return;
    const auto d = static_cast<std::uint32_t>(donor);
    const auto r = static_cast<std::uint32_t>(receiver);
    if (!denser(r, d))
        return;
    if (pressure[r] - pressure[d] < cfg.moveThreshold)
        return;

    std::vector<std::uint32_t> counts(n);
    for (std::uint32_t id = 0; id < n; ++id)
        counts[id] = mgr.tenant(id).ways;
    --counts[d];
    ++counts[r];
    mgr.setPartition(counts);
    ++reallocations;
    IDIO_TRACE_INSTANT(trc, trace::EventKind::TenantRealloc, now(),
                       /*pktId=*/0, d, r);
}

void
IocaController::serialize(ckpt::Serializer &s) const
{
    for (const std::uint64_t v : lastDemand)
        s.writeU64(v);
    ckpt::serializeEvent(s, tick);
}

void
IocaController::unserialize(ckpt::Deserializer &d)
{
    for (auto &v : lastDemand)
        v = d.readU64();
    ckpt::unserializeEvent(d, &tick, &eventq());
}

} // namespace tenant
