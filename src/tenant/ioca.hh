/**
 * @file
 * IOCA-style adaptive CAT controller.
 *
 * IOCA ("I/O-aware LLC management for multi-tenant platforms")
 * periodically re-divides the LLC's non-I/O ways between tenants from
 * runtime telemetry, instead of the static equal split. This
 * reproduction implements the same control shape as a pluggable
 * alternative to IDIO's DdioWayTuner: every interval it measures each
 * tenant's demand (MLC misses of the member cores, weighted by SLO
 * class), and moves ONE way from the tenant with the least pressure
 * per held way to the tenant with the most — a deterministic
 * hill-climb with a minimum-ways floor, so best-effort aggressors
 * drain down to the floor while latency-critical tenants grow.
 *
 * All decisions are pure functions of checkpointed state (counter
 * snapshots + the periodic event), so a restored run reallocates at
 * exactly the ticks the uninterrupted run would.
 */

#ifndef IDIO_TENANT_IOCA_HH
#define IDIO_TENANT_IOCA_HH

#include "cache/hierarchy.hh"
#include "sim/periodic.hh"
#include "sim/sim_object.hh"
#include "stats/registry.hh"
#include "tenant/manager.hh"
#include "trace/tracer.hh"

namespace tenant
{

/** Controller knobs. */
struct IocaConfig
{
    /** Re-evaluation cadence. */
    sim::Tick interval = 50 * sim::oneUs;

    /** Floor below which no tenant partition may shrink. */
    std::uint32_t minWays = 1;

    /**
     * Minimum weighted-pressure gap (receiver minus donor, per
     * interval) before a way moves; damps oscillation on balanced
     * load.
     */
    std::uint64_t moveThreshold = 64;
};

/**
 * Periodic way-reallocation controller over a TenantManager.
 */
class IocaController : public sim::SimObject
{
    stats::StatGroup statGroup;

  public:
    IocaController(sim::Simulation &simulation, const std::string &name,
                   cache::MemoryHierarchy &hierarchy,
                   TenantManager &manager, const IocaConfig &config = {});

    /** Begin the monitoring loop. */
    void start();

    /** Stop adjusting (the current partition stays). */
    void stop();

    /** @{ Counters. */
    stats::Counter evaluations;
    stats::Counter reallocations;
    /** @} */

    void serialize(ckpt::Serializer &s) const override;
    void unserialize(ckpt::Deserializer &d) override;

  private:
    void evaluate();

    /** Cumulative MLC misses over @p id 's member cores. */
    std::uint64_t tenantDemand(std::uint32_t id) const;

    cache::MemoryHierarchy &hier;
    TenantManager &mgr;
    IocaConfig cfg;
    trace::Source trc;
    std::vector<std::uint64_t> lastDemand;
    sim::PeriodicEvent tick;
};

} // namespace tenant

#endif // IDIO_TENANT_IOCA_HH
