/**
 * @file
 * Tenant descriptors for multi-tenant LLC management.
 *
 * A Tenant is one co-located workload sharing the simulated server: a
 * set of cores, the flow ranges steered to those cores, and a service
 * class describing how the platform should weigh it when cache
 * capacity is contended (IOCA's setting: latency-critical NFs next to
 * throughput batch jobs and best-effort aggressors). Tenants own a
 * CAT-style LLC way mask; the TenantManager installs it into the
 * MemoryHierarchy's per-core allocation masks, keeping the low DDIO
 * ways as the shared I/O partition.
 */

#ifndef IDIO_TENANT_TENANT_HH
#define IDIO_TENANT_TENANT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/replacement.hh"
#include "sim/types.hh"

namespace tenant
{

/** Service class of one tenant (IOCA-style SLO tiers). */
enum class SloClass : std::uint8_t
{
    LatencyCritical, ///< p99-bound (RPC-like NF)
    Throughput,      ///< goodput-bound (batch NF)
    BestEffort,      ///< unprotected (aggressors, background jobs)
};

/** Printable class name. */
const char *sloClassName(SloClass slo);

/**
 * Telemetry weight of one miss for the adaptive controller: pressure
 * from latency-critical tenants counts more, best-effort pressure not
 * at all (an unprotected tenant never attracts capacity, which is
 * exactly the noisy-neighbor containment IOCA argues for).
 */
std::uint32_t sloWeight(SloClass slo);

/**
 * One tenant of the simulated server.
 */
struct Tenant
{
    std::uint32_t id = 0;
    std::string name;
    SloClass slo = SloClass::Throughput;

    /** True when the tenant runs LLC aggressors instead of NFs. */
    bool antagonist = false;

    /** Member cores (one NF pipeline or one aggressor each). */
    std::vector<sim::CoreId> cores;

    /**
     * Flow binding: the UDP destination-port base steered to each
     * member NF core by the NIC's exact-match rules (legacy layout),
     * one entry per core in `cores` order. Empty for antagonists.
     */
    std::vector<std::uint16_t> flowPortBases;

    /** Flows per member core. */
    std::uint32_t flowsPerCore = 0;

    /** Current LLC allocation mask of the tenant's cores. */
    cache::WayMask mask = ~cache::WayMask(0);

    /** Ways held in the partitioned region (0 = unpartitioned). */
    std::uint32_t ways = 0;
};

} // namespace tenant

#endif // IDIO_TENANT_TENANT_HH
