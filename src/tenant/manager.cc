/**
 * @file
 * TenantManager implementation.
 */

#include "manager.hh"

#include "ckpt/serializer.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace tenant
{

const char *
sloClassName(SloClass slo)
{
    switch (slo) {
      case SloClass::LatencyCritical:
        return "latency";
      case SloClass::Throughput:
        return "throughput";
      case SloClass::BestEffort:
        return "besteffort";
    }
    return "?";
}

std::uint32_t
sloWeight(SloClass slo)
{
    switch (slo) {
      case SloClass::LatencyCritical:
        return 4;
      case SloClass::Throughput:
        return 1;
      case SloClass::BestEffort:
        return 0;
    }
    return 0;
}

TenantManager::PerTenant::PerTenant(stats::Registry &registry,
                                    trace::Tracer &tracer,
                                    const std::string &groupName)
    : group(registry, groupName),
      reconfigs(group, "maskReconfigs",
                "LLC way-mask reconfigurations applied"),
      ways(group, "ways", "LLC ways currently held"),
      trc(tracer.registerSource(groupName))
{
}

TenantManager::TenantManager(sim::Simulation &simulation,
                             const std::string &name,
                             cache::MemoryHierarchy &hierarchy,
                             std::vector<Tenant> tenantSet,
                             bool partitioned)
    : sim::SimObject(simulation, name), hier(hierarchy),
      tenants_(std::move(tenantSet)), partitioned_(partitioned)
{
    if (tenants_.empty())
        sim::fatal("TenantManager needs at least one tenant");

    ioWays_ = hier.llc().ddioWays();
    const std::uint32_t assoc = hier.llc().tags().assoc();
    if (ioWays_ >= assoc)
        sim::fatal("I/O partition (%u ways) leaves no tenant ways "
                   "(LLC assoc %u)",
                   ioWays_, assoc);
    partWays = assoc - ioWays_;
    if (partitioned_ && partWays < numTenants())
        sim::fatal("%u tenants need at least one way each but only "
                   "%u non-I/O ways exist",
                   numTenants(), partWays);

    coreTenant.assign(hier.numCores(), -1);
    for (std::uint32_t id = 0; id < numTenants(); ++id) {
        tenants_[id].id = id;
        for (const sim::CoreId c : tenants_[id].cores) {
            if (c >= hier.numCores())
                sim::fatal("tenant '%s' claims core %u beyond the "
                           "hierarchy's %u cores",
                           tenants_[id].name.c_str(), c,
                           hier.numCores());
            if (coreTenant[c] != -1)
                sim::fatal("core %u claimed by two tenants", c);
            coreTenant[c] = static_cast<std::int32_t>(id);
        }
        obs.push_back(std::make_unique<PerTenant>(
            simulation.statsRegistry(), simulation.tracer(),
            name + "." + tenants_[id].name));
    }

    if (partitioned_) {
        // Initial policy: equal split of the non-I/O ways, remainder
        // to the lowest tenant ids.
        const std::uint32_t base = partWays / numTenants();
        const std::uint32_t rem = partWays % numTenants();
        for (std::uint32_t id = 0; id < numTenants(); ++id)
            tenants_[id].ways = base + (id < rem ? 1 : 0);
    }
    layoutMasks(/*countReconfigs=*/false);
}

std::uint32_t
TenantManager::tenantOfCore(sim::CoreId core) const
{
    if (core >= coreTenant.size() || coreTenant[core] < 0)
        sim::fatal("core %u belongs to no tenant", core);
    return static_cast<std::uint32_t>(coreTenant[core]);
}

void
TenantManager::installMask(std::uint32_t id)
{
    for (const sim::CoreId c : tenants_[id].cores)
        hier.setCoreAllocMask(c, tenants_[id].mask);
}

void
TenantManager::layoutMasks(bool countReconfigs)
{
    std::uint32_t offset = ioWays_;
    for (std::uint32_t id = 0; id < numTenants(); ++id) {
        Tenant &t = tenants_[id];
        cache::WayMask mask;
        if (partitioned_) {
            SIM_ASSERT(t.ways >= 1, "tenant partition underflow");
            mask = cache::lowWays(t.ways) << offset;
            offset += t.ways;
        } else {
            mask = ~cache::WayMask(0);
        }
        obs[id]->ways.set(static_cast<double>(t.ways));
        if (mask == t.mask)
            continue;
        t.mask = mask;
        installMask(id);
        if (countReconfigs) {
            ++obs[id]->reconfigs;
            IDIO_TRACE_COUNTER(obs[id]->trc,
                               trace::EventKind::TenantWays, now(),
                               t.ways, id);
        }
    }
    SIM_ASSERT(offset <= ioWays_ + partWays,
               "tenant partition overflows the LLC ways");
}

void
TenantManager::setPartition(const std::vector<std::uint32_t> &wayCounts)
{
    if (!partitioned_)
        sim::fatal("setPartition on an unpartitioned TenantManager");
    if (wayCounts.size() != tenants_.size())
        sim::fatal("setPartition got %zu way counts for %zu tenants",
                   wayCounts.size(), tenants_.size());
    std::uint32_t sum = 0;
    for (const std::uint32_t w : wayCounts) {
        if (w == 0)
            sim::fatal("setPartition: zero-way tenant partition");
        sum += w;
    }
    if (sum > partWays)
        sim::fatal("setPartition: %u ways requested, %u available",
                   sum, partWays);
    for (std::uint32_t id = 0; id < numTenants(); ++id)
        tenants_[id].ways = wayCounts[id];
    layoutMasks(/*countReconfigs=*/true);
}

std::uint64_t
TenantManager::maskReconfigs(std::uint32_t id) const
{
    return obs[id]->reconfigs.get();
}

void
TenantManager::serialize(ckpt::Serializer &s) const
{
    for (const Tenant &t : tenants_) {
        s.writeU64(t.mask);
        s.writeU32(t.ways);
    }
}

void
TenantManager::unserialize(ckpt::Deserializer &d)
{
    for (Tenant &t : tenants_) {
        t.mask = d.readU64();
        t.ways = d.readU32();
        obs[t.id]->ways.set(static_cast<double>(t.ways));
    }
    // Reinstall so the hierarchy and the descriptors agree even if
    // the hierarchy section predates this one in the blob.
    for (std::uint32_t id = 0; id < numTenants(); ++id)
        installMask(id);
}

} // namespace tenant
