/**
 * @file
 * Tenant registry and CAT partition programmer.
 *
 * The TenantManager owns the run's Tenant descriptors and is the only
 * component that writes the MemoryHierarchy's per-core LLC allocation
 * masks. The LLC's ways split into two regions: the low `ddioWays`
 * ways remain the shared inbound-I/O partition (DDIO write-allocates
 * there), and the remaining ways are divided between tenants as
 * contiguous, non-overlapping CAT partitions. Enforcement happens in
 * TagArray::findFillSlot — a fill candidate set is ANDed with the
 * core's mask — so a tenant's MLC victims can never displace another
 * tenant's lines.
 *
 * Partition changes go through setPartition(), which reprograms every
 * affected core at the current tick (deterministically ordered by
 * tenant id), bumps the per-tenant reconfig counter and emits a
 * `tenant.ways` trace sample. Masks and way counts are checkpointed,
 * so a restored run resumes with the exact partition it saved.
 */

#ifndef IDIO_TENANT_MANAGER_HH
#define IDIO_TENANT_MANAGER_HH

#include <memory>
#include <string>
#include <vector>

#include "cache/hierarchy.hh"
#include "sim/sim_object.hh"
#include "stats/registry.hh"
#include "tenant/tenant.hh"
#include "trace/tracer.hh"

namespace tenant
{

/**
 * Owns the tenant set and programs the LLC way partition.
 */
class TenantManager : public sim::SimObject
{
  public:
    /**
     * @param partitioned  Install per-tenant CAT masks. When false the
     *                     tenants keep all-ways masks (plain DDIO /
     *                     IDIO sharing) and only the bookkeeping —
     *                     per-tenant stats, core mapping — is active.
     */
    TenantManager(sim::Simulation &simulation, const std::string &name,
                  cache::MemoryHierarchy &hierarchy,
                  std::vector<Tenant> tenantSet, bool partitioned);

    /** @{ Tenant set access. */
    std::uint32_t numTenants() const
    {
        return static_cast<std::uint32_t>(tenants_.size());
    }
    const Tenant &tenant(std::uint32_t id) const
    {
        return tenants_[id];
    }

    /** Owning tenant of @p core; fatal for an unmapped core. */
    std::uint32_t tenantOfCore(sim::CoreId core) const;

    bool partitioned() const { return partitioned_; }

    /** Low LLC ways reserved for inbound I/O (the DDIO partition). */
    std::uint32_t ioWays() const { return ioWays_; }

    /** Ways available to tenant partitions (assoc - ioWays). */
    std::uint32_t partitionWays() const { return partWays; }
    /** @} */

    /**
     * Reassign the partition: @p wayCounts holds one way count per
     * tenant (>= 1 each, summing to at most partitionWays()). Masks
     * are recomputed contiguously in tenant-id order and installed on
     * every member core whose tenant changed size or position.
     */
    void setPartition(const std::vector<std::uint32_t> &wayCounts);

    /** Per-tenant mask reconfigurations applied after build. */
    std::uint64_t maskReconfigs(std::uint32_t id) const;

    void serialize(ckpt::Serializer &s) const override;
    void unserialize(ckpt::Deserializer &d) override;

  private:
    /** Install tenant @p id 's current mask on its member cores. */
    void installMask(std::uint32_t id);

    /** Recompute contiguous masks from the tenants' way counts. */
    void layoutMasks(bool countReconfigs);

    /** Per-tenant observability (stats group + trace source). */
    struct PerTenant
    {
        PerTenant(stats::Registry &registry, trace::Tracer &tracer,
                  const std::string &groupName);

        stats::StatGroup group;
        stats::Counter reconfigs;
        stats::Gauge ways;
        trace::Source trc;
    };

    cache::MemoryHierarchy &hier;
    std::vector<Tenant> tenants_;
    std::vector<std::unique_ptr<PerTenant>> obs;
    std::vector<std::int32_t> coreTenant; ///< core id -> tenant id
    bool partitioned_;
    std::uint32_t ioWays_ = 0;
    std::uint32_t partWays = 0;
};

} // namespace tenant

#endif // IDIO_TENANT_MANAGER_HH
