/**
 * @file
 * ExperimentConfig helpers.
 */

#include "experiment_config.hh"

#include <cstdio>

namespace harness
{

const char *
nfKindName(NfKind kind)
{
    switch (kind) {
      case NfKind::TouchDrop:
        return "TouchDrop";
      case NfKind::CopyTouchDrop:
        return "CopyTouchDrop";
      case NfKind::L2Fwd:
        return "L2Fwd";
      case NfKind::L2FwdDropPayload:
        return "L2FwdDropPayload";
    }
    return "?";
}

std::string
ExperimentConfig::summary() const
{
    const char *trafficName = "external";
    switch (traffic) {
      case TrafficKind::Steady:
        trafficName = "steady";
        break;
      case TrafficKind::Bursty:
        trafficName = "bursty";
        break;
      case TrafficKind::Poisson:
        trafficName = "poisson";
        break;
      case TrafficKind::None:
        break;
    }
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%ux %s, policy=%s, ring=%u, pkt=%uB, %s @ %.0f Gbps%s",
                  numNfs, nfKindName(nfKind),
                  idio::policyName(idio.policy), nic.ringSize,
                  frameBytes, trafficName, rateGbps,
                  withAntagonist ? ", +LLCAntagonist" : "");
    return buf;
}

} // namespace harness
