/**
 * @file
 * ExperimentConfig helpers.
 */

#include "experiment_config.hh"

#include <cstdio>

namespace harness
{

const char *
nfKindName(NfKind kind)
{
    switch (kind) {
      case NfKind::TouchDrop:
        return "TouchDrop";
      case NfKind::CopyTouchDrop:
        return "CopyTouchDrop";
      case NfKind::L2Fwd:
        return "L2Fwd";
      case NfKind::L2FwdDropPayload:
        return "L2FwdDropPayload";
    }
    return "?";
}

const char *
tenantPartitionName(TenantPartition p)
{
    switch (p) {
      case TenantPartition::None:
        return "shared";
      case TenantPartition::Static:
        return "static";
      case TenantPartition::Ioca:
        return "ioca";
    }
    return "?";
}

std::string
ExperimentConfig::summary() const
{
    const char *trafficName = "external";
    switch (traffic) {
      case TrafficKind::Steady:
        trafficName = "steady";
        break;
      case TrafficKind::Bursty:
        trafficName = "bursty";
        break;
      case TrafficKind::Poisson:
        trafficName = "poisson";
        break;
      case TrafficKind::None:
        break;
    }
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "%ux %s, policy=%s, ring=%u, pkt=%uB, %s @ %.0f Gbps%s",
                  numNfs, nfKindName(nfKind),
                  idio::policyName(idio.policy), nic.ringSize,
                  frameBytes, trafficName, rateGbps,
                  withAntagonist ? ", +LLCAntagonist" : "");
    std::string out = buf;
    if (multiQueue()) {
        std::snprintf(buf, sizeof(buf), ", rxq=%u, flows=%llu",
                      rxQueues,
                      static_cast<unsigned long long>(
                          totalFlows
                              ? totalFlows
                              : std::uint64_t(flowsPerNf) * numNfs));
        out += buf;
    }
    if (tenantMode()) {
        std::snprintf(buf, sizeof(buf), ", tenants=%zu(%s)",
                      tenants.size(),
                      tenantPartitionName(tenantPartition));
        out += buf;
    }
    if (sharded) {
        std::snprintf(buf, sizeof(buf), ", sharded(j%u)", shardJobs);
        out += buf;
    }
    return out;
}

} // namespace harness
